package streamcoarsen

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autodiff"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/rl"
	rtpkg "repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// benchHarness is a shared quick-budget harness: models train once per
// process, so each benchmark iteration measures the experiment's
// evaluation work (the paper's tables/figures are evaluation artifacts).
var (
	benchOnce sync.Once
	benchH    *eval.Harness
)

func harness() *eval.Harness {
	benchOnce.Do(func() {
		benchH = eval.NewHarness(0.12, eval.QuickBudget())
		benchH.Quiet = true
		benchH.Out = io.Discard
	})
	return benchH
}

// Experiment benches: one per table and figure of the evaluation section.

func BenchmarkFig1MotivatingCDF(b *testing.B) {
	h := harness()
	h.Fig1() // train/cache models outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig1()
	}
}

func BenchmarkTable1AUC(b *testing.B) {
	h := harness()
	h.Table1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Table1()
	}
}

func BenchmarkFig5MediumCDF(b *testing.B) {
	h := harness()
	h.Fig5()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig5()
	}
}

func BenchmarkFig6Generalize(b *testing.B) {
	h := harness()
	h.Fig6()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig6()
	}
}

func BenchmarkFig7Excess(b *testing.B) {
	h := harness()
	h.Fig7()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig7()
	}
}

func BenchmarkFig8Compression(b *testing.B) {
	h := harness()
	h.Fig8()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig8()
	}
}

func BenchmarkFig9Saturation(b *testing.B) {
	h := harness()
	h.Fig9()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig9()
	}
}

func BenchmarkTable2Ablation(b *testing.B) {
	h := harness()
	h.Table2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-evaluate the cached best model's rows (ablation models are
		// retrained inside Table2; keeping the full call measures the
		// table's end-to-end regeneration).
		h.Table2()
	}
}

func BenchmarkTable3Inference(b *testing.B) {
	h := harness()
	h.Table3()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Table3()
	}
}

func BenchmarkFig3Qualitative(b *testing.B) {
	h := harness()
	h.Fig3()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fig3()
	}
}

// Ablation bench: linear-fluid vs iterative simulator modes (DESIGN.md §5).

func BenchmarkSimulatorModes(b *testing.B) {
	c := sim.DefaultCluster(10, 1000)
	cfg := gen.DefaultConfig(100, 200, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(1)))
	p := metis.Partition(g, metis.Options{Parts: c.Devices, Seed: 1})
	p.Devices = c.Devices
	b.Run("fluid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Simulate(g, p, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.SimulateIterative(g, p, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Micro-benchmarks for the substrates.

// matMulShapes is shared by the allocating and destination-passing MatMul
// variants. Names embed MxKxN so benchjson can derive FLOPs (2·m·k·n) and
// report GFLOP/s. The square sizes track raw kernel throughput; the encode
// shapes are the tall-skinny products the GNN encoder actually runs
// (E×2M · 2M×M message transform, N×2M · 2M×M node update at M=24).
var matMulShapes = []struct {
	tag     string
	m, k, n int
}{
	{"square", 32, 32, 32},
	{"square", 128, 128, 128},
	{"square", 512, 512, 512},
	{"encode-msg", 2048, 48, 24},
	{"encode-update", 460, 48, 24},
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range matMulShapes {
		x := tensor.New(s.m, s.k)
		y := tensor.New(s.k, s.n)
		x.RandUniform(rng, 1)
		y.RandUniform(rng, 1)
		name := fmt.Sprintf("%s-%dx%dx%d", s.tag, s.m, s.k, s.n)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		})
		b.Run(name+"-into", func(b *testing.B) {
			b.ReportAllocs()
			dst := tensor.New(s.m, s.n)
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(x, y, dst)
			}
		})
	}
}

// BenchmarkKernels covers the transposed-product and fused kernels behind
// the autodiff tape ops (make bench-kernels). Names embed the dims of the
// equivalent plain product so GFLOP/s is comparable with BenchmarkMatMul.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const e, m2, m = 2048, 48, 24 // encoder message-transform shape
	h := tensor.New(e/4, m2)      // node embeddings (E/4 nodes)
	w := tensor.New(m2, m)
	wT2 := tensor.New(m, m2)
	add := tensor.New(e, m)
	bias := tensor.New(1, m)
	for _, mt := range []*tensor.Matrix{h, w, wT2, add, bias} {
		mt.RandUniform(rng, 1)
	}
	idx := make([]int, e)
	for i := range idx {
		idx[i] = rng.Intn(h.Rows)
	}
	gathered := tensor.New(e, m2)
	tensor.GatherRowsInto(h, idx, gathered)

	b.Run(fmt.Sprintf("matmulT1-%dx%dx%d", m2, e, m), func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(m2, m)
		for i := 0; i < b.N; i++ {
			tensor.MatMulT1Into(gathered, add, dst)
		}
	})
	b.Run(fmt.Sprintf("matmulT2-%dx%dx%d", e, m2, m), func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(e, m)
		for i := 0; i < b.N; i++ {
			tensor.MatMulT2Into(gathered, wT2, dst)
		}
	})
	b.Run(fmt.Sprintf("matmul-tanh-%dx%dx%d", e, m2, m), func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(e, m)
		for i := 0; i < b.N; i++ {
			tensor.MatMulTanhInto(gathered, w, dst)
		}
	})
	b.Run(fmt.Sprintf("gather-matmul-add-tanh-%dx%dx%d", e, m2, m), func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(e, m)
		for i := 0; i < b.N; i++ {
			tensor.GatherMatMulAddTanhInto(h, idx, w, add, dst)
		}
	})
	b.Run(fmt.Sprintf("affine-tanh-%dx%dx%d", e, m2, m), func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(e, m)
		for i := 0; i < b.N; i++ {
			tensor.MatMulT2BiasTanhInto(gathered, wT2, bias, dst)
		}
	})
	b.Run("tanh-into-2048x48", func(b *testing.B) {
		b.ReportAllocs()
		dst := tensor.New(e, m2)
		for i := 0; i < b.N; i++ {
			tensor.TanhInto(gathered, dst)
		}
	})
}

func BenchmarkGNNEncode(b *testing.B) {
	c := sim.DefaultCluster(10, 1000)
	hugeCfg := gen.Huge().Config
	hugeCfg.MinNodes, hugeCfg.MaxNodes = 100_000, 100_000
	for _, size := range []struct {
		name string
		cfg  gen.Config
	}{
		{"medium", gen.DefaultConfig(100, 200, 10_000, c)},
		{"large", gen.DefaultConfig(400, 500, 10_000, c)},
		// huge exercises the layered ~100k-node construction; run it under a
		// fixed GOMEMLIMIT (make bench-huge) so B/op numbers are comparable.
		{"huge", hugeCfg},
	} {
		g := gen.Generate(size.cfg, rand.New(rand.NewSource(2)))
		f := gnn.BuildFeatures(g, size.cfg.Cluster)
		ps := nn.NewParamSet()
		enc := gnn.NewEncoder(ps, "enc", 24, 2, rand.New(rand.NewSource(3)))
		b.Run(size.name, func(b *testing.B) {
			// Steady-state hot path exactly as the trainer runs it: one
			// binder/tape reused across steps via Reset, with layer
			// scratch and gradients recycled through the tensor arena.
			// One untimed pass fills the arena so
			// ns/op and B/op measure the steady state, not the one-time
			// working-set allocation.
			binder := nn.NewBinder(autodiff.NewTape())
			binder.Reset()
			enc.Encode(binder, f)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binder.Reset()
				enc.Encode(binder, f)
			}
		})
	}
}

func BenchmarkMetisPartition(b *testing.B) {
	c := sim.DefaultCluster(10, 1500)
	cfg := gen.DefaultConfig(400, 500, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(4)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metis.Partition(g, metis.Options{Parts: 10, Seed: int64(i)})
	}
}

func BenchmarkCoarsenAllocate(b *testing.B) {
	c := sim.DefaultCluster(10, 1500)
	cfg := gen.DefaultConfig(400, 500, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(5)))
	model := core.New(core.DefaultConfig())
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Allocate(g, c)
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	c := sim.DefaultCluster(10, 1500)
	cfg := gen.DefaultConfig(400, 500, 10_000, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(cfg, rand.New(rand.NewSource(int64(i))))
	}
}

func BenchmarkCollapseAndExpand(b *testing.B) {
	c := sim.DefaultCluster(10, 1500)
	cfg := gen.DefaultConfig(400, 500, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(7))
	d := make([]bool, g.NumEdges())
	for i := range d {
		d[i] = rng.Float64() < 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := stream.CollapseEdges(g, d)
		cg := stream.CoarseGraph(g, cm)
		cp := stream.NewPlacement(cm.NumSuper, c.Devices)
		stream.ExpandPlacement(cm, cp)
		_ = cg
	}
}

// BenchmarkSimValidate measures the cross-model validation experiment
// (fluid vs discrete-event vs real concurrent runtime).
func BenchmarkSimValidate(b *testing.B) {
	h := harness()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.SimValidate()
	}
}

// Execution-model micro-benchmarks (DES and concurrent runtime).
func BenchmarkSimulateDES(b *testing.B) {
	c := sim.DefaultCluster(5, 1000)
	cfg := gen.DefaultConfig(40, 60, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(9)))
	p := metis.Partition(g, metis.Options{Parts: c.Devices, Seed: 1})
	p.Devices = c.Devices
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateDES(g, p, c, sim.DefaultDESConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeExecution(b *testing.B) {
	c := sim.DefaultCluster(3, 500)
	cfg := gen.DefaultConfig(10, 20, 5_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(10)))
	p := metis.Partition(g, metis.Options{Parts: c.Devices, Seed: 1})
	p.Devices = c.Devices
	rtCfg := rtpkg.DefaultConfig()
	rtCfg.WallTime = 60 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtpkg.Run(g, p, c, rtCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures one bare fluid-simulator evaluation on a
// large graph — the unit of work that dominates training (every sampled
// decision costs one coarsen → partition → simulate round trip).
func BenchmarkSimulate(b *testing.B) {
	c := sim.DefaultCluster(20, 1500)
	cfg := gen.DefaultConfig(1000, 2000, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(12)))
	p := metis.Partition(g, metis.Options{Parts: c.Devices, Seed: 1})
	p.Devices = c.Devices
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(g, p, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch measures one full REINFORCE epoch over a medium
// curriculum level under the data-parallel variants: the classic serial
// loop (batch1), a graph batch reduced on one worker (batch8/workers1,
// isolating the batching overhead), and the same batch spread over all
// cores (batch8/workersMax — the speedup configuration; on a single-core
// host it necessarily matches workers1). Model construction and guided
// seeding run outside the timer so iterations measure epoch throughput.
func BenchmarkTrainEpoch(b *testing.B) {
	s := gen.Medium5K()
	s.TrainN, s.TestN = 8, 0
	ds := s.Generate()
	for _, v := range []struct {
		name           string
		batch, workers int
	}{
		{"batch1", 1, 1},
		{"batch8-workers1", 8, 1},
		{"batch8-workersMax", 8, 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			cfg := rl.DefaultConfig()
			cfg.Epochs = 1
			cfg.PretrainEpochs = 0
			cfg.MetisGuided = false
			cfg.Quiet = true
			cfg.GraphBatch = v.batch
			cfg.TrainWorkers = v.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := core.New(core.DefaultConfig())
				pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
				tr := rl.NewTrainer(cfg, m, pipe)
				b.StartTimer()
				if err := tr.TrainOn(ds.Train, ds.Cluster); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServe measures the allocation service end-to-end, in process
// (no HTTP): the cold path (unique requests → batched tape-free forward
// pass + placement) and the cached path (repeat requests served straight
// from the placement LRU), each under 1, 8, and 64 concurrent clients.
// The single-client runs disable the coalescing window — with no second
// client it is pure added latency — so they measure the bare request
// path; the concurrent runs keep the default 200µs window so the batcher
// actually stacks forward passes.
func BenchmarkServe(b *testing.B) {
	s := gen.Small()
	graphs := s.Generate().Test
	model := core.New(core.DefaultConfig())

	// runClients drains b.N iterations across a fixed client pool.
	runClients := func(b *testing.B, clients int, fn func(i int)) {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= b.N {
						return
					}
					fn(i)
				}
			}()
		}
		wg.Wait()
	}

	for _, clients := range []int{1, 8, 64} {
		window := 200 * time.Microsecond
		if clients == 1 {
			window = -1
		}
		b.Run(fmt.Sprintf("cold-c%d", clients), func(b *testing.B) {
			svc, err := serve.New(serve.Options{Model: model, BatchWindow: window, Registry: obs.NewRegistry()})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ReportAllocs()
			b.ResetTimer()
			runClients(b, clients, func(i int) {
				// A unique source-rate view per iteration keeps every
				// fingerprint distinct, forcing the full forward + placement.
				g := graphs[i%len(graphs)].ScaleSourceRate(1 + float64(i)*1e-9)
				if _, err := svc.Allocate(g, s.Cluster); err != nil {
					b.Error(err)
				}
			})
		})
		b.Run(fmt.Sprintf("cached-c%d", clients), func(b *testing.B) {
			svc, err := serve.New(serve.Options{Model: model, BatchWindow: window, Registry: obs.NewRegistry()})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			for _, g := range graphs {
				if _, err := svc.Allocate(g, s.Cluster); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			runClients(b, clients, func(i int) {
				if _, err := svc.Allocate(graphs[i%len(graphs)], s.Cluster); err != nil {
					b.Error(err)
				}
			})
		})
	}
}

// BenchmarkPartitionerAblation compares direct k-way partitioning against
// recursive bisection as the pipeline's partitioning stage.
func BenchmarkPartitionerAblation(b *testing.B) {
	c := sim.DefaultCluster(10, 1500)
	cfg := gen.DefaultConfig(400, 500, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(11)))
	b.Run("kway", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metis.Partition(g, metis.Options{Parts: 10, Seed: int64(i)})
		}
	})
	b.Run("recursive-bisection", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metis.PartitionRB(g, metis.Options{Parts: 10, Seed: int64(i)})
		}
	})
}
