// Command benchjson converts `go test -bench` output into a JSON report.
// Each benchmark line is preserved verbatim in the record's "raw" field,
// so the original benchstat-consumable text can be reconstructed from the
// JSON (benchstat reads the standard bench text format; feed it the raw
// lines or the .txt file `make bench` keeps alongside).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH_1.json
//	benchjson bench.txt > BENCH_1.json
//	benchjson before.txt after.txt > BENCH_1.json   # {"before": …, "after": …}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Raw         string  `json:"raw"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var out any
	switch len(os.Args) {
	case 1:
		out = mustParse(os.Stdin)
	case 2:
		out = mustParseFile(os.Args[1])
	case 3:
		// Two files: a before/after comparison report.
		out = map[string]*report{
			"before": mustParseFile(os.Args[1]),
			"after":  mustParseFile(os.Args[2]),
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchjson [bench.txt | before.txt after.txt] < bench-output")
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func mustParseFile(path string) *report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	return mustParse(f)
}

func mustParse(in io.Reader) *report {
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rep
}

func parse(in io.Reader) (*report, error) {
	rep := &report{Benchmarks: []record{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine decodes one standard benchmark result line:
//
//	BenchmarkName-8   160   6831173 ns/op   35318 B/op   86 allocs/op
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: fields[0], Iterations: iters, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		}
	}
	return r, true
}
