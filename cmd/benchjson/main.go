// Command benchjson converts `go test -bench` output into a JSON report.
// Each benchmark line is preserved verbatim in the record's "raw" field,
// so the original benchstat-consumable text can be reconstructed from the
// JSON (benchstat reads the standard bench text format; feed it the raw
// lines or the .txt file `make bench` keeps alongside).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH_1.json
//	benchjson bench.txt > BENCH_1.json
//	benchjson before.txt after.txt > BENCH_1.json   # {"before": …, "after": …}
//
// Compute benchmarks that embed their problem dims in the name (e.g.
// BenchmarkMatMul/square-128x128x128) additionally get a "gflops" field:
// 2·m·k·n FLOPs divided by ns/op.
//
// Regression gate: compare two previously emitted JSON reports and exit
// non-zero when any benchmark regressed by more than the threshold
// (percent, default 10) in ns/op, B/op or allocs/op — or, for benchmarks
// with dims in the name, dropped more than the threshold in GFLOP/s:
//
//	benchjson -diff BENCH_prev.json BENCH_new.json
//	benchjson -diff -threshold 5 BENCH_prev.json BENCH_new.json
//
// Duplicate entries for one benchmark (e.g. from -count=3) collapse to
// their minimum — the standard noise filter for wall-clock comparisons.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	GFLOPs      float64 `json:"gflops,omitempty"`
	Raw         string  `json:"raw"`
}

// dimsPattern extracts the MxKxN problem dims that compute benchmarks embed
// in their names (e.g. BenchmarkMatMul/square-128x128x128-into). A matmul
// of those dims costs 2·m·k·n FLOPs, which turns ns/op into GFLOP/s.
var dimsPattern = regexp.MustCompile(`(\d+)x(\d+)x(\d+)`)

// flopsFor returns the per-op FLOP count encoded in a benchmark name, or 0
// when the name carries no dims.
func flopsFor(name string) float64 {
	m := dimsPattern.FindStringSubmatch(name)
	if m == nil {
		return 0
	}
	d := make([]float64, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(m[i+1], 64)
		if err != nil {
			return 0
		}
		d[i] = v
	}
	return 2 * d[0] * d[1] * d[2]
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two JSON reports and gate on regressions")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -diff")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson [bench.txt | before.txt after.txt] < bench-output")
		fmt.Fprintln(os.Stderr, "       benchjson -diff [-threshold PCT] prev.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if *diff {
		if len(args) != 2 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(runDiff(args[0], args[1], *threshold))
	}

	var out any
	switch len(args) {
	case 0:
		out = mustParse(os.Stdin)
	case 1:
		out = mustParseFile(args[0])
	case 2:
		// Two files: a before/after comparison report.
		out = map[string]*report{
			"before": mustParseFile(args[0]),
			"after":  mustParseFile(args[1]),
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func mustParseFile(path string) *report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	return mustParse(f)
}

func mustParse(in io.Reader) *report {
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rep
}

func parse(in io.Reader) (*report, error) {
	rep := &report{Benchmarks: []record{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, sc.Err()
}

// benchPoint is the per-benchmark summary used for regression gating.
type benchPoint struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
	gflops float64 // derived from name dims and min ns; 0 when dimless
}

// gomaxprocsSuffix strips the trailing "-N" parallelism tag Go appends to
// benchmark names, so reports recorded at different GOMAXPROCS still match.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// summarize folds a report into per-name minima: with -count>1 each
// benchmark appears several times, and the minimum is the least-noisy
// wall-clock estimate (allocs/op is deterministic, min is a no-op there).
func summarize(rep *report) map[string]benchPoint {
	out := make(map[string]benchPoint, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		name := gomaxprocsSuffix.ReplaceAllString(r.Name, "")
		p, seen := out[name]
		if !seen || r.NsPerOp < p.ns {
			p.ns = r.NsPerOp
		}
		hasMem := strings.Contains(r.Raw, "allocs/op")
		if hasMem {
			if !p.hasMem || r.AllocsPerOp < p.allocs {
				p.allocs = r.AllocsPerOp
			}
			if !p.hasMem || r.BytesPerOp < p.bytes {
				p.bytes = r.BytesPerOp
			}
			p.hasMem = true
		}
		if flops := flopsFor(name); flops > 0 && p.ns > 0 {
			p.gflops = flops / p.ns
		}
		out[name] = p
	}
	return out
}

// loadReport reads a JSON report emitted by this tool. Plain reports and
// the {"before": …, "after": …} comparison shape (its "after" half) both
// load.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Benchmarks) > 0 {
		return &rep, nil
	}
	var pair map[string]*report
	if err := json.Unmarshal(data, &pair); err == nil && pair["after"] != nil {
		return pair["after"], nil
	}
	return nil, fmt.Errorf("%s: not a benchjson report", path)
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// runDiff prints a per-benchmark delta table and returns the exit code:
// 0 when no benchmark regressed past the threshold, 1 otherwise. Only
// benchmarks present in both reports are gated; additions and removals
// are reported informationally.
func runDiff(prevPath, newPath string, threshold float64) int {
	prevRep, err := loadReport(prevPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	prev, cur := summarize(prevRep), summarize(newRep)

	names := make([]string, 0, len(prev))
	for name := range prev {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		p, ok := cur[name]
		if !ok {
			fmt.Printf("%-60s removed\n", name)
			continue
		}
		o := prev[name]
		dns := pctDelta(o.ns, p.ns)
		line := fmt.Sprintf("%-60s ns/op %12.0f -> %12.0f  %+7.2f%%", name, o.ns, p.ns, dns)
		bad := dns > threshold
		if o.hasMem && p.hasMem {
			dby := pctDelta(o.bytes, p.bytes)
			line += fmt.Sprintf("   B/op %10.0f -> %10.0f  %+7.2f%%", o.bytes, p.bytes, dby)
			dal := pctDelta(o.allocs, p.allocs)
			line += fmt.Sprintf("   allocs/op %8.0f -> %8.0f  %+7.2f%%", o.allocs, p.allocs, dal)
			bad = bad || dby > threshold || dal > threshold
		}
		if o.gflops > 0 && p.gflops > 0 {
			// A GFLOP/s drop is a throughput regression: gate on -threshold.
			dgf := pctDelta(o.gflops, p.gflops)
			line += fmt.Sprintf("   GFLOP/s %6.2f -> %6.2f  %+7.2f%%", o.gflops, p.gflops, dgf)
			bad = bad || dgf < -threshold
		}
		if bad {
			line += "   REGRESSION"
			regressions++
		}
		fmt.Println(line)
	}
	added := make([]string, 0)
	for name := range cur {
		if _, ok := prev[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%-60s new (ns/op %.0f)\n", name, cur[name].ns)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold)
		return 1
	}
	return 0
}

// parseBenchLine decodes one standard benchmark result line:
//
//	BenchmarkName-8   160   6831173 ns/op   35318 B/op   86 allocs/op
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: fields[0], Iterations: iters, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		}
	}
	if flops := flopsFor(r.Name); flops > 0 && r.NsPerOp > 0 {
		r.GFLOPs = flops / r.NsPerOp
	}
	return r, true
}
