package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, recs []record) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(&report{Benchmarks: recs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(name string, ns, allocs float64) record {
	return record{Name: name, Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs,
		Raw: name + " 1 ns/op allocs/op"}
}

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkGNNEncode/medium-8   160   6831173 ns/op   35318 B/op   86 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkGNNEncode/medium-8" || r.NsPerOp != 6831173 || r.AllocsPerOp != 86 {
		t.Fatalf("bad record: %+v", r)
	}
}

func TestSummarizeTakesMinAndStripsSuffix(t *testing.T) {
	s := summarize(&report{Benchmarks: []record{
		rec("BenchmarkX-8", 120, 10),
		rec("BenchmarkX-8", 100, 10),
		rec("BenchmarkX-8", 110, 10),
	}})
	p, ok := s["BenchmarkX"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", s)
	}
	if p.ns != 100 || p.allocs != 10 || !p.hasMem {
		t.Fatalf("bad summary: %+v", p)
	}
}

func TestRunDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	prev := writeReport(t, dir, "prev.json", []record{rec("BenchmarkA", 1000, 50)})
	next := writeReport(t, dir, "next.json", []record{rec("BenchmarkA", 1050, 50)})
	if code := runDiff(prev, next, 10); code != 0 {
		t.Fatalf("5%% slowdown under a 10%% gate must pass, got exit %d", code)
	}
}

func TestRunDiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	prev := writeReport(t, dir, "prev.json", []record{rec("BenchmarkA", 1000, 50)})
	next := writeReport(t, dir, "next.json", []record{rec("BenchmarkA", 1300, 50)})
	if code := runDiff(prev, next, 10); code != 1 {
		t.Fatalf("30%% slowdown must fail the gate, got exit %d", code)
	}
}

func TestRunDiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	prev := writeReport(t, dir, "prev.json", []record{rec("BenchmarkA", 1000, 50)})
	next := writeReport(t, dir, "next.json", []record{rec("BenchmarkA", 1000, 70)})
	if code := runDiff(prev, next, 10); code != 1 {
		t.Fatalf("40%% alloc growth must fail the gate, got exit %d", code)
	}
}

func TestRunDiffIgnoresAdditionsAndRemovals(t *testing.T) {
	dir := t.TempDir()
	prev := writeReport(t, dir, "prev.json", []record{
		rec("BenchmarkA", 1000, 50),
		rec("BenchmarkGone", 10, 1),
	})
	next := writeReport(t, dir, "next.json", []record{
		rec("BenchmarkA", 900, 50),
		rec("BenchmarkNew", 5000, 999),
	})
	if code := runDiff(prev, next, 10); code != 0 {
		t.Fatalf("additions/removals must not trip the gate, got exit %d", code)
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(path, []byte("{\"hello\": 1}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(path); err == nil || !strings.Contains(err.Error(), "not a benchjson report") {
		t.Fatalf("want parse rejection, got %v", err)
	}
}

func TestFlopsForParsesDims(t *testing.T) {
	if got := flopsFor("BenchmarkMatMul/square-128x128x128-into"); got != 2*128*128*128 {
		t.Fatalf("flopsFor dims = %g", got)
	}
	if got := flopsFor("BenchmarkMatMul/encode-msg-2048x48x24"); got != 2*2048*48*24 {
		t.Fatalf("flopsFor encode dims = %g", got)
	}
	if got := flopsFor("BenchmarkGNNEncode/large"); got != 0 {
		t.Fatalf("dimless name must have 0 flops, got %g", got)
	}
}

func TestParseBenchLineComputesGFLOPs(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkMatMul/square-128x128x128-8   100   4194304 ns/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	// 2*128^3 flops / 4194304 ns = 1 GFLOP/s exactly.
	if r.GFLOPs != 1 {
		t.Fatalf("gflops = %g, want 1", r.GFLOPs)
	}
}

func TestSummarizeDerivesGFLOPsFromMinNs(t *testing.T) {
	s := summarize(&report{Benchmarks: []record{
		rec("BenchmarkMatMul/square-128x128x128-8", 8388608, 4),
		rec("BenchmarkMatMul/square-128x128x128-8", 4194304, 4),
	}})
	p := s["BenchmarkMatMul/square-128x128x128"]
	if p.gflops != 1 {
		t.Fatalf("gflops from min ns = %g, want 1", p.gflops)
	}
}

func TestRunDiffFailsOnGFLOPsRegression(t *testing.T) {
	dir := t.TempDir()
	// Same allocs; ns/op grows 30% so throughput drops ~23% — both the
	// ns/op and the GFLOP/s gates should flag it, and the exit code is 1.
	prev := writeReport(t, dir, "prev.json", []record{rec("BenchmarkMatMul/square-64x64x64", 1000, 4)})
	next := writeReport(t, dir, "next.json", []record{rec("BenchmarkMatMul/square-64x64x64", 1300, 4)})
	if code := runDiff(prev, next, 10); code != 1 {
		t.Fatalf("throughput regression must fail the gate, got exit %d", code)
	}
}
