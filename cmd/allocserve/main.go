// Command allocserve is the allocation-as-a-service daemon: it loads a
// checkpointed coarsening model and answers "stream graph spec →
// placement" over HTTP/JSON at high QPS. The hot path is the tape-free
// batched forward pass in internal/serve; repeat requests hit a bounded
// placement cache keyed by the canonical request fingerprint.
//
// Usage:
//
//	allocserve -listen :8080 -model model.json [-devices 10] [-mbps 1000]
//	curl -s localhost:8080/allocate -d '{"graph":{"source_rate":10000,
//	  "nodes":[{"ipt":10,"payload":64},{"ipt":20,"payload":32}],
//	  "edges":[{"src":0,"dst":1}]}}'
//
// Endpoints: POST /allocate, POST /reload, GET /healthz, GET /metrics,
// GET /debug/vars. SIGHUP re-reads -model and hot-swaps the parameters
// (in-flight requests finish on the old snapshot); SIGINT/SIGTERM drain
// and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	var (
		listen      = flag.String("listen", ":8080", "HTTP listen address, e.g. :8080 or :0")
		modelPath   = flag.String("model", "", "model parameter checkpoint (JSON); empty serves a fresh seeded model")
		hidden      = flag.Int("hidden", 24, "GNN half-embedding width (must match the checkpoint)")
		seed        = flag.Int64("seed", 1, "parameter seed when -model is empty")
		cacheSize   = flag.Int("cache", 4096, "placement cache entries (<0 disables)")
		batchWindow = flag.Duration("batch-window", 200*time.Microsecond, "coalescing window after the first request of a batch (0 disables)")
		maxBatch    = flag.Int("max-batch", 16, "max requests per batched forward pass")
		devices     = flag.Int("devices", 10, "default cluster size when a request omits its cluster")
		mbps        = flag.Float64("mbps", 1000, "default cluster link bandwidth (Mbps)")
		verbose     = flag.Bool("v", false, "verbose logging (debug level)")
	)
	flag.Parse()

	obs.Log.SetLevel(obs.LevelInfo)
	if *verbose {
		obs.Log.SetLevel(obs.LevelDebug)
	}

	svc, srv, err := startServer(*listen, *modelPath, *hidden, *seed, *cacheSize, *batchWindow, *maxBatch,
		sim.DefaultCluster(*devices, *mbps), obs.Default)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "allocserve: serving on http://%s (model_version=%d)\n", srv.Addr(), svc.Version())

	// SIGHUP hot-swaps the model; SIGINT/SIGTERM drain and exit. A dead
	// accept loop is polled so the daemon fails loudly instead of idling
	// with no listener.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if err := svc.Reload(*modelPath); err != nil {
					obs.Log.Warnf("allocserve: reload: %v", err)
				} else {
					fmt.Fprintf(os.Stderr, "allocserve: reloaded (model_version=%d)\n", svc.Version())
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "allocserve: %v, draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := srv.Shutdown(ctx)
			cancel()
			svc.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case <-tick.C:
			if err := srv.Err(); err != nil {
				svc.Close()
				fmt.Fprintf(os.Stderr, "allocserve: listener died: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// startServer wires model → service → HTTP listener; the smoke test runs
// the same path on :0.
func startServer(listen, modelPath string, hidden int, seed int64, cacheSize int,
	batchWindow time.Duration, maxBatch int, defCluster sim.Cluster, reg *obs.Registry) (*serve.Service, *obs.Server, error) {
	mcfg := core.DefaultConfig()
	mcfg.Hidden = hidden
	mcfg.Seed = seed
	model := core.New(mcfg)
	if modelPath != "" {
		if err := nn.LoadParams(model.PS, modelPath); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "loaded %d parameters from %s\n", model.PS.Count(), modelPath)
	}

	svc, err := serve.New(serve.Options{
		Model:       model,
		CacheSize:   cacheSize,
		BatchWindow: batchWindow,
		MaxBatch:    maxBatch,
		Registry:    reg,
	})
	if err != nil {
		return nil, nil, err
	}

	var h http.Handler = serve.Handler(svc, defCluster, modelPath, reg)
	srv, err := obs.ServeHandler(listen, h)
	if err != nil {
		svc.Close()
		return nil, nil, err
	}
	return svc, srv, nil
}
