// Command allocserve is the allocation-as-a-service daemon: it loads a
// checkpointed coarsening model and answers "stream graph spec →
// placement" over HTTP/JSON at high QPS. The hot path is the tape-free
// batched forward pass in internal/serve; repeat requests hit a bounded
// placement cache keyed by the canonical request fingerprint.
//
// Usage:
//
//	allocserve -listen :8080 -model model.json [-devices 10] [-mbps 1000] \
//	  [-max-inflight 256] [-slo-p99-ms 50] [-access-log access.jsonl] \
//	  [-trace-out serve-trace.json] [-pprof]
//	curl -s localhost:8080/allocate -d '{"graph":{"source_rate":10000,
//	  "nodes":[{"ipt":10,"payload":64},{"ipt":20,"payload":32}],
//	  "edges":[{"src":0,"dst":1}]}}'
//
// Endpoints: POST /allocate, POST /reload, GET /healthz, GET /statusz,
// GET /metrics, GET /debug/vars (and /debug/pprof with -pprof). Every
// response carries an X-Trace-Id; overload answers 429 + Retry-After.
// SIGHUP re-reads -model, hot-swaps the parameters (in-flight requests
// finish on the old snapshot), and flushes the trace/access-log sinks;
// SIGINT/SIGTERM drain, flush, and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// serverConfig is everything startServer needs; the smoke tests run the
// same wiring on :0 with private registries and temp sinks.
type serverConfig struct {
	listen      string
	modelPath   string
	hidden      int
	seed        int64
	cacheSize   int
	batchWindow time.Duration
	maxBatch    int
	maxInflight int
	sloP99MS    float64
	accessLog   string
	traceOut    string
	pprof       bool
	cluster     sim.Cluster
	reg         *obs.Registry
}

// obsSinks owns the file-backed observability outputs so every exit
// path — drain, reload, fatal — flushes them the same way.
type obsSinks struct {
	tracer   *obs.Tracer
	traceOut string
	access   *obs.JSONLWriter
}

// flush persists both sinks: the trace file is rewritten with every
// event so far (reload-safe), the access log is synced to disk.
func (o *obsSinks) flush() {
	if o.tracer != nil {
		if err := o.tracer.WriteFile(o.traceOut); err != nil {
			obs.Log.Warnf("allocserve: writing %s: %v", o.traceOut, err)
		}
	}
	if err := o.access.Sync(); err != nil {
		obs.Log.Warnf("allocserve: syncing access log: %v", err)
	}
}

// close flushes and closes the sinks (idempotent).
func (o *obsSinks) close() {
	o.flush()
	if err := o.access.Close(); err != nil {
		obs.Log.Warnf("allocserve: closing access log: %v", err)
	}
}

func main() {
	var (
		listen      = flag.String("listen", ":8080", "HTTP listen address, e.g. :8080 or :0")
		modelPath   = flag.String("model", "", "model parameter checkpoint (JSON); empty serves a fresh seeded model")
		hidden      = flag.Int("hidden", 24, "GNN half-embedding width (must match the checkpoint)")
		seed        = flag.Int64("seed", 1, "parameter seed when -model is empty")
		cacheSize   = flag.Int("cache", 4096, "placement cache entries (<0 disables)")
		batchWindow = flag.Duration("batch-window", 200*time.Microsecond, "coalescing window after the first request of a batch (0 disables)")
		maxBatch    = flag.Int("max-batch", 16, "max requests per batched forward pass")
		maxInflight = flag.Int("max-inflight", 0, "shed (429) once more than this many requests are in flight (0 = unbounded)")
		sloP99      = flag.Float64("slo-p99-ms", 0, "serve-latency p99 objective in ms; breaching it latches shed mode with hysteresis (0 = off)")
		accessLog   = flag.String("access-log", "", "append one JSONL access record per /allocate request to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of serving spans (queue-wait, batch-assembly, forward, cache-probe) to this file")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof/ (goroutine stacks and heap contents; opt-in)")
		rtEvery     = flag.Duration("runtime-every", 5*time.Second, "Go runtime-stats sampling period (goroutines, heap, GC pauses; 0 disables)")
		devices     = flag.Int("devices", 10, "default cluster size when a request omits its cluster")
		mbps        = flag.Float64("mbps", 1000, "default cluster link bandwidth (Mbps)")
		verbose     = flag.Bool("v", false, "verbose logging (debug level)")
	)
	flag.Parse()

	obs.Log.SetLevel(obs.LevelInfo)
	if *verbose {
		obs.Log.SetLevel(obs.LevelDebug)
	}

	if *rtEvery > 0 {
		stopRT := obs.StartRuntimeStats(obs.Default, *rtEvery)
		defer stopRT()
	}

	svc, srv, sinks, err := startServer(serverConfig{
		listen:      *listen,
		modelPath:   *modelPath,
		hidden:      *hidden,
		seed:        *seed,
		cacheSize:   *cacheSize,
		batchWindow: *batchWindow,
		maxBatch:    *maxBatch,
		maxInflight: *maxInflight,
		sloP99MS:    *sloP99,
		accessLog:   *accessLog,
		traceOut:    *traceOut,
		pprof:       *pprofOn,
		cluster:     sim.DefaultCluster(*devices, *mbps),
		reg:         obs.Default,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "allocserve: serving on http://%s (model_version=%d)\n", srv.Addr(), svc.Version())

	// SIGHUP hot-swaps the model and flushes the obs sinks; SIGINT/
	// SIGTERM drain, flush, and exit. A dead accept loop is polled so
	// the daemon fails loudly instead of idling with no listener.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if err := svc.Reload(*modelPath); err != nil {
					obs.Log.Warnf("allocserve: reload: %v", err)
				} else {
					fmt.Fprintf(os.Stderr, "allocserve: reloaded (model_version=%d)\n", svc.Version())
				}
				sinks.flush()
				continue
			}
			fmt.Fprintf(os.Stderr, "allocserve: %v, draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := srv.Shutdown(ctx)
			cancel()
			svc.Close()
			sinks.close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case <-tick.C:
			if err := srv.Err(); err != nil {
				svc.Close()
				sinks.close()
				fmt.Fprintf(os.Stderr, "allocserve: listener died: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// startServer wires model → service → HTTP listener plus the obs sinks;
// the smoke tests run the same path on :0.
func startServer(cfg serverConfig) (*serve.Service, *obs.Server, *obsSinks, error) {
	mcfg := core.DefaultConfig()
	mcfg.Hidden = cfg.hidden
	mcfg.Seed = cfg.seed
	model := core.New(mcfg)
	if cfg.modelPath != "" {
		if err := nn.LoadParams(model.PS, cfg.modelPath); err != nil {
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "loaded %d parameters from %s\n", model.PS.Count(), cfg.modelPath)
	}

	sinks := &obsSinks{traceOut: cfg.traceOut}
	if cfg.traceOut != "" {
		sinks.tracer = obs.NewTracer()
	}
	if cfg.accessLog != "" {
		var err error
		sinks.access, err = obs.CreateJSONL(cfg.accessLog)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	svc, err := serve.New(serve.Options{
		Model:       model,
		CacheSize:   cfg.cacheSize,
		BatchWindow: cfg.batchWindow,
		MaxBatch:    cfg.maxBatch,
		Registry:    cfg.reg,
		Tracer:      sinks.tracer,
		MaxInflight: cfg.maxInflight,
		SLOP99MS:    cfg.sloP99MS,
	})
	if err != nil {
		sinks.close()
		return nil, nil, nil, err
	}

	var h http.Handler = serve.NewHandler(svc, cfg.cluster, cfg.modelPath, cfg.reg,
		serve.HandlerOpts{AccessLog: sinks.access, Pprof: cfg.pprof})
	srv, err := obs.ServeHandler(cfg.listen, h)
	if err != nil {
		svc.Close()
		sinks.close()
		return nil, nil, nil, err
	}
	return svc, srv, sinks, nil
}
