package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
)

// specFromGraph converts a generated stream graph into the wire format.
func specFromGraph(g *stream.Graph) serve.GraphSpec {
	gs := serve.GraphSpec{SourceRate: g.SourceRate}
	for _, n := range g.Nodes {
		gs.Nodes = append(gs.Nodes, serve.NodeSpec{IPT: n.IPT, Payload: n.Payload, Selectivity: n.Selectivity, State: n.State})
	}
	for _, e := range g.Edges {
		gs.Edges = append(gs.Edges, serve.EdgeSpec{Src: e.Src, Dst: e.Dst, Payload: e.Payload})
	}
	return gs
}

// TestAllocServeSmoke boots the real server wiring on :0, allocates a
// generated graph twice over HTTP (cold then cached), hot-swaps via
// /reload, and checks the /metrics exposition carries the serve counters.
func TestAllocServeSmoke(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]

	reg := obs.NewRegistry()
	svc, srv, err := startServer("127.0.0.1:0", "", 24, 1, 1024, 200*time.Microsecond, 16, s.Cluster, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, err := json.Marshal(serve.AllocateRequest{Graph: specFromGraph(g)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() serve.AllocateResponse {
		t.Helper()
		resp, err := http.Post(base+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /allocate: status %d: %s", resp.StatusCode, msg)
		}
		var out serve.AllocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := post()
	if len(cold.Assign) != g.NumNodes() {
		t.Fatalf("assign covers %d of %d operators", len(cold.Assign), g.NumNodes())
	}
	for i, d := range cold.Assign {
		if d < 0 || d >= s.Cluster.Devices {
			t.Fatalf("operator %d on out-of-range device %d", i, d)
		}
	}
	if cold.Cached || cold.ModelVersion != 1 {
		t.Fatalf("cold response: cached=%v version=%d", cold.Cached, cold.ModelVersion)
	}
	if cold.RelativeThroughput <= 0 {
		t.Fatalf("non-positive relative throughput %v", cold.RelativeThroughput)
	}

	warm := post()
	if !warm.Cached {
		t.Fatal("second identical request missed the cache")
	}
	for i := range cold.Assign {
		if warm.Assign[i] != cold.Assign[i] {
			t.Fatalf("cached placement drifted at operator %d", i)
		}
	}

	// Hot swap over HTTP ("" reload path → re-snapshot live params).
	resp, err := http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(msg), "model_version=2") {
		t.Fatalf("POST /reload: status %d: %s", resp.StatusCode, msg)
	}
	if v := post().ModelVersion; v != 2 {
		t.Fatalf("post-reload allocation served by version %d", v)
	}

	// Health and metrics.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(hb), "ok model_version=2") {
		t.Fatalf("healthz: %s", hb)
	}
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"serve_requests_total 3",
		"serve_cache_hits_total 1",
		"serve_reloads_total 1",
		"serve_model_version 2",
		"# TYPE serve_latency_ms histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Malformed specs are client errors, not 500s.
	bad, err := http.Post(base+"/allocate", "application/json", strings.NewReader(`{"graph":{"source_rate":1,"nodes":[{"ipt":1,"payload":1}],"edges":[{"src":0,"dst":9}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: status %d, want 400", bad.StatusCode)
	}
}
