package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
)

// specFromGraph converts a generated stream graph into the wire format.
func specFromGraph(g *stream.Graph) serve.GraphSpec {
	gs := serve.GraphSpec{SourceRate: g.SourceRate}
	for _, n := range g.Nodes {
		gs.Nodes = append(gs.Nodes, serve.NodeSpec{IPT: n.IPT, Payload: n.Payload, Selectivity: n.Selectivity, State: n.State})
	}
	for _, e := range g.Edges {
		gs.Edges = append(gs.Edges, serve.EdgeSpec{Src: e.Src, Dst: e.Dst, Payload: e.Payload})
	}
	return gs
}

// readAccessLog flushes the sinks and parses every JSONL record.
func readAccessLog(t *testing.T, sinks *obsSinks, path string) []serve.AccessRecord {
	t.Helper()
	sinks.flush()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []serve.AccessRecord
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var r serve.AccessRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("access log line %d is not JSON: %v\n%s", i, err, line)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestAllocServeSmoke boots the real server wiring on :0, allocates a
// generated graph twice over HTTP (cold then cached), hot-swaps via
// /reload, and checks the /metrics exposition carries the serve
// counters and the access log carries one valid record per request.
func TestAllocServeSmoke(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]

	reg := obs.NewRegistry()
	logPath := filepath.Join(t.TempDir(), "access.jsonl")
	svc, srv, sinks, err := startServer(serverConfig{
		listen:      "127.0.0.1:0",
		hidden:      24,
		seed:        1,
		cacheSize:   1024,
		batchWindow: 200 * time.Microsecond,
		maxBatch:    16,
		accessLog:   logPath,
		cluster:     s.Cluster,
		reg:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer srv.Close()
	defer sinks.close()
	base := "http://" + srv.Addr()

	body, err := json.Marshal(serve.AllocateRequest{Graph: specFromGraph(g)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() serve.AllocateResponse {
		t.Helper()
		resp, err := http.Post(base+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatal("/allocate response has no X-Trace-Id")
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /allocate: status %d: %s", resp.StatusCode, msg)
		}
		var out serve.AllocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := post()
	if len(cold.Assign) != g.NumNodes() {
		t.Fatalf("assign covers %d of %d operators", len(cold.Assign), g.NumNodes())
	}
	for i, d := range cold.Assign {
		if d < 0 || d >= s.Cluster.Devices {
			t.Fatalf("operator %d on out-of-range device %d", i, d)
		}
	}
	if cold.Cached || cold.ModelVersion != 1 {
		t.Fatalf("cold response: cached=%v version=%d", cold.Cached, cold.ModelVersion)
	}
	if cold.RelativeThroughput <= 0 {
		t.Fatalf("non-positive relative throughput %v", cold.RelativeThroughput)
	}

	warm := post()
	if !warm.Cached {
		t.Fatal("second identical request missed the cache")
	}
	for i := range cold.Assign {
		if warm.Assign[i] != cold.Assign[i] {
			t.Fatalf("cached placement drifted at operator %d", i)
		}
	}

	// Hot swap over HTTP ("" reload path → re-snapshot live params).
	resp, err := http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(msg), "model_version=2") {
		t.Fatalf("POST /reload: status %d: %s", resp.StatusCode, msg)
	}
	if v := post().ModelVersion; v != 2 {
		t.Fatalf("post-reload allocation served by version %d", v)
	}

	// Health, status, and metrics.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(hb), "ok model_version=2") {
		t.Fatalf("healthz: %s", hb)
	}
	zr, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	zb, _ := io.ReadAll(zr.Body)
	zr.Body.Close()
	if !strings.Contains(string(zb), "model_version:  2") || !strings.Contains(string(zb), "latency_ms") {
		t.Fatalf("statusz: %s", zb)
	}
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"serve_requests_total 3",
		"serve_cache_hits_total 1",
		"serve_reloads_total 1",
		"serve_model_version 2",
		"# TYPE serve_latency_ms histogram",
		"# TYPE serve_latency_quantiles_ms summary",
		`serve_latency_quantiles_ms{quantile="0.99"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Malformed specs are client errors, not 500s.
	bad, err := http.Post(base+"/allocate", "application/json", strings.NewReader(`{"graph":{"source_rate":1,"nodes":[{"ipt":1,"payload":1}],"edges":[{"src":0,"dst":9}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: status %d, want 400", bad.StatusCode)
	}

	// One valid JSONL access record per /allocate request (3 OK + 1 bad).
	recs := readAccessLog(t, sinks, logPath)
	if len(recs) != 4 {
		t.Fatalf("access log has %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.TraceID == "" || r.LatencyMS < 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		if _, err := time.Parse(time.RFC3339Nano, r.TS); err != nil {
			t.Fatalf("record %d timestamp: %v", i, err)
		}
	}
	if recs[0].Status != http.StatusOK || recs[0].Nodes != g.NumNodes() || recs[0].Fingerprint == "" {
		t.Fatalf("cold record malformed: %+v", recs[0])
	}
	if !recs[1].Cached {
		t.Fatalf("cached record malformed: %+v", recs[1])
	}
	if recs[3].Status != http.StatusBadRequest || recs[3].Err == "" {
		t.Fatalf("bad-spec record malformed: %+v", recs[3])
	}
}

// TestAllocServeShedding drives the daemon wiring past its inflight
// bound over real HTTP: with MaxInflight=1 and a wide batch window, a
// parked request forces concurrent arrivals into 429 + Retry-After,
// serve_shed_total advances, the parked request and a follow-up both
// succeed, and the emitted Chrome trace carries the request's
// queue-wait and forward child spans.
func TestAllocServeShedding(t *testing.T) {
	s := gen.Small()
	graphs := s.Generate().Test[:3]

	reg := obs.NewRegistry()
	dir := t.TempDir()
	logPath := filepath.Join(dir, "access.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	svc, srv, sinks, err := startServer(serverConfig{
		listen: "127.0.0.1:0",
		hidden: 24,
		seed:   1,
		// Cache off so every request takes the admission-gated forward
		// path; the wide window parks the first request in the batcher.
		cacheSize:   -1,
		batchWindow: 750 * time.Millisecond,
		maxBatch:    16,
		maxInflight: 1,
		accessLog:   logPath,
		traceOut:    tracePath,
		cluster:     s.Cluster,
		reg:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer srv.Close()
	defer sinks.close()
	base := "http://" + srv.Addr()

	post := func(g *stream.Graph) *http.Response {
		t.Helper()
		body, err := json.Marshal(serve.AllocateRequest{Graph: specFromGraph(g)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Park the first request inside the batch window.
	var wg sync.WaitGroup
	wg.Add(1)
	var parkedStatus int
	go func() {
		defer wg.Done()
		resp := post(graphs[0])
		resp.Body.Close()
		parkedStatus = resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("serve_inflight").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never showed up in serve_inflight")
		}
		time.Sleep(time.Millisecond)
	}

	// Concurrent arrivals are shed at admission.
	sheds := 0
	for i := 0; i < 3; i++ {
		resp := post(graphs[1])
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status %d (%s), want 429", i, resp.StatusCode, msg)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatal("429 without X-Trace-Id")
		}
		sheds++
	}
	if got := reg.Counter("serve_shed_total").Value(); got != uint64(sheds) {
		t.Fatalf("serve_shed_total = %d, want %d", got, sheds)
	}

	// The parked request and a post-recovery request both succeed.
	wg.Wait()
	if parkedStatus != http.StatusOK {
		t.Fatalf("parked request: status %d, want 200", parkedStatus)
	}
	resp := post(graphs[2])
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request: status %d, want 200", resp.StatusCode)
	}

	// Shed requests are logged with the shed marker and zero 500s.
	recs := readAccessLog(t, sinks, logPath)
	var shedRecs, okRecs int
	for _, r := range recs {
		switch {
		case r.Shed && r.Status == http.StatusTooManyRequests:
			shedRecs++
		case r.Status == http.StatusOK:
			okRecs++
		default:
			t.Fatalf("unexpected access record: %+v", r)
		}
	}
	if shedRecs != sheds || okRecs != 2 {
		t.Fatalf("access log: %d shed / %d ok records, want %d / 2", shedRecs, okRecs, sheds)
	}

	// The flushed Chrome trace carries the request-scoped child spans.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	traced := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		spans[ev.Name]++
		if ev.Args["trace_id"] != "" {
			traced[ev.Name] = true
		}
	}
	// cacheSize<0 means no cache-probe spans; the batcher-side child
	// spans are the acceptance contract.
	for _, want := range []string{"queue-wait", "forward"} {
		if spans[want] == 0 {
			t.Fatalf("trace missing %q spans: %v", want, spans)
		}
		if !traced[want] {
			t.Fatalf("%q spans carry no trace_id arg", want)
		}
	}
}
