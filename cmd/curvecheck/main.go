// Command curvecheck validates a training-curve JSONL file produced by
// `coarsenrl -curve-out` (or the experiments harness): every line must be
// a parseable obs.CurveRecord and the step numbers must be strictly
// increasing — the invariant `make curve` gates on. It exits non-zero,
// naming the offending line, on any violation.
//
// Usage:
//
//	curvecheck curve.jsonl
//	curvecheck < curve.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r, name = f, os.Args[1]
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lastStep := 0
	lines := 0
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec obs.CurveRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			fail("%s:%d: not a JSON curve record: %v", name, lines, err)
		}
		if rec.Step <= lastStep {
			fail("%s:%d: step %d does not increase (previous %d)", name, lines, rec.Step, lastStep)
		}
		lastStep = rec.Step
	}
	if err := sc.Err(); err != nil {
		fail("%s: %v", name, err)
	}
	if lines == 0 {
		fail("%s: empty curve (no records)", name)
	}
	fmt.Printf("curvecheck: %s ok (%d records, final step %d)\n", name, lines, lastStep)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "curvecheck: "+format+"\n", args...)
	os.Exit(1)
}
