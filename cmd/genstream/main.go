// Command genstream generates synthetic stream-processing datasets (the
// paper's §V construction) and writes them as JSON.
//
// Graphs are generated one at a time and streamed straight into the JSON
// encoder, so peak memory is a single graph — the extreme preset (~1M
// nodes) exports in O(E) memory instead of materializing the whole split.
// The byte output is identical to marshaling the full set at once.
//
// Usage:
//
//	genstream -setting large-10k-10dev -out large.json [-scale 1.0] [-split train|test]
//	genstream -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	var (
		settingName = flag.String("setting", "medium-10k-10dev", "dataset preset name (see -list)")
		out         = flag.String("out", "", "output JSON path (default: stdout)")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		split       = flag.String("split", "test", "which split to emit: train or test")
		list        = flag.Bool("list", false, "list available presets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available settings:")
		for _, s := range gen.AllSettings() {
			fmt.Printf("  %-22s %7d-%7d nodes, %2d devices, %5.0f Mbps, %d train / %d test\n",
				s.Name, s.Config.MinNodes, s.Config.MaxNodes,
				s.Cluster.Devices, s.Cluster.Bandwidth/1e6, s.TrainN, s.TestN)
		}
		return
	}

	setting, err := gen.ByName(*settingName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := setting.Scale(*scale)
	n, seed, err := s.Split(*split)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	jw := stream.NewJSONWriter(bw)
	err = gen.GenerateEach(s.Config, n, seed, func(i int, g *stream.Graph) error {
		if err := jw.Write(g); err != nil {
			return err
		}
		if g.NumNodes() >= 50_000 {
			// Big graphs take a while each; show per-graph progress.
			fmt.Fprintf(os.Stderr, "graph %d/%d: %d nodes, %d edges\n", i+1, n, g.NumNodes(), g.NumEdges())
		}
		return nil
	})
	if err == nil {
		err = jw.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s graphs of %s\n", n, *split, s.Name)
}
