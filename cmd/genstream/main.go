// Command genstream generates synthetic stream-processing datasets (the
// paper's §V construction) and writes them as JSON.
//
// Usage:
//
//	genstream -setting large-10k-10dev -out large.json [-scale 1.0] [-split train|test]
//	genstream -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	var (
		settingName = flag.String("setting", "medium-10k-10dev", "dataset preset name (see -list)")
		out         = flag.String("out", "", "output JSON path (default: stdout)")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		split       = flag.String("split", "test", "which split to emit: train or test")
		list        = flag.Bool("list", false, "list available presets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available settings:")
		for _, s := range gen.AllSettings() {
			fmt.Printf("  %-22s %4d-%4d nodes, %2d devices, %5.0f Mbps, %d train / %d test\n",
				s.Name, s.Config.MinNodes, s.Config.MaxNodes,
				s.Cluster.Devices, s.Cluster.Bandwidth/1e6, s.TrainN, s.TestN)
		}
		return
	}

	setting, err := gen.ByName(*settingName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ds := setting.Scale(*scale).Generate()
	var graphs []*stream.Graph
	switch *split {
	case "train":
		graphs = ds.Train
	case "test":
		graphs = ds.Test
	default:
		fmt.Fprintf(os.Stderr, "unknown split %q (want train or test)\n", *split)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteJSON(w, graphs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s graphs of %s\n", len(graphs), *split, ds.Name)
}
