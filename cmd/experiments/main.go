// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                    # every table and figure
//	experiments -run table1,fig5,fig9      # a subset
//	experiments -run fig7 -scale 1 -budget default -outdir results/
//
// Experiment ids: fig1 fig3 fig5 fig6 fig7 fig8 fig9 table1 table2 table3.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/prof"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale  = flag.Float64("scale", 1.0, "dataset size multiplier")
		budget = flag.String("budget", "default", "training budget: default | quick")
		outdir = flag.String("outdir", "", "directory for per-experiment artifacts (CDF tables, DOT files)")
		seed   = flag.Int64("seed", 1, "random seed")
		quiet  = flag.Bool("quiet", false, "suppress training progress")
		plot   = flag.Bool("plot", false, "render ASCII CDF plots alongside the AUC tables")
		gbatch = flag.Int("graph-batch", 1, "graphs per optimizer step during training; >1 uses concurrent model replicas")
		twork  = flag.Int("train-workers", 0, "replica workers per graph batch (0 = all cores); never changes results")
		cpup   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memp   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpup, *memp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var b eval.Budget
	switch *budget {
	case "default":
		b = eval.DefaultBudget()
	case "quick":
		b = eval.QuickBudget()
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q (want default or quick)\n", *budget)
		os.Exit(2)
	}

	h := eval.NewHarness(*scale, b)
	h.Seed = *seed
	h.Quiet = *quiet
	h.OutDir = *outdir
	h.Plot = *plot
	h.GraphBatch = *gbatch
	h.TrainWorkers = *twork

	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	start := time.Now()
	if err := h.Run(ids...); err != nil {
		stopProf()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProf()
	fmt.Printf("completed %v in %v\n", ids, time.Since(start).Round(time.Second))
}
