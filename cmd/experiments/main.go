// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                    # every table and figure
//	experiments -run table1,fig5,fig9      # a subset
//	experiments -run fig7 -scale 1 -budget default -outdir results/
//
// Experiment ids: fig1 fig3 fig5 fig6 fig7 fig8 fig9 table1 table2 table3
// simvalidate transferapps robustness robustness-sim drift. The last two
// are deterministic (fluid-simulator timelines, bit-identical across runs
// and worker counts); "drift" compares static placement vs the reactive
// re-allocation loop vs a full re-coarsen under elastic drift scenarios.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale  = flag.Float64("scale", 1.0, "dataset size multiplier")
		budget = flag.String("budget", "default", "training budget: default | quick")
		outdir = flag.String("outdir", "", "directory for per-experiment artifacts (CDF tables, DOT files)")
		seed   = flag.Int64("seed", 1, "random seed")
		quiet  = flag.Bool("quiet", false, "suppress training progress")
		plot   = flag.Bool("plot", false, "render ASCII CDF plots alongside the AUC tables")
		gbatch = flag.Int("graph-batch", 1, "graphs per optimizer step during training; >1 uses concurrent model replicas")
		twork  = flag.Int("train-workers", 0, "replica workers per graph batch (0 = all cores); never changes results")
		cpup   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memp   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		verb   = flag.Bool("v", false, "verbose logging (debug level)")
		listen = flag.String("listen", "", "serve /metrics and /debug/vars on this address, e.g. :9090 or :0")
		trace  = flag.String("trace-out", "", "write a Chrome trace-event JSON of training phases to this file")
		curveP = flag.String("curve-out", "", "append one JSONL training-curve record per optimizer step to this file")
	)
	flag.Parse()

	obs.Log.SetLevel(obs.LevelInfo)
	if *verb {
		obs.Log.SetLevel(obs.LevelDebug)
	}

	stopProf, err := prof.Start(*cpup, *memp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *listen != "" {
		srv, err := obs.Serve(*listen, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (and /debug/vars)\n", srv.Addr())
	}
	var tracer *obs.Tracer
	var curve *obs.CurveWriter
	if *trace != "" {
		tracer = obs.NewTracer()
	}
	if *curveP != "" {
		curve, err = obs.CreateCurve(*curveP)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	flushObs := func() {
		if tracer != nil {
			if err := tracer.WriteFile(*trace); err != nil {
				obs.Log.Warnf("experiments: writing %s: %v", *trace, err)
			}
		}
		if curve != nil {
			if err := curve.Close(); err != nil {
				obs.Log.Warnf("experiments: closing %s: %v", *curveP, err)
			}
		}
	}

	var b eval.Budget
	switch *budget {
	case "default":
		b = eval.DefaultBudget()
	case "quick":
		b = eval.QuickBudget()
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q (want default or quick)\n", *budget)
		os.Exit(2)
	}

	h := eval.NewHarness(*scale, b)
	h.Seed = *seed
	h.Quiet = *quiet
	h.OutDir = *outdir
	h.Plot = *plot
	h.GraphBatch = *gbatch
	h.TrainWorkers = *twork
	h.Curve = curve
	h.Tracer = tracer

	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	start := time.Now()
	if err := h.Run(ids...); err != nil {
		flushObs()
		stopProf()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	flushObs()
	stopProf()
	fmt.Printf("completed %v in %v\n", ids, time.Since(start).Round(time.Second))
}
