// Command coarsenrl trains, saves, loads, and evaluates the
// edge-collapsing coarsening model.
//
// Usage:
//
//	coarsenrl -mode train -setting medium-10k-10dev -save model.json \
//	          [-pretrain 16] [-epochs 6] [-scale 1]
//	coarsenrl -mode eval -setting large-10k-10dev -load model.json [-scale 1]
//	coarsenrl -mode finetune -setting large-10k-10dev -load model.json \
//	          -save model-large.json [-epochs 4]
//	coarsenrl -mode curriculum -save model.json [-scale 0.5]
//	coarsenrl -mode drift -setting small [-load model.json] \
//	          [-drift-ticks 16] [-drift-lambda 0.3]
//
// Fault tolerance: training modes trap SIGINT/SIGTERM and checkpoint full
// training state (weights, optimizer moments, memory buffer, RNG,
// curriculum position) before exiting, so an interrupted run resumes
// exactly where it stopped:
//
//	coarsenrl -mode curriculum -checkpoint run.ckpt -autosave-every 25
//	^C  ->  "training interrupted (state saved to run.ckpt)"
//	coarsenrl -mode curriculum -checkpoint run.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/prof"
	"repro/internal/realloc"
	"repro/internal/rl"
	"repro/internal/sim"
)

// stopProf finalizes the pprof profiles; error exits call it explicitly
// because os.Exit skips defers.
var stopProf = func() {}

// flushObs writes the trace file and closes the curve writer; like
// stopProf it must run on every exit path.
var flushObs = func() {}

func main() {
	var (
		mode        = flag.String("mode", "train", "train | finetune | eval | curriculum | drift")
		settingName = flag.String("setting", "medium-10k-10dev", "dataset preset")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		loadPath    = flag.String("load", "", "load model parameters from JSON")
		savePath    = flag.String("save", "", "save model parameters to JSON")
		pretrain    = flag.Int("pretrain", 16, "Metis-guided imitation epochs")
		epochs      = flag.Int("epochs", 6, "REINFORCE epochs")
		lr          = flag.Float64("lr", 0.003, "Adam learning rate")
		hidden      = flag.Int("hidden", 24, "GNN half-embedding width")
		seed        = flag.Int64("seed", 1, "random seed")
		quiet       = flag.Bool("quiet", false, "suppress progress logs")
		ckptPath    = flag.String("checkpoint", "", "full training-state checkpoint file (written on interrupt and every -autosave-every steps)")
		resume      = flag.Bool("resume", false, "restore training state from -checkpoint before training")
		autosave    = flag.Int("autosave-every", 50, "autosave the checkpoint every N training steps (0 disables)")
		deadline    = flag.Duration("deadline", 0, "stop training (checkpointing first) after this duration, e.g. 30m (0 = none)")
		graphBatch  = flag.Int("graph-batch", 1, "graphs per optimizer step; >1 trains batch entries on concurrent model replicas")
		trainWork   = flag.Int("train-workers", 0, "replica workers per graph batch (0 = all cores); pure wall-clock knob, never changes results")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		verbose     = flag.Bool("v", false, "verbose logging (debug level)")
		listen      = flag.String("listen", "", "serve /metrics (Prometheus) and /debug/vars (expvar) on this address, e.g. :9090 or :0")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of training phases to this file")
		curveOut    = flag.String("curve-out", "", "append one JSONL training-curve record per optimizer step to this file")
		driftTicks  = flag.Int("drift-ticks", 16, "drift mode: timeline length in ticks")
		driftLambda = flag.Float64("drift-lambda", 0.3, "drift mode: move-cost weight λ in the migration utility (0 = migration is free)")
		multilevel  = flag.Bool("multilevel", false, "evaluate with the recursive multilevel driver (coarsen level by level, refine on the way back up) instead of one-shot coarsening")
	)
	flag.Parse()

	// CLI default is info-level progress on stderr; -v raises to debug,
	// -quiet keeps the trainer's own lines off as before.
	obs.Log.SetLevel(obs.LevelInfo)
	if *verbose {
		obs.Log.SetLevel(obs.LevelDebug)
	}

	var err error
	stopProf, err = prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *listen != "" {
		srv, err := obs.Serve(*listen, obs.Default)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (and /debug/vars)\n", srv.Addr())
	}
	var tracer *obs.Tracer
	var curve *obs.CurveWriter
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *curveOut != "" {
		curve, err = obs.CreateCurve(*curveOut)
		if err != nil {
			fatal(err)
		}
	}
	flushObs = func() {
		if tracer != nil {
			if err := tracer.WriteFile(*traceOut); err != nil {
				obs.Log.Warnf("coarsenrl: writing %s: %v", *traceOut, err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tracer.Len(), *traceOut)
			}
		}
		if curve != nil {
			n := curve.Len()
			if err := curve.Close(); err != nil {
				obs.Log.Warnf("coarsenrl: closing %s: %v", *curveOut, err)
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "wrote %d curve records to %s\n", n, *curveOut)
			}
		}
		flushObs = func() {} // idempotent: fatal paths and the defer both call it
	}
	defer flushObs()

	setting, err := gen.ByName(*settingName)
	if err != nil {
		fatal(err)
	}
	ds := setting.Scale(*scale).Generate()

	mcfg := core.DefaultConfig()
	mcfg.Hidden = *hidden
	mcfg.Seed = *seed
	model := core.New(mcfg)
	if *loadPath != "" {
		if err := nn.LoadParams(model.PS, *loadPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d parameters from %s\n", model.PS.Count(), *loadPath)
	}
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: *seed}}

	// Training runs under a signal-aware context: SIGINT/SIGTERM cancels
	// it, the trainer checkpoints at the next step boundary, and we exit
	// with a message saying where the state went. -deadline adds a timer
	// that triggers the same graceful path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	newTrainer := func(cfg rl.Config) *rl.Trainer {
		cfg.CheckpointPath = *ckptPath
		cfg.AutosaveEvery = *autosave
		cfg.GraphBatch = *graphBatch
		cfg.TrainWorkers = *trainWork
		cfg.Tracer = tracer
		cfg.Curve = curve
		tr := rl.NewTrainer(cfg, model, pipe)
		if *resume {
			if *ckptPath == "" {
				fatal(fmt.Errorf("-resume requires -checkpoint"))
			}
			if err := tr.LoadCheckpoint(*ckptPath); err != nil {
				fatal(fmt.Errorf("resume: %w", err))
			}
			fmt.Fprintf(os.Stderr, "resumed from %s (level %d, epoch %d, step %d)\n",
				*ckptPath, tr.Pos.Level, tr.Pos.Epoch, tr.Pos.Step)
		}
		return tr
	}

	switch *mode {
	case "curriculum":
		// The paper's size-based curriculum (§IV-C): medium → large →
		// xlarge, fine-tuning at each level. -setting is ignored.
		cfg := rl.DefaultConfig()
		cfg.PretrainEpochs = *pretrain
		cfg.LR = *lr
		cfg.Seed = *seed
		cfg.Quiet = *quiet
		tr := newTrainer(cfg)
		var levels []rl.Level
		for i, s := range []gen.Setting{gen.Medium(), gen.Large(), gen.XLarge()} {
			lds := s.Scale(*scale).Generate()
			ep := *epochs
			if i > 0 {
				ep = maxOf(1, *epochs/2) // fine-tuning stages are shorter
			}
			levels = append(levels, rl.Level{
				Name: s.Name, Graphs: lds.Train, Cluster: lds.Cluster, Epochs: ep,
			})
		}
		if err := tr.CurriculumCtx(ctx, levels); err != nil {
			exitInterrupted(err)
		}
		if *savePath != "" {
			// -save is the deployable weights artifact; full training
			// state goes to -checkpoint.
			if err := tr.SaveWeights(*savePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saved curriculum model to %s\n", *savePath)
		}
		evaluate(model, pipe, ds, *multilevel)
	case "train", "finetune":
		cfg := rl.DefaultConfig()
		cfg.Epochs = *epochs
		cfg.PretrainEpochs = *pretrain
		cfg.LR = *lr
		cfg.Seed = *seed
		cfg.Quiet = *quiet
		if *mode == "finetune" {
			cfg.PretrainEpochs = 0
			cfg.LR = *lr / 3
		}
		tr := newTrainer(cfg)
		if err := tr.TrainOnCtx(ctx, ds.Train, ds.Cluster); err != nil {
			exitInterrupted(err)
		}
		if *savePath != "" {
			if err := nn.SaveParams(model.PS, *savePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
		}
		evaluate(model, pipe, ds, *multilevel)
	case "eval":
		evaluate(model, pipe, ds, *multilevel)
	case "drift":
		// Replay a seeded drift timeline against the first test graph: the
		// model's merge scores rank region re-collapses in the online
		// re-allocation loop (an untrained model still works — its scores
		// just rank edges arbitrarily).
		if err := driftReplay(ctx, model, ds, *seed, *driftTicks, *driftLambda); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// exitInterrupted reports a graceful shutdown (signal, deadline, or
// training failure). The trainer has already checkpointed if a
// -checkpoint path was configured; the error says where.
func exitInterrupted(err error) {
	flushObs()
	stopProf()
	fmt.Fprintf(os.Stderr, "coarsenrl: %v\n", err)
	fmt.Fprintln(os.Stderr, "rerun with -resume to continue from the saved state")
	os.Exit(1)
}

func evaluate(model *core.Model, pipe *core.Pipeline, ds *gen.Dataset, multilevel bool) {
	ourName := "Coarsen+Metis"
	var ours []float64
	if multilevel {
		ourName = "Multilevel+Metis"
		mcfg := core.DefaultMultilevelConfig()
		for _, g := range ds.Test {
			a := pipe.AllocateMultilevel(g, ds.Cluster, mcfg)
			ours = append(ours, sim.Reward(g, a.Placement, ds.Cluster))
		}
	} else {
		ours = rl.Evaluate(pipe, ds.Test, ds.Cluster)
	}
	var metisVals, ourVals []float64
	for i, g := range ds.Test {
		mp := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: 1})
		mp.Devices = ds.Cluster.Devices
		metisVals = append(metisVals, sim.Reward(g, mp, ds.Cluster)*g.SourceRate)
		ourVals = append(ourVals, ours[i]*g.SourceRate)
	}
	rate := ds.Test[0].SourceRate
	rep := &eval.Report{
		Title: "coarsenrl evaluation on " + ds.Name,
		MaxX:  rate,
		Rows: []eval.Series{
			{Name: "Metis", Values: metisVals},
			{Name: ourName, Values: ourVals},
		},
	}
	fmt.Print(rep.String())
}

// driftReplay runs the online re-allocation loop over a generated drift
// scenario and prints the per-tick recovery trajectory.
func driftReplay(ctx context.Context, model *core.Model, ds *gen.Dataset, seed int64, ticks int, lambda float64) error {
	g := ds.Test[0]
	cluster := ds.Cluster
	p := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: seed})
	p.Devices = cluster.Devices

	events := gen.DriftEvents(gen.DefaultDriftConfig(ticks), cluster.Devices, rand.New(rand.NewSource(seed+97)))
	timeline, err := sim.BuildTimeline(cluster.Devices, ticks, events)
	if err != nil {
		return err
	}
	cfg := realloc.DefaultConfig()
	if lambda >= 0 {
		cfg.MoveCostWeight = lambda
	}
	loop, err := realloc.New(g, cluster, model, p, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("drift replay: %d operators, %d devices, %d ticks, %d events, λ=%.2f\n",
		g.NumNodes(), cluster.Devices, ticks, len(events), cfg.MoveCostWeight)
	for _, ev := range events {
		fmt.Printf("  event t=%-3d %-12s dev=%d dur=%d factor=%.2f\n",
			ev.Tick, ev.Kind, ev.Device, ev.DurTicks, ev.Factor)
	}
	fmt.Printf("%-5s %-6s %-4s %-4s %-9s %-6s %-6s %-12s %s\n",
		"tick", "rate", "up", "bw", "relative", "replan", "moved", "move-cost", "note")
	for t, st := range timeline {
		act, err := loop.Step(ctx, st)
		if err != nil {
			return err
		}
		note := ""
		switch {
		case act.Degraded:
			note = "degraded: holding stale placement"
		case act.Replanned:
			note = fmt.Sprintf("replanned at escalation %d", act.Escalation)
		case act.Triggered:
			note = "triggered, no better placement"
		}
		fmt.Printf("%-5d %-6.2f %-4d %-4.2f %-9.3f %-6v %-6d %-12.1f %s\n",
			t, st.RateFactor, st.NumUp(cluster.Devices), st.BandwidthFactor,
			act.Relative, act.Replanned, act.Moved, act.MoveCost, note)
	}
	fmt.Printf("final placement uses %d devices; degraded=%v\n",
		loop.Placement().UsedDevices(), loop.Degraded())
	return nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	flushObs()
	stopProf()
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
