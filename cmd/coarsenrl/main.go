// Command coarsenrl trains, saves, loads, and evaluates the
// edge-collapsing coarsening model.
//
// Usage:
//
//	coarsenrl -mode train -setting medium-10k-10dev -save model.json \
//	          [-pretrain 16] [-epochs 6] [-scale 1]
//	coarsenrl -mode eval -setting large-10k-10dev -load model.json [-scale 1]
//	coarsenrl -mode finetune -setting large-10k-10dev -load model.json \
//	          -save model-large.json [-epochs 4]
//	coarsenrl -mode curriculum -save model.json [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/placer"
	"repro/internal/rl"
	"repro/internal/sim"
)

func main() {
	var (
		mode        = flag.String("mode", "train", "train | finetune | eval")
		settingName = flag.String("setting", "medium-10k-10dev", "dataset preset")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		loadPath    = flag.String("load", "", "load model parameters from JSON")
		savePath    = flag.String("save", "", "save model parameters to JSON")
		pretrain    = flag.Int("pretrain", 16, "Metis-guided imitation epochs")
		epochs      = flag.Int("epochs", 6, "REINFORCE epochs")
		lr          = flag.Float64("lr", 0.003, "Adam learning rate")
		hidden      = flag.Int("hidden", 24, "GNN half-embedding width")
		seed        = flag.Int64("seed", 1, "random seed")
		quiet       = flag.Bool("quiet", false, "suppress progress logs")
	)
	flag.Parse()

	setting, err := gen.ByName(*settingName)
	if err != nil {
		fatal(err)
	}
	ds := setting.Scale(*scale).Generate()

	mcfg := core.DefaultConfig()
	mcfg.Hidden = *hidden
	mcfg.Seed = *seed
	model := core.New(mcfg)
	if *loadPath != "" {
		if err := nn.LoadParams(model.PS, *loadPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d parameters from %s\n", model.PS.Count(), *loadPath)
	}
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: *seed}}

	switch *mode {
	case "curriculum":
		// The paper's size-based curriculum (§IV-C): medium → large →
		// xlarge, fine-tuning at each level. -setting is ignored.
		cfg := rl.DefaultConfig()
		cfg.PretrainEpochs = *pretrain
		cfg.LR = *lr
		cfg.Seed = *seed
		cfg.Quiet = *quiet
		tr := rl.NewTrainer(cfg, model, pipe)
		var levels []rl.Level
		for i, s := range []gen.Setting{gen.Medium(), gen.Large(), gen.XLarge()} {
			lds := s.Scale(*scale).Generate()
			ep := *epochs
			if i > 0 {
				ep = maxOf(1, *epochs/2) // fine-tuning stages are shorter
			}
			levels = append(levels, rl.Level{
				Name: s.Name, Graphs: lds.Train, Cluster: lds.Cluster, Epochs: ep,
			})
		}
		tr.Curriculum(levels)
		if *savePath != "" {
			if err := tr.SaveCheckpoint(*savePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saved curriculum model to %s\n", *savePath)
		}
		evaluate(model, pipe, ds)
	case "train", "finetune":
		cfg := rl.DefaultConfig()
		cfg.Epochs = *epochs
		cfg.PretrainEpochs = *pretrain
		cfg.LR = *lr
		cfg.Seed = *seed
		cfg.Quiet = *quiet
		if *mode == "finetune" {
			cfg.PretrainEpochs = 0
			cfg.LR = *lr / 3
		}
		tr := rl.NewTrainer(cfg, model, pipe)
		tr.TrainOn(ds.Train, ds.Cluster)
		if *savePath != "" {
			if err := nn.SaveParams(model.PS, *savePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
		}
		evaluate(model, pipe, ds)
	case "eval":
		evaluate(model, pipe, ds)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func evaluate(model *core.Model, pipe *core.Pipeline, ds *gen.Dataset) {
	ours := rl.Evaluate(pipe, ds.Test, ds.Cluster)
	var metisVals, ourVals []float64
	for i, g := range ds.Test {
		mp := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: 1})
		mp.Devices = ds.Cluster.Devices
		metisVals = append(metisVals, sim.Reward(g, mp, ds.Cluster)*g.SourceRate)
		ourVals = append(ourVals, ours[i]*g.SourceRate)
	}
	rate := ds.Test[0].SourceRate
	rep := &eval.Report{
		Title: "coarsenrl evaluation on " + ds.Name,
		MaxX:  rate,
		Rows: []eval.Series{
			{Name: "Metis", Values: metisVals},
			{Name: "Coarsen+Metis", Values: ourVals},
		},
	}
	fmt.Print(rep.String())
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
