// Command simbench cross-checks the three execution models — linear-fluid
// solver, discrete-event solver, and the real concurrent runtime — on
// generated (or loaded) graphs under Metis placements, reporting per-graph
// relative throughputs and overall rank agreement.
//
// Usage:
//
//	simbench -setting small -n 6
//	simbench -graphs graphs.json -devices 5 -mbps 1000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/stream"
)

func main() {
	var (
		settingName = flag.String("setting", "small", "dataset preset for generated graphs")
		n           = flag.Int("n", 6, "number of generated graphs")
		graphsPath  = flag.String("graphs", "", "JSON graph file (overrides -setting)")
		devices     = flag.Int("devices", 5, "device count when loading graphs")
		mbps        = flag.Float64("mbps", 1000, "link bandwidth (Mbps) when loading graphs")
		wall        = flag.Duration("wall", 150*time.Millisecond, "runtime execution window per placement")
	)
	flag.Parse()

	var graphs []*stream.Graph
	var cluster sim.Cluster
	if *graphsPath != "" {
		f, err := os.Open(*graphsPath)
		if err != nil {
			fatal(err)
		}
		graphs, err = stream.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cluster = sim.DefaultCluster(*devices, *mbps)
	} else {
		setting, err := gen.ByName(*settingName)
		if err != nil {
			// Allow the short "small" alias.
			setting, err = gen.ByName(*settingName + "")
			if err != nil {
				fatal(err)
			}
		}
		setting.TestN = *n
		ds := setting.Generate()
		graphs = ds.Test
		cluster = ds.Cluster
	}

	rtCfg := runtime.DefaultConfig()
	rtCfg.WallTime = *wall

	fmt.Printf("%-6s %-7s %8s %8s %8s\n", "graph", "nodes", "fluid", "DES", "runtime")
	type obs struct{ f, d, r float64 }
	var all []obs
	for i, g := range graphs {
		p := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: 1})
		p.Devices = cluster.Devices
		fres, err := sim.Simulate(g, p, cluster)
		if err != nil {
			fatal(err)
		}
		dres, err := sim.SimulateDES(g, p, cluster, sim.DefaultDESConfig())
		if err != nil {
			fatal(err)
		}
		rres, err := runtime.Run(g, p, cluster, rtCfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6d %-7d %8.3f %8.3f %8.3f   %v\n",
			i, g.NumNodes(), fres.Relative, dres.Relative, rres.Relative, fres.Bottleneck)
		all = append(all, obs{fres.Relative, dres.Relative, rres.Relative})
	}

	// Rank concordance across graphs.
	conc := func(get func(obs) float64, get2 func(obs) float64) (int, int) {
		c, t := 0, 0
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				da := get(all[i]) - get(all[j])
				db := get2(all[i]) - get2(all[j])
				if math.Abs(da) < 0.03 || math.Abs(db) < 0.03 {
					continue
				}
				t++
				if da*db > 0 {
					c++
				}
			}
		}
		return c, t
	}
	fd, fdt := conc(func(o obs) float64 { return o.f }, func(o obs) float64 { return o.d })
	fr, frt := conc(func(o obs) float64 { return o.f }, func(o obs) float64 { return o.r })
	fmt.Printf("\nrank concordance: fluid-vs-DES %d/%d, fluid-vs-runtime %d/%d\n", fd, fdt, fr, frt)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
