package rl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/placer"
)

func TestScoreDecisionMemoizes(t *testing.T) {
	ds, m, pipe := quickSetup(t, 1)
	tr := NewTrainer(DefaultConfig(), m, pipe)
	g := ds.Train[0]
	d := make(core.Decision, g.NumEdges())
	for i := range d {
		d[i] = i%3 == 0
	}
	r1 := tr.scoreDecision(0, g, ds.Cluster, d)
	r2 := tr.scoreDecision(0, g, ds.Cluster, d)
	if r1 != r2 {
		t.Fatalf("memoized reward differs: %g vs %g", r1, r2)
	}
	hits, misses := tr.Rewards.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses, want 1/1", hits, misses)
	}
	// A different decision must miss (exact keys, no collisions).
	d[0] = !d[0]
	tr.scoreDecision(0, g, ds.Cluster, d)
	if h, ms := tr.Rewards.Stats(); h != 1 || ms != 2 {
		t.Fatalf("stats after distinct decision = %d hits, %d misses", h, ms)
	}
}

func TestNegativeRewardCacheSizeDisablesMemoization(t *testing.T) {
	_, m, pipe := quickSetup(t, 1)
	cfg := DefaultConfig()
	cfg.RewardCacheSize = -1
	tr := NewTrainer(cfg, m, pipe)
	if tr.Rewards != nil {
		t.Fatal("negative RewardCacheSize should disable the cache")
	}
}

// TestMemoizationPreservesTrajectory trains the same setup with the cache
// enabled and disabled: because cache keys are exact and scoring consumes
// no trainer randomness, the training trajectory must be bit-identical.
func TestMemoizationPreservesTrajectory(t *testing.T) {
	run := func(cacheSize int) ([]float64, []float64) {
		s := gen.Medium5K()
		s.TrainN, s.TestN = 2, 2
		s.Config.MinNodes, s.Config.MaxNodes = 30, 50
		ds := s.Generate()
		cfg := core.DefaultConfig()
		cfg.Hidden, cfg.EdgeDim, cfg.MergeDim = 6, 3, 6
		m := core.New(cfg)
		pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
		tcfg := DefaultConfig()
		tcfg.PretrainEpochs, tcfg.Epochs = 2, 3
		tcfg.Quiet = true
		tcfg.RewardCacheSize = cacheSize
		tr := NewTrainer(tcfg, m, pipe)
		tr.TrainOn(ds.Train, ds.Cluster)
		return tr.History, Evaluate(pipe, ds.Test, ds.Cluster)
	}
	histOn, evalOn := run(0)    // default-sized cache
	histOff, evalOff := run(-1) // memoization disabled
	for i := range histOn {
		if histOn[i] != histOff[i] {
			t.Fatalf("epoch %d history diverged with memoization: %g vs %g", i, histOn[i], histOff[i])
		}
	}
	for i := range evalOn {
		if evalOn[i] != evalOff[i] {
			t.Fatalf("eval %d diverged with memoization: %g vs %g", i, evalOn[i], evalOff[i])
		}
	}
}

// TestStepSkipsUpdateWhenAllRewardsNonFinite forces every on-policy
// sample to score NaN (by poisoning the memoization cache) and verifies
// the step neither crashes nor moves the parameters: with no finite
// sample and an empty buffer there is nothing to learn from.
func TestStepSkipsUpdateWhenAllRewardsNonFinite(t *testing.T) {
	s := gen.Medium5K()
	s.TrainN, s.TestN = 1, 1
	s.Config.MinNodes, s.Config.MaxNodes = 4, 6 // few edges → enumerable decisions
	ds := s.Generate()
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EdgeDim, cfg.MergeDim = 6, 3, 6
	m := core.New(cfg)
	pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	tcfg := DefaultConfig()
	tcfg.Quiet = true
	tr := NewTrainer(tcfg, m, pipe)

	g := ds.Train[0]
	ne := g.NumEdges()
	if ne > 12 {
		t.Skipf("generated graph has %d edges; too many to enumerate", ne)
	}
	for mask := 0; mask < 1<<ne; mask++ {
		d := make(core.Decision, ne)
		for i := range d {
			d[i] = mask&(1<<i) != 0
		}
		tr.Rewards.Put(core.DecisionKey(0, d), math.NaN())
	}

	before := m.Probs(g, ds.Cluster)
	r, err := tr.step(0, g, ds.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("on-policy mean with no finite sample = %g, want 0", r)
	}
	after := m.Probs(g, ds.Cluster)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("parameters moved on an all-NaN batch: prob[%d] %g → %g", i, before[i], after[i])
		}
	}
	if len(tr.buffer[0]) != 0 {
		t.Fatalf("non-finite samples admitted to buffer: %v", tr.buffer[0])
	}
}

// TestStepFiltersNonFiniteFromBaseline poisons a strict subset of the
// decision space and checks the step still learns from the finite
// remainder without the baseline or loss going non-finite.
func TestStepFiltersNonFiniteFromBaseline(t *testing.T) {
	s := gen.Medium5K()
	s.TrainN, s.TestN = 1, 1
	s.Config.MinNodes, s.Config.MaxNodes = 4, 6
	ds := s.Generate()
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EdgeDim, cfg.MergeDim = 6, 3, 6
	m := core.New(cfg)
	pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	tcfg := DefaultConfig()
	tcfg.Quiet = true
	tr := NewTrainer(tcfg, m, pipe)

	g := ds.Train[0]
	ne := g.NumEdges()
	if ne > 12 {
		t.Skipf("generated graph has %d edges; too many to enumerate", ne)
	}
	// Poison the odd half of the decision space: samples landing there
	// score NaN, the rest stay finite.
	for mask := 0; mask < 1<<ne; mask++ {
		if mask%2 == 0 {
			continue
		}
		d := make(core.Decision, ne)
		for i := range d {
			d[i] = mask&(1<<i) != 0
		}
		tr.Rewards.Put(core.DecisionKey(0, d), math.NaN())
	}
	if _, err := tr.step(0, g, ds.Cluster); err != nil {
		t.Fatal(err)
	}
	probs := m.Probs(g, ds.Cluster)
	for i, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prob[%d] non-finite after partially poisoned step: %g", i, p)
		}
	}
	for _, b := range tr.buffer[0] {
		if !isFinite(b.reward) {
			t.Fatalf("non-finite reward in buffer: %g", b.reward)
		}
	}
}
