package rl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

func quickSetup(t *testing.T, trainN int) (*gen.Dataset, *core.Model, *core.Pipeline) {
	t.Helper()
	s := gen.Medium5K()
	s.TrainN, s.TestN = trainN, 4
	s.Config.MinNodes, s.Config.MaxNodes = 40, 70 // faster tests
	ds := s.Generate()
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EdgeDim, cfg.MergeDim = 8, 4, 8
	m := core.New(cfg)
	pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	return ds, m, pipe
}

func TestNewTrainerRejectsForeignPipeline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, m, _ := quickSetup(t, 1)
	other := core.New(core.DefaultConfig())
	NewTrainer(DefaultConfig(), m, &core.Pipeline{Model: other, Placer: placer.Metis{}})
}

func TestPretrainImitatesGuidedDecisions(t *testing.T) {
	ds, m, pipe := quickSetup(t, 4)
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 25
	cfg.Epochs = 0
	cfg.LR = 0.01
	cfg.Quiet = true
	tr := NewTrainer(cfg, m, pipe)
	tr.TrainOn(ds.Train, ds.Cluster)

	// After imitation, guided (Metis-MSF) edges must carry clearly higher
	// probabilities than non-guided edges on the training graphs.
	var gSum, oSum float64
	var gN, oN int
	for _, g := range ds.Train {
		mp := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: cfg.Seed})
		mp.Devices = ds.Cluster.Devices
		guided := metis.InferCollapsedEdges(g, mp)
		probs := m.Probs(g, ds.Cluster)
		for i, p := range probs {
			if guided[i] {
				gSum += p
				gN++
			} else {
				oSum += p
				oN++
			}
		}
	}
	gMean, oMean := gSum/float64(gN), oSum/float64(oN)
	if gMean <= oMean+0.1 {
		t.Fatalf("no discrimination after pretraining: guided %.3f vs other %.3f", gMean, oMean)
	}
}

func TestTrainImprovesOnPolicyReward(t *testing.T) {
	ds, m, pipe := quickSetup(t, 4)
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 6
	cfg.Epochs = 6
	cfg.Quiet = true
	tr := NewTrainer(cfg, m, pipe)
	tr.TrainOn(ds.Train, ds.Cluster)
	if len(tr.History) != 6 {
		t.Fatalf("history length %d", len(tr.History))
	}
	if tr.History[len(tr.History)-1] <= tr.History[0] {
		t.Fatalf("on-policy reward did not improve: %v", tr.History)
	}
}

func TestEvaluateNeverWorseThanMetisMean(t *testing.T) {
	// The ranked-sweep inference includes the no-coarsening candidate,
	// which hands the raw graph to Metis — so per-graph results are at
	// least Metis's (same placer seed).
	ds, m, pipe := quickSetup(t, 2)
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 2
	cfg.Epochs = 0
	cfg.Quiet = true
	NewTrainer(cfg, m, pipe).TrainOn(ds.Train, ds.Cluster)
	ours := Evaluate(pipe, ds.Test, ds.Cluster)
	for i, g := range ds.Test {
		mp := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: 1})
		mp.Devices = ds.Cluster.Devices
		if ours[i] < sim.Reward(g, mp, ds.Cluster)-1e-12 {
			t.Fatalf("graph %d: coarsen %.4f worse than metis", i, ours[i])
		}
	}
}

func TestEvaluateGreedyValidRange(t *testing.T) {
	ds, _, pipe := quickSetup(t, 1)
	vals := EvaluateGreedy(pipe, ds.Test, ds.Cluster)
	for _, v := range vals {
		if v <= 0 || v > 1 {
			t.Fatalf("reward %g out of range", v)
		}
	}
}

func TestResetBuffersAllowsNewDataset(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 1
	cfg.Epochs = 1
	cfg.Quiet = true
	tr := NewTrainer(cfg, m, pipe)
	tr.TrainOn(ds.Train, ds.Cluster)
	tr.ResetBuffers()
	// Training on a different dataset after reset must not panic and must
	// append to history.
	tr.TrainOn(ds.Test, ds.Cluster)
	if len(tr.History) != 2 {
		t.Fatalf("history %v", tr.History)
	}
}

func TestCurriculumRunsAllLevels(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	s2 := gen.Medium5K()
	s2.TrainN, s2.TestN = 2, 1
	s2.Config.MinNodes, s2.Config.MaxNodes = 70, 100
	s2.Seed = 999
	ds2 := s2.Generate()

	cfg := DefaultConfig()
	cfg.PretrainEpochs = 1
	cfg.Quiet = true
	tr := NewTrainer(cfg, m, pipe)
	tr.Curriculum([]Level{
		{Name: "level1", Graphs: ds.Train, Cluster: ds.Cluster, Epochs: 1},
		{Name: "level2", Graphs: ds2.Train, Cluster: ds2.Cluster, Epochs: 2},
	})
	if len(tr.History) != 3 {
		t.Fatalf("curriculum history %v", tr.History)
	}
	if tr.Cfg.Epochs != cfg.Epochs {
		t.Fatal("curriculum leaked epoch override")
	}
}

func TestSeedMetisGuidedPopulatesBuffers(t *testing.T) {
	ds, m, pipe := quickSetup(t, 3)
	cfg := DefaultConfig()
	cfg.Quiet = true
	tr := NewTrainer(cfg, m, pipe)
	tr.SeedMetisGuided(ds.Train, ds.Cluster)
	if len(tr.buffer) != len(ds.Train) {
		t.Fatalf("buffer for %d graphs, want %d", len(tr.buffer), len(ds.Train))
	}
	for gi, buf := range tr.buffer {
		if len(buf) != 1 || !buf[0].guided {
			t.Fatalf("graph %d buffer %v", gi, buf)
		}
		if buf[0].reward <= 0 || buf[0].reward > 1 {
			t.Fatalf("guided reward %g", buf[0].reward)
		}
	}
}

func TestBufferKeepsBestAndEvictsGuidedOnTie(t *testing.T) {
	_, m, pipe := quickSetup(t, 1)
	cfg := DefaultConfig()
	cfg.BufferSamples = 2
	tr := NewTrainer(cfg, m, pipe)
	tr.buffer[0] = []scored{{d: core.Decision{true}, reward: 0.5, guided: true}}
	tr.updateBuffer(0, []scored{
		{d: core.Decision{false}, reward: 0.5},
		{d: core.Decision{true}, reward: 0.9},
		{d: core.Decision{false}, reward: 0.1},
	})
	buf := tr.buffer[0]
	if len(buf) != 2 {
		t.Fatalf("buffer size %d", len(buf))
	}
	if buf[0].reward != 0.9 {
		t.Fatal("best sample not kept first")
	}
	// At equal reward, the on-policy sample displaces the guided one.
	if buf[1].guided {
		t.Fatal("guided entry not evicted by equal on-policy sample")
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	run := func() []float64 {
		s := gen.Medium5K()
		s.TrainN, s.TestN = 2, 2
		s.Config.MinNodes, s.Config.MaxNodes = 30, 50
		ds := s.Generate()
		cfg := core.DefaultConfig()
		cfg.Hidden, cfg.EdgeDim, cfg.MergeDim = 6, 3, 6
		m := core.New(cfg)
		pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
		tcfg := DefaultConfig()
		tcfg.PretrainEpochs, tcfg.Epochs = 2, 2
		tcfg.Quiet = true
		NewTrainer(tcfg, m, pipe).TrainOn(ds.Train, ds.Cluster)
		return Evaluate(pipe, ds.Test, ds.Cluster)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Skipf("training nondeterministic at graph %d (%g vs %g): heavy-edge matching ties", i, a[i], b[i])
		}
	}
}

var _ = stream.NewGraph // keep import for helper evolution
