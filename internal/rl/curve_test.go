package rl

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// curveConfig is the seeded 3-step configuration the curve tests share.
func curveConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.PretrainEpochs = 1
	cfg.OnPolicySamples = 2
	cfg.Seed = 11
	cfg.Quiet = true
	return cfg
}

// trainWithSinks runs one seeded epoch on trainN graphs with the given
// sinks attached and returns the per-epoch reward history plus the raw
// JSONL bytes (empty when curve output is disabled).
func trainWithSinks(t *testing.T, withCurve bool, tracer *obs.Tracer, workers int) ([]float64, []byte) {
	t.Helper()
	ds, m, pipe := quickSetup(t, 3)
	cfg := curveConfig()
	cfg.Tracer = tracer
	if workers > 0 {
		cfg.GraphBatch = 3
		cfg.TrainWorkers = workers
	}
	var buf bytes.Buffer
	if withCurve {
		cfg.Curve = obs.NewCurveWriter(json.NewEncoder(&buf))
	}
	tr := NewTrainer(cfg, m, pipe)
	if err := tr.TrainOn(ds.Train, ds.Cluster); err != nil {
		t.Fatal(err)
	}
	return tr.History, buf.Bytes()
}

// stripPhases removes the wall-clock phase_ms field, which legitimately
// varies run to run; everything else in a curve record is deterministic
// for a fixed seed.
func stripPhases(t *testing.T, raw []byte) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("curve line is not JSON: %v\n%s", err, line)
		}
		delete(rec, "phase_ms")
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// TestCurveGoldenStructure is the golden-file test for the JSONL curve on
// a seeded 3-step run: field-level structural assertions on every record,
// plus run-twice byte determinism once the timing field is stripped.
func TestCurveGoldenStructure(t *testing.T) {
	_, raw := trainWithSinks(t, true, nil, 0)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d curve records for 3 graphs × 1 epoch, want 3", len(lines))
	}
	for i, line := range lines {
		var rec obs.CurveRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not JSON: %v", i, err)
		}
		if rec.Step != i+1 {
			t.Fatalf("record %d has step %d, want %d", i, rec.Step, i+1)
		}
		if rec.Graphs != 1 || rec.Epoch != 0 || rec.Level != 0 {
			t.Fatalf("record %d has unexpected shape: %+v", i, rec)
		}
		if rec.Reward <= 0 || rec.Reward > 1 {
			t.Fatalf("record %d reward %v outside (0, 1]", i, rec.Reward)
		}
		if rec.Baseline <= 0 || rec.Baseline > 1 {
			t.Fatalf("record %d baseline %v outside (0, 1]", i, rec.Baseline)
		}
		if rec.Entropy < 0 || rec.Entropy > math.Log(2)+1e-9 {
			t.Fatalf("record %d entropy %v outside [0, ln 2]", i, rec.Entropy)
		}
		if math.IsNaN(rec.Loss) || math.IsNaN(rec.GradNorm) || rec.GradNorm < 0 {
			t.Fatalf("record %d loss/grad-norm invalid: %+v", i, rec)
		}
		if rec.CacheHitRate < 0 || rec.CacheHitRate > 1 {
			t.Fatalf("record %d cache hit rate %v outside [0, 1]", i, rec.CacheHitRate)
		}
		if rec.BufferHits < 0 || rec.BufferHits > curveConfig().BufferSamples {
			t.Fatalf("record %d buffer hits %d outside [0, %d]", i, rec.BufferHits, curveConfig().BufferSamples)
		}
		for _, ph := range []string{"encode", "sample", "simulate", "backward", "all_reduce"} {
			if _, ok := rec.PhaseMS[ph]; !ok {
				t.Fatalf("record %d missing phase %q: %v", i, ph, rec.PhaseMS)
			}
		}
	}

	// Run-twice determinism: identical seed → identical records modulo
	// wall-clock phase timings.
	_, raw2 := trainWithSinks(t, true, nil, 0)
	a, b := stripPhases(t, raw), stripPhases(t, raw2)
	if len(a) != len(b) {
		t.Fatalf("reruns emitted %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across seeded reruns:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestInstrumentationDoesNotPerturbTrajectory trains with and without
// sinks and asserts bit-identical reward histories — the observation-only
// contract the obs package documents.
func TestInstrumentationDoesNotPerturbTrajectory(t *testing.T) {
	plainHist, _ := trainWithSinks(t, false, nil, 0)
	obsHist, _ := trainWithSinks(t, true, obs.NewTracer(), 0)
	if len(plainHist) != len(obsHist) {
		t.Fatalf("history lengths differ: %d vs %d", len(plainHist), len(obsHist))
	}
	for i := range plainHist {
		if plainHist[i] != obsHist[i] {
			t.Fatalf("epoch %d reward differs with instrumentation: %v vs %v",
				i, plainHist[i], obsHist[i])
		}
	}
}

// TestBatchedDeterminismWithInstrumentation runs the batched trainer with
// 1 and 8 workers, both fully instrumented, and asserts bit-identical
// curves (modulo timing) and histories — worker count must stay a pure
// wall-clock knob even while every worker emits spans.
func TestBatchedDeterminismWithInstrumentation(t *testing.T) {
	hist1, raw1 := trainWithSinks(t, true, obs.NewTracer(), 1)
	hist8, raw8 := trainWithSinks(t, true, obs.NewTracer(), 8)
	if len(hist1) != len(hist8) {
		t.Fatalf("history lengths differ: %d vs %d", len(hist1), len(hist8))
	}
	for i := range hist1 {
		if hist1[i] != hist8[i] {
			t.Fatalf("epoch %d reward differs across worker counts: %v vs %v",
				i, hist1[i], hist8[i])
		}
	}
	a, b := stripPhases(t, raw1), stripPhases(t, raw8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("curve record %d differs across worker counts:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestTrainerEmitsTraceSpans checks the tracer sees every training phase
// with sane lanes after an instrumented run.
func TestTrainerEmitsTraceSpans(t *testing.T) {
	tracer := obs.NewTracer()
	trainWithSinks(t, false, tracer, 2)
	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Name] = true
		if ev.Ph != "X" || ev.Dur < 0 || ev.TID < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Name == "all-reduce" && ev.TID != 0 {
			t.Fatalf("all-reduce must be on the leader lane 0, got %+v", ev)
		}
	}
	for _, name := range []string{"encode", "sample", "simulate", "backward", "all-reduce"} {
		if !seen[name] {
			t.Fatalf("missing %q spans in %v", name, seen)
		}
	}
}

// TestCurveLevelEpochProgress checks level/epoch stamping across a
// two-epoch run: epoch advances in the records.
func TestCurveLevelEpochProgress(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	cfg := curveConfig()
	cfg.Epochs = 2
	var buf bytes.Buffer
	cfg.Curve = obs.NewCurveWriter(json.NewEncoder(&buf))
	tr := NewTrainer(cfg, m, pipe)
	if err := tr.TrainOn(ds.Train, ds.Cluster); err != nil {
		t.Fatal(err)
	}
	var epochs []int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.CurveRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, rec.Epoch)
	}
	want := []int{0, 0, 1, 1}
	if len(epochs) != len(want) {
		t.Fatalf("got %d records, want %d", len(epochs), len(want))
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("epoch sequence %v, want %v", epochs, want)
		}
	}
}
