package rl

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func batchConfig(graphBatch, workers int) Config {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	cfg.PretrainEpochs = 2
	cfg.OnPolicySamples = 2
	cfg.BufferSamples = 2
	cfg.Seed = 11
	cfg.Quiet = true
	cfg.GraphBatch = graphBatch
	cfg.TrainWorkers = workers
	return cfg
}

// batchRun trains a fresh model on a fresh (but identically seeded)
// dataset and returns the trainer and model for trajectory comparison.
func batchRun(t *testing.T, graphBatch, workers int) (*Trainer, *core.Model) {
	t.Helper()
	ds, m, pipe := quickSetup(t, 6)
	tr := NewTrainer(batchConfig(graphBatch, workers), m, pipe)
	if err := tr.TrainOn(ds.Train, ds.Cluster); err != nil {
		t.Fatal(err)
	}
	return tr, m
}

// TestBatchedTrainingDeterministicAcrossWorkers is the core data-parallel
// guarantee: for a fixed GraphBatch, the number of replica workers is a
// pure wall-clock knob. Reward histories and final parameters must be
// bit-identical between a serial run and a maximally parallel one,
// including the uneven tail batch (6 graphs in batches of 4).
func TestBatchedTrainingDeterministicAcrossWorkers(t *testing.T) {
	tr1, m1 := batchRun(t, 4, 1)
	tr8, m8 := batchRun(t, 4, 8)
	historyEqual(t, tr1.History, tr8.History)
	paramsEqual(t, m1, m8)
	if tr1.sampleSeq != tr8.sampleSeq {
		t.Fatalf("substream cursors diverged: %d vs %d", tr1.sampleSeq, tr8.sampleSeq)
	}
}

// TestGraphBatchDefaultsAreEquivalent pins GraphBatch=0 and GraphBatch=1
// to the same (classic serial) trajectory regardless of TrainWorkers —
// with one graph per update there is nothing to parallelize over.
func TestGraphBatchDefaultsAreEquivalent(t *testing.T) {
	tr0, m0 := batchRun(t, 0, 0)
	tr1, m1 := batchRun(t, 1, 8)
	historyEqual(t, tr0.History, tr1.History)
	paramsEqual(t, m0, m1)
}

// TestBatchedResumeMatchesUninterruptedTrajectory kills a batched run
// mid-epoch and resumes it in a fresh process with a different worker
// count: the checkpointed substream cursor and batch position must
// reproduce the uninterrupted trajectory exactly.
func TestBatchedResumeMatchesUninterruptedTrajectory(t *testing.T) {
	runs := resumeSetup(t)
	path := filepath.Join(t.TempDir(), "batched.ckpt")

	mkCfg := func(workers int) Config {
		cfg := batchConfig(2, workers)
		return cfg
	}

	trA := NewTrainer(mkCfg(1), runs[0].m, runs[0].pipe)
	if err := trA.TrainOn(runs[0].ds.Train, runs[0].ds.Cluster); err != nil {
		t.Fatal(err)
	}

	// Err() is polled once per pretrain epoch, once per epoch start, and
	// once per batch (3 graphs → 2 batches per epoch); 7 polls dies inside
	// epoch 2 of 3.
	cfgB := mkCfg(4)
	cfgB.CheckpointPath = path
	cfgB.AutosaveEvery = 1
	trB := NewTrainer(cfgB, runs[1].m, runs[1].pipe)
	killCtx := &stepLimitCtx{Context: context.Background(), remaining: 7}
	err := trB.TrainOnCtx(killCtx, runs[1].ds.Train, runs[1].ds.Cluster)
	if err == nil {
		t.Fatal("killed run must report interruption")
	}
	if !strings.Contains(err.Error(), "state saved to") {
		t.Fatalf("interruption error should say where state went: %v", err)
	}
	if len(trB.History) >= trA.Cfg.Epochs {
		t.Fatalf("kill came too late to exercise resume (completed %d epochs)", len(trB.History))
	}

	// Resume with yet another worker count: trajectory must not care.
	trC := NewTrainer(mkCfg(8), runs[2].m, runs[2].pipe)
	if err := trC.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := trC.TrainOn(runs[2].ds.Train, runs[2].ds.Cluster); err != nil {
		t.Fatal(err)
	}

	historyEqual(t, trA.History, trC.History)
	paramsEqual(t, runs[0].m, runs[2].m)
}

// TestBatchedWorkerPanicSurfacesAsError runs the panicking placer under a
// parallel batch: the panic must surface as an error from the batch (with
// sibling entries unharmed), not crash the process.
func TestBatchedWorkerPanicSurfacesAsError(t *testing.T) {
	ds, m, _ := quickSetup(t, 4)
	pipe := &core.Pipeline{Model: m, Placer: panicPlacer{}}
	cfg := batchConfig(4, 4)
	cfg.MetisGuided = false
	cfg.PretrainEpochs = 0
	tr := NewTrainer(cfg, m, pipe)
	err := tr.TrainOn(ds.Train, ds.Cluster)
	if err == nil {
		t.Fatal("panicking worker must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "placer exploded") {
		t.Fatalf("error should carry the recovered panic: %v", err)
	}
}

// TestLegacyCheckpointRestoresSampleSeq exercises the compatibility path:
// a checkpoint whose payload predates the substream cursor (SampleSeq
// absent, Steps > 0) must restore the cursor from the step counter, since
// the two advanced in lockstep.
func TestLegacyCheckpointRestoresSampleSeq(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	cfg := batchConfig(1, 1)
	cfg.Epochs = 1
	tr := NewTrainer(cfg, m, pipe)
	if err := tr.TrainOn(ds.Train, ds.Cluster); err != nil {
		t.Fatal(err)
	}
	if tr.sampleSeq == 0 || tr.sampleSeq != uint64(tr.steps) {
		t.Fatalf("cursor should track steps: seq=%d steps=%d", tr.sampleSeq, tr.steps)
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	// Forge the legacy shape: zero the cursor before saving.
	seq := tr.sampleSeq
	tr.sampleSeq = 0
	if err := tr.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	_, m2, pipe2 := quickSetup(t, 2)
	tr2 := NewTrainer(cfg, m2, pipe2)
	if err := tr2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if tr2.sampleSeq != seq {
		t.Fatalf("legacy restore: seq=%d, want %d (from steps)", tr2.sampleSeq, seq)
	}
}
