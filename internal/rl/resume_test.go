package rl

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

// stepLimitCtx cancels after a fixed number of Err() polls, giving tests a
// deterministic "kill" point between training steps.
type stepLimitCtx struct {
	context.Context
	remaining int
}

func (c *stepLimitCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// resumeSetup builds three identical dataset/model/pipeline triples so
// run A (uninterrupted), run B (killed), and run C (resumed) start from
// bit-identical state.
func resumeSetup(t *testing.T) [3]struct {
	ds   *gen.Dataset
	m    *core.Model
	pipe *core.Pipeline
} {
	t.Helper()
	var out [3]struct {
		ds   *gen.Dataset
		m    *core.Model
		pipe *core.Pipeline
	}
	for i := range out {
		ds, m, pipe := quickSetup(t, 3)
		out[i].ds, out[i].m, out[i].pipe = ds, m, pipe
	}
	return out
}

func resumeConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	cfg.PretrainEpochs = 2
	cfg.OnPolicySamples = 2
	cfg.BufferSamples = 2
	cfg.Seed = 11
	cfg.Quiet = true
	return cfg
}

func paramsEqual(t *testing.T, a, b *core.Model) {
	t.Helper()
	for _, p := range a.PS.All() {
		q := b.PS.Get(p.Name)
		for i := range p.Value.Data {
			if p.Value.Data[i] != q.Value.Data[i] {
				t.Fatalf("parameter %s[%d] differs: %v vs %v", p.Name, i, p.Value.Data[i], q.Value.Data[i])
			}
		}
	}
}

func historyEqual(t *testing.T, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d (%v vs %v)", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("history[%d] differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResumeMatchesUninterruptedTrajectory(t *testing.T) {
	runs := resumeSetup(t)
	path := filepath.Join(t.TempDir(), "trainer.ckpt")

	// Run A: uninterrupted reference.
	cfgA := resumeConfig()
	trA := NewTrainer(cfgA, runs[0].m, runs[0].pipe)
	if err := trA.TrainOn(runs[0].ds.Train, runs[0].ds.Cluster); err != nil {
		t.Fatal(err)
	}
	if len(trA.History) != cfgA.Epochs {
		t.Fatalf("reference run recorded %d epochs, want %d", len(trA.History), cfgA.Epochs)
	}

	// Run B: identical config, killed mid-epoch (the step-limited context
	// plays the role of SIGINT between steps), autosaving every step.
	cfgB := resumeConfig()
	cfgB.CheckpointPath = path
	cfgB.AutosaveEvery = 1
	trB := NewTrainer(cfgB, runs[1].m, runs[1].pipe)
	// Err() is polled once per pretrain epoch, once per epoch start, and
	// once per step; 8 polls dies inside epoch 2 of 3.
	killCtx := &stepLimitCtx{Context: context.Background(), remaining: 8}
	err := trB.TrainOnCtx(killCtx, runs[1].ds.Train, runs[1].ds.Cluster)
	if err == nil {
		t.Fatal("killed run must report interruption")
	}
	if !strings.Contains(err.Error(), "state saved to") {
		t.Fatalf("interruption error should say where state went: %v", err)
	}
	if len(trB.History) >= cfgA.Epochs {
		t.Fatalf("kill came too late to exercise resume (completed %d epochs)", len(trB.History))
	}

	// Run C: fresh process — fresh model, trainer, and RNG — resumed from
	// the checkpoint, then trained to completion.
	cfgC := resumeConfig()
	trC := NewTrainer(cfgC, runs[2].m, runs[2].pipe)
	if err := trC.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := trC.TrainOn(runs[2].ds.Train, runs[2].ds.Cluster); err != nil {
		t.Fatal(err)
	}

	historyEqual(t, trA.History, trC.History)
	paramsEqual(t, runs[0].m, runs[2].m)
}

func TestCurriculumResumeMatchesUninterrupted(t *testing.T) {
	runs := resumeSetup(t)
	path := filepath.Join(t.TempDir(), "curriculum.ckpt")
	mkLevels := func(ds *gen.Dataset) []Level {
		return []Level{
			{Name: "a", Graphs: ds.Train[:2], Cluster: ds.Cluster, Epochs: 2},
			{Name: "b", Graphs: ds.Train[1:], Cluster: ds.Cluster, Epochs: 2},
		}
	}

	cfgA := resumeConfig()
	trA := NewTrainer(cfgA, runs[0].m, runs[0].pipe)
	if err := trA.Curriculum(mkLevels(runs[0].ds)); err != nil {
		t.Fatal(err)
	}

	// Kill inside the second level: per level, Err() is polled 2×
	// (pretrain) + per-epoch + per-step. Level a: 2 + 2*(1+2) = 8 polls;
	// 12 polls lands mid-level b.
	cfgB := resumeConfig()
	cfgB.CheckpointPath = path
	cfgB.AutosaveEvery = 1
	trB := NewTrainer(cfgB, runs[1].m, runs[1].pipe)
	killCtx := &stepLimitCtx{Context: context.Background(), remaining: 12}
	if err := trB.CurriculumCtx(killCtx, mkLevels(runs[1].ds)); err == nil {
		t.Fatal("killed curriculum must report interruption")
	}
	if trB.Pos.Level != 1 {
		t.Fatalf("kill should land in level 2 (Pos.Level=1), got %d", trB.Pos.Level)
	}

	cfgC := resumeConfig()
	trC := NewTrainer(cfgC, runs[2].m, runs[2].pipe)
	if err := trC.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := trC.Curriculum(mkLevels(runs[2].ds)); err != nil {
		t.Fatal(err)
	}

	historyEqual(t, trA.History, trC.History)
	paramsEqual(t, runs[0].m, runs[2].m)
}

func TestLoadCheckpointAcceptsWeightsOnlyFormats(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	_ = ds
	cfg := resumeConfig()
	tr := NewTrainer(cfg, m, pipe)
	dir := t.TempDir()

	// nn.SaveParams envelope.
	envPath := filepath.Join(dir, "weights.json")
	if err := tr.SaveWeights(envPath); err != nil {
		t.Fatal(err)
	}
	_, m2, pipe2 := quickSetup(t, 2)
	tr2 := NewTrainer(cfg, m2, pipe2)
	if err := tr2.LoadCheckpoint(envPath); err != nil {
		t.Fatalf("params envelope must load: %v", err)
	}
	paramsEqual(t, m, m2)
}

func TestDivergenceGuardRollsBackAndHalvesLR(t *testing.T) {
	_, m, pipe := quickSetup(t, 2)
	cfg := resumeConfig()
	tr := NewTrainer(cfg, m, pipe)

	// Establish a good state, then poison the gradients with a NaN.
	tr.snapshotGood()
	before := m.PS.StateMap()
	lr := tr.Opt.LR

	m.PS.ZeroGrads()
	m.PS.All()[0].Grad.Data[0] = math.NaN()
	if tr.applyUpdate(0.5) {
		t.Fatal("guard must reject a NaN gradient")
	}
	if tr.Divergences != 1 {
		t.Errorf("Divergences = %d, want 1", tr.Divergences)
	}
	if tr.Opt.LR != lr/2 {
		t.Errorf("LR = %v, want halved %v", tr.Opt.LR, lr/2)
	}
	after := m.PS.StateMap()
	for name, st := range before {
		for i := range st.Value {
			if after[name].Value[i] != st.Value[i] {
				t.Fatalf("parameter %s[%d] corrupted by rejected update", name, i)
			}
		}
	}

	// A NaN loss trips the guard the same way.
	m.PS.ZeroGrads()
	if tr.applyUpdate(math.Inf(1)) {
		t.Fatal("guard must reject a non-finite loss")
	}
	if tr.Opt.LR != lr/4 {
		t.Errorf("LR = %v, want %v after second rollback", tr.Opt.LR, lr/4)
	}

	// A healthy update still goes through.
	m.PS.ZeroGrads()
	for _, p := range m.PS.All() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 0.01
		}
	}
	if !tr.applyUpdate(0.1) {
		t.Fatal("finite update must be applied")
	}
}

func TestBufferRejectsNonFiniteRewards(t *testing.T) {
	_, m, pipe := quickSetup(t, 2)
	tr := NewTrainer(resumeConfig(), m, pipe)
	tr.updateBuffer(0, []scored{
		{d: core.Decision{true}, reward: math.NaN()},
		{d: core.Decision{false}, reward: 0.5},
		{d: core.Decision{true}, reward: math.Inf(1)},
	})
	buf := tr.buffer[0]
	if len(buf) != 1 || buf[0].reward != 0.5 {
		t.Fatalf("buffer should hold only the finite sample, got %+v", buf)
	}
}

// panicPlacer blows up on every placement: the worst-case worker fault.
type panicPlacer struct{}

func (panicPlacer) Place(*stream.Graph, sim.Cluster) *stream.Placement {
	panic("placer exploded mid-sample")
}

func (panicPlacer) Name() string { return "panic" }

var _ placer.Placer = panicPlacer{}

func TestWorkerPanicSurfacesAsErrorNotCrash(t *testing.T) {
	ds, m, _ := quickSetup(t, 2)
	pipe := &core.Pipeline{Model: m, Placer: panicPlacer{}}
	cfg := resumeConfig()
	cfg.MetisGuided = false
	cfg.PretrainEpochs = 0
	tr := NewTrainer(cfg, m, pipe)
	err := tr.TrainOn(ds.Train, ds.Cluster)
	if err == nil {
		t.Fatal("panicking worker must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "placer exploded") {
		t.Fatalf("error should carry the recovered panic: %v", err)
	}
}

func TestHaltWithoutCheckpointPathStillErrors(t *testing.T) {
	ds, m, pipe := quickSetup(t, 2)
	cfg := resumeConfig()
	tr := NewTrainer(cfg, m, pipe)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := tr.TrainOnCtx(ctx, ds.Train, ds.Cluster)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("want interruption error, got %v", err)
	}
}
