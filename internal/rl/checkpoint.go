package rl

import (
	"fmt"
	"os"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/nn"
)

// trainerKind tags full-state trainer checkpoints inside the ckpt envelope.
const trainerKind = "rl-trainer"

// savedScored is the serialized form of one memory-buffer entry.
type savedScored struct {
	D      []bool  `json:"d"`
	Reward float64 `json:"reward"`
	Guided bool    `json:"guided,omitempty"`
}

// checkpointPayload is the full training state written by SaveCheckpoint.
// Restoring every field makes a resumed run bit-identical to an
// uninterrupted one: same parameters and Adam moments, same memory
// buffers and baselines, same sampling RNG stream, same position in the
// curriculum.
type checkpointPayload struct {
	Params      map[string]nn.ParamState `json:"params"`
	Opt         nn.AdamState             `json:"opt"`
	RNG         []byte                   `json:"rng"`
	Buffer      map[int][]savedScored    `json:"buffer"`
	History     []float64                `json:"history"`
	Pos         Progress                 `json:"pos"`
	Steps       int                      `json:"steps"`
	SampleSeq   uint64                   `json:"sample_seq"`
	Divergences int                      `json:"divergences"`
}

// SaveCheckpoint writes the full training state — model parameters, Adam
// moments and step count, memory buffers, sampling RNG state, reward
// history, and curriculum position — to path as an atomically written,
// checksummed envelope (see internal/ckpt). A process killed mid-write
// leaves the previous checkpoint intact.
func (t *Trainer) SaveCheckpoint(path string) error {
	rngState, err := t.pcg.MarshalBinary()
	if err != nil {
		return fmt.Errorf("rl: marshal rng: %w", err)
	}
	buf := make(map[int][]savedScored, len(t.buffer))
	for gi, entries := range t.buffer {
		out := make([]savedScored, len(entries))
		for i, e := range entries {
			out[i] = savedScored{D: append([]bool(nil), e.d...), Reward: e.reward, Guided: e.guided}
		}
		buf[gi] = out
	}
	payload := checkpointPayload{
		Params:      t.Model.PS.StateMap(),
		Opt:         t.Opt.State(),
		RNG:         rngState,
		Buffer:      buf,
		History:     append([]float64(nil), t.History...),
		Pos:         t.Pos,
		Steps:       t.steps,
		SampleSeq:   t.sampleSeq,
		Divergences: t.Divergences,
	}
	if err := ckpt.WriteFile(path, trainerKind, payload); err != nil {
		return fmt.Errorf("rl: save checkpoint: %w", err)
	}
	return nil
}

// SaveWeights writes only the model parameters via nn.SaveParams — the
// lightweight artifact for deployment-time inference, without optimizer
// or trainer state. LoadCheckpoint accepts these files too.
func (t *Trainer) SaveWeights(path string) error {
	return nn.SaveParams(t.Model.PS, path)
}

// LoadCheckpoint restores state saved by SaveCheckpoint. Three formats
// are accepted:
//
//   - full trainer checkpoints (checksum-verified): the complete training
//     state is restored and training resumes exactly where it stopped;
//   - parameter envelopes written by nn.SaveParams: weights only;
//   - the legacy bare-JSON parameter map of earlier versions: weights
//     only, kept loadable for old model files.
func (t *Trainer) LoadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("rl: load checkpoint: %w", err)
	}
	if ckpt.KindOf(data) != trainerKind {
		// Weights-only file (params envelope or legacy map).
		return nn.LoadParams(t.Model.PS, path)
	}
	var payload checkpointPayload
	if err := ckpt.Decode(data, trainerKind, &payload); err != nil {
		return fmt.Errorf("rl: %s: %w", path, err)
	}
	if err := t.Model.PS.RestoreStateMap(payload.Params); err != nil {
		return fmt.Errorf("rl: %s: %w", path, err)
	}
	t.Opt.SetState(payload.Opt)
	if err := t.pcg.UnmarshalBinary(payload.RNG); err != nil {
		return fmt.Errorf("rl: %s: restore rng: %w", path, err)
	}
	t.buffer = make(map[int][]scored, len(payload.Buffer))
	for gi, entries := range payload.Buffer {
		in := make([]scored, len(entries))
		for i, e := range entries {
			in[i] = scored{d: core.Decision(e.D), reward: e.Reward, guided: e.Guided}
		}
		t.buffer[gi] = in
	}
	t.History = payload.History
	t.Pos = payload.Pos
	t.steps = payload.Steps
	t.sampleSeq = payload.SampleSeq
	if t.sampleSeq == 0 && payload.Steps > 0 {
		// Checkpoint written before substream sampling existed: the visit
		// counter and the step counter advanced in lockstep, so the step
		// count restores the cursor exactly.
		t.sampleSeq = uint64(payload.Steps)
	}
	t.Divergences = payload.Divergences
	// The restored state is by definition good: give the divergence guard
	// its rollback target.
	t.snapshotGood()
	return nil
}
