// Package rl trains the coarsening model with REINFORCE (§III):
//
//	∇J(θ) = (1/N) Σ_n ∇log π_θ(G_y^n) · [r(G_y^n) − b]
//
// where the policy π_θ factorizes over per-edge Bernoulli collapse
// decisions, r is the simulated relative throughput of the resulting
// allocation, and the baseline b is the mean reward of the on-policy
// samples plus the historically best samples kept in a per-graph memory
// buffer. Metis-guided training (§IV-C) seeds that buffer with decision
// vectors inferred from Metis partitions via maximum-spanning-tree
// collapse inference; guided entries are evicted as soon as the policy
// finds better samples, exactly as described in the paper.
//
// Training is fault-tolerant: the context-aware entry points
// (TrainOnCtx, CurriculumCtx) cancel cleanly between steps and persist a
// full-state checkpoint — parameters, Adam moments, memory buffers, RNG
// state, and curriculum position — so an interrupted run resumes
// step-for-step identical to an uninterrupted one. A divergence guard
// detects non-finite losses or gradients, rolls the model back to the
// last good state, and halves the learning rate instead of corrupting
// the parameters; panics in simulator-scoring workers surface as errors
// rather than crashing the process.
package rl

import (
	"context"
	"fmt"
	"math"
	randv2 "math/rand/v2"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/stream"

	"repro/internal/autodiff"
)

// Process-wide training metrics. The counters are always live (a few
// atomic adds per optimizer step); the per-phase timing below is only
// taken when a Tracer or Curve sink is configured.
var (
	obsSteps       = obs.Default.Counter("rl_train_steps_total")
	obsDivergences = obs.Default.Counter("rl_divergences_total")
	obsCacheHits   = obs.Default.Counter("reward_cache_hits_total")
	obsCacheMisses = obs.Default.Counter("reward_cache_misses_total")
)

// Config controls one training run.
type Config struct {
	// Epochs is the number of passes over the training graphs (paper: 20
	// from scratch, 3–10 when fine-tuning).
	Epochs int
	// OnPolicySamples per graph per step (paper: 3).
	OnPolicySamples int
	// BufferSamples is the maximum number of memory-buffer samples mixed
	// into each step (paper: up to 3).
	BufferSamples int
	// LR is the Adam learning rate (paper: 0.001).
	LR float64
	// MetisGuided seeds memory buffers with Metis-derived decisions.
	MetisGuided bool
	// PretrainEpochs is the number of maximum-likelihood imitation epochs
	// over the Metis-guided collapse decisions run before REINFORCE. This
	// is the paper's Metis-guided cold-start signal (§IV-C) in its
	// strongest form: at CPU-scale training budgets the pure
	// buffer-mixing variant cannot transfer the collapse concept before
	// lucky on-policy samples evict the guided entries.
	PretrainEpochs int
	// Seed drives sampling.
	Seed int64
	// CheckpointPath, when set, receives full-state checkpoints: on every
	// AutosaveEvery-th step and whenever training is interrupted by its
	// context. Resume with LoadCheckpoint on a fresh trainer.
	CheckpointPath string
	// AutosaveEvery is the autosave cadence in REINFORCE steps (one step
	// = one graph visit). 0 disables periodic autosave; interruption
	// still checkpoints when CheckpointPath is set.
	AutosaveEvery int
	// RewardCacheSize bounds the reward-memoization LRU (entries). 0
	// selects the default (4096); negative disables memoization. The
	// cache is an exact-key memo of the deterministic coarsen → partition
	// → simulate pipeline, so it never changes the training trajectory —
	// only how often the pipeline actually runs.
	RewardCacheSize int
	// GraphBatch is the number of graphs trained per optimizer step
	// (0 or 1 = classic serial REINFORCE: one Adam update per graph).
	// For GraphBatch=N, the N graphs of a batch all run their forward,
	// sampling, reward scoring, and backward passes against the same
	// parameter snapshot on concurrent model replicas; gradients are
	// reduced in fixed graph-index order into one Adam update. The
	// trajectory depends on N but never on TrainWorkers or scheduling.
	GraphBatch int
	// TrainWorkers caps the number of concurrent model replicas driving a
	// graph batch (0 = GOMAXPROCS). It is a pure wall-clock knob: any
	// value produces the bit-identical trajectory for a given GraphBatch.
	TrainWorkers int
	// Quiet suppresses progress logging.
	Quiet bool
	// Logf receives progress lines when non-nil (and Quiet is false).
	Logf func(format string, args ...any)
	// Tracer, when set, records per-phase spans (encode / sample /
	// simulate / backward / all-reduce / checkpoint) on per-worker lanes,
	// exportable as Chrome trace-event JSON. Observation only: phase
	// timing never feeds back into training, so trajectories stay
	// bit-identical with tracing on or off.
	Tracer *obs.Tracer
	// Curve, when set, receives one JSONL training-curve record per
	// optimizer step (reward, baseline, loss, entropy, grad norm, cache
	// hit rate, per-phase wall milliseconds). Same observation-only
	// contract as Tracer.
	Curve *obs.CurveWriter
}

// DefaultConfig mirrors the paper's hyperparameters at CPU scale.
func DefaultConfig() Config {
	return Config{
		Epochs:          6,
		OnPolicySamples: 4,
		BufferSamples:   3,
		LR:              0.002,
		MetisGuided:     true,
		PretrainEpochs:  16,
		Seed:            7,
	}
}

// scored is a decision vector with its achieved reward.
type scored struct {
	d      core.Decision
	reward float64
	guided bool // true for Metis-seeded entries
}

// Progress locates a trainer inside its training plan so a checkpoint can
// resume exactly where the previous process stopped: curriculum level,
// pretraining epoch, REINFORCE epoch, the shuffled graph order of the
// epoch in flight, the next step inside it, and the partial reward sum
// feeding that epoch's History entry.
type Progress struct {
	// Level is the current curriculum level (0 outside curricula).
	Level int `json:"level"`
	// Pretrain counts completed guided-imitation epochs on this dataset.
	Pretrain int `json:"pretrain"`
	// Seeded records that the memory buffers hold the Metis-guided seeds.
	Seeded bool `json:"seeded"`
	// Epoch is the current REINFORCE epoch on this dataset.
	Epoch int `json:"epoch"`
	// Step indexes the next unprocessed entry of Order.
	Step int `json:"step"`
	// Order is the shuffled graph visit order of the epoch in flight
	// (nil between epochs).
	Order []int `json:"order,omitempty"`
	// RewardSum accumulates on-policy rewards of the epoch in flight.
	RewardSum float64 `json:"reward_sum"`
}

// goodState is the in-memory rollback target of the divergence guard.
type goodState struct {
	params map[string]nn.ParamState
	opt    nn.AdamState
}

// Trainer holds the mutable training state for one model.
type Trainer struct {
	Cfg      Config
	Model    *core.Model
	Pipeline *core.Pipeline
	Opt      *nn.Adam

	// Pos locates the trainer inside its training plan (checkpointed).
	Pos Progress
	// Divergences counts guard-triggered rollbacks.
	Divergences int

	// Rewards memoizes decision rewards across steps (nil when disabled).
	// Hit/miss counters are exported via Rewards.Stats().
	Rewards *core.RewardCache

	// buffer holds the best historical samples per training-graph index.
	buffer map[int][]scored
	pcg    *randv2.PCG
	rng    *randv2.Rand
	steps  int // total REINFORCE steps taken (drives autosave cadence)
	// sampleSeq is the substream cursor: every graph visit consumes one
	// per-(graph, step) PCG substream derived from (Cfg.Seed, sampleSeq,
	// graph index), so on-policy sampling is independent of batch shape
	// and worker scheduling. Persisted in checkpoints, never reset (not
	// even between curriculum levels), so -resume replays the exact
	// streams an uninterrupted run would have drawn.
	sampleSeq uint64

	// fwd is the reusable forward binder: one tape whose node slab and
	// arena-backed matrices are recycled every step (reset-on-acquire).
	fwd *nn.Binder

	// Data-parallel replica state (lazily grown by trainBatch): snap is
	// the per-batch parameter broadcast all replicas read, reps holds one
	// binder+tape per worker, and entryGrads one gradient accumulator per
	// batch entry so the leader can reduce in fixed graph-index order.
	snap       *nn.Snapshot
	reps       []*nn.Binder
	entryGrads []*nn.GradSet

	lastGood *goodState

	// History records the mean on-policy reward per epoch.
	History []float64
}

// NewTrainer builds a trainer around a model and pipeline.
func NewTrainer(cfg Config, model *core.Model, pipe *core.Pipeline) *Trainer {
	if pipe.Model != model {
		panic("rl: pipeline must wrap the trained model")
	}
	pcg := randv2.NewPCG(uint64(cfg.Seed), 0x9E3779B97F4A7C15)
	var cache *core.RewardCache
	if cfg.RewardCacheSize >= 0 {
		size := cfg.RewardCacheSize
		if size == 0 {
			size = 4096
		}
		cache = core.NewRewardCache(size)
		cache.Instrument(obsCacheHits, obsCacheMisses)
	}
	return &Trainer{
		Cfg:      cfg,
		Model:    model,
		Pipeline: pipe,
		Opt:      nn.NewAdam(cfg.LR),
		Rewards:  cache,
		buffer:   make(map[int][]scored),
		pcg:      pcg,
		rng:      randv2.New(pcg),
		fwd:      nn.NewBinder(autodiff.NewTape()),
	}
}

// forward returns the trainer's reusable binder, recycled for a fresh
// step: reset-on-acquire returns the previous step's matrices to the
// arena only after everything read from them has been consumed.
func (t *Trainer) forward() *nn.Binder {
	t.fwd.Reset()
	return t.fwd
}

// scoreDecision evaluates one decision's reward through the pipeline,
// memoized on (graph id, exact decision bitset). Safe for concurrent use.
func (t *Trainer) scoreDecision(gi int, g *stream.Graph, cluster sim.Cluster, d core.Decision) float64 {
	if t.Rewards == nil {
		alloc := t.Pipeline.AllocateDecision(g, cluster, d)
		return sim.Reward(g, alloc.Placement, cluster)
	}
	key := core.DecisionKey(gi, d)
	if r, ok := t.Rewards.Get(key); ok {
		return r
	}
	alloc := t.Pipeline.AllocateDecision(g, cluster, d)
	r := sim.Reward(g, alloc.Placement, cluster)
	t.Rewards.Put(key, r)
	return r
}

func (t *Trainer) logf(format string, args ...any) {
	if t.Cfg.Quiet {
		return
	}
	if t.Cfg.Logf != nil {
		t.Cfg.Logf(format, args...)
		return
	}
	obs.Log.Infof(format, args...)
}

// SeedMetisGuided populates the buffers with Metis-derived decisions for
// every training graph (run before the first epoch when MetisGuided).
func (t *Trainer) SeedMetisGuided(graphs []*stream.Graph, cluster sim.Cluster) error {
	entries, err := resilience.Map(len(graphs), 0, func(i int) (scored, error) {
		g := graphs[i]
		mp := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: t.Cfg.Seed})
		mp.Devices = cluster.Devices
		d := core.Decision(metis.InferCollapsedEdges(g, mp))
		return scored{d: d, reward: t.scoreDecision(i, g, cluster, d), guided: true}, nil
	})
	if err != nil {
		return fmt.Errorf("rl: metis seeding failed: %w", err)
	}
	for i, e := range entries {
		t.buffer[i] = append(t.buffer[i], e)
	}
	t.Pos.Seeded = true
	return nil
}

// splitmix64 is the SplitMix64 finalizer — the standard way to expand one
// seed into decorrelated substream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sampleRNG derives the PCG substream for one (graph, step) visit. The
// stream is a pure function of the root seed, the global visit counter,
// and the graph index — never of batch shape, worker count, or scheduling
// — which is what makes batched training deterministic and -resume exact:
// a restored sampleSeq replays the identical streams.
func (t *Trainer) sampleRNG(seq uint64, gi int) *randv2.Rand {
	hi := splitmix64(uint64(t.Cfg.Seed)*0x9E3779B97F4A7C15 + seq)
	lo := splitmix64(hi + uint64(gi))
	return randv2.New(randv2.NewPCG(hi, lo))
}

// graphBatch returns the effective optimizer batch size.
func (t *Trainer) graphBatch() int {
	if t.Cfg.GraphBatch <= 1 {
		return 1
	}
	return t.Cfg.GraphBatch
}

// trainWorkers returns the effective replica count for a batch of b.
func (t *Trainer) trainWorkers(b int) int {
	w := t.Cfg.TrainWorkers
	if w <= 0 {
		w = parallel.DefaultWorkers()
	}
	if w > b {
		w = b
	}
	return w
}

// ensureReplicas grows the per-worker binders and per-entry gradient sets
// to cover `workers` replicas and `entries` batch slots. Replica binders
// bind the shared parameter snapshot, so their forward passes read a
// consistent copy while the leader owns the live values.
func (t *Trainer) ensureReplicas(workers, entries int) {
	if t.snap == nil {
		t.snap = nn.NewSnapshot(t.Model.PS)
	}
	for len(t.reps) < workers {
		b := nn.NewBinder(autodiff.NewTape())
		b.BindSnapshot(t.snap)
		t.reps = append(t.reps, b)
	}
	for len(t.entryGrads) < entries {
		t.entryGrads = append(t.entryGrads, nn.NewGradSet(t.Model.PS))
	}
}

// Phase indices for per-entry timing (curve + trace share one
// measurement; see stepEntry).
const (
	phaseEncode = iota
	phaseSample
	phaseSimulate
	phaseBackward
	numPhases
)

// phaseNames maps phase indices to span/curve labels.
var phaseNames = [numPhases]string{"encode", "sample", "simulate", "backward"}

// stepResult is one batch entry's contribution, exported by a replica and
// consumed by the leader in fixed graph-index order.
type stepResult struct {
	loss         float64
	hasLoss      bool
	samples      []scored
	onPolicyMean float64

	// Observability payload (populated only when a Curve or Tracer is
	// configured; zero-cost otherwise).
	baseline   float64
	entropy    float64
	bufferHits int
	phases     [numPhases]time.Duration
}

// stepEntry runs one graph's REINFORCE step on a replica binder: forward
// against the parameter snapshot, substream sampling, reward scoring,
// loss, backward, and gradient export into gs. It never touches the live
// parameters, the optimizer, or the memory buffers — those belong to the
// leader — so any number of entries can run concurrently.
func (t *Trainer) stepEntry(binder *nn.Binder, wid int, seq uint64, gi int, g *stream.Graph, cluster sim.Cluster, gs *nn.GradSet, innerWorkers int) (stepResult, error) {
	var res stepResult
	// Phase timing is taken only when a sink wants it; with observability
	// off the whole apparatus is one boolean test. One measurement feeds
	// both the tracer (span on this worker's lane) and the curve record.
	timed := t.Cfg.Tracer != nil || t.Cfg.Curve != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	mark := func(ph int) {
		if !timed {
			return
		}
		now := time.Now()
		d := now.Sub(t0)
		res.phases[ph] = d
		t.Cfg.Tracer.Emit(phaseNames[ph], wid, t0, d)
		t0 = now
	}

	f := gnn.BuildFeatures(g, cluster)
	binder.Reset()
	tape := binder.Tape
	probs := t.Model.EdgeProbs(binder, f)
	mark(phaseEncode)

	// Draw on-policy samples from this visit's private substream.
	rng := t.sampleRNG(seq, gi)
	n := t.Cfg.OnPolicySamples
	samples := make([]scored, n)
	pv := probs.Value
	for s := 0; s < n; s++ {
		d := make(core.Decision, pv.Rows)
		for i := 0; i < pv.Rows; i++ {
			d[i] = rng.Float64() < pv.Data[i]
		}
		samples[s] = scored{d: d}
	}
	if t.Cfg.Curve != nil {
		// Mean per-edge Bernoulli entropy of the policy — the curve's
		// exploration signal. Reads probabilities only; never perturbs them.
		var h float64
		for i := 0; i < pv.Rows; i++ {
			p := pv.Data[i]
			if p > 1e-12 && p < 1-1e-12 {
				h -= p*math.Log(p) + (1-p)*math.Log(1-p)
			}
		}
		if pv.Rows > 0 {
			res.entropy = h / float64(pv.Rows)
		}
	}
	mark(phaseSample)
	// Evaluate rewards (coarsen → partition → simulate), memoized on the
	// exact decision bitset so a duplicate sample skips the pipeline
	// entirely. A panic in one scorer surfaces here as an error; sibling
	// samples are still scored. When several batch entries already run
	// concurrently the scoring stays inside this worker (innerWorkers=1);
	// a serial batch fans it out across the machine as before.
	if err := resilience.ForEach(n, innerWorkers, func(s int) error {
		samples[s].reward = t.scoreDecision(gi, g, cluster, samples[s].d)
		return nil
	}); err != nil {
		return stepResult{}, fmt.Errorf("rl: sample scoring on graph %d failed: %w", gi, err)
	}
	mark(phaseSimulate)
	res.samples = samples
	finiteN := 0
	for _, s := range samples {
		if isFinite(s.reward) {
			res.onPolicyMean += s.reward
			finiteN++
		}
	}
	if finiteN > 0 {
		res.onPolicyMean /= float64(finiteN)
	}

	// Mix in buffered best samples. Non-finite on-policy rewards are
	// excluded from the whole batch — not just the on-policy mean — so a
	// single NaN/Inf sample cannot poison the baseline, the reward spread,
	// or the loss (buffered entries are always finite by construction).
	// The buffer is read-only for the whole batch; the leader applies
	// updates after the barrier.
	buf := t.buffer[gi]
	take := t.Cfg.BufferSamples
	if take > len(buf) {
		take = len(buf)
	}
	batch := make([]scored, 0, len(samples)+take)
	for _, s := range samples {
		if isFinite(s.reward) {
			batch = append(batch, s)
		}
	}
	batch = append(batch, buf[:take]...)
	res.bufferHits = take
	if len(batch) == 0 {
		// Every sample diverged and the buffer is empty: contribute no
		// gradient rather than feed NaNs to the optimizer.
		return res, nil
	}

	// Baseline: mean reward across the batch; advantages are normalized by
	// the batch reward spread so the gradient scale stays useful even when
	// rewards cluster tightly (they do once the policy is competent).
	var b float64
	for _, s := range batch {
		b += s.reward
	}
	b /= float64(len(batch))
	var sd float64
	for _, s := range batch {
		sd += (s.reward - b) * (s.reward - b)
	}
	sd = math.Sqrt(sd / float64(len(batch)))
	if sd < 1e-3 {
		sd = 1e-3
	}
	res.baseline = b

	// Accumulate the policy-gradient loss on the tape. The advantage is
	// divided by the edge count so the gradient scale is independent of
	// graph size (log π sums over all |E| Bernoulli decisions) and
	// commensurate with the guided pretraining loss.
	var loss *autodiff.Node
	inv := 1 / float64(len(batch)) / float64(g.NumEdges())
	for _, s := range batch {
		adv := (s.reward - b) / sd * inv
		if adv == 0 {
			continue
		}
		l := core.LogProbLoss(binder, probs, s.d, adv)
		if loss == nil {
			loss = l
		} else {
			loss = tape.Add(loss, l)
		}
	}
	if loss != nil {
		gs.Zero()
		tape.Backward(loss, nil)
		binder.CollectInto(gs)
		res.loss = scalarOf(loss)
		res.hasLoss = true
	}
	mark(phaseBackward)
	return res, nil
}

// batchEntry pairs a graph with its stable dataset index (which keys the
// memory buffer, the reward memo, and the RNG substream).
type batchEntry struct {
	gi int
	g  *stream.Graph
}

// step trains on one graph and returns the mean on-policy reward — the
// serial special case of trainBatch, kept as the unit the memoization and
// divergence tests drive directly.
func (t *Trainer) step(gi int, g *stream.Graph, cluster sim.Cluster) (float64, error) {
	return t.trainBatch(cluster, []batchEntry{{gi: gi, g: g}}, t.sampleSeq)
}

// trainBatch trains on one optimizer batch of graphs and returns the
// summed mean on-policy reward. Entries run on up to TrainWorkers
// concurrent model replicas, all reading the same parameter snapshot; the
// leader then reduces per-entry gradients in fixed batch order —
// independent of completion order — into one Adam update, applies the
// divergence guard once per batch, and updates the memory buffers. With
// GraphBatch=1 this degenerates to the classic serial step: one replica,
// one entry, one update per graph.
func (t *Trainer) trainBatch(cluster sim.Cluster, batch []batchEntry, seqBase uint64) (float64, error) {
	nB := len(batch)
	workers := t.trainWorkers(nB)
	t.ensureReplicas(workers, nB)
	// Broadcast: replicas read this batch's consistent parameter copy.
	t.snap.Capture()
	innerWorkers := 1
	if workers == 1 {
		// Serial batch: let sample scoring fan out across the machine.
		innerWorkers = 0
	}
	results := make([]stepResult, nB)
	err := resilience.ForEachWorker(nB, workers, func(w, j int) error {
		// Worker lanes are 1-based in the trace; lane 0 belongs to the
		// leader (all-reduce, checkpoint).
		res, err := t.stepEntry(t.reps[w], w+1, seqBase+uint64(j), batch[j].gi, batch[j].g, cluster, t.entryGrads[j], innerWorkers)
		if err != nil {
			return err
		}
		results[j] = res
		return nil
	})
	if err != nil {
		return 0, err
	}

	timed := t.Cfg.Tracer != nil || t.Cfg.Curve != nil
	var tReduce time.Time
	if timed {
		tReduce = time.Now()
	}
	// Deterministic all-reduce: gradients fold into the live parameters
	// by ascending graph index, so the floating-point summation order —
	// and therefore the trajectory — is identical for any worker count.
	var lossSum float64
	hasLoss := false
	for j := range results {
		if results[j].hasLoss {
			lossSum += results[j].loss
			hasLoss = true
		}
	}
	var gradNorm float64
	if hasLoss {
		t.Model.PS.ZeroGrads()
		for j := range results {
			if results[j].hasLoss {
				t.entryGrads[j].AddTo(t.Model.PS)
			}
		}
		if t.Cfg.Curve != nil {
			gradNorm = t.gradNorm()
		}
		t.applyUpdate(lossSum)
	}
	var dReduce time.Duration
	if timed {
		dReduce = time.Since(tReduce)
		t.Cfg.Tracer.Emit("all-reduce", 0, tReduce, dReduce)
	}

	// Buffer updates and the reward sum also run in fixed order (graph
	// indices within one epoch batch are distinct, so this is the only
	// writer per buffer).
	var rewardSum float64
	for j := range results {
		t.updateBuffer(batch[j].gi, results[j].samples)
		rewardSum += results[j].onPolicyMean
	}
	obsSteps.Add(uint64(nB))
	if cw := t.Cfg.Curve; cw != nil {
		cw.Write(t.curveRecord(results, nB, rewardSum, lossSum, gradNorm, dReduce))
	}
	return rewardSum, nil
}

// gradNorm computes the L2 norm of the accumulated gradients (read-only;
// taken before the optimizer consumes them).
func (t *Trainer) gradNorm() float64 {
	var sq float64
	for _, p := range t.Model.PS.All() {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// curveRecord assembles one training-curve JSONL record from a finished
// optimizer batch. Step numbering counts graph visits, matching the
// autosave cadence (t.steps is advanced by the caller after the batch).
func (t *Trainer) curveRecord(results []stepResult, nB int, rewardSum, lossSum, gradNorm float64, dReduce time.Duration) obs.CurveRecord {
	rec := obs.CurveRecord{
		Step:     t.steps + nB,
		Level:    t.Pos.Level,
		Epoch:    t.Pos.Epoch,
		Graphs:   nB,
		Reward:   rewardSum / float64(nB),
		Loss:     lossSum,
		GradNorm: gradNorm,
		PhaseMS:  make(map[string]float64, numPhases+1),
	}
	for j := range results {
		rec.Baseline += results[j].baseline
		rec.Entropy += results[j].entropy
		rec.BufferHits += results[j].bufferHits
		for ph, d := range results[j].phases {
			rec.PhaseMS[phaseNames[ph]] += float64(d) / float64(time.Millisecond)
		}
	}
	rec.Baseline /= float64(nB)
	rec.Entropy /= float64(nB)
	rec.PhaseMS["all_reduce"] = float64(dReduce) / float64(time.Millisecond)
	if t.Rewards != nil {
		hits, misses := t.Rewards.Stats()
		if hits+misses > 0 {
			rec.CacheHitRate = float64(hits) / float64(hits+misses)
		}
	}
	return rec
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// scalarOf reads the scalar value of a loss node.
func scalarOf(n *autodiff.Node) float64 {
	if n == nil || len(n.Value.Data) == 0 {
		return 0
	}
	return n.Value.Data[0]
}

// applyUpdate runs the divergence guard and, when the step is healthy,
// the optimizer update. A non-finite loss, gradient, or post-update
// parameter rolls the model and optimizer back to the last good state
// and halves the learning rate — a NaN never propagates into the model.
// It returns false when the guard fired.
func (t *Trainer) applyUpdate(lossVal float64) bool {
	if !isFinite(lossVal) {
		t.rollback(fmt.Errorf("non-finite loss %v", lossVal))
		return false
	}
	if err := t.Model.PS.CheckFiniteGrads(); err != nil {
		t.rollback(err)
		return false
	}
	t.Opt.Step(t.Model.PS)
	if err := t.Model.PS.CheckFiniteValues(); err != nil {
		t.rollback(err)
		return false
	}
	t.snapshotGood()
	return true
}

// snapshotGood records the current parameters and optimizer as the
// divergence guard's rollback target.
func (t *Trainer) snapshotGood() {
	t.lastGood = &goodState{params: t.Model.PS.StateMap(), opt: t.Opt.State()}
}

// rollback restores the last good state (when one exists) and halves the
// learning rate. Sampling RNG state is deliberately not rolled back:
// replaying the identical samples would reproduce the identical
// divergence.
func (t *Trainer) rollback(cause error) {
	t.Divergences++
	obsDivergences.Inc()
	// Halve the *current* learning rate, not the snapshot's: repeated
	// rollbacks without an intervening good step must keep compounding.
	halved := t.Opt.LR / 2
	if t.lastGood != nil {
		if err := t.Model.PS.RestoreStateMap(t.lastGood.params); err != nil {
			panic(fmt.Sprintf("rl: rollback failed: %v", err))
		}
		t.Opt.SetState(t.lastGood.opt)
	}
	t.Opt.LR = halved
	t.logf("rl: divergence guard: %v — rolled back to last good state, lr halved to %g (rollback #%d)",
		cause, t.Opt.LR, t.Divergences)
}

func (t *Trainer) updateBuffer(gi int, samples []scored) {
	buf := t.buffer[gi]
	for _, s := range samples {
		// Never admit non-finite rewards: one NaN would poison every
		// future baseline computed from this buffer.
		if isFinite(s.reward) {
			buf = append(buf, s)
		}
	}
	sort.SliceStable(buf, func(a, b int) bool {
		if buf[a].reward != buf[b].reward {
			return buf[a].reward > buf[b].reward
		}
		// Prefer on-policy over guided at equal reward so guided signals
		// phase out ("no longer affect model optimization", §IV-C).
		return !buf[a].guided && buf[b].guided
	})
	max := t.Cfg.BufferSamples
	if max < 1 {
		max = 1
	}
	if len(buf) > max {
		buf = buf[:max]
	}
	t.buffer[gi] = buf
}

// PretrainGuided runs maximum-likelihood imitation of the Metis-guided
// collapse decisions for Cfg.PretrainEpochs epochs. It teaches the model
// which edges belong together (heavy intra-part spanning edges) before any
// reward signal is available — the cold-start guidance of §IV-C.
func (t *Trainer) PretrainGuided(graphs []*stream.Graph, cluster sim.Cluster) error {
	return t.PretrainGuidedCtx(context.Background(), graphs, cluster)
}

// PretrainGuidedCtx is PretrainGuided with cancellation between epochs;
// completed epochs are tracked in Pos.Pretrain so a resumed run continues
// rather than restarting.
func (t *Trainer) PretrainGuidedCtx(ctx context.Context, graphs []*stream.Graph, cluster sim.Cluster) error {
	if t.Cfg.PretrainEpochs <= 0 || t.Pos.Pretrain >= t.Cfg.PretrainEpochs {
		return nil
	}
	targets, err := resilience.Map(len(graphs), 0, func(i int) (core.Decision, error) {
		mp := metis.Partition(graphs[i], metis.Options{Parts: cluster.Devices, Seed: t.Cfg.Seed})
		mp.Devices = cluster.Devices
		return core.Decision(metis.InferCollapsedEdges(graphs[i], mp)), nil
	})
	if err != nil {
		return fmt.Errorf("rl: pretrain target inference failed: %w", err)
	}
	for epoch := t.Pos.Pretrain; epoch < t.Cfg.PretrainEpochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return t.halt(err)
		}
		for i, g := range graphs {
			f := gnn.BuildFeatures(g, cluster)
			binder := t.forward()
			tape := binder.Tape
			probs := t.Model.EdgeProbs(binder, f)
			loss := core.LogProbLoss(binder, probs, targets[i], 1/float64(g.NumEdges()))
			t.Model.PS.ZeroGrads()
			tape.Backward(loss, nil)
			binder.Collect()
			t.applyUpdate(scalarOf(loss))
		}
		t.Pos.Pretrain = epoch + 1
		t.logf("rl: pretrain epoch %d/%d", epoch+1, t.Cfg.PretrainEpochs)
	}
	return nil
}

// TrainOn runs guided pretraining (first call only) followed by
// Cfg.Epochs of REINFORCE over the graphs. It is TrainOnCtx without
// cancellation.
func (t *Trainer) TrainOn(graphs []*stream.Graph, cluster sim.Cluster) error {
	return t.TrainOnCtx(context.Background(), graphs, cluster)
}

// TrainOnCtx trains like TrainOn but honors ctx between pretraining
// epochs and between REINFORCE steps: on cancellation (SIGINT routed via
// signal.NotifyContext, a deadline, …) it checkpoints to
// Cfg.CheckpointPath (when set) and returns the context's error wrapped
// with where the state went. When Cfg.AutosaveEvery > 0 it additionally
// checkpoints every that-many steps, so even a SIGKILL loses at most one
// autosave interval.
func (t *Trainer) TrainOnCtx(ctx context.Context, graphs []*stream.Graph, cluster sim.Cluster) error {
	if t.Cfg.MetisGuided && !t.Pos.Seeded && len(t.buffer) == 0 {
		if err := t.PretrainGuidedCtx(ctx, graphs, cluster); err != nil {
			return err
		}
		if err := t.SeedMetisGuided(graphs, cluster); err != nil {
			return err
		}
	}
	for epoch := t.Pos.Epoch; epoch < t.Cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return t.halt(err)
		}
		t.Pos.Epoch = epoch
		if len(t.Pos.Order) != len(graphs) {
			order := make([]int, len(graphs))
			for i := range order {
				order[i] = i
			}
			t.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			t.Pos.Order = order
			t.Pos.Step = 0
			t.Pos.RewardSum = 0
		}
		// Walk the epoch order in optimizer batches of GraphBatch graphs.
		// The context is polled once per batch (= once per step when
		// GraphBatch is 1, preserving the classic cancellation cadence),
		// and autosave fires whenever the step counter crosses an
		// AutosaveEvery boundary — identical to the per-step modulo check
		// in the serial case.
		batchSize := t.graphBatch()
		for si := t.Pos.Step; si < len(t.Pos.Order); {
			if err := ctx.Err(); err != nil {
				return t.halt(err)
			}
			end := si + batchSize
			if end > len(t.Pos.Order) {
				end = len(t.Pos.Order)
			}
			entries := make([]batchEntry, end-si)
			for j := range entries {
				gi := t.Pos.Order[si+j]
				entries[j] = batchEntry{gi: gi, g: graphs[gi]}
			}
			r, err := t.trainBatch(cluster, entries, t.sampleSeq)
			if err != nil {
				return t.halt(err)
			}
			t.Pos.RewardSum += r
			t.Pos.Step = end
			stepsBefore := t.steps
			t.steps += end - si
			t.sampleSeq += uint64(end - si)
			si = end
			if a := t.Cfg.AutosaveEvery; a > 0 && t.Cfg.CheckpointPath != "" && t.steps/a > stepsBefore/a {
				sp := t.Cfg.Tracer.StartSpan("checkpoint", 0)
				err := t.SaveCheckpoint(t.Cfg.CheckpointPath)
				sp.End()
				if err != nil {
					return fmt.Errorf("rl: autosave failed: %w", err)
				}
			}
		}
		mean := t.Pos.RewardSum / float64(len(graphs))
		t.History = append(t.History, mean)
		t.Pos.Epoch = epoch + 1
		t.Pos.Step = 0
		t.Pos.Order = nil
		t.Pos.RewardSum = 0
		if t.Rewards != nil {
			hits, misses := t.Rewards.Stats()
			t.logf("rl: epoch %d/%d mean on-policy reward %.4f (reward cache: %d hits, %d misses)",
				epoch+1, t.Cfg.Epochs, mean, hits, misses)
		} else {
			t.logf("rl: epoch %d/%d mean on-policy reward %.4f", epoch+1, t.Cfg.Epochs, mean)
		}
	}
	// Dataset pass complete: clear the epoch cursor so a subsequent
	// TrainOn (fine-tuning on new data) starts a fresh pass while the
	// pretrain/seed markers keep their one-time semantics.
	t.Pos.Epoch = 0
	return nil
}

// halt checkpoints on interruption or step failure, then returns the
// cause annotated with where the state was saved.
func (t *Trainer) halt(cause error) error {
	if t.Cfg.CheckpointPath == "" {
		return fmt.Errorf("rl: training interrupted: %w", cause)
	}
	sp := t.Cfg.Tracer.StartSpan("checkpoint", 0)
	defer sp.End()
	if serr := t.SaveCheckpoint(t.Cfg.CheckpointPath); serr != nil {
		return fmt.Errorf("rl: training interrupted (%w); checkpoint also failed: %v", cause, serr)
	}
	return fmt.Errorf("rl: training interrupted (state saved to %s): %w", t.Cfg.CheckpointPath, cause)
}

// ResetBuffers clears the per-graph memory and the per-dataset progress
// markers (use when switching datasets during curriculum fine-tuning:
// graph indices change meaning, and the new dataset deserves its own
// guided cold start).
func (t *Trainer) ResetBuffers() {
	t.buffer = make(map[int][]scored)
	t.Pos = Progress{Level: t.Pos.Level}
	if t.Rewards != nil {
		// Graph ids index into the new dataset now; stale memoized rewards
		// would alias across levels.
		t.Rewards.Clear()
	}
}

// Level is one curriculum stage (§IV-C): a dataset plus epochs to train.
type Level struct {
	Name    string
	Graphs  []*stream.Graph
	Cluster sim.Cluster
	Epochs  int
}

// Curriculum trains the model through the levels in order, carrying
// parameters forward and resetting per-graph buffers between levels (the
// paper's size-based curriculum: 100–200/10dev → 400–500/10dev →
// 1–2K/20dev).
func (t *Trainer) Curriculum(levels []Level) error {
	return t.CurriculumCtx(context.Background(), levels)
}

// CurriculumCtx is Curriculum with cancellation and resume: it starts at
// Pos.Level (restored by LoadCheckpoint), finishes the level in flight
// from its checkpointed epoch/step, and advances.
func (t *Trainer) CurriculumCtx(ctx context.Context, levels []Level) error {
	for li := t.Pos.Level; li < len(levels); li++ {
		lv := levels[li]
		t.Pos.Level = li
		saved := t.Cfg.Epochs
		if lv.Epochs > 0 {
			t.Cfg.Epochs = lv.Epochs
		}
		t.logf("rl: curriculum level %d/%d (%s): %d graphs, %d devices",
			li+1, len(levels), lv.Name, len(lv.Graphs), lv.Cluster.Devices)
		err := t.TrainOnCtx(ctx, lv.Graphs, lv.Cluster)
		t.Cfg.Epochs = saved
		if err != nil {
			return err
		}
		// Level complete: next level gets fresh buffers and markers.
		t.Pos.Level = li + 1
		t.ResetBuffers()
	}
	return nil
}

// Evaluate runs deployment-time inference (ranked coarsening sweep) on
// every graph and returns the per-graph relative throughputs.
func Evaluate(pipe *core.Pipeline, graphs []*stream.Graph, cluster sim.Cluster) []float64 {
	return evalWith(graphs, func(i int) float64 {
		alloc := pipe.Allocate(graphs[i], cluster)
		return sim.Reward(graphs[i], alloc.Placement, cluster)
	})
}

// EvaluateGreedy runs pure threshold-0.5 inference on every graph (used by
// inference-mode ablations).
func EvaluateGreedy(pipe *core.Pipeline, graphs []*stream.Graph, cluster sim.Cluster) []float64 {
	return evalWith(graphs, func(i int) float64 {
		alloc := pipe.AllocateGreedy(graphs[i], cluster)
		return sim.Reward(graphs[i], alloc.Placement, cluster)
	})
}

// evalWith scores every graph in parallel with panic isolation. A panic
// in one worker no longer kills sibling scorings mid-flight; once all
// graphs are attempted the recovered panic (with its stack) is re-raised
// so a partial result can never masquerade as a complete evaluation.
func evalWith(graphs []*stream.Graph, score func(i int) float64) []float64 {
	out, err := resilience.Map(len(graphs), 0, func(i int) (float64, error) {
		return score(i), nil
	})
	if err != nil {
		panic(err)
	}
	return out
}
