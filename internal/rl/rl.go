// Package rl trains the coarsening model with REINFORCE (§III):
//
//	∇J(θ) = (1/N) Σ_n ∇log π_θ(G_y^n) · [r(G_y^n) − b]
//
// where the policy π_θ factorizes over per-edge Bernoulli collapse
// decisions, r is the simulated relative throughput of the resulting
// allocation, and the baseline b is the mean reward of the on-policy
// samples plus the historically best samples kept in a per-graph memory
// buffer. Metis-guided training (§IV-C) seeds that buffer with decision
// vectors inferred from Metis partitions via maximum-spanning-tree
// collapse inference; guided entries are evicted as soon as the policy
// finds better samples, exactly as described in the paper.
package rl

import (
	"fmt"
	"math/rand"
	"sort"

	"math"
	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/sim"

	"repro/internal/stream"

	"repro/internal/autodiff"
)

// Config controls one training run.
type Config struct {
	// Epochs is the number of passes over the training graphs (paper: 20
	// from scratch, 3–10 when fine-tuning).
	Epochs int
	// OnPolicySamples per graph per step (paper: 3).
	OnPolicySamples int
	// BufferSamples is the maximum number of memory-buffer samples mixed
	// into each step (paper: up to 3).
	BufferSamples int
	// LR is the Adam learning rate (paper: 0.001).
	LR float64
	// MetisGuided seeds memory buffers with Metis-derived decisions.
	MetisGuided bool
	// PretrainEpochs is the number of maximum-likelihood imitation epochs
	// over the Metis-guided collapse decisions run before REINFORCE. This
	// is the paper's Metis-guided cold-start signal (§IV-C) in its
	// strongest form: at CPU-scale training budgets the pure
	// buffer-mixing variant cannot transfer the collapse concept before
	// lucky on-policy samples evict the guided entries.
	PretrainEpochs int
	// Seed drives sampling.
	Seed int64
	// Quiet suppresses progress logging.
	Quiet bool
	// Logf receives progress lines when non-nil (and Quiet is false).
	Logf func(format string, args ...any)
}

// DefaultConfig mirrors the paper's hyperparameters at CPU scale.
func DefaultConfig() Config {
	return Config{
		Epochs:          6,
		OnPolicySamples: 4,
		BufferSamples:   3,
		LR:              0.002,
		MetisGuided:     true,
		PretrainEpochs:  16,
		Seed:            7,
	}
}

// scored is a decision vector with its achieved reward.
type scored struct {
	d      core.Decision
	reward float64
	guided bool // true for Metis-seeded entries
}

// Trainer holds the mutable training state for one model.
type Trainer struct {
	Cfg      Config
	Model    *core.Model
	Pipeline *core.Pipeline
	Opt      *nn.Adam

	// buffer holds the best historical samples per training-graph index.
	buffer map[int][]scored
	rng    *rand.Rand

	// History records the mean on-policy reward per epoch.
	History []float64
}

// NewTrainer builds a trainer around a model and pipeline.
func NewTrainer(cfg Config, model *core.Model, pipe *core.Pipeline) *Trainer {
	if pipe.Model != model {
		panic("rl: pipeline must wrap the trained model")
	}
	return &Trainer{
		Cfg:      cfg,
		Model:    model,
		Pipeline: pipe,
		Opt:      nn.NewAdam(cfg.LR),
		buffer:   make(map[int][]scored),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (t *Trainer) logf(format string, args ...any) {
	if t.Cfg.Quiet {
		return
	}
	if t.Cfg.Logf != nil {
		t.Cfg.Logf(format, args...)
		return
	}
	fmt.Printf(format+"\n", args...)
}

// SeedMetisGuided populates the buffers with Metis-derived decisions for
// every training graph (run before the first epoch when MetisGuided).
func (t *Trainer) SeedMetisGuided(graphs []*stream.Graph, cluster sim.Cluster) {
	entries := parallel.Map(len(graphs), 0, func(i int) scored {
		g := graphs[i]
		mp := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: t.Cfg.Seed})
		mp.Devices = cluster.Devices
		d := core.Decision(metis.InferCollapsedEdges(g, mp))
		alloc := t.Pipeline.AllocateDecision(g, cluster, d)
		return scored{d: d, reward: sim.Reward(g, alloc.Placement, cluster), guided: true}
	})
	for i, e := range entries {
		t.buffer[i] = append(t.buffer[i], e)
	}
}

// step trains on one graph and returns the mean on-policy reward.
func (t *Trainer) step(gi int, g *stream.Graph, cluster sim.Cluster) float64 {
	f := gnn.BuildFeatures(g, cluster)
	tape := autodiff.NewTape()
	binder := nn.NewBinder(tape)
	probs := t.Model.EdgeProbs(binder, f)

	// Draw on-policy samples from the current probabilities.
	n := t.Cfg.OnPolicySamples
	samples := make([]scored, n)
	pv := probs.Value
	for s := 0; s < n; s++ {
		d := make(core.Decision, pv.Rows)
		for i := 0; i < pv.Rows; i++ {
			d[i] = t.rng.Float64() < pv.Data[i]
		}
		samples[s] = scored{d: d}
	}
	// Evaluate rewards in parallel (coarsen → partition → simulate).
	parallel.ForEach(n, 0, func(s int) {
		alloc := t.Pipeline.AllocateDecision(g, cluster, samples[s].d)
		samples[s].reward = sim.Reward(g, alloc.Placement, cluster)
	})
	var onPolicyMean float64
	for _, s := range samples {
		onPolicyMean += s.reward
	}
	onPolicyMean /= float64(n)

	// Mix in buffered best samples.
	buf := t.buffer[gi]
	take := t.Cfg.BufferSamples
	if take > len(buf) {
		take = len(buf)
	}
	batch := append(append([]scored(nil), samples...), buf[:take]...)

	// Baseline: mean reward across the batch; advantages are normalized by
	// the batch reward spread so the gradient scale stays useful even when
	// rewards cluster tightly (they do once the policy is competent).
	var b float64
	for _, s := range batch {
		b += s.reward
	}
	b /= float64(len(batch))
	var sd float64
	for _, s := range batch {
		sd += (s.reward - b) * (s.reward - b)
	}
	sd = math.Sqrt(sd / float64(len(batch)))
	if sd < 1e-3 {
		sd = 1e-3
	}

	// Accumulate the policy-gradient loss on the tape. The advantage is
	// divided by the edge count so the gradient scale is independent of
	// graph size (log π sums over all |E| Bernoulli decisions) and
	// commensurate with the guided pretraining loss.
	var loss *autodiff.Node
	inv := 1 / float64(len(batch)) / float64(g.NumEdges())
	for _, s := range batch {
		adv := (s.reward - b) / sd * inv
		if adv == 0 {
			continue
		}
		l := core.LogProbLoss(binder, probs, s.d, adv)
		if loss == nil {
			loss = l
		} else {
			loss = tape.Add(loss, l)
		}
	}
	if loss != nil {
		t.Model.PS.ZeroGrads()
		tape.Backward(loss, nil)
		binder.Collect()
		t.Opt.Step(t.Model.PS)
	}

	// Update the buffer with the new samples; keep the best, evicting
	// guided entries once on-policy samples beat them.
	t.updateBuffer(gi, samples)
	return onPolicyMean
}

func (t *Trainer) updateBuffer(gi int, samples []scored) {
	buf := append(t.buffer[gi], samples...)
	sort.SliceStable(buf, func(a, b int) bool {
		if buf[a].reward != buf[b].reward {
			return buf[a].reward > buf[b].reward
		}
		// Prefer on-policy over guided at equal reward so guided signals
		// phase out ("no longer affect model optimization", §IV-C).
		return !buf[a].guided && buf[b].guided
	})
	max := t.Cfg.BufferSamples
	if max < 1 {
		max = 1
	}
	if len(buf) > max {
		buf = buf[:max]
	}
	t.buffer[gi] = buf
}

// PretrainGuided runs maximum-likelihood imitation of the Metis-guided
// collapse decisions for Cfg.PretrainEpochs epochs. It teaches the model
// which edges belong together (heavy intra-part spanning edges) before any
// reward signal is available — the cold-start guidance of §IV-C.
func (t *Trainer) PretrainGuided(graphs []*stream.Graph, cluster sim.Cluster) {
	if t.Cfg.PretrainEpochs <= 0 {
		return
	}
	targets := parallel.Map(len(graphs), 0, func(i int) core.Decision {
		mp := metis.Partition(graphs[i], metis.Options{Parts: cluster.Devices, Seed: t.Cfg.Seed})
		mp.Devices = cluster.Devices
		return core.Decision(metis.InferCollapsedEdges(graphs[i], mp))
	})
	for epoch := 0; epoch < t.Cfg.PretrainEpochs; epoch++ {
		for i, g := range graphs {
			f := gnn.BuildFeatures(g, cluster)
			tape := autodiff.NewTape()
			binder := nn.NewBinder(tape)
			probs := t.Model.EdgeProbs(binder, f)
			loss := core.LogProbLoss(binder, probs, targets[i], 1/float64(g.NumEdges()))
			t.Model.PS.ZeroGrads()
			tape.Backward(loss, nil)
			binder.Collect()
			t.Opt.Step(t.Model.PS)
		}
		t.logf("rl: pretrain epoch %d/%d", epoch+1, t.Cfg.PretrainEpochs)
	}
}

// TrainOn runs guided pretraining (first call only) followed by
// Cfg.Epochs of REINFORCE over the graphs.
func (t *Trainer) TrainOn(graphs []*stream.Graph, cluster sim.Cluster) {
	if t.Cfg.MetisGuided && len(t.buffer) == 0 {
		t.PretrainGuided(graphs, cluster)
		t.SeedMetisGuided(graphs, cluster)
	}
	order := make([]int, len(graphs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		t.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var mean float64
		for _, gi := range order {
			mean += t.step(gi, graphs[gi], cluster)
		}
		mean /= float64(len(graphs))
		t.History = append(t.History, mean)
		t.logf("rl: epoch %d/%d mean on-policy reward %.4f", epoch+1, t.Cfg.Epochs, mean)
	}
}

// ResetBuffers clears the per-graph memory (use when switching datasets
// during curriculum fine-tuning: graph indices change meaning).
func (t *Trainer) ResetBuffers() {
	t.buffer = make(map[int][]scored)
}

// Level is one curriculum stage (§IV-C): a dataset plus epochs to train.
type Level struct {
	Name    string
	Graphs  []*stream.Graph
	Cluster sim.Cluster
	Epochs  int
}

// Curriculum trains the model through the levels in order, carrying
// parameters forward and resetting per-graph buffers between levels (the
// paper's size-based curriculum: 100–200/10dev → 400–500/10dev →
// 1–2K/20dev).
func (t *Trainer) Curriculum(levels []Level) {
	for li, lv := range levels {
		t.ResetBuffers()
		saved := t.Cfg.Epochs
		if lv.Epochs > 0 {
			t.Cfg.Epochs = lv.Epochs
		}
		t.logf("rl: curriculum level %d/%d (%s): %d graphs, %d devices",
			li+1, len(levels), lv.Name, len(lv.Graphs), lv.Cluster.Devices)
		t.TrainOn(lv.Graphs, lv.Cluster)
		t.Cfg.Epochs = saved
	}
}

// Evaluate runs deployment-time inference (ranked coarsening sweep) on
// every graph and returns the per-graph relative throughputs.
func Evaluate(pipe *core.Pipeline, graphs []*stream.Graph, cluster sim.Cluster) []float64 {
	return parallel.Map(len(graphs), 0, func(i int) float64 {
		alloc := pipe.Allocate(graphs[i], cluster)
		return sim.Reward(graphs[i], alloc.Placement, cluster)
	})
}

// EvaluateGreedy runs pure threshold-0.5 inference on every graph (used by
// inference-mode ablations).
func EvaluateGreedy(pipe *core.Pipeline, graphs []*stream.Graph, cluster sim.Cluster) []float64 {
	return parallel.Map(len(graphs), 0, func(i int) float64 {
		alloc := pipe.AllocateGreedy(graphs[i], cluster)
		return sim.Reward(graphs[i], alloc.Placement, cluster)
	})
}

// SaveCheckpoint writes the model parameters plus trainer history to path
// (JSON). The optimizer's moment estimates are not persisted: resuming
// re-warms Adam, which is standard practice for fine-tuning stages.
func (t *Trainer) SaveCheckpoint(path string) error {
	if err := nn.SaveParams(t.Model.PS, path); err != nil {
		return err
	}
	return nil
}

// LoadCheckpoint restores model parameters saved by SaveCheckpoint.
func (t *Trainer) LoadCheckpoint(path string) error {
	return nn.LoadParams(t.Model.PS, path)
}
