package eval

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

// tinyHarness returns a harness small enough for unit tests.
func tinyHarness(t *testing.T) *Harness {
	t.Helper()
	h := NewHarness(0.08, QuickBudget())
	h.Quiet = true
	h.Out = io.Discard
	return h
}

func TestDatasetCaching(t *testing.T) {
	h := tinyHarness(t)
	d1 := h.Dataset(settingForTest())
	d2 := h.Dataset(settingForTest())
	if d1 != d2 {
		t.Fatal("dataset not cached")
	}
	if len(d1.Train) == 0 || len(d1.Test) == 0 {
		t.Fatal("empty dataset")
	}
}

func TestCoarsenModelCachingAndLevels(t *testing.T) {
	h := tinyHarness(t)
	m1 := h.CoarsenModel("medium5k")
	m2 := h.CoarsenModel("medium5k")
	if m1 != m2 {
		t.Fatal("model not cached")
	}
}

func TestCoarsenModelUnknownLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tinyHarness(t).CoarsenModel("nope")
}

func TestBaselineUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tinyHarness(t).Baseline("nope", settingForTest())
}

func TestFig1ProducesBothSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	rep := h.Fig1()
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, s := range rep.Rows {
		if len(s.Values) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, v := range s.Values {
			if v < 0 || v > rep.MaxX {
				t.Fatalf("series %s value %g outside [0, %g]", s.Name, v, rep.MaxX)
			}
		}
	}
}

func TestTable2RowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	rep := h.Table2()
	want := []string{"Metis", "Our best model (Coarsen+Metis)", "w/o edge-encoding",
		"w/o edge-collapsing features", "Coarsen+Graph-enc-dec", "Coarsen-only", "Graph-enc-dec"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("rows %d, want %d", len(rep.Rows), len(want))
	}
	for i, w := range want {
		if rep.Rows[i].Name != w {
			t.Fatalf("row %d = %q, want %q", i, rep.Rows[i].Name, w)
		}
	}
}

func TestFig7ReportsDeviceUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	res := h.Fig7()
	if len(res.CDF.Rows) != 4 {
		t.Fatalf("cdf rows %d", len(res.CDF.Rows))
	}
	for name, hist := range res.UsedDevices {
		total := 0
		for _, c := range hist {
			total += c
		}
		if total != len(res.CDF.Rows[0].Values) {
			t.Fatalf("%s histogram covers %d graphs, want %d", name, total, len(res.CDF.Rows[0].Values))
		}
	}
}

func TestFig9LowerSaturationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	res := h.Fig9()
	if len(res.MetisSat) == 0 || len(res.CoarsenSat) == 0 {
		t.Fatal("empty saturation data")
	}
}

func TestTable3AllMethodsTimed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	rows := h.Table3()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MediumMS < 0 || r.LargeMS < 0 {
			t.Fatalf("%s negative time", r.Method)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	h := tinyHarness(t)
	if err := h.Run("figxx"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestArtifactsWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	h.OutDir = t.TempDir()
	h.Fig1()
	path := filepath.Join(h.OutDir, "fig1_cdf.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# series: Metis") {
		t.Fatalf("artifact content:\n%s", data)
	}
}

func settingForTest() gen.Setting {
	s := gen.Medium5K()
	s.Config.MinNodes, s.Config.MaxNodes = 40, 70 // faster tests
	return s
}

func TestSimValidateConcordance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the concurrent runtime")
	}
	h := tinyHarness(t)
	res := h.SimValidate()
	if res.Pairs == 0 {
		t.Skip("no discriminating pairs at this scale")
	}
	// Fluid and DES must agree strongly; the concurrent runtime may show
	// real-system effects (head-of-line blocking) but should agree on a
	// majority of pairs.
	if res.FluidVsDES < 0.8 {
		t.Fatalf("fluid-vs-DES concordance %.2f", res.FluidVsDES)
	}
	if res.FluidVsRuntime < 0.4 {
		t.Fatalf("fluid-vs-runtime concordance %.2f", res.FluidVsRuntime)
	}
}

func TestFig6ReportsThreeParts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	reps := h.Fig6()
	if len(reps) != 3 {
		t.Fatalf("fig6 parts = %d", len(reps))
	}
	// Part (b) must contain the three ablation rows plus Metis.
	if len(reps[1].Rows) != 4 {
		t.Fatalf("fig6b rows = %d", len(reps[1].Rows))
	}
}

func TestFig8BinsCoverAllGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	rows := h.Fig8()
	if len(rows) == 0 {
		t.Fatal("no bins")
	}
	var n int
	for _, r := range rows {
		n += r.Metis.N
		if r.RatioHi < r.RatioLo {
			t.Fatal("bin edges inverted")
		}
	}
	if n != len(h.Dataset(settingLarge()).Test) {
		t.Fatalf("bins cover %d graphs", n)
	}
}

func settingLarge() gen.Setting { return gen.Large() }

func TestTable1BlocksComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	reps := h.Table1()
	if len(reps) != 5 {
		t.Fatalf("table1 blocks = %d", len(reps))
	}
	for _, r := range reps {
		if len(r.Rows) < 3 {
			t.Fatalf("%s has %d rows", r.Title, len(r.Rows))
		}
		if r.Rows[0].Name != "Metis" {
			t.Fatalf("%s reference row is %q", r.Title, r.Rows[0].Name)
		}
	}
}

func TestFig3WritesDOTArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	h.OutDir = t.TempDir()
	mt, ct := h.Fig3()
	if mt <= 0 || ct <= 0 {
		t.Fatalf("throughputs %g %g", mt, ct)
	}
	for _, name := range []string{"fig3_metis.dot", "fig3_model.dot"} {
		data, err := os.ReadFile(filepath.Join(h.OutDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "digraph") {
			t.Fatalf("%s is not a DOT file", name)
		}
	}
}

func TestTransferAppsCoversAllTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := tinyHarness(t)
	res := h.TransferApps()
	if len(res.PerTemplate) != len(gen.AllTemplates()) {
		t.Fatalf("templates covered: %d", len(res.PerTemplate))
	}
	for tpl, per := range res.PerTemplate {
		for _, m := range []string{"metis", "metis-oracle", "coarsen+metis", "hill-climb"} {
			v := per[m]
			if v <= 0 || v > 1 {
				t.Fatalf("%s/%s = %g", tpl, m, v)
			}
		}
		// The hill-climb yardstick and the oracle can never be beaten by
		// plain Metis on average... actually they start from Metis, so
		// they are at least as good per instance.
		if per["hill-climb"] < per["metis"]-1e-9 {
			t.Fatalf("%s: hill-climb below its own Metis start", tpl)
		}
		if per["metis-oracle"] < per["metis"]-1e-9 {
			t.Fatalf("%s: oracle below fixed-k metis", tpl)
		}
	}
	if res.Instances != 3*len(gen.AllTemplates()) {
		t.Fatalf("instances = %d", res.Instances)
	}
}
