// drift.go evaluates online re-allocation under environment drift: a
// placement goes live, the environment then surges, loses and gains
// devices, and switches link classes, and three strategies answer the
// drift — never moving, the incremental re-coarsening loop, and a full
// re-coarsen from scratch on every detected shift. The comparison axes
// are the paper-motivated pair: throughput recovered vs migration cost
// paid. Everything here runs on the deterministic fluid simulator over
// tick timelines, so results are bit-identical across runs and worker
// counts (the wall-clock analogue lives in robustness.go).
package eval

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/parallel"
	"repro/internal/realloc"
	"repro/internal/sim"
	"repro/internal/stream"
)

// driftTicks is the timeline length of a drift scenario. At the runtime
// mapping of 25 ms per tick it matches the 400 ms wall-clock runs of the
// Robustness experiment.
const driftTicks = 16

// DriftStrategy summarizes one re-allocation strategy across all drift
// scenarios.
type DriftStrategy struct {
	Name string
	// MeanRelative is the mean relative throughput over every tick of
	// every scenario (demand-relative: measured against the surged rate).
	MeanRelative float64
	// MoveCost is the cumulative migration cost paid (realloc.MoveCost
	// units: tuples in flight × state factor).
	MoveCost float64
	// Migrations counts migrated operators; Replans counts adopted
	// re-allocations; DegradedTicks counts ticks spent holding a stale
	// placement because no feasible migration existed.
	Migrations    int
	Replans       int
	DegradedTicks int
}

// DriftResult is the static / reactive / full-re-coarsen comparison.
type DriftResult struct {
	Static   DriftStrategy
	Reactive DriftStrategy
	Full     DriftStrategy
	// RecoveryFrac is the fraction of the throughput lost by the static
	// placement (relative to its own pre-drift baseline) that the
	// reactive loop wins back: Σ(reactive−static) / Σ(baseline−static)
	// over the ticks where static is below baseline.
	RecoveryFrac float64
	// Curves[s][g][t] is the relative-throughput trajectory of strategy
	// s ∈ {"static","reactive","full"} on scenario g at tick t — the raw
	// data behind the means, kept for bit-reproducibility checks.
	Curves map[string][][]float64
}

// driftOutcome is one scenario's per-strategy accounting.
type driftOutcome struct {
	rel      [3][]float64 // relative per tick, indexed static/reactive/full
	cost     [3]float64
	moved    [3]int
	replans  [3]int
	degraded [3]int
	lost     float64 // Σ max(0, baseline − static)
	gained   float64 // Σ (reactive − static) on lossy ticks
}

const (
	stratStatic = iota
	stratReactive
	stratFull
)

// Drift runs the drift experiment: Metis places each graph, seeded
// elastic scenarios (gen.DriftEventSet) drive the environment, and the
// three strategies replay the identical timeline. The reactive loop uses
// the trained small coarsening model's merge scores to rank region
// collapses; the full strategy uses the same scores but re-coarsens the
// whole graph with no move-cost penalty — an upper bound on recovery and
// on migration spend.
func (h *Harness) Drift() *DriftResult {
	s := gen.Small()
	s.TestN = maxi(3, int(float64(s.TestN)*h.Scale/2))
	s.Seed += 71
	ds := s.Generate()
	cluster := ds.Cluster

	graphs := ds.Test
	if len(graphs) > 4 {
		graphs = graphs[:4]
	}
	model := h.CoarsenModel("small")
	scenarios := gen.DriftEventSet(gen.DefaultDriftConfig(driftTicks), cluster.Devices, len(graphs), h.Seed+97)

	outcomes := parallel.Map(len(graphs), 0, func(i int) driftOutcome {
		return h.runDriftScenario(graphs[i], cluster, model, scenarios[i])
	})

	res := &DriftResult{Curves: map[string][][]float64{}}
	names := [3]string{"static", "reactive", "full"}
	strats := [3]*DriftStrategy{&res.Static, &res.Reactive, &res.Full}
	var lost, gained float64
	for si, st := range strats {
		st.Name = names[si]
		var sum float64
		var ticks int
		for _, o := range outcomes {
			for _, r := range o.rel[si] {
				sum += r
			}
			ticks += len(o.rel[si])
			st.MoveCost += o.cost[si]
			st.Migrations += o.moved[si]
			st.Replans += o.replans[si]
			st.DegradedTicks += o.degraded[si]
			res.Curves[names[si]] = append(res.Curves[names[si]], o.rel[si])
		}
		if ticks > 0 {
			st.MeanRelative = sum / float64(ticks)
		}
	}
	for _, o := range outcomes {
		lost += o.lost
		gained += o.gained
	}
	if lost > 0 {
		res.RecoveryFrac = gained / lost
	}

	h.printf("== Drift: online re-allocation vs static placement ==\n")
	h.printf("  (%d scenarios × %d ticks, small setting, Metis initial placements)\n", len(graphs), driftTicks)
	for _, st := range strats {
		h.printf("  %-9s mean relative %.3f  move cost %9.1f  migrations %3d  replans %2d  degraded ticks %d\n",
			st.Name, st.MeanRelative, st.MoveCost, st.Migrations, st.Replans, st.DegradedTicks)
	}
	h.printf("  reactive recovers %.0f%% of the throughput static loses, at %.1f%% of the full re-coarsen's migration cost\n\n",
		100*res.RecoveryFrac, 100*safeDiv(res.Reactive.MoveCost, res.Full.MoveCost))
	h.artifact("drift.txt", h.driftArtifact(res))
	return res
}

// runDriftScenario replays one scenario's timeline through all three
// strategies. Strategies share the initial placement and the timeline;
// nothing is random past the generated events, so the outcome is a pure
// function of (graph, cluster, model parameters, events).
func (h *Harness) runDriftScenario(g *stream.Graph, cluster sim.Cluster, scorer realloc.Scorer, events []sim.DriftEvent) driftOutcome {
	timeline, err := sim.BuildTimeline(cluster.Devices, driftTicks, events)
	if err != nil {
		panic("eval: drift timeline: " + err.Error())
	}
	initial := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: h.Seed})
	initial.Devices = cluster.Devices

	base, err := sim.SimulateDrift(g, initial, cluster, sim.NominalDrift(cluster.Devices))
	if err != nil {
		panic("eval: drift baseline: " + err.Error())
	}

	reactiveCfg := realloc.DefaultConfig()
	fullCfg := realloc.DefaultConfig()
	fullCfg.MaxRegionDevices = cluster.Devices // whole cluster from the first attempt
	fullCfg.MoveCostWeight = 0                 // migration is treated as free
	fullCfg.Retry.Attempts = 1

	newLoop := func(cfg realloc.Config) *realloc.Loop {
		l, err := realloc.New(g, cluster, scorer, initial, cfg)
		if err != nil {
			panic("eval: drift loop: " + err.Error())
		}
		return l
	}
	loops := [3]*realloc.Loop{nil, newLoop(reactiveCfg), newLoop(fullCfg)}

	var o driftOutcome
	ctx := context.Background()
	for _, st := range timeline {
		staticRes, err := sim.SimulateDrift(g, initial, cluster, st)
		if err != nil {
			panic("eval: drift static tick: " + err.Error())
		}
		o.rel[stratStatic] = append(o.rel[stratStatic], staticRes.Relative)
		if d := base.Relative - staticRes.Relative; d > 0 {
			o.lost += d
		}
		for si := stratReactive; si <= stratFull; si++ {
			act, err := loops[si].Step(ctx, st)
			if err != nil {
				panic("eval: drift step: " + err.Error())
			}
			o.rel[si] = append(o.rel[si], act.Relative)
			o.cost[si] += act.MoveCost
			o.moved[si] += act.Moved
			if act.Replanned {
				o.replans[si]++
			}
			if act.Degraded {
				o.degraded[si]++
			}
			if si == stratReactive && base.Relative > staticRes.Relative {
				o.gained += act.Relative - staticRes.Relative
			}
		}
	}
	return o
}

func (h *Harness) driftArtifact(res *DriftResult) string {
	out := "# drift experiment: mean relative throughput / cumulative migration cost\n"
	for _, st := range []*DriftStrategy{&res.Static, &res.Reactive, &res.Full} {
		out += fmt.Sprintf("%s\t%.6f\t%.3f\t%d\t%d\t%d\n",
			st.Name, st.MeanRelative, st.MoveCost, st.Migrations, st.Replans, st.DegradedTicks)
	}
	out += fmt.Sprintf("recovery_frac\t%.6f\n", res.RecoveryFrac)
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RobustnessSim is the deterministic sibling of Robustness: the same
// escalating crash schedule (one 60 ms window per crash, staggered
// across devices) evaluated on the fluid simulator's tick timeline
// instead of the wall-clock runtime. Fault counts and the throughput
// curve are bit-identical across runs and GOMAXPROCS settings, which the
// wall-clock experiment by nature cannot promise.
func (h *Harness) RobustnessSim() *RobustnessResult {
	s := gen.Small()
	s.TestN = maxi(3, int(float64(s.TestN)*h.Scale/2))
	s.Seed += 53
	ds := s.Generate()
	cluster := ds.Cluster

	graphs := ds.Test
	if len(graphs) > 4 {
		graphs = graphs[:4]
	}
	placements := make([]*stream.Placement, len(graphs))
	for i, g := range graphs {
		p := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: h.Seed})
		p.Devices = cluster.Devices
		placements[i] = p
	}

	// The wall-clock schedule maps 25 ms per tick: crash i starts at
	// 120 ms + i·70 ms and lasts 60 ms ≈ ticks [4+3i, 4+3i+3).
	crashCounts := []int{0, 1, 2, 3}
	res := &RobustnessResult{Crashes: crashCounts}
	for _, k := range crashCounts {
		var events []sim.DriftEvent
		restarts := 0
		for i := 0; i < k; i++ {
			at := 4 + 3*i
			events = append(events, sim.DriftEvent{
				Kind: sim.DriftDeviceLoss, Device: i % cluster.Devices, Tick: at, DurTicks: 3,
			})
			if at+3 < driftTicks {
				restarts++ // the window closes inside the run: the device comes back
			}
		}
		timeline, err := sim.BuildTimeline(cluster.Devices, driftTicks, events)
		if err != nil {
			panic("eval: robustness-sim timeline: " + err.Error())
		}
		rels := parallel.Map(len(graphs), 0, func(i int) float64 {
			var sum float64
			for _, st := range timeline {
				r, err := sim.SimulateDrift(graphs[i], placements[i], cluster, st)
				if err != nil {
					panic("eval: robustness-sim tick: " + err.Error())
				}
				sum += r.Relative
			}
			return sum / float64(len(timeline))
		})
		res.Relative = append(res.Relative, Mean(rels))
		res.MeasuredCrashes = append(res.MeasuredCrashes, k*len(graphs))
		res.MeasuredRestarts = append(res.MeasuredRestarts, restarts*len(graphs))
	}
	for i := range res.Relative {
		d := 1.0
		if res.Relative[0] > 0 {
			d = res.Relative[i] / res.Relative[0]
		}
		res.Degradation = append(res.Degradation, d)
	}

	h.printf("== Robustness (deterministic sim): throughput under device crashes ==\n")
	h.printf("  (Metis placements, %d graphs, 3-tick crash windows, %d-tick timelines)\n", len(graphs), driftTicks)
	for i, k := range res.Crashes {
		h.printf("  %d crash(es): relative %.3f  retained %.2f  (%d crashes, %d restarts on the timeline)\n",
			k, res.Relative[i], res.Degradation[i], res.MeasuredCrashes[i], res.MeasuredRestarts[i])
	}
	h.printf("\n")
	return res
}
