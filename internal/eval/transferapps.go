package eval

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

// TransferAppsResult reports the transfer-to-applications experiment: a
// coarsening model trained purely on the synthetic Fig. 4 generator is
// applied zero-shot to hand-modelled real-world application shapes
// (wordcount, log analytics, fraud detection, IoT monitoring). The paper
// claims "great transferability and adaptability when deployed to graphs
// vastly different from the training set" (§I, §VI-B); the template
// topologies are exactly such graphs.
type TransferAppsResult struct {
	// PerTemplate maps template → mean relative throughput of each method.
	PerTemplate map[string]map[string]float64
	// Overall means across all instances.
	Overall map[string]float64
	// Instances is the number of application instances evaluated.
	Instances int
}

// TransferApps evaluates Metis, Metis-Oracle, the hill-climb yardstick,
// and the medium-trained coarsening pipeline on template application
// instances at several widths.
func (h *Harness) TransferApps() *TransferAppsResult {
	cluster := sim.DefaultCluster(5, 200)
	model := h.CoarsenModel("medium")
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: h.Seed}}
	rng := rand.New(rand.NewSource(h.Seed + 404))

	res := &TransferAppsResult{
		PerTemplate: make(map[string]map[string]float64),
		Overall:     make(map[string]float64),
	}
	methods := []string{"metis", "metis-oracle", "coarsen+metis", "hill-climb"}
	counts := make(map[string]int)

	widths := []int{3, 6, 10}
	for _, tpl := range gen.AllTemplates() {
		sums := make(map[string]float64)
		n := 0
		for _, w := range widths {
			g, err := gen.FromTemplate(tpl, w, 5_000, rng)
			if err != nil {
				panic("eval: template: " + err.Error())
			}
			evalOne := func(method string, p *stream.Placement) {
				r := sim.Reward(g, p, cluster)
				sums[method] += r
				res.Overall[method] += r
				counts[method]++
			}
			mp := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: h.Seed})
			mp.Devices = cluster.Devices
			evalOne("metis", mp)
			op, _ := metis.Oracle(g, cluster, h.Seed)
			evalOne("metis-oracle", op)
			evalOne("coarsen+metis", pipe.Allocate(g, cluster).Placement)
			evalOne("hill-climb", placer.HillClimb{Seed: h.Seed, Restarts: 1}.Place(g, cluster))
			n++
		}
		per := make(map[string]float64)
		for _, m := range methods {
			per[m] = sums[m] / float64(n)
		}
		res.PerTemplate[string(tpl)] = per
		res.Instances += n
	}
	for _, m := range methods {
		if counts[m] > 0 {
			res.Overall[m] /= float64(counts[m])
		}
	}

	h.printf("== Transfer to real-world application templates (zero-shot) ==\n")
	h.printf("  %-18s %10s %14s %16s %12s\n", "template", "metis", "metis-oracle", "coarsen+metis", "hill-climb")
	for _, tpl := range gen.AllTemplates() {
		per := res.PerTemplate[string(tpl)]
		h.printf("  %-18s %10.3f %14.3f %16.3f %12.3f\n",
			tpl, per["metis"], per["metis-oracle"], per["coarsen+metis"], per["hill-climb"])
	}
	h.printf("  %-18s %10.3f %14.3f %16.3f %12.3f\n\n", "overall",
		res.Overall["metis"], res.Overall["metis-oracle"], res.Overall["coarsen+metis"], res.Overall["hill-climb"])
	return res
}
