package eval

import (
	"time"

	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// RobustnessResult reports how a placement's measured throughput degrades
// as device-crash faults are injected into the concurrent runtime. Real
// clusters fail; a placement that concentrates the hot path on one device
// loses more under a crash than one that spreads it, so the degradation
// curve is a robustness metric complementary to steady-state throughput.
type RobustnessResult struct {
	// Crashes[i] is the number of crash windows injected for column i
	// (always starting at 0 = fault-free baseline).
	Crashes []int
	// Relative[i] is the mean relative throughput over the evaluated
	// graphs with Crashes[i] crash windows.
	Relative []float64
	// Degradation[i] = Relative[i] / Relative[0]: the fraction of
	// fault-free throughput retained (1.0 at i=0 by construction).
	Degradation []float64
	// MeasuredCrashes[i] / MeasuredRestarts[i] are the device crash and
	// restart events the runtime actually observed across the column's
	// runs — taken from runtime.Result's measured fault metrics, not
	// recomputed from the FaultPlan (a fault scheduled past the wall
	// clock, or on an idle device, never fires).
	MeasuredCrashes  []int
	MeasuredRestarts []int
}

// Robustness measures throughput degradation under an escalating device
// crash/restart schedule. Placements come from Metis on the small setting,
// so the experiment exercises the fault-injected runtime without a
// training dependency; each crash window takes down a different device in
// rotation for 60 ms of the 400 ms run.
func (h *Harness) Robustness() *RobustnessResult {
	s := gen.Small()
	s.TestN = maxi(3, int(float64(s.TestN)*h.Scale/2))
	s.Seed += 53
	ds := s.Generate()
	cluster := ds.Cluster

	graphs := ds.Test
	if len(graphs) > 4 {
		graphs = graphs[:4]
	}
	placements := make([]*stream.Placement, len(graphs))
	for i, g := range graphs {
		p := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: h.Seed})
		p.Devices = cluster.Devices
		placements[i] = p
	}

	crashCounts := []int{0, 1, 2, 3}
	res := &RobustnessResult{Crashes: crashCounts}
	for _, k := range crashCounts {
		cfg := runtime.DefaultConfig()
		cfg.WallTime = 400 * time.Millisecond
		cfg.WarmupFrac = 0.25
		plan := &runtime.FaultPlan{}
		for i := 0; i < k; i++ {
			plan.Devices = append(plan.Devices, runtime.DeviceFault{
				Device:   i % cluster.Devices,
				At:       120*time.Millisecond + time.Duration(i)*70*time.Millisecond,
				Duration: 60 * time.Millisecond,
			})
		}
		cfg.Faults = plan

		// Runs are wall-clock measurements on shared CPUs: keep them
		// serial so concurrent runs do not distort each other's timing.
		var sum float64
		var n, crashes, restarts int
		for i, g := range graphs {
			r, err := runtime.Run(g, placements[i], cluster, cfg)
			if err != nil {
				h.printf("eval: robustness run failed on graph %d (k=%d): %v\n", i, k, err)
				continue
			}
			sum += r.Relative
			crashes += r.DeviceCrashes
			restarts += r.DeviceRestarts
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		res.Relative = append(res.Relative, mean)
		res.MeasuredCrashes = append(res.MeasuredCrashes, crashes)
		res.MeasuredRestarts = append(res.MeasuredRestarts, restarts)
	}
	for i := range res.Relative {
		d := 1.0
		if res.Relative[0] > 0 {
			d = res.Relative[i] / res.Relative[0]
		}
		res.Degradation = append(res.Degradation, d)
	}

	h.printf("== Robustness: throughput under injected device crashes ==\n")
	h.printf("  (Metis placements, %d graphs, 60 ms crash windows, 400 ms runs)\n", len(graphs))
	for i, k := range res.Crashes {
		h.printf("  %d crash(es): relative %.3f  retained %.2f  (measured: %d crashes, %d restarts)\n",
			k, res.Relative[i], res.Degradation[i], res.MeasuredCrashes[i], res.MeasuredRestarts[i])
	}
	h.printf("\n")
	return res
}
