package eval

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/stream"
)

// SimValidateResult reports rank concordance between the three execution
// models: the linear-fluid solver (the RL reward), the discrete-event
// solver, and the real concurrent runtime. The paper's §III leans on
// CEPSim preserving the relative ranks of a real platform; this experiment
// establishes the same property within the repository.
type SimValidateResult struct {
	// Pairs is the number of discriminating placement pairs compared.
	Pairs int
	// FluidVsDES / FluidVsRuntime / DESVsRuntime are the fractions of
	// pairs ranked concordantly (1.0 = identical ordering).
	FluidVsDES     float64
	FluidVsRuntime float64
	DESVsRuntime   float64
	// MeanAbsFluidDES is the mean |relative| gap between fluid and DES.
	MeanAbsFluidDES float64
}

// SimValidate runs the three execution models over a spread of placements
// (Metis with varying part counts plus random assignments) on small graphs
// and computes pairwise rank concordance.
func (h *Harness) SimValidate() *SimValidateResult {
	s := gen.Small()
	s.TestN = maxi(4, int(float64(s.TestN)*h.Scale))
	s.Seed += 31
	ds := s.Generate()
	cluster := ds.Cluster
	rng := rand.New(rand.NewSource(h.Seed + 77))

	rtCfg := runtime.DefaultConfig()
	rtCfg.WallTime = 120 * time.Millisecond

	type obs struct{ fluid, des, rt float64 }
	var all []obs
	for _, g := range ds.Test {
		placements := []*stream.Placement{}
		for _, k := range []int{1, 2, cluster.Devices} {
			p := metis.Partition(g, metis.Options{Parts: k, Seed: h.Seed})
			p.Devices = cluster.Devices
			placements = append(placements, p)
		}
		rp := stream.NewPlacement(g.NumNodes(), cluster.Devices)
		for v := range rp.Assign {
			rp.Assign[v] = rng.Intn(cluster.Devices)
		}
		placements = append(placements, rp)

		for _, p := range placements {
			fres, err := sim.Simulate(g, p, cluster)
			if err != nil {
				continue
			}
			dres, err := sim.SimulateDES(g, p, cluster, sim.DefaultDESConfig())
			if err != nil {
				continue
			}
			rres, err := runtime.Run(g, p, cluster, rtCfg)
			if err != nil {
				continue
			}
			all = append(all, obs{fres.Relative, dres.Relative, rres.Relative})
		}
	}

	res := &SimValidateResult{}
	var cFD, cFR, cDR, n int
	var gapSum float64
	const tie = 0.03
	for i := 0; i < len(all); i++ {
		gapSum += math.Abs(all[i].fluid - all[i].des)
		for j := i + 1; j < len(all); j++ {
			df := all[i].fluid - all[j].fluid
			dd := all[i].des - all[j].des
			dr := all[i].rt - all[j].rt
			if math.Abs(df) < tie || math.Abs(dd) < tie || math.Abs(dr) < tie {
				continue
			}
			n++
			if df*dd > 0 {
				cFD++
			}
			if df*dr > 0 {
				cFR++
			}
			if dd*dr > 0 {
				cDR++
			}
		}
	}
	res.Pairs = n
	if n > 0 {
		res.FluidVsDES = float64(cFD) / float64(n)
		res.FluidVsRuntime = float64(cFR) / float64(n)
		res.DESVsRuntime = float64(cDR) / float64(n)
	}
	if len(all) > 0 {
		res.MeanAbsFluidDES = gapSum / float64(len(all))
	}
	h.printf("== Sim-validation: rank concordance of execution models ==\n")
	h.printf("  discriminating pairs: %d\n", res.Pairs)
	h.printf("  fluid vs DES:      %.2f\n", res.FluidVsDES)
	h.printf("  fluid vs runtime:  %.2f\n", res.FluidVsRuntime)
	h.printf("  DES vs runtime:    %.2f\n", res.DESVsRuntime)
	h.printf("  mean |fluid-DES| relative gap: %.3f\n\n", res.MeanAbsFluidDES)
	return res
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
