package eval

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/placer"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Budget sets the training effort. The paper trains for GPU-hours; these
// knobs trade fidelity for CPU time. Harness.Scale additionally shrinks
// the datasets.
type Budget struct {
	// Coarsening model.
	Pretrain int // Metis-guided imitation epochs
	RL       int // REINFORCE epochs
	Finetune int // REINFORCE epochs when adapting to the next level
	// Learned direct-placement baselines.
	BaselinePretrain int
	BaselineRL       int
}

// DefaultBudget is sized for a full experiment run (minutes on a laptop).
func DefaultBudget() Budget {
	return Budget{Pretrain: 24, RL: 8, Finetune: 4, BaselinePretrain: 16, BaselineRL: 10}
}

// QuickBudget is sized for tests and benchmarks (seconds).
func QuickBudget() Budget {
	return Budget{Pretrain: 4, RL: 1, Finetune: 1, BaselinePretrain: 2, BaselineRL: 1}
}

// Harness runs the paper's experiments with cached datasets and trained
// models so that shared components (e.g. the medium-graph coarsening
// model) train once per process.
type Harness struct {
	Scale  float64 // dataset size multiplier (1 = preset sizes)
	Budget Budget
	Seed   int64
	Out    io.Writer // report stream (nil = os.Stdout)
	OutDir string    // when set, per-experiment artifacts are written here
	Quiet  bool      // suppress training progress
	Plot   bool      // render ASCII CDF plots alongside the AUC tables

	// GraphBatch/TrainWorkers configure data-parallel training epochs
	// (rl.Config semantics: 0/1 batch = serial; workers is a pure
	// wall-clock knob that never changes results for a given batch).
	GraphBatch   int
	TrainWorkers int

	// Curve and Tracer, when set, are threaded into every coarsening
	// training run the harness launches (rl.Config.Curve / .Tracer
	// semantics: observation only, trajectories unchanged).
	Curve  *obs.CurveWriter
	Tracer *obs.Tracer

	datasets map[string]*gen.Dataset
	coarsen  map[string]*core.Model
	base     map[string]baselines.Model
}

// NewHarness builds a harness with the given dataset scale.
func NewHarness(scale float64, budget Budget) *Harness {
	return &Harness{
		Scale:    scale,
		Budget:   budget,
		Seed:     1,
		datasets: make(map[string]*gen.Dataset),
		coarsen:  make(map[string]*core.Model),
		base:     make(map[string]baselines.Model),
	}
}

func (h *Harness) out() io.Writer {
	if h.Out == nil {
		return os.Stdout
	}
	return h.Out
}

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.out(), format, args...)
}

// report prints an AUC table and, when Plot is set, its ASCII CDF plot.
func (h *Harness) report(rep *Report) {
	h.printf("%s\n", rep)
	if h.Plot {
		h.printf("%s\n", rep.ASCIIPlot(64, 12))
	}
}

// artifact writes content to OutDir/name when OutDir is set.
func (h *Harness) artifact(name, content string) {
	if h.OutDir == "" {
		return
	}
	if err := os.MkdirAll(h.OutDir, 0o755); err != nil {
		h.printf("eval: cannot create %s: %v\n", h.OutDir, err)
		return
	}
	path := filepath.Join(h.OutDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		h.printf("eval: cannot write %s: %v\n", path, err)
	}
}

// Dataset returns (generating and caching) the dataset for a preset.
func (h *Harness) Dataset(s gen.Setting) *gen.Dataset {
	if ds, ok := h.datasets[s.Name]; ok {
		return ds
	}
	scaled := s.Scale(h.Scale)
	ds := scaled.Generate()
	h.datasets[s.Name] = ds
	return ds
}

// rlConfig builds the coarsening training config from the budget.
func (h *Harness) rlConfig(pretrain, epochs int) rl.Config {
	cfg := rl.DefaultConfig()
	cfg.PretrainEpochs = pretrain
	cfg.Epochs = epochs
	cfg.Quiet = h.Quiet
	cfg.Seed = h.Seed + 100
	cfg.LR = 0.003
	cfg.GraphBatch = h.GraphBatch
	cfg.TrainWorkers = h.TrainWorkers
	cfg.Curve = h.Curve
	cfg.Tracer = h.Tracer
	return cfg
}

// Metrics returns the registry all harness-driven instrumentation reports
// into — the process-wide default, where the sim/metis/runtime/rl package
// counters live. Callers can snapshot it or serve it via obs.Serve.
func (h *Harness) Metrics() *obs.Registry { return obs.Default }

// CoarsenModel returns the trained coarsening model for a named level,
// training it (and its curriculum predecessors) on first use.
//
// Levels: "small", "medium5k", "medium", "large" (curriculum from medium),
// "large-scratch", "large-scratch-guided", "xlarge" (curriculum from
// large), "excess" (fine-tuned from medium on the excess dataset).
func (h *Harness) CoarsenModel(level string) *core.Model {
	if m, ok := h.coarsen[level]; ok {
		return m
	}
	var model *core.Model
	newModel := func() *core.Model {
		cfg := core.DefaultConfig()
		cfg.Seed = h.Seed
		return core.New(cfg)
	}
	train := func(m *core.Model, ds *gen.Dataset, pre, ep int) {
		pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: h.Seed}}
		cfg := h.rlConfig(pre, ep)
		tr := rl.NewTrainer(cfg, m, pipe)
		tr.TrainOn(ds.Train, ds.Cluster)
	}
	finetune := func(m *core.Model, ds *gen.Dataset, ep int) {
		// Snapshot before fine-tuning: the paper trains each curriculum
		// level "until it achieves its best performance", so if the short
		// REINFORCE adaptation regresses (its gradients are noisy at CPU
		// budgets), the pre-finetune state is kept.
		snap := core.New(m.Cfg)
		if err := copyParams(snap, m); err != nil {
			panic("eval: snapshot model: " + err.Error())
		}
		pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: h.Seed}}
		cfg := h.rlConfig(0, ep) // no imitation pretraining when fine-tuning
		cfg.LR = 0.001           // gentler updates: the model is already competent
		tr := rl.NewTrainer(cfg, m, pipe)
		tr.TrainOn(ds.Train, ds.Cluster)

		// Validate on a slice of the training split and keep the better.
		val := ds.Train
		if len(val) > 8 {
			val = val[:8]
		}
		snapPipe := &core.Pipeline{Model: snap, Placer: placer.Metis{Seed: h.Seed}}
		after := Mean(rl.Evaluate(pipe, val, ds.Cluster))
		before := Mean(rl.Evaluate(snapPipe, val, ds.Cluster))
		if before > after {
			if err := copyParams(m, snap); err != nil {
				panic("eval: restore model: " + err.Error())
			}
		}
	}
	clone := func(src *core.Model) *core.Model {
		dst := newModel()
		if err := copyParams(dst, src); err != nil {
			panic("eval: clone model: " + err.Error())
		}
		return dst
	}

	switch level {
	case "small":
		model = newModel()
		train(model, h.Dataset(gen.Small()), h.Budget.Pretrain, h.Budget.RL)
	case "medium5k":
		model = newModel()
		train(model, h.Dataset(gen.Medium5K()), h.Budget.Pretrain, h.Budget.RL)
	case "medium":
		model = newModel()
		train(model, h.Dataset(gen.Medium()), h.Budget.Pretrain, h.Budget.RL)
	case "large":
		model = clone(h.CoarsenModel("medium"))
		finetune(model, h.Dataset(gen.Large()), h.Budget.Finetune)
	case "large-scratch":
		model = newModel()
		cfg := h.rlConfig(0, h.Budget.Pretrain/2+h.Budget.RL)
		cfg.MetisGuided = false
		pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: h.Seed}}
		rl.NewTrainer(cfg, model, pipe).TrainOn(h.Dataset(gen.Large()).Train, h.Dataset(gen.Large()).Cluster)
	case "large-scratch-guided":
		model = newModel()
		train(model, h.Dataset(gen.Large()), h.Budget.Pretrain, h.Budget.RL)
	case "xlarge":
		model = clone(h.CoarsenModel("large"))
		finetune(model, h.Dataset(gen.XLarge()), h.Budget.Finetune)
	case "excess":
		model = clone(h.CoarsenModel("medium"))
		finetune(model, h.Dataset(gen.Excess()), h.Budget.Finetune)
	default:
		panic("eval: unknown coarsen level " + level)
	}
	h.coarsen[level] = model
	return model
}

// copyParams copies values between identically configured models.
func copyParams(dst, src *core.Model) error {
	return nn.CopyValuesFrom(dst.PS, src.PS)
}

// Baseline returns the trained learned baseline ("graph-enc-dec", "gdp",
// "hierarchical") for a setting, training on first use.
func (h *Harness) Baseline(kind string, s gen.Setting) baselines.Model {
	key := kind + "/" + s.Name
	if m, ok := h.base[key]; ok {
		return m
	}
	var m baselines.Model
	switch kind {
	case "graph-enc-dec":
		m = baselines.NewGraphEncDec(16, 32, h.Seed+3)
	case "gdp":
		m = baselines.NewGDP(16, h.Seed+4)
	case "hierarchical":
		m = baselines.NewHierarchical(25, 32, h.Seed+5)
	default:
		panic("eval: unknown baseline " + kind)
	}
	cfg := baselines.DefaultTrainConfig()
	cfg.PretrainEpochs = h.Budget.BaselinePretrain
	cfg.Epochs = h.Budget.BaselineRL
	cfg.Quiet = h.Quiet
	cfg.Seed = h.Seed + 9
	ds := h.Dataset(s)
	m.TrainOn(ds.Train, ds.Cluster, cfg)
	h.base[key] = m
	return m
}

// CoarsePlacerEncDec returns a Graph-enc-dec model trained to place the
// *coarse* graphs the coarsening model produces for a setting — the
// partitioning-stage role it plays in Coarsen+Graph-enc-dec. (A direct
// placer trained on full-size graphs transfers poorly to 20-50-node coarse
// graphs with aggregated features.)
func (h *Harness) CoarsePlacerEncDec(level string, s gen.Setting) baselines.Model {
	key := "graph-enc-dec-coarse/" + s.Name
	if m, ok := h.base[key]; ok {
		return m
	}
	ds := h.Dataset(s)
	model := h.CoarsenModel(level)
	// Train on well-coarsened graphs (~4× the device count): the paper's
	// point is that placement becomes simple exactly there, and the LSTM
	// decoder's compounding errors stay bounded on short sequences.
	coarse := parallel.Map(len(ds.Train), 0, func(i int) *stream.Graph {
		g := ds.Train[i]
		d := model.CoarsenTo(g, ds.Cluster, 4*ds.Cluster.Devices)
		cm := stream.CollapseEdges(g, d)
		return stream.CoarseGraph(g, cm)
	})
	m := baselines.NewGraphEncDec(16, 32, h.Seed+6)
	cfg := baselines.DefaultTrainConfig()
	cfg.PretrainEpochs = 3 * h.Budget.BaselinePretrain
	cfg.Epochs = h.Budget.BaselineRL
	cfg.Quiet = h.Quiet
	cfg.Seed = h.Seed + 11
	m.TrainOn(coarse, ds.Cluster, cfg)
	h.base[key] = m
	return m
}

// throughputs helpers ------------------------------------------------------

// metisThroughputs evaluates plain Metis on the test split.
func (h *Harness) metisThroughputs(ds *gen.Dataset) []float64 {
	return parallel.Map(len(ds.Test), 0, func(i int) float64 {
		g := ds.Test[i]
		p := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: h.Seed})
		p.Devices = ds.Cluster.Devices
		return sim.Reward(g, p, ds.Cluster) * g.SourceRate
	})
}

// metisOracleThroughputs evaluates the device-count-sweeping Metis oracle.
func (h *Harness) metisOracleThroughputs(ds *gen.Dataset) []float64 {
	return parallel.Map(len(ds.Test), 0, func(i int) float64 {
		g := ds.Test[i]
		p, _ := metis.Oracle(g, ds.Cluster, h.Seed)
		return sim.Reward(g, p, ds.Cluster) * g.SourceRate
	})
}

// coarsenThroughputs evaluates a coarsening model + placer pipeline.
func (h *Harness) coarsenThroughputs(m *core.Model, pl placer.Placer, ds *gen.Dataset) []float64 {
	pipe := &core.Pipeline{Model: m, Placer: pl}
	return parallel.Map(len(ds.Test), 0, func(i int) float64 {
		g := ds.Test[i]
		a := pipe.Allocate(g, ds.Cluster)
		return sim.Reward(g, a.Placement, ds.Cluster) * g.SourceRate
	})
}

// baselineThroughputs evaluates a learned direct-placement baseline.
func (h *Harness) baselineThroughputs(m baselines.Model, ds *gen.Dataset) []float64 {
	return parallel.Map(len(ds.Test), 0, func(i int) float64 {
		g := ds.Test[i]
		return sim.Reward(g, m.Place(g, ds.Cluster), ds.Cluster) * g.SourceRate
	})
}

// Experiments ---------------------------------------------------------------

// Fig1 reproduces the motivating CDF: Metis vs Graph-enc-dec on the
// medium dataset (learned direct placement loses on ≥100-node graphs).
func (h *Harness) Fig1() *Report {
	ds := h.Dataset(gen.Medium())
	rep := &Report{
		Title: "Fig.1 motivating gap: Metis vs Graph-enc-dec (100-200 nodes)",
		MaxX:  10_000,
		Rows: []Series{
			{Name: "Metis", Values: h.metisThroughputs(ds)},
			{Name: "Graph-enc-dec", Values: h.baselineThroughputs(h.Baseline("graph-enc-dec", gen.Medium()), ds)},
		},
	}
	h.report(rep)
	h.artifact("fig1_cdf.txt", CDFTable(rep.Rows))
	return rep
}

// Table1 reproduces the AUC table across all settings.
func (h *Harness) Table1() []*Report {
	var reports []*Report
	add := func(rep *Report) {
		reports = append(reports, rep)
		h.report(rep)
	}

	// Block 1: small graphs (10K/s, 5 devices, 4-26 nodes).
	{
		ds := h.Dataset(gen.Small())
		add(&Report{
			Title: "Table I (10K/s, 5 devices, 4-26 nodes)",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Graph-enc-dec", Values: h.baselineThroughputs(h.Baseline("graph-enc-dec", gen.Small()), ds)},
				{Name: "Coarsen+Metis", Values: h.coarsenThroughputs(h.CoarsenModel("small"), placer.Metis{Seed: h.Seed}, ds)},
			},
		})
	}
	// Block 2: 5K/s, 5 devices, 100-200 nodes.
	{
		ds := h.Dataset(gen.Medium5K())
		encdec := h.CoarsePlacerEncDec("medium5k", gen.Medium5K())
		add(&Report{
			Title: "Table I (5K/s, 5 devices, 100-200 nodes)",
			MaxX:  5_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen+Metis", Values: h.coarsenThroughputs(h.CoarsenModel("medium5k"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Graph-enc-dec", Values: h.coarsenThroughputs(h.CoarsenModel("medium5k"), baselines.AsPlacer{Model: encdec}, ds)},
			},
		})
	}
	// Block 3: 10K/s, 10 devices, 100-200 nodes.
	{
		ds := h.Dataset(gen.Medium())
		encdec := h.CoarsePlacerEncDec("medium", gen.Medium())
		add(&Report{
			Title: "Table I (10K/s, 10 devices, 100-200 nodes)",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen+Metis", Values: h.coarsenThroughputs(h.CoarsenModel("medium"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Graph-enc-dec", Values: h.coarsenThroughputs(h.CoarsenModel("medium"), baselines.AsPlacer{Model: encdec}, ds)},
			},
		})
	}
	// Block 4: 10K/s, 10 devices, 400-500 nodes.
	{
		ds := h.Dataset(gen.Large())
		encdec := h.CoarsePlacerEncDec("medium", gen.Medium()) // trained on medium coarse graphs, transferred
		add(&Report{
			Title: "Table I (10K/s, 10 devices, 400-500 nodes)",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen+Metis (+curriculum)", Values: h.coarsenThroughputs(h.CoarsenModel("large"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Graph-enc-dec", Values: h.coarsenThroughputs(h.CoarsenModel("large"), baselines.AsPlacer{Model: encdec}, ds)},
			},
		})
	}
	// Block 5: 10K/s, 20 devices, 1K-2K nodes.
	{
		ds := h.Dataset(gen.XLarge())
		add(&Report{
			Title: "Table I (10K/s, 20 devices, 1K-2K nodes)",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen+Metis (direct prediction)", Values: h.coarsenThroughputs(h.CoarsenModel("large"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Metis (+curriculum)", Values: h.coarsenThroughputs(h.CoarsenModel("xlarge"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Metis-oracle (+curriculum)", Values: h.coarsenThroughputs(h.CoarsenModel("xlarge"), placer.MetisOracle{Seed: h.Seed}, ds)},
			},
		})
	}
	var all string
	for _, r := range reports {
		all += r.String() + "\n"
	}
	h.artifact("table1.txt", all)
	return reports
}

// Fig5 reproduces the medium-graph CDF comparison with all baselines.
func (h *Harness) Fig5() []*Report {
	var reports []*Report
	for _, s := range []gen.Setting{gen.Medium5K(), gen.Medium()} {
		ds := h.Dataset(s)
		level := "medium5k"
		if s.Name == gen.Medium().Name {
			level = "medium"
		}
		encdec := h.Baseline("graph-enc-dec", s)
		coarseEncdec := h.CoarsePlacerEncDec(level, s)
		rep := &Report{
			Title: "Fig.5 " + s.Name,
			MaxX:  ds.Train[0].SourceRate,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Graph-enc-dec", Values: h.baselineThroughputs(encdec, ds)},
				{Name: "GDP", Values: h.baselineThroughputs(h.Baseline("gdp", s), ds)},
				{Name: "Hierarchical", Values: h.baselineThroughputs(h.Baseline("hierarchical", s), ds)},
				{Name: "Coarsen+Metis", Values: h.coarsenThroughputs(h.CoarsenModel(level), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Graph-enc-dec", Values: h.coarsenThroughputs(h.CoarsenModel(level), baselines.AsPlacer{Model: coarseEncdec}, ds)},
			},
		}
		h.report(rep)
		h.artifact("fig5_"+s.Name+"_cdf.txt", CDFTable(rep.Rows))
		reports = append(reports, rep)
	}
	return reports
}

// Fig6 reproduces the generalizability study: models trained on smaller
// graphs evaluated on larger ones, plus the curriculum ablation.
func (h *Harness) Fig6() []*Report {
	var reports []*Report

	// (a) train medium → evaluate large, all methods.
	{
		ds := h.Dataset(gen.Large())
		rep := &Report{
			Title: "Fig.6(a) train 100-200 -> eval 400-500",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Graph-enc-dec (medium)", Values: h.baselineThroughputs(h.Baseline("graph-enc-dec", gen.Medium()), ds)},
				{Name: "GDP (medium)", Values: h.baselineThroughputs(h.Baseline("gdp", gen.Medium()), ds)},
				{Name: "Hierarchical (medium)", Values: h.baselineThroughputs(h.Baseline("hierarchical", gen.Medium()), ds)},
				{Name: "Coarsen+Metis (direct)", Values: h.coarsenThroughputs(h.CoarsenModel("medium"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Metis (+finetune)", Values: h.coarsenThroughputs(h.CoarsenModel("large"), placer.Metis{Seed: h.Seed}, ds)},
			},
		}
		h.report(rep)
		h.artifact("fig6a_cdf.txt", CDFTable(rep.Rows))
		reports = append(reports, rep)
	}
	// (b) curriculum ablation on large graphs.
	{
		ds := h.Dataset(gen.Large())
		rep := &Report{
			Title: "Fig.6(b) curriculum ablation on 400-500 nodes",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen-Fromscratch", Values: h.coarsenThroughputs(h.CoarsenModel("large-scratch"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen-Fromscratch+Metis-sample", Values: h.coarsenThroughputs(h.CoarsenModel("large-scratch-guided"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen (+size curriculum)", Values: h.coarsenThroughputs(h.CoarsenModel("large"), placer.Metis{Seed: h.Seed}, ds)},
			},
		}
		h.report(rep)
		h.artifact("fig6b_cdf.txt", CDFTable(rep.Rows))
		reports = append(reports, rep)
	}
	// (c) train large → evaluate xlarge.
	{
		ds := h.Dataset(gen.XLarge())
		rep := &Report{
			Title: "Fig.6(c) train 400-500 -> eval 1K-2K on 20 devices",
			MaxX:  10_000,
			Rows: []Series{
				{Name: "Metis", Values: h.metisThroughputs(ds)},
				{Name: "Coarsen+Metis (direct)", Values: h.coarsenThroughputs(h.CoarsenModel("large"), placer.Metis{Seed: h.Seed}, ds)},
				{Name: "Coarsen+Metis (+finetune)", Values: h.coarsenThroughputs(h.CoarsenModel("xlarge"), placer.Metis{Seed: h.Seed}, ds)},
			},
		}
		h.report(rep)
		h.artifact("fig6c_cdf.txt", CDFTable(rep.Rows))
		reports = append(reports, rep)
	}
	return reports
}

// Fig7Result bundles the excess-device experiment outputs.
type Fig7Result struct {
	CDF *Report
	// UsedDevices histograms per method (device count → #graphs).
	UsedDevices map[string]map[int]int
	// Utilization statistics per method.
	Utilization map[string]sim.UtilizationStats
}

// Fig7 reproduces the excess-device study: CDFs, used-device histograms,
// and utilization statistics.
func (h *Harness) Fig7() *Fig7Result {
	ds := h.Dataset(gen.Excess())
	res := &Fig7Result{
		UsedDevices: make(map[string]map[int]int),
		Utilization: make(map[string]sim.UtilizationStats),
	}

	collect := func(name string, place func(g *stream.Graph) *stream.Placement) []float64 {
		used := make([]int, len(ds.Test))
		ths := make([]float64, len(ds.Test))
		cpu := make([]float64, 0, len(ds.Test))
		net := make([]float64, 0, len(ds.Test))
		for i, g := range ds.Test {
			p := place(g)
			r, err := sim.Simulate(g, p, ds.Cluster)
			if err != nil {
				panic(err)
			}
			ths[i] = r.Throughput
			used[i] = p.UsedDevices()
			st := sim.Utilization(r)
			cpu = append(cpu, st.CPUMean)
			net = append(net, st.NetMean)
		}
		res.UsedDevices[name] = IntHistogram(used, 0, ds.Cluster.Devices)
		res.Utilization[name] = sim.UtilizationStats{
			CPUMean: Mean(cpu), CPUStd: Std(cpu),
			NetMean: Mean(net), NetStd: Std(net),
		}
		return ths
	}

	directPipe := &core.Pipeline{Model: h.CoarsenModel("medium"), Placer: placer.Metis{Seed: h.Seed}}
	tunedPipe := &core.Pipeline{Model: h.CoarsenModel("excess"), Placer: placer.Metis{Seed: h.Seed}}

	res.CDF = &Report{
		Title: "Fig.7(a) excess-device setting (400-500 nodes, reduced load & bandwidth)",
		MaxX:  10_000,
		Rows: []Series{
			{Name: "Metis", Values: collect("Metis", func(g *stream.Graph) *stream.Placement {
				p := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: h.Seed})
				p.Devices = ds.Cluster.Devices
				return p
			})},
			{Name: "Metis-Oracle", Values: collect("Metis-Oracle", func(g *stream.Graph) *stream.Placement {
				p, _ := metis.Oracle(g, ds.Cluster, h.Seed)
				return p
			})},
			{Name: "Coarsen+Metis (direct)", Values: collect("Coarsen+Metis (direct)", func(g *stream.Graph) *stream.Placement {
				return directPipe.Allocate(g, ds.Cluster).Placement
			})},
			{Name: "Coarsen+Metis (+finetune)", Values: collect("Coarsen+Metis (+finetune)", func(g *stream.Graph) *stream.Placement {
				return tunedPipe.Allocate(g, ds.Cluster).Placement
			})},
		},
	}
	h.report(res.CDF)
	h.printf("Fig.7(b) used-device histograms:\n")
	for _, name := range []string{"Metis", "Metis-Oracle", "Coarsen+Metis (direct)", "Coarsen+Metis (+finetune)"} {
		h.printf("  %-26s %v\n", name, res.UsedDevices[name])
		st := res.Utilization[name]
		h.printf("  %-26s cpu %.2f (%.2f), net %.2f (%.2f)\n", "", st.CPUMean, st.CPUStd, st.NetMean, st.NetStd)
	}
	h.printf("\n")
	h.artifact("fig7_cdf.txt", CDFTable(res.CDF.Rows))
	return res
}

// Fig8Row is one compression-ratio bin of the Fig. 8 boxplots.
type Fig8Row struct {
	RatioLo, RatioHi float64
	Metis            BoxStats
	Coarsen          BoxStats
}

// Fig8 reproduces the throughput-vs-compression-ratio boxplots on the
// large setting. Bin edges are compression-ratio quartiles so each bin
// holds the same number of graphs.
func (h *Harness) Fig8() []Fig8Row {
	ds := h.Dataset(gen.Large())
	pipe := &core.Pipeline{Model: h.CoarsenModel("large"), Placer: placer.Metis{Seed: h.Seed}}
	type ratioObs struct {
		ratio          float64
		metis, coarsen float64
	}
	observations := parallel.Map(len(ds.Test), 0, func(i int) ratioObs {
		g := ds.Test[i]
		mp := metis.Partition(g, metis.Options{Parts: ds.Cluster.Devices, Seed: h.Seed})
		mp.Devices = ds.Cluster.Devices
		a := pipe.Allocate(g, ds.Cluster)
		return ratioObs{
			ratio:   a.Coarse.CompressionRatio(),
			metis:   sim.Reward(g, mp, ds.Cluster) * g.SourceRate,
			coarsen: sim.Reward(g, a.Placement, ds.Cluster) * g.SourceRate,
		}
	})
	ratios := make([]float64, len(observations))
	for i, o := range observations {
		ratios[i] = o.ratio
	}
	edges := []float64{
		Quantile(ratios, 0), Quantile(ratios, 0.25), Quantile(ratios, 0.5),
		Quantile(ratios, 0.75), Quantile(ratios, 1) + 1e-9,
	}
	var rows []Fig8Row
	h.printf("== Fig.8 throughput vs compression ratio (400-500 nodes) ==\n")
	for b := 0; b+1 < len(edges); b++ {
		var ms, cs []float64
		for _, o := range observations {
			if o.ratio >= edges[b] && o.ratio < edges[b+1] {
				ms = append(ms, o.metis)
				cs = append(cs, o.coarsen)
			}
		}
		row := Fig8Row{RatioLo: edges[b], RatioHi: edges[b+1], Metis: Box(ms), Coarsen: Box(cs)}
		rows = append(rows, row)
		h.printf("  ratio [%.1fx, %.1fx): metis med %.0f, coarsen med %.0f (n=%d)\n",
			row.RatioLo, row.RatioHi, row.Metis.Median, row.Coarsen.Median, row.Metis.N)
	}
	h.printf("\n")
	return rows
}

// Fig9Result holds the saturation distributions of coarsened graphs.
type Fig9Result struct {
	MetisSat   []float64
	CoarsenSat []float64
}

// Fig9 compares the data-saturation-rate distribution of edges in graphs
// coarsened by Metis's heavy-edge matching vs the learned model, at
// matched coarse sizes.
func (h *Harness) Fig9() *Fig9Result {
	ds := h.Dataset(gen.Large())
	pipe := &core.Pipeline{Model: h.CoarsenModel("large"), Placer: placer.Metis{Seed: h.Seed}}
	res := &Fig9Result{}
	for _, g := range ds.Test {
		a := pipe.Allocate(g, ds.Cluster)
		res.CoarsenSat = append(res.CoarsenSat, sim.EdgeSaturation(a.CoarseGraph, ds.Cluster)...)
		cm := metis.CoarsenHEM(g, a.Coarse.NumSuper, h.Seed)
		mg := stream.CoarseGraph(g, cm)
		res.MetisSat = append(res.MetisSat, sim.EdgeSaturation(mg, ds.Cluster)...)
	}
	h.printf("== Fig.9 saturation of coarsened-graph edges (lower = better) ==\n")
	h.printf("  metis-coarsening:  mean %.3f  p50 %.3f  p90 %.3f (n=%d)\n",
		Mean(res.MetisSat), Quantile(res.MetisSat, 0.5), Quantile(res.MetisSat, 0.9), len(res.MetisSat))
	h.printf("  model-coarsening:  mean %.3f  p50 %.3f  p90 %.3f (n=%d)\n\n",
		Mean(res.CoarsenSat), Quantile(res.CoarsenSat, 0.5), Quantile(res.CoarsenSat, 0.9), len(res.CoarsenSat))
	return res
}

// Table2 reproduces the ablation study on the 5K/s, 5-device, 100-200-node
// setting.
func (h *Harness) Table2() *Report {
	s := gen.Medium5K()
	ds := h.Dataset(s)
	encdec := h.Baseline("graph-enc-dec", s)
	coarseEncdec := h.CoarsePlacerEncDec("medium5k", s)

	trainAblation := func(cfg core.Config) *core.Model {
		cfg.Seed = h.Seed
		m := core.New(cfg)
		pipe := &core.Pipeline{Model: m, Placer: placer.Metis{Seed: h.Seed}}
		tr := rl.NewTrainer(h.rlConfig(h.Budget.Pretrain, h.Budget.RL), m, pipe)
		tr.TrainOn(ds.Train, ds.Cluster)
		return m
	}
	noEnc := core.DefaultConfig()
	noEnc.UseEdgeEncoding = false
	noCol := core.DefaultConfig()
	noCol.UseEdgeCollapse = false

	best := h.CoarsenModel("medium5k")
	coarsenOnly := parallel.Map(len(ds.Test), 0, func(i int) float64 {
		g := ds.Test[i]
		a := best.CoarsenOnly(g, ds.Cluster)
		return sim.Reward(g, a.Placement, ds.Cluster) * g.SourceRate
	})

	rep := &Report{
		Title: "Table II ablations (5K/s, 5 devices, 100-200 nodes)",
		MaxX:  5_000,
		Rows: []Series{
			{Name: "Metis", Values: h.metisThroughputs(ds)},
			{Name: "Our best model (Coarsen+Metis)", Values: h.coarsenThroughputs(best, placer.Metis{Seed: h.Seed}, ds)},
			{Name: "w/o edge-encoding", Values: h.coarsenThroughputs(trainAblation(noEnc), placer.Metis{Seed: h.Seed}, ds)},
			{Name: "w/o edge-collapsing features", Values: h.coarsenThroughputs(trainAblation(noCol), placer.Metis{Seed: h.Seed}, ds)},
			{Name: "Coarsen+Graph-enc-dec", Values: h.coarsenThroughputs(best, baselines.AsPlacer{Model: coarseEncdec}, ds)},
			{Name: "Coarsen-only", Values: coarsenOnly},
			{Name: "Graph-enc-dec", Values: h.baselineThroughputs(encdec, ds)},
		},
	}
	h.report(rep)
	h.artifact("table2.txt", rep.String())
	return rep
}

// Table3Row is one method's average inference time per graph.
type Table3Row struct {
	Method            string
	MediumMS, LargeMS float64
}

// Table3 measures average inference time per graph on the medium and
// large settings (CPU here; the paper used an RTX 2060).
func (h *Harness) Table3() []Table3Row {
	mediumDS := h.Dataset(gen.Medium())
	largeDS := h.Dataset(gen.Large())
	coarsenM := h.CoarsenModel("medium")
	encdec := h.Baseline("graph-enc-dec", gen.Medium())
	gdp := h.Baseline("gdp", gen.Medium())
	hier := h.Baseline("hierarchical", gen.Medium())

	timeIt := func(ds *gen.Dataset, run func(g *stream.Graph)) float64 {
		n := len(ds.Test)
		if n > 10 {
			n = 10
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			run(ds.Test[i])
		}
		return float64(time.Since(start).Milliseconds()) / float64(n)
	}

	pipe := &core.Pipeline{Model: coarsenM, Placer: placer.Metis{Seed: h.Seed}}
	rows := []Table3Row{
		{Method: "Coarsen+Metis",
			MediumMS: timeIt(mediumDS, func(g *stream.Graph) { pipe.Allocate(g, mediumDS.Cluster) }),
			LargeMS:  timeIt(largeDS, func(g *stream.Graph) { pipe.Allocate(g, largeDS.Cluster) })},
		{Method: "Metis",
			MediumMS: timeIt(mediumDS, func(g *stream.Graph) {
				metis.Partition(g, metis.Options{Parts: mediumDS.Cluster.Devices, Seed: h.Seed})
			}),
			LargeMS: timeIt(largeDS, func(g *stream.Graph) { metis.Partition(g, metis.Options{Parts: largeDS.Cluster.Devices, Seed: h.Seed}) })},
		{Method: "Hierarchical",
			MediumMS: timeIt(mediumDS, func(g *stream.Graph) { hier.Place(g, mediumDS.Cluster) }),
			LargeMS:  timeIt(largeDS, func(g *stream.Graph) { hier.Place(g, largeDS.Cluster) })},
		{Method: "GDP",
			MediumMS: timeIt(mediumDS, func(g *stream.Graph) { gdp.Place(g, mediumDS.Cluster) }),
			LargeMS:  timeIt(largeDS, func(g *stream.Graph) { gdp.Place(g, largeDS.Cluster) })},
		{Method: "Graph-enc-dec",
			MediumMS: timeIt(mediumDS, func(g *stream.Graph) { encdec.Place(g, mediumDS.Cluster) }),
			LargeMS:  timeIt(largeDS, func(g *stream.Graph) { encdec.Place(g, largeDS.Cluster) })},
	}
	h.printf("== Table III average inference time per graph (ms, CPU) ==\n")
	for _, r := range rows {
		h.printf("  %-16s medium %8.2f ms   large %8.2f ms\n", r.Method, r.MediumMS, r.LargeMS)
	}
	h.printf("\n")
	return rows
}

// Fig3 writes the qualitative example: one medium graph coarsened by
// Metis's heavy-edge matching vs the learned model, as DOT files, with
// resulting throughputs.
func (h *Harness) Fig3() (metisThroughput, coarsenThroughput float64) {
	ds := h.Dataset(gen.Medium5K())
	pipe := &core.Pipeline{Model: h.CoarsenModel("medium5k"), Placer: placer.Metis{Seed: h.Seed}}
	// Pick the test graph with the largest model-vs-Metis-coarsening gap,
	// as the paper's Fig. 3 illustrates a case where the model's global
	// view wins decisively.
	var g *stream.Graph
	var a core.Allocation
	var metisPl *stream.Placement
	bestGap := mathInf()
	for _, cand := range ds.Test {
		ca := pipe.Allocate(cand, ds.Cluster)
		cm := metis.CoarsenHEM(cand, ca.Coarse.NumSuper, h.Seed)
		mg := stream.CoarseGraph(cand, cm)
		mp := placer.Metis{Seed: h.Seed}.Place(mg, ds.Cluster)
		mpl := stream.ExpandPlacement(cm, mp)
		gap := sim.Reward(cand, mpl, ds.Cluster) - sim.Reward(cand, ca.Placement, ds.Cluster)
		if gap < bestGap {
			bestGap, g, a, metisPl = gap, cand, ca, mpl
		}
	}

	metisThroughput = sim.Reward(g, metisPl, ds.Cluster) * g.SourceRate
	coarsenThroughput = sim.Reward(g, a.Placement, ds.Cluster) * g.SourceRate
	h.printf("== Fig.3 qualitative example ==\n")
	h.printf("  metis-coarsening throughput:  %.0f/s\n", metisThroughput)
	h.printf("  model-coarsening throughput:  %.0f/s\n\n", coarsenThroughput)
	h.artifact("fig3_metis.dot", g.DOT(metisPl))
	h.artifact("fig3_model.dot", g.DOT(a.Placement))
	return metisThroughput, coarsenThroughput
}

func mathInf() float64 { return 1e30 }

// Run dispatches experiments by id ("fig1", "table1", ..., or "all").
func (h *Harness) Run(ids ...string) error {
	return h.RunCtx(context.Background(), ids...)
}

// RunCtx is Run with cancellation: the context is checked between
// experiments, so an interrupted sweep stops after the experiment in
// flight instead of running the rest of the suite.
func (h *Harness) RunCtx(ctx context.Context, ids ...string) error {
	known := map[string]func(){
		"simvalidate":    func() { h.SimValidate() },
		"transferapps":   func() { h.TransferApps() },
		"robustness":     func() { h.Robustness() },
		"robustness-sim": func() { h.RobustnessSim() },
		"drift":          func() { h.Drift() },
		"fig1":           func() { h.Fig1() },
		"table1":         func() { h.Table1() },
		"fig5":           func() { h.Fig5() },
		"fig6":           func() { h.Fig6() },
		"fig7":           func() { h.Fig7() },
		"fig8":           func() { h.Fig8() },
		"fig9":           func() { h.Fig9() },
		"table2":         func() { h.Table2() },
		"table3":         func() { h.Table3() },
		"fig3":           func() { h.Fig3() },
	}
	order := []string{"fig1", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "table3", "fig3", "simvalidate", "transferapps", "robustness", "robustness-sim", "drift"}
	if len(ids) == 1 && ids[0] == "all" {
		ids = order
	}
	for _, id := range ids {
		if _, ok := known[id]; !ok {
			keys := make([]string, 0, len(known))
			for k := range known {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return fmt.Errorf("eval: unknown experiment %q (known: %v)", id, keys)
		}
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("eval: experiment sweep interrupted before %q: %w", id, err)
		}
		known[id]()
	}
	return nil
}
