package eval

import (
	"context"
	"strings"
	"testing"
)

func TestRobustnessDegradesWithCrashes(t *testing.T) {
	h := tinyHarness(t)
	res := h.Robustness()
	if len(res.Crashes) != len(res.Relative) || len(res.Crashes) != len(res.Degradation) {
		t.Fatalf("ragged result: %+v", res)
	}
	if res.Crashes[0] != 0 {
		t.Fatalf("first column must be the fault-free baseline, got %d crashes", res.Crashes[0])
	}
	if res.Relative[0] <= 0 {
		t.Fatalf("fault-free baseline must make progress, got %v", res.Relative[0])
	}
	if res.Degradation[0] != 1 {
		t.Fatalf("baseline degradation must be 1, got %v", res.Degradation[0])
	}
	// Crashes cost throughput: the most-faulted column must retain less
	// than the fault-free one (generous slack for wall-clock noise).
	last := len(res.Degradation) - 1
	if res.Degradation[last] > 0.95 {
		t.Errorf("3 crash windows should cost throughput: retained %v (%v)", res.Degradation[last], res.Degradation)
	}
}

func TestRunCtxStopsBetweenExperiments(t *testing.T) {
	h := tinyHarness(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := h.RunCtx(ctx, "robustness")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("cancelled sweep must report interruption, got %v", err)
	}
}

func TestRunKnowsRobustness(t *testing.T) {
	h := tinyHarness(t)
	if err := h.Run("robustness"); err != nil {
		t.Fatal(err)
	}
}
