// Package eval provides the paper's evaluation statistics — throughput
// CDFs, their Area-Under-Curve summary (smaller is better), quantile/
// boxplot summaries, and histograms — plus the experiment harness that
// regenerates every table and figure of the evaluation section
// (experiments.go).
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labelled set of per-graph throughputs (tuples/second).
type Series struct {
	Name   string
	Values []float64
}

// CDF returns the empirical distribution as sorted x-values and their
// cumulative probabilities.
func CDF(values []float64) (xs, ys []float64) {
	xs = append([]float64(nil), values...)
	sort.Float64s(xs)
	n := float64(len(xs))
	ys = make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / n
	}
	return xs, ys
}

// AUC computes the area under the empirical CDF over [0, maxX]. With all
// values in [0, maxX], this equals maxX − mean(values): a method whose
// throughputs are higher (CDF skewed right) scores a smaller AUC, matching
// the paper's metric.
func AUC(values []float64, maxX float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, v := range values {
		if v > maxX {
			v = maxX
		}
		if v < 0 {
			v = 0
		}
		mean += v
	}
	mean /= float64(len(values))
	return maxX - mean
}

// Improvement returns the paper's "Imp. wrt Metis": the relative AUC
// reduction of a method versus the reference (positive = better).
func Improvement(ref, method float64) float64 {
	if ref == 0 {
		return 0
	}
	return (ref - method) / ref
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Std returns the population standard deviation.
func Std(values []float64) float64 {
	m := Mean(values)
	var v float64
	for _, x := range values {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(values)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// BoxStats is a five-number summary for the Fig. 8 boxplots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Box computes the five-number summary.
func Box(values []float64) BoxStats {
	return BoxStats{
		Min:    Quantile(values, 0),
		Q1:     Quantile(values, 0.25),
		Median: Quantile(values, 0.5),
		Q3:     Quantile(values, 0.75),
		Max:    Quantile(values, 1),
		N:      len(values),
	}
}

// Histogram counts values into equal-width bins over [lo, hi].
func Histogram(values []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// IntHistogram counts integer values (e.g., used-device counts) into
// per-value buckets over [lo, hi].
func IntHistogram(values []int, lo, hi int) map[int]int {
	out := make(map[int]int)
	for _, v := range values {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out[v]++
	}
	return out
}

// Report formats a comparison of series: AUC, mean throughput, and
// improvement relative to the first (reference) series.
type Report struct {
	Title string
	MaxX  float64 // x-axis upper bound (the source tuple rate)
	Rows  []Series
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (AUC over [0, %.0f]; smaller is better) ==\n", r.Title, r.MaxX)
	if len(r.Rows) == 0 {
		return b.String()
	}
	ref := AUC(r.Rows[0].Values, r.MaxX)
	fmt.Fprintf(&b, "%-34s %10s %12s %8s\n", "method", "AUC", "mean-thr", "imp.")
	for i, s := range r.Rows {
		auc := AUC(s.Values, r.MaxX)
		imp := ""
		if i > 0 {
			imp = fmt.Sprintf("%+.0f%%", 100*Improvement(ref, auc))
		}
		fmt.Fprintf(&b, "%-34s %10.0f %12.0f %8s\n", s.Name, auc, Mean(s.Values), imp)
	}
	return b.String()
}

// CDFTable renders per-series CDF points in a plot-friendly text format
// (one "x y" pair per line, series separated by headers).
func CDFTable(rows []Series) string {
	var b strings.Builder
	for _, s := range rows {
		fmt.Fprintf(&b, "# series: %s\n", s.Name)
		xs, ys := CDF(s.Values)
		for i := range xs {
			fmt.Fprintf(&b, "%.1f %.4f\n", xs[i], ys[i])
		}
	}
	return b.String()
}
