package eval

import (
	"fmt"
	"strings"
)

// ASCIIPlot renders the report's CDF curves as a terminal plot — the
// paper's figures are CDF plots, and this lets `cmd/experiments` show
// their shape without any plotting dependency. Each series is drawn with
// its own glyph; x is throughput over [0, MaxX], y is cumulative
// probability.
func (r *Report) ASCIIPlot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	for si, s := range r.Rows {
		if len(s.Values) == 0 {
			continue
		}
		xs, ys := CDF(s.Values)
		g := glyphs[si%len(glyphs)]
		for i := range xs {
			x := xs[i] / r.MaxX
			if x > 1 {
				x = 1
			}
			col := int(x * float64(width-1))
			row := height - 1 - int(ys[i]*float64(height-1))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	for i, row := range grid {
		y := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", y, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      0%s%.0f\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.0f", r.MaxX))-1), r.MaxX)
	for si, s := range r.Rows {
		fmt.Fprintf(&b, "      %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
