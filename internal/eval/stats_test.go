package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFSortedAndNormalized(t *testing.T) {
	xs, ys := CDF([]float64{3, 1, 2})
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("xs = %v", xs)
	}
	if ys[2] != 1 {
		t.Fatalf("ys = %v", ys)
	}
	if math.Abs(ys[0]-1.0/3) > 1e-12 {
		t.Fatalf("ys[0] = %g", ys[0])
	}
}

func TestAUCEqualsMaxMinusMean(t *testing.T) {
	vals := []float64{2000, 4000, 6000}
	got := AUC(vals, 10_000)
	want := 10_000 - 4000.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AUC = %g, want %g", got, want)
	}
}

func TestAUCClipsOutOfRange(t *testing.T) {
	got := AUC([]float64{-5, 20_000}, 10_000)
	want := 10_000 - (0+10_000)/2.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AUC = %g, want %g", got, want)
	}
}

func TestAUCEmptyNaN(t *testing.T) {
	if !math.IsNaN(AUC(nil, 10)) {
		t.Fatal("empty AUC should be NaN")
	}
}

func TestImprovementSign(t *testing.T) {
	// Method with smaller AUC improves (positive).
	if Improvement(2000, 1000) != 0.5 {
		t.Fatal("improvement wrong")
	}
	if Improvement(1000, 2000) != -1 {
		t.Fatal("regression wrong")
	}
	if Improvement(0, 5) != 0 {
		t.Fatal("zero reference")
	}
}

func TestPaperTableIConsistency(t *testing.T) {
	// The paper's Table I: Metis AUC 1973, Coarsen+Metis 1082 → 45%.
	imp := Improvement(1973, 1082)
	if math.Abs(imp-0.45) > 0.005 {
		t.Fatalf("paper improvement arithmetic mismatch: %g", imp)
	}
}

func TestMeanStd(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(vals) != 5 {
		t.Fatal("mean")
	}
	if math.Abs(Std(vals)-2) > 1e-12 {
		t.Fatalf("std = %g", Std(vals))
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 {
		t.Fatal("extremes")
	}
	if Quantile(vals, 0.5) != 3 {
		t.Fatal("median")
	}
	if Quantile(vals, 0.25) != 2 {
		t.Fatal("q1")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile")
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 100})
	if b.Min != 1 || b.Max != 100 || b.Median != 3 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
}

func TestHistogramBins(t *testing.T) {
	h := Histogram([]float64{0.1, 0.5, 0.9, 1.5, -2}, 0, 1, 2)
	// 0.1 and clamped -2 land in bin 0; 0.5, 0.9, and clamped 1.5 in bin 1.
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("hist = %v", h)
	}
}

func TestIntHistogram(t *testing.T) {
	h := IntHistogram([]int{1, 1, 3, 99}, 0, 10)
	if h[1] != 2 || h[3] != 1 || h[10] != 1 {
		t.Fatalf("hist = %v", h)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		Title: "test",
		MaxX:  1000,
		Rows: []Series{
			{Name: "ref", Values: []float64{500}},
			{Name: "better", Values: []float64{750}},
		},
	}
	s := r.String()
	if !strings.Contains(s, "ref") || !strings.Contains(s, "better") {
		t.Fatalf("report: %s", s)
	}
	if !strings.Contains(s, "+50%") {
		t.Fatalf("expected +50%% improvement, got: %s", s)
	}
}

func TestCDFTableFormat(t *testing.T) {
	out := CDFTable([]Series{{Name: "a", Values: []float64{1, 2}}})
	if !strings.Contains(out, "# series: a") || !strings.Contains(out, "2.0 1.0000") {
		t.Fatalf("cdf table:\n%s", out)
	}
}

// Property: AUC is monotone — uniformly higher throughputs give smaller AUC.
func TestQuickAUCMonotone(t *testing.T) {
	f := func(seed uint16) bool {
		vals := []float64{float64(seed%1000) + 100, float64(seed%777) + 50}
		shifted := []float64{vals[0] + 10, vals[1] + 10}
		return AUC(shifted, 10_000) < AUC(vals, 10_000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
