package eval

import (
	"reflect"
	stdruntime "runtime"
	"testing"
)

func TestDriftReactiveRecoversCheaperThanFull(t *testing.T) {
	h := tinyHarness(t)
	res := h.Drift()

	// The headline claims of the drift experiment: the reactive loop wins
	// back a meaningful share of what the static placement loses, and it
	// does so strictly cheaper than re-coarsening from scratch.
	if res.RecoveryFrac < 0.25 {
		t.Errorf("reactive recovers %.2f of static's lost throughput, want >= 0.25", res.RecoveryFrac)
	}
	if res.Reactive.MeanRelative <= res.Static.MeanRelative {
		t.Errorf("reactive mean %.3f must beat static %.3f under drift",
			res.Reactive.MeanRelative, res.Static.MeanRelative)
	}
	if res.Reactive.MoveCost >= res.Full.MoveCost {
		t.Errorf("reactive move cost %.1f must be strictly below full re-coarsen %.1f",
			res.Reactive.MoveCost, res.Full.MoveCost)
	}
	if res.Static.MoveCost != 0 || res.Static.Migrations != 0 {
		t.Errorf("static strategy must never migrate: %+v", res.Static)
	}
	if res.Reactive.Replans == 0 {
		t.Error("scenarios are guaranteed to drift; the reactive loop must replan at least once")
	}
	for name, curves := range res.Curves {
		if len(curves) == 0 {
			t.Fatalf("no curves for %s", name)
		}
		for g, c := range curves {
			if len(c) != driftTicks {
				t.Errorf("%s scenario %d has %d ticks, want %d", name, g, len(c), driftTicks)
			}
		}
	}
}

// TestDriftTrajectoryDeterministic pins the acceptance bar that the whole
// recovery trajectory — not just the summary means — is bit-identical
// across seeded runs and across worker counts. Each run uses a fresh
// harness so nothing is served from a cache.
func TestDriftTrajectoryDeterministic(t *testing.T) {
	run := func(procs int) *DriftResult {
		old := stdruntime.GOMAXPROCS(procs)
		defer stdruntime.GOMAXPROCS(old)
		h := tinyHarness(t)
		h.Seed = 3
		return h.Drift()
	}
	serial := run(1)
	wide := run(stdruntime.NumCPU())
	repeat := run(stdruntime.NumCPU())
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("drift result differs between GOMAXPROCS 1 and %d:\n%+v\n%+v",
			stdruntime.NumCPU(), serial, wide)
	}
	if !reflect.DeepEqual(wide, repeat) {
		t.Errorf("drift result differs across identical seeded runs:\n%+v\n%+v", wide, repeat)
	}
}

func TestRobustnessSimMatchesWallClockShape(t *testing.T) {
	h := tinyHarness(t)
	res := h.RobustnessSim()
	if len(res.Crashes) != len(res.Relative) || len(res.Crashes) != len(res.Degradation) {
		t.Fatalf("ragged result: %+v", res)
	}
	if res.Crashes[0] != 0 || res.Degradation[0] != 1 {
		t.Fatalf("first column must be the fault-free baseline: %+v", res)
	}
	if res.Relative[0] <= 0 {
		t.Fatalf("fault-free baseline must make progress, got %v", res.Relative[0])
	}
	// Crash windows strand operators in the fluid model, so the curve is
	// monotone non-increasing — no wall-clock slack needed here.
	for i := 1; i < len(res.Degradation); i++ {
		if res.Degradation[i] > res.Degradation[i-1]+1e-12 {
			t.Errorf("degradation must not improve with more crashes: %v", res.Degradation)
		}
	}
	if res.MeasuredCrashes[len(res.MeasuredCrashes)-1] == 0 {
		t.Error("the 3-crash column must observe crashes")
	}
}

// TestRobustnessSimDeterministicAcrossWorkers is the satellite check:
// measured fault counts and throughput curves are identical for the same
// seed regardless of GOMAXPROCS.
func TestRobustnessSimDeterministicAcrossWorkers(t *testing.T) {
	run := func(procs int) *RobustnessResult {
		old := stdruntime.GOMAXPROCS(procs)
		defer stdruntime.GOMAXPROCS(old)
		h := tinyHarness(t)
		h.Seed = 7
		return h.RobustnessSim()
	}
	serial := run(1)
	wide := run(stdruntime.NumCPU())
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("robustness-sim differs between GOMAXPROCS 1 and %d:\n%+v\n%+v",
			stdruntime.NumCPU(), serial, wide)
	}
}

func TestRunKnowsDriftExperiments(t *testing.T) {
	h := tinyHarness(t)
	if err := h.Run("robustness-sim"); err != nil {
		t.Fatal(err)
	}
	if err := h.Run("drift"); err != nil {
		t.Fatal(err)
	}
}
