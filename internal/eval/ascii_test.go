package eval

import (
	"strings"
	"testing"
)

func TestASCIIPlotRendersSeries(t *testing.T) {
	r := &Report{
		Title: "demo",
		MaxX:  100,
		Rows: []Series{
			{Name: "low", Values: []float64{10, 20, 30}},
			{Name: "high", Values: []float64{70, 80, 90}},
		},
	}
	out := r.ASCIIPlot(40, 10)
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* low") || !strings.Contains(out, "o high") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// The low series must have marks in the left half, the high series in
	// the right half.
	lines := strings.Split(out, "\n")
	var starCols, oCols []int
	for _, ln := range lines {
		if i := strings.IndexByte(ln, '|'); i >= 0 && strings.HasSuffix(ln, "|") {
			row := ln[i+1 : len(ln)-1]
			for c := 0; c < len(row); c++ {
				switch row[c] {
				case '*':
					starCols = append(starCols, c)
				case 'o':
					oCols = append(oCols, c)
				}
			}
		}
	}
	if len(starCols) == 0 || len(oCols) == 0 {
		t.Fatalf("no marks:\n%s", out)
	}
	maxStar, minO := 0, 1<<30
	for _, c := range starCols {
		if c > maxStar {
			maxStar = c
		}
	}
	for _, c := range oCols {
		if c < minO {
			minO = c
		}
	}
	if maxStar >= minO {
		t.Fatalf("series not separated: maxStar=%d minO=%d\n%s", maxStar, minO, out)
	}
}

func TestASCIIPlotClampsTinyDimensions(t *testing.T) {
	r := &Report{Title: "t", MaxX: 10, Rows: []Series{{Name: "a", Values: []float64{5}}}}
	out := r.ASCIIPlot(1, 1)
	if len(out) == 0 {
		t.Fatal("empty plot")
	}
}
