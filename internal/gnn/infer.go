// infer.go is the encoder's tape-free forward pass for serving. It mirrors
// Encode kernel-for-kernel — the same fused tensor kernels, the same
// operand order, the same materialized W1ᵀ/W2ᵀ copies — so for identical
// parameter values the returned embeddings are bit-identical to the
// training-path forward pass. Scratch comes from the caller's tensor.Scope
// instead of the tape, so a reused scope performs no steady-state
// allocation.
package gnn

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EncodeInfer computes the N×2M node representations without recording an
// autodiff tape. The returned matrix is owned by sc and is valid until
// sc.Release.
func (e *Encoder) EncodeInfer(sc *tensor.Scope, r nn.ValueReader, f *Features) *tensor.Matrix {
	n := f.Node.Rows
	m := e.M
	f.EnsureCSR()
	h := e.In.InferTanh(sc, r, f.Node) // N×2M, fused affine+tanh

	w1 := r.Value(e.W1)
	w2 := r.Value(e.W2)
	w1T := tensor.TransposeInto(w1, sc.Get(w1.Cols, w1.Rows)) // 2M×M
	w2T := tensor.TransposeInto(w2, sc.Get(w2.Cols, w2.Rows)) // 2M×M

	// Loop-invariant edge-feature projections, as in Encode.
	var efUp, efDown *tensor.Matrix
	if e.UseEdgeFeatures {
		weUp, weDown := r.Value(e.WeUp), r.Value(e.WeDown)
		efUp = tensor.MatMulT2Into(f.Edge, weUp, sc.Get(f.Edge.Rows, weUp.Rows))       // E×M
		efDown = tensor.MatMulT2Into(f.Edge, weDown, sc.Get(f.Edge.Rows, weDown.Rows)) // E×M
	}

	for k := 0; k < e.K; k++ {
		// Upstream messages: transform the head node of each edge (+ edge
		// features), mean-pool at the tail; downstream mirrors it. The
		// whole hop is one fused CSR kernel — per-edge message rows live
		// only in worker-local scratch, so the E×M message matrix never
		// exists on the serving path (per-row arithmetic and per-bucket
		// accumulation order match the tape path bit-for-bit).
		aggIn := tensor.GatherMatMulAddTanhSegMeanCSRInto(h, f.Src, w1T, efUp, f.InOff, f.InEdge, sc.Get(n, m))
		aggOut := tensor.GatherMatMulAddTanhSegMeanCSRInto(h, f.Dst, w1T, efDown, f.OutOff, f.OutEdge, sc.Get(n, m))

		// [own half : aggregated messages] → next half: the fused kernel
		// assembles each concatenated row in scratch, copying the same
		// values the tape path feeds its product kernel.
		nextUp := tensor.ConcatMatMulTanhInto(h, 0, m, aggIn, w2T, sc.Get(n, m))
		nextDown := tensor.ConcatMatMulTanhInto(h, m, 2*m, aggOut, w2T, sc.Get(n, m))
		h = tensor.ConcatColsInto(sc.Get(n, 2*m), nextUp, nextDown)
	}
	return h
}
