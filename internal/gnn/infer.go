// infer.go is the encoder's tape-free forward pass for serving. It mirrors
// Encode kernel-for-kernel — the same fused tensor kernels, the same
// operand order, the same materialized W1ᵀ/W2ᵀ copies — so for identical
// parameter values the returned embeddings are bit-identical to the
// training-path forward pass. Scratch comes from the caller's tensor.Scope
// instead of the tape, so a reused scope performs no steady-state
// allocation.
package gnn

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EncodeInfer computes the N×2M node representations without recording an
// autodiff tape. The returned matrix is owned by sc and is valid until
// sc.Release.
func (e *Encoder) EncodeInfer(sc *tensor.Scope, r nn.ValueReader, f *Features) *tensor.Matrix {
	n := f.Node.Rows
	m := e.M
	h := e.In.InferTanh(sc, r, f.Node) // N×2M, fused affine+tanh

	w1 := r.Value(e.W1)
	w2 := r.Value(e.W2)
	w1T := tensor.TransposeInto(w1, sc.Get(w1.Cols, w1.Rows)) // 2M×M
	w2T := tensor.TransposeInto(w2, sc.Get(w2.Cols, w2.Rows)) // 2M×M

	// Loop-invariant edge-feature projections, as in Encode.
	var efUp, efDown *tensor.Matrix
	if e.UseEdgeFeatures {
		weUp, weDown := r.Value(e.WeUp), r.Value(e.WeDown)
		efUp = tensor.MatMulT2Into(f.Edge, weUp, sc.Get(f.Edge.Rows, weUp.Rows))       // E×M
		efDown = tensor.MatMulT2Into(f.Edge, weDown, sc.Get(f.Edge.Rows, weDown.Rows)) // E×M
	}

	gatherTanh := func(src []int, ef *tensor.Matrix) *tensor.Matrix {
		if len(src) == 0 {
			// Edgeless graph: 0×M result, matching the tape's special case.
			return sc.Get(0, m)
		}
		return tensor.GatherMatMulAddTanhInto(h, src, w1T, ef, sc.Get(len(src), m))
	}

	for k := 0; k < e.K; k++ {
		// Upstream messages: transform the head node of each edge (+ edge
		// features), mean-pool at the tail; downstream mirrors it.
		msgIn := gatherTanh(f.Src, efUp)
		aggIn := tensor.SegmentMeanInto(msgIn, f.Dst, n, sc.Get(n, m))
		msgOut := gatherTanh(f.Dst, efDown)
		aggOut := tensor.SegmentMeanInto(msgOut, f.Src, n, sc.Get(n, m))

		// [own half : aggregated messages] → next half, fused matmul+tanh.
		// The column slices of h are concatenated straight out of h, which
		// copies the same values the tape's SliceCols+ConcatCols pair does.
		catUp := sc.Get(n, 2*m)
		catDown := sc.Get(n, 2*m)
		for i := 0; i < n; i++ {
			hrow := h.Row(i)
			up, down := catUp.Row(i), catDown.Row(i)
			copy(up[:m], hrow[:m])
			copy(up[m:], aggIn.Row(i))
			copy(down[:m], hrow[m:])
			copy(down[m:], aggOut.Row(i))
		}
		nextUp := tensor.MatMulTanhInto(catUp, w2T, sc.Get(n, m))
		nextDown := tensor.MatMulTanhInto(catDown, w2T, sc.Get(n, m))
		h = tensor.ConcatColsInto(sc.Get(n, 2*m), nextUp, nextDown)
	}
	return h
}
