// Package gnn implements the paper's edge-aware directed graph encoder
// (§IV-A). Each node carries two sub-embeddings of size M — an
// upstream-view half updated from in-edges and a downstream-view half
// updated from out-edges — and edge features enter the aggregation through
// dedicated projection matrices. The update is run K times (K=2 in the
// paper) and the final node representation is the concatenation of both
// halves (dimension 2M).
//
// The forward pass is expressed with matrix-level autodiff ops (gather →
// edge transform → segment mean → node update), so a full pass over a
// 2,000-node graph records only a handful of tape entries per iteration.
package gnn

import (
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// NodeFeatureDim is the per-node input feature width produced by
// BuildFeatures: CPU utilization, emitted payload saturation, log degree
// in/out, source flag, sink flag.
const NodeFeatureDim = 6

// EdgeFeatureDim is the per-edge input feature width: data saturation
// rate, saturation relative to the graph mean, and log traffic.
const EdgeFeatureDim = 3

// Features is the tensor form of one stream graph, ready for encoding.
type Features struct {
	Node *tensor.Matrix // N × NodeFeatureDim
	Edge *tensor.Matrix // E × EdgeFeatureDim
	Src  []int          // E: source node of each edge
	Dst  []int          // E: destination node of each edge

	// CSR incidence buckets (node v's in-edges are
	// InEdge[InOff[v]:InOff[v+1]], ascending by edge id; OutOff/OutEdge
	// mirror it for out-edges). BuildFeatures shares them with the graph's
	// Adjacency view; EnsureCSR derives them from Src/Dst for features
	// assembled directly (e.g. the serving layer's block-diagonal stack).
	// The encode paths consume these instead of re-bucketing Src/Dst on
	// every forward pass.
	InOff, OutOff   []int32
	InEdge, OutEdge []int
}

// EnsureCSR builds the incidence buckets from Src/Dst when absent. Not
// safe for concurrent callers on the same Features; build before sharing.
func (f *Features) EnsureCSR() {
	if f.InOff != nil {
		return
	}
	n := f.Node.Rows
	f.InOff, f.InEdge = bucketEdges(f.Dst, n)
	f.OutOff, f.OutEdge = bucketEdges(f.Src, n)
}

// bucketEdges counting-sorts edge positions by endpoint, preserving
// ascending edge order inside each bucket — the same structure (and
// therefore the same accumulation order) stream.Graph.Adjacency produces.
func bucketEdges(key []int, n int) ([]int32, []int) {
	offs := make([]int32, n+1)
	for _, v := range key {
		offs[v+1]++
	}
	for v := 0; v < n; v++ {
		offs[v+1] += offs[v]
	}
	members := make([]int, len(key))
	cursor := append([]int32(nil), offs[:n]...)
	for ei, v := range key {
		members[cursor[v]] = ei
		cursor[v]++
	}
	return offs, members
}

// BuildFeatures extracts normalized node and edge features, using the
// cluster's capacities as the normalization scale (this is what makes the
// same trained model transferable across settings: features are
// utilizations, not raw magnitudes).
func BuildFeatures(g *stream.Graph, c sim.Cluster) *Features {
	n, e := g.NumNodes(), g.NumEdges()
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()
	capI := c.InstructionCapacity()
	adj := g.Adjacency()

	// Emitted payload saturation (total egress traffic if all out-edges
	// were cut) accumulates in a single pass over the edge list: O(N+E),
	// where looping OutEdges(v) inside the node loop was O(N·deg). Edge ids
	// ascend within each node's bucket either way, so the per-node partial
	// sums are bit-identical.
	nf := tensor.New(n, NodeFeatureDim)
	for ei := range g.Edges {
		nf.Data[g.Edges[ei].Src*NodeFeatureDim+1] += traffic[ei]
	}
	for v := 0; v < n; v++ {
		row := nf.Row(v)
		row[0] = load[v] / capI
		row[1] /= c.Bandwidth
		row[2] = math.Log1p(float64(adj.InDegree(v)))
		row[3] = math.Log1p(float64(adj.OutDegree(v)))
		if adj.InDegree(v) == 0 {
			row[4] = 1
		}
		if adj.OutDegree(v) == 0 {
			row[5] = 1
		}
	}

	var meanTr float64
	for _, t := range traffic {
		meanTr += t
	}
	if e > 0 {
		meanTr /= float64(e)
	}
	ef := tensor.New(e, EdgeFeatureDim)
	src := make([]int, e)
	dst := make([]int, e)
	for ei, ed := range g.Edges {
		row := ef.Row(ei)
		row[0] = traffic[ei] / c.Bandwidth
		if meanTr > 0 {
			row[1] = traffic[ei] / meanTr
		}
		row[2] = math.Log1p(traffic[ei] / 1e6)
		src[ei] = ed.Src
		dst[ei] = ed.Dst
	}
	return &Features{
		Node: nf, Edge: ef, Src: src, Dst: dst,
		InOff: adj.InOff, OutOff: adj.OutOff, InEdge: adj.InEdge, OutEdge: adj.OutEdge,
	}
}

// Encoder is the edge-aware GNN.
type Encoder struct {
	// In projects raw node features to the initial 2M embedding.
	In *nn.Linear
	// W1 transforms a neighbor's full 2M embedding into an M-dim message.
	W1 *nn.Param
	// WeUp / WeDown project edge features into the message (separate for
	// the two directions, per §IV-A; W1/W2 are shared).
	WeUp, WeDown *nn.Param
	// W2 maps [own half : aggregated messages] (2M) to the next half (M).
	W2 *nn.Param
	// K is the number of message-passing iterations.
	K int
	// M is the half-embedding width; node representations are 2M wide.
	M int
	// UseEdgeFeatures disables the We terms when false (Table II ablation
	// "w/o edge-encoding").
	UseEdgeFeatures bool
}

// NewEncoder registers encoder parameters on ps.
func NewEncoder(ps *nn.ParamSet, name string, m, k int, rng *rand.Rand) *Encoder {
	return &Encoder{
		In:              nn.NewLinear(ps, name+".in", NodeFeatureDim, 2*m, rng),
		W1:              ps.NewXavier(name+".W1", m, 2*m, rng),
		WeUp:            ps.NewXavier(name+".WeUp", m, EdgeFeatureDim, rng),
		WeDown:          ps.NewXavier(name+".WeDown", m, EdgeFeatureDim, rng),
		W2:              ps.NewXavier(name+".W2", m, 2*m, rng),
		K:               k,
		M:               m,
		UseEdgeFeatures: true,
	}
}

// OutDim returns the node representation width (2M).
func (e *Encoder) OutDim() int { return 2 * e.M }

// Encode records the forward pass and returns the N×2M node
// representations. The graph must have at least one edge.
func (e *Encoder) Encode(b *nn.Binder, f *Features) *autodiff.Node {
	t := b.Tape
	f.EnsureCSR()
	h := e.In.ApplyTanh(b, t.Const(f.Node)) // N×2M, fused affine+tanh

	w1T := t.Transpose(b.Node(e.W1)) // 2M×M
	w2T := t.Transpose(b.Node(e.W2)) // 2M×M

	// The edge-feature projections ef·WeUpᵀ and ef·WeDownᵀ are
	// loop-invariant: compute each once and reuse it as the additive term
	// of the fused message transform in all K iterations.
	var efUp, efDown *autodiff.Node
	if e.UseEdgeFeatures {
		ef := t.Const(f.Edge)
		efUp = t.MatMulT2(ef, b.Node(e.WeUp))     // E×M
		efDown = t.MatMulT2(ef, b.Node(e.WeDown)) // E×M
	}

	for k := 0; k < e.K; k++ {
		// Upstream messages: for edge (u→v), transform u's embedding (+
		// edge features) and mean-pool at v. Gather, product, add and
		// activation run as one fused tape entry — the E×2M gathered
		// neighbor matrix is never materialized — and the mean pools
		// through the graph's CSR in-buckets, so no per-call bucketing or
		// count scratch is allocated.
		msgIn := t.GatherMatMulAddTanhCSR(h, f.Src, w1T, efUp, f.OutOff, f.OutEdge)
		aggIn := t.SegmentMeanCSR(msgIn, f.InOff, f.InEdge)

		// Downstream messages: for edge (u→v), transform v's embedding and
		// mean-pool at u.
		msgOut := t.GatherMatMulAddTanhCSR(h, f.Dst, w1T, efDown, f.InOff, f.InEdge)
		aggOut := t.SegmentMeanCSR(msgOut, f.OutOff, f.OutEdge)

		// [own half : aggregated messages] → next half. The fused op feeds
		// each concatenated row straight to the product kernel, so the
		// sliced halves and concatenated operands never hit the tape.
		nextUp := t.ConcatMatMulTanh(h, 0, e.M, aggIn, w2T)
		nextDown := t.ConcatMatMulTanh(h, e.M, 2*e.M, aggOut, w2T)
		h = t.ConcatCols(nextUp, nextDown)
	}
	return h
}
