// Package gnn implements the paper's edge-aware directed graph encoder
// (§IV-A). Each node carries two sub-embeddings of size M — an
// upstream-view half updated from in-edges and a downstream-view half
// updated from out-edges — and edge features enter the aggregation through
// dedicated projection matrices. The update is run K times (K=2 in the
// paper) and the final node representation is the concatenation of both
// halves (dimension 2M).
//
// The forward pass is expressed with matrix-level autodiff ops (gather →
// edge transform → segment mean → node update), so a full pass over a
// 2,000-node graph records only a handful of tape entries per iteration.
package gnn

import (
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// NodeFeatureDim is the per-node input feature width produced by
// BuildFeatures: CPU utilization, emitted payload saturation, log degree
// in/out, source flag, sink flag.
const NodeFeatureDim = 6

// EdgeFeatureDim is the per-edge input feature width: data saturation
// rate, saturation relative to the graph mean, and log traffic.
const EdgeFeatureDim = 3

// Features is the tensor form of one stream graph, ready for encoding.
type Features struct {
	Node *tensor.Matrix // N × NodeFeatureDim
	Edge *tensor.Matrix // E × EdgeFeatureDim
	Src  []int          // E: source node of each edge
	Dst  []int          // E: destination node of each edge
}

// BuildFeatures extracts normalized node and edge features, using the
// cluster's capacities as the normalization scale (this is what makes the
// same trained model transferable across settings: features are
// utilizations, not raw magnitudes).
func BuildFeatures(g *stream.Graph, c sim.Cluster) *Features {
	n, e := g.NumNodes(), g.NumEdges()
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()
	capI := c.InstructionCapacity()

	nf := tensor.New(n, NodeFeatureDim)
	for v := 0; v < n; v++ {
		row := nf.Row(v)
		row[0] = load[v] / capI
		// Emitted payload saturation: total egress traffic if all
		// out-edges were cut.
		var eg float64
		for _, ei := range g.OutEdges(v) {
			eg += traffic[ei]
		}
		row[1] = eg / c.Bandwidth
		row[2] = math.Log1p(float64(len(g.InEdges(v))))
		row[3] = math.Log1p(float64(len(g.OutEdges(v))))
		if len(g.InEdges(v)) == 0 {
			row[4] = 1
		}
		if len(g.OutEdges(v)) == 0 {
			row[5] = 1
		}
	}

	var meanTr float64
	for _, t := range traffic {
		meanTr += t
	}
	if e > 0 {
		meanTr /= float64(e)
	}
	ef := tensor.New(e, EdgeFeatureDim)
	src := make([]int, e)
	dst := make([]int, e)
	for ei, ed := range g.Edges {
		row := ef.Row(ei)
		row[0] = traffic[ei] / c.Bandwidth
		if meanTr > 0 {
			row[1] = traffic[ei] / meanTr
		}
		row[2] = math.Log1p(traffic[ei] / 1e6)
		src[ei] = ed.Src
		dst[ei] = ed.Dst
	}
	return &Features{Node: nf, Edge: ef, Src: src, Dst: dst}
}

// Encoder is the edge-aware GNN.
type Encoder struct {
	// In projects raw node features to the initial 2M embedding.
	In *nn.Linear
	// W1 transforms a neighbor's full 2M embedding into an M-dim message.
	W1 *nn.Param
	// WeUp / WeDown project edge features into the message (separate for
	// the two directions, per §IV-A; W1/W2 are shared).
	WeUp, WeDown *nn.Param
	// W2 maps [own half : aggregated messages] (2M) to the next half (M).
	W2 *nn.Param
	// K is the number of message-passing iterations.
	K int
	// M is the half-embedding width; node representations are 2M wide.
	M int
	// UseEdgeFeatures disables the We terms when false (Table II ablation
	// "w/o edge-encoding").
	UseEdgeFeatures bool
}

// NewEncoder registers encoder parameters on ps.
func NewEncoder(ps *nn.ParamSet, name string, m, k int, rng *rand.Rand) *Encoder {
	return &Encoder{
		In:              nn.NewLinear(ps, name+".in", NodeFeatureDim, 2*m, rng),
		W1:              ps.NewXavier(name+".W1", m, 2*m, rng),
		WeUp:            ps.NewXavier(name+".WeUp", m, EdgeFeatureDim, rng),
		WeDown:          ps.NewXavier(name+".WeDown", m, EdgeFeatureDim, rng),
		W2:              ps.NewXavier(name+".W2", m, 2*m, rng),
		K:               k,
		M:               m,
		UseEdgeFeatures: true,
	}
}

// OutDim returns the node representation width (2M).
func (e *Encoder) OutDim() int { return 2 * e.M }

// Encode records the forward pass and returns the N×2M node
// representations. The graph must have at least one edge.
func (e *Encoder) Encode(b *nn.Binder, f *Features) *autodiff.Node {
	t := b.Tape
	n := f.Node.Rows
	h := e.In.ApplyTanh(b, t.Const(f.Node)) // N×2M, fused affine+tanh

	w1T := t.Transpose(b.Node(e.W1)) // 2M×M
	w2T := t.Transpose(b.Node(e.W2)) // 2M×M

	// The edge-feature projections ef·WeUpᵀ and ef·WeDownᵀ are
	// loop-invariant: compute each once and reuse it as the additive term
	// of the fused message transform in all K iterations.
	var efUp, efDown *autodiff.Node
	if e.UseEdgeFeatures {
		ef := t.Const(f.Edge)
		efUp = t.MatMulT2(ef, b.Node(e.WeUp))     // E×M
		efDown = t.MatMulT2(ef, b.Node(e.WeDown)) // E×M
	}

	for k := 0; k < e.K; k++ {
		hup := t.SliceCols(h, 0, e.M)
		hdown := t.SliceCols(h, e.M, 2*e.M)

		// Upstream messages: for edge (u→v), transform u's embedding (+
		// edge features) and mean-pool at v. Gather, product, add and
		// activation run as one fused tape entry — the E×2M gathered
		// neighbor matrix is never materialized.
		msgIn := t.GatherMatMulAddTanh(h, f.Src, w1T, efUp)
		aggIn := t.SegmentMean(msgIn, f.Dst, n)

		// Downstream messages: for edge (u→v), transform v's embedding and
		// mean-pool at u.
		msgOut := t.GatherMatMulAddTanh(h, f.Dst, w1T, efDown)
		aggOut := t.SegmentMean(msgOut, f.Src, n)

		nextUp := t.MatMulTanh(t.ConcatCols(hup, aggIn), w2T)
		nextDown := t.MatMulTanh(t.ConcatCols(hdown, aggOut), w2T)
		h = t.ConcatCols(nextUp, nextDown)
	}
	return h
}
