package gnn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// randFeatures builds a random feature set straight from Src/Dst vectors
// (the serving layer does the same for stacked batches), leaving the last
// `isolated` nodes with no incident edges so empty CSR buckets are
// exercised. EnsureCSR derives the incidence buckets.
func randFeatures(rng *rand.Rand, nodes, edges, isolated int) *Features {
	nf := tensor.New(nodes, NodeFeatureDim)
	for i := range nf.Data {
		nf.Data[i] = rng.NormFloat64()
	}
	ef := tensor.New(edges, EdgeFeatureDim)
	for i := range ef.Data {
		ef.Data[i] = rng.NormFloat64()
	}
	src := make([]int, edges)
	dst := make([]int, edges)
	span := nodes - isolated
	for e := 0; e < edges; e++ {
		src[e] = rng.Intn(span)
		dst[e] = rng.Intn(span)
	}
	return &Features{Node: nf, Edge: ef, Src: src, Dst: dst}
}

// preCSREncode is the encode composition this PR replaced: per-call
// bucketing seg-vector ops plus explicit slice/concat tape entries. The
// CSR-native Encode must reproduce its forward bits exactly.
func preCSREncode(b *nn.Binder, e *Encoder, f *Features) *autodiff.Node {
	t := b.Tape
	n := f.Node.Rows
	h := e.In.ApplyTanh(b, t.Const(f.Node))

	w1T := t.Transpose(b.Node(e.W1))
	w2T := t.Transpose(b.Node(e.W2))
	var efUp, efDown *autodiff.Node
	if e.UseEdgeFeatures {
		ef := t.Const(f.Edge)
		efUp = t.MatMulT2(ef, b.Node(e.WeUp))
		efDown = t.MatMulT2(ef, b.Node(e.WeDown))
	}

	for k := 0; k < e.K; k++ {
		hup := t.SliceCols(h, 0, e.M)
		hdown := t.SliceCols(h, e.M, 2*e.M)

		msgIn := t.GatherMatMulAddTanh(h, f.Src, w1T, efUp)
		aggIn := t.SegmentMean(msgIn, f.Dst, n)
		msgOut := t.GatherMatMulAddTanh(h, f.Dst, w1T, efDown)
		aggOut := t.SegmentMean(msgOut, f.Src, n)

		nextUp := t.MatMulTanh(t.ConcatCols(hup, aggIn), w2T)
		nextDown := t.MatMulTanh(t.ConcatCols(hdown, aggOut), w2T)
		h = t.ConcatCols(nextUp, nextDown)
	}
	return h
}

// TestEncodeCSRBitIdenticalToPreCSR pins the CSR-native Encode and
// EncodeInfer against the pre-CSR composition, bit for bit, on randomized
// graphs — including degree-0 nodes (empty buckets), M with a non-multiple-
// of-four concat width (scalar remainder lanes), and a shape large enough
// to cross the kernels' parallel work gate — at GOMAXPROCS 1 and NumCPU.
func TestEncodeCSRBitIdenticalToPreCSR(t *testing.T) {
	shapes := []struct {
		nodes, edges, isolated, m, k int
	}{
		{9, 14, 3, 4, 2},       // tiny, third of the nodes isolated
		{40, 70, 5, 7, 2},      // odd M: remainder columns in every kernel
		{120, 260, 1, 6, 3},    // K=3, single sink-less node
		{700, 3200, 10, 24, 2}, // crosses the parallel work gate
	}
	maxprocs := []int{1, runtime.NumCPU()}
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)

	for si, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(900 + si)))
		f := randFeatures(rng, sh.nodes, sh.edges, sh.isolated)
		ps := nn.NewParamSet()
		enc := NewEncoder(ps, "e", sh.m, sh.k, rand.New(rand.NewSource(int64(40+si))))

		// Reference bits, computed once at GOMAXPROCS=1.
		runtime.GOMAXPROCS(1)
		bref := nn.NewBinder(autodiff.NewTape())
		want := preCSREncode(bref, enc, f).Value.Clone()

		for _, procs := range maxprocs {
			runtime.GOMAXPROCS(procs)

			b := nn.NewBinder(autodiff.NewTape())
			got := enc.Encode(b, f)
			if got.Value.Rows != sh.nodes || got.Value.Cols != 2*sh.m {
				t.Fatalf("shape %d: encode dims %dx%d", si, got.Value.Rows, got.Value.Cols)
			}
			for i := range want.Data {
				if math.Float64bits(got.Value.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("shape %d procs %d: encode[%d] csr %v vs pre-csr %v",
						si, procs, i, got.Value.Data[i], want.Data[i])
				}
			}

			sc := tensor.NewScope()
			inf := enc.EncodeInfer(sc, nn.LiveValues{}, f)
			for i := range want.Data {
				if math.Float64bits(inf.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("shape %d procs %d: infer[%d] csr %v vs pre-csr %v",
						si, procs, i, inf.Data[i], want.Data[i])
				}
			}
			sc.Release()
		}
	}
}
