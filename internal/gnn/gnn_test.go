package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/stream"
)

func testGraph() (*stream.Graph, sim.Cluster) {
	c := sim.DefaultCluster(5, 1000)
	g := stream.NewGraph(1000)
	for i := 0; i < 5; i++ {
		g.AddNode(stream.Node{IPT: 1000 * float64(i+1), Payload: 500})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	g.AddEdge(3, 4, 0)
	return g, c
}

func TestBuildFeaturesShapes(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	if f.Node.Rows != 5 || f.Node.Cols != NodeFeatureDim {
		t.Fatalf("node feats %dx%d", f.Node.Rows, f.Node.Cols)
	}
	if f.Edge.Rows != 5 || f.Edge.Cols != EdgeFeatureDim {
		t.Fatalf("edge feats %dx%d", f.Edge.Rows, f.Edge.Cols)
	}
	if len(f.Src) != 5 || len(f.Dst) != 5 {
		t.Fatal("src/dst lengths")
	}
}

func TestBuildFeaturesSourceSinkFlags(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	if f.Node.At(0, 4) != 1 { // node 0 is the source
		t.Fatal("source flag missing")
	}
	if f.Node.At(4, 5) != 1 { // node 4 is the sink
		t.Fatal("sink flag missing")
	}
	if f.Node.At(1, 4) != 0 || f.Node.At(1, 5) != 0 {
		t.Fatal("interior node flagged")
	}
}

func TestBuildFeaturesNormalization(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	// CPU utilization features must be load/capacity.
	load := g.NodeLoad()
	for v := 0; v < g.NumNodes(); v++ {
		want := load[v] / c.InstructionCapacity()
		if math.Abs(f.Node.At(v, 0)-want) > 1e-12 {
			t.Fatalf("node %d util %g want %g", v, f.Node.At(v, 0), want)
		}
	}
	// Edge saturation features must be traffic/bandwidth.
	tr := g.EdgeTraffic()
	for e := 0; e < g.NumEdges(); e++ {
		want := tr[e] / c.Bandwidth
		if math.Abs(f.Edge.At(e, 0)-want) > 1e-12 {
			t.Fatalf("edge %d sat %g want %g", e, f.Edge.At(e, 0), want)
		}
	}
}

func TestEncodeShapesAndDeterminism(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 8, 2, rand.New(rand.NewSource(1)))
	b1 := nn.NewBinder(autodiff.NewTape())
	h1 := enc.Encode(b1, f)
	if h1.Value.Rows != 5 || h1.Value.Cols != enc.OutDim() {
		t.Fatalf("shape %dx%d want 5x%d", h1.Value.Rows, h1.Value.Cols, enc.OutDim())
	}
	b2 := nn.NewBinder(autodiff.NewTape())
	h2 := enc.Encode(b2, f)
	for i := range h1.Value.Data {
		if h1.Value.Data[i] != h2.Value.Data[i] {
			t.Fatal("encode not deterministic")
		}
	}
}

func TestEncodePropagatesInformation(t *testing.T) {
	// With K=2 hops, changing the source node's feature must change the
	// embedding of a node two hops away.
	g, c := testGraph()
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 8, 2, rand.New(rand.NewSource(2)))

	f1 := BuildFeatures(g, c)
	b1 := nn.NewBinder(autodiff.NewTape())
	h1 := enc.Encode(b1, f1).Value.Row(3) // node 3 is two hops from 0

	g.Nodes[0].IPT *= 10
	f2 := BuildFeatures(g, c)
	b2 := nn.NewBinder(autodiff.NewTape())
	h2 := enc.Encode(b2, f2).Value.Row(3)

	same := true
	for i := range h1 {
		if math.Abs(h1[i]-h2[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two-hop information did not propagate")
	}
}

func TestEncodeEdgeFeatureToggle(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 8, 2, rand.New(rand.NewSource(3)))

	b1 := nn.NewBinder(autodiff.NewTape())
	withEdges := enc.Encode(b1, f).Value.Clone()

	enc.UseEdgeFeatures = false
	b2 := nn.NewBinder(autodiff.NewTape())
	withoutEdges := enc.Encode(b2, f).Value

	diff := false
	for i := range withEdges.Data {
		if math.Abs(withEdges.Data[i]-withoutEdges.Data[i]) > 1e-12 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("edge-feature toggle had no effect")
	}
}

func TestEncodeGradientsReachAllParams(t *testing.T) {
	g, c := testGraph()
	f := BuildFeatures(g, c)
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 6, 2, rand.New(rand.NewSource(4)))
	tape := autodiff.NewTape()
	b := nn.NewBinder(tape)
	h := enc.Encode(b, f)
	tape.Backward(tape.Sum(tape.Tanh(h)), nil)
	b.Collect()
	for _, p := range ps.All() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("parameter %s received no gradient", p.Name)
		}
	}
}

func TestEncodeOnGeneratedGraphs(t *testing.T) {
	c := sim.DefaultCluster(10, 1000)
	cfg := gen.DefaultConfig(50, 80, 10_000, c)
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 8, 2, rand.New(rand.NewSource(5)))
	for seed := int64(0); seed < 3; seed++ {
		g := gen.Generate(cfg, rand.New(rand.NewSource(seed)))
		f := BuildFeatures(g, c)
		b := nn.NewBinder(autodiff.NewTape())
		h := enc.Encode(b, f)
		if h.Value.Rows != g.NumNodes() {
			t.Fatal("row count mismatch")
		}
		for _, v := range h.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite embedding")
			}
		}
	}
}

func TestEncodeOnCoarseGraphWithOverrides(t *testing.T) {
	// Coarse graphs carry demand overrides and may be cyclic; feature
	// building and encoding must work on them (the Coarsen+enc-dec path).
	g, c := testGraph()
	cm := stream.CollapseEdges(g, []bool{true, false, false, true, false})
	cg := stream.CoarseGraph(g, cm)
	f := BuildFeatures(cg, c)
	ps := nn.NewParamSet()
	enc := NewEncoder(ps, "e", 4, 2, rand.New(rand.NewSource(6)))
	b := nn.NewBinder(autodiff.NewTape())
	h := enc.Encode(b, f)
	if h.Value.Rows != cg.NumNodes() {
		t.Fatal("coarse encode shape")
	}
}

// referenceEncode is the pre-fusion encoder composition (separate gather,
// matmul, add, tanh and transpose tape entries). The production Encode must
// match it — values and parameter gradients — to rounding.
func referenceEncode(b *nn.Binder, e *Encoder, f *Features) *autodiff.Node {
	t := b.Tape
	n := f.Node.Rows
	x := t.Const(f.Node)
	h := t.Tanh(t.AddRowVector(t.MatMul(x, t.Transpose(b.Node(e.In.W))), b.Node(e.In.B)))

	w1T := t.Transpose(b.Node(e.W1))
	w2T := t.Transpose(b.Node(e.W2))
	weUpT := t.Transpose(b.Node(e.WeUp))
	weDownT := t.Transpose(b.Node(e.WeDown))
	ef := t.Const(f.Edge)

	for k := 0; k < e.K; k++ {
		hup := t.SliceCols(h, 0, e.M)
		hdown := t.SliceCols(h, e.M, 2*e.M)

		msgIn := t.MatMul(t.GatherRows(h, f.Src), w1T)
		if e.UseEdgeFeatures {
			msgIn = t.Add(msgIn, t.MatMul(ef, weUpT))
		}
		aggIn := t.SegmentMean(t.Tanh(msgIn), f.Dst, n)

		msgOut := t.MatMul(t.GatherRows(h, f.Dst), w1T)
		if e.UseEdgeFeatures {
			msgOut = t.Add(msgOut, t.MatMul(ef, weDownT))
		}
		aggOut := t.SegmentMean(t.Tanh(msgOut), f.Src, n)

		nextUp := t.Tanh(t.MatMul(t.ConcatCols(hup, aggIn), w2T))
		nextDown := t.Tanh(t.MatMul(t.ConcatCols(hdown, aggOut), w2T))
		h = t.ConcatCols(nextUp, nextDown)
	}
	return h
}

func TestEncodeFusedMatchesUnfusedReference(t *testing.T) {
	c := sim.DefaultCluster(10, 1000)
	cfg := gen.DefaultConfig(60, 100, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(7)))
	f := BuildFeatures(g, c)

	for _, useEdges := range []bool{true, false} {
		ps := nn.NewParamSet()
		enc := NewEncoder(ps, "e", 8, 2, rand.New(rand.NewSource(8)))
		enc.UseEdgeFeatures = useEdges

		run := func(fused bool) (map[string][]float64, []float64) {
			ps.ZeroGrads()
			tape := autodiff.NewTape()
			b := nn.NewBinder(tape)
			var h *autodiff.Node
			if fused {
				h = enc.Encode(b, f)
			} else {
				h = referenceEncode(b, enc, f)
			}
			tape.Backward(tape.Sum(h), nil)
			b.Collect()
			grads := make(map[string][]float64)
			for _, p := range ps.All() {
				grads[p.Name] = append([]float64(nil), p.Grad.Data...)
			}
			return grads, append([]float64(nil), h.Value.Data...)
		}
		fg, fv := run(true)
		ug, uv := run(false)

		const tol = 1e-10
		for i := range uv {
			if math.Abs(fv[i]-uv[i]) > tol*(1+math.Abs(uv[i])) {
				t.Fatalf("useEdges=%v: value[%d] fused %g vs reference %g", useEdges, i, fv[i], uv[i])
			}
		}
		for name, want := range ug {
			got := fg[name]
			for i := range want {
				if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
					t.Fatalf("useEdges=%v: grad %s[%d] fused %g vs reference %g", useEdges, name, i, got[i], want[i])
				}
			}
		}
	}
}
