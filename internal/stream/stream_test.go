package stream

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a linear graph src → a → b → ... with n nodes.
func chain(n int, rate float64) *Graph {
	g := NewGraph(rate)
	for i := 0; i < n; i++ {
		g.AddNode(Node{IPT: 100, Payload: 1000, Selectivity: 1})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

// diamond builds src → {a, b} → sink.
func diamond(rate float64) *Graph {
	g := NewGraph(rate)
	for i := 0; i < 4; i++ {
		g.AddNode(Node{IPT: 100, Payload: 1000})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	return g
}

func TestValidateChain(t *testing.T) {
	g := chain(5, 1000)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := chain(3, 1000)
	g.AddEdge(2, 0, 0)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDisconnected(t *testing.T) {
	g := chain(3, 1000)
	g.AddNode(Node{IPT: 1, Payload: 1})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "connected") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsBadFeatures(t *testing.T) {
	g := chain(3, 1000)
	g.Nodes[1].IPT = -5
	if err := g.Validate(); err == nil {
		t.Fatal("negative IPT accepted")
	}
	g = chain(3, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("zero source rate accepted")
	}
}

func TestAddEdgeSelfLoopRejectedByValidate(t *testing.T) {
	g := chain(3, 100)
	g.Edges = append(g.Edges, Edge{Src: 1, Dst: 1, Payload: 1})
	g.invalidate()
	if err := g.Validate(); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond(100)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("edge (%d,%d) violates order", e.Src, e.Dst)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(100)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("sinks = %v", s)
	}
}

func TestSteadyRatesChain(t *testing.T) {
	g := chain(3, 500)
	rates := g.SteadyRates()
	for v, r := range rates {
		if r != 500 {
			t.Fatalf("node %d rate %g, want 500", v, r)
		}
	}
}

func TestSteadyRatesFanInAddsUp(t *testing.T) {
	g := diamond(100)
	rates := g.SteadyRates()
	// Sink receives 100 from each branch → outputs 200 (selectivity 1).
	if rates[3] != 200 {
		t.Fatalf("sink rate %g, want 200", rates[3])
	}
}

func TestSteadyRatesSelectivity(t *testing.T) {
	g := chain(3, 100)
	g.Nodes[1].Selectivity = 0.5
	rates := g.SteadyRates()
	if rates[1] != 50 || rates[2] != 50 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestNodeLoadChain(t *testing.T) {
	g := chain(3, 100)
	load := g.NodeLoad()
	for v, l := range load {
		if l != 100*100 { // IPT 100 × rate 100
			t.Fatalf("node %d load %g", v, l)
		}
	}
}

func TestEdgeTraffic(t *testing.T) {
	g := chain(2, 100)
	tr := g.EdgeTraffic()
	if tr[0] != 1000*100 {
		t.Fatalf("traffic %g", tr[0])
	}
}

func TestPlacementValidate(t *testing.T) {
	g := chain(4, 100)
	p := NewPlacement(4, 2)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	p.Assign[2] = 5
	if err := p.Validate(g); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	short := NewPlacement(3, 2)
	if err := short.Validate(g); err == nil {
		t.Fatal("short placement accepted")
	}
}

func TestUsedDevices(t *testing.T) {
	p := &Placement{Assign: []int{0, 2, 2, 0}, Devices: 5}
	if got := p.UsedDevices(); got != 2 {
		t.Fatalf("used = %d", got)
	}
}

func TestCollapseEdgesChain(t *testing.T) {
	g := chain(4, 100)
	cm := CollapseEdges(g, []bool{true, false, true})
	if cm.NumSuper != 2 {
		t.Fatalf("supers = %d", cm.NumSuper)
	}
	if cm.Super[0] != cm.Super[1] || cm.Super[2] != cm.Super[3] || cm.Super[0] == cm.Super[2] {
		t.Fatalf("super = %v", cm.Super)
	}
}

func TestCollapseNothingIsIdentity(t *testing.T) {
	g := diamond(100)
	cm := CollapseEdges(g, make([]bool, g.NumEdges()))
	if cm.NumSuper != g.NumNodes() {
		t.Fatalf("supers = %d", cm.NumSuper)
	}
	if cm.CompressionRatio() != 1 {
		t.Fatalf("ratio = %g", cm.CompressionRatio())
	}
}

func TestCollapseAllMergesEverything(t *testing.T) {
	g := diamond(100)
	all := make([]bool, g.NumEdges())
	for i := range all {
		all[i] = true
	}
	cm := CollapseEdges(g, all)
	if cm.NumSuper != 1 {
		t.Fatalf("supers = %d", cm.NumSuper)
	}
	if cm.CompressionRatio() != 4 {
		t.Fatalf("ratio = %g", cm.CompressionRatio())
	}
}

func TestCoarseGraphConservesLoadAndTraffic(t *testing.T) {
	g := diamond(100)
	cm := CollapseEdges(g, []bool{true, false, false, false}) // merge 0,1
	cg := CoarseGraph(g, cm)
	if cg.NumNodes() != 3 {
		t.Fatalf("coarse nodes = %d", cg.NumNodes())
	}
	// Total CPU demand is conserved.
	if math.Abs(cg.TotalLoad()-g.TotalLoad()) > 1e-6 {
		t.Fatalf("load %g != %g", cg.TotalLoad(), g.TotalLoad())
	}
	// Total traffic equals original cross-super traffic.
	var want float64
	tr := g.EdgeTraffic()
	for ei, e := range g.Edges {
		if cm.Super[e.Src] != cm.Super[e.Dst] {
			want += tr[ei]
		}
	}
	var got float64
	for _, x := range cg.EdgeTraffic() {
		got += x
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("traffic %g != %g", got, want)
	}
}

func TestExpandPlacement(t *testing.T) {
	g := chain(4, 100)
	cm := CollapseEdges(g, []bool{true, false, true})
	cp := NewPlacement(2, 3)
	cp.Assign = []int{2, 0}
	p := ExpandPlacement(cm, cp)
	if p.Assign[0] != 2 || p.Assign[1] != 2 || p.Assign[2] != 0 || p.Assign[3] != 0 {
		t.Fatalf("assign = %v", p.Assign)
	}
}

func TestMembersSortedAndComplete(t *testing.T) {
	g := chain(5, 100)
	cm := CollapseEdges(g, []bool{false, true, true, false})
	members := cm.Members()
	total := 0
	for _, grp := range members {
		total += len(grp)
		for i := 1; i < len(grp); i++ {
			if grp[i] <= grp[i-1] {
				t.Fatal("members not sorted")
			}
		}
	}
	if total != 5 {
		t.Fatalf("member total = %d", total)
	}
}

// Property: for random graphs and random collapse decisions, the coarse
// graph conserves total CPU demand, and every super id is in range.
func TestQuickCoarseningConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := NewGraph(100)
		for i := 0; i < n; i++ {
			g.AddNode(Node{IPT: 1 + rng.Float64()*100, Payload: 1 + rng.Float64()*1000})
		}
		// Random DAG edges forward in index order; connect i to i-1 to stay connected.
		for i := 1; i < n; i++ {
			g.AddEdge(rng.Intn(i), i, 0)
			if rng.Float64() < 0.4 && i >= 2 {
				u := rng.Intn(i)
				g.AddEdge(u, i, 0)
			}
		}
		collapse := make([]bool, g.NumEdges())
		for i := range collapse {
			collapse[i] = rng.Float64() < 0.5
		}
		cm := CollapseEdges(g, collapse)
		for _, s := range cm.Super {
			if s < 0 || s >= cm.NumSuper {
				return false
			}
		}
		cg := CoarseGraph(g, cm)
		if math.Abs(cg.TotalLoad()-g.TotalLoad()) > 1e-5*g.TotalLoad() {
			return false
		}
		// Coarse graph has no self-loops.
		for _, e := range cg.Edges {
			if e.Src == e.Dst {
				return false
			}
		}
		return cg.NumNodes() == cm.NumSuper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: expanding any coarse placement yields a valid placement where
// all members of a super-node share a device.
func TestQuickExpandPlacementConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g := NewGraph(10)
		for i := 0; i < n; i++ {
			g.AddNode(Node{IPT: 1, Payload: 1})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(rng.Intn(i), i, 0)
		}
		collapse := make([]bool, g.NumEdges())
		for i := range collapse {
			collapse[i] = rng.Float64() < 0.3
		}
		cm := CollapseEdges(g, collapse)
		devices := 1 + rng.Intn(5)
		cp := NewPlacement(cm.NumSuper, devices)
		for i := range cp.Assign {
			cp.Assign[i] = rng.Intn(devices)
		}
		p := ExpandPlacement(cm, cp)
		if err := p.Validate(g); err != nil {
			return false
		}
		for v, s := range cm.Super {
			if p.Assign[v] != cp.Assign[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := chain(3, 100)
	p := NewPlacement(3, 2)
	dot := g.DOT(p)
	if !strings.Contains(dot, "n0 -> n1") || !strings.Contains(dot, "fillcolor") {
		t.Fatalf("dot output:\n%s", dot)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chain(3, 100)
	c := g.Clone()
	c.Nodes[0].IPT = 999
	c.Edges[0].Payload = 777
	if g.Nodes[0].IPT == 999 || g.Edges[0].Payload == 777 {
		t.Fatal("clone aliases original")
	}
}
