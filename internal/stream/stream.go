// Package stream defines the stream-processing graph model from the paper:
// a DAG whose nodes are operators characterized by CPU utilization
// (instructions per tuple × tuple rate / MIPS) and emitted payload, and
// whose directed edges carry tuples with a per-tuple payload, characterized
// by their data saturation rate (payload × rate / bandwidth).
//
// The package also provides placements (operator→device assignments),
// coarsening maps (operator→super-node assignments produced by edge
// collapsing), and the bookkeeping to build a coarsened graph and map a
// coarse placement back to the original operators.
package stream

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node is one stream operator.
type Node struct {
	// IPT is the number of instructions required to process one tuple.
	IPT float64
	// Payload is the size in bits of each output tuple the operator emits.
	Payload float64
	// Selectivity is output tuples emitted per input tuple (1 by default).
	Selectivity float64
	// State is the size in bits of the operator's internal state (window
	// contents, join hash tables, …). Stateless operators keep 0. Moving a
	// stateful operator between devices costs its state plus the tuples in
	// flight toward it, which is what the re-allocation loop's move-cost
	// model charges.
	State float64
	// Name is an optional human-readable label (used by examples/DOT).
	Name string
}

// Edge is a directed operator connection u→v carrying u's output tuples.
type Edge struct {
	Src, Dst int
	// Payload is the size in bits of each tuple transmitted on this edge.
	// It normally equals the source node's Payload but is kept separately
	// because coarsening aggregates edge payloads between super-nodes.
	Payload float64
}

// Graph is a stream-processing DAG.
type Graph struct {
	Nodes []Node
	Edges []Edge
	// SourceRate is the tuple ingestion rate (tuples/second) at each source.
	SourceRate float64

	// Adjacency cache in CSR form, built lazily by ensureAdj: outAdj holds
	// edge indices grouped by source node (node v's out-edges are
	// outAdj[outOff[v]:outOff[v+1]], ascending edge id), inAdj the same
	// grouped by destination. One flat array per direction replaces the old
	// per-node slice-of-slices, so a million-node graph costs two offset
	// arrays and two edge-id arrays instead of 2N slice headers.
	outOff, inOff []int32
	outAdj, inAdj []int

	// loadOverride / trafficOverride, when non-nil, short-circuit
	// NodeLoad / EdgeTraffic. Coarse graphs set them because collapsing a
	// DAG's edges can create cycles in the super-graph, making rate
	// propagation undefined there; the aggregate demands are exact anyway.
	loadOverride    []float64
	trafficOverride []float64
}

// SetDemandOverrides fixes NodeLoad and EdgeTraffic to explicit values
// (instructions/s per node, bits/s per edge). Used by CoarseGraph.
func (g *Graph) SetDemandOverrides(load, traffic []float64) {
	if len(load) != len(g.Nodes) || len(traffic) != len(g.Edges) {
		panic("stream: override length mismatch")
	}
	g.loadOverride = load
	g.trafficOverride = traffic
}

// NewGraph returns an empty graph with the given source tuple rate.
func NewGraph(sourceRate float64) *Graph {
	return &Graph{SourceRate: sourceRate}
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode(n Node) int {
	if n.Selectivity == 0 {
		n.Selectivity = 1
	}
	g.Nodes = append(g.Nodes, n)
	g.invalidate()
	return len(g.Nodes) - 1
}

// AddEdge appends a directed edge and returns its index. The payload
// defaults to the source node's payload when zero.
func (g *Graph) AddEdge(src, dst int, payload float64) int {
	if src < 0 || src >= len(g.Nodes) || dst < 0 || dst >= len(g.Nodes) {
		panic(fmt.Sprintf("stream: edge (%d,%d) out of range, %d nodes", src, dst, len(g.Nodes)))
	}
	if payload == 0 {
		payload = g.Nodes[src].Payload
	}
	g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Payload: payload})
	g.invalidate()
	return len(g.Edges) - 1
}

func (g *Graph) invalidate() { g.outOff, g.inOff, g.outAdj, g.inAdj = nil, nil, nil, nil }

// ensureAdj builds both CSR incidence views with a counting sort over the
// edge list: two O(N+E) passes, no per-node append slices. Iterating edges
// in index order makes every per-node bucket ascend by edge id, which the
// tensor CSR segment kernels rely on for bit-identical accumulation order.
func (g *Graph) ensureAdj() {
	if g.outOff != nil {
		return
	}
	n, m := len(g.Nodes), len(g.Edges)
	outOff := make([]int32, n+1)
	inOff := make([]int32, n+1)
	for _, e := range g.Edges {
		outOff[e.Src+1]++
		inOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		outOff[v+1] += outOff[v]
		inOff[v+1] += inOff[v]
	}
	outAdj := make([]int, m)
	inAdj := make([]int, m)
	outCur := append([]int32(nil), outOff[:n]...)
	inCur := append([]int32(nil), inOff[:n]...)
	for ei, e := range g.Edges {
		outAdj[outCur[e.Src]] = ei
		outCur[e.Src]++
		inAdj[inCur[e.Dst]] = ei
		inCur[e.Dst]++
	}
	g.outOff, g.inOff, g.outAdj, g.inAdj = outOff, inOff, outAdj, inAdj
}

// Adjacency is a CSR (compressed sparse row) view of a graph's incidence
// lists: node v's out-edges are OutEdge[OutOff[v]:OutOff[v+1]] and its
// in-edges InEdge[InOff[v]:InOff[v+1]], each bucket ascending by edge id.
// The arrays are shared with the graph's cache — callers must not mutate
// them, and must not hold the view across AddNode/AddEdge.
type Adjacency struct {
	OutOff, InOff   []int32
	OutEdge, InEdge []int
}

// Out returns the edge indices leaving node v.
func (a Adjacency) Out(v int) []int { return a.OutEdge[a.OutOff[v]:a.OutOff[v+1]] }

// In returns the edge indices entering node v.
func (a Adjacency) In(v int) []int { return a.InEdge[a.InOff[v]:a.InOff[v+1]] }

// OutDegree returns the number of edges leaving node v.
func (a Adjacency) OutDegree(v int) int { return int(a.OutOff[v+1] - a.OutOff[v]) }

// InDegree returns the number of edges entering node v.
func (a Adjacency) InDegree(v int) int { return int(a.InOff[v+1] - a.InOff[v]) }

// Adjacency returns the graph's CSR incidence view, building it on first
// use. The view is shared by gnn.BuildFeatures, the simulators, and the
// re-allocation loop so the arrays are constructed exactly once per graph.
func (g *Graph) Adjacency() Adjacency {
	g.ensureAdj()
	return Adjacency{OutOff: g.outOff, InOff: g.inOff, OutEdge: g.outAdj, InEdge: g.inAdj}
}

// OutEdges returns the indices of edges leaving node v (a view into the
// CSR cache — do not mutate).
func (g *Graph) OutEdges(v int) []int {
	g.ensureAdj()
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InEdges returns the indices of edges entering node v (a view into the
// CSR cache — do not mutate).
func (g *Graph) InEdges(v int) []int {
	g.ensureAdj()
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// Sources returns nodes with no incoming edges.
func (g *Graph) Sources() []int {
	g.ensureAdj()
	var s []int
	for v := range g.Nodes {
		if g.inOff[v] == g.inOff[v+1] {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns nodes with no outgoing edges.
func (g *Graph) Sinks() []int {
	g.ensureAdj()
	var s []int
	for v := range g.Nodes {
		if g.outOff[v] == g.outOff[v+1] {
			s = append(s, v)
		}
	}
	return s
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// TopoOrder returns a topological ordering of the nodes, or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	g.ensureAdj()
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.outAdj[g.outOff[v]:g.outOff[v+1]] {
			d := g.Edges[ei].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("stream: graph has a cycle (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// PseudoTopoOrder returns a topological ordering when the graph is
// acyclic; on cyclic graphs (possible for coarse graphs) it falls back to
// breaking the smallest-remaining-indegree node out of each cycle, always
// returning a complete ordering. Used by sequential placers that must
// handle coarse graphs.
func (g *Graph) PseudoTopoOrder() []int {
	g.ensureAdj()
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	done := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(order) < n {
		if len(queue) == 0 {
			// Cycle: release the unfinished node with minimal indegree.
			best, bestDeg := -1, 1<<30
			for v := 0; v < n; v++ {
				if !done[v] && indeg[v] < bestDeg {
					best, bestDeg = v, indeg[v]
				}
			}
			queue = append(queue, best)
			indeg[best] = 0
		}
		v := queue[0]
		queue = queue[1:]
		if done[v] {
			continue
		}
		done[v] = true
		order = append(order, v)
		for _, ei := range g.outAdj[g.outOff[v]:g.outOff[v+1]] {
			d := g.Edges[ei].Dst
			if done[d] {
				continue
			}
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return order
}

// Validate checks structural invariants: acyclicity, in-range edges,
// positive rates/features, and (weak) connectivity.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("stream: empty graph")
	}
	if g.SourceRate <= 0 {
		return fmt.Errorf("stream: non-positive source rate %g", g.SourceRate)
	}
	for i, n := range g.Nodes {
		if n.IPT < 0 || n.Payload < 0 || n.Selectivity <= 0 {
			return fmt.Errorf("stream: node %d has invalid features IPT=%g payload=%g sel=%g",
				i, n.IPT, n.Payload, n.Selectivity)
		}
	}
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("stream: edge %d endpoints (%d,%d) out of range", i, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("stream: edge %d is a self-loop at %d", i, e.Src)
		}
		if e.Payload < 0 {
			return fmt.Errorf("stream: edge %d has negative payload", i)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if len(g.Nodes) > 1 && !g.weaklyConnected() {
		return fmt.Errorf("stream: graph is not weakly connected")
	}
	return nil
}

func (g *Graph) weaklyConnected() bool {
	n := len(g.Nodes)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// SteadyRates returns each node's steady-state output tuple rate assuming
// no resource bottlenecks: sources emit SourceRate × selectivity, and each
// operator's input rate is the sum of its upstream output rates.
func (g *Graph) SteadyRates() []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic("stream: SteadyRates on cyclic graph: " + err.Error())
	}
	g.ensureAdj()
	in := make([]float64, len(g.Nodes))
	out := make([]float64, len(g.Nodes))
	for _, v := range order {
		rate := in[v]
		if g.inOff[v] == g.inOff[v+1] {
			rate = g.SourceRate
		}
		out[v] = rate * g.Nodes[v].Selectivity
		for _, ei := range g.outAdj[g.outOff[v]:g.outOff[v+1]] {
			in[g.Edges[ei].Dst] += out[v]
		}
	}
	return out
}

// NodeLoad returns each node's CPU demand in instructions/second at the
// unconstrained steady state: IPT × input rate (or the explicit override
// for coarse graphs).
func (g *Graph) NodeLoad() []float64 {
	if g.loadOverride != nil {
		return g.loadOverride
	}
	rates := g.SteadyRates()
	g.ensureAdj()
	load := make([]float64, len(g.Nodes))
	for v := range g.Nodes {
		inRate := 0.0
		if g.inOff[v] == g.inOff[v+1] {
			inRate = g.SourceRate
		} else {
			for _, ei := range g.inAdj[g.inOff[v]:g.inOff[v+1]] {
				inRate += rates[g.Edges[ei].Src]
			}
		}
		load[v] = g.Nodes[v].IPT * inRate
	}
	return load
}

// EdgeTraffic returns each edge's data rate in bits/second at the
// unconstrained steady state: payload × source-node output rate (or the
// explicit override for coarse graphs).
func (g *Graph) EdgeTraffic() []float64 {
	if g.trafficOverride != nil {
		return g.trafficOverride
	}
	rates := g.SteadyRates()
	tr := make([]float64, len(g.Edges))
	for ei, e := range g.Edges {
		tr[ei] = e.Payload * rates[e.Src]
	}
	return tr
}

// TotalLoad returns the summed CPU demand in instructions/second.
func (g *Graph) TotalLoad() float64 {
	var s float64
	for _, l := range g.NodeLoad() {
		s += l
	}
	return s
}

// Placement maps each operator index to a device id in [0, Devices).
type Placement struct {
	Assign  []int
	Devices int
}

// NewPlacement returns an all-zeros placement for n operators.
func NewPlacement(n, devices int) *Placement {
	return &Placement{Assign: make([]int, n), Devices: devices}
}

// Validate checks the placement covers the graph and stays in range.
func (p *Placement) Validate(g *Graph) error {
	if len(p.Assign) != len(g.Nodes) {
		return fmt.Errorf("stream: placement covers %d nodes, graph has %d", len(p.Assign), len(g.Nodes))
	}
	if p.Devices <= 0 {
		return fmt.Errorf("stream: placement has %d devices", p.Devices)
	}
	for v, d := range p.Assign {
		if d < 0 || d >= p.Devices {
			return fmt.Errorf("stream: node %d assigned to device %d of %d", v, d, p.Devices)
		}
	}
	return nil
}

// UsedDevices returns the number of distinct devices with ≥1 operator.
func (p *Placement) UsedDevices() int {
	seen := make(map[int]bool, p.Devices)
	for _, d := range p.Assign {
		seen[d] = true
	}
	return len(seen)
}

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	a := make([]int, len(p.Assign))
	copy(a, p.Assign)
	return &Placement{Assign: a, Devices: p.Devices}
}

// CoarseMap maps original node → super-node, as produced by collapsing a
// set of edges (connected components of the collapsed-edge subgraph).
type CoarseMap struct {
	// Super[v] is the super-node index of original node v.
	Super []int
	// NumSuper is the number of super-nodes.
	NumSuper int
}

// CollapseEdges builds the coarse map induced by merging the endpoints of
// every edge whose index appears with decision true. Super-node ids are
// compacted and ordered by the smallest original node they contain.
func CollapseEdges(g *Graph, collapse []bool) *CoarseMap {
	if len(collapse) != len(g.Edges) {
		panic(fmt.Sprintf("stream: %d collapse decisions for %d edges", len(collapse), len(g.Edges)))
	}
	uf := newUnionFind(len(g.Nodes))
	for ei, c := range collapse {
		if c {
			uf.union(g.Edges[ei].Src, g.Edges[ei].Dst)
		}
	}
	return coarseFromUF(g, uf)
}

func coarseFromUF(g *Graph, uf *unionFind) *CoarseMap {
	n := len(g.Nodes)
	super := make([]int, n)
	next := 0
	rootID := make(map[int]int, n)
	for v := 0; v < n; v++ {
		r := uf.find(v)
		id, ok := rootID[r]
		if !ok {
			id = next
			next++
			rootID[r] = id
		}
		super[v] = id
	}
	return &CoarseMap{Super: super, NumSuper: next}
}

// Members returns, for each super-node, the sorted original node indices.
func (cm *CoarseMap) Members() [][]int {
	m := make([][]int, cm.NumSuper)
	for v, s := range cm.Super {
		m[s] = append(m[s], v)
	}
	for _, grp := range m {
		sort.Ints(grp)
	}
	return m
}

// CompressionRatio returns |V| / |V_coarse|.
func (cm *CoarseMap) CompressionRatio() float64 {
	if cm.NumSuper == 0 {
		return math.NaN()
	}
	return float64(len(cm.Super)) / float64(cm.NumSuper)
}

// CoarseGraph builds the coarsened graph: super-node IPT-load aggregates
// member demand (represented by summing IPT weighted by relative input
// rates — see below), payloads of parallel super-edges are summed, and
// intra-super edges disappear.
//
// Because a super-node is simulated as one operator, we aggregate member
// CPU demand exactly: the coarse node's IPT is chosen such that
// IPT_super × sourceRate = Σ member loads / fan-in-normalization; we encode
// the exact aggregate demand by giving the super node IPT = total member
// demand / SourceRate and selectivity 1, and super edges carry the exact
// steady-state traffic as payload at rate SourceRate. This preserves both
// total CPU demand per super-node and total traffic per super-edge, which
// is what the partitioner and simulator consume.
func CoarseGraph(g *Graph, cm *CoarseMap) *Graph {
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()
	cg := NewGraph(g.SourceRate)
	superLoad := make([]float64, cm.NumSuper)
	for v, s := range cm.Super {
		superLoad[s] += load[v]
		_ = v
	}
	for s := 0; s < cm.NumSuper; s++ {
		cg.AddNode(Node{
			IPT:         superLoad[s] / g.SourceRate,
			Payload:     0, // set via explicit edge payloads below
			Selectivity: 1,
			Name:        fmt.Sprintf("s%d", s),
		})
	}
	// Aggregate inter-super traffic; key = src*NumSuper+dst.
	agg := make(map[int]float64)
	for ei, e := range g.Edges {
		su, sv := cm.Super[e.Src], cm.Super[e.Dst]
		if su == sv {
			continue
		}
		agg[su*cm.NumSuper+sv] += traffic[ei]
	}
	keys := make([]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	superTraffic := make([]float64, 0, len(keys))
	for _, k := range keys {
		su, sv := k/cm.NumSuper, k%cm.NumSuper
		// Super edges carry the aggregate traffic: payload × SourceRate =
		// aggregate bits/s, with the super graph treated as rate-SourceRate.
		cg.AddEdge(su, sv, agg[k]/g.SourceRate)
		superTraffic = append(superTraffic, agg[k])
	}
	// Collapsing DAG edges can create cycles among super-nodes, so demands
	// are pinned to their exact aggregates rather than re-propagated.
	cg.SetDemandOverrides(superLoad, superTraffic)
	return cg
}

// ExpandPlacement maps a placement of the coarse graph back onto the
// original graph: every member of super-node s gets s's device.
func ExpandPlacement(cm *CoarseMap, coarse *Placement) *Placement {
	if len(coarse.Assign) != cm.NumSuper {
		panic(fmt.Sprintf("stream: coarse placement covers %d supernodes, map has %d",
			len(coarse.Assign), cm.NumSuper))
	}
	p := NewPlacement(len(cm.Super), coarse.Devices)
	for v, s := range cm.Super {
		p.Assign[v] = coarse.Assign[s]
	}
	return p
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// DOT renders the graph in Graphviz format; placement may be nil. Used by
// the Fig. 3 qualitative example.
func (g *Graph) DOT(p *Placement) string {
	var b strings.Builder
	b.WriteString("digraph stream {\n  rankdir=LR;\n")
	load := g.NodeLoad()
	for v, n := range g.Nodes {
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		color := ""
		if p != nil {
			color = fmt.Sprintf(", style=filled, fillcolor=\"/set312/%d\"", p.Assign[v]%12+1)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%.0f MI/s\"%s];\n", v, label, load[v]/1e6, color)
	}
	traffic := g.EdgeTraffic()
	for ei, e := range g.Edges {
		w := 1 + 4*math.Log1p(traffic[ei]/1e6)
		fmt.Fprintf(&b, "  n%d -> n%d [penwidth=%.1f];\n", e.Src, e.Dst, w)
	}
	b.WriteString("}\n")
	return b.String()
}

// ScaleSourceRate returns a view of the graph with every source ingesting
// f× the base tuple rate — a source-rate surge. Nodes and edges are shared
// (the per-tuple features are rate independent); steady-state rates, loads,
// and traffic all scale linearly with the source rate, so explicit demand
// overrides are scaled by the same factor.
func (g *Graph) ScaleSourceRate(f float64) *Graph {
	if f <= 0 {
		panic(fmt.Sprintf("stream: non-positive source-rate factor %g", f))
	}
	if f == 1 {
		return g
	}
	sg := &Graph{Nodes: g.Nodes, Edges: g.Edges, SourceRate: g.SourceRate * f}
	// The CSR cache depends only on the shared Nodes/Edges, so the scaled
	// view can reuse it instead of rebuilding per surge factor.
	sg.outOff, sg.inOff, sg.outAdj, sg.inAdj = g.outOff, g.inOff, g.outAdj, g.inAdj
	if g.loadOverride != nil {
		sg.loadOverride = make([]float64, len(g.loadOverride))
		sg.trafficOverride = make([]float64, len(g.trafficOverride))
		for i, v := range g.loadOverride {
			sg.loadOverride[i] = v * f
		}
		for i, v := range g.trafficOverride {
			sg.trafficOverride[i] = v * f
		}
	}
	return sg
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	cg := NewGraph(g.SourceRate)
	cg.Nodes = append([]Node(nil), g.Nodes...)
	cg.Edges = append([]Edge(nil), g.Edges...)
	if g.loadOverride != nil {
		cg.loadOverride = append([]float64(nil), g.loadOverride...)
		cg.trafficOverride = append([]float64(nil), g.trafficOverride...)
	}
	return cg
}
