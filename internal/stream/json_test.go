package stream

import (
	"bytes"
	"strings"
	"testing"
)

func jsonTestGraph() *Graph {
	g := NewGraph(5000)
	g.AddNode(Node{IPT: 100, Payload: 50, Selectivity: 1, Name: "src"})
	g.AddNode(Node{IPT: 200, Payload: 25, Selectivity: 0.5})
	g.AddEdge(0, 1, 75)
	return g
}

func TestJSONRoundTrip(t *testing.T) {
	g := jsonTestGraph()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Graph{g}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d graphs", len(back))
	}
	r := back[0]
	if r.SourceRate != 5000 || r.NumNodes() != 2 || r.NumEdges() != 1 {
		t.Fatal("structure mismatch")
	}
	if r.Nodes[0].Name != "src" || r.Nodes[1].Selectivity != 0.5 {
		t.Fatal("node fields mismatch")
	}
	if r.Edges[0].Payload != 75 {
		t.Fatal("edge payload mismatch")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	// Out-of-range edge endpoint.
	bad := `[{"source_rate":100,"nodes":[{"ipt":1,"payload":1,"selectivity":1}],"edges":[{"src":0,"dst":5,"payload":1}]}]`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Cyclic graph fails validation.
	cyc := `[{"source_rate":100,"nodes":[{"ipt":1,"payload":1,"selectivity":1},{"ipt":1,"payload":1,"selectivity":1}],` +
		`"edges":[{"src":0,"dst":1,"payload":1},{"src":1,"dst":0,"payload":1}]}]`
	if _, err := ReadJSON(strings.NewReader(cyc)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	// Garbage.
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestJSONWriterMatchesWriteJSON pins the incremental writer's byte stream
// to WriteJSON's: datasets emitted one graph at a time must be
// indistinguishable from buffered emission, including HTML-escaped names,
// omitted zero fields, and edgeless graphs.
func TestJSONWriterMatchesWriteJSON(t *testing.T) {
	g1 := jsonTestGraph()
	g2 := NewGraph(100)
	g2.AddNode(Node{IPT: 1, Payload: 2, Selectivity: 1, Name: "a<b>&c", State: 7})
	g3 := NewGraph(1)
	g3.AddNode(Node{IPT: 0.5, Payload: 1.25, Selectivity: 1})
	g3.AddNode(Node{IPT: 3, Payload: 4, Selectivity: 2})
	g3.AddEdge(0, 1, 0.125)
	g3.AddEdge(0, 1, 9)
	for _, graphs := range [][]*Graph{nil, {g1}, {g1, g2, g3}} {
		var want bytes.Buffer
		ref := graphs
		if ref == nil {
			ref = []*Graph{} // WriteJSON(nil) emits "null"; the writer emits "[]"
		}
		if err := WriteJSON(&want, ref); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		jw := NewJSONWriter(&got)
		for _, g := range graphs {
			if err := jw.Write(g); err != nil {
				t.Fatal(err)
			}
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("incremental stream diverges for %d graphs:\nwant %q\ngot  %q",
				len(graphs), want.String(), got.String())
		}
	}
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Write(jsonTestGraph()); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestJSONPreservesSimulationSemantics(t *testing.T) {
	g := jsonTestGraph()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Graph{g}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := g.NodeLoad(), back[0].NodeLoad()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("loads changed across serialization")
		}
	}
}
