package stream

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	SourceRate float64    `json:"source_rate"`
	Nodes      []nodeJSON `json:"nodes"`
	Edges      []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	IPT         float64 `json:"ipt"`
	Payload     float64 `json:"payload"`
	Selectivity float64 `json:"selectivity"`
	State       float64 `json:"state,omitempty"`
	Name        string  `json:"name,omitempty"`
}

type edgeJSON struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Payload float64 `json:"payload"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{SourceRate: g.SourceRate}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON(n))
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, edgeJSON(e))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*g = Graph{SourceRate: in.SourceRate}
	for _, n := range in.Nodes {
		g.Nodes = append(g.Nodes, Node(n))
	}
	for i, e := range in.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("stream: edge %d endpoints out of range", i)
		}
		g.Edges = append(g.Edges, Edge(e))
	}
	return nil
}

// WriteJSON streams a set of graphs as a JSON array.
func WriteJSON(w io.Writer, graphs []*Graph) error {
	enc := json.NewEncoder(w)
	return enc.Encode(graphs)
}

// JSONWriter emits a JSON array of graphs one element at a time, holding
// only the element currently being written: the caller generates a graph,
// writes it, and drops it, so a dataset of huge graphs never materializes
// in memory at once. The byte stream is identical to WriteJSON over the
// same non-empty sequence (and to WriteJSON of an empty non-nil slice when
// nothing is written before Close).
type JSONWriter struct {
	w      io.Writer
	n      int
	err    error
	closed bool
}

// NewJSONWriter returns a writer emitting a JSON graph array to w.
func NewJSONWriter(w io.Writer) *JSONWriter { return &JSONWriter{w: w} }

func (jw *JSONWriter) emit(s string) {
	if jw.err == nil {
		_, jw.err = io.WriteString(jw.w, s)
	}
}

func (jw *JSONWriter) emitValue(v any) {
	if jw.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		jw.err = err
		return
	}
	_, jw.err = jw.w.Write(b)
}

// Write appends one graph to the array. The graph is marshaled field by
// field — source rate, then each node, then each edge — so no whole-graph
// buffer is ever built (element-wise marshals concatenate to exactly the
// bytes json.Marshal produces for the whole graph).
func (jw *JSONWriter) Write(g *Graph) error {
	if jw.closed {
		return fmt.Errorf("stream: JSONWriter already closed")
	}
	if jw.n == 0 {
		jw.emit("[")
	} else {
		jw.emit(",")
	}
	jw.n++
	jw.emit(`{"source_rate":`)
	jw.emitValue(g.SourceRate)
	jw.emit(`,"nodes":`)
	if len(g.Nodes) == 0 {
		jw.emit("null")
	} else {
		for i, n := range g.Nodes {
			if i == 0 {
				jw.emit("[")
			} else {
				jw.emit(",")
			}
			jw.emitValue(nodeJSON(n))
		}
		jw.emit("]")
	}
	jw.emit(`,"edges":`)
	if len(g.Edges) == 0 {
		jw.emit("null")
	} else {
		for i, e := range g.Edges {
			if i == 0 {
				jw.emit("[")
			} else {
				jw.emit(",")
			}
			jw.emitValue(edgeJSON(e))
		}
		jw.emit("]")
	}
	jw.emit("}")
	return jw.err
}

// Close terminates the array (emitting "[]" when nothing was written) and
// the trailing newline WriteJSON's encoder produces.
func (jw *JSONWriter) Close() error {
	if jw.closed {
		return jw.err
	}
	jw.closed = true
	if jw.n == 0 {
		jw.emit("[]")
	} else {
		jw.emit("]")
	}
	jw.emit("\n")
	return jw.err
}

// ReadJSON reads a JSON array of graphs and validates each.
func ReadJSON(r io.Reader) ([]*Graph, error) {
	var graphs []*Graph
	if err := json.NewDecoder(r).Decode(&graphs); err != nil {
		return nil, fmt.Errorf("stream: decode graphs: %w", err)
	}
	for i, g := range graphs {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("stream: graph %d: %w", i, err)
		}
	}
	return graphs, nil
}
