package stream

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	SourceRate float64    `json:"source_rate"`
	Nodes      []nodeJSON `json:"nodes"`
	Edges      []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	IPT         float64 `json:"ipt"`
	Payload     float64 `json:"payload"`
	Selectivity float64 `json:"selectivity"`
	State       float64 `json:"state,omitempty"`
	Name        string  `json:"name,omitempty"`
}

type edgeJSON struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Payload float64 `json:"payload"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{SourceRate: g.SourceRate}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON(n))
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, edgeJSON(e))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*g = Graph{SourceRate: in.SourceRate}
	for _, n := range in.Nodes {
		g.Nodes = append(g.Nodes, Node(n))
	}
	for i, e := range in.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("stream: edge %d endpoints out of range", i)
		}
		g.Edges = append(g.Edges, Edge(e))
	}
	return nil
}

// WriteJSON streams a set of graphs as a JSON array.
func WriteJSON(w io.Writer, graphs []*Graph) error {
	enc := json.NewEncoder(w)
	return enc.Encode(graphs)
}

// ReadJSON reads a JSON array of graphs and validates each.
func ReadJSON(r io.Reader) ([]*Graph, error) {
	var graphs []*Graph
	if err := json.NewDecoder(r).Decode(&graphs); err != nil {
		return nil, fmt.Errorf("stream: decode graphs: %w", err)
	}
	for i, g := range graphs {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("stream: graph %d: %w", i, err)
		}
	}
	return graphs, nil
}
