package stream

import (
	"fmt"
	"sort"
)

// GraphStats summarizes a stream graph's structure and demand profile —
// used by the genstream CLI and dataset sanity checks.
type GraphStats struct {
	Nodes, Edges     int
	Sources, Sinks   int
	Depth            int // longest path length in edges
	MaxInDeg         int
	MaxOutDeg        int
	TotalLoad        float64 // instructions/second
	TotalTraffic     float64 // bits/second
	HeaviestNodeFrac float64 // heaviest node's share of total load
	HeaviestEdgeFrac float64 // heaviest edge's share of total traffic
}

// Stats computes GraphStats. The graph must be acyclic.
func Stats(g *Graph) (GraphStats, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return GraphStats{}, err
	}
	st := GraphStats{
		Nodes:   g.NumNodes(),
		Edges:   g.NumEdges(),
		Sources: len(g.Sources()),
		Sinks:   len(g.Sinks()),
	}
	depth := make([]int, g.NumNodes())
	for _, v := range order {
		for _, ei := range g.OutEdges(v) {
			d := g.Edges[ei].Dst
			if depth[v]+1 > depth[d] {
				depth[d] = depth[v] + 1
			}
		}
		if depth[v] > st.Depth {
			st.Depth = depth[v]
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if in := len(g.InEdges(v)); in > st.MaxInDeg {
			st.MaxInDeg = in
		}
		if out := len(g.OutEdges(v)); out > st.MaxOutDeg {
			st.MaxOutDeg = out
		}
	}
	var heaviestNode float64
	for _, l := range g.NodeLoad() {
		st.TotalLoad += l
		if l > heaviestNode {
			heaviestNode = l
		}
	}
	var heaviestEdge float64
	for _, t := range g.EdgeTraffic() {
		st.TotalTraffic += t
		if t > heaviestEdge {
			heaviestEdge = t
		}
	}
	if st.TotalLoad > 0 {
		st.HeaviestNodeFrac = heaviestNode / st.TotalLoad
	}
	if st.TotalTraffic > 0 {
		st.HeaviestEdgeFrac = heaviestEdge / st.TotalTraffic
	}
	return st, nil
}

// String renders the stats on one line.
func (s GraphStats) String() string {
	return fmt.Sprintf("n=%d e=%d src=%d sink=%d depth=%d maxIn=%d maxOut=%d load=%.3g traffic=%.3g heaviestNode=%.1f%% heaviestEdge=%.1f%%",
		s.Nodes, s.Edges, s.Sources, s.Sinks, s.Depth, s.MaxInDeg, s.MaxOutDeg,
		s.TotalLoad, s.TotalTraffic, 100*s.HeaviestNodeFrac, 100*s.HeaviestEdgeFrac)
}

// DegreeHistogram returns sorted (degree, count) pairs for in+out degrees.
func DegreeHistogram(g *Graph) [][2]int {
	counts := map[int]int{}
	for v := 0; v < g.NumNodes(); v++ {
		counts[len(g.InEdges(v))+len(g.OutEdges(v))]++
	}
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	out := make([][2]int, 0, len(degrees))
	for _, d := range degrees {
		out = append(out, [2]int{d, counts[d]})
	}
	return out
}
