package stream

import (
	"strings"
	"testing"
)

func statsGraph() *Graph {
	// diamond with an extra tail: 0 → {1,2} → 3 → 4
	g := NewGraph(100)
	for i := 0; i < 5; i++ {
		g.AddNode(Node{IPT: 10, Payload: 100})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	g.AddEdge(3, 4, 0)
	return g
}

func TestStatsStructure(t *testing.T) {
	st, err := Stats(statsGraph())
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 5 || st.Edges != 5 {
		t.Fatalf("%+v", st)
	}
	if st.Sources != 1 || st.Sinks != 1 {
		t.Fatalf("%+v", st)
	}
	if st.Depth != 3 {
		t.Fatalf("depth = %d", st.Depth)
	}
	if st.MaxInDeg != 2 || st.MaxOutDeg != 2 {
		t.Fatalf("degrees %d/%d", st.MaxInDeg, st.MaxOutDeg)
	}
	if st.TotalLoad <= 0 || st.TotalTraffic <= 0 {
		t.Fatal("demands missing")
	}
	if st.HeaviestNodeFrac <= 0 || st.HeaviestNodeFrac > 1 {
		t.Fatalf("heaviest node frac %g", st.HeaviestNodeFrac)
	}
}

func TestStatsRejectsCycle(t *testing.T) {
	g := statsGraph()
	g.AddEdge(4, 0, 1)
	if _, err := Stats(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestStatsString(t *testing.T) {
	st, _ := Stats(statsGraph())
	s := st.String()
	if !strings.Contains(s, "n=5") || !strings.Contains(s, "depth=3") {
		t.Fatalf("stats string: %s", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(statsGraph())
	var total int
	for _, pair := range h {
		total += pair[1]
		if pair[0] < 1 {
			t.Fatal("isolated node in histogram")
		}
	}
	if total != 5 {
		t.Fatalf("histogram covers %d nodes", total)
	}
	// Sorted by degree ascending.
	for i := 1; i < len(h); i++ {
		if h[i][0] <= h[i-1][0] {
			t.Fatal("histogram not sorted")
		}
	}
}
