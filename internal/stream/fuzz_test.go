package stream

import (
	"bytes"
	"testing"
)

// FuzzReadJSON exercises the JSON decoder against arbitrary input: it must
// never panic, and anything it accepts must round-trip losslessly.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	g := NewGraph(1000)
	g.AddNode(Node{IPT: 10, Payload: 20, Selectivity: 1})
	g.AddNode(Node{IPT: 30, Payload: 40, Selectivity: 0.5})
	g.AddEdge(0, 1, 25)
	if err := WriteJSON(&seed, []*Graph{g}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"source_rate":1,"nodes":[],"edges":[]}]`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		graphs, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, graphs); err != nil {
			t.Fatalf("accepted graphs failed to re-encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(graphs) {
			t.Fatalf("round trip lost graphs: %d -> %d", len(graphs), len(back))
		}
		for i := range graphs {
			if graphs[i].NumNodes() != back[i].NumNodes() || graphs[i].NumEdges() != back[i].NumEdges() {
				t.Fatal("round trip changed structure")
			}
		}
	})
}

// FuzzAdjacencyFromJSON builds the CSR adjacency view for every graph the
// JSON decoder accepts and checks its structural invariants: monotone
// offsets covering all edges, each edge appearing exactly once per
// direction under its own endpoint, and per-node buckets ascending by edge
// id (the order the tensor CSR kernels rely on).
func FuzzAdjacencyFromJSON(f *testing.F) {
	var seed bytes.Buffer
	g := NewGraph(500)
	g.AddNode(Node{IPT: 1, Payload: 2, Selectivity: 1})
	g.AddNode(Node{IPT: 3, Payload: 4, Selectivity: 1})
	g.AddNode(Node{IPT: 5, Payload: 6, Selectivity: 1})
	g.AddEdge(0, 1, 7)
	g.AddEdge(0, 2, 8)
	g.AddEdge(1, 2, 9)
	if err := WriteJSON(&seed, []*Graph{g}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[{"source_rate":1,"nodes":[{"ipt":1,"payload":1,"selectivity":1}],"edges":[]}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		graphs, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, g := range graphs {
			adj := g.Adjacency()
			n, m := g.NumNodes(), g.NumEdges()
			if len(adj.OutOff) != n+1 || len(adj.InOff) != n+1 {
				t.Fatalf("offset lengths %d/%d for %d nodes", len(adj.OutOff), len(adj.InOff), n)
			}
			if len(adj.OutEdge) != m || len(adj.InEdge) != m {
				t.Fatalf("edge array lengths %d/%d for %d edges", len(adj.OutEdge), len(adj.InEdge), m)
			}
			if adj.OutOff[0] != 0 || adj.InOff[0] != 0 || int(adj.OutOff[n]) != m || int(adj.InOff[n]) != m {
				t.Fatal("offsets do not cover the edge list")
			}
			seenOut := make([]bool, m)
			for v := 0; v < n; v++ {
				if adj.OutOff[v] > adj.OutOff[v+1] || adj.InOff[v] > adj.InOff[v+1] {
					t.Fatalf("non-monotone offsets at node %d", v)
				}
				prev := -1
				for _, ei := range adj.Out(v) {
					if g.Edges[ei].Src != v {
						t.Fatalf("edge %d in out-bucket of %d but Src=%d", ei, v, g.Edges[ei].Src)
					}
					if ei <= prev {
						t.Fatalf("out-bucket of %d not ascending: %d after %d", v, ei, prev)
					}
					prev = ei
					seenOut[ei] = true
				}
				prev = -1
				for _, ei := range adj.In(v) {
					if g.Edges[ei].Dst != v {
						t.Fatalf("edge %d in in-bucket of %d but Dst=%d", ei, v, g.Edges[ei].Dst)
					}
					if ei <= prev {
						t.Fatalf("in-bucket of %d not ascending: %d after %d", v, ei, prev)
					}
					prev = ei
				}
				if adj.OutDegree(v) != len(g.OutEdges(v)) || adj.InDegree(v) != len(g.InEdges(v)) {
					t.Fatalf("degree mismatch at node %d", v)
				}
			}
			for ei, ok := range seenOut {
				if !ok {
					t.Fatalf("edge %d missing from out buckets", ei)
				}
			}
		}
	})
}
