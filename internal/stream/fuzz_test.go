package stream

import (
	"bytes"
	"testing"
)

// FuzzReadJSON exercises the JSON decoder against arbitrary input: it must
// never panic, and anything it accepts must round-trip losslessly.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	g := NewGraph(1000)
	g.AddNode(Node{IPT: 10, Payload: 20, Selectivity: 1})
	g.AddNode(Node{IPT: 30, Payload: 40, Selectivity: 0.5})
	g.AddEdge(0, 1, 25)
	if err := WriteJSON(&seed, []*Graph{g}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"source_rate":1,"nodes":[],"edges":[]}]`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		graphs, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, graphs); err != nil {
			t.Fatalf("accepted graphs failed to re-encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(graphs) {
			t.Fatalf("round trip lost graphs: %d -> %d", len(graphs), len(back))
		}
		for i := range graphs {
			if graphs[i].NumNodes() != back[i].NumNodes() || graphs[i].NumEdges() != back[i].NumEdges() {
				t.Fatal("round trip changed structure")
			}
		}
	})
}
