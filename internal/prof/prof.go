// Package prof wires the standard pprof profilers behind the -cpuprofile
// and -memprofile flags shared by the command-line tools. Profiles are
// written in the format `go tool pprof` consumes, so a training or
// experiment run can be inspected directly:
//
//	coarsenrl -mode train -cpuprofile cpu.out ... && go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finalizes both profiles. Call stop on every exit path —
// including error exits, since os.Exit skips deferred calls. The heap
// profile is written at stop time after a forced GC so it reflects live
// retained memory rather than transient garbage.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				obs.Log.Warnf("prof: create mem profile: %v", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				obs.Log.Warnf("prof: write mem profile: %v", err)
			}
			f.Close()
		}
	}, nil
}
