package placer

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/stream"
)

func testGraph(seed int64) (*stream.Graph, sim.Cluster) {
	c := sim.DefaultCluster(5, 1000)
	cfg := gen.DefaultConfig(30, 60, 10_000, c)
	return gen.Generate(cfg, rand.New(rand.NewSource(seed))), c
}

func TestAllPlacersProduceValidPlacements(t *testing.T) {
	g, c := testGraph(1)
	for _, p := range []Placer{
		Metis{Seed: 1}, MetisOracle{Seed: 1}, RoundRobin{}, SingleDevice{},
	} {
		pl := p.Place(g, c)
		if err := pl.Validate(g); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if pl.Devices != c.Devices {
			t.Fatalf("%s: devices %d != %d", p.Name(), pl.Devices, c.Devices)
		}
	}
}

func TestPlacerNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Placer{Metis{}, MetisOracle{}, RoundRobin{}, SingleDevice{}} {
		if seen[p.Name()] {
			t.Fatalf("duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestSingleDeviceUsesOne(t *testing.T) {
	g, c := testGraph(2)
	pl := SingleDevice{}.Place(g, c)
	if pl.UsedDevices() != 1 {
		t.Fatal("single-device placer spread out")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	g, c := testGraph(3)
	pl := RoundRobin{}.Place(g, c)
	if pl.UsedDevices() != c.Devices {
		t.Fatalf("round robin used %d devices", pl.UsedDevices())
	}
}

func TestMetisOracleAtLeastAsGoodAsMetis(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, c := testGraph(seed + 10)
		m := Metis{Seed: 1}.Place(g, c)
		o := MetisOracle{Seed: 1}.Place(g, c)
		if sim.Reward(g, o, c) < sim.Reward(g, m, c)-1e-12 {
			t.Fatalf("seed %d: oracle worse than fixed metis", seed)
		}
	}
}

func TestMetisBeatsSingleDeviceWhenCPUBound(t *testing.T) {
	// Build a CPU-heavy graph with negligible traffic.
	g := stream.NewGraph(1000)
	for i := 0; i < 10; i++ {
		g.AddNode(stream.Node{IPT: 5e5, Payload: 1})
	}
	for i := 0; i+1 < 10; i++ {
		g.AddEdge(i, i+1, 0)
	}
	c := sim.DefaultCluster(5, 1000)
	m := Metis{Seed: 1}.Place(g, c)
	s := SingleDevice{}.Place(g, c)
	if sim.Reward(g, m, c) <= sim.Reward(g, s, c) {
		t.Fatal("metis failed to exploit parallelism on a CPU-bound chain")
	}
}

func TestMetisRBValid(t *testing.T) {
	g, c := testGraph(5)
	p := MetisRB{Seed: 1}.Place(g, c)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Devices != c.Devices {
		t.Fatal("devices")
	}
}

func TestHillClimbNeverWorseThanMetis(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g, c := testGraph(seed + 30)
		m := Metis{Seed: 1}.Place(g, c)
		hcl := HillClimb{Seed: 1, Restarts: 0, MaxPass: 5}.Place(g, c)
		if err := hcl.Validate(g); err != nil {
			t.Fatal(err)
		}
		if sim.Reward(g, hcl, c) < sim.Reward(g, m, c)-1e-12 {
			t.Fatalf("seed %d: hill-climb below its Metis start", seed)
		}
	}
}
