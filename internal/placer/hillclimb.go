package placer

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stream"
)

// HillClimb is a simulator-in-the-loop local-search placer: starting from
// the Metis partition (plus optional random restarts), it repeatedly moves
// single operators to the device that maximizes simulated throughput until
// a local optimum. It is far too slow for deployment but provides an
// empirical near-upper bound on what any placement method can achieve
// under the simulator — the headroom yardstick used throughout
// EXPERIMENTS.md.
type HillClimb struct {
	Seed     int64
	Restarts int // additional random restarts beyond the Metis start (default 1)
	MaxPass  int // sweeps per start (default 20)
}

// Place implements Placer.
func (h HillClimb) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	restarts := h.Restarts
	if restarts < 0 {
		restarts = 0
	}
	maxPass := h.MaxPass
	if maxPass <= 0 {
		maxPass = 20
	}
	rng := rand.New(rand.NewSource(h.Seed))
	n := g.NumNodes()

	var best *stream.Placement
	bestR := -1.0
	for start := 0; start <= restarts; start++ {
		p := stream.NewPlacement(n, cluster.Devices)
		if start == 0 {
			mp := Metis{Seed: h.Seed}.Place(g, cluster)
			copy(p.Assign, mp.Assign)
		} else {
			for v := range p.Assign {
				p.Assign[v] = rng.Intn(cluster.Devices)
			}
		}
		cur := sim.Reward(g, p, cluster)
		for pass := 0; pass < maxPass; pass++ {
			improved := false
			for v := 0; v < n; v++ {
				orig := p.Assign[v]
				bestDev, bestVal := orig, cur
				for d := 0; d < cluster.Devices; d++ {
					if d == orig {
						continue
					}
					p.Assign[v] = d
					if r := sim.Reward(g, p, cluster); r > bestVal {
						bestDev, bestVal = d, r
					}
				}
				p.Assign[v] = bestDev
				if bestDev != orig {
					cur = bestVal
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if cur > bestR {
			best, bestR = p, cur
		}
	}
	return best
}

// Name implements Placer.
func (HillClimb) Name() string { return "hill-climb" }
