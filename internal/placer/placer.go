// Package placer defines the partitioning-model abstraction used as the
// second stage of the coarsening–partitioning framework, plus the
// non-learned implementations: the Metis partitioner, the Metis oracle
// (device-count sweep), round-robin, and single-device placements. The
// learned Graph-enc-dec placer lives in internal/baselines and satisfies
// the same interface.
package placer

import (
	"repro/internal/metis"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Placer assigns every operator of a graph to a device in the cluster.
type Placer interface {
	// Place returns a placement with Devices == cluster.Devices.
	Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement
	// Name identifies the placer in experiment reports.
	Name() string
}

// Metis partitions into exactly cluster.Devices parts.
type Metis struct {
	Seed int64
}

// Place implements Placer.
func (m Metis) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	opts := metis.Options{Parts: cluster.Devices, Seed: m.Seed}
	if cluster.DeviceMIPS != nil {
		// Heterogeneous cluster: target part weights proportional to the
		// device capacities.
		total := cluster.TotalCapacity()
		fr := make([]float64, cluster.Devices)
		for d := 0; d < cluster.Devices; d++ {
			fr[d] = cluster.CapacityOf(d) / total
		}
		opts.TargetFractions = fr
	}
	p := metis.Partition(g, opts)
	p.Devices = cluster.Devices
	return p
}

// Name implements Placer.
func (Metis) Name() string { return "metis" }

// MetisOracle sweeps the part count 1..Devices and keeps the
// highest-throughput placement.
type MetisOracle struct {
	Seed int64
}

// Place implements Placer.
func (m MetisOracle) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	p, _ := metis.Oracle(g, cluster, m.Seed)
	return p
}

// Name implements Placer.
func (MetisOracle) Name() string { return "metis-oracle" }

// RoundRobin deals operators to devices in index order — a weak sanity
// baseline exercised by tests.
type RoundRobin struct{}

// Place implements Placer.
func (RoundRobin) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	p := stream.NewPlacement(g.NumNodes(), cluster.Devices)
	for v := range p.Assign {
		p.Assign[v] = v % cluster.Devices
	}
	return p
}

// Name implements Placer.
func (RoundRobin) Name() string { return "round-robin" }

// SingleDevice puts everything on device 0 — the no-communication extreme.
type SingleDevice struct{}

// Place implements Placer.
func (SingleDevice) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	return stream.NewPlacement(g.NumNodes(), cluster.Devices)
}

// Name implements Placer.
func (SingleDevice) Name() string { return "single-device" }

// MetisRB partitions by recursive bisection instead of direct k-way
// refinement — the algorithmic ablation of the partitioning stage.
type MetisRB struct {
	Seed int64
}

// Place implements Placer.
func (m MetisRB) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	p := metis.PartitionRB(g, metis.Options{Parts: cluster.Devices, Seed: m.Seed})
	p.Devices = cluster.Devices
	return p
}

// Name implements Placer.
func (MetisRB) Name() string { return "metis-rb" }
