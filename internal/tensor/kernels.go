// kernels.go is the throughput layer of the tensor package: register- and
// cache-blocked matrix-product kernels, unrolled axpy/dot micro-kernels,
// specialized activation loops, and fused gather/bias/activation variants
// used by the autodiff tape's fused ops.
//
// Determinism contract: every kernel fixes its floating-point accumulation
// order independently of blocking, packing, and worker count. Products
// accumulate over k in ascending quads (k, k+1, k+2, k+3 summed as one
// expression) starting at k=0, with scalar remainder steps in ascending
// order; dot products use four fixed lanes reduced as (s0+s1)+(s2+s3).
// Parallel fan-out only ever splits output rows, and each output element
// is owned by exactly one worker, so results are bit-identical run-to-run
// and across GOMAXPROCS values. The cache-blocked packed path chooses
// panel heights that are multiples of the unroll factor, which makes its
// quad boundaries — and therefore its results — bit-identical to the
// unpacked path as well.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Blocking parameters for the packed MatMul path. kcPanel must stay a
// multiple of 4 so packed and unpacked quad boundaries coincide (see the
// determinism contract above).
const (
	kcPanel = 128 // rows of B per packed panel
	ncPanel = 256 // columns of B per packed panel
)

// packMinElems gates panel packing: below this element count B fits in
// cache and the copy would cost more than it saves. Variable (not const)
// so tests can force the packed path on small shapes.
var packMinElems = 1 << 15

// Dot returns the inner product x·y over four independent accumulator
// lanes (fixed reduction order, so the result is deterministic).
func Dot(x, y []float64) float64 {
	n := len(x)
	if len(y) != n {
		panic("tensor: dot length mismatch")
	}
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		s0 += x[k] * y[k]
		s1 += x[k+1] * y[k+1]
		s2 += x[k+2] * y[k+2]
		s3 += x[k+3] * y[k+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; k < n; k++ {
		s += x[k] * y[k]
	}
	return s
}

// Axpy computes y += alpha·x with a 4×-unrolled loop.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) != n {
		panic("tensor: axpy length mismatch")
	}
	y = y[:n]
	k := 0
	for ; k+4 <= n; k += 4 {
		y[k] += alpha * x[k]
		y[k+1] += alpha * x[k+1]
		y[k+2] += alpha * x[k+2]
		y[k+3] += alpha * x[k+3]
	}
	for ; k < n; k++ {
		y[k] += alpha * x[k]
	}
}

// quadAxpy accumulates o += a0·b0 + a1·b1 + a2·b2 + a3·b3 in one pass —
// the register-blocked inner step shared by every product kernel. The
// four products sum left-to-right inside a single expression, which pins
// the accumulation order.
func quadAxpy(a0, a1, a2, a3 float64, b0, b1, b2, b3, o []float64) {
	n := len(o)
	b1, b2, b3 = b1[:n], b2[:n], b3[:n]
	for j, v := range b0[:n] {
		o[j] += a0*v + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// quadAxpySet is quadAxpy with assignment instead of accumulation: the
// first quad of a product defines the output row, saving a zeroing pass.
func quadAxpySet(a0, a1, a2, a3 float64, b0, b1, b2, b3, o []float64) {
	n := len(o)
	b1, b2, b3 = b1[:n], b2[:n], b3[:n]
	for j, v := range b0[:n] {
		o[j] = a0*v + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// productRow computes orow = arow·b (b row-major with n columns packed in
// bdata), defining orow fully: the first k-quad assigns, later quads and
// the scalar remainder accumulate.
func productRow(arow, bdata []float64, n int, orow []float64) {
	orow = orow[:n]
	kk := len(arow)
	if kk >= 4 {
		quadAxpySet(arow[0], arow[1], arow[2], arow[3],
			bdata[0:n], bdata[n:2*n], bdata[2*n:3*n], bdata[3*n:4*n], orow)
		k := 4
		for ; k+4 <= kk; k += 4 {
			quadAxpy(arow[k], arow[k+1], arow[k+2], arow[k+3],
				bdata[k*n:(k+1)*n], bdata[(k+1)*n:(k+2)*n],
				bdata[(k+2)*n:(k+3)*n], bdata[(k+3)*n:(k+4)*n], orow)
		}
		for ; k < kk; k++ {
			Axpy(arow[k], bdata[k*n:(k+1)*n], orow)
		}
		return
	}
	for j := range orow {
		orow[j] = 0
	}
	for k := 0; k < kk; k++ {
		Axpy(arow[k], bdata[k*n:(k+1)*n], orow)
	}
}

// accumRow is productRow without the assigning first quad: orow += arow·b.
// Used by the packed path for every k panel after the first.
func accumRow(arow, bdata []float64, n int, orow []float64) {
	orow = orow[:n]
	kk := len(arow)
	k := 0
	for ; k+4 <= kk; k += 4 {
		quadAxpy(arow[k], arow[k+1], arow[k+2], arow[k+3],
			bdata[k*n:(k+1)*n], bdata[(k+1)*n:(k+2)*n],
			bdata[(k+2)*n:(k+3)*n], bdata[(k+3)*n:(k+4)*n], orow)
	}
	for ; k < kk; k++ {
		Axpy(arow[k], bdata[k*n:(k+1)*n], orow)
	}
}

// matMulRowsPlain computes dst rows [lo, hi) of a·b with the unpacked
// unrolled kernel (B streamed row-major straight from b.Data).
func matMulRowsPlain(a, b, dst *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		productRow(a.Data[i*a.Cols:(i+1)*a.Cols], b.Data, n, dst.Data[i*n:(i+1)*n])
	}
}

// matMulRowsPacked computes dst rows [lo, hi) of a·b with cache blocking:
// B is copied one kcPanel×ncPanel panel at a time into a contiguous
// worker-local buffer, and every row of the block accumulates against the
// hot panel before the next one is packed.
func matMulRowsPacked(a, b, dst *Matrix, lo, hi int) {
	K, n := b.Rows, b.Cols
	buf := Get(1, min(kcPanel, K)*min(ncPanel, n))
	panel := buf.Data
	for jc := 0; jc < n; jc += ncPanel {
		w := min(ncPanel, n-jc)
		for kc := 0; kc < K; kc += kcPanel {
			h := min(kcPanel, K-kc)
			for t := 0; t < h; t++ {
				copy(panel[t*w:(t+1)*w], b.Data[(kc+t)*n+jc:(kc+t)*n+jc+w])
			}
			if kc == 0 {
				for i := lo; i < hi; i++ {
					productRow(a.Data[i*a.Cols+kc:i*a.Cols+kc+h], panel, w, dst.Data[i*n+jc:i*n+jc+w])
				}
			} else {
				for i := lo; i < hi; i++ {
					accumRow(a.Data[i*a.Cols+kc:i*a.Cols+kc+h], panel, w, dst.Data[i*n+jc:i*n+jc+w])
				}
			}
		}
	}
	Put(buf)
}

// MatMulInto computes a·b into dst (a.Rows×b.Cols) and returns dst. Large
// B operands take the packed cache-blocked path; either way the inner
// loops are 4×-unrolled with a fixed accumulation order, and parallel
// fan-out splits only output rows, so results are bit-identical across
// worker counts and run-to-run.
func MatMulInto(a, b, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmul dst", dst, a.Rows, b.Cols)
	kernel := matMulRowsPlain
	if b.Rows*b.Cols >= packMinElems {
		kernel = matMulRowsPacked
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		kernel(a, b, dst, 0, a.Rows)
		return dst
	}
	parallel.RunChunks(a.Rows, parallel.DefaultWorkers(), func(lo, hi int) {
		kernel(a, b, dst, lo, hi)
	})
	return dst
}

// MatMulTanhInto computes tanh(a·b) into dst: the activation is applied in
// the store loop while each freshly computed output row is still hot.
func MatMulTanhInto(a, b, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul-tanh shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmul-tanh dst", dst, a.Rows, b.Cols)
	n := b.Cols
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := dst.Data[i*n : (i+1)*n]
			productRow(a.Data[i*a.Cols:(i+1)*a.Cols], b.Data, n, orow)
			for j, v := range orow {
				orow[j] = math.Tanh(v)
			}
		}
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		rowRange(0, a.Rows)
		return dst
	}
	parallel.RunChunks(a.Rows, parallel.DefaultWorkers(), rowRange)
	return dst
}

// ConcatMatMulTanhInto computes tanh(concat(x[:, lo:hi], y)·b) into dst
// without materializing the slice or the concatenation: each operand row
// is assembled in a worker-local scratch and fed to the same productRow
// kernel MatMulTanhInto uses, so the result is bit-identical to slicing,
// concatenating, and calling MatMulTanhInto.
func ConcatMatMulTanhInto(x *Matrix, lo, hi int, y, b, dst *Matrix) *Matrix {
	if lo < 0 || hi > x.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: concat-matmul-tanh slice [%d,%d) of %d", lo, hi, x.Cols))
	}
	k1, k2 := hi-lo, y.Cols
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("tensor: concat-matmul-tanh row mismatch %d vs %d", x.Rows, y.Rows))
	}
	if b.Rows != k1+k2 {
		panic(fmt.Sprintf("tensor: concat-matmul-tanh shape mismatch %d+%d cols · %dx%d", k1, k2, b.Rows, b.Cols))
	}
	mustShape("concat-matmul-tanh dst", dst, x.Rows, b.Cols)
	n := b.Cols
	rowRange := func(rlo, rhi int) {
		buf := Get(1, k1+k2)
		crow := buf.Data
		for i := rlo; i < rhi; i++ {
			copy(crow[:k1], x.Data[i*x.Cols+lo:i*x.Cols+hi])
			copy(crow[k1:], y.Data[i*k2:(i+1)*k2])
			orow := dst.Data[i*n : (i+1)*n]
			productRow(crow, b.Data, n, orow)
			for j, v := range orow {
				orow[j] = math.Tanh(v)
			}
		}
		Put(buf)
	}
	work := x.Rows * (k1 + k2) * n
	if work < parallelThreshold {
		rowRange(0, x.Rows)
		return dst
	}
	parallel.RunChunks(x.Rows, parallel.DefaultWorkers(), rowRange)
	return dst
}

// GatherMatMulInto computes gather(a, idx)·b into dst (len(idx)×b.Cols)
// without materializing the gathered matrix: each source row is read in
// place through the index indirection.
func GatherMatMulInto(a *Matrix, idx []int, b, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: gather-matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("gather-matmul dst", dst, len(idx), b.Cols)
	checkGather(idx, a.Rows)
	n := b.Cols
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := idx[i]
			productRow(a.Data[r*a.Cols:(r+1)*a.Cols], b.Data, n, dst.Data[i*n:(i+1)*n])
		}
	}
	work := len(idx) * a.Cols * b.Cols
	if work < parallelThreshold {
		rowRange(0, len(idx))
		return dst
	}
	parallel.RunChunks(len(idx), parallel.DefaultWorkers(), rowRange)
	return dst
}

// GatherMatMulAddTanhInto computes tanh(gather(a, idx)·b + add) into dst —
// the fused forward step of one GNN message transform: gather reads rows
// in place, the additive term (nil to skip) and the activation are applied
// in the store loop, and no intermediate matrix is ever materialized.
func GatherMatMulAddTanhInto(a *Matrix, idx []int, b, add, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: gather-matmul-add-tanh shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("gather-matmul-add-tanh dst", dst, len(idx), b.Cols)
	if add != nil {
		mustShape("gather-matmul-add-tanh add", add, len(idx), b.Cols)
	}
	checkGather(idx, a.Rows)
	n := b.Cols
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := idx[i]
			orow := dst.Data[i*n : (i+1)*n]
			productRow(a.Data[r*a.Cols:(r+1)*a.Cols], b.Data, n, orow)
			if add != nil {
				arow := add.Data[i*n : (i+1)*n]
				for j, v := range orow {
					orow[j] = math.Tanh(v + arow[j])
				}
			} else {
				for j, v := range orow {
					orow[j] = math.Tanh(v)
				}
			}
		}
	}
	work := len(idx) * a.Cols * b.Cols
	if work < parallelThreshold {
		rowRange(0, len(idx))
		return dst
	}
	parallel.RunChunks(len(idx), parallel.DefaultWorkers(), rowRange)
	return dst
}

// MatMulT1Into computes aᵀ·b into dst (a.Cols×b.Cols) and returns dst.
// The i dimension (a's rows) is register-blocked by 4 with a fixed
// ascending order; parallel fan-out splits dst rows, so every output
// element accumulates in the same order at any worker count.
func MatMulT1Into(a, b, dst *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT1 shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulT1 dst", dst, a.Cols, b.Cols)
	colRange := func(lo, hi int) { matMulT1Range(a.Data, a.Cols, b, dst, lo, hi, nil) }
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		colRange(0, a.Cols)
		return dst
	}
	parallel.RunChunks(a.Cols, parallel.DefaultWorkers(), colRange)
	return dst
}

// GatherMatMulT1Into computes gather(a, idx)ᵀ·b into dst (a.Cols×b.Cols) —
// the weight-gradient half of the fused gather∘matmul backward pass,
// again without materializing the gathered matrix.
func GatherMatMulT1Into(a *Matrix, idx []int, b, dst *Matrix) *Matrix {
	if len(idx) != b.Rows {
		panic(fmt.Sprintf("tensor: gather-matmulT1 shape mismatch %d rows ᵀ· %dx%d", len(idx), b.Rows, b.Cols))
	}
	mustShape("gather-matmulT1 dst", dst, a.Cols, b.Cols)
	checkGather(idx, a.Rows)
	colRange := func(lo, hi int) { matMulT1Range(a.Data, a.Cols, b, dst, lo, hi, idx) }
	work := len(idx) * a.Cols * b.Cols
	if work < parallelThreshold {
		colRange(0, a.Cols)
		return dst
	}
	parallel.RunChunks(a.Cols, parallel.DefaultWorkers(), colRange)
	return dst
}

// matMulT1Range fills dst rows [lo, hi) of aᵀ·b, optionally reading a's
// rows through idx (gather fusion). The first i-quad assigns each dst row
// so no zeroing pass is needed; remaining quads and the scalar tail
// accumulate in ascending i order.
func matMulT1Range(aData []float64, aCols int, b, dst *Matrix, lo, hi int, idx []int) {
	rows, n := b.Rows, b.Cols
	arow := func(i int) []float64 {
		r := i
		if idx != nil {
			r = idx[i]
		}
		return aData[r*aCols : (r+1)*aCols]
	}
	if rows < 4 {
		for k := lo; k < hi; k++ {
			orow := dst.Data[k*n : (k+1)*n]
			for j := range orow {
				orow[j] = 0
			}
		}
		for i := 0; i < rows; i++ {
			a0, b0 := arow(i), b.Data[i*n:(i+1)*n]
			for k := lo; k < hi; k++ {
				Axpy(a0[k], b0, dst.Data[k*n:(k+1)*n])
			}
		}
		return
	}
	a0, a1, a2, a3 := arow(0), arow(1), arow(2), arow(3)
	b0, b1, b2, b3 := b.Data[0:n], b.Data[n:2*n], b.Data[2*n:3*n], b.Data[3*n:4*n]
	for k := lo; k < hi; k++ {
		quadAxpySet(a0[k], a1[k], a2[k], a3[k], b0, b1, b2, b3, dst.Data[k*n:(k+1)*n])
	}
	i := 4
	for ; i+4 <= rows; i += 4 {
		a0, a1, a2, a3 = arow(i), arow(i+1), arow(i+2), arow(i+3)
		b0, b1, b2, b3 = b.Data[i*n:(i+1)*n], b.Data[(i+1)*n:(i+2)*n], b.Data[(i+2)*n:(i+3)*n], b.Data[(i+3)*n:(i+4)*n]
		for k := lo; k < hi; k++ {
			quadAxpy(a0[k], a1[k], a2[k], a3[k], b0, b1, b2, b3, dst.Data[k*n:(k+1)*n])
		}
	}
	for ; i < rows; i++ {
		av, bv := arow(i), b.Data[i*n:(i+1)*n]
		for k := lo; k < hi; k++ {
			Axpy(av[k], bv, dst.Data[k*n:(k+1)*n])
		}
	}
}

// MatMulT2Into computes a·bᵀ into dst (a.Rows×b.Rows) and returns dst.
// Each output element is an unrolled four-lane dot product.
func MatMulT2Into(a, b, dst *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT2 shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulT2 dst", dst, a.Rows, b.Rows)
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := dst.Data[i*b.Rows : (i+1)*b.Rows]
			for j := range orow {
				orow[j] = Dot(arow, b.Data[j*b.Cols:(j+1)*b.Cols])
			}
		}
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		rowRange(0, a.Rows)
		return dst
	}
	parallel.RunChunks(a.Rows, parallel.DefaultWorkers(), rowRange)
	return dst
}

// affineKind selects the epilogue of the fused affine kernel.
type affineKind int

const (
	affinePlain affineKind = iota
	affineTanh
)

// matMulT2BiasInto computes f(a·bᵀ + bias) into dst where bias is 1×b.Rows
// and f is the selected epilogue — the fused forward pass of nn.Linear
// (y = x·Wᵀ + b), with no transposed weight copy and, for affineTanh, the
// activation applied in the store loop.
func matMulT2BiasInto(a, b, bias, dst *Matrix, kind affineKind) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: affine shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias.Rows != 1 || bias.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: affine bias shape %dx%d, want 1x%d", bias.Rows, bias.Cols, b.Rows))
	}
	mustShape("affine dst", dst, a.Rows, b.Rows)
	bd := bias.Data
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := dst.Data[i*b.Rows : (i+1)*b.Rows]
			for j := range orow {
				s := Dot(arow, b.Data[j*b.Cols:(j+1)*b.Cols]) + bd[j]
				if kind == affineTanh {
					s = math.Tanh(s)
				}
				orow[j] = s
			}
		}
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		rowRange(0, a.Rows)
		return dst
	}
	parallel.RunChunks(a.Rows, parallel.DefaultWorkers(), rowRange)
	return dst
}

// MatMulT2BiasInto computes a·bᵀ + broadcast(bias) into dst.
func MatMulT2BiasInto(a, b, bias, dst *Matrix) *Matrix {
	return matMulT2BiasInto(a, b, bias, dst, affinePlain)
}

// MatMulT2BiasTanhInto computes tanh(a·bᵀ + broadcast(bias)) into dst.
func MatMulT2BiasTanhInto(a, b, bias, dst *Matrix) *Matrix {
	return matMulT2BiasInto(a, b, bias, dst, affineTanh)
}

// checkGather validates gather indices against the source row count.
func checkGather(idx []int, rows int) {
	for _, r := range idx {
		if r < 0 || r >= rows {
			panic(fmt.Sprintf("tensor: gather row %d out of range [0,%d)", r, rows))
		}
	}
}

// TanhInto computes element-wise tanh of a into dst (dst may alias a).
func TanhInto(a, dst *Matrix) *Matrix {
	mustShape("tanh dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = math.Tanh(v)
	}
	return dst
}

// SigmoidInto computes the element-wise logistic sigmoid of a into dst
// (dst may alias a).
func SigmoidInto(a, dst *Matrix) *Matrix {
	mustShape("sigmoid dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return dst
}

// ReLUInto computes element-wise max(0, x) of a into dst (dst may alias a).
func ReLUInto(a, dst *Matrix) *Matrix {
	mustShape("relu dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// TanhGradInto computes dst = g ⊙ (1 - y²) where y = tanh(x) is the
// forward output — the backward loop of every fused-tanh op.
func TanhGradInto(g, y, dst *Matrix) *Matrix {
	mustSameShape("tanh-grad", g, y)
	mustShape("tanh-grad dst", dst, g.Rows, g.Cols)
	yd := y.Data
	for i, gv := range g.Data {
		yv := yd[i]
		dst.Data[i] = gv * (1 - yv*yv)
	}
	return dst
}

// SigmoidGradInto computes dst = g ⊙ y ⊙ (1 - y) for forward output y.
func SigmoidGradInto(g, y, dst *Matrix) *Matrix {
	mustSameShape("sigmoid-grad", g, y)
	mustShape("sigmoid-grad dst", dst, g.Rows, g.Cols)
	yd := y.Data
	for i, gv := range g.Data {
		yv := yd[i]
		dst.Data[i] = gv * yv * (1 - yv)
	}
	return dst
}

// ReLUGradInto computes dst = g where x > 0, else 0, for forward input x.
func ReLUGradInto(g, x, dst *Matrix) *Matrix {
	mustSameShape("relu-grad", g, x)
	mustShape("relu-grad dst", dst, g.Rows, g.Cols)
	xd := x.Data
	for i, gv := range g.Data {
		if xd[i] > 0 {
			dst.Data[i] = gv
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// ColSumsInto sums a's rows into the 1×a.Cols vector dst (the bias
// gradient of an affine layer).
func ColSumsInto(a, dst *Matrix) *Matrix {
	mustShape("col-sums dst", dst, 1, a.Cols)
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		Axpy(1, a.Data[i*a.Cols:(i+1)*a.Cols], dst.Data)
	}
	return dst
}
