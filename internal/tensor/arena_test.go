package tensor

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

func TestArenaGetShapes(t *testing.T) {
	m := Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("Get(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	Put(m)
	// Same element count, different shape: the header must be reshaped.
	r := Get(2, 6)
	if r.Rows != 2 || r.Cols != 6 || len(r.Data) != 12 {
		t.Fatalf("Get(2,6) = %dx%d len %d", r.Rows, r.Cols, len(r.Data))
	}
	Put(r)
}

func TestArenaGetZeroed(t *testing.T) {
	m := Get(5, 5)
	for i := range m.Data {
		m.Data[i] = 42
	}
	Put(m)
	z := GetZeroed(5, 5)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed element %d = %g", i, v)
		}
	}
	Put(z)
}

func TestArenaEmptyAndNil(t *testing.T) {
	Put(nil) // must not panic
	e := Get(0, 3)
	if e.Rows != 0 || e.Cols != 3 {
		t.Fatalf("Get(0,3) = %dx%d", e.Rows, e.Cols)
	}
	Put(e) // empty matrices are ignored, must not panic
}

func TestArenaOutstandingBuffersDontAlias(t *testing.T) {
	a := Get(4, 4)
	b := Get(4, 4)
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two outstanding Gets share a backing slice")
	}
	for i := range a.Data {
		a.Data[i] = 1
	}
	for i := range b.Data {
		b.Data[i] = 2
	}
	for i := range a.Data {
		if a.Data[i] != 1 {
			t.Fatalf("write to b clobbered a at %d", i)
		}
	}
	Put(a)
	Put(b)
}

// TestArenaConcurrentGetPut hammers the arena from parallel workers; under
// -race this verifies pooled buffers are never handed to two goroutines at
// once.
func TestArenaConcurrentGetPut(t *testing.T) {
	var bad atomic.Int64
	parallel.ForEach(64, 0, func(w int) {
		for iter := 0; iter < 200; iter++ {
			m := Get(8, 8)
			val := float64(w*1000 + iter)
			for i := range m.Data {
				m.Data[i] = val
			}
			for i := range m.Data {
				if m.Data[i] != val {
					bad.Add(1)
				}
			}
			Put(m)
		}
	})
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d elements clobbered while a buffer was owned", n)
	}
}

// Naive reference kernels (ascending-k scalar accumulation). The blocked
// production kernels use a different — but fixed — accumulation order, so
// products are compared within a tight tolerance here; bitwise
// determinism of the blocked kernels themselves is covered by
// kernels_test.go.

func refMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*b.Cols+j] = s
		}
	}
	return out
}

func refMatMulT1(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Cols; k++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for i := 0; i < a.Rows; i++ {
				s += a.Data[i*a.Cols+k] * b.Data[i*b.Cols+j]
			}
			out.Data[k*b.Cols+j] = s
		}
	}
	return out
}

func refMatMulT2(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[j*b.Cols+k]
			}
			out.Data[i*b.Rows+j] = s
		}
	}
	return out
}

func mustEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got.Data[i], want.Data[i])
		}
	}
}

func TestIntoKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Small shapes take the serial path; the large ones cross
	// parallelThreshold (2^16 flops) and exercise the row-blocked fan-out.
	for _, sz := range []struct{ m, k, n int }{{5, 7, 3}, {64, 80, 96}} {
		a := New(sz.m, sz.k)
		b := New(sz.k, sz.n)
		a.RandUniform(rng, 1)
		b.RandUniform(rng, 1)
		mustEqual(t, "MatMulInto", MatMulInto(a, b, Get(sz.m, sz.n)), refMatMul(a, b))

		at := New(sz.k, sz.m) // for T1: (k×m)ᵀ·(k×n)
		bt := New(sz.k, sz.n)
		at.RandUniform(rng, 1)
		bt.RandUniform(rng, 1)
		mustEqual(t, "MatMulT1Into", MatMulT1Into(at, bt, Get(sz.m, sz.n)), refMatMulT1(at, bt))

		a2 := New(sz.m, sz.k) // for T2: (m×k)·(n×k)ᵀ
		b2 := New(sz.n, sz.k)
		a2.RandUniform(rng, 1)
		b2.RandUniform(rng, 1)
		mustEqual(t, "MatMulT2Into", MatMulT2Into(a2, b2, Get(sz.m, sz.n)), refMatMulT2(a2, b2))
	}
}

func TestIntoKernelsSafeOnDirtyArenaMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(6, 6)
	b := New(6, 6)
	a.RandUniform(rng, 1)
	b.RandUniform(rng, 1)
	// Poison a pooled buffer, return it, and reuse it as a destination:
	// every Into kernel must fully define dst.
	dirty := Get(6, 6)
	for i := range dirty.Data {
		dirty.Data[i] = 1e300
	}
	Put(dirty)
	dst := Get(6, 6)
	mustEqual(t, "MatMulInto on dirty dst", MatMulInto(a, b, dst), refMatMul(a, b))
	Put(dst)
}

func TestElementwiseIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 5)
	b := New(4, 5)
	a.RandUniform(rng, 1)
	b.RandUniform(rng, 1)
	want := Add(a, b)
	got := a.Clone()
	AddInto(got, b, got) // dst aliases a
	mustEqual(t, "AddInto aliased", got, want)

	wantS := Scale(a, 2.5)
	gotS := a.Clone()
	ScaleInto(gotS, 2.5, gotS)
	mustEqual(t, "ScaleInto aliased", gotS, wantS)
}

func TestSegmentMeanParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rows, cols, segments = 1100, 64, 17 // rows*cols ≥ 2^16 → parallel path
	a := New(rows, cols)
	a.RandUniform(rng, 1)
	seg := make([]int, rows)
	for i := range seg {
		seg[i] = rng.Intn(segments - 1) // segment 16 stays empty
	}
	got := SegmentMeanInto(a, seg, segments, Get(segments, cols))
	// Reference: ascending-row accumulation then one multiply by 1/count —
	// the exact order both the serial and parallel kernels use.
	want := New(segments, cols)
	counts := make([]float64, segments)
	for i, s := range seg {
		counts[s]++
		for j := 0; j < cols; j++ {
			want.Data[s*cols+j] += a.Data[i*cols+j]
		}
	}
	for s := range counts {
		if counts[s] == 0 {
			continue
		}
		inv := 1 / counts[s]
		for j := 0; j < cols; j++ {
			want.Data[s*cols+j] *= inv
		}
	}
	mustEqual(t, "SegmentMeanInto parallel", got, want)
	for j := 0; j < cols; j++ {
		if got.Data[16*cols+j] != 0 {
			t.Fatal("empty segment not zeroed")
		}
	}
	Put(got)
}

func TestScatterAddRowsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rows, cols, dstRows = 1100, 64, 50 // rows*cols ≥ 2^16 → parallel path
	src := New(rows, cols)
	src.RandUniform(rng, 1)
	idx := make([]int, rows)
	for i := range idx {
		idx[i] = rng.Intn(dstRows)
	}
	base := New(dstRows, cols)
	base.RandUniform(rng, 1)

	want := base.Clone()
	ScatterAddRows(want, src, idx)
	got := base.Clone()
	ScatterAddRowsPar(got, src, idx)
	mustEqual(t, "ScatterAddRowsPar", got, want)
}

func TestIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dst shape")
		}
	}()
	MatMulInto(New(2, 3), New(3, 4), New(2, 5))
}
