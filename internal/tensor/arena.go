// arena.go implements a size-classed scratch arena for matrices on the
// training hot path. Every matrix of the same element count shares one
// sync.Pool, so a reused buffer is recycled across goroutines without a
// global lock and is dropped by the GC under memory pressure (sync.Pool
// semantics) rather than pinned forever.
//
// Ownership discipline: a matrix obtained from Get is owned by the caller
// until Put; after Put the buffer may be handed to any other Get of the
// same element count, so retaining a reference past Put is an aliasing
// bug. The autodiff tape is the main client — it allocates every op
// output and gradient here and returns them in Tape.Reset.
package tensor

import "sync"

// pools maps an element count to the pool of matrices with exactly that
// backing-slice length. Shapes with equal element counts (2×6 and 3×4)
// share a class; Get reshapes the header.
var pools sync.Map // int → *sync.Pool

func poolFor(n int) *sync.Pool {
	if p, ok := pools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := pools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// Get returns a rows×cols matrix from the arena. The contents are
// UNSPECIFIED (stale data from a previous user); callers must fully
// overwrite it or use GetZeroed. Return it with Put when done.
func Get(rows, cols int) *Matrix {
	n := rows * cols
	if n <= 0 {
		return New(rows, cols)
	}
	if v := poolFor(n).Get(); v != nil {
		m := v.(*Matrix)
		m.Rows, m.Cols = rows, cols
		return m
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n)}
}

// GetZeroed returns a zeroed rows×cols matrix from the arena.
func GetZeroed(rows, cols int) *Matrix {
	m := Get(rows, cols)
	m.Zero()
	return m
}

// Put returns a matrix to the arena. m must not be used afterwards. nil
// and empty matrices are ignored, so Put is safe on any Get result.
func Put(m *Matrix) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	poolFor(len(m.Data)).Put(m)
}
