// scope.go provides a Scope: a bulk-release handle over arena borrows for
// tape-free forward passes. The autodiff tape already tracks and recycles
// every matrix it creates via Reset; inference code that bypasses the tape
// needs the same discipline without the tape, so a Scope records each Get
// and returns everything in one Release. A released Scope is reusable (and
// poolable): the borrow list keeps its capacity, so a steady-state forward
// pass borrows every buffer from the arena and allocates nothing.
package tensor

// Scope tracks matrices borrowed from the arena so they can be released
// together. Not safe for concurrent use; drive one Scope per goroutine.
type Scope struct {
	borrowed []*Matrix
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{} }

// Get borrows a rows×cols matrix from the arena; contents are UNSPECIFIED
// (as with tensor.Get) and the matrix is valid until Release.
func (s *Scope) Get(rows, cols int) *Matrix {
	m := Get(rows, cols)
	s.borrowed = append(s.borrowed, m)
	return m
}

// GetZeroed borrows a zeroed rows×cols matrix, valid until Release.
func (s *Scope) GetZeroed(rows, cols int) *Matrix {
	m := GetZeroed(rows, cols)
	s.borrowed = append(s.borrowed, m)
	return m
}

// Release returns every borrowed matrix to the arena. The scope itself
// remains usable; matrices obtained from it must not be used afterwards.
func (s *Scope) Release() {
	for i, m := range s.borrowed {
		Put(m)
		s.borrowed[i] = nil
	}
	s.borrowed = s.borrowed[:0]
}

// TransposeInto writes aᵀ into dst (a.Cols×a.Rows) and returns dst. The
// element order matches the tape's Transpose op exactly.
func TransposeInto(a, dst *Matrix) *Matrix {
	mustShape("transpose dst", dst, a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return dst
}

// ConcatColsInto writes the horizontal concatenation of parts into dst
// (rows × Σcols) and returns dst, copying row-by-row in the same order as
// the tape's ConcatCols op.
func ConcatColsInto(dst *Matrix, parts ...*Matrix) *Matrix {
	rows := parts[0].Rows
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic("tensor: concat-cols row mismatch")
		}
		cols += p.Cols
	}
	mustShape("concat-cols dst", dst, rows, cols)
	for i := 0; i < rows; i++ {
		orow := dst.Row(i)
		off := 0
		for _, p := range parts {
			copy(orow[off:off+p.Cols], p.Row(i))
			off += p.Cols
		}
	}
	return dst
}
