// csr.go holds the CSR-native segment kernels: variants of SegmentMean /
// ScatterAddRows that take a prebuilt bucket structure (offsets + member
// row ids, as produced by stream.Graph.Adjacency or bucketByKey) instead
// of re-bucketing a segment-id vector on every call, plus the fused
// gather-project-mean kernel the zero-tape inference path uses so the E×M
// message matrix is never materialized.
//
// Determinism contract (see kernels.go): members inside one bucket must be
// ascending, matching the order bucketByKey produces. Each bucket then
// accumulates in exactly the order the seg-vector kernels use, so every
// CSR kernel is bit-identical to its seg-vector twin at any GOMAXPROCS.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// checkCSR validates a bucket structure against the member row universe.
func checkCSR(op string, offs []int32, members []int, rows int) {
	if len(offs) == 0 {
		panic("tensor: " + op + " empty offsets")
	}
	if int(offs[len(offs)-1]) != len(members) || offs[0] != 0 {
		panic(fmt.Sprintf("tensor: %s offsets cover [%d,%d), want [0,%d)", op, offs[0], offs[len(offs)-1], len(members)))
	}
	for _, i := range members {
		if i < 0 || i >= rows {
			panic(fmt.Sprintf("tensor: %s member row %d out of range [0,%d)", op, i, rows))
		}
	}
}

// SegmentMeanCSRInto averages rows of a per bucket into dst
// ((len(offs)-1)×a.Cols): dst.Row(s) is the mean of a.Row(i) over i in
// members[offs[s]:offs[s+1]], zero for empty buckets. With buckets built
// from the same segment vector, the result is bit-identical to
// SegmentMeanInto — but the bucketing happens once per graph instead of
// once per call.
func SegmentMeanCSRInto(a *Matrix, offs []int32, members []int, dst *Matrix) *Matrix {
	segments := len(offs) - 1
	mustShape("segment-mean-csr dst", dst, segments, a.Cols)
	checkCSR("segment-mean-csr", offs, members, a.Rows)
	segRange := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			for j := range orow {
				orow[j] = 0
			}
			mlo, mhi := offs[s], offs[s+1]
			if mlo == mhi {
				continue
			}
			for _, i := range members[mlo:mhi] {
				arow := a.Row(i)
				for j, v := range arow {
					orow[j] += v
				}
			}
			inv := 1 / float64(mhi-mlo)
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
	if len(members)*a.Cols < parallelThreshold {
		segRange(0, segments)
		return dst
	}
	parallel.RunChunks(segments, parallel.DefaultWorkers(), segRange)
	return dst
}

// ScatterAddRowsCSR adds src.Row(i) into dst.Row(s) for every i in bucket
// s — the CSR twin of ScatterAddRowsPar(dst, src, idx) with buckets built
// from idx. Every dst row is owned by one worker and members ascend, so
// the result is bit-identical to the serial scatter at any GOMAXPROCS.
func ScatterAddRowsCSR(dst, src *Matrix, offs []int32, members []int) {
	if len(offs)-1 != dst.Rows || src.Cols != dst.Cols {
		panic("tensor: scatter-add-csr shape mismatch")
	}
	checkCSR("scatter-add-csr", offs, members, src.Rows)
	rowRange := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			mlo, mhi := offs[s], offs[s+1]
			if mlo == mhi {
				continue
			}
			drow := dst.Row(s)
			for _, i := range members[mlo:mhi] {
				srow := src.Row(i)
				for j, v := range srow {
					drow[j] += v
				}
			}
		}
	}
	if len(members)*src.Cols < parallelThreshold {
		rowRange(0, dst.Rows)
		return
	}
	parallel.RunChunks(dst.Rows, parallel.DefaultWorkers(), rowRange)
}

// GatherMatMulAddTanhSegMeanCSRInto fuses one whole GNN message hop for
// the inference path: dst.Row(s) = mean over bucket-s members e of
// tanh(a.Row(idx[e])·b + add.Row(e)), with add nil to skip the additive
// term. Each member row is computed into a worker-local scratch and
// accumulated immediately, so the E×M message matrix never exists — at a
// million edges that is the difference between O(N·M) and O(E·M) live
// memory. Per-row arithmetic matches GatherMatMulAddTanhInto and the
// bucket accumulation matches SegmentMeanCSRInto, so the result is
// bit-identical to the unfused pair.
func GatherMatMulAddTanhSegMeanCSRInto(a *Matrix, idx []int, b, add *Matrix, offs []int32, members []int, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: gather-mean-csr shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	segments := len(offs) - 1
	n := b.Cols
	mustShape("gather-mean-csr dst", dst, segments, n)
	if add != nil {
		mustShape("gather-mean-csr add", add, len(idx), n)
	}
	checkGather(idx, a.Rows)
	checkCSR("gather-mean-csr", offs, members, len(idx))
	segRange := func(lo, hi int) {
		buf := Get(1, n)
		row := buf.Data
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			for j := range orow {
				orow[j] = 0
			}
			mlo, mhi := offs[s], offs[s+1]
			if mlo == mhi {
				continue
			}
			for _, e := range members[mlo:mhi] {
				r := idx[e]
				productRow(a.Data[r*a.Cols:(r+1)*a.Cols], b.Data, n, row)
				if add != nil {
					arow := add.Data[e*n : (e+1)*n]
					for j, v := range row {
						row[j] = math.Tanh(v + arow[j])
					}
				} else {
					for j, v := range row {
						row[j] = math.Tanh(v)
					}
				}
				for j, v := range row {
					orow[j] += v
				}
			}
			inv := 1 / float64(mhi-mlo)
			for j := range orow {
				orow[j] *= inv
			}
		}
		Put(buf)
	}
	work := len(members) * a.Cols * n
	if work < parallelThreshold {
		segRange(0, segments)
		return dst
	}
	parallel.RunChunks(segments, parallel.DefaultWorkers(), segRange)
	return dst
}
