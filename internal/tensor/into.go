// into.go provides destination-passing variants of the element-wise and
// reduction kernels. Each …Into fully defines dst (no kernel reads stale
// dst contents), so a dst obtained from the arena's Get — whose contents
// are unspecified — is always safe. The allocating kernels in tensor.go
// delegate here; the matrix-product and fused kernels live in kernels.go.
//
// Element-wise kernels (AddInto, SubInto, MulInto, ScaleInto, ApplyInto,
// AddRowVectorInto) permit dst to alias an input. The matrix-product
// kernels do not: dst must not overlap a or b.
package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// AddInto computes a+b into dst (dst may alias a or b) and returns dst.
func AddInto(a, b, dst *Matrix) *Matrix {
	mustSameShape("add", a, b)
	mustShape("add dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// SubInto computes a-b into dst (dst may alias a or b) and returns dst.
func SubInto(a, b, dst *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	mustShape("sub dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// MulInto computes the Hadamard product a⊙b into dst (dst may alias a or
// b) and returns dst.
func MulInto(a, b, dst *Matrix) *Matrix {
	mustSameShape("mul", a, b)
	mustShape("mul dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
	return dst
}

// ScaleInto computes a·s into dst (dst may alias a) and returns dst.
func ScaleInto(a *Matrix, s float64, dst *Matrix) *Matrix {
	mustShape("scale dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v * s
	}
	return dst
}

// AddRowVectorInto computes a + broadcast(v) into dst (dst may alias a)
// and returns dst. v is 1×a.Cols.
func AddRowVectorInto(a, v, dst *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: add-row-vector shape mismatch %dx%d + %dx%d", a.Rows, a.Cols, v.Rows, v.Cols))
	}
	mustShape("add-row-vector dst", dst, a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j, av := range arow {
			orow[j] = av + v.Data[j]
		}
	}
	return dst
}

// ApplyInto maps f over every element of a into dst (dst may alias a) and
// returns dst.
func ApplyInto(a *Matrix, f func(float64) float64, dst *Matrix) *Matrix {
	mustShape("apply dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// GatherRowsInto copies a.Row(idx[i]) into dst.Row(i) and returns dst.
func GatherRowsInto(a *Matrix, idx []int, dst *Matrix) *Matrix {
	mustShape("gather dst", dst, len(idx), a.Cols)
	for i, r := range idx {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("tensor: gather row %d out of range [0,%d)", r, a.Rows))
		}
		copy(dst.Row(i), a.Row(r))
	}
	return dst
}

// SegmentMeanInto averages the rows of a per segment id into dst
// (segments×a.Cols) and returns dst. Large inputs are parallelized over
// segment blocks: every dst row is owned by one worker and members are
// accumulated in ascending row order, so the result is bit-identical to
// the serial kernel.
func SegmentMeanInto(a *Matrix, seg []int, segments int, dst *Matrix) *Matrix {
	if len(seg) != a.Rows {
		panic("tensor: segment-mean index length mismatch")
	}
	mustShape("segment-mean dst", dst, segments, a.Cols)
	for _, s := range seg {
		if s < 0 || s >= segments {
			panic(fmt.Sprintf("tensor: segment id %d out of range [0,%d)", s, segments))
		}
	}
	if a.Rows*a.Cols < parallelThreshold {
		dst.Zero()
		counts := Get(1, segments)
		cd := counts.Data
		for i := range cd {
			cd[i] = 0
		}
		for i, s := range seg {
			cd[s]++
			orow := dst.Row(s)
			arow := a.Row(i)
			for j, v := range arow {
				orow[j] += v
			}
		}
		for s := 0; s < segments; s++ {
			if cd[s] == 0 {
				continue
			}
			inv := 1 / cd[s]
			orow := dst.Row(s)
			for j := range orow {
				orow[j] *= inv
			}
		}
		Put(counts)
		return dst
	}
	// Parallel path: bucket member rows per segment (counting sort keeps
	// them in ascending row order), then fan out over segment blocks.
	offs, members := bucketByKey(seg, segments)
	parallel.RunChunks(segments, parallel.DefaultWorkers(), func(clo, chi int) {
		for s := clo; s < chi; s++ {
			orow := dst.Row(s)
			for j := range orow {
				orow[j] = 0
			}
			lo, hi := offs[s], offs[s+1]
			if lo == hi {
				continue
			}
			for _, i := range members[lo:hi] {
				arow := a.Row(int(i))
				for j, v := range arow {
					orow[j] += v
				}
			}
			inv := 1 / float64(hi-lo)
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
	return dst
}

// ScatterAddRowsPar adds each row i of src into dst.Row(idx[i]), fanning
// out over destination-row blocks for large inputs. Every dst row is
// owned by one worker and source rows are applied in ascending order, so
// the result is bit-identical to the serial ScatterAddRows.
func ScatterAddRowsPar(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic("tensor: scatter-add shape mismatch")
	}
	if src.Rows*src.Cols < parallelThreshold {
		ScatterAddRows(dst, src, idx)
		return
	}
	for _, r := range idx {
		if r < 0 || r >= dst.Rows {
			panic(fmt.Sprintf("tensor: scatter row %d out of range [0,%d)", r, dst.Rows))
		}
	}
	offs, members := bucketByKey(idx, dst.Rows)
	parallel.RunChunks(dst.Rows, parallel.DefaultWorkers(), func(clo, chi int) {
		for r := clo; r < chi; r++ {
			lo, hi := offs[r], offs[r+1]
			if lo == hi {
				continue
			}
			drow := dst.Row(r)
			for _, i := range members[lo:hi] {
				srow := src.Row(int(i))
				for j, v := range srow {
					drow[j] += v
				}
			}
		}
	})
}

// bucketByKey counting-sorts the indices [0, len(key)) by key value,
// preserving ascending index order inside each bucket. It returns the
// bucket offsets (len buckets+1) and the sorted index list.
func bucketByKey(key []int, buckets int) ([]int32, []int32) {
	offs := make([]int32, buckets+1)
	for _, k := range key {
		offs[k+1]++
	}
	for b := 0; b < buckets; b++ {
		offs[b+1] += offs[b]
	}
	members := make([]int32, len(key))
	cursor := make([]int32, buckets)
	copy(cursor, offs[:buckets])
	for i, k := range key {
		members[cursor[k]] = int32(i)
		cursor[k]++
	}
	return offs, members
}

func mustShape(op string, m *Matrix, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch: have %dx%d, want %dx%d", op, m.Rows, m.Cols, rows, cols))
	}
}
