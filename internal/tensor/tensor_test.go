package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %g", m.At(1, 2))
	}
	if m.Row(1)[2] != 7 {
		t.Fatal("Row view mismatch")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Large enough to cross parallelThreshold.
	a := New(80, 90)
	b := New(90, 70)
	a.RandUniform(rng, 1)
	b.RandUniform(rng, 1)
	got := MatMul(a, b)
	// Naive reference.
	want := New(80, 70)
	for i := 0; i < 80; i++ {
		for j := 0; j < 70; j++ {
			var s float64
			for k := 0; k < 90; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !Equal(got, want, 1e-9) {
		t.Fatal("parallel matmul diverges from reference")
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 7)
	b := New(5, 4)
	a.RandUniform(rng, 1)
	b.RandUniform(rng, 1)
	// aᵀ·b == Transpose(a)·b
	if !Equal(MatMulT1(a, b), MatMul(a.Transpose(), b), 1e-12) {
		t.Fatal("MatMulT1 mismatch")
	}
	c := New(6, 7)
	c.RandUniform(rng, 1)
	// a·cᵀ == a·Transpose(c)
	if !Equal(MatMulT2(a, c), MatMul(a, c.Transpose()), 1e-12) {
		t.Fatal("MatMulT2 mismatch")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	b := FromRows([][]float64{{3, 4}})
	if !Equal(Add(a, b), FromRows([][]float64{{4, 2}}), 0) {
		t.Fatal("add")
	}
	if !Equal(Sub(a, b), FromRows([][]float64{{-2, -6}}), 0) {
		t.Fatal("sub")
	}
	if !Equal(Mul(a, b), FromRows([][]float64{{3, -8}}), 0) {
		t.Fatal("mul")
	}
	if !Equal(Scale(a, 2), FromRows([][]float64{{2, -4}}), 0) {
		t.Fatal("scale")
	}
	if !Equal(ReLU(a), FromRows([][]float64{{1, 0}}), 0) {
		t.Fatal("relu")
	}
	s := Sigmoid(FromRows([][]float64{{0}}))
	if math.Abs(s.At(0, 0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	AddInPlace(a, FromRows([][]float64{{10, 20}}))
	if a.At(0, 1) != 22 {
		t.Fatal("add in place")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10, 20}})
	got := AddRowVector(a, v)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !Equal(got, want, 0) {
		t.Fatal("add row vector")
	}
}

func TestGatherScatter(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	g := GatherRows(a, []int{2, 2, 0})
	want := FromRows([][]float64{{3, 3}, {3, 3}, {1, 1}})
	if !Equal(g, want, 0) {
		t.Fatal("gather")
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, []int{2, 2, 0})
	if dst.At(2, 0) != 6 || dst.At(0, 0) != 1 || dst.At(1, 0) != 0 {
		t.Fatalf("scatter: %v", dst)
	}
}

func TestSegmentMean(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {4, 0}, {10, 6}})
	got := SegmentMean(a, []int{0, 0, 1}, 3)
	want := FromRows([][]float64{{3, 0}, {10, 6}, {0, 0}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("segment mean: %v", got)
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	cat := ConcatCols(a, b)
	if cat.Cols != 3 || cat.At(1, 2) != 6 {
		t.Fatalf("concat: %v", cat)
	}
	sl := SliceCols(cat, 1, 3)
	if !Equal(sl, b, 0) {
		t.Fatal("slice")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromRows([][]float64{{1000, 1000}, {0, math.Log(3)}})
	s := SoftmaxRows(a)
	if math.Abs(s.At(0, 0)-0.5) > 1e-12 {
		t.Fatal("softmax overflow handling")
	}
	if math.Abs(s.At(1, 1)-0.75) > 1e-12 {
		t.Fatalf("softmax value %g", s.At(1, 1))
	}
}

func TestReductions(t *testing.T) {
	a := FromRows([][]float64{{3, -4}})
	if a.Sum() != -1 {
		t.Fatal("sum")
	}
	if a.MaxAbs() != 4 {
		t.Fatal("maxabs")
	}
	if math.Abs(a.Norm2()-5) > 1e-12 {
		t.Fatal("norm2")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(r, k), New(k, c)
		a.RandUniform(rng, 2)
		b.RandUniform(rng, 2)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return Equal(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SegmentMean preserves the column-wise weighted sum:
// Σ_s count_s · mean_s == Σ_rows.
func TestQuickSegmentMeanConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		segs := 1 + rng.Intn(5)
		a := New(rows, 3)
		a.RandUniform(rng, 2)
		idx := make([]int, rows)
		counts := make([]float64, segs)
		for i := range idx {
			idx[i] = rng.Intn(segs)
			counts[idx[i]]++
		}
		sm := SegmentMean(a, idx, segs)
		for j := 0; j < 3; j++ {
			var direct, viaMean float64
			for i := 0; i < rows; i++ {
				direct += a.At(i, j)
			}
			for s := 0; s < segs; s++ {
				viaMean += sm.At(s, j) * counts[s]
			}
			if math.Abs(direct-viaMean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(10, 20)
	m.XavierInit(rng, 20, 10)
	bound := math.Sqrt(6.0 / 30)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("value %g exceeds Xavier bound %g", v, bound)
		}
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier produced all zeros")
	}
}
