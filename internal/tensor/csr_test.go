package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// segBuckets builds the CSR bucket structure for a segment vector with the
// same counting sort bucketByKey uses (ascending members per bucket).
func segBuckets(seg []int, segments int) ([]int32, []int) {
	offs := make([]int32, segments+1)
	for _, s := range seg {
		offs[s+1]++
	}
	for b := 0; b < segments; b++ {
		offs[b+1] += offs[b]
	}
	members := make([]int, len(seg))
	cursor := append([]int32(nil), offs[:segments]...)
	for i, s := range seg {
		members[cursor[s]] = i
		cursor[s]++
	}
	return offs, members
}

func mustBitEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bits differ)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// csrShapes covers serial and parallel paths, remainder column counts, and
// sparsely populated segment spaces (empty buckets).
var csrShapes = []struct {
	rows, cols, segments int
}{
	{7, 5, 4},
	{64, 3, 70}, // more segments than rows → many empty buckets
	{300, 24, 40},
	{1100, 64, 17}, // rows*cols ≥ 2^16 → parallel path
	{3000, 31, 9},  // remainder cols on the parallel path
}

func TestSegmentMeanCSRBitIdenticalToSegVector(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, sh := range csrShapes {
		rng := rand.New(rand.NewSource(int64(sh.rows)))
		a := New(sh.rows, sh.cols)
		a.RandUniform(rng, 1)
		seg := make([]int, sh.rows)
		for i := range seg {
			seg[i] = rng.Intn(sh.segments)
		}
		want := SegmentMeanInto(a, seg, sh.segments, New(sh.segments, sh.cols))
		offs, members := segBuckets(seg, sh.segments)
		for _, procs := range []int{1, runtime.NumCPU()} {
			runtime.GOMAXPROCS(procs)
			got := SegmentMeanCSRInto(a, offs, members, New(sh.segments, sh.cols))
			mustBitEqual(t, "SegmentMeanCSRInto", got, want)
		}
	}
}

func TestScatterAddRowsCSRBitIdenticalToPar(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, sh := range csrShapes {
		rng := rand.New(rand.NewSource(int64(sh.rows + 1)))
		src := New(sh.rows, sh.cols)
		src.RandUniform(rng, 1)
		idx := make([]int, sh.rows)
		for i := range idx {
			idx[i] = rng.Intn(sh.segments)
		}
		base := New(sh.segments, sh.cols)
		base.RandUniform(rng, 1)
		want := base.Clone()
		ScatterAddRowsPar(want, src, idx)
		offs, members := segBuckets(idx, sh.segments)
		for _, procs := range []int{1, runtime.NumCPU()} {
			runtime.GOMAXPROCS(procs)
			got := base.Clone()
			ScatterAddRowsCSR(got, src, offs, members)
			mustBitEqual(t, "ScatterAddRowsCSR", got, want)
		}
	}
}

// TestGatherSegMeanCSRBitIdenticalToUnfused pins the fully fused
// gather-project-mean kernel against the unfused GatherMatMulAddTanhInto →
// SegmentMeanInto pair it replaces on the inference path.
func TestGatherSegMeanCSRBitIdenticalToUnfused(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	shapes := []struct{ nodes, edges, k, m, segments int }{
		{6, 9, 5, 3, 6},
		{40, 120, 12, 7, 40}, // remainder dims
		{200, 900, 48, 24, 200},
		{500, 3000, 24, 24, 500}, // parallel path (3000·24·24 ≥ 2^16)
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(sh.edges)))
		h := New(sh.nodes, sh.k)
		h.RandUniform(rng, 1)
		b := New(sh.k, sh.m)
		b.RandUniform(rng, 1)
		add := New(sh.edges, sh.m)
		add.RandUniform(rng, 1)
		idx := make([]int, sh.edges)
		seg := make([]int, sh.edges)
		for e := range idx {
			idx[e] = rng.Intn(sh.nodes)
			seg[e] = rng.Intn(sh.segments - 1) // last segment stays empty
		}
		offs, members := segBuckets(seg, sh.segments)
		for _, withAdd := range []bool{true, false} {
			am := add
			if !withAdd {
				am = nil
			}
			msg := GatherMatMulAddTanhInto(h, idx, b, am, New(sh.edges, sh.m))
			want := SegmentMeanInto(msg, seg, sh.segments, New(sh.segments, sh.m))
			for _, procs := range []int{1, runtime.NumCPU()} {
				runtime.GOMAXPROCS(procs)
				got := GatherMatMulAddTanhSegMeanCSRInto(h, idx, b, am, offs, members, New(sh.segments, sh.m))
				mustBitEqual(t, "GatherMatMulAddTanhSegMeanCSRInto", got, want)
			}
		}
	}
}

func TestCSRKernelRejectsBadBuckets(t *testing.T) {
	for _, fn := range []func(){
		func() { SegmentMeanCSRInto(New(3, 2), []int32{0, 1, 3}, []int{0, 1}, New(2, 2)) }, // offsets don't cover members
		func() { SegmentMeanCSRInto(New(3, 2), []int32{0, 1, 2}, []int{0, 5}, New(2, 2)) }, // member out of range
		func() { ScatterAddRowsCSR(New(2, 2), New(3, 2), []int32{0, 1, 2}, []int{0, 9}) },  // member out of range
		func() { ScatterAddRowsCSR(New(3, 2), New(3, 2), []int32{0, 1, 2}, []int{0, 1}) },  // dst rows vs buckets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on malformed CSR buckets")
				}
			}()
			fn()
		}()
	}
}
