// Package tensor implements dense float64 matrices with the handful of
// kernels the neural substrate needs: matrix multiply (goroutine
// row-blocked for large shapes), transpose-multiplies, element-wise maps,
// row gather/scatter, and segment reductions.
//
// Matrices are row-major over a flat slice; Matrix values are cheap to pass
// by pointer and are never shared mutably between goroutines by the callers
// in this repository.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major rows×cols matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// parallelThreshold is the flop count above which kernels fan out.
const parallelThreshold = 1 << 16

// MatMul returns m·o. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(a, b, &Matrix{Rows: a.Rows, Cols: b.Cols, Data: make([]float64, a.Rows*b.Cols)})
}

// MatMulT1 returns aᵀ·b, i.e. (a.Cols × b.Cols). Used for weight gradients.
func MatMulT1(a, b *Matrix) *Matrix {
	return MatMulT1Into(a, b, &Matrix{Rows: a.Cols, Cols: b.Cols, Data: make([]float64, a.Cols*b.Cols)})
}

// MatMulT2 returns a·bᵀ, i.e. (a.Rows × b.Rows). Used for input gradients.
func MatMulT2(a, b *Matrix) *Matrix {
	return MatMulT2Into(a, b, &Matrix{Rows: a.Rows, Cols: b.Rows, Data: make([]float64, a.Rows*b.Rows)})
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a+b element-wise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	return AddInto(a, b, New(a.Rows, a.Cols))
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("add-in-place", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a-b element-wise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	return SubInto(a, b, New(a.Rows, a.Cols))
}

// Mul returns the Hadamard product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	mustSameShape("mul", a, b)
	return MulInto(a, b, New(a.Rows, a.Cols))
}

// Scale returns a·s element-wise.
func Scale(a *Matrix, s float64) *Matrix {
	return ScaleInto(a, s, New(a.Rows, a.Cols))
}

// AddRowVector returns a with the 1×cols vector v added to every row.
func AddRowVector(a, v *Matrix) *Matrix {
	return AddRowVectorInto(a, v, New(a.Rows, a.Cols))
}

// Apply returns f mapped over every element.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	return ApplyInto(a, f, New(a.Rows, a.Cols))
}

// Tanh returns element-wise tanh via the specialized TanhInto loop.
func Tanh(a *Matrix) *Matrix { return TanhInto(a, New(a.Rows, a.Cols)) }

// Sigmoid returns element-wise logistic sigmoid via SigmoidInto.
func Sigmoid(a *Matrix) *Matrix { return SigmoidInto(a, New(a.Rows, a.Cols)) }

// ReLU returns element-wise max(0, x) via ReLUInto.
func ReLU(a *Matrix) *Matrix { return ReLUInto(a, New(a.Rows, a.Cols)) }

// GatherRows returns the matrix whose i-th row is a.Row(idx[i]).
func GatherRows(a *Matrix, idx []int) *Matrix {
	return GatherRowsInto(a, idx, New(len(idx), a.Cols))
}

// ScatterAddRows adds each row i of src into dst.Row(idx[i]).
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic("tensor: scatter-add shape mismatch")
	}
	for i, r := range idx {
		drow := dst.Row(r)
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// SegmentMean averages the rows of a whose segment id equals s, for each
// s in [0, segments); segments with no members yield zero rows. Large
// inputs are parallelized over segment blocks (see SegmentMeanInto).
func SegmentMean(a *Matrix, seg []int, segments int) *Matrix {
	return SegmentMeanInto(a, seg, segments, New(segments, a.Cols))
}

// ConcatCols horizontally concatenates matrices with equal row counts.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: concat-cols row mismatch")
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns columns [lo, hi) as a new matrix.
func SliceCols(a *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > a.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: slice-cols [%d,%d) of %d", lo, hi, a.Cols))
	}
	out := New(a.Rows, hi-lo)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i)[lo:hi])
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RandUniform fills m with uniform values in [-scale, scale).
func (m *Matrix) RandUniform(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// XavierInit fills m with the Glorot-uniform initialization for a layer
// with fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	scale := math.Sqrt(6 / float64(fanIn+fanOut))
	m.RandUniform(rng, scale)
}

// SoftmaxRows applies a numerically stable softmax to each row.
func SoftmaxRows(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		mx := math.Inf(-1)
		for _, v := range arow {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for j, v := range arow {
			e := math.Exp(v - mx)
			orow[j] = e
			z += e
		}
		inv := 1 / z
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// Equal reports element-wise equality within tolerance eps.
func Equal(a, b *Matrix, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
