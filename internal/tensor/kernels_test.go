package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Naive references for the fused kernels (scalar ascending-k loops).

func naiveGatherMatMul(a *Matrix, idx []int, b *Matrix) *Matrix {
	g := GatherRows(a, idx)
	out := New(len(idx), b.Cols)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < g.Cols; k++ {
				s += g.Data[i*g.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*b.Cols+j] = s
		}
	}
	return out
}

func approxEqual(t *testing.T, name string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got.Data[i], want.Data[i])
		}
	}
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.RandUniform(rng, 1)
	return m
}

func randIdx(rng *rand.Rand, n, max int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(max)
	}
	return idx
}

// TestBlockedKernelsMatchNaive is the property test for every blocked /
// fused product kernel: randomized shapes, deliberately including
// dimensions that are not multiples of the 4× unroll factor or the panel
// sizes, compared against scalar references within a tight tolerance.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const tol = 1e-12
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 2}, {3, 4, 5}, {5, 7, 3}, {4, 8, 4},
		{6, 6, 6}, {7, 9, 11}, {13, 5, 17}, {33, 2, 9}, {1, 100, 1},
	}
	// Plus randomized shapes with remainder dims in every position.
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(60), 1 + rng.Intn(60), 1 + rng.Intn(60)})
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		approxEqual(t, "MatMulInto", MatMulInto(a, b, Get(m, n)), refMatMul(a, b), tol)

		at := randMat(rng, k, m)
		approxEqual(t, "MatMulT1Into", MatMulT1Into(at, b, Get(m, n)), refMatMulT1(at, b), tol)

		b2 := randMat(rng, n, k)
		approxEqual(t, "MatMulT2Into", MatMulT2Into(a, b2, Get(m, n)), refMatMulT2(a, b2), tol)

		// Fused tanh: tanh of the naive product.
		want := refMatMul(a, b)
		for i, v := range want.Data {
			want.Data[i] = math.Tanh(v)
		}
		approxEqual(t, "MatMulTanhInto", MatMulTanhInto(a, b, Get(m, n)), want, tol)

		// Gather fusion: random edge list over a's rows.
		e := 1 + rng.Intn(3*m)
		idx := randIdx(rng, e, m)
		approxEqual(t, "GatherMatMulInto",
			GatherMatMulInto(a, idx, b, Get(e, n)), naiveGatherMatMul(a, idx, b), tol)

		add := randMat(rng, e, n)
		wantG := naiveGatherMatMul(a, idx, b)
		for i, v := range wantG.Data {
			wantG.Data[i] = math.Tanh(v + add.Data[i])
		}
		approxEqual(t, "GatherMatMulAddTanhInto",
			GatherMatMulAddTanhInto(a, idx, b, add, Get(e, n)), wantG, tol)

		wantG2 := naiveGatherMatMul(a, idx, b)
		for i, v := range wantG2.Data {
			wantG2.Data[i] = math.Tanh(v)
		}
		approxEqual(t, "GatherMatMulAddTanhInto(nil)",
			GatherMatMulAddTanhInto(a, idx, b, nil, Get(e, n)), wantG2, tol)

		// Gather-T1: gather(a, idx)ᵀ·g == T1 of the materialized gather.
		gm := randMat(rng, e, n)
		gathered := GatherRows(a, idx)
		approxEqual(t, "GatherMatMulT1Into",
			GatherMatMulT1Into(a, idx, gm, Get(k, n)), refMatMulT1(gathered, gm), tol)

		// Affine: x·wᵀ + bias, with and without the tanh epilogue.
		w := randMat(rng, n, k)
		bias := randMat(rng, 1, n)
		wantAff := refMatMulT2(a, w)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				wantAff.Data[i*n+j] += bias.Data[j]
			}
		}
		approxEqual(t, "MatMulT2BiasInto", MatMulT2BiasInto(a, w, bias, Get(m, n)), wantAff, tol)
		wantAffT := wantAff.Clone()
		for i, v := range wantAffT.Data {
			wantAffT.Data[i] = math.Tanh(v)
		}
		approxEqual(t, "MatMulT2BiasTanhInto", MatMulT2BiasTanhInto(a, w, bias, Get(m, n)), wantAffT, tol)
	}
}

// TestPackedPathMatchesUnpacked forces the cache-blocked packed MatMul on
// shapes that would normally take the plain path and asserts bitwise
// equality: the panel sizes are multiples of the unroll factor, so the
// two paths share one accumulation order.
func TestPackedPathMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	saved := packMinElems
	defer func() { packMinElems = saved }()
	for _, sh := range [][3]int{{9, 130, 37}, {33, 300, 270}, {5, 515, 259}, {64, 48, 24}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		packMinElems = 1 << 62
		plain := MatMulInto(a, b, New(m, n))
		packMinElems = 0
		packed := MatMulInto(a, b, New(m, n))
		for i := range plain.Data {
			if plain.Data[i] != packed.Data[i] {
				t.Fatalf("%dx%dx%d: packed path diverges at %d: %g vs %g",
					m, k, n, i, packed.Data[i], plain.Data[i])
			}
		}
	}
}

// TestKernelDeterminism runs each blocked kernel repeatedly on the same
// inputs — including across different GOMAXPROCS values, which changes
// the parallel chunking — and requires byte-identical output every time.
func TestKernelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Big enough to cross parallelThreshold and engage the fan-out.
	m, k, n := 120, 70, 50
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	at := randMat(rng, k, m)
	b2 := randMat(rng, n, k)
	idx := randIdx(rng, 300, m)
	add := randMat(rng, 300, n)

	type run func() *Matrix
	kernels := map[string]run{
		"MatMulInto":           func() *Matrix { return MatMulInto(a, b, New(m, n)) },
		"MatMulT1Into":         func() *Matrix { return MatMulT1Into(at, b, New(m, n)) },
		"MatMulT2Into":         func() *Matrix { return MatMulT2Into(a, b2, New(m, n)) },
		"MatMulTanhInto":       func() *Matrix { return MatMulTanhInto(a, b, New(m, n)) },
		"GatherMatMulAddTanh":  func() *Matrix { return GatherMatMulAddTanhInto(a, idx, b, add, New(300, n)) },
		"GatherMatMulT1Into":   func() *Matrix { return GatherMatMulT1Into(a, idx, add, New(k, n)) },
		"MatMulT2BiasTanhInto": func() *Matrix { return MatMulT2BiasTanhInto(a, randSeeded(n, k), randSeeded1(n), New(m, n)) },
		"MatMulInto(packed)":   func() *Matrix { defer setPack(setPack(0)); return MatMulInto(a, b, New(m, n)) },
	}
	saved := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(saved)
	for name, fn := range kernels {
		runtime.GOMAXPROCS(saved)
		base := fn()
		for rep := 0; rep < 3; rep++ {
			got := fn()
			for i := range base.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(base.Data[i]) {
					t.Fatalf("%s: rerun %d differs at element %d", name, rep, i)
				}
			}
		}
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			got := fn()
			for i := range base.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(base.Data[i]) {
					t.Fatalf("%s: GOMAXPROCS=%d differs at element %d", name, procs, i)
				}
			}
		}
	}
}

// setPack swaps packMinElems and returns the old value (defer-friendly).
func setPack(v int) int {
	old := packMinElems
	packMinElems = v
	return old
}

// randSeeded/randSeeded1 return fixed pseudo-random matrices so map-ordered
// kernel closures in TestKernelDeterminism stay self-consistent.
func randSeeded(rows, cols int) *Matrix { return randMat(rand.New(rand.NewSource(5)), rows, cols) }
func randSeeded1(cols int) *Matrix      { return randMat(rand.New(rand.NewSource(6)), 1, cols) }

// TestActivationIntoKernels checks the specialized activation loops and
// their gradient kernels against direct formulas, including aliasing
// (dst == src) for the forward loops.
func TestActivationIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 7, 13)
	g := randMat(rng, 7, 13)

	tanh := TanhInto(a, New(7, 13))
	sig := SigmoidInto(a, New(7, 13))
	relu := ReLUInto(a, New(7, 13))
	for i, x := range a.Data {
		if tanh.Data[i] != math.Tanh(x) {
			t.Fatalf("TanhInto[%d]", i)
		}
		if want := 1 / (1 + math.Exp(-x)); sig.Data[i] != want {
			t.Fatalf("SigmoidInto[%d]", i)
		}
		if want := math.Max(x, 0); relu.Data[i] != want {
			t.Fatalf("ReLUInto[%d]", i)
		}
	}

	tg := TanhGradInto(g, tanh, New(7, 13))
	sg := SigmoidGradInto(g, sig, New(7, 13))
	rg := ReLUGradInto(g, a, New(7, 13))
	for i := range a.Data {
		if want := g.Data[i] * (1 - tanh.Data[i]*tanh.Data[i]); tg.Data[i] != want {
			t.Fatalf("TanhGradInto[%d]", i)
		}
		if want := g.Data[i] * sig.Data[i] * (1 - sig.Data[i]); sg.Data[i] != want {
			t.Fatalf("SigmoidGradInto[%d]", i)
		}
		want := g.Data[i]
		if a.Data[i] <= 0 {
			want = 0
		}
		if rg.Data[i] != want {
			t.Fatalf("ReLUGradInto[%d]", i)
		}
	}

	// Aliasing: in-place activation must match the out-of-place result.
	alias := a.Clone()
	TanhInto(alias, alias)
	for i := range alias.Data {
		if alias.Data[i] != tanh.Data[i] {
			t.Fatalf("TanhInto aliased[%d]", i)
		}
	}
}

// TestMicroKernels covers Dot / Axpy / ColSumsInto on remainder lengths.
func TestMicroKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 100} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		if got := Dot(x, y); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("Dot(n=%d) = %g, want %g", n, got, want)
		}
		y2 := append([]float64(nil), y...)
		Axpy(0.5, x, y2)
		for i := range y2 {
			if want := y[i] + 0.5*x[i]; y2[i] != want {
				t.Fatalf("Axpy(n=%d)[%d] = %g, want %g", n, i, y2[i], want)
			}
		}
	}
	a := randMat(rng, 6, 9)
	cs := ColSumsInto(a, New(1, 9))
	for j := 0; j < 9; j++ {
		var want float64
		for i := 0; i < 6; i++ {
			want += a.Data[i*9+j]
		}
		if math.Abs(cs.Data[j]-want) > 1e-12 {
			t.Fatalf("ColSumsInto[%d] = %g, want %g", j, cs.Data[j], want)
		}
	}
}
