// Package ckpt persists checkpoint files that survive crashes: payloads
// are JSON-encoded into a versioned envelope carrying a SHA-256 checksum,
// written to a temporary file in the target directory, fsynced, and
// renamed into place. A process killed mid-write therefore leaves either
// the previous checkpoint or the new one — never a torn file — and a
// corrupted or truncated file is rejected at read time with a descriptive
// error instead of silently loading garbage.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Version identifies the envelope layout.
const Version = 1

// envelope is the on-disk frame around a payload.
type envelope struct {
	Version int             `json:"ckpt_version"`
	Kind    string          `json:"kind"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// WriteFile atomically writes payload (JSON-encoded) to path inside a
// checksummed envelope tagged with kind. The temporary file lives in
// path's directory so the final rename is atomic on POSIX filesystems.
func WriteFile(path, kind string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckpt: encode %s payload: %w", kind, err)
	}
	sum := sha256.Sum256(raw)
	env := envelope{Version: Version, Kind: kind, SHA256: hex.EncodeToString(sum[:]), Payload: raw}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("ckpt: encode envelope: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: rename into place: %w", err)
	}
	return nil
}

// ReadFile reads an envelope written by WriteFile, verifies its checksum
// and kind, and decodes the payload into out (a pointer).
func ReadFile(path, kind string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: read: %w", err)
	}
	return Decode(data, kind, out)
}

// Decode verifies and decodes envelope bytes (see ReadFile).
func Decode(data []byte, kind string, out any) error {
	var env envelope
	if err := strictUnmarshal(data, &env); err != nil {
		return fmt.Errorf("ckpt: corrupt or truncated envelope: %w", err)
	}
	if env.Version != Version {
		return fmt.Errorf("ckpt: unsupported envelope version %d (have %d)", env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("ckpt: file holds a %q checkpoint, want %q", env.Kind, kind)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return fmt.Errorf("ckpt: checksum mismatch (stored %.12s…, computed %.12s…): file is corrupt", env.SHA256, got)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("ckpt: decode %s payload: %w", kind, err)
	}
	return nil
}

// KindOf returns the kind tag of an envelope, or "" when data is not a
// ckpt envelope. Callers use it to dispatch between checkpoint flavors
// (e.g. weights-only vs full trainer state) before decoding.
func KindOf(data []byte) string {
	var probe struct {
		Version *int   `json:"ckpt_version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil || probe.Version == nil {
		return ""
	}
	return probe.Kind
}

// IsEnvelope reports whether data looks like a ckpt envelope (as opposed
// to a legacy bare-JSON file). It requires the ckpt_version key so plain
// parameter maps are never mistaken for envelopes.
func IsEnvelope(data []byte) bool {
	var probe struct {
		Version *int `json:"ckpt_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Version != nil
}

// strictUnmarshal decodes exactly one JSON value and rejects trailing
// data, catching files truncated or concatenated by a crashed writer.
func strictUnmarshal(data []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(out); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
