package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func roundTripPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "state.json")
}

func TestRoundTrip(t *testing.T) {
	path := roundTripPath(t)
	in := payload{Name: "model", Values: []float64{1, 2.5, -3}}
	if err := WriteFile(path, "test-state", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := ReadFile(path, "test-state", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Values) != 3 || out.Values[1] != 2.5 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestRejectsCorruptPayload(t *testing.T) {
	path := roundTripPath(t)
	if err := WriteFile(path, "test-state", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a byte inside the payload region.
	idx := strings.Index(string(data), `"x"`)
	data[idx+1] = 'y'
	os.WriteFile(path, data, 0o644)
	err := ReadFile(path, "test-state", &payload{})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

func TestRejectsTruncatedFile(t *testing.T) {
	path := roundTripPath(t)
	if err := WriteFile(path, "test-state", payload{Name: "x", Values: make([]float64, 100)}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	err := ReadFile(path, "test-state", &payload{})
	if err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestRejectsWrongKind(t *testing.T) {
	path := roundTripPath(t)
	if err := WriteFile(path, "trainer", payload{}); err != nil {
		t.Fatal(err)
	}
	err := ReadFile(path, "params", &payload{})
	if err == nil || !strings.Contains(err.Error(), `holds a "trainer"`) {
		t.Fatalf("want kind error, got %v", err)
	}
}

func TestRejectsTrailingData(t *testing.T) {
	path := roundTripPath(t)
	if err := WriteFile(path, "test-state", payload{}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, append(data, []byte("{}")...), 0o644)
	if err := ReadFile(path, "test-state", &payload{}); err == nil {
		t.Fatal("want error for trailing data")
	}
}

func TestIsEnvelope(t *testing.T) {
	path := roundTripPath(t)
	if err := WriteFile(path, "test-state", payload{}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !IsEnvelope(data) {
		t.Error("envelope not recognized")
	}
	if IsEnvelope([]byte(`{"w": {"rows": 1, "cols": 1, "data": [0]}}`)) {
		t.Error("legacy params map misdetected as envelope")
	}
	if IsEnvelope([]byte("not json")) {
		t.Error("garbage misdetected as envelope")
	}
}

func TestWriteLeavesNoTempFilesBehind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, "test-state", payload{Values: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory should hold only the checkpoint, got %v", names)
	}
}
