// Package parallel provides small, dependency-free worker-pool utilities
// used throughout the repository to fan out per-graph work: dataset
// generation, batch evaluation of allocations, and REINFORCE sample scoring.
//
// All helpers are deterministic in their outputs (each index computes its
// own result slot) even though execution order is not.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default degree of parallelism: GOMAXPROCS.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines.
// workers <= 0 selects DefaultWorkers(). It blocks until all calls return.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachWorker is ForEach with a stable worker id passed to fn: all
// calls carrying the same worker id run sequentially on one goroutine, so
// fn may use per-worker state (a model replica, a scratch tape, a reusable
// buffer) without locking. Worker ids are dense in [0, workers). Like
// ForEach, result placement is by index, so outputs are deterministic even
// though the (worker, index) pairing is not.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachErr runs fn(i) for i in [0, n) in parallel and returns the first
// error encountered (by index order among failures is not guaranteed; the
// lowest-index error wins when several occur). All indices are attempted.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) {
		errs[i] = fn(i)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	return nil
}

// Map applies fn to each index and collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// chunkJob is one RunChunks invocation: workers and the caller pull chunk
// indices from next and compute the chunk bounds arithmetically, so no
// range slice is materialized.
type chunkJob struct {
	fn    func(lo, hi int)
	parts int
	base  int
	rem   int
	next  atomic.Int32
	wg    sync.WaitGroup
}

// bounds returns chunk p of the job's [0, n) split — identical to
// ChunkRanges(n, parts)[p].
func (j *chunkJob) bounds(p int) (int, int) {
	lo := p * j.base
	if p < j.rem {
		lo += p
	} else {
		lo += j.rem
	}
	hi := lo + j.base
	if p < j.rem {
		hi++
	}
	return lo, hi
}

func (j *chunkJob) run() {
	for {
		p := int(j.next.Add(1)) - 1
		if p >= j.parts {
			return
		}
		lo, hi := j.bounds(p)
		j.fn(lo, hi)
	}
}

var (
	chunkOnce    sync.Once
	chunkCh      chan *chunkJob
	chunkWorkers int
	chunkPool    = sync.Pool{New: func() any { return new(chunkJob) }}
)

// startChunkWorkers spins up the persistent helper goroutines. They spend
// their idle life parked on an unbuffered channel receive, so an idle pool
// costs nothing and a RunChunks hand-off wakes exactly the workers it
// claims.
func startChunkWorkers() {
	chunkWorkers = runtime.GOMAXPROCS(0) - 1
	if chunkWorkers < 0 {
		chunkWorkers = 0
	}
	chunkCh = make(chan *chunkJob)
	for w := 0; w < chunkWorkers; w++ {
		go func() {
			for j := range chunkCh {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// RunChunks invokes fn(lo, hi) over a split of [0, n) into at most parts
// near-equal contiguous ranges (the same bounds ChunkRanges produces), on
// a persistent worker pool. Unlike ChunkRanges+ForEach, the steady-state
// dispatch performs no allocation beyond fn itself: no range slice, no
// per-call goroutines. The caller always participates, and helpers are
// claimed only via non-blocking hand-off to idle pool workers, so a busy
// pool degrades to the caller doing more chunks — never to blocking on
// unrelated work. Chunk bounds are independent of who executes them, so
// results writable by disjoint ranges stay deterministic.
func RunChunks(n, parts int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if parts <= 0 {
		parts = DefaultWorkers()
	}
	if parts > n {
		parts = n
	}
	if parts == 1 {
		fn(0, n)
		return
	}
	chunkOnce.Do(startChunkWorkers)
	j := chunkPool.Get().(*chunkJob)
	j.fn, j.parts = fn, parts
	j.base, j.rem = n/parts, n%parts
	j.next.Store(0)
	helpers := parts - 1
	if helpers > chunkWorkers {
		helpers = chunkWorkers
	}
claim:
	for i := 0; i < helpers; i++ {
		j.wg.Add(1)
		select {
		case chunkCh <- j:
		default:
			j.wg.Done()
			break claim
		}
	}
	j.run()
	j.wg.Wait()
	j.fn = nil
	chunkPool.Put(j)
}

// ChunkRanges splits [0, n) into at most parts contiguous half-open ranges
// of near-equal size. Useful for row-blocked matrix kernels.
func ChunkRanges(n, parts int) [][2]int {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	base := n / parts
	rem := n % parts
	start := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// Reduce applies fn to each index in parallel and folds the results with
// combine, which must be associative and commutative. zero is the identity.
func Reduce[T any](n, workers int, zero T, fn func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	vals := Map(n, workers, fn)
	acc := zero
	for _, v := range vals {
		acc = combine(acc, v)
	}
	return acc
}
