package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 257
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	ForEach(-3, 4, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("expected no calls, got %d", calls)
	}
}

func TestForEachWorkerCoversAllIndicesWithValidIDs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 257
		seen := make([]int32, n)
		bound := workers
		if bound <= 0 {
			bound = DefaultWorkers()
		}
		if bound > n {
			bound = n
		}
		var badID int32
		ForEachWorker(n, workers, func(w, i int) {
			if w < 0 || w >= bound {
				atomic.AddInt32(&badID, 1)
			}
			atomic.AddInt32(&seen[i], 1)
		})
		if badID != 0 {
			t.Fatalf("workers=%d produced %d out-of-range worker ids", workers, badID)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachWorkerSerializesPerWorker(t *testing.T) {
	// Per-worker state must never be touched concurrently: bump a
	// non-atomic counter per worker id and verify the totals add up,
	// which they only can if same-id calls are sequential (the race
	// detector additionally proves the absence of concurrent access).
	const n, workers = 500, 4
	counts := make([]int, workers)
	ForEachWorker(n, workers, func(w, i int) { counts[w]++ })
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEachErr(10, 4, func(i int) error {
		if i == 3 || i == 7 {
			return sentinel
		}
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); got != "task 3: boom" {
		t.Fatalf("expected lowest-index error, got %q", got)
	}
}

func TestForEachErrNil(t *testing.T) {
	if err := ForEachErr(5, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdering(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestReduce(t *testing.T) {
	sum := Reduce(100, 4, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestChunkRangesPartition(t *testing.T) {
	f := func(n, parts uint8) bool {
		chunks := ChunkRanges(int(n), int(parts))
		if n == 0 || parts == 0 {
			return chunks == nil
		}
		// Chunks must tile [0,n) exactly, in order, non-empty.
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] {
				return false
			}
			next = c[1]
		}
		return next == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkRangesBalance(t *testing.T) {
	chunks := ChunkRanges(10, 3)
	if len(chunks) != 3 {
		t.Fatalf("len = %d", len(chunks))
	}
	sizes := []int{chunks[0][1] - chunks[0][0], chunks[1][1] - chunks[1][0], chunks[2][1] - chunks[2][0]}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestRunChunksMatchesChunkRanges(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {7, 7}, {100, 8}, {1, 4}, {5, 1}, {16, 16}} {
		n, parts := tc[0], tc[1]
		want := make([]int, n)
		for _, r := range ChunkRanges(n, parts) {
			for i := r[0]; i < r[1]; i++ {
				want[i]++
			}
		}
		got := make([]int32, n)
		RunChunks(n, parts, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("RunChunks(%d,%d): bad range [%d,%d)", n, parts, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&got[i], 1)
			}
		})
		for i := range want {
			if want[i] != 1 || int(got[i]) != 1 {
				t.Fatalf("RunChunks(%d,%d): index %d covered %d times (ChunkRanges %d)", n, parts, i, got[i], want[i])
			}
		}
	}
}

func TestRunChunksConcurrentCallers(t *testing.T) {
	// Many goroutines share the pool at once; each must see exactly its
	// own full coverage.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				const n = 257
				var sum int64
				RunChunks(n, 4, func(lo, hi int) {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					atomic.AddInt64(&sum, s)
				})
				if sum != n*(n-1)/2 {
					t.Errorf("sum = %d", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRunChunksNested(t *testing.T) {
	// A chunk body that itself calls RunChunks must not deadlock: busy
	// workers are never waited on, the caller degrades to serial.
	var total int64
	RunChunks(8, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			RunChunks(100, 4, func(l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 800 {
		t.Fatalf("total = %d", total)
	}
}
