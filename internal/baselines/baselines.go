// Package baselines implements the three learned direct-placement
// baselines the paper compares against:
//
//   - Graph-enc-dec [9]: the edge-aware GNN encoder followed by an LSTM
//     decoder that assigns devices to operators sequentially in
//     topological order, feeding back the previous assignment.
//   - GDP [7]: a GNN encoder followed by a self-attention placement
//     network producing per-node device logits in one shot (our
//     single-block simplification of Transformer-XL; see DESIGN.md §2).
//   - Hierarchical [6]: a grouper MLP assigning operators to a fixed
//     number of groups (25 in the paper) and an LSTM placer assigning a
//     device to each group.
//
// All three train with the same REINFORCE objective as the coarsening
// model (relative simulated throughput as reward, mean-of-batch baseline)
// and expose a greedy Place method, so any of them can also serve as the
// partitioning stage of the coarsening–partitioning framework
// (Coarsen+Graph-enc-dec in Tables I and II).
package baselines

import (
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/gnn"
	"repro/internal/metis"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// MaxDevices bounds the device-logit width so one trained model transfers
// across cluster sizes (logits beyond the active device count are masked).
const MaxDevices = 32

// negInf masks inactive device columns in logits.
const negInf = -1e9

// maskLogits sets columns ≥ devices to -inf on a logits matrix value.
func maskLogits(m *tensor.Matrix, devices int) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := devices; j < len(row); j++ {
			row[j] = negInf
		}
	}
}

// TrainConfig controls baseline REINFORCE training.
type TrainConfig struct {
	Epochs  int
	Samples int
	LR      float64
	Seed    int64
	// PretrainEpochs runs maximum-likelihood imitation of Metis placements
	// before REINFORCE — the same cold-start device the coarsening trainer
	// uses (the original baselines trained for GPU-days; at CPU scale,
	// REINFORCE from scratch cannot reach their reported competence).
	PretrainEpochs int
	Quiet          bool
	Logf           func(format string, args ...any)
}

// DefaultTrainConfig mirrors the coarsening trainer's scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 6, Samples: 4, LR: 0.002, Seed: 17, PretrainEpochs: 10}
}

// metisTargets computes the imitation labels for pretraining.
func metisTargets(graphs []*stream.Graph, cluster sim.Cluster, seed int64) [][]int {
	return parallel.Map(len(graphs), 0, func(i int) []int {
		p := metis.Partition(graphs[i], metis.Options{Parts: cluster.Devices, Seed: seed})
		return p.Assign
	})
}

func (c TrainConfig) logf(format string, args ...any) {
	if c.Quiet {
		return
	}
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	obs.Log.Infof(format, args...)
}

// Model is the common interface of the learned direct-placement baselines.
type Model interface {
	// Place greedily assigns every operator to a device.
	Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement
	// TrainOn runs REINFORCE over the training graphs.
	TrainOn(graphs []*stream.Graph, cluster sim.Cluster, cfg TrainConfig)
	// Name identifies the baseline in reports.
	Name() string
}

// ---------------------------------------------------------------------------
// Graph-enc-dec [9]
// ---------------------------------------------------------------------------

// GraphEncDec is the GNN + LSTM sequential placer.
type GraphEncDec struct {
	PS     *nn.ParamSet
	Enc    *gnn.Encoder
	Cell   *nn.LSTMCell
	Out    *nn.Linear // hidden → MaxDevices logits
	DevEmb *nn.Param  // MaxDevices+1 × devDim embedding of previous device
	Hidden int
	DevDim int
}

// NewGraphEncDec builds the model. m is the GNN half-width; hidden the
// LSTM width.
func NewGraphEncDec(m, hidden int, seed int64) *GraphEncDec {
	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	devDim := 8
	enc := gnn.NewEncoder(ps, "enc", m, 2, rng)
	return &GraphEncDec{
		PS:     ps,
		Enc:    enc,
		Cell:   nn.NewLSTMCell(ps, "dec", 2*m+devDim, hidden, rng),
		Out:    nn.NewLinear(ps, "out", hidden, MaxDevices, rng),
		DevEmb: ps.NewXavier("devemb", MaxDevices+1, devDim, rng),
		Hidden: hidden,
		DevDim: devDim,
	}
}

// Name implements Model.
func (m *GraphEncDec) Name() string { return "graph-enc-dec" }

// decode runs the LSTM decoder over nodes in topological order. pick
// chooses the device for node v given the step's masked log-probability
// row. It returns the assignment and the summed log-probability node of
// the chosen actions.
func (m *GraphEncDec) decode(
	b *nn.Binder,
	g *stream.Graph,
	cluster sim.Cluster,
	h *autodiff.Node,
	pick func(v int, logProbs []float64) int,
) ([]int, *autodiff.Node) {
	t := b.Tape
	order := g.PseudoTopoOrder()
	zero := tensor.New(1, m.Hidden)
	hh, cc := t.Const(zero), t.Const(zero.Clone())
	prevDev := MaxDevices // "no previous device" embedding row
	assign := make([]int, g.NumNodes())
	var logProbSum *autodiff.Node
	for _, v := range order {
		nodeEmb := t.GatherRows(h, []int{v})
		devEmb := t.GatherRows(b.Node(m.DevEmb), []int{prevDev})
		x := t.ConcatCols(nodeEmb, devEmb)
		hh, cc = m.Cell.Step(b, x, hh, cc)
		logits := m.Out.Apply(b, hh)
		maskLogits(logits.Value, cluster.Devices)
		logProbs := t.LogSoftmaxRows(logits)
		d := pick(v, logProbs.Value.Row(0))
		assign[v] = d
		picked := t.PickCols(logProbs, []int{d})
		if logProbSum == nil {
			logProbSum = picked
		} else {
			logProbSum = t.Add(logProbSum, picked)
		}
		prevDev = d
	}
	return assign, logProbSum
}

// Place implements Model with greedy decoding.
func (m *GraphEncDec) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	b := nn.NewBinder(autodiff.NewTape())
	f := gnn.BuildFeatures(g, cluster)
	h := m.Enc.Encode(b, f)
	assign, _ := m.decode(b, g, cluster, h, func(_ int, lp []float64) int {
		best, bestV := 0, lp[0]
		for d := 1; d < cluster.Devices; d++ {
			if lp[d] > bestV {
				best, bestV = d, lp[d]
			}
		}
		return best
	})
	p := stream.NewPlacement(g.NumNodes(), cluster.Devices)
	copy(p.Assign, assign)
	return p
}

// TrainOn implements Model: optional Metis-imitation pretraining followed
// by REINFORCE.
func (m *GraphEncDec) TrainOn(graphs []*stream.Graph, cluster sim.Cluster, cfg TrainConfig) {
	if cfg.PretrainEpochs > 0 {
		targets := metisTargets(graphs, cluster, cfg.Seed)
		opt := nn.NewAdam(cfg.LR)
		for epoch := 0; epoch < cfg.PretrainEpochs; epoch++ {
			for i, g := range graphs {
				b := nn.NewBinder(autodiff.NewTape())
				h := m.Enc.Encode(b, gnn.BuildFeatures(g, cluster))
				target := targets[i]
				_, lp := m.decode(b, g, cluster, h, func(v int, _ []float64) int {
					return target[v]
				})
				seed := tensor.New(1, 1)
				seed.Data[0] = -1 / float64(g.NumNodes())
				m.PS.ZeroGrads()
				b.Tape.Backward(lp, seed)
				b.Collect()
				opt.Step(m.PS)
			}
			cfg.logf("baselines: %s pretrain epoch %d/%d", m.Name(), epoch+1, cfg.PretrainEpochs)
		}
	}
	trainSequential(m.PS, graphs, cluster, cfg, m.Name(),
		func(b *nn.Binder, g *stream.Graph, rng *rand.Rand) ([]int, *autodiff.Node) {
			f := gnn.BuildFeatures(g, cluster)
			h := m.Enc.Encode(b, f)
			return m.decode(b, g, cluster, h, func(_ int, lp []float64) int {
				return sampleLogProbs(rng, lp, cluster.Devices)
			})
		})
}

// sampleLogProbs draws a device from a masked log-probability row.
func sampleLogProbs(rng *rand.Rand, lp []float64, devices int) int {
	u := rng.Float64()
	var acc float64
	for d := 0; d < devices; d++ {
		acc += expFast(lp[d])
		if u < acc {
			return d
		}
	}
	return devices - 1
}

func expFast(x float64) float64 {
	if x < -50 {
		return 0
	}
	return math.Exp(x)
}

// trainSequential is the shared REINFORCE loop for models whose sampling
// requires a fresh forward pass per sample (LSTM decoders).
func trainSequential(
	ps *nn.ParamSet,
	graphs []*stream.Graph,
	cluster sim.Cluster,
	cfg TrainConfig,
	name string,
	sampleOne func(b *nn.Binder, g *stream.Graph, rng *rand.Rand) ([]int, *autodiff.Node),
) {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var meanR float64
		for _, g := range graphs {
			type sample struct {
				assign []int
				lp     *autodiff.Node
				binder *nn.Binder
				reward float64
			}
			samples := make([]sample, cfg.Samples)
			for s := range samples {
				b := nn.NewBinder(autodiff.NewTape())
				assign, lp := sampleOne(b, g, rng)
				samples[s] = sample{assign: assign, lp: lp, binder: b}
			}
			parallel.ForEach(len(samples), 0, func(s int) {
				p := stream.NewPlacement(g.NumNodes(), cluster.Devices)
				copy(p.Assign, samples[s].assign)
				samples[s].reward = sim.Reward(g, p, cluster)
			})
			var base float64
			for _, s := range samples {
				base += s.reward
			}
			base /= float64(len(samples))
			meanR += base
			ps.ZeroGrads()
			for _, s := range samples {
				adv := (s.reward - base) / float64(len(samples)*g.NumNodes())
				if adv == 0 {
					continue
				}
				// Ascend adv·logπ: seed backward with -adv on the summed
				// log-prob (optimizer descends).
				seed := tensor.New(s.lp.Value.Rows, 1)
				seed.Fill(-adv)
				s.binder.Tape.Backward(s.lp, seed)
				s.binder.Collect()
			}
			opt.Step(ps)
		}
		cfg.logf("baselines: %s epoch %d/%d mean reward %.4f", name, epoch+1, cfg.Epochs, meanR/float64(len(graphs)))
	}
}

// ---------------------------------------------------------------------------
// GDP [7]
// ---------------------------------------------------------------------------

// GDP is the GNN + self-attention one-shot placer.
type GDP struct {
	PS   *nn.ParamSet
	Enc  *gnn.Encoder
	Attn *nn.MultiHeadAttention
	Out  *nn.MLP
}

// NewGDP builds the model; m is the GNN half-width (attention dim = 2m).
func NewGDP(m int, seed int64) *GDP {
	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	return &GDP{
		PS:   ps,
		Enc:  gnn.NewEncoder(ps, "enc", m, 2, rng),
		Attn: nn.NewMultiHeadAttention(ps, "attn", 2*m, 2, rng),
		Out:  nn.NewMLP(ps, "out", []int{2 * m, 2 * m, MaxDevices}, nn.ActTanh, nn.ActNone, rng),
	}
}

// Name implements Model.
func (m *GDP) Name() string { return "gdp" }

// logits runs the forward pass and returns masked per-node logits (N×MaxDevices).
func (m *GDP) logits(b *nn.Binder, g *stream.Graph, cluster sim.Cluster) *autodiff.Node {
	f := gnn.BuildFeatures(g, cluster)
	h := m.Enc.Encode(b, f)
	h = m.Attn.Apply(b, h)
	logits := m.Out.Apply(b, h)
	maskLogits(logits.Value, cluster.Devices)
	return logits
}

// Place implements Model: per-node argmax.
func (m *GDP) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	b := nn.NewBinder(autodiff.NewTape())
	lg := m.logits(b, g, cluster)
	p := stream.NewPlacement(g.NumNodes(), cluster.Devices)
	for v := 0; v < g.NumNodes(); v++ {
		row := lg.Value.Row(v)
		best := 0
		for d := 1; d < cluster.Devices; d++ {
			if row[d] > row[best] {
				best = d
			}
		}
		p.Assign[v] = best
	}
	return p
}

// TrainOn implements Model: optional Metis-imitation pretraining, then
// REINFORCE with one forward pass per step and N samples drawn from the
// per-node categorical distributions.
func (m *GDP) TrainOn(graphs []*stream.Graph, cluster sim.Cluster, cfg TrainConfig) {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.PretrainEpochs > 0 {
		targets := metisTargets(graphs, cluster, cfg.Seed)
		for epoch := 0; epoch < cfg.PretrainEpochs; epoch++ {
			for i, g := range graphs {
				b := nn.NewBinder(autodiff.NewTape())
				t := b.Tape
				lp := t.LogSoftmaxRows(m.logits(b, g, cluster))
				loss := t.Scale(t.Sum(t.PickCols(lp, targets[i])), -1/float64(g.NumNodes()))
				m.PS.ZeroGrads()
				t.Backward(loss, nil)
				b.Collect()
				opt.Step(m.PS)
			}
			cfg.logf("baselines: gdp pretrain epoch %d/%d", epoch+1, cfg.PretrainEpochs)
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var meanR float64
		for _, g := range graphs {
			b := nn.NewBinder(autodiff.NewTape())
			t := b.Tape
			logProbs := t.LogSoftmaxRows(m.logits(b, g, cluster))
			n := g.NumNodes()
			assigns := make([][]int, cfg.Samples)
			rewards := make([]float64, cfg.Samples)
			for s := range assigns {
				a := make([]int, n)
				for v := 0; v < n; v++ {
					a[v] = sampleLogProbs(rng, logProbs.Value.Row(v), cluster.Devices)
				}
				assigns[s] = a
			}
			parallel.ForEach(cfg.Samples, 0, func(s int) {
				p := stream.NewPlacement(n, cluster.Devices)
				copy(p.Assign, assigns[s])
				rewards[s] = sim.Reward(g, p, cluster)
			})
			var base float64
			for _, r := range rewards {
				base += r
			}
			base /= float64(cfg.Samples)
			meanR += base
			var loss *autodiff.Node
			for s := range assigns {
				adv := (rewards[s] - base) / float64(cfg.Samples*n)
				if adv == 0 {
					continue
				}
				lp := t.PickCols(logProbs, assigns[s])
				term := t.Scale(t.Sum(lp), -adv)
				if loss == nil {
					loss = term
				} else {
					loss = t.Add(loss, term)
				}
			}
			if loss != nil {
				m.PS.ZeroGrads()
				t.Backward(loss, nil)
				b.Collect()
				opt.Step(m.PS)
			}
		}
		cfg.logf("baselines: gdp epoch %d/%d mean reward %.4f", epoch+1, cfg.Epochs, meanR/float64(len(graphs)))
	}
}

// ---------------------------------------------------------------------------
// Hierarchical [6]
// ---------------------------------------------------------------------------

// Hierarchical is the grouper + placer model with a fixed group count.
type Hierarchical struct {
	PS      *nn.ParamSet
	Grouper *nn.MLP // node features → group logits
	Cell    *nn.LSTMCell
	Out     *nn.Linear
	Groups  int
	Hidden  int
}

// NewHierarchical builds the model with the paper's 25 groups by default.
func NewHierarchical(groups, hidden int, seed int64) *Hierarchical {
	if groups <= 0 {
		groups = 25
	}
	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	return &Hierarchical{
		PS:      ps,
		Grouper: nn.NewMLP(ps, "grouper", []int{gnn.NodeFeatureDim, hidden, groups}, nn.ActTanh, nn.ActNone, rng),
		Cell:    nn.NewLSTMCell(ps, "placer", gnn.NodeFeatureDim+1, hidden, rng),
		Out:     nn.NewLinear(ps, "out", hidden, MaxDevices, rng),
		Groups:  groups,
		Hidden:  hidden,
	}
}

// Name implements Model.
func (m *Hierarchical) Name() string { return "hierarchical" }

// forward computes group log-probs for every node (N×Groups).
func (m *Hierarchical) groupLogProbs(b *nn.Binder, f *gnn.Features) *autodiff.Node {
	return b.Tape.LogSoftmaxRows(m.Grouper.Apply(b, b.Tape.Const(f.Node)))
}

// placeGroups runs the LSTM placer over group summary embeddings (mean of
// member node features plus member count), with pick choosing each
// group's device.
func (m *Hierarchical) placeGroups(
	b *nn.Binder,
	f *gnn.Features,
	cluster sim.Cluster,
	groupOf []int,
	pick func(step int, lp []float64) int,
) ([]int, *autodiff.Node) {
	t := b.Tape
	n := f.Node.Rows
	// Group summaries from hard assignments (computed outside the tape:
	// the grouper's gradient flows through its log-probs, not the
	// summaries, as in the original two-network design).
	sum := tensor.New(m.Groups, gnn.NodeFeatureDim+1)
	counts := make([]float64, m.Groups)
	for v := 0; v < n; v++ {
		gIdx := groupOf[v]
		counts[gIdx]++
		row := sum.Row(gIdx)
		nf := f.Node.Row(v)
		for j, x := range nf {
			row[j] += x
		}
	}
	for gi := 0; gi < m.Groups; gi++ {
		row := sum.Row(gi)
		if counts[gi] > 0 {
			for j := 0; j < gnn.NodeFeatureDim; j++ {
				row[j] /= counts[gi]
			}
		}
		row[gnn.NodeFeatureDim] = counts[gi] / float64(n)
	}
	zero := tensor.New(1, m.Hidden)
	hh, cc := t.Const(zero), t.Const(zero.Clone())
	devOf := make([]int, m.Groups)
	var lpSum *autodiff.Node
	for gi := 0; gi < m.Groups; gi++ {
		x := t.Const(tensor.FromSlice(1, gnn.NodeFeatureDim+1, sum.Row(gi)))
		hh, cc = m.Cell.Step(b, x, hh, cc)
		logits := m.Out.Apply(b, hh)
		maskLogits(logits.Value, cluster.Devices)
		lp := t.LogSoftmaxRows(logits)
		d := pick(gi, lp.Value.Row(0))
		devOf[gi] = d
		picked := t.PickCols(lp, []int{d})
		if lpSum == nil {
			lpSum = picked
		} else {
			lpSum = t.Add(lpSum, picked)
		}
	}
	return devOf, lpSum
}

// Place implements Model: argmax groups, then argmax devices.
func (m *Hierarchical) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	b := nn.NewBinder(autodiff.NewTape())
	f := gnn.BuildFeatures(g, cluster)
	glp := m.groupLogProbs(b, f)
	n := g.NumNodes()
	groupOf := make([]int, n)
	for v := 0; v < n; v++ {
		row := glp.Value.Row(v)
		best := 0
		for gi := 1; gi < m.Groups; gi++ {
			if row[gi] > row[best] {
				best = gi
			}
		}
		groupOf[v] = best
	}
	devOf, _ := m.placeGroups(b, f, cluster, groupOf, func(_ int, lp []float64) int {
		best := 0
		for d := 1; d < cluster.Devices; d++ {
			if lp[d] > lp[best] {
				best = d
			}
		}
		return best
	})
	p := stream.NewPlacement(n, cluster.Devices)
	for v := 0; v < n; v++ {
		p.Assign[v] = devOf[groupOf[v]]
	}
	return p
}

// TrainOn implements Model: optional pretraining that imitates Metis by
// using device labels as group targets (group g ↦ device g), then joint
// REINFORCE over group and device choices.
func (m *Hierarchical) TrainOn(graphs []*stream.Graph, cluster sim.Cluster, cfg TrainConfig) {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.PretrainEpochs > 0 {
		targets := metisTargets(graphs, cluster, cfg.Seed)
		devTargets := make([]int, m.Groups)
		for gi := range devTargets {
			devTargets[gi] = gi % cluster.Devices
		}
		for epoch := 0; epoch < cfg.PretrainEpochs; epoch++ {
			for i, g := range graphs {
				f := gnn.BuildFeatures(g, cluster)
				b := nn.NewBinder(autodiff.NewTape())
				glp := m.groupLogProbs(b, f)
				groupOf := make([]int, g.NumNodes())
				for v := range groupOf {
					groupOf[v] = targets[i][v] // device label as group id
				}
				_, devLP := m.placeGroups(b, f, cluster, groupOf, func(gi int, _ []float64) int {
					return devTargets[gi]
				})
				t := b.Tape
				loss := t.Add(
					t.Scale(t.Sum(t.PickCols(glp, groupOf)), -1/float64(g.NumNodes())),
					t.Scale(t.Sum(devLP), -1/float64(m.Groups)),
				)
				loss = t.Scale(loss, 1)
				m.PS.ZeroGrads()
				t.Backward(loss, nil)
				b.Collect()
				opt.Step(m.PS)
			}
			cfg.logf("baselines: hierarchical pretrain epoch %d/%d", epoch+1, cfg.PretrainEpochs)
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var meanR float64
		for _, g := range graphs {
			f := gnn.BuildFeatures(g, cluster)
			n := g.NumNodes()
			type sample struct {
				binder *nn.Binder
				lp     *autodiff.Node
				assign []int
				reward float64
			}
			samples := make([]sample, cfg.Samples)
			for s := range samples {
				b := nn.NewBinder(autodiff.NewTape())
				glp := m.groupLogProbs(b, f)
				groupOf := make([]int, n)
				for v := 0; v < n; v++ {
					groupOf[v] = sampleLogProbs(rng, glp.Value.Row(v), m.Groups)
				}
				devOf, devLP := m.placeGroups(b, f, cluster, groupOf, func(_ int, lp []float64) int {
					return sampleLogProbs(rng, lp, cluster.Devices)
				})
				groupLP := b.Tape.Sum(b.Tape.PickCols(glp, groupOf))
				total := b.Tape.Add(groupLP, b.Tape.Sum(devLP))
				assign := make([]int, n)
				for v := 0; v < n; v++ {
					assign[v] = devOf[groupOf[v]]
				}
				samples[s] = sample{binder: b, lp: total, assign: assign}
			}
			parallel.ForEach(len(samples), 0, func(s int) {
				p := stream.NewPlacement(n, cluster.Devices)
				copy(p.Assign, samples[s].assign)
				samples[s].reward = sim.Reward(g, p, cluster)
			})
			var base float64
			for _, s := range samples {
				base += s.reward
			}
			base /= float64(len(samples))
			meanR += base
			m.PS.ZeroGrads()
			for _, s := range samples {
				adv := (s.reward - base) / float64(len(samples)*n)
				if adv == 0 {
					continue
				}
				seed := tensor.New(1, 1)
				seed.Data[0] = -adv
				s.binder.Tape.Backward(s.lp, seed)
				s.binder.Collect()
			}
			opt.Step(m.PS)
		}
		cfg.logf("baselines: hierarchical epoch %d/%d mean reward %.4f", epoch+1, cfg.Epochs, meanR/float64(len(graphs)))
	}
}

// ---------------------------------------------------------------------------
// Placer adapter
// ---------------------------------------------------------------------------

// AsPlacer adapts any baseline Model into the framework's partitioning
// interface (Coarsen+Graph-enc-dec etc.).
type AsPlacer struct {
	Model Model
}

// Place implements placer.Placer.
func (a AsPlacer) Place(g *stream.Graph, cluster sim.Cluster) *stream.Placement {
	return a.Model.Place(g, cluster)
}

// Name implements placer.Placer.
func (a AsPlacer) Name() string { return a.Model.Name() }
