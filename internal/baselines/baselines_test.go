package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func smallData(t *testing.T, n int) (*gen.Dataset, sim.Cluster) {
	t.Helper()
	s := gen.Small()
	s.TrainN, s.TestN = n, 3
	ds := s.Generate()
	return ds, ds.Cluster
}

func quickCfg() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Samples = 2
	cfg.PretrainEpochs = 2
	cfg.Quiet = true
	return cfg
}

func allModels() []Model {
	return []Model{
		NewGraphEncDec(8, 16, 1),
		NewGDP(8, 2),
		NewHierarchical(10, 16, 3),
	}
}

func TestMaskLogits(t *testing.T) {
	m := tensor.New(2, 8)
	m.Fill(1)
	maskLogits(m, 3)
	if m.At(0, 2) != 1 || m.At(0, 3) != negInf || m.At(1, 7) != negInf {
		t.Fatal("mask wrong")
	}
}

func TestPlaceProducesValidPlacements(t *testing.T) {
	ds, c := smallData(t, 2)
	for _, m := range allModels() {
		for _, g := range ds.Test {
			p := m.Place(g, c)
			if err := p.Validate(g); err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			for _, d := range p.Assign {
				if d >= c.Devices {
					t.Fatalf("%s assigned masked device %d", m.Name(), d)
				}
			}
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	ds, c := smallData(t, 1)
	for _, m := range allModels() {
		p1 := m.Place(ds.Test[0], c)
		p2 := m.Place(ds.Test[0], c)
		for i := range p1.Assign {
			if p1.Assign[i] != p2.Assign[i] {
				t.Fatalf("%s: nondeterministic greedy placement", m.Name())
			}
		}
	}
}

func TestTrainOnRunsAndChangesPlacements(t *testing.T) {
	ds, c := smallData(t, 3)
	for _, m := range allModels() {
		before := m.Place(ds.Test[0], c).Clone()
		m.TrainOn(ds.Train, c, quickCfg())
		after := m.Place(ds.Test[0], c)
		changed := false
		for i := range after.Assign {
			if after.Assign[i] != before.Assign[i] {
				changed = true
				break
			}
		}
		if !changed {
			t.Logf("%s: placement unchanged after short training (acceptable but unusual)", m.Name())
		}
		if err := after.Validate(ds.Test[0]); err != nil {
			t.Fatalf("%s after training: %v", m.Name(), err)
		}
	}
}

func TestPretrainingMovesTowardMetis(t *testing.T) {
	// After imitation pretraining only, GDP's placements should agree with
	// Metis labels far above chance on the training graphs.
	ds, c := smallData(t, 4)
	m := NewGDP(8, 5)
	cfg := quickCfg()
	cfg.PretrainEpochs = 40
	cfg.Epochs = 0
	m.TrainOn(ds.Train, c, cfg)

	targets := metisTargets(ds.Train, c, cfg.Seed)
	agree, total := 0, 0
	for i, g := range ds.Train {
		p := m.Place(g, c)
		for v := range p.Assign {
			if p.Assign[v] == targets[i][v] {
				agree++
			}
			total++
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.4 { // chance is 1/5 = 0.2
		t.Fatalf("imitation agreement %.2f, want > 0.4", frac)
	}
}

func TestTrainImprovesRewardOnTinyGraph(t *testing.T) {
	// Single trivial two-node graph where the optimal policy is to
	// colocate (huge payload); REINFORCE should find it quickly.
	g := stream.NewGraph(1000)
	g.AddNode(stream.Node{IPT: 10, Payload: 5e6})
	g.AddNode(stream.Node{IPT: 10, Payload: 1})
	g.AddEdge(0, 1, 0)
	c := sim.Cluster{Devices: 2, MIPS: 1, Bandwidth: 1e6, Links: sim.NIC}

	m := NewGDP(4, 7)
	cfg := TrainConfig{Epochs: 40, Samples: 4, LR: 0.02, Seed: 1, Quiet: true}
	m.TrainOn([]*stream.Graph{g}, c, cfg)
	p := m.Place(g, c)
	if p.Assign[0] != p.Assign[1] {
		t.Fatal("GDP failed to learn colocation on a trivial instance")
	}
}

func TestSampleLogProbsDistribution(t *testing.T) {
	lp := []float64{math.Log(0.7), math.Log(0.3), negInf, negInf}
	counts := make([]int, 4)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		counts[sampleLogProbs(rng, lp, 2)]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatal("sampled masked device")
	}
	frac := float64(counts[0]) / 2000
	if frac < 0.62 || frac > 0.78 {
		t.Fatalf("sample frequency %.3f for p=0.7", frac)
	}
}

func TestHierarchicalGroupCount(t *testing.T) {
	m := NewHierarchical(0, 8, 1)
	if m.Groups != 25 {
		t.Fatalf("default groups %d, want 25 (paper)", m.Groups)
	}
}

func TestAsPlacerAdapter(t *testing.T) {
	ds, c := smallData(t, 1)
	m := NewGDP(8, 9)
	a := AsPlacer{Model: m}
	if a.Name() != "gdp" {
		t.Fatal("adapter name")
	}
	p := a.Place(ds.Test[0], c)
	if err := p.Validate(ds.Test[0]); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceOnCoarseCyclicGraph(t *testing.T) {
	// Coarse graphs can contain cycles; sequential decoding must not hang
	// or panic.
	g := stream.NewGraph(100)
	for i := 0; i < 4; i++ {
		g.AddNode(stream.Node{IPT: 10, Payload: 10})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 3, 0)
	g.Edges = append(g.Edges, stream.Edge{Src: 3, Dst: 1, Payload: 5}) // cycle
	load := []float64{100, 100, 100, 100}
	traffic := []float64{10, 10, 10, 5}
	g.SetDemandOverrides(load, traffic)
	c := sim.DefaultCluster(2, 100)
	m := NewGraphEncDec(4, 8, 11)
	p := m.Place(g, c)
	if len(p.Assign) != 4 {
		t.Fatal("incomplete placement on cyclic graph")
	}
}
