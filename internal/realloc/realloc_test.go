package realloc

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stream"
)

// uniformScorer ranks every edge equally; collapse order then follows
// edge indices, which is enough to exercise the region machinery
// without dragging the full GNN into unit tests.
type uniformScorer struct{}

func (uniformScorer) Probs(g *stream.Graph, c sim.Cluster) []float64 {
	return make([]float64, g.NumEdges())
}

// pipelineGraph builds src -> a -> b -> sink with loads such that two
// devices comfortably sustain the rate but one device alone cannot.
func pipelineGraph(c sim.Cluster) *stream.Graph {
	g := stream.NewGraph(1000)
	// Four nodes totalling ~1.6× one device's capacity: any single
	// device saturates, a 2-device split sustains.
	ipt := 1.6 * c.CapacityOf(0) / (4 * 1000)
	for i := 0; i < 4; i++ {
		g.AddNode(stream.Node{IPT: ipt, Payload: 10, Selectivity: 1})
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	return g
}

func TestLoopRecoversFromDeviceLoss(t *testing.T) {
	c := sim.DefaultCluster(3, 1000)
	g := pipelineGraph(c)
	initial := &stream.Placement{Assign: []int{0, 0, 1, 1}, Devices: 3}
	l, err := New(g, c, uniformScorer{}, initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Nominal tick: no trigger.
	act, err := l.Step(ctx, sim.NominalDrift(3))
	if err != nil {
		t.Fatal(err)
	}
	if act.Triggered || act.Replanned {
		t.Fatalf("nominal tick should be quiet: %+v", act)
	}
	healthy := act.Relative

	// Device 1 dies: half the operators are stranded.
	st := sim.NominalDrift(3)
	st.Available[1] = false
	act, err = l.Step(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Triggered {
		t.Fatal("stranded operators must trigger the detector")
	}
	if !act.Replanned {
		t.Fatalf("a spare device exists; the loop must migrate: %+v", act)
	}
	if act.Relative < 0.9*healthy {
		t.Errorf("post-migration relative %v should recover close to healthy %v", act.Relative, healthy)
	}
	for v, d := range l.Placement().Assign {
		if d == 1 {
			t.Errorf("operator %d still on the lost device", v)
		}
	}
	if act.MoveCost <= 0 || act.Moved == 0 {
		t.Errorf("a real migration must report its cost: %+v", act)
	}
}

func TestLoopPrefersCheaperEquivalentMigration(t *testing.T) {
	// Two parallel two-op chains from one source; chains are equal load
	// but chain A carries megabits of operator state while chain B is
	// stateless. When their shared device dies and either chain could
	// move, the move-cost penalty must pick the placement that moves
	// less state.
	c := sim.DefaultCluster(3, 1e5)
	g := stream.NewGraph(100)
	ipt := 0.6 * c.CapacityOf(0) / 100                           // each worker op: 60% of a device
	g.AddNode(stream.Node{IPT: 0, Selectivity: 1})               // 0 source
	g.AddNode(stream.Node{IPT: ipt, Selectivity: 1, State: 5e7}) // 1 heavy worker
	g.AddNode(stream.Node{IPT: ipt, Selectivity: 1})             // 2 light worker
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	initial := &stream.Placement{Assign: []int{0, 1, 1}, Devices: 3}
	l, err := New(g, c, uniformScorer{}, initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := sim.NominalDrift(3)
	st.Available[1] = false
	act, err := l.Step(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Replanned {
		t.Fatalf("expected a migration: %+v", act)
	}
	a := l.Placement().Assign
	if a[1] == 1 || a[2] == 1 {
		t.Fatalf("workers still on the lost device: %v", a)
	}
	// Both workers had to leave device 1 regardless; the cheap check is
	// that the loop reports the true cost of what it moved.
	rates := g.SteadyRates()
	wantCost := MoveCost(g, rates, 1, l.cfg.MigrationWindow) + MoveCost(g, rates, 2, l.cfg.MigrationWindow)
	if a[0] != 0 {
		wantCost += MoveCost(g, rates, 0, l.cfg.MigrationWindow)
	}
	if math.Abs(act.MoveCost-wantCost) > 1e-9*wantCost {
		t.Errorf("reported move cost %v, want %v", act.MoveCost, wantCost)
	}
	// And the heavy operator's cost dwarfs the light one's.
	if MoveCost(g, rates, 1, 1) < 10*MoveCost(g, rates, 2, 1) {
		t.Errorf("state term not dominating: heavy=%v light=%v",
			MoveCost(g, rates, 1, 1), MoveCost(g, rates, 2, 1))
	}
}

func TestLoopDegradesGracefullyAndRecovers(t *testing.T) {
	// One device, so losing it leaves nowhere to migrate. The graph is
	// light enough that the single device sustains it when up, so the
	// only trigger is the loss itself.
	c := sim.DefaultCluster(1, 1000)
	g := stream.NewGraph(1000)
	ipt := 0.5 * c.CapacityOf(0) / (4 * 1000)
	for i := 0; i < 4; i++ {
		g.AddNode(stream.Node{IPT: ipt, Payload: 10, Selectivity: 1})
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	initial := stream.NewPlacement(4, 1)
	l, err := New(g, c, uniformScorer{}, initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := sim.NominalDrift(1)
	st.Available[0] = false
	act, err := l.Step(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Degraded || act.Replanned {
		t.Fatalf("no feasible migration: expected degraded hold, got %+v", act)
	}
	if !l.Degraded() || obsDegraded.Value() != 1 {
		t.Error("degraded gauge must be raised")
	}
	if !reflect.DeepEqual(l.Placement().Assign, initial.Assign) {
		t.Error("stale placement must be kept under degradation")
	}
	// Same dead state again: the loop holds without re-searching.
	act, err = l.Step(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Degraded {
		t.Fatalf("unchanged dead state should keep the degraded hold: %+v", act)
	}
	// Device returns: the loop recovers and the gauge clears.
	act, err = l.Step(ctx, sim.NominalDrift(1))
	if err != nil {
		t.Fatal(err)
	}
	if act.Degraded || l.Degraded() || obsDegraded.Value() != 0 {
		t.Errorf("recovery must clear the degraded latch: %+v gauge=%v", act, obsDegraded.Value())
	}
}

func TestLoopSurgeTriggersWithoutStranding(t *testing.T) {
	// A 2× surge overloads the single loaded device while a second
	// device idles: the pressure detector (not stranding) must fire and
	// the loop must spread the load.
	c := sim.DefaultCluster(2, 1e5)
	g := pipelineGraph(c)
	initial := stream.NewPlacement(4, 2) // everything on device 0
	l, err := New(g, c, uniformScorer{}, initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := sim.DriftState{RateFactor: 2, BandwidthFactor: 1}
	act, err := l.Step(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Triggered {
		t.Fatal("overload pressure must trigger the detector")
	}
	if !act.Replanned {
		t.Fatalf("an idle device exists; the loop must spread load: %+v", act)
	}
	if l.Placement().UsedDevices() < 2 {
		t.Errorf("surge replan should use both devices: %v", l.Placement().Assign)
	}
}

func TestLoopTrajectoryDeterministic(t *testing.T) {
	c := sim.DefaultCluster(3, 1000)
	timeline := []sim.DriftState{
		sim.NominalDrift(3),
		{RateFactor: 1.8, BandwidthFactor: 1},
		{RateFactor: 1.8, BandwidthFactor: 1, Available: []bool{true, false, true}},
		{RateFactor: 1, BandwidthFactor: 0.5, Available: []bool{true, false, true}},
		sim.NominalDrift(3),
	}
	run := func() ([]Action, []int) {
		g := pipelineGraph(c)
		initial := &stream.Placement{Assign: []int{0, 0, 1, 1}, Devices: 3}
		l, err := New(g, c, uniformScorer{}, initial, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var acts []Action
		for _, st := range timeline {
			a, err := l.Step(context.Background(), st)
			if err != nil {
				t.Fatal(err)
			}
			acts = append(acts, a)
		}
		return acts, append([]int(nil), l.Placement().Assign...)
	}
	acts1, p1 := run()
	acts2, p2 := run()
	if !reflect.DeepEqual(acts1, acts2) {
		t.Errorf("action trajectories differ:\n%v\n%v", acts1, acts2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("final placements differ: %v vs %v", p1, p2)
	}
}

func TestMoveCostAccounting(t *testing.T) {
	c := sim.DefaultCluster(2, 1000)
	g := pipelineGraph(c)
	rates := g.SteadyRates()
	total := TotalMoveCost(g, 1)
	var manual float64
	for v := 0; v < g.NumNodes(); v++ {
		manual += MoveCost(g, rates, v, 1)
	}
	if math.Abs(total-manual) > 1e-9 {
		t.Errorf("TotalMoveCost %v != summed %v", total, manual)
	}
	old := stream.NewPlacement(4, 2)
	nw := old.Clone()
	nw.Assign[2] = 1
	cost, moved := PlacementMoveCost(g, old, nw, 1)
	if moved != 1 {
		t.Errorf("moved = %d, want 1", moved)
	}
	if want := MoveCost(g, rates, 2, 1); math.Abs(cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", cost, want)
	}
	if cost2, m2 := PlacementMoveCost(g, old, old, 1); cost2 != 0 || m2 != 0 {
		t.Errorf("identical placements must cost nothing: %v %d", cost2, m2)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	c := sim.DefaultCluster(2, 1000)
	g := pipelineGraph(c)
	if _, err := New(g, c, nil, stream.NewPlacement(4, 2), DefaultConfig()); err == nil {
		t.Error("nil scorer must be rejected")
	}
	bad := stream.NewPlacement(2, 2) // wrong size
	if _, err := New(g, c, uniformScorer{}, bad, DefaultConfig()); err == nil {
		t.Error("mismatched placement must be rejected")
	}
}
