// candidates.go generates migration candidates for a replan region: the
// region's operators are re-collapsed along the model's merge ranking at
// a few target granularities (the incremental analogue of the pipeline's
// ranking sweep), each grouping is greedily assigned to the available
// devices, and every candidate is scored under the drifted environment.
// Operators outside the region never move — that is what makes the tight
// escalation levels cheap in migration cost.
package realloc

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/stream"
)

// candidate is one scored migration option.
type candidate struct {
	p        *stream.Placement
	rel      float64 // measured relative under the drifted environment
	moveCost float64
	moved    int
}

// candidates re-collapses the region at several granularities and
// scores each resulting placement under st. The returned order is
// deterministic.
func (l *Loop) candidates(region map[int]bool, st sim.DriftState, probs []float64) []candidate {
	// Region operators, in index order for determinism.
	var nodes []int
	for v := 0; v < l.g.NumNodes(); v++ {
		if region[l.cur.Assign[v]] {
			nodes = append(nodes, v)
		}
	}
	if len(nodes) == 0 || st.NumUp(l.c.Devices) == 0 {
		return nil
	}
	inRegion := make([]bool, l.g.NumNodes())
	for _, v := range nodes {
		inRegion[v] = true
	}
	// Internal edges ranked by the scorer's merge probability, matching
	// the pipeline's collapse ordering (ties by edge index).
	type pe struct {
		ei int
		p  float64
	}
	var order []pe
	for ei, e := range l.g.Edges {
		if inRegion[e.Src] && inRegion[e.Dst] {
			order = append(order, pe{ei, probs[ei]})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].p != order[b].p {
			return order[a].p > order[b].p
		}
		return order[a].ei < order[b].ei
	})

	up := st.NumUp(l.c.Devices)
	targets := regionTargets(len(nodes), up)

	// Incremental union-find collapse over region nodes, snapshotting the
	// grouping each time the super-node count crosses the next target.
	parent := make([]int, l.g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	loads := l.g.NodeLoad()
	var out []candidate
	snapshot := func() {
		if p := l.assignRegion(nodes, parent, loads, st); p != nil {
			out = append(out, l.score(p, st))
		}
	}
	comps := len(nodes)
	ti := 0
	for ti < len(targets) && comps <= targets[ti] {
		snapshot()
		ti++
	}
	for _, o := range order {
		if ti >= len(targets) {
			break
		}
		e := l.g.Edges[o.ei]
		ru, rv := find(e.Src), find(e.Dst)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		comps--
		for ti < len(targets) && comps <= targets[ti] {
			snapshot()
			ti++
		}
	}
	return out
}

// regionTargets picks the super-node counts to snapshot: no collapse
// (pure reassignment), intermediate granularities, and down to the
// available device count — descending and deduplicated.
func regionTargets(nRegion, upDevices int) []int {
	raw := []int{
		nRegion,
		(3*nRegion + 3) / 4,
		(nRegion + 1) / 2,
		(nRegion + 3) / 4,
		2 * upDevices,
		upDevices,
	}
	var targets []int
	for _, t := range raw {
		if t < 1 {
			t = 1
		}
		if t > nRegion {
			t = nRegion
		}
		dup := false
		for _, have := range targets {
			if have == t {
				dup = true
				break
			}
		}
		if !dup {
			targets = append(targets, t)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(targets)))
	return targets
}

// assignRegion greedily places the region's super-nodes onto the
// available devices: groups in descending load order go to the device
// with the lowest resulting CPU utilization, on top of the load the
// out-of-region operators already impose. Lost devices keep a vanishing
// capacity so they are never chosen. Ties break toward the lowest
// device index. Returns nil when no device can host.
func (l *Loop) assignRegion(nodes []int, parent []int, loads []float64, st sim.DriftState) *stream.Placement {
	find := func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	// Group region nodes by union-find root, keyed by the smallest
	// member for deterministic ordering.
	groupOf := map[int][]int{}
	for _, v := range nodes {
		r := find(v)
		groupOf[r] = append(groupOf[r], v)
	}
	type group struct {
		lead    int
		members []int
		load    float64
	}
	var groups []group
	for _, members := range groupOf {
		gload := 0.0
		lead := members[0]
		for _, v := range members {
			gload += loads[v]
			if v < lead {
				lead = v
			}
		}
		groups = append(groups, group{lead: lead, members: members, load: gload})
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].load != groups[b].load {
			return groups[a].load > groups[b].load
		}
		return groups[a].lead < groups[b].lead
	})

	dc := l.c.WithDrift(st)
	devLoad := make([]float64, l.c.Devices)
	inRegion := make([]bool, l.g.NumNodes())
	for _, v := range nodes {
		inRegion[v] = true
	}
	for v := 0; v < l.g.NumNodes(); v++ {
		if !inRegion[v] {
			devLoad[l.cur.Assign[v]] += loads[v] * st.RateFactor
		}
	}
	p := l.cur.Clone()
	for _, gr := range groups {
		best, bestU := -1, 0.0
		for d := 0; d < l.c.Devices; d++ {
			if !st.Up(d) {
				continue
			}
			u := (devLoad[d] + gr.load*st.RateFactor) / dc.CapacityOf(d)
			if best == -1 || u < bestU {
				best, bestU = d, u
			}
		}
		if best == -1 {
			return nil
		}
		devLoad[best] += gr.load * st.RateFactor
		for _, v := range gr.members {
			p.Assign[v] = best
		}
	}
	return p
}

// score measures a candidate under the drifted environment and prices
// its migration.
func (l *Loop) score(p *stream.Placement, st sim.DriftState) candidate {
	res, err := sim.SimulateDrift(l.g, p, l.c, st)
	rel := 0.0
	if err == nil {
		rel = res.Relative
	}
	cost, moved := PlacementMoveCost(l.g, l.cur, p, l.cfg.MigrationWindow)
	return candidate{p: p, rel: rel, moveCost: cost, moved: moved}
}
