// Package realloc closes the loop the paper leaves open between a
// one-shot coarsening-based allocation and a long-lived deployment: the
// environment drifts (source surges, devices leaving and joining, link
// class changes), the placement that was optimal at deploy time stops
// being optimal, and migrating operators is not free. The Loop watches
// measured throughput under the current placement, detects bottleneck
// shifts with a windowed throughput/queue-pressure detector, and
// re-collapses only the affected region of the graph — ranked by the
// same merge scores the coarsening model produces — before falling back
// to progressively wider regions and finally a full re-coarsen. Every
// candidate migration is scored as throughput gained minus a move-cost
// penalty (tuples in flight × operator state), so a marginal win never
// justifies draining a heavy stateful operator. When no feasible
// migration beats the stale placement the loop degrades gracefully:
// it keeps the stale placement, raises the realloc_degraded gauge, and
// retries when the environment changes again.
//
// The whole loop is deterministic given its inputs: detectors,
// rankings, and greedy assignments break ties by index, so a drift
// timeline replays to bit-identical recovery trajectories.
package realloc

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Scorer ranks edges for collapse. *core.Model satisfies this; tests
// and baselines can substitute cheaper rankings.
type Scorer interface {
	Probs(g *stream.Graph, c sim.Cluster) []float64
}

// Config tunes the re-allocation loop.
type Config struct {
	// Window is the detector's sliding window length in ticks.
	Window int
	// DropFrac triggers a replan when measured relative throughput falls
	// below (1-DropFrac) × the window maximum.
	DropFrac float64
	// MoveCostWeight is λ in utility = relative − λ·(moveCost/totalCost):
	// how much normalized migration cost offsets a throughput gain.
	MoveCostWeight float64
	// MigrationWindow is the drain horizon in seconds used by the move
	// cost model: tuples in flight ≈ input rate × MigrationWindow.
	MigrationWindow float64
	// MaxRegionDevices bounds the tight replan region; each escalation
	// level doubles it until the region covers the whole cluster.
	MaxRegionDevices int
	// Retry drives the escalation schedule: attempt 0 re-collapses the
	// tight region, attempt 1 a doubled region, the final attempt the
	// whole graph. Leave BaseDelay 0 for deterministic (sleep-free)
	// replanning; set it for wall-clock deployments that want backoff
	// between escalations.
	Retry resilience.RetryConfig
}

// DefaultConfig returns the tuning used by the drift experiment.
func DefaultConfig() Config {
	return Config{
		Window:           4,
		DropFrac:         0.1,
		MoveCostWeight:   0.3,
		MigrationWindow:  1.0,
		MaxRegionDevices: 2,
		Retry:            resilience.RetryConfig{Attempts: 3},
	}
}

func (cfg Config) withDefaults() Config {
	d := DefaultConfig()
	if cfg.Window <= 0 {
		cfg.Window = d.Window
	}
	if cfg.DropFrac <= 0 {
		cfg.DropFrac = d.DropFrac
	}
	if cfg.MoveCostWeight < 0 {
		cfg.MoveCostWeight = d.MoveCostWeight
	}
	if cfg.MigrationWindow <= 0 {
		cfg.MigrationWindow = d.MigrationWindow
	}
	if cfg.MaxRegionDevices <= 0 {
		cfg.MaxRegionDevices = d.MaxRegionDevices
	}
	if cfg.Retry.Attempts <= 0 {
		cfg.Retry.Attempts = d.Retry.Attempts
	}
	return cfg
}

// MoveCost is the cost of migrating operator v: the tuples in flight
// that must be drained or replayed (input rate × MigrationWindow) times
// a factor for the operator state that must be transferred (1 + state
// in Mb). Rates are the graph's nominal steady rates — the cost of a
// move is a property of the operator, not of the instant it happens.
func MoveCost(g *stream.Graph, rates []float64, v int, window float64) float64 {
	inRate := 0.0
	if len(g.InEdges(v)) == 0 {
		inRate = g.SourceRate
	}
	for _, ei := range g.InEdges(v) {
		inRate += rates[g.Edges[ei].Src]
	}
	inflight := inRate * window
	return (1 + inflight) * (1 + g.Nodes[v].State/1e6)
}

// PlacementMoveCost sums MoveCost over every operator the new placement
// migrates, and counts them.
func PlacementMoveCost(g *stream.Graph, old, new *stream.Placement, window float64) (cost float64, moved int) {
	rates := g.SteadyRates()
	for v := 0; v < g.NumNodes(); v++ {
		if old.Assign[v] != new.Assign[v] {
			cost += MoveCost(g, rates, v, window)
			moved++
		}
	}
	return cost, moved
}

// TotalMoveCost is the cost of migrating every operator — the
// normalizer that makes move costs comparable across graphs.
func TotalMoveCost(g *stream.Graph, window float64) float64 {
	rates := g.SteadyRates()
	total := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		total += MoveCost(g, rates, v, window)
	}
	return total
}

// Action reports what one Step did.
type Action struct {
	// Triggered reports whether the drift detector fired this tick.
	Triggered bool
	// Replanned reports whether a migration was adopted.
	Replanned bool
	// Degraded reports whether the loop is holding a stale placement
	// because no feasible migration improved on it.
	Degraded bool
	// Escalation is the replan level that produced the adopted placement
	// (0 = tight region, 1 = widened, 2 = full re-coarsen); -1 when no
	// replan was adopted.
	Escalation int
	// Moved is the number of operators the adopted migration relocates.
	Moved int
	// MoveCost is the migration cost of the adopted move (0 if none).
	MoveCost float64
	// Relative is the measured relative throughput under the placement
	// that is live at the END of the tick (post-migration if one was
	// adopted).
	Relative float64
}

// ErrNoFeasible reports that no candidate migration improved on the
// stale placement at any escalation level.
var ErrNoFeasible = errors.New("realloc: no feasible migration improves on the stale placement")

// Loop is the drift-reactive re-allocation loop for one deployment.
type Loop struct {
	cfg    Config
	g      *stream.Graph
	c      sim.Cluster
	scorer Scorer
	cur    *stream.Placement

	window    []float64 // recent measured relatives under the live placement
	degraded  bool
	lastFail  sim.DriftState // environment of the last failed replan
	hasFail   bool
	totalCost float64 // TotalMoveCost normalizer, computed once
}

// New builds a loop starting from an initial placement.
func New(g *stream.Graph, c sim.Cluster, scorer Scorer, initial *stream.Placement, cfg Config) (*Loop, error) {
	if err := initial.Validate(g); err != nil {
		return nil, fmt.Errorf("realloc: %w", err)
	}
	if scorer == nil {
		return nil, errors.New("realloc: nil scorer")
	}
	cfg = cfg.withDefaults()
	return &Loop{
		cfg:       cfg,
		g:         g,
		c:         c,
		scorer:    scorer,
		cur:       initial.Clone(),
		totalCost: TotalMoveCost(g, cfg.MigrationWindow),
	}, nil
}

// Placement returns the live placement (not a copy; do not mutate).
func (l *Loop) Placement() *stream.Placement { return l.cur }

// Degraded reports whether the loop is currently holding a stale
// placement it could not improve.
func (l *Loop) Degraded() bool { return l.degraded }

// Step observes one tick of the drift timeline: it measures the live
// placement under st, runs the detector, and — when drift is detected —
// replans with escalating scope, migrating only when a candidate's
// throughput gain survives the move-cost penalty.
func (l *Loop) Step(ctx context.Context, st sim.DriftState) (Action, error) {
	if err := st.Validate(l.c.Devices); err != nil {
		return Action{}, err
	}
	obsSteps.Inc()
	measured, err := sim.SimulateDrift(l.g, l.cur, l.c, st)
	if err != nil {
		return Action{}, err
	}
	act := Action{Escalation: -1, Relative: measured.Relative}

	if !l.detect(measured, st) {
		// Healthy tick: remember it and clear any degraded latch.
		l.pushWindow(measured.Relative)
		if l.degraded {
			l.degraded, l.hasFail = false, false
			obsDegraded.Set(0)
		}
		return act, nil
	}
	act.Triggered = true
	obsTriggers.Inc()

	// Degraded and the world has not changed since the failed attempt:
	// replanning again would redo the same search for the same answer.
	// Hold the stale placement until the environment moves.
	if l.degraded && l.hasFail && st.Equal(l.lastFail) {
		act.Degraded = true
		l.pushWindow(measured.Relative)
		return act, nil
	}

	sp := obs.Start(ctx, "realloc.replan")
	adopted, escalation, rerr := l.replan(ctx, st, measured)
	sp.End()
	if rerr != nil {
		if ctx.Err() != nil {
			return Action{}, rerr
		}
		// Graceful degradation: keep the stale placement, raise the
		// gauge, and retry (via the detector) when the state changes.
		l.degraded, l.hasFail = true, true
		l.lastFail = cloneState(st)
		obsDegraded.Set(1)
		obsDegradedTotal.Inc()
		act.Degraded = true
		l.pushWindow(measured.Relative)
		return act, nil
	}

	cost, moved := PlacementMoveCost(l.g, l.cur, adopted.p, l.cfg.MigrationWindow)
	l.cur = adopted.p
	l.degraded, l.hasFail = false, false
	obsDegraded.Set(0)
	obsReplans.Inc()
	obsMigrations.Add(uint64(moved))
	// The old window baselined the old placement; start fresh.
	l.window = l.window[:0]
	l.pushWindow(adopted.rel)
	act.Replanned = true
	act.Escalation = escalation
	act.Moved = moved
	act.MoveCost = cost
	act.Relative = adopted.rel
	return act, nil
}

// detect is the windowed throughput/queue-pressure detector. It fires
// when operators sit on unavailable devices (stranded load), when the
// offered load exceeds what the placement sustains by more than
// DropFrac (relative < 1-DropFrac means the bottleneck's queues grow
// without bound in the fluid model — the queue-depth signal), or when
// measured relative throughput dropped by DropFrac against the recent
// window maximum (a bottleneck shift that still sustains, but worse).
func (l *Loop) detect(measured sim.Result, st sim.DriftState) bool {
	for d := 0; d < l.c.Devices; d++ {
		if !st.Up(d) && l.hostsOps(d) {
			return true
		}
	}
	if measured.Relative < 1-l.cfg.DropFrac {
		return true
	}
	if len(l.window) > 0 {
		peak := l.window[0]
		for _, r := range l.window[1:] {
			if r > peak {
				peak = r
			}
		}
		if measured.Relative < (1-l.cfg.DropFrac)*peak {
			return true
		}
	}
	return false
}

func (l *Loop) hostsOps(d int) bool {
	for _, a := range l.cur.Assign {
		if a == d {
			return true
		}
	}
	return false
}

func (l *Loop) pushWindow(rel float64) {
	l.window = append(l.window, rel)
	if len(l.window) > l.cfg.Window {
		l.window = l.window[len(l.window)-l.cfg.Window:]
	}
}

// replan searches for a migration with escalating scope. Escalation is
// driven through resilience.Retry so wall-clock deployments inherit its
// backoff and context handling; with BaseDelay 0 the schedule is pure
// control flow and fully deterministic.
func (l *Loop) replan(ctx context.Context, st sim.DriftState, measured sim.Result) (candidate, int, error) {
	probs := l.scorer.Probs(l.g, l.c)
	stay := l.utility(measured.Relative, 0)
	var adopted candidate
	level := -1
	err := resilience.Retry(ctx, l.cfg.Retry, func() error {
		level++
		region := l.selectRegion(measured, st, level)
		cands := l.candidates(region, st, probs)
		best, ok := l.pickBest(cands, stay)
		if !ok {
			return ErrNoFeasible
		}
		adopted = best
		return nil
	})
	if err != nil {
		return candidate{}, -1, err
	}
	return adopted, level, nil
}

// utility trades throughput against normalized migration cost.
func (l *Loop) utility(rel, moveCost float64) float64 {
	return rel - l.cfg.MoveCostWeight*moveCost/(l.totalCost+1e-12)
}

// pickBest returns the candidate with the highest utility that strictly
// beats staying put. Ties prefer the cheaper migration, then the
// earlier candidate — all deterministic.
func (l *Loop) pickBest(cands []candidate, stay float64) (candidate, bool) {
	best := candidate{}
	bestU := stay
	found := false
	for _, cd := range cands {
		u := l.utility(cd.rel, cd.moveCost)
		if u > bestU+1e-12 || (found && u > bestU-1e-12 && cd.moveCost < best.moveCost-1e-12) {
			best, bestU, found = cd, u, true
		}
	}
	return best, found
}

func cloneState(st sim.DriftState) sim.DriftState {
	out := st
	out.Available = append([]bool(nil), st.Available...)
	return out
}

// selectRegion picks the devices whose operators are eligible to move
// at the given escalation level: the level-scaled number of most
// pressured devices (stranded devices dominate — their vanishing
// capacity makes measured utilization enormous). The final level always
// covers the whole cluster.
func (l *Loop) selectRegion(measured sim.Result, st sim.DriftState, level int) map[int]bool {
	size := l.cfg.MaxRegionDevices << level
	lastLevel := l.cfg.Retry.Attempts - 1
	if level >= lastLevel || size >= l.c.Devices {
		size = l.c.Devices
	}
	type dp struct {
		d        int
		pressure float64
	}
	var hosts []dp
	for d := 0; d < l.c.Devices; d++ {
		if !l.hostsOps(d) {
			continue
		}
		p := measured.DeviceUtil[d]
		if measured.NetUtil[d] > p {
			p = measured.NetUtil[d]
		}
		hosts = append(hosts, dp{d, p})
	}
	sort.Slice(hosts, func(i, j int) bool {
		if hosts[i].pressure != hosts[j].pressure {
			return hosts[i].pressure > hosts[j].pressure
		}
		return hosts[i].d < hosts[j].d
	})
	region := map[int]bool{}
	for i := 0; i < len(hosts) && i < size; i++ {
		region[hosts[i].d] = true
	}
	// The measured bottleneck is always worth replanning around.
	if measured.Bottleneck != sim.BottleneckNone && l.hostsOps(measured.BottleneckDevice) {
		region[measured.BottleneckDevice] = true
	}
	return region
}

// Process-wide re-allocation metrics.
var (
	obsSteps         = obs.Default.Counter("realloc_steps_total")
	obsTriggers      = obs.Default.Counter("realloc_triggers_total")
	obsReplans       = obs.Default.Counter("realloc_replans_total")
	obsMigrations    = obs.Default.Counter("realloc_migrations_total")
	obsDegradedTotal = obs.Default.Counter("realloc_degraded_total")
	obsDegraded      = obs.Default.Gauge("realloc_degraded")
)
