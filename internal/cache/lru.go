// Package cache provides a small, dependency-free, mutex-guarded LRU with
// exact (collision-free) keys. It generalizes the reward memoization cache
// that the REINFORCE loop has used since PR 3 so the same implementation can
// back any bounded memoization: reward-by-decision in training, and
// placement-by-graph-fingerprint in the inference server. Keys are whatever
// comparable type the caller picks — the cache never hashes or truncates
// them, so a hit can never alias a different key.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// LRU is a bounded least-recently-used cache, safe for concurrent use.
// The zero value is not usable; construct with New.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*list.Element
	order   *list.List // front = most recently used
	hits    uint64
	misses  uint64
	// Optional continuous counters mirroring hits/misses (nil-safe).
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU bounded to capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:     capacity,
		entries: make(map[K]*list.Element, capacity),
		order:   list.New(),
	}
}

// Instrument mirrors every hit and miss into the given obs counters so a
// live /metrics scrape sees cache effectiveness without polling Stats().
// Either counter may be nil (obs.Counter methods are nil-safe).
func (c *LRU[K, V]) Instrument(hits, misses *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsHits, c.obsMisses = hits, misses
}

// Get returns the value for key and whether it was present, marking the
// entry most-recently-used on a hit.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.obsMisses.Inc()
		var zero V
		return zero, false
	}
	c.hits++
	c.obsHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put stores the value for key, evicting the least-recently-used entry
// when the cache is full. Re-putting an existing key updates its value and
// marks it most-recently-used.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[K, V]).key)
	}
	c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the configured capacity bound.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Stats returns the cumulative hit and miss counts.
func (c *LRU[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear drops every entry (hit/miss counters are retained). Use when the
// key namespace changes meaning, e.g. between curriculum levels or after a
// model reload invalidates every cached value.
func (c *LRU[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	c.order.Init()
}
