package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestLRUBasic(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v want 1,true", v, ok)
	}
	// "a" is now MRU; inserting "c" must evict "b".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost after eviction: %v,%v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c missing: %v,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 2 {
		t.Fatalf("Stats = %d,%d want 3,2", hits, misses)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "x")
	c.Put(2, "y")
	c.Put(1, "z") // update marks 1 MRU
	c.Put(3, "w") // evicts 2, not 1
	if v, ok := c.Get(1); !ok || v != "z" {
		t.Fatalf("Get(1) = %q,%v want z,true", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
}

func TestLRUClearAndMinCap(t *testing.T) {
	c := New[string, int](0) // clamps to 1
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d want 1", c.Cap())
	}
	c.Put("a", 1)
	c.Put("b", 2) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be gone at cap 1")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived Clear")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses == 0 {
		t.Fatalf("counters should survive Clear: %d,%d", hits, misses)
	}
}

func TestLRUInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter("test_hits_total")
	misses := reg.Counter("test_misses_total")
	c := New[string, int](4)
	c.Instrument(hits, misses)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("zzz")
	if got := hits.Value(); got != 2 {
		t.Fatalf("obs hits = %d want 2", got)
	}
	if got := misses.Value(); got != 1 {
		t.Fatalf("obs misses = %d want 1", got)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w*31 + i) % 100
				if v, ok := c.Get(k); ok && v != k*2 {
					panic(fmt.Sprintf("corrupt value for %d: %d", k, v))
				}
				c.Put(k, k*2)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len %d exceeds cap 64", c.Len())
	}
}
