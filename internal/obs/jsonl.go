// jsonl.go is the generic append-only JSONL sink shared by the
// training-curve writer and the serving access log: one JSON object per
// line, concurrency-safe, nil-safe, and inert after the first write
// error so a full disk degrades to "no log" instead of failing the
// workload it observes.
package obs

import (
	"encoding/json"
	"os"
	"sync"
)

// JSONLWriter appends arbitrary records as JSON lines. Safe for
// concurrent use; nil-safe (a nil writer drops records).
type JSONLWriter struct {
	mu  sync.Mutex
	f   *os.File // non-nil when CreateJSONL opened the sink
	enc *json.Encoder
	n   int
	err error
}

// CreateJSONL opens (truncating) a JSONL file at path.
func CreateJSONL(path string) (*JSONLWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONLWriter{f: f, enc: json.NewEncoder(f)}, nil
}

// NewJSONLWriter wraps an arbitrary encoder sink (tests, buffers).
func NewJSONLWriter(enc *json.Encoder) *JSONLWriter {
	return &JSONLWriter{enc: enc}
}

// Write appends one record. No-op on a nil writer; after the first
// write error the writer goes inert and the error is kept for Err.
func (w *JSONLWriter) Write(rec any) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := w.enc.Encode(rec); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Len returns the number of records written so far (0 on nil).
func (w *JSONLWriter) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Err returns the first write error, if any.
func (w *JSONLWriter) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Sync flushes a file-backed writer to stable storage (no-op
// otherwise) — the hook signal handlers use so a drain or reload never
// loses buffered records.
func (w *JSONLWriter) Sync() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if err := w.f.Sync(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Close flushes and closes a file-backed writer (no-op otherwise). It
// returns the first write error even for non-file sinks. Idempotent.
func (w *JSONLWriter) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}
