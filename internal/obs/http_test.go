package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsRoundTrip scrapes /metrics over a real HTTP round-trip and
// checks the Prometheus exposition carries the registry's state.
func TestMetricsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("train_steps_total").Add(42)
	reg.Gauge("epoch_reward").Set(0.875)
	h := reg.Histogram("phase_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE train_steps_total counter",
		"train_steps_total 42",
		"# TYPE epoch_reward gauge",
		"epoch_reward 0.875",
		"# TYPE phase_ms histogram",
		`phase_ms_bucket{le="1"} 1`,
		`phase_ms_bucket{le="+Inf"} 2`,
		"phase_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestDebugVars checks /debug/vars serves expvar JSON including the
// registry snapshot under "obs".
func TestDebugVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vars_probe_total").Add(7)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Cmdline  []string `json:"cmdline"`
		Memstats any      `json:"memstats"`
		Obs      Snapshot `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Memstats == nil {
		t.Fatal("expvar memstats missing")
	}
	found := false
	for _, c := range vars.Obs.Counters {
		if c.Name == "vars_probe_total" && c.Value == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("registry snapshot missing from /debug/vars: %+v", vars.Obs)
	}
}

// TestServeLifecycle starts a live listener on :0, scrapes it, and shuts
// it down — the exact path `coarsenrl -listen :0` exercises.
func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("live_total").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "live_total 1") {
		t.Fatalf("live scrape missing counter:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsInFlight pins graceful shutdown: a request already in
// the handler when Shutdown starts must complete with a full response
// rather than a dropped connection.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{body: string(body), err: err}
	}()

	<-entered
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be blocked on the in-flight request, not killing it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request dropped: body=%q err=%v", r.body, r.err)
	}
	// Idempotent: a second shutdown returns the same (nil) outcome.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShutdownDeadline pins the escape hatch: when the drain deadline
// expires with a request still in flight, Shutdown hard-closes and
// returns the deadline error instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + srv.Addr() + "/stuck")
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown should report the expired drain deadline")
	}
}

// TestServeErrSurfaced pins that a failed accept loop is observable: after
// the listener is yanked out from under the server, Err reports the
// failure instead of discarding it.
func TestServeErrSurfaced(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("healthy server reports error: %v", err)
	}
	srv.ln.Close() // simulate the accept loop dying
	deadline := time.After(2 * time.Second)
	for srv.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("accept-loop failure never surfaced via Err")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Err stays sticky through Shutdown.
	if err := srv.Close(); err == nil {
		t.Fatal("Close should surface the serve error")
	}
}
