// curve.go implements the JSONL training-curve sink: one JSON object
// per optimizer step, append-only, trivially parseable by pandas /
// jq / gnuplot. The paper's evaluation is entirely curves (relative
// throughput over training, convergence per curriculum level); this is
// the file those curves are plotted from. The writer is a thin typed
// facade over the shared JSONLWriter.
package obs

import (
	"encoding/json"
	"os"
)

// CurveRecord is one optimizer step of the training curve. PhaseMS maps
// phase name → wall milliseconds spent in that phase during the step
// (summed across batch entries for the worker-side phases, so it is CPU
// time, not critical-path time, under data-parallel training).
type CurveRecord struct {
	Step         int                `json:"step"`
	Level        int                `json:"level"`
	Epoch        int                `json:"epoch"`
	Graphs       int                `json:"graphs"`
	Reward       float64            `json:"reward"`
	Baseline     float64            `json:"baseline"`
	Loss         float64            `json:"loss"`
	Entropy      float64            `json:"entropy"`
	GradNorm     float64            `json:"grad_norm"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	BufferHits   int                `json:"buffer_hits"`
	PhaseMS      map[string]float64 `json:"phase_ms,omitempty"`
}

// CurveWriter appends CurveRecords as JSON lines. Safe for concurrent
// use; nil-safe (a nil writer drops records), so the trainer carries a
// *CurveWriter unconditionally and the disabled path costs a nil check.
type CurveWriter struct {
	w *JSONLWriter
}

// CreateCurve opens (truncating) a JSONL curve file at path.
func CreateCurve(path string) (*CurveWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &CurveWriter{w: &JSONLWriter{f: f, enc: json.NewEncoder(f)}}, nil
}

// NewCurveWriter wraps an arbitrary encoder sink (tests, buffers).
func NewCurveWriter(enc *json.Encoder) *CurveWriter {
	return &CurveWriter{w: NewJSONLWriter(enc)}
}

// Write appends one record. No-op on a nil writer; after the first
// write error the writer goes inert and the error is kept for Err.
func (c *CurveWriter) Write(rec CurveRecord) {
	if c == nil {
		return
	}
	c.w.Write(rec)
}

// Len returns the number of records written so far (0 on nil).
func (c *CurveWriter) Len() int {
	if c == nil {
		return 0
	}
	return c.w.Len()
}

// Err returns the first write error, if any.
func (c *CurveWriter) Err() error {
	if c == nil {
		return nil
	}
	return c.w.Err()
}

// Close flushes and closes a file-backed writer (no-op otherwise). It
// returns the first write error even for non-file sinks.
func (c *CurveWriter) Close() error {
	if c == nil {
		return nil
	}
	return c.w.Close()
}
