// runtime.go is the periodic Go runtime-stats collector: a background
// sampler that mirrors the runtime/metrics counters a long-running
// daemon actually pages on — goroutine count, heap footprint, GC cycle
// count, and the GC stop-the-world pause distribution — into the obs
// registry, so one /metrics scrape answers "is the process itself
// healthy" next to the serving metrics.
package obs

import (
	"runtime/metrics"
	"time"
)

// Runtime metric names read from runtime/metrics. The pause histogram
// name moved in Go 1.22; both spellings are probed so the collector
// works across toolchains and silently skips whatever is absent.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
)

var rmPauseNames = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}

// runtimeCollector owns the registry handles and the incremental pause
// state between samples.
type runtimeCollector struct {
	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	pauses     *Histogram

	samples    []metrics.Sample
	pauseIdx   int      // index into samples of the pause histogram, -1 if unsupported
	prevCounts []uint64 // pause bucket counts at the previous sample
}

func newRuntimeCollector(reg *Registry) *runtimeCollector {
	c := &runtimeCollector{
		goroutines: reg.Gauge("go_goroutines"),
		heapBytes:  reg.Gauge("go_heap_bytes"),
		gcCycles:   reg.Gauge("go_gc_cycles_total"),
		pauses: reg.Histogram("go_gc_pause_ms",
			[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}),
		pauseIdx: -1,
	}
	supported := make(map[string]bool)
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	for _, name := range []string{rmGoroutines, rmHeapBytes, rmGCCycles} {
		if supported[name] {
			c.samples = append(c.samples, metrics.Sample{Name: name})
		}
	}
	for _, name := range rmPauseNames {
		if supported[name] {
			c.pauseIdx = len(c.samples)
			c.samples = append(c.samples, metrics.Sample{Name: name})
			break
		}
	}
	return c
}

// sample reads the runtime metrics once and updates the registry. New
// GC pauses since the previous sample are re-observed into the obs
// histogram at their runtime-bucket upper bound (milliseconds), so the
// exported distribution grows monotonically like any other histogram.
func (c *runtimeCollector) sample() {
	if len(c.samples) == 0 {
		return
	}
	metrics.Read(c.samples)
	for i, s := range c.samples {
		switch s.Name {
		case rmGoroutines:
			c.goroutines.Set(float64(s.Value.Uint64()))
		case rmHeapBytes:
			c.heapBytes.Set(float64(s.Value.Uint64()))
		case rmGCCycles:
			c.gcCycles.Set(float64(s.Value.Uint64()))
		default:
			if i != c.pauseIdx || s.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			h := s.Value.Float64Histogram()
			if c.prevCounts == nil {
				c.prevCounts = make([]uint64, len(h.Counts))
			}
			for b, n := range h.Counts {
				if b >= len(c.prevCounts) || n <= c.prevCounts[b] {
					continue
				}
				// Upper bound of runtime bucket b, seconds → ms. The
				// last bucket is unbounded; fall back to its lower edge.
				var bound float64
				if b+1 < len(h.Buckets) {
					bound = h.Buckets[b+1]
				} else {
					bound = h.Buckets[b]
				}
				for k := c.prevCounts[b]; k < n; k++ {
					c.pauses.Observe(bound * 1e3)
				}
			}
			for b, n := range h.Counts {
				if b < len(c.prevCounts) {
					c.prevCounts[b] = n
				}
			}
		}
	}
}

// StartRuntimeStats launches the periodic collector on reg (Default
// when nil), sampling every interval (default 5s when <= 0). The
// returned stop function takes a final sample and halts the collector;
// it is idempotent.
func StartRuntimeStats(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c := newRuntimeCollector(reg)
	c.sample()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				c.sample()
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-finished
		c.sample()
	}
}
