package obs

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine matches one Prometheus 0.0.4 sample line:
// name{labels} value — the label block optional, the value a Go float.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)

// parseExposition splits an exposition body into TYPE declarations and
// parsed samples, failing the test on any malformed line.
func parseExposition(t *testing.T, body string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("non-numeric sample value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return types, samples
}

// TestPrometheusExpositionCorrectness pins the exposition format against
// the scrape contract: every line parses, histogram buckets are
// cumulative and end at +Inf == _count, _sum/_count agree with the
// observations, and summary quantile lines carry each objective.
func TestPrometheusExpositionCorrectness(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrape_ops_total").Add(3)
	reg.Gauge("scrape_depth").Set(-2.5)
	h := reg.Histogram("scrape_ms", []float64{1, 10, 100})
	obsVals := []float64{0.5, 5, 5, 50, 500}
	for _, v := range obsVals {
		h.Observe(v)
	}
	q := reg.Quantile("scrape_q_ms", QuantileOpts{Window: time.Hour})
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, buf.String())

	for name, want := range map[string]string{
		"scrape_ops_total": "counter",
		"scrape_depth":     "gauge",
		"scrape_ms":        "histogram",
		"scrape_q_ms":      "summary",
	} {
		if got := types[name]; got != want {
			t.Fatalf("# TYPE %s = %q, want %q", name, got, want)
		}
	}

	// Histogram: buckets cumulative and non-decreasing, +Inf equals the
	// total count, _sum matches the observations.
	bounds := []string{"1", "10", "100", "+Inf"}
	prev := -1.0
	for _, le := range bounds {
		key := `scrape_ms_bucket{le="` + le + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, buf.String())
		}
		if v < prev {
			t.Fatalf("bucket %s = %v not cumulative (prev %v)", key, v, prev)
		}
		prev = v
	}
	count := samples["scrape_ms_count"]
	if inf := samples[`scrape_ms_bucket{le="+Inf"}`]; inf != count || count != float64(len(obsVals)) {
		t.Fatalf("+Inf bucket %v / _count %v, want both %d", inf, count, len(obsVals))
	}
	var wantSum float64
	for _, v := range obsVals {
		wantSum += v
	}
	if got := samples["scrape_ms_sum"]; math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("scrape_ms_sum = %v, want %v", got, wantSum)
	}

	// Summary: one parsed line per objective, quantile values monotone
	// within the estimator's relative error, _sum/_count consistent.
	prev = 0
	for _, obj := range DefaultObjectives {
		key := `scrape_q_ms{quantile="` + strconv.FormatFloat(obj, 'g', -1, 64) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing summary line %s in:\n%s", key, buf.String())
		}
		if v < prev {
			t.Fatalf("summary quantiles not monotone: %s = %v after %v", key, v, prev)
		}
		prev = v
	}
	if got := samples["scrape_q_ms_count"]; got != 100 {
		t.Fatalf("scrape_q_ms_count = %v, want 100", got)
	}
	if got := samples["scrape_q_ms_sum"]; math.Abs(got-5050) > 1e-9 {
		t.Fatalf("scrape_q_ms_sum = %v, want 5050", got)
	}
}
