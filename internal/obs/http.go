// http.go exposes the registry over HTTP: /metrics serves the
// Prometheus text exposition, /debug/vars the standard expvar JSON
// (cmdline, memstats, plus the registry snapshot under "obs"). The
// endpoint is opt-in (-listen on the CLIs) and runs on its own mux, so
// it never collides with an application's DefaultServeMux. The same
// Server plumbing hosts any handler via ServeHandler (cmd/allocserve
// mounts its allocation API on it), with graceful shutdown and the
// background serve error surfaced instead of dropped.
package obs

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// expvarReg is the registry /debug/vars reads through the "obs" var.
// Swappable so tests with private registries see their own metrics;
// published into expvar's process-global namespace exactly once.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// HandlerOpts tunes the observability mux.
type HandlerOpts struct {
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose goroutine stacks and heap contents, so
	// daemons gate them behind an explicit flag.
	Pprof bool
}

// Handler returns the observability mux: /metrics (Prometheus text) and
// /debug/vars (expvar JSON including the registry snapshot).
func Handler(reg *Registry) http.Handler {
	return NewHandler(reg, HandlerOpts{})
}

// NewHandler is Handler with options (opt-in /debug/pprof/).
func NewHandler(reg *Registry, opts HandlerOpts) http.Handler {
	if reg == nil {
		reg = Default
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running HTTP endpoint with graceful shutdown.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	errCh chan error // background srv.Serve result, buffered

	mu   sync.Mutex
	done bool
	err  error // serve error observed at shutdown (http.ErrServerClosed filtered)
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port) and returns immediately; requests are handled on a background
// goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler starts h on addr with the same lifecycle plumbing as
// Serve: a background accept loop whose error is surfaced by
// Shutdown/Err rather than silently discarded.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	s := &Server{ln: ln, srv: srv, errCh: make(chan error, 1)}
	go func() {
		s.errCh <- srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline; past the deadline remaining
// connections are closed hard. It returns the background serve error if
// the accept loop failed (http.ErrServerClosed — the normal shutdown
// result — is filtered out), otherwise any shutdown error. Safe to call
// more than once; later calls return the first outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.err
	}
	s.done = true
	shutErr := s.srv.Shutdown(ctx)
	if shutErr != nil {
		// Deadline expired with requests still in flight: close them.
		s.srv.Close()
	}
	// The accept loop has exited either way; collect its error.
	serveErr := <-s.errCh
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if serveErr != nil {
		s.err = serveErr
	} else {
		s.err = shutErr
	}
	return s.err
}

// Err reports, without blocking, whether the background accept loop has
// failed. Before shutdown it polls the serve goroutine; afterwards it
// returns the error Shutdown surfaced.
func (s *Server) Err() error {
	if s == nil || s.srv == nil {
		return nil
	}
	s.mu.Lock()
	if s.done {
		defer s.mu.Unlock()
		return s.err
	}
	s.mu.Unlock()
	select {
	case err := <-s.errCh:
		// Keep it observable for Shutdown, which receives from the channel.
		s.errCh <- err
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	default:
		return nil
	}
}

// Close stops the endpoint gracefully with a 5-second drain deadline,
// then hard-closes whatever is left.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
