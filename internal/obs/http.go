// http.go exposes the registry over HTTP: /metrics serves the
// Prometheus text exposition, /debug/vars the standard expvar JSON
// (cmdline, memstats, plus the registry snapshot under "obs"). The
// endpoint is opt-in (-listen on the CLIs) and runs on its own mux, so
// it never collides with an application's DefaultServeMux.
package obs

import (
	"expvar"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry /debug/vars reads through the "obs" var.
// Swappable so tests with private registries see their own metrics;
// published into expvar's process-global namespace exactly once.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Handler returns the observability mux: /metrics (Prometheus text) and
// /debug/vars (expvar JSON including the registry snapshot).
func Handler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr (":0" picks a free port) and
// returns immediately; requests are handled on a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
