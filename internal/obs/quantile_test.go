package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Quantile deterministically in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestQuantile(opts QuantileOpts) (*Quantile, *fakeClock) {
	q := NewQuantile(opts)
	clk := &fakeClock{t: q.start}
	q.now = clk.now
	return q, clk
}

// TestQuantileAccuracy pins the relative-error bound: for a known
// sample set, every reported quantile is within one growth factor of
// the exact order statistic.
func TestQuantileAccuracy(t *testing.T) {
	q, _ := newTestQuantile(QuantileOpts{})
	for v := 1; v <= 1000; v++ {
		q.Observe(float64(v))
	}
	if got := q.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	if got, want := q.Sum(), 1000.0*1001/2; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 1.0} {
		exact := math.Ceil(p * 1000)
		got := q.Query(p)
		if got < exact || got > exact*1.06 {
			t.Fatalf("Query(%v) = %v, want within [%v, %v]", p, got, exact, exact*1.06)
		}
	}
	if got := q.Query(0); got <= 0 {
		t.Fatalf("Query(0) = %v, want first-bucket bound > 0", got)
	}
}

// TestQuantileDeterministic pins that the same multiset of samples
// always yields bit-identical answers.
func TestQuantileDeterministic(t *testing.T) {
	build := func() *Quantile {
		q, _ := newTestQuantile(QuantileOpts{})
		for v := 0; v < 500; v++ {
			q.Observe(float64(v%37) + 0.25)
		}
		return q
	}
	a, b := build(), build()
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if math.Float64bits(a.Query(p)) != math.Float64bits(b.Query(p)) {
			t.Fatalf("Query(%v) differs across identical builds: %v vs %v", p, a.Query(p), b.Query(p))
		}
	}
}

// TestQuantileWindowExpiry pins the sliding window: samples rotate out
// after Window elapses, and a half-expired window reflects only the
// still-live slices.
func TestQuantileWindowExpiry(t *testing.T) {
	q, clk := newTestQuantile(QuantileOpts{Window: time.Second, Slots: 4})
	for i := 0; i < 100; i++ {
		q.Observe(1000) // slow epoch
	}
	if p := q.Query(0.99); p < 1000 {
		t.Fatalf("p99 = %v with only slow samples, want >= 1000", p)
	}

	// Move past the full window: the slow samples must be gone.
	clk.advance(1250 * time.Millisecond)
	if c := q.Count(); c != 0 {
		t.Fatalf("Count = %d after window expiry, want 0", c)
	}
	if p := q.Query(0.99); p != 0 {
		t.Fatalf("p99 = %v over an empty window, want 0", p)
	}

	// Fresh fast samples dominate a fresh window.
	for i := 0; i < 100; i++ {
		q.Observe(1)
	}
	if p := q.Query(0.99); p >= 1000 {
		t.Fatalf("p99 = %v after recovery, want ~1", p)
	}

	// Straddle: slow samples in the current slice, fast in the next —
	// both are live until the slow slice rotates out.
	clk.advance(250 * time.Millisecond)
	q.Observe(5000)
	if p := q.Query(1.0); p < 5000 {
		t.Fatalf("max = %v with a live slow sample, want >= 5000", p)
	}
	clk.advance(time.Second)
	q.Observe(1)
	if p := q.Query(1.0); p >= 5000 {
		t.Fatalf("max = %v after the slow slice expired, want ~1", p)
	}
}

// TestQuantileClamps pins the range clamps: values at or below Min land
// in the first bucket, values above Max report Max.
func TestQuantileClamps(t *testing.T) {
	q, _ := newTestQuantile(QuantileOpts{Min: 0.01, Max: 100})
	q.Observe(-5)
	q.Observe(0)
	q.Observe(1e9)
	if got := q.Query(0.5); got != 0.01 {
		t.Fatalf("median = %v, want Min bucket bound 0.01", got)
	}
	if got := q.Query(1.0); got != 100 {
		t.Fatalf("max = %v, want Max clamp 100", got)
	}
}

// TestQuantileNilSafe pins the nil contract shared by the registry.
func TestQuantileNilSafe(t *testing.T) {
	var q *Quantile
	q.Observe(1)
	if q.Query(0.99) != 0 || q.Count() != 0 || q.Sum() != 0 {
		t.Fatal("nil Quantile must report zeros")
	}
	snap := q.SnapshotQuantile()
	if len(snap.Objectives) != len(DefaultObjectives) || len(snap.Values) != len(snap.Objectives) {
		t.Fatalf("nil snapshot malformed: %+v", snap)
	}
	var r *Registry
	if r.Quantile("x", QuantileOpts{}) != nil {
		t.Fatal("nil registry must hand out nil quantiles")
	}
}

// TestQuantileRegistry pins registry integration: creation is
// memoized, snapshots are name-sorted, and the Prometheus exposition
// carries summary lines.
func TestQuantileRegistry(t *testing.T) {
	reg := NewRegistry()
	a := reg.Quantile("b_latency_ms", QuantileOpts{})
	if reg.Quantile("b_latency_ms", QuantileOpts{Slots: 99}) != a {
		t.Fatal("second lookup must return the same estimator")
	}
	reg.Quantile("a_wait_ms", QuantileOpts{})
	a.Observe(2)
	a.Observe(4)

	snap := reg.Snapshot()
	if len(snap.Quantiles) != 2 || snap.Quantiles[0].Name != "a_wait_ms" || snap.Quantiles[1].Name != "b_latency_ms" {
		t.Fatalf("snapshot quantiles not name-sorted: %+v", snap.Quantiles)
	}
	if snap.Quantiles[1].Count != 2 {
		t.Fatalf("b_latency_ms count = %d, want 2", snap.Quantiles[1].Count)
	}
}

// TestQuantileConcurrent hammers Observe/Query from many goroutines —
// meaningful under -race.
func TestQuantileConcurrent(t *testing.T) {
	q := NewQuantile(QuantileOpts{Window: 50 * time.Millisecond, Slots: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				q.Observe(float64(w*i%97) + 0.5)
				if i%64 == 0 {
					q.Query(0.99)
					q.Count()
					q.Sum()
				}
			}
		}(w)
	}
	wg.Wait()
}
