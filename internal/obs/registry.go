// Package obs is the repository's zero-dependency observability layer:
// a concurrent metrics registry (counters, gauges, fixed-bucket
// histograms, windowed latency quantiles), a span tracer exporting
// Chrome trace-event JSON, JSONL sinks (training curves, access logs),
// a leveled logger, a periodic Go runtime-stats collector, and an HTTP
// exposition endpoint (/metrics Prometheus text + /debug/vars expvar,
// optional /debug/pprof) — all built on the standard library only.
//
// Design contract:
//
//   - Hot paths are atomic. Counter.Add, Gauge.Set, and
//     Histogram.Observe are lock-free; Snapshot takes the registry
//     mutex only to enumerate metric names, never blocking writers.
//   - Everything is nil-safe. Methods on nil *Counter, *Gauge,
//     *Histogram, *Tracer, *Span, *CurveWriter, and *Logger are no-ops,
//     so instrumented code needs no "is observability on?" branches —
//     disabled instrumentation costs a nil check or a single atomic add.
//   - Observation only. Nothing in this package feeds back into the code
//     it observes: enabling metrics, traces, or curves must never change
//     a training trajectory or a simulation result (the determinism
//     contract of the trainer is tested with instrumentation enabled).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; one extra overflow bucket counts the rest.
// Observe is lock-free; the sum is accumulated with a CAS loop.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Bounds returns the (sorted) upper bucket bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is the point-in-time view of one histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket bounds; Buckets[i] counts observations
	// <= Bounds[i]. Buckets has one extra overflow entry (> last bound).
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// MetricValue pairs a metric name with a scalar value in a snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue pairs a histogram name with its snapshot.
type HistogramValue struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// Snapshot is a deterministic (name-sorted) view of a registry. Values
// are read without stopping writers, so a snapshot taken mid-update is
// internally consistent per metric but not across metrics — exactly the
// guarantee scrape-based monitoring needs.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Quantiles  []QuantileValue  `json:"quantiles,omitempty"`
}

// Registry is a concurrent metric namespace. Metric lookup/creation
// takes a mutex; the returned handles are lock-free, so hot code should
// resolve its handles once (package var or struct field) and hammer
// those.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	quants map[string]*Quantile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		quants: make(map[string]*Quantile),
	}
}

// Default is the process-wide registry. Package-level instrumentation
// (sim, runtime, metis, the reward cache, the trainer) registers here so
// a single -listen flag exposes everything without threading a handle
// through every call signature.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds are ignored for an existing
// histogram). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Quantile returns the named windowed quantile estimator, creating it
// with the given options on first use (opts are ignored for an existing
// estimator; the zero value selects the defaults). A nil registry
// returns a nil (no-op) estimator.
func (r *Registry) Quantile(name string, opts QuantileOpts) *Quantile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.quants[name]
	if !ok {
		q = NewQuantile(opts)
		r.quants[name] = q
	}
	return q
}

// Snapshot returns a deterministic, name-sorted view of every metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	quants := make(map[string]*Quantile, len(r.quants))
	for k, v := range r.quants {
		quants[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{}
	for _, name := range sortedKeys(ctrs) {
		snap.Counters = append(snap.Counters, MetricValue{Name: name, Value: float64(ctrs[name].Value())})
	}
	for _, name := range sortedKeys(gauges) {
		snap.Gauges = append(snap.Gauges, MetricValue{Name: name, Value: gauges[name].Value()})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		hs := HistogramSnapshot{Bounds: h.Bounds(), Count: h.Count(), Sum: h.Sum()}
		hs.Buckets = make([]uint64, len(h.counts))
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, HistogramValue{Name: name, HistogramSnapshot: hs})
	}
	for _, name := range sortedKeys(quants) {
		snap.Quantiles = append(snap.Quantiles, QuantileValue{Name: name, QuantileSnapshot: quants[name].SnapshotQuantile()})
	}
	return snap
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `<name> <value>`, gauges likewise,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %v\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.Buckets {
			cum += b
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%v", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	for _, q := range s.Quantiles {
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", q.Name); err != nil {
			return err
		}
		for i, obj := range q.Objectives {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %v\n", q.Name, fmt.Sprintf("%v", obj), q.Values[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", q.Name, q.Sum, q.Name, q.Count); err != nil {
			return err
		}
	}
	return nil
}
