package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("counter lookup is not idempotent")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("hist sum = %v, want 555.5", h.Sum())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil {
		t.Fatal("nil histogram should be inert")
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}

	var tr *Tracer
	tr.StartSpan("a", 0).End()
	tr.Emit("b", 0, time.Now(), 0)
	if tr.Len() != 0 {
		t.Fatal("nil tracer should record nothing")
	}

	var cw *CurveWriter
	cw.Write(CurveRecord{})
	if cw.Len() != 0 || cw.Err() != nil || cw.Close() != nil {
		t.Fatal("nil curve writer should be inert")
	}

	var lg *Logger
	lg.Infof("dropped")
	lg.SetLevel(LevelDebug)
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

// TestRegistryConcurrency hammers counters, gauges, and histograms from
// many goroutines while snapshots run concurrently; run under -race this
// is the registry's data-race proof, and the final counts prove no
// increment was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_hist", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4)
			}
		}()
	}
	// Concurrent snapshotters racing the writers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for _, h := range snap.Histograms {
				var cum uint64
				for _, b := range h.Buckets {
					cum += b
				}
				// Buckets are read after count, so a racing snapshot may
				// see more bucket increments than count — never fewer.
				if cum < h.Count {
					t.Errorf("snapshot histogram buckets sum %d < count %d", cum, h.Count)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("hammer_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hammer_hist", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
		r.Gauge("g_" + n).Set(1)
	}
	snap := r.Snapshot()
	wantC := []string{"alpha", "mid", "zeta"}
	for i, mv := range snap.Counters {
		if mv.Name != wantC[i] {
			t.Fatalf("counter order %v, want %v", snap.Counters, wantC)
		}
	}
	for i, mv := range snap.Gauges {
		if mv.Name != "g_"+wantC[i] {
			t.Fatalf("gauge order %v", snap.Gauges)
		}
	}
	// Repeat snapshots are identical when nothing changed.
	again := r.Snapshot()
	for i := range snap.Counters {
		if snap.Counters[i] != again.Counters[i] {
			t.Fatal("snapshot not reproducible")
		}
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="2"} 2`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_count 3",
		"lat_ms_sum 101",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeSpecialValues(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("gauge must round-trip +Inf")
	}
	g.Set(-0.0)
	g.Add(12.25)
	if g.Value() != 12.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
}
