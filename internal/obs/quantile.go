// quantile.go implements the windowed streaming quantile estimator
// behind latency SLOs. Fixed-bucket histograms (registry.go) answer
// "how many requests were slower than X", but admission control needs
// the inverse — "what is the p99 right now" — over a sliding window so
// a burst ten minutes ago cannot keep the server in shed mode.
//
// The estimator is HDR-style: values are counted into geometrically
// spaced buckets (relative error bounded by the growth factor, ~5% by
// default), and the buckets live in a ring of time slots that together
// cover the lookback window. Observe is lock-free in the steady state
// (one atomic bucket increment per sample); slot rotation — entering a
// new time slice — takes a mutex to reset the expired slot. Queries
// merge the live slots and walk the cumulative distribution, returning
// the bucket's upper bound, so a given multiset of samples in a given
// window always yields the same answer (deterministic, like the rest of
// the registry). All methods are nil-safe no-ops.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultObjectives are the quantiles exported by snapshots and the
// Prometheus summary: median, p90, p99.
var DefaultObjectives = []float64{0.5, 0.9, 0.99}

// QuantileOpts configures a windowed quantile estimator. The zero value
// selects the defaults noted per field.
type QuantileOpts struct {
	// Window is the total lookback; samples older than this no longer
	// influence queries (default 30s).
	Window time.Duration
	// Slots is the ring granularity: the window is divided into this
	// many slices, and expiry happens a slice at a time (default 6).
	Slots int
	// Min is the smallest distinguishable value; anything at or below
	// it lands in the first bucket (default 1e-3 — 1µs when observing
	// milliseconds).
	Min float64
	// Growth is the geometric bucket growth factor, bounding relative
	// error (default 1.05 ≈ 5%).
	Growth float64
	// Max caps the covered range; larger values clamp into the last
	// bucket (default 1e7 — ~2.8h in milliseconds).
	Max float64
}

func (o QuantileOpts) withDefaults() QuantileOpts {
	if o.Window <= 0 {
		o.Window = 30 * time.Second
	}
	if o.Slots <= 0 {
		o.Slots = 6
	}
	if o.Min <= 0 {
		o.Min = 1e-3
	}
	if o.Growth <= 1 {
		o.Growth = 1.05
	}
	if o.Max <= o.Min {
		o.Max = 1e7
	}
	return o
}

// qslot is one time slice of the ring: a bucket array plus the epoch it
// currently holds, so a stale slot is detected and reset lazily.
type qslot struct {
	epoch   atomic.Int64 // -1 = never used
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func (s *qslot) reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.count.Store(0)
	s.sumBits.Store(0)
}

// Quantile is a windowed streaming quantile estimator. Safe for
// concurrent use; nil-safe (a nil estimator drops observations and
// reports zeros).
type Quantile struct {
	opts     QuantileOpts
	logMin   float64
	logGrow  float64
	nbuckets int
	slotDur  time.Duration
	slots    []qslot

	rotateMu sync.Mutex
	start    time.Time
	now      func() time.Time // test hook; defaults to time.Now
}

// NewQuantile returns a windowed estimator with the given options.
func NewQuantile(opts QuantileOpts) *Quantile {
	o := opts.withDefaults()
	n := 2 + int(math.Ceil(math.Log(o.Max/o.Min)/math.Log(o.Growth)))
	q := &Quantile{
		opts:     o,
		logMin:   math.Log(o.Min),
		logGrow:  math.Log(o.Growth),
		nbuckets: n,
		slotDur:  o.Window / time.Duration(o.Slots),
		slots:    make([]qslot, o.Slots),
		start:    time.Now(),
		now:      time.Now,
	}
	for i := range q.slots {
		q.slots[i].epoch.Store(-1)
		q.slots[i].counts = make([]atomic.Uint64, n)
	}
	return q
}

// bucket maps a value to its bucket index: 0 holds v <= Min, the last
// bucket holds v >= Max, and bucket i in between holds
// (Min·Growth^(i-1), Min·Growth^i].
func (q *Quantile) bucket(v float64) int {
	if v <= q.opts.Min || math.IsNaN(v) {
		return 0
	}
	i := int(math.Ceil((math.Log(v)-q.logMin)/q.logGrow - 1e-12))
	if i < 1 {
		i = 1
	}
	if i >= q.nbuckets {
		i = q.nbuckets - 1
	}
	return i
}

// upper is the deterministic value reported for bucket i: its upper
// bound (Min for bucket 0, Max for the overflow bucket).
func (q *Quantile) upper(i int) float64 {
	if i <= 0 {
		return q.opts.Min
	}
	if i >= q.nbuckets-1 {
		return q.opts.Max
	}
	return q.opts.Min * math.Exp(float64(i)*q.logGrow)
}

// epochAt converts a wall time to a slot epoch.
func (q *Quantile) epochAt(t time.Time) int64 {
	d := t.Sub(q.start)
	if d < 0 {
		d = 0
	}
	return int64(d / q.slotDur)
}

// slotFor returns the ring slot for epoch e, resetting it first if it
// still holds an expired slice.
func (q *Quantile) slotFor(e int64) *qslot {
	s := &q.slots[int(e%int64(len(q.slots)))]
	if s.epoch.Load() != e {
		q.rotateMu.Lock()
		if s.epoch.Load() != e {
			s.reset()
			s.epoch.Store(e)
		}
		q.rotateMu.Unlock()
	}
	return s
}

// Observe records one sample into the current window slice. No-op on a
// nil estimator.
func (q *Quantile) Observe(v float64) {
	if q == nil {
		return
	}
	s := q.slotFor(q.epochAt(q.now()))
	s.counts[q.bucket(v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		cur := math.Float64frombits(old)
		if s.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// live reports whether slot epoch se is inside the window ending at
// epoch e.
func (q *Quantile) live(se, e int64) bool {
	return se >= 0 && se > e-int64(len(q.slots)) && se <= e
}

// Query returns the value at quantile p in [0, 1] over the live window
// (0 when the window holds no samples, or on a nil estimator). The
// answer is the upper bound of the bucket containing the rank, so the
// estimate can overshoot the true quantile by at most one growth factor.
func (q *Quantile) Query(p float64) float64 {
	if q == nil {
		return 0
	}
	e := q.epochAt(q.now())
	var total uint64
	for i := range q.slots {
		if q.live(q.slots[i].epoch.Load(), e) {
			total += q.slots[i].count.Load()
		}
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b := 0; b < q.nbuckets; b++ {
		for i := range q.slots {
			if q.live(q.slots[i].epoch.Load(), e) {
				cum += q.slots[i].counts[b].Load()
			}
		}
		if cum >= rank {
			return q.upper(b)
		}
	}
	return q.upper(q.nbuckets - 1)
}

// Count returns the number of samples in the live window (0 on nil).
func (q *Quantile) Count() uint64 {
	if q == nil {
		return 0
	}
	e := q.epochAt(q.now())
	var total uint64
	for i := range q.slots {
		if q.live(q.slots[i].epoch.Load(), e) {
			total += q.slots[i].count.Load()
		}
	}
	return total
}

// Sum returns the sum of samples in the live window (0 on nil).
func (q *Quantile) Sum() float64 {
	if q == nil {
		return 0
	}
	e := q.epochAt(q.now())
	var sum float64
	for i := range q.slots {
		if q.live(q.slots[i].epoch.Load(), e) {
			sum += math.Float64frombits(q.slots[i].sumBits.Load())
		}
	}
	return sum
}

// SnapshotQuantile captures the default objectives plus window count and
// sum — the exact data the Prometheus summary exposition needs.
func (q *Quantile) SnapshotQuantile() QuantileSnapshot {
	snap := QuantileSnapshot{Objectives: append([]float64(nil), DefaultObjectives...)}
	snap.Values = make([]float64, len(snap.Objectives))
	if q == nil {
		return snap
	}
	for i, p := range snap.Objectives {
		snap.Values[i] = q.Query(p)
	}
	snap.Count = q.Count()
	snap.Sum = q.Sum()
	return snap
}

// QuantileSnapshot is the point-in-time view of one windowed estimator.
type QuantileSnapshot struct {
	// Objectives are the reported quantiles (DefaultObjectives);
	// Values[i] is the window estimate at Objectives[i].
	Objectives []float64 `json:"objectives"`
	Values     []float64 `json:"values"`
	Count      uint64    `json:"count"`
	Sum        float64   `json:"sum"`
}

// QuantileValue pairs an estimator name with its snapshot.
type QuantileValue struct {
	Name string `json:"name"`
	QuantileSnapshot
}
