// logger.go implements the leveled logger the repository's stray
// fmt.Printf call sites route through. The default level is Warn — a
// library must be quiet by default — and the CLIs raise it to Info
// (progress) or Debug (-v).
package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything.
	LevelOff
)

// String returns the level's tag.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "OFF"
	}
}

// Logger is a minimal leveled logger. Level checks are one atomic load,
// so disabled log sites cost nothing measurable; all methods are
// nil-safe.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	// now is swappable for tests.
	now func() time.Time
}

// NewLogger returns a logger writing to w at the given threshold.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.level.Store(int32(level))
	return l
}

// Log is the process-wide default logger: stderr, quiet (Warn) default.
var Log = NewLogger(os.Stderr, LevelWarn)

// SetLevel changes the threshold. No-op on nil.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Level returns the current threshold (LevelOff on nil).
func (l *Logger) Level() Level {
	if l == nil {
		return LevelOff
	}
	return Level(l.level.Load())
}

// Enabled reports whether a message at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.Level()
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	ts := l.now().Format("15:04:05.000")
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s\n", ts, level, msg)
}

// Debugf logs at Debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at Info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at Warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at Error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
