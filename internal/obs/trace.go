// trace.go implements the span tracer. Spans are "complete" Chrome
// trace events (ph "X"): a name, a start timestamp, a duration, and a
// (pid, tid) lane. The exported JSON loads directly into chrome://tracing
// or https://ui.perfetto.dev, giving a per-worker timeline of the
// training phases (encode / sample / simulate / backward / all-reduce /
// checkpoint).
package obs

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace-event record. Timestamps and durations
// are microseconds relative to the tracer's start, as the trace-event
// format specifies. Args carries optional per-event metadata (e.g. the
// request trace id) that chrome://tracing shows in the detail pane.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the on-disk envelope chrome://tracing expects.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer collects spans in memory. All methods are safe for concurrent
// use and nil-safe: a nil tracer hands out nil spans whose End is a
// no-op, so instrumented code pays one nil check when tracing is off.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []TraceEvent
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is one in-flight timed region. End it exactly once.
type Span struct {
	tr   *Tracer
	name string
	tid  int
	t0   time.Time
}

// StartSpan opens a span on worker lane tid. Nil tracer → nil span.
func (t *Tracer) StartSpan(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, tid: tid, t0: time.Now()}
}

// End closes the span, recording a complete ("X") event. No-op on nil.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Emit(s.name, s.tid, s.t0, time.Since(s.t0))
}

// Emit records a complete event from an externally measured interval —
// the path used when one measurement feeds both the tracer and the
// training-curve phase timings. No-op on a nil tracer.
func (t *Tracer) Emit(name string, tid int, start time.Time, d time.Duration) {
	t.EmitArgs(name, tid, start, d, nil)
}

// EmitArgs is Emit with per-event metadata attached (nil args are
// simply omitted from the JSON). No-op on a nil tracer.
func (t *Tracer) EmitArgs(name string, tid int, start time.Time, d time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name,
		Ph:   "X",
		TS:   float64(start.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON writes the trace as Chrome trace-event JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path (chrome://tracing-loadable).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tracerKey carries a Tracer in a context.
type tracerKey struct{}

// WithTracer returns a context carrying tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom extracts the context's tracer (nil when absent).
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// Start opens a span named name on the context's tracer (lane 0). When
// the context carries no tracer the returned span is nil and End is a
// no-op — the ergonomic form for code that already threads a context:
//
//	defer obs.Start(ctx, "simulate").End()
func Start(ctx context.Context, name string) *Span {
	return TracerFrom(ctx).StartSpan(name, 0)
}
