package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debugf("d")
	l.Infof("i")
	l.Warnf("w %d", 1)
	l.Errorf("e")
	out := buf.String()
	if strings.Contains(out, "DEBUG") || strings.Contains(out, "INFO") {
		t.Fatalf("quiet default leaked low-severity lines:\n%s", out)
	}
	if !strings.Contains(out, "WARN  w 1") || !strings.Contains(out, "ERROR e") {
		t.Fatalf("missing warn/error lines:\n%s", out)
	}

	buf.Reset()
	l.SetLevel(LevelDebug)
	l.Debugf("verbose")
	if !strings.Contains(buf.String(), "DEBUG verbose") {
		t.Fatalf("-v level did not emit debug:\n%s", buf.String())
	}
	if l.Level() != LevelDebug {
		t.Fatalf("level = %v", l.Level())
	}
}

func TestDefaultLoggerIsQuiet(t *testing.T) {
	if Log.Level() != LevelWarn {
		t.Fatalf("default logger level = %v, want Warn (quiet default)", Log.Level())
	}
}

func TestLoggerConcurrentUse(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Infof("line")
			}
		}()
	}
	wg.Wait()
	if got := strings.Count(buf.String(), "\n"); got != 800 {
		t.Fatalf("got %d lines, want 800 (interleaved writes?)", got)
	}
}

func TestCurveWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCurveWriter(json.NewEncoder(&buf))
	for i := 0; i < 3; i++ {
		cw.Write(CurveRecord{Step: i + 1, Reward: 0.5, PhaseMS: map[string]float64{"encode": 1.5}})
	}
	if cw.Len() != 3 {
		t.Fatalf("len = %d", cw.Len())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var rec CurveRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if rec.Step != i+1 {
			t.Fatalf("line %d step = %d", i, rec.Step)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateCurveFile(t *testing.T) {
	path := t.TempDir() + "/curve.jsonl"
	cw, err := CreateCurve(path)
	if err != nil {
		t.Fatal(err)
	}
	cw.Write(CurveRecord{Step: 1})
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec CurveRecord
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Step != 1 {
		t.Fatalf("step = %d", rec.Step)
	}
}
