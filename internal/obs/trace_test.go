package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceJSONSchema validates the exported file against the Chrome
// trace-event schema: a top-level traceEvents array of complete ("X")
// events with non-negative microsecond timestamps and durations, and
// the (pid, tid) lanes the instrumentation assigns.
func TestTraceJSONSchema(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("encode", 2)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Emit("all-reduce", 0, time.Now().Add(-2*time.Millisecond), 2*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(file.TraceEvents))
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	names := map[string]bool{}
	for _, ev := range file.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Fatalf("event %q phase %q, want complete (X)", ev.Name, ev.Ph)
		}
		if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %q missing required fields: %+v", ev.Name, ev)
		}
		if *ev.Dur < 0 {
			t.Fatalf("event %q negative duration %v", ev.Name, *ev.Dur)
		}
	}
	if !names["encode"] || !names["all-reduce"] {
		t.Fatalf("missing expected span names: %v", names)
	}
	// The measured span slept ~1ms; its duration must be in microseconds
	// (≥ 500µs), not nanoseconds or milliseconds.
	for _, ev := range file.TraceEvents {
		if ev.Name == "encode" && (*ev.Dur < 500 || *ev.Dur > 1e6) {
			t.Fatalf("encode dur %vµs implausible for a 1ms sleep", *ev.Dur)
		}
	}
}

func TestTracerEmptyWriteIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if _, ok := file["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents must be an array even when empty: %v", file)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers, spans = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				tr.StartSpan("work", w).End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*spans {
		t.Fatalf("recorded %d spans, want %d", tr.Len(), workers*spans)
	}
}

func TestContextTracer(t *testing.T) {
	// No tracer in context: Start yields an inert span.
	Start(context.Background(), "noop").End()

	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom did not round-trip")
	}
	Start(ctx, "ctx-span").End()
	if tr.Len() != 1 {
		t.Fatalf("ctx span not recorded: %d events", tr.Len())
	}
	if ev := tr.Events()[0]; ev.Name != "ctx-span" || ev.TID != 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
}

// TestEmitArgs pins per-event metadata: args survive the JSON
// round-trip, argless events omit the field, and nil tracers stay
// no-ops.
func TestEmitArgs(t *testing.T) {
	var nilTr *Tracer
	nilTr.EmitArgs("x", 0, time.Now(), time.Millisecond, map[string]string{"k": "v"})

	tr := NewTracer()
	t0 := time.Now()
	tr.EmitArgs("forward", 1, t0, 2*time.Millisecond, map[string]string{"trace_id": "abc123"})
	tr.Emit("plain", 1, t0, time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file traceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(file.TraceEvents))
	}
	if got := file.TraceEvents[0].Args["trace_id"]; got != "abc123" {
		t.Fatalf("args did not round-trip: %+v", file.TraceEvents[0])
	}
	if file.TraceEvents[1].Args != nil {
		t.Fatalf("argless event grew args: %+v", file.TraceEvents[1])
	}
	if !strings.Contains(buf.String(), `"args":{"trace_id":"abc123"}`) ||
		strings.Contains(buf.String(), `"plain","ph":"X"`) && strings.Contains(buf.String(), `"args":{}`) {
		t.Fatalf("unexpected serialization: %s", buf.String())
	}
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.StartSpan("x", 0).End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var file traceFile
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 1 {
		t.Fatalf("file has %d events, want 1", len(file.TraceEvents))
	}
}
