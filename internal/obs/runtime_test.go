package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRuntimeStats pins the collector: after a sample, the process
// gauges carry live values, and forcing a GC grows the pause histogram.
func TestRuntimeStats(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeStats(reg, time.Hour) // sampling driven by start + stop only
	runtime.GC()
	runtime.GC()
	stop()
	stop() // idempotent

	if g := reg.Gauge("go_goroutines").Value(); g < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", g)
	}
	if h := reg.Gauge("go_heap_bytes").Value(); h <= 0 {
		t.Fatalf("go_heap_bytes = %v, want > 0", h)
	}
	if c := reg.Gauge("go_gc_cycles_total").Value(); c < 2 {
		t.Fatalf("go_gc_cycles_total = %v, want >= 2 after forced GCs", c)
	}
	if n := reg.Histogram("go_gc_pause_ms", nil).Count(); n < 2 {
		t.Fatalf("go_gc_pause_ms count = %d, want >= 2 after forced GCs", n)
	}
}

// TestPprofOptIn pins the gate: /debug/pprof/ is absent on the default
// handler and live when HandlerOpts.Pprof is set.
func TestPprofOptIn(t *testing.T) {
	off := httptest.NewServer(Handler(NewRegistry()))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without opt-in: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(NewHandler(NewRegistry(), HandlerOpts{Pprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/goroutine with opt-in: status %d body %q", resp.StatusCode, body[:min(len(body), 80)])
	}
}

// TestJSONLWriter pins the shared sink: records round-trip as one JSON
// object per line, Sync/Close are safe, and a write error makes the
// writer inert.
func TestJSONLWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	w, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	w.Write(rec{1, "x"})
	w.Write(rec{2, "y"})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var got rec
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil || got != (rec{2, "y"}) {
		t.Fatalf("line 2 = %q (%v)", lines[1], err)
	}

	// Unencodable record → inert writer with a kept error.
	var buf bytes.Buffer
	bw := NewJSONLWriter(json.NewEncoder(&buf))
	bw.Write(map[string]any{"bad": func() {}})
	if bw.Err() == nil {
		t.Fatal("unencodable record must surface an error")
	}
	bw.Write(rec{3, "z"})
	if bw.Len() != 0 {
		t.Fatal("writer must go inert after the first error")
	}

	// Nil safety.
	var nw *JSONLWriter
	nw.Write(rec{})
	if nw.Len() != 0 || nw.Err() != nil || nw.Sync() != nil || nw.Close() != nil {
		t.Fatal("nil JSONLWriter must be a no-op")
	}
	if errors.Is(nw.Err(), os.ErrInvalid) {
		t.Fatal("unexpected nil-writer error")
	}
}
