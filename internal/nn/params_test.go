package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func twoParamSet(seed int64) *ParamSet {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(seed))
	ps.NewXavier("a", 3, 4, rng)
	ps.NewXavier("b", 2, 2, rng)
	return ps
}

func TestLoadParamsLegacyFormatStillLoads(t *testing.T) {
	ps1 := twoParamSet(1)
	path := filepath.Join(t.TempDir(), "legacy.json")
	// Hand-write the legacy bare-map format.
	legacy := `{"a":{"rows":3,"cols":4,"data":[1,1,1,1,1,1,1,1,1,1,1,1]},` +
		`"b":{"rows":2,"cols":2,"data":[5,6,7,8]}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(ps1, path); err != nil {
		t.Fatalf("legacy format must stay loadable: %v", err)
	}
	if ps1.Get("b").Value.Data[3] != 8 {
		t.Errorf("legacy values not applied: %v", ps1.Get("b").Value.Data)
	}
}

func TestLoadParamsRejectsTruncatedJSON(t *testing.T) {
	ps := twoParamSet(1)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SaveParams(ps, path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)*2/3], 0o644)
	err := LoadParams(twoParamSet(2), path)
	if err == nil {
		t.Fatal("truncated file must be rejected")
	}
	if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error should describe the corruption: %v", err)
	}
}

func TestLoadParamsRejectsChecksumMismatch(t *testing.T) {
	ps := twoParamSet(1)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SaveParams(ps, path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Corrupt one digit inside the payload without breaking JSON syntax.
	s := string(data)
	idx := strings.Index(s, `"value"`)
	if idx < 0 {
		idx = strings.Index(s, `"data"`)
	}
	for i := idx; i < len(s); i++ {
		if s[i] >= '1' && s[i] <= '8' {
			s = s[:i] + "9" + s[i+1:]
			break
		}
	}
	os.WriteFile(path, []byte(s), 0o644)
	err := LoadParams(twoParamSet(2), path)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

func TestLoadParamsRejectsPartialFile(t *testing.T) {
	// A file holding only parameter "a" must not silently leave "b" at its
	// previous values.
	path := filepath.Join(t.TempDir(), "partial.json")
	partial := `{"a":{"rows":3,"cols":4,"data":[0,0,0,0,0,0,0,0,0,0,0,0]}}`
	if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(twoParamSet(1), path)
	if err == nil || !strings.Contains(err.Error(), "missing parameters") {
		t.Fatalf("want missing-parameter error, got %v", err)
	}
}

func TestLoadParamsRejectsShortDataVector(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.json")
	short := `{"a":{"rows":3,"cols":4,"data":[1,2,3]},` +
		`"b":{"rows":2,"cols":2,"data":[5,6,7,8]}}`
	if err := os.WriteFile(path, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	ps := twoParamSet(1)
	before := append([]float64(nil), ps.Get("a").Value.Data...)
	err := LoadParams(ps, path)
	if err == nil || !strings.Contains(err.Error(), "truncated data") {
		t.Fatalf("want truncated-data error, got %v", err)
	}
	for i, v := range ps.Get("a").Value.Data {
		if v != before[i] {
			t.Fatal("failed load must not modify the model")
		}
	}
}

func TestStateMapRoundTripIncludesMoments(t *testing.T) {
	ps := twoParamSet(3)
	opt := NewAdam(0.01)
	// Take a few optimizer steps so moments are non-zero.
	for s := 0; s < 3; s++ {
		for _, p := range ps.All() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = float64(i%3) - 1
			}
		}
		opt.Step(ps)
	}
	st := ps.StateMap()
	ps2 := twoParamSet(4)
	if err := ps2.RestoreStateMap(st); err != nil {
		t.Fatal(err)
	}
	a1, a2 := ps.Get("a"), ps2.Get("a")
	for i := range a1.Value.Data {
		if a1.Value.Data[i] != a2.Value.Data[i] || a1.m.Data[i] != a2.m.Data[i] || a1.v.Data[i] != a2.v.Data[i] {
			t.Fatalf("state mismatch at a[%d]", i)
		}
	}
	// Deep copy: mutating the snapshot must not touch ps.
	st["a"].Value[0] = 999
	if a1.Value.Data[0] == 999 {
		t.Error("StateMap must deep-copy")
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	a := NewAdam(0.005)
	ps := twoParamSet(1)
	a.Step(ps)
	a.Step(ps)
	st := a.State()
	b := NewAdam(0.1)
	b.SetState(st)
	if b.LR != 0.005 || b.StepCount() != 2 || b.Beta2 != a.Beta2 {
		t.Errorf("restored state mismatch: %+v", b.State())
	}
}

func TestCheckFiniteGrads(t *testing.T) {
	ps := twoParamSet(1)
	if err := ps.CheckFiniteGrads(); err != nil {
		t.Fatal(err)
	}
	ps.Get("b").Grad.Data[2] = math.NaN()
	err := ps.CheckFiniteGrads()
	if err == nil || !strings.Contains(err.Error(), "b[2]") {
		t.Fatalf("want NaN error naming b[2], got %v", err)
	}
	ps.Get("b").Grad.Data[2] = math.Inf(1)
	if ps.CheckFiniteGrads() == nil {
		t.Error("Inf gradient must be caught")
	}
	ps.Get("b").Grad.Data[2] = 0
	ps.Get("a").Value.Data[0] = math.NaN()
	if ps.CheckFiniteValues() == nil {
		t.Error("NaN value must be caught")
	}
}
