package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

func TestParamSetRegistration(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("w", 2, 3)
	if ps.Get("w") != p {
		t.Fatal("lookup failed")
	}
	if ps.Count() != 6 {
		t.Fatalf("count = %d", ps.Count())
	}
	if len(ps.All()) != 1 {
		t.Fatal("all")
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ps := NewParamSet()
	ps.New("w", 1, 1)
	ps.New("w", 1, 1)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - target_i)^2 by feeding grad = 2(w - target).
	ps := NewParamSet()
	w := ps.New("w", 1, 4)
	target := []float64{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		for i := range w.Grad.Data {
			w.Grad.Data[i] = 2 * (w.Value.Data[i] - target[i])
		}
		opt.Step(ps)
	}
	for i, tv := range target {
		if math.Abs(w.Value.Data[i]-tv) > 0.01 {
			t.Fatalf("w[%d] = %g, want %g", i, w.Value.Data[i], tv)
		}
	}
	if opt.StepCount() != 500 {
		t.Fatalf("steps = %d", opt.StepCount())
	}
}

func TestAdamClipsGlobalNorm(t *testing.T) {
	ps := NewParamSet()
	w := ps.New("w", 1, 1)
	opt := NewAdam(0.1)
	opt.ClipNorm = 1
	w.Grad.Data[0] = 1000
	before := w.Value.Data[0]
	opt.Step(ps)
	// With clipping, the first Adam step is bounded by ~lr regardless of
	// raw gradient magnitude.
	if d := math.Abs(w.Value.Data[0] - before); d > 0.2 {
		t.Fatalf("step moved %g, expected bounded", d)
	}
}

func TestLinearShapesAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	l := NewLinear(ps, "l", 3, 2, rng)
	tape := autodiff.NewTape()
	b := NewBinder(tape)
	x := tensor.New(4, 3)
	x.RandUniform(rng, 1)
	y := l.Apply(b, tape.Const(x))
	if y.Value.Rows != 4 || y.Value.Cols != 2 {
		t.Fatalf("shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
	tape.Backward(tape.Sum(y), nil)
	b.Collect()
	if l.W.Grad.MaxAbs() == 0 || l.B.Grad.MaxAbs() == 0 {
		t.Fatal("no gradient reached the linear layer")
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := NewParamSet()
	mlp := NewMLP(ps, "m", []int{2, 8, 1}, ActTanh, ActSigmoid, rng)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	opt := NewAdam(0.05)
	for epoch := 0; epoch < 800; epoch++ {
		tape := autodiff.NewTape()
		b := NewBinder(tape)
		x := tensor.FromRows(inputs)
		pred := mlp.Apply(b, tape.Const(x))
		// Squared-error loss via tape ops.
		tv := tensor.New(4, 1)
		copy(tv.Data, targets)
		diff := tape.Sub(pred, tape.Const(tv))
		loss := tape.Sum(tape.Mul(diff, diff))
		ps.ZeroGrads()
		tape.Backward(loss, nil)
		b.Collect()
		opt.Step(ps)
	}
	tape := autodiff.NewTape()
	b := NewBinder(tape)
	pred := mlp.Apply(b, tape.Const(tensor.FromRows(inputs)))
	for i, want := range targets {
		got := pred.Value.Data[i]
		if math.Abs(got-want) > 0.25 {
			t.Fatalf("xor(%v) = %.3f, want %.0f", inputs[i], got, want)
		}
	}
}

func TestLSTMStepShapesAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	cell := NewLSTMCell(ps, "c", 4, 6, rng)
	tape := autodiff.NewTape()
	b := NewBinder(tape)
	x := tensor.New(1, 4)
	x.RandUniform(rng, 1)
	zero := tensor.New(1, 6)
	h, c := tape.Const(zero), tape.Const(zero.Clone())
	h1, c1 := cell.Step(b, tape.Const(x), h, c)
	if h1.Value.Cols != 6 || c1.Value.Cols != 6 {
		t.Fatal("bad LSTM shapes")
	}
	// A second step with different input must produce different state.
	x2 := tensor.New(1, 4)
	x2.RandUniform(rng, 1)
	h2, _ := cell.Step(b, tape.Const(x2), h1, c1)
	if tensor.Equal(h1.Value, h2.Value, 1e-12) {
		t.Fatal("LSTM state did not evolve")
	}
	// Gradients flow back through two steps.
	tape.Backward(tape.Sum(h2), nil)
	b.Collect()
	if cell.Wx.Grad.MaxAbs() == 0 || cell.Wh.Grad.MaxAbs() == 0 {
		t.Fatal("no gradient through LSTM")
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	ps := NewParamSet()
	cell := NewLSTMCell(ps, "c", 2, 3, rand.New(rand.NewSource(4)))
	for j := 3; j < 6; j++ {
		if cell.B.Value.Data[j] != 1 {
			t.Fatal("forget bias not initialized to 1")
		}
	}
	if cell.B.Value.Data[0] != 0 {
		t.Fatal("input gate bias should start at 0")
	}
}

func TestAttentionShapesAndResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := NewParamSet()
	attn := NewMultiHeadAttention(ps, "a", 8, 2, rng)
	tape := autodiff.NewTape()
	b := NewBinder(tape)
	x := tensor.New(5, 8)
	x.RandUniform(rng, 0.5)
	y := attn.Apply(b, tape.Const(x))
	if y.Value.Rows != 5 || y.Value.Cols != 8 {
		t.Fatalf("shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
	tape.Backward(tape.Sum(tape.Tanh(y)), nil)
	b.Collect()
	for _, p := range []*Param{attn.WQ, attn.WK, attn.WV, attn.WO} {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("no gradient into %s", p.Name)
		}
	}
}

func TestAttentionDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadAttention(NewParamSet(), "a", 7, 2, rand.New(rand.NewSource(1)))
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "params.json")
	rng := rand.New(rand.NewSource(6))

	ps1 := NewParamSet()
	w := ps1.NewXavier("w", 3, 4, rng)
	bq := ps1.New("b", 1, 4)
	bq.Value.Data[2] = 42
	if err := SaveParams(ps1, path); err != nil {
		t.Fatal(err)
	}

	ps2 := NewParamSet()
	ps2.New("w", 3, 4)
	ps2.New("b", 1, 4)
	if err := LoadParams(ps2, path); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(ps2.Get("w").Value, w.Value, 0) {
		t.Fatal("w mismatch after round trip")
	}
	if ps2.Get("b").Value.Data[2] != 42 {
		t.Fatal("b mismatch after round trip")
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "params.json")
	ps1 := NewParamSet()
	ps1.New("w", 2, 2)
	if err := SaveParams(ps1, path); err != nil {
		t.Fatal(err)
	}
	ps2 := NewParamSet()
	ps2.New("w", 3, 3)
	if err := LoadParams(ps2, path); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLoadParamsMissingFile(t *testing.T) {
	ps := NewParamSet()
	if err := LoadParams(ps, filepath.Join(os.TempDir(), "does-not-exist-12345.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCopyValuesFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewParamSet()
	sw := src.NewXavier("w", 2, 2, rng)
	dst := NewParamSet()
	dst.New("w", 2, 2)
	if err := CopyValuesFrom(dst, src); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(dst.Get("w").Value, sw.Value, 0) {
		t.Fatal("copy mismatch")
	}
	bad := NewParamSet()
	bad.New("other", 2, 2)
	if err := CopyValuesFrom(bad, src); err == nil {
		t.Fatal("missing source param accepted")
	}
}

func TestBinderReusesNodes(t *testing.T) {
	ps := NewParamSet()
	w := ps.New("w", 1, 1)
	b := NewBinder(autodiff.NewTape())
	n1 := b.Node(w)
	n2 := b.Node(w)
	if n1 != n2 {
		t.Fatal("binder created duplicate leaves for one param")
	}
}
