package nn

import (
	"math/rand"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

func TestSnapshotCaptureAndIsolation(t *testing.T) {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(1))
	p := ps.NewXavier("w", 3, 4, rng)
	s := NewSnapshot(ps)
	for i := range p.Value.Data {
		if s.Value(p).Data[i] != p.Value.Data[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, s.Value(p).Data[i], p.Value.Data[i])
		}
	}
	// Mutating the live value must not leak into the snapshot until the
	// next Capture — that isolation is what replicas rely on.
	p.Value.Data[0] += 42
	if s.Value(p).Data[0] == p.Value.Data[0] {
		t.Fatal("snapshot aliases the live value")
	}
	s.Capture()
	if s.Value(p).Data[0] != p.Value.Data[0] {
		t.Fatal("Capture did not broadcast the updated value")
	}
}

func TestSnapshotRejectsForeignParam(t *testing.T) {
	ps, other := NewParamSet(), NewParamSet()
	ps.New("a", 2, 2)
	q := other.New("b", 2, 2)
	s := NewSnapshot(ps)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign parameter")
		}
	}()
	s.Value(q)
}

func TestGradSetAccumulateMatchesCollect(t *testing.T) {
	// CollectInto a GradSet then AddTo must produce the exact same Grad
	// buffers as the classic Collect path.
	build := func() (*ParamSet, *Linear, *tensor.Matrix) {
		ps := NewParamSet()
		rng := rand.New(rand.NewSource(7))
		l := NewLinear(ps, "l", 4, 3, rng)
		x := tensor.New(5, 4)
		x.RandUniform(rand.New(rand.NewSource(8)), 1)
		return ps, l, x
	}

	psA, lA, xA := build()
	bA := NewBinder(autodiff.NewTape())
	outA := lA.Apply(bA, bA.Tape.Const(xA))
	psA.ZeroGrads()
	bA.Tape.Backward(bA.Tape.Sum(outA), nil)
	bA.Collect()

	psB, lB, xB := build()
	bB := NewBinder(autodiff.NewTape())
	bB.BindSnapshot(NewSnapshot(psB))
	outB := lB.Apply(bB, bB.Tape.Const(xB))
	gs := NewGradSet(psB)
	bB.Tape.Backward(bB.Tape.Sum(outB), nil)
	bB.CollectInto(gs)
	psB.ZeroGrads()
	gs.AddTo(psB)

	for _, pa := range psA.All() {
		pb := psB.Get(pa.Name)
		for i := range pa.Grad.Data {
			if pa.Grad.Data[i] != pb.Grad.Data[i] {
				t.Fatalf("grad %s[%d]: collect %v vs gradset %v",
					pa.Name, i, pa.Grad.Data[i], pb.Grad.Data[i])
			}
		}
	}
}

func TestGradSetZeroAndReuse(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("w", 2, 2)
	gs := NewGradSet(ps)
	gs.Grad(p).Data[0] = 3
	gs.Zero()
	if gs.Grad(p).Data[0] != 0 {
		t.Fatal("Zero did not clear the buffer")
	}
	gs.Grad(p).Data[0] = 1.5
	ps.ZeroGrads()
	gs.AddTo(ps)
	gs.AddTo(ps)
	if p.Grad.Data[0] != 3 {
		t.Fatalf("AddTo accumulated %v, want 3", p.Grad.Data[0])
	}
}

func TestBindSnapshotReadsConsistentCopy(t *testing.T) {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(ps, "l", 2, 2, rng)
	snap := NewSnapshot(ps)
	b := NewBinder(autodiff.NewTape())
	b.BindSnapshot(snap)

	x := tensor.New(1, 2)
	x.Data[0], x.Data[1] = 1, -1
	before := l.Apply(b, b.Tape.Const(x)).Value.Data[0]

	// Leader perturbs the live weights mid-"batch": a replica forward
	// bound to the snapshot must not see it.
	l.W.Value.Data[0] += 100
	b.Reset()
	after := l.Apply(b, b.Tape.Const(x)).Value.Data[0]
	if before != after {
		t.Fatalf("snapshot-bound forward drifted: %v vs %v", before, after)
	}
}
