// infer.go is the tape-free forward path. Training records every op on the
// autodiff tape so gradients can flow back; serving never needs gradients,
// so the same layers expose Infer variants that call the identical fused
// tensor kernels directly, with scratch borrowed from the arena through a
// tensor.Scope. Each Infer mirrors its tape twin kernel-for-kernel — same
// kernels, same operand order — so inference output is bit-identical to
// the training-path forward pass for the same parameter values.
package nn

import (
	"repro/internal/tensor"
)

// ValueReader resolves a parameter to the matrix a forward pass should
// read. Snapshot implements it (a consistent read-only copy for serving
// and replicas); LiveValues reads the live training values.
type ValueReader interface {
	Value(p *Param) *tensor.Matrix
}

// LiveValues is the ValueReader over the live parameter matrices.
type LiveValues struct{}

// Value returns p's live value matrix.
func (LiveValues) Value(p *Param) *tensor.Matrix { return p.Value }

// Infer computes y = x·Wᵀ + b without recording a tape entry, borrowing
// the output from sc. Mirrors Apply's fused kernel exactly.
func (l *Linear) Infer(sc *tensor.Scope, r ValueReader, x *tensor.Matrix) *tensor.Matrix {
	w, bias := r.Value(l.W), r.Value(l.B)
	return tensor.MatMulT2BiasInto(x, w, bias, sc.Get(x.Rows, w.Rows))
}

// InferTanh computes y = tanh(x·Wᵀ + b) without a tape entry. Mirrors
// ApplyTanh's fused kernel exactly.
func (l *Linear) InferTanh(sc *tensor.Scope, r ValueReader, x *tensor.Matrix) *tensor.Matrix {
	w, bias := r.Value(l.W), r.Value(l.B)
	return tensor.MatMulT2BiasTanhInto(x, w, bias, sc.Get(x.Rows, w.Rows))
}

// Infer runs the MLP forward without a tape, taking the same kernel path
// as Apply: tanh layers use the fused affine+tanh kernel, other
// activations run as a separate elementwise kernel over the affine output.
func (m *MLP) Infer(sc *tensor.Scope, r ValueReader, x *tensor.Matrix) *tensor.Matrix {
	for i, l := range m.Layers {
		act := m.Hidden
		if i+1 == len(m.Layers) {
			act = m.Out
		}
		if act == ActTanh {
			x = l.InferTanh(sc, r, x)
			continue
		}
		x = l.Infer(sc, r, x)
		switch act {
		case ActSigmoid:
			x = tensor.SigmoidInto(x, sc.Get(x.Rows, x.Cols))
		case ActReLU:
			x = tensor.ReLUInto(x, sc.Get(x.Rows, x.Cols))
		}
	}
	return x
}
