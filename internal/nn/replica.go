// replica.go provides the parameter-side machinery for data-parallel
// training: a Snapshot is the consistent read-only copy of a ParamSet's
// values that model replicas bind their forward passes to, and a GradSet
// is one replica's (or one batch entry's) private gradient accumulator.
//
// The contract mirrors synchronous data-parallel SGD: the leader captures
// a snapshot (broadcast), replicas run forward+backward against it
// concurrently, each exporting gradients into its own GradSet, and the
// leader reduces the sets into the live parameters in a fixed order
// before one optimizer step. Because replicas never touch the live
// values and every floating-point addition happens in a deterministic
// order on the leader, the resulting trajectory is independent of worker
// count and scheduling.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Snapshot is a consistent copy of a ParamSet's values. Replicas read it
// while the leader applies optimizer updates to the live parameters, so
// no forward pass can observe a half-applied update.
type Snapshot struct {
	ps   *ParamSet
	vals []*tensor.Matrix // registration order, shapes mirror ps
}

// NewSnapshot allocates a snapshot of ps and captures the current values.
func NewSnapshot(ps *ParamSet) *Snapshot {
	s := &Snapshot{ps: ps, vals: make([]*tensor.Matrix, len(ps.params))}
	for i, p := range ps.params {
		s.vals[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	s.Capture()
	return s
}

// Capture broadcasts the live parameter values into the snapshot. Call it
// once per batch, after the leader's optimizer step and before replicas
// start their forward passes.
func (s *Snapshot) Capture() {
	for i, p := range s.ps.params {
		copy(s.vals[i].Data, p.Value.Data)
	}
}

// Value returns the snapshot copy of p's value matrix. p must belong to
// the ParamSet the snapshot was built from.
func (s *Snapshot) Value(p *Param) *tensor.Matrix {
	if p.idx >= len(s.ps.params) || s.ps.params[p.idx] != p {
		panic(fmt.Sprintf("nn: parameter %q is not from this snapshot's ParamSet", p.Name))
	}
	return s.vals[p.idx]
}

// GradSet is a private gradient accumulator parallel to a ParamSet: one
// zero-initialized buffer per parameter, written by a single replica and
// reduced into the live Grad buffers by the leader.
type GradSet struct {
	ps   *ParamSet
	vals []*tensor.Matrix
}

// NewGradSet allocates zeroed gradient buffers shaped like ps.
func NewGradSet(ps *ParamSet) *GradSet {
	g := &GradSet{ps: ps, vals: make([]*tensor.Matrix, len(ps.params))}
	for i, p := range ps.params {
		g.vals[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return g
}

// Zero clears every buffer for reuse.
func (g *GradSet) Zero() {
	for _, m := range g.vals {
		m.Zero()
	}
}

// Grad returns the buffer for p. p must belong to the originating ParamSet.
func (g *GradSet) Grad(p *Param) *tensor.Matrix {
	if p.idx >= len(g.ps.params) || g.ps.params[p.idx] != p {
		panic(fmt.Sprintf("nn: parameter %q is not from this GradSet's ParamSet", p.Name))
	}
	return g.vals[p.idx]
}

// AddTo reduces this set into the live Grad buffers of its ParamSet. The
// leader calls it once per replica in a fixed order — gradient all-reduce
// with a deterministic floating-point summation order.
func (g *GradSet) AddTo(ps *ParamSet) {
	if ps != g.ps {
		panic("nn: GradSet reduced into a foreign ParamSet")
	}
	for i, p := range ps.params {
		tensor.AddInPlace(p.Grad, g.vals[i])
	}
}
