// Package nn provides the neural-network building blocks used by the
// coarsening model and the learned baselines: parameter registries, linear
// layers, multi-layer perceptrons, an LSTM cell, multi-head self-attention,
// and the Adam optimizer — all on top of the autodiff tape.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"repro/internal/autodiff"
	"repro/internal/ckpt"
	"repro/internal/tensor"
)

// Param is a named learnable matrix with Adam moment state.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
	m, v  *tensor.Matrix // Adam first/second moments
	idx   int            // registration index within the owning ParamSet
}

// ParamSet is a registry of parameters belonging to one model.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty registry.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// New registers a fresh zeroed parameter with the given shape.
func (ps *ParamSet) New(name string, rows, cols int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	p := &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
		m:     tensor.New(rows, cols),
		v:     tensor.New(rows, cols),
		idx:   len(ps.params),
	}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// NewXavier registers a parameter initialized Glorot-uniform.
func (ps *ParamSet) NewXavier(name string, rows, cols int, rng *rand.Rand) *Param {
	p := ps.New(name, rows, cols)
	p.Value.XavierInit(rng, cols, rows)
	return p
}

// All returns the registered parameters in registration order.
func (ps *ParamSet) All() []*Param { return ps.params }

// Get returns a parameter by name, or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// Count returns the total number of scalar parameters.
func (ps *ParamSet) Count() int {
	n := 0
	for _, p := range ps.params {
		n += len(p.Value.Data)
	}
	return n
}

// ZeroGrads clears all accumulated gradients.
func (ps *ParamSet) ZeroGrads() {
	for _, p := range ps.params {
		p.Grad.Zero()
	}
}

// AccumulateFromTape adds tape gradients (if any) for each parameter node
// into the parameter's Grad buffer. nodes maps Param→its leaf on the tape.
func AccumulateFromTape(nodes map[*Param]*autodiff.Node) {
	for p, n := range nodes {
		if g := n.Grad(); g != nil {
			tensor.AddInPlace(p.Grad, g)
		}
	}
}

// Binder creates tape leaves for parameters and remembers the association
// so gradients can be pulled back after Backward.
type Binder struct {
	Tape  *autodiff.Tape
	nodes map[*Param]*autodiff.Node
	snap  *Snapshot // when set, leaves bind the snapshot's value copies
}

// NewBinder wraps a tape.
func NewBinder(t *autodiff.Tape) *Binder {
	return &Binder{Tape: t, nodes: make(map[*Param]*autodiff.Node)}
}

// BindSnapshot makes subsequent Node calls create leaves over s's value
// copies instead of the live parameter matrices, so a replica's forward
// pass reads a consistent view while the leader owns the live values.
// The binding persists across Reset; pass nil to bind live values again.
func (b *Binder) BindSnapshot(s *Snapshot) { b.snap = s }

// Node returns (creating on first use) the tape leaf for p.
func (b *Binder) Node(p *Param) *autodiff.Node {
	if n, ok := b.nodes[p]; ok {
		return n
	}
	v := p.Value
	if b.snap != nil {
		v = b.snap.Value(p)
	}
	n := b.Tape.Leaf(v)
	b.nodes[p] = n
	return n
}

// Collect accumulates tape gradients into every bound parameter.
func (b *Binder) Collect() { AccumulateFromTape(b.nodes) }

// CollectInto accumulates tape gradients into gs instead of the live
// parameter Grad buffers — the per-replica half of a deterministic
// all-reduce: each replica exports into its own GradSet, and the leader
// folds the sets into the parameters in a fixed order.
func (b *Binder) CollectInto(gs *GradSet) {
	for p, n := range b.nodes {
		n.AddGradInto(gs.Grad(p))
	}
}

// Reset recycles the binder for the next training step: the tape's node
// slab and arena-backed matrices are reclaimed (autodiff.Tape.Reset) and
// the parameter→leaf map is cleared in place, so a reused binder performs
// no steady-state allocations. Matrices previously read off the tape
// (values or gradients) must not be used after Reset.
func (b *Binder) Reset() {
	b.Tape.Reset()
	clear(b.nodes)
}

// Adam is the Adam optimizer (Kingma & Ba, 2014) with optional gradient
// clipping by global norm.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // 0 disables clipping
	step     int
}

// NewAdam returns Adam with the paper's defaults (lr=0.001).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5}
}

// Step applies one update to every parameter using its Grad buffer.
func (a *Adam) Step(ps *ParamSet) {
	a.step++
	if a.ClipNorm > 0 {
		var norm2 float64
		for _, p := range ps.params {
			for _, g := range p.Grad.Data {
				norm2 += g * g
			}
		}
		if norm := math.Sqrt(norm2); norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for _, p := range ps.params {
				for i := range p.Grad.Data {
					p.Grad.Data[i] *= scale
				}
			}
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range ps.params {
		for i, g := range p.Grad.Data {
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mh := p.m.Data[i] / b1c
			vh := p.v.Data[i] / b2c
			p.Value.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// StepCount returns the number of optimizer steps taken.
func (a *Adam) StepCount() int { return a.step }

// AdamState is the serializable optimizer state: hyperparameters plus the
// bias-correction step count. Per-parameter moments are carried by
// ParamState, so AdamState + a StateMap fully determine the next update.
type AdamState struct {
	LR       float64 `json:"lr"`
	Beta1    float64 `json:"beta1"`
	Beta2    float64 `json:"beta2"`
	Eps      float64 `json:"eps"`
	ClipNorm float64 `json:"clip_norm"`
	Step     int     `json:"step"`
}

// State snapshots the optimizer.
func (a *Adam) State() AdamState {
	return AdamState{LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, ClipNorm: a.ClipNorm, Step: a.step}
}

// SetState restores a snapshot taken by State.
func (a *Adam) SetState(s AdamState) {
	a.LR, a.Beta1, a.Beta2, a.Eps, a.ClipNorm, a.step = s.LR, s.Beta1, s.Beta2, s.Eps, s.ClipNorm, s.Step
}

// Linear is a fully connected layer y = x·Wᵀ + b.
type Linear struct {
	W *Param // out×in
	B *Param // 1×out
}

// NewLinear registers a Glorot-initialized linear layer on ps.
func NewLinear(ps *ParamSet, name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: ps.NewXavier(name+".W", out, in, rng),
		B: ps.New(name+".b", 1, out),
	}
}

// Apply records y = x·Wᵀ + b on the binder's tape as one fused entry —
// the transposed weight copy is never materialized. x is rows×in.
func (l *Linear) Apply(b *Binder, x *autodiff.Node) *autodiff.Node {
	return b.Tape.Affine(x, b.Node(l.W), b.Node(l.B))
}

// ApplyTanh records y = tanh(x·Wᵀ + b) as one fused tape entry, with the
// activation applied in the kernel's store loop.
func (l *Linear) ApplyTanh(b *Binder, x *autodiff.Node) *autodiff.Node {
	return b.Tape.AffineTanh(x, b.Node(l.W), b.Node(l.B))
}

// Activation selects the non-linearity applied between MLP layers.
type Activation int

// Supported activations.
const (
	ActTanh Activation = iota
	ActReLU
	ActSigmoid
	ActNone
)

func applyAct(t *autodiff.Tape, x *autodiff.Node, a Activation) *autodiff.Node {
	switch a {
	case ActTanh:
		return t.Tanh(x)
	case ActReLU:
		return t.ReLU(x)
	case ActSigmoid:
		return t.Sigmoid(x)
	default:
		return x
	}
}

// MLP is a stack of linear layers with a shared hidden activation and a
// configurable output activation.
type MLP struct {
	Layers []*Linear
	Hidden Activation
	Out    Activation
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [in, h, out].
func NewMLP(ps *ParamSet, name string, sizes []int, hidden, out Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least two sizes")
	}
	m := &MLP{Hidden: hidden, Out: out}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(ps, fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], rng))
	}
	return m
}

// Apply records the full MLP forward pass. Tanh layers take the fused
// affine+tanh path; other activations apply as separate tape entries.
func (m *MLP) Apply(b *Binder, x *autodiff.Node) *autodiff.Node {
	for i, l := range m.Layers {
		act := m.Hidden
		if i+1 == len(m.Layers) {
			act = m.Out
		}
		if act == ActTanh {
			x = l.ApplyTanh(b, x)
			continue
		}
		x = applyAct(b.Tape, l.Apply(b, x), act)
	}
	return x
}

// LSTMCell is a standard LSTM cell used by the sequential decoders of the
// Graph-enc-dec and Hierarchical baselines.
type LSTMCell struct {
	// Gates stacked as one matrix for efficiency: [i; f; g; o].
	Wx *Param // 4h×in
	Wh *Param // 4h×h
	B  *Param // 1×4h
	H  int
}

// NewLSTMCell registers an LSTM cell with input size in and hidden size h.
func NewLSTMCell(ps *ParamSet, name string, in, h int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		Wx: ps.NewXavier(name+".Wx", 4*h, in, rng),
		Wh: ps.NewXavier(name+".Wh", 4*h, h, rng),
		B:  ps.New(name+".b", 1, 4*h),
		H:  h,
	}
	// Initialize forget-gate bias to 1 (standard trick for gradient flow).
	for j := h; j < 2*h; j++ {
		c.B.Value.Data[j] = 1
	}
	return c
}

// Step records one LSTM step. x is 1×in; h, c are 1×H (pass tape constants
// of zeros for the initial state). Returns (hNext, cNext).
func (l *LSTMCell) Step(b *Binder, x, h, c *autodiff.Node) (*autodiff.Node, *autodiff.Node) {
	t := b.Tape
	z := t.Add(
		t.MatMulT2(x, b.Node(l.Wx)),
		t.MatMulT2(h, b.Node(l.Wh)),
	)
	z = t.AddRowVector(z, b.Node(l.B))
	H := l.H
	ig := t.Sigmoid(t.SliceCols(z, 0, H))
	fg := t.Sigmoid(t.SliceCols(z, H, 2*H))
	gg := t.Tanh(t.SliceCols(z, 2*H, 3*H))
	og := t.Sigmoid(t.SliceCols(z, 3*H, 4*H))
	cNext := t.Add(t.Mul(fg, c), t.Mul(ig, gg))
	hNext := t.Mul(og, t.Tanh(cNext))
	return hNext, cNext
}

// MultiHeadAttention is a single block of scaled dot-product self-attention
// (the simplification of GDP's Transformer-XL placement network; see
// DESIGN.md §2).
type MultiHeadAttention struct {
	WQ, WK, WV, WO *Param
	Heads          int
	Dim            int // model dimension; per-head dim = Dim/Heads
}

// NewMultiHeadAttention registers an attention block with model dim d and
// the given number of heads (d must be divisible by heads).
func NewMultiHeadAttention(ps *ParamSet, name string, d, heads int, rng *rand.Rand) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: attention dim must be divisible by heads")
	}
	return &MultiHeadAttention{
		WQ:    ps.NewXavier(name+".WQ", d, d, rng),
		WK:    ps.NewXavier(name+".WK", d, d, rng),
		WV:    ps.NewXavier(name+".WV", d, d, rng),
		WO:    ps.NewXavier(name+".WO", d, d, rng),
		Heads: heads,
		Dim:   d,
	}
}

// Apply records self-attention over x (N×Dim) and returns N×Dim with a
// residual connection.
func (a *MultiHeadAttention) Apply(b *Binder, x *autodiff.Node) *autodiff.Node {
	t := b.Tape
	q := t.MatMulT2(x, b.Node(a.WQ))
	k := t.MatMulT2(x, b.Node(a.WK))
	v := t.MatMulT2(x, b.Node(a.WV))
	dh := a.Dim / a.Heads
	outs := make([]*autodiff.Node, a.Heads)
	for h := 0; h < a.Heads; h++ {
		qh := t.SliceCols(q, h*dh, (h+1)*dh)
		kh := t.SliceCols(k, h*dh, (h+1)*dh)
		vh := t.SliceCols(v, h*dh, (h+1)*dh)
		scores := t.Scale(t.MatMulT2(qh, kh), 1/math.Sqrt(float64(dh)))
		// softmax = exp(log-softmax); two tape ops, numerically stable.
		attn := t.Exp(t.LogSoftmaxRows(scores))
		outs[h] = t.MatMul(attn, vh)
	}
	concat := t.ConcatCols(outs...)
	proj := t.MatMulT2(concat, b.Node(a.WO))
	return t.Add(x, proj) // residual
}

// paramsKind tags parameter checkpoints inside the ckpt envelope.
const paramsKind = "nn-params"

// SaveParams writes all parameter values of ps to path as a checksummed
// envelope (see internal/ckpt), written atomically so a crash mid-save
// cannot corrupt an existing file. LoadParams also accepts the legacy
// bare-JSON map written by earlier versions.
func SaveParams(ps *ParamSet, path string) error {
	out := make(map[string]savedParam, len(ps.params))
	for _, p := range ps.params {
		out[p.Name] = savedParam{Rows: p.Value.Rows, Cols: p.Value.Cols, Data: p.Value.Data}
	}
	if err := ckpt.WriteFile(path, paramsKind, out); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams reads parameter values from path into ps. New-format files
// (ckpt envelopes) are checksum-verified; legacy bare-JSON maps remain
// loadable but are parsed strictly. In both formats every parameter of ps
// must be present in the file with a matching shape and a complete data
// vector — a truncated, corrupt, or partial file is rejected with a
// descriptive error instead of silently zero-filling or partially
// updating the model.
func LoadParams(ps *ParamSet, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	var in map[string]savedParam
	if ckpt.IsEnvelope(data) {
		if err := ckpt.Decode(data, paramsKind, &in); err != nil {
			return fmt.Errorf("nn: %s: %w", path, err)
		}
	} else {
		// json.Unmarshal rejects both truncated values and trailing bytes.
		if err := json.Unmarshal(data, &in); err != nil {
			return fmt.Errorf("nn: %s is corrupt or truncated: %w", path, err)
		}
	}
	// Validate everything before touching ps so a bad file cannot leave
	// the model half-loaded.
	for name, sp := range in {
		p := ps.Get(name)
		if p == nil {
			return fmt.Errorf("nn: unknown parameter %q in %s", name, path)
		}
		if p.Value.Rows != sp.Rows || p.Value.Cols != sp.Cols {
			return fmt.Errorf("nn: shape mismatch for %q: have %dx%d, file %dx%d",
				name, p.Value.Rows, p.Value.Cols, sp.Rows, sp.Cols)
		}
		if len(sp.Data) != sp.Rows*sp.Cols {
			return fmt.Errorf("nn: truncated data for %q in %s: %d values, want %d",
				name, path, len(sp.Data), sp.Rows*sp.Cols)
		}
	}
	if missing := missingNames(ps, in); len(missing) > 0 {
		return fmt.Errorf("nn: %s is missing parameters %v (partial file?)", path, missing)
	}
	for name, sp := range in {
		copy(ps.Get(name).Value.Data, sp.Data)
	}
	return nil
}

// missingNames lists parameters of ps absent from the loaded map.
func missingNames(ps *ParamSet, in map[string]savedParam) []string {
	var missing []string
	for _, p := range ps.params {
		if _, ok := in[p.Name]; !ok {
			missing = append(missing, p.Name)
		}
	}
	sort.Strings(missing)
	return missing
}

type savedParam struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// ParamState is the full serialized state of one parameter: its value and
// both Adam moment vectors. Full-state checkpoints persist these so a
// resumed run continues the exact optimizer trajectory.
type ParamState struct {
	Rows  int       `json:"rows"`
	Cols  int       `json:"cols"`
	Value []float64 `json:"value"`
	M     []float64 `json:"m"`
	V     []float64 `json:"v"`
}

// StateMap deep-copies every parameter's value and Adam moments.
func (ps *ParamSet) StateMap() map[string]ParamState {
	out := make(map[string]ParamState, len(ps.params))
	for _, p := range ps.params {
		out[p.Name] = ParamState{
			Rows:  p.Value.Rows,
			Cols:  p.Value.Cols,
			Value: append([]float64(nil), p.Value.Data...),
			M:     append([]float64(nil), p.m.Data...),
			V:     append([]float64(nil), p.v.Data...),
		}
	}
	return out
}

// RestoreStateMap loads a StateMap back into ps. Every parameter of ps
// must be present with matching shape and complete vectors; validation
// happens before any mutation so failure leaves ps untouched.
func (ps *ParamSet) RestoreStateMap(in map[string]ParamState) error {
	for _, p := range ps.params {
		st, ok := in[p.Name]
		if !ok {
			return fmt.Errorf("nn: state missing parameter %q", p.Name)
		}
		if st.Rows != p.Value.Rows || st.Cols != p.Value.Cols {
			return fmt.Errorf("nn: state shape mismatch for %q: have %dx%d, state %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, st.Rows, st.Cols)
		}
		n := st.Rows * st.Cols
		if len(st.Value) != n || len(st.M) != n || len(st.V) != n {
			return fmt.Errorf("nn: truncated state for %q: value/m/v lengths %d/%d/%d, want %d",
				p.Name, len(st.Value), len(st.M), len(st.V), n)
		}
	}
	for _, p := range ps.params {
		st := in[p.Name]
		copy(p.Value.Data, st.Value)
		copy(p.m.Data, st.M)
		copy(p.v.Data, st.V)
	}
	return nil
}

// CheckFiniteGrads returns an error naming the first parameter whose
// gradient buffer holds a NaN or Inf — the divergence-guard probe run
// before every optimizer step.
func (ps *ParamSet) CheckFiniteGrads() error {
	for _, p := range ps.params {
		for i, g := range p.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return fmt.Errorf("nn: non-finite gradient %v at %s[%d]", g, p.Name, i)
			}
		}
	}
	return nil
}

// CheckFiniteValues returns an error naming the first parameter whose
// value holds a NaN or Inf.
func (ps *ParamSet) CheckFiniteValues() error {
	for _, p := range ps.params {
		for i, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: non-finite value %v at %s[%d]", v, p.Name, i)
			}
		}
	}
	return nil
}

// CopyValuesFrom copies parameter values from src into ps by name; both
// sets must contain identically shaped parameters. Used by curriculum
// fine-tuning to warm-start a model.
func CopyValuesFrom(dst, src *ParamSet) error {
	for _, p := range dst.params {
		sp := src.Get(p.Name)
		if sp == nil {
			return fmt.Errorf("nn: source missing parameter %q", p.Name)
		}
		if !sp.Value.SameShape(p.Value) {
			return fmt.Errorf("nn: shape mismatch for %q", p.Name)
		}
		copy(p.Value.Data, sp.Value.Data)
	}
	return nil
}
