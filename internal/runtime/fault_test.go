package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stream"
)

// chainGraph builds src -> mid -> sink with the given per-tuple payload
// on both edges.
func chainGraph(rate, payload float64) *stream.Graph {
	g := stream.NewGraph(rate)
	src := g.AddNode(stream.Node{IPT: 0, Selectivity: 1})
	mid := g.AddNode(stream.Node{IPT: 0, Selectivity: 1})
	sink := g.AddNode(stream.Node{IPT: 0, Selectivity: 1})
	g.AddEdge(src, mid, payload)
	g.AddEdge(mid, sink, payload)
	return g
}

func onDevice(g *stream.Graph, devices int, assign ...int) *stream.Placement {
	p := stream.NewPlacement(g.NumNodes(), devices)
	copy(p.Assign, assign)
	return p
}

// faultCfg runs long enough that crash windows dominate scheduling noise.
func faultCfg() Config {
	cfg := DefaultConfig()
	cfg.WallTime = 400 * time.Millisecond
	cfg.WarmupFrac = 0.25
	return cfg
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		plan *FaultPlan
		ok   bool
	}{
		{nil, true},
		{&FaultPlan{}, true},
		{&FaultPlan{Devices: []DeviceFault{{Device: 1, At: time.Millisecond, Duration: UntilEnd}}}, true},
		{&FaultPlan{Devices: []DeviceFault{{Device: 5, Duration: UntilEnd}}}, false},
		{&FaultPlan{Devices: []DeviceFault{{Device: 0, At: -time.Second, Duration: UntilEnd}}}, false},
		{&FaultPlan{Links: []LinkFault{{Device: -1, Duration: UntilEnd, Factor: 0.5}}}, true},
		{&FaultPlan{Links: []LinkFault{{Device: -2, Duration: UntilEnd, Factor: 0.5}}}, false},
		{&FaultPlan{Links: []LinkFault{{Device: 0, Duration: UntilEnd, Factor: -1}}}, false},
		// Zero-duration faults never cover any instant: always a plan bug.
		{&FaultPlan{Devices: []DeviceFault{{Device: 0, At: time.Millisecond}}}, false},
		{&FaultPlan{Links: []LinkFault{{Device: 0, At: time.Millisecond, Factor: 0.5}}}, false},
		// Overlapping crash windows on one device are rejected; windows
		// that merely touch (end == next start) or hit different devices
		// are fine.
		{&FaultPlan{Devices: []DeviceFault{
			{Device: 0, At: 0, Duration: 10 * time.Millisecond},
			{Device: 0, At: 5 * time.Millisecond, Duration: 10 * time.Millisecond},
		}}, false},
		{&FaultPlan{Devices: []DeviceFault{
			{Device: 0, At: 0, Duration: UntilEnd},
			{Device: 0, At: 5 * time.Millisecond, Duration: time.Millisecond},
		}}, false},
		{&FaultPlan{Devices: []DeviceFault{
			{Device: 0, At: 0, Duration: 5 * time.Millisecond},
			{Device: 0, At: 5 * time.Millisecond, Duration: 5 * time.Millisecond},
		}}, true},
		{&FaultPlan{Devices: []DeviceFault{
			{Device: 0, At: 0, Duration: 10 * time.Millisecond},
			{Device: 1, At: 5 * time.Millisecond, Duration: 10 * time.Millisecond},
		}}, true},
	}
	for i, c := range cases {
		err := c.plan.Validate(2)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestRunRejectsInvalidFaultPlan(t *testing.T) {
	g := chainGraph(1000, 0)
	p := onDevice(g, 2, 0, 0, 0)
	cfg := faultCfg()
	cfg.Faults = &FaultPlan{Devices: []DeviceFault{{Device: 7}}}
	_, err := Run(g, p, sim.DefaultCluster(2, 1000), cfg)
	if err == nil || !strings.Contains(err.Error(), "targets device") {
		t.Fatalf("want validation error, got %v", err)
	}
}

// TestThroughputDegradesMonotonicallyWithCrashCount injects k disjoint
// downtime windows into an otherwise unconstrained run: measured relative
// throughput must fall as k grows (the acceptance criterion for the
// robustness metric).
func TestThroughputDegradesMonotonicallyWithCrashCount(t *testing.T) {
	c := sim.DefaultCluster(1, 1000)
	rels := make([]float64, 4)
	for k := 0; k < len(rels); k++ {
		g := chainGraph(100, 0) // light load: fault-free run reaches ~1.0
		p := onDevice(g, 1, 0, 0, 0)
		cfg := faultCfg()
		plan := &FaultPlan{}
		for i := 0; i < k; i++ {
			plan.Devices = append(plan.Devices, DeviceFault{
				Device:   0,
				At:       120*time.Millisecond + time.Duration(i)*70*time.Millisecond,
				Duration: 60 * time.Millisecond,
			})
		}
		cfg.Faults = plan
		res, err := Run(g, p, c, cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rels[k] = res.Relative
	}
	t.Logf("relative throughput by crash count: %v", rels)
	if rels[0] < 0.8 {
		t.Fatalf("fault-free baseline too low to discriminate: %v", rels[0])
	}
	for k := 1; k < len(rels); k++ {
		if rels[k] > rels[k-1]+0.05 {
			t.Errorf("throughput rose with more crashes: rel[%d]=%v > rel[%d]=%v", k, rels[k], k-1, rels[k-1])
		}
	}
	if rels[len(rels)-1] > rels[0]-0.2 {
		t.Errorf("three crash windows should cost >0.2 relative throughput: %v", rels)
	}
}

// TestCrashedDeviceRestartsAndRunCompletes crashes the downstream device
// mid-run; the run must finish, lose throughput versus fault-free, and
// still make progress after the restart.
func TestCrashedDeviceRestartsAndRunCompletes(t *testing.T) {
	c := sim.DefaultCluster(2, 1e6)
	mk := func(plan *FaultPlan) float64 {
		g := chainGraph(200, 1)
		p := onDevice(g, 2, 0, 0, 1) // sink alone on device 1
		cfg := faultCfg()
		cfg.Faults = plan
		res, err := Run(g, p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Relative
	}
	clean := mk(nil)
	faulted := mk(&FaultPlan{Devices: []DeviceFault{
		{Device: 1, At: 140 * time.Millisecond, Duration: 120 * time.Millisecond},
	}})
	t.Logf("clean=%v faulted=%v", clean, faulted)
	if faulted >= clean {
		t.Errorf("crashing the sink's device must cost throughput: clean=%v faulted=%v", clean, faulted)
	}
	if faulted < 0.05 {
		t.Errorf("device restarted 140ms before the end; some post-restart progress expected, got %v", faulted)
	}
}

// TestLinkDegradationThrottlesCrossDeviceEdge saturates a cross-device
// edge, then degrades the link to 20%: throughput must drop accordingly.
func TestLinkDegradationThrottlesCrossDeviceEdge(t *testing.T) {
	// Bandwidth sized so the cross edge is the bottleneck even fault-free:
	// 200 t/s × 10 kbit = 2 Mbps against a 1 Mbps link.
	c := sim.DefaultCluster(2, 1)
	mk := func(plan *FaultPlan) float64 {
		g := chainGraph(200, 10000)
		p := onDevice(g, 2, 0, 0, 1)
		cfg := faultCfg()
		cfg.Faults = plan
		res, err := Run(g, p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Relative
	}
	clean := mk(nil)
	degraded := mk(&FaultPlan{Links: []LinkFault{
		{Device: -1, At: 0, Duration: UntilEnd, Factor: 0.2},
	}})
	t.Logf("clean=%v degraded=%v", clean, degraded)
	if degraded >= clean*0.7 {
		t.Errorf("an 80%% link degradation should show: clean=%v degraded=%v", clean, degraded)
	}
}

// TestLinkFlapRecovers severs a saturated link briefly; throughput must
// dip below fault-free (the lost window cannot be caught up — the link is
// the bottleneck) but recover enough to beat a permanent severance.
func TestLinkFlapRecovers(t *testing.T) {
	// 200 t/s × 10 kbit = 2 Mbps against a 1 Mbps link: saturated, so
	// every severed millisecond is unrecoverable.
	c := sim.DefaultCluster(2, 1)
	mk := func(plan *FaultPlan) float64 {
		g := chainGraph(200, 10000)
		p := onDevice(g, 2, 0, 0, 1)
		cfg := faultCfg()
		cfg.Faults = plan
		res, err := Run(g, p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Relative
	}
	clean := mk(nil)
	flap := mk(&FaultPlan{Links: []LinkFault{
		{Device: 1, At: 150 * time.Millisecond, Duration: 80 * time.Millisecond, Factor: 0},
	}})
	severed := mk(&FaultPlan{Links: []LinkFault{
		{Device: 1, At: 100 * time.Millisecond, Duration: UntilEnd, Factor: 0},
	}})
	t.Logf("clean=%v flap=%v severed=%v", clean, flap, severed)
	if flap > clean-0.03 {
		t.Errorf("a flap on a saturated link must cost throughput: clean=%v flap=%v", clean, flap)
	}
	if severed > flap-0.03 {
		t.Errorf("a permanent severance must cost more than a flap: flap=%v severed=%v", flap, severed)
	}
}

func TestFaultScheduleQueries(t *testing.T) {
	plan := &FaultPlan{
		Devices: []DeviceFault{{Device: 0, At: 10 * time.Millisecond, Duration: 5 * time.Millisecond}},
		Links: []LinkFault{
			{Device: -1, At: 0, Duration: 20 * time.Millisecond, Factor: 0.5},
			{Device: 1, At: 0, Duration: 20 * time.Millisecond, Factor: 0.5},
		},
	}
	s := newFaultSchedule(plan, 2)
	if s.deviceDown(0, 5*time.Millisecond) {
		t.Error("device 0 should be up before At")
	}
	if !s.deviceDown(0, 12*time.Millisecond) {
		t.Error("device 0 should be down inside the window")
	}
	if s.deviceDown(0, 16*time.Millisecond) {
		t.Error("device 0 should have restarted")
	}
	if f := s.linkFactor(0, 10*time.Millisecond); f != 0.5 {
		t.Errorf("device 0 factor = %v, want 0.5", f)
	}
	if f := s.linkFactor(1, 10*time.Millisecond); f != 0.25 {
		t.Errorf("overlapping faults must compound: got %v, want 0.25", f)
	}
	if f := s.linkFactor(1, 30*time.Millisecond); f != 1 {
		t.Errorf("expired faults must clear: got %v, want 1", f)
	}
	var empty *faultSchedule
	if empty.deviceDown(0, 0) || empty.linkFactor(0, 0) != 1 {
		t.Error("nil schedule must be a no-op")
	}
}
