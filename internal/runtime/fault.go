package runtime

import (
	"fmt"
	"sort"
	"time"
)

// UntilEnd as a fault Duration keeps the fault active for the remainder
// of the run. Any negative duration means the same thing; a duration of
// exactly zero is a plan bug (a fault that never happens) and is
// rejected by Validate.
const UntilEnd time.Duration = -1

// DeviceFault crashes one device at At for Duration (both wall-clock
// offsets from the start of the run; multiply by Config.TimeScale for
// simulated time). Duration < 0 (UntilEnd) keeps the device down for the
// remainder of the run. While down, the device's operators neither ingest, process,
// nor emit, so full input channels exert backpressure on upstream devices
// exactly as a dead machine would. On restart the device comes back
// empty: queued tuples, accumulated residual output, and NIC credits are
// lost, and whatever sat in its input channels is drained and dropped —
// the in-flight data a real crash destroys.
type DeviceFault struct {
	Device   int
	At       time.Duration
	Duration time.Duration
}

// LinkFault degrades the NIC bandwidth of one device (Device == -1 hits
// every device) by Factor during [At, At+Duration): both egress and
// ingress token rates are multiplied by Factor. Factor 0 severs the
// link — a short Factor-0 window is a link flap — and overlapping faults
// compound multiplicatively. Duration < 0 (UntilEnd) lasts for the rest
// of the run.
type LinkFault struct {
	Device   int
	At       time.Duration
	Duration time.Duration
	Factor   float64
}

// FaultPlan schedules failures injected into an execution so placements
// can be scored under device crashes, restarts, and degraded or flapping
// links — the robustness dimension real clusters add on top of steady-state
// throughput.
type FaultPlan struct {
	Devices []DeviceFault
	Links   []LinkFault
}

// Empty reports whether the plan injects nothing.
func (fp *FaultPlan) Empty() bool {
	return fp == nil || (len(fp.Devices) == 0 && len(fp.Links) == 0)
}

// Validate checks the plan against a cluster size. Beyond range checks
// it rejects zero-duration faults (a window that never covers any
// instant is always a plan bug) and overlapping DeviceFault windows on
// the same device — two crash schedules for one machine at once have no
// coherent semantics, and the overlap almost always means a typo in At
// or Duration.
func (fp *FaultPlan) Validate(devices int) error {
	if fp == nil {
		return nil
	}
	for i, f := range fp.Devices {
		if f.Device < 0 || f.Device >= devices {
			return fmt.Errorf("runtime: device fault %d targets device %d of %d", i, f.Device, devices)
		}
		if f.At < 0 {
			return fmt.Errorf("runtime: device fault %d has negative start %v", i, f.At)
		}
		if f.Duration == 0 {
			return fmt.Errorf("runtime: device fault %d has zero duration (use UntilEnd for rest-of-run)", i)
		}
	}
	if err := fp.checkDeviceOverlap(); err != nil {
		return err
	}
	for i, f := range fp.Links {
		if f.Device < -1 || f.Device >= devices {
			return fmt.Errorf("runtime: link fault %d targets device %d of %d", i, f.Device, devices)
		}
		if f.At < 0 {
			return fmt.Errorf("runtime: link fault %d has negative start %v", i, f.At)
		}
		if f.Duration == 0 {
			return fmt.Errorf("runtime: link fault %d has zero duration (use UntilEnd for rest-of-run)", i)
		}
		if f.Factor < 0 {
			return fmt.Errorf("runtime: link fault %d has negative factor %v", i, f.Factor)
		}
	}
	return nil
}

// checkDeviceOverlap rejects plans where two crash windows for the same
// device intersect. Open-ended windows (Duration < 0) extend to the end
// of the run.
func (fp *FaultPlan) checkDeviceOverlap() error {
	perDevice := map[int][]DeviceFault{}
	for _, f := range fp.Devices {
		perDevice[f.Device] = append(perDevice[f.Device], f)
	}
	for d, faults := range perDevice {
		sort.Slice(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
		for i := 1; i < len(faults); i++ {
			prev := faults[i-1]
			if prev.Duration < 0 || prev.At+prev.Duration > faults[i].At {
				return fmt.Errorf("runtime: device %d has overlapping fault windows (%v+%v and %v)",
					d, prev.At, prev.Duration, faults[i].At)
			}
		}
	}
	return nil
}

// active reports whether a window [at, at+dur) covers elapsed. A
// negative dur (UntilEnd) is open-ended.
func active(at, dur, elapsed time.Duration) bool {
	if elapsed < at {
		return false
	}
	return dur < 0 || elapsed < at+dur
}

// faultSchedule is the read-only per-run view of a FaultPlan. Device
// goroutines query it with plain time comparisons — no shared mutable
// state, so no synchronization is needed on the hot path.
type faultSchedule struct {
	downs [][]DeviceFault // per device
	links []LinkFault
}

func newFaultSchedule(fp *FaultPlan, devices int) *faultSchedule {
	if fp.Empty() {
		return nil
	}
	s := &faultSchedule{downs: make([][]DeviceFault, devices), links: fp.Links}
	for _, f := range fp.Devices {
		s.downs[f.Device] = append(s.downs[f.Device], f)
	}
	return s
}

// deviceDown reports whether device d is crashed at elapsed.
func (s *faultSchedule) deviceDown(d int, elapsed time.Duration) bool {
	if s == nil {
		return false
	}
	for _, f := range s.downs[d] {
		if active(f.At, f.Duration, elapsed) {
			return true
		}
	}
	return false
}

// linkFactor returns the bandwidth multiplier for device d at elapsed
// (the product of every active link fault touching d).
func (s *faultSchedule) linkFactor(d int, elapsed time.Duration) float64 {
	if s == nil {
		return 1
	}
	factor := 1.0
	for _, f := range s.links {
		if (f.Device == d || f.Device == -1) && active(f.At, f.Duration, elapsed) {
			factor *= f.Factor
		}
	}
	return factor
}
