package runtime

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestDriftPlanValidate(t *testing.T) {
	cases := []struct {
		plan *DriftPlan
		ok   bool
	}{
		{nil, true},
		{&DriftPlan{}, true},
		{&DriftPlan{Surges: []SourceSurge{{At: 0, Duration: time.Millisecond, Factor: 2}}}, true},
		{&DriftPlan{Surges: []SourceSurge{{At: 0, Duration: UntilEnd, Factor: 1.5}}}, true},
		{&DriftPlan{Surges: []SourceSurge{{At: -time.Second, Duration: time.Millisecond, Factor: 2}}}, false},
		{&DriftPlan{Surges: []SourceSurge{{At: 0, Duration: 0, Factor: 2}}}, false},
		{&DriftPlan{Surges: []SourceSurge{{At: 0, Duration: time.Millisecond, Factor: 0}}}, false},
		{&DriftPlan{Faults: FaultPlan{Devices: []DeviceFault{{Device: 5, Duration: UntilEnd}}}}, false},
	}
	for i, c := range cases {
		err := c.plan.Validate(2)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestPlanFromEventsCompilation(t *testing.T) {
	const tick = 10 * time.Millisecond
	events := []sim.DriftEvent{
		{Kind: sim.DriftSourceSurge, Tick: 2, DurTicks: 3, Factor: 1.5},
		{Kind: sim.DriftDeviceLoss, Tick: 1, DurTicks: 0, Device: 0},
		{Kind: sim.DriftDeviceJoin, Tick: 4, Device: 2},
		{Kind: sim.DriftLinkClass, Tick: 2, Factor: 0.5},
		{Kind: sim.DriftLinkClass, Tick: 5, Factor: 1},
	}
	dp, err := PlanFromEvents(events, 3, tick)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Surges) != 1 {
		t.Fatalf("surges: %+v", dp.Surges)
	}
	s := dp.Surges[0]
	if s.At != 2*tick || s.Duration != 3*tick || s.Factor != 1.5 {
		t.Errorf("surge compiled wrong: %+v", s)
	}
	if len(dp.Faults.Devices) != 2 {
		t.Fatalf("device faults: %+v", dp.Faults.Devices)
	}
	// Permanent loss of device 0 starting at tick 1.
	loss := dp.Faults.Devices[0]
	if loss.Device != 0 || loss.At != tick || loss.Duration != UntilEnd {
		t.Errorf("loss compiled wrong: %+v", loss)
	}
	// Device 2 joins at tick 4: absent for [0, 4 ticks).
	join := dp.Faults.Devices[1]
	if join.Device != 2 || join.At != 0 || join.Duration != 4*tick {
		t.Errorf("join compiled wrong: %+v", join)
	}
	// The 0.5 class holds for ticks [2, 5); the return to class 1 needs
	// no window of its own.
	if len(dp.Faults.Links) != 1 {
		t.Fatalf("link faults: %+v", dp.Faults.Links)
	}
	lf := dp.Faults.Links[0]
	if lf.Device != -1 || lf.At != 2*tick || lf.Duration != 3*tick || lf.Factor != 0.5 {
		t.Errorf("class compiled wrong: %+v", lf)
	}
}

func TestPlanFromEventsRejectsBadInput(t *testing.T) {
	if _, err := PlanFromEvents(nil, 2, 0); err == nil {
		t.Error("zero tick must be rejected")
	}
	bad := []sim.DriftEvent{{Kind: sim.DriftDeviceLoss, Tick: 0, Device: 9}}
	if _, err := PlanFromEvents(bad, 2, time.Millisecond); err == nil {
		t.Error("out-of-range device must be rejected")
	}
}

// TestRunUnderDriftDeviceLoss replays a compiled drift timeline on the
// wall-clock executor: permanently losing the sink's device must cost
// throughput versus the drift-free run.
func TestRunUnderDriftDeviceLoss(t *testing.T) {
	c := sim.DefaultCluster(2, 1e6)
	mk := func(dp *DriftPlan) Result {
		g := chainGraph(200, 1)
		p := onDevice(g, 2, 0, 0, 1)
		cfg := faultCfg()
		cfg.Drift = dp
		res, err := Run(g, p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := mk(nil)
	events := []sim.DriftEvent{{Kind: sim.DriftDeviceLoss, Tick: 3, DurTicks: 0, Device: 1}}
	dp, err := PlanFromEvents(events, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lost := mk(dp)
	t.Logf("clean=%v lost=%v crashes=%d", clean.Relative, lost.Relative, lost.DeviceCrashes)
	if lost.Relative >= clean.Relative {
		t.Errorf("losing the sink's device must cost throughput: clean=%v lost=%v",
			clean.Relative, lost.Relative)
	}
	if lost.DeviceCrashes == 0 {
		t.Error("the compiled loss should register as a measured crash")
	}
}

// TestRunUnderSurgeRetunesSources checks the surge controller actually
// retunes arrival buckets: a bounded mid-run surge must record at least
// the onset and the decay.
func TestRunUnderSurgeRetunesSources(t *testing.T) {
	c := sim.DefaultCluster(1, 1e6)
	g := chainGraph(100, 0)
	p := onDevice(g, 1, 0, 0, 0)
	cfg := faultCfg()
	cfg.Drift = &DriftPlan{Surges: []SourceSurge{
		{At: 100 * time.Millisecond, Duration: 100 * time.Millisecond, Factor: 2},
	}}
	res, err := Run(g, p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceRetunes < 2 {
		t.Errorf("a bounded surge must retune sources at onset and decay, got %d", res.SourceRetunes)
	}
}
