package runtime

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stream"
)

func chain(n int, rate, ipt, payload float64) *stream.Graph {
	g := stream.NewGraph(rate)
	for i := 0; i < n; i++ {
		g.AddNode(stream.Node{IPT: ipt, Payload: payload})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

func testCluster() sim.Cluster {
	return sim.Cluster{Devices: 2, MIPS: 1, Bandwidth: 1e6, Links: sim.NIC}
}

func quickConfig() Config {
	cfg := DefaultConfig()
	// Long enough that the token-bucket rates dominate scheduling jitter
	// even when other test binaries share the machine.
	cfg.WallTime = 250 * time.Millisecond
	return cfg
}

func TestRunUnconstrainedReachesFullRate(t *testing.T) {
	g := chain(3, 200, 10, 10)
	p := stream.NewPlacement(3, 2)
	res, err := Run(g, p, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative < 0.75 {
		t.Fatalf("relative = %g, want near 1", res.Relative)
	}
	if res.SinkTuples <= 0 {
		t.Fatal("no tuples reached the sink")
	}
}

func TestRunCPUBottleneckHalvesThroughput(t *testing.T) {
	// Both ops on one device at 2× demand → ≈0.5 relative.
	g := chain(2, 1000, 1000, 1)
	p := stream.NewPlacement(2, 2)
	res, err := Run(g, p, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative < 0.3 || res.Relative > 0.75 {
		t.Fatalf("relative = %g, want ≈0.5", res.Relative)
	}
}

func TestRunColocationBeatsSplitForHeavyEdge(t *testing.T) {
	g := chain(2, 1000, 1, 2000) // edge traffic 2× bandwidth when cut
	together := stream.NewPlacement(2, 2)
	apart := stream.NewPlacement(2, 2)
	apart.Assign[1] = 1
	rT, err := Run(g, together, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	rA, err := Run(g, apart, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rT.Relative <= rA.Relative {
		t.Fatalf("colocation %.3f should beat split %.3f", rT.Relative, rA.Relative)
	}
}

func TestRunNetworkBottleneckThrottles(t *testing.T) {
	g := chain(2, 1000, 1, 2000)
	p := stream.NewPlacement(2, 2)
	p.Assign[1] = 1
	res, err := Run(g, p, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cut edge carries 2× bandwidth → ≈0.5 relative; generous tolerance
	// because the runtime measures a short real execution under whatever
	// machine load the test run happens to share.
	if res.Relative > 0.8 || res.Relative < 0.2 {
		t.Fatalf("relative = %g, want ≈0.5", res.Relative)
	}
}

func TestRunRankAgreesWithFluid(t *testing.T) {
	// Three placements whose fluid rewards are clearly ordered must keep
	// that order under real execution.
	g := stream.NewGraph(1000)
	for i := 0; i < 6; i++ {
		g.AddNode(stream.Node{IPT: 400, Payload: 400})
	}
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1, 0)
	}
	c := testCluster()

	balanced := stream.NewPlacement(6, 2)
	balanced.Assign = []int{0, 0, 0, 1, 1, 1} // one cut edge
	shredded := stream.NewPlacement(6, 2)
	shredded.Assign = []int{0, 1, 0, 1, 0, 1} // five cut edges
	single := stream.NewPlacement(6, 2)       // no cuts, one device

	fluid := func(p *stream.Placement) float64 { return sim.Reward(g, p, c) }
	real := func(p *stream.Placement) float64 {
		res, err := Run(g, p, c, quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Relative
	}
	fb, fs, f1 := fluid(balanced), fluid(shredded), fluid(single)
	rb, rs, r1 := real(balanced), real(shredded), real(single)
	if !(fb > fs) {
		t.Skipf("fluid ordering unexpected: %g %g %g", fb, fs, f1)
	}
	if !(rb > rs) {
		t.Fatalf("runtime rank flip: balanced %.3f vs shredded %.3f (fluid %.3f vs %.3f)", rb, rs, fb, fs)
	}
	_ = r1
}

func TestRunRejectsInvalid(t *testing.T) {
	g := chain(3, 100, 1, 1)
	if _, err := Run(g, stream.NewPlacement(2, 2), testCluster(), quickConfig()); err == nil {
		t.Fatal("short placement accepted")
	}
	if _, err := Run(g, stream.NewPlacement(3, 2), testCluster(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	g.AddEdge(2, 0, 1)
	if _, err := Run(g, stream.NewPlacement(3, 2), testCluster(), quickConfig()); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestRunEmptyDeviceOK(t *testing.T) {
	// Devices without operators must not deadlock the run.
	g := chain(2, 100, 1, 1)
	p := stream.NewPlacement(2, 2) // all on device 0; device 1 idle
	res, err := Run(g, p, testCluster(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative <= 0 {
		t.Fatal("no throughput measured")
	}
}
