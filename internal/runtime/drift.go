// drift.go extends the runtime's chaos surface beyond crash/degrade
// faults to the drift a long-lived deployment actually sees: source-rate
// surges, device pool shrink/grow, and link class changes. A DriftPlan
// compiles pool and class events down to the existing fault machinery
// (a not-yet-joined device is a device that is "down" from the start;
// a class change is an open-ended link retune), while surges get their
// own controller that retunes the source arrival buckets.
package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// SourceSurge multiplies every source's arrival rate by Factor during
// [At, At+Duration). Overlapping surges compound multiplicatively, the
// same convention as sim.BuildTimeline. Duration < 0 (UntilEnd) lasts
// for the rest of the run.
type SourceSurge struct {
	At       time.Duration
	Duration time.Duration
	Factor   float64
}

// DriftPlan schedules drift events for a wall-clock run. Pool changes
// and link class changes are expressed as a FaultPlan (compiled by
// PlanFromEvents or hand-written); surges are separate because they
// retune arrival processes, not device capacity.
type DriftPlan struct {
	Surges []SourceSurge
	// Faults holds the compiled pool/class schedule: a device joining at
	// time t is a DeviceFault covering [0, t); a loss is an ordinary
	// crash window; a link class change is a LinkFault on every device.
	Faults FaultPlan
}

// Empty reports whether the plan injects nothing.
func (dp *DriftPlan) Empty() bool {
	return dp == nil || (len(dp.Surges) == 0 && dp.Faults.Empty())
}

// Validate checks the plan against a cluster size.
func (dp *DriftPlan) Validate(devices int) error {
	if dp == nil {
		return nil
	}
	for i, s := range dp.Surges {
		if s.At < 0 {
			return fmt.Errorf("runtime: surge %d has negative start %v", i, s.At)
		}
		if s.Duration == 0 {
			return fmt.Errorf("runtime: surge %d has zero duration (use UntilEnd for rest-of-run)", i)
		}
		if s.Factor <= 0 {
			return fmt.Errorf("runtime: surge %d has non-positive factor %v", i, s.Factor)
		}
	}
	return dp.Faults.Validate(devices)
}

// surgeFactor returns the product of every surge active at elapsed.
func surgeFactor(surges []SourceSurge, elapsed time.Duration) float64 {
	f := 1.0
	for _, s := range surges {
		if active(s.At, s.Duration, elapsed) {
			f *= s.Factor
		}
	}
	return f
}

// PlanFromEvents compiles a deterministic sim drift timeline into a
// wall-clock DriftPlan, mapping each tick to the given wall duration.
// The same event list drives sim.BuildTimeline and this compiler, so
// the fluid replay and the concurrent execution see identical drift.
func PlanFromEvents(events []sim.DriftEvent, devices int, tick time.Duration) (*DriftPlan, error) {
	if tick <= 0 {
		return nil, fmt.Errorf("runtime: non-positive tick %v", tick)
	}
	if err := sim.ValidateEvents(events, devices); err != nil {
		return nil, err
	}
	dp := &DriftPlan{}
	dur := func(durTicks int) time.Duration {
		if durTicks <= 0 {
			return UntilEnd
		}
		return time.Duration(durTicks) * tick
	}
	// Link class changes: the latest change at or before an instant wins,
	// so each change becomes a segment ending at the next change.
	type classChange struct {
		at     time.Duration
		factor float64
	}
	var classes []classChange
	for _, ev := range events {
		at := time.Duration(ev.Tick) * tick
		switch ev.Kind {
		case sim.DriftSourceSurge:
			dp.Surges = append(dp.Surges, SourceSurge{At: at, Duration: dur(ev.DurTicks), Factor: ev.Factor})
		case sim.DriftDeviceLoss:
			dp.Faults.Devices = append(dp.Faults.Devices, DeviceFault{
				Device: ev.Device, At: at, Duration: dur(ev.DurTicks),
			})
		case sim.DriftDeviceJoin:
			// Absent from the start until the join tick. A join at tick 0
			// means present from the start: nothing to schedule.
			if ev.Tick > 0 {
				dp.Faults.Devices = append(dp.Faults.Devices, DeviceFault{
					Device: ev.Device, At: 0, Duration: at,
				})
			}
		case sim.DriftLinkClass:
			classes = append(classes, classChange{at: at, factor: ev.Factor})
		}
	}
	sort.SliceStable(classes, func(i, j int) bool { return classes[i].at < classes[j].at })
	for i, cc := range classes {
		// Later changes at the same instant override earlier ones.
		if i+1 < len(classes) && classes[i+1].at == cc.at {
			continue
		}
		d := UntilEnd
		if i+1 < len(classes) {
			d = classes[i+1].at - cc.at
		}
		if cc.factor == 1 {
			// The preceding segment already ended at this instant, so a
			// return to the nominal class needs no fault window of its own.
			continue
		}
		dp.Faults.Links = append(dp.Faults.Links, LinkFault{
			Device: -1, At: cc.at, Duration: d, Factor: cc.factor,
		})
	}
	if err := dp.Validate(devices); err != nil {
		return nil, err
	}
	return dp, nil
}

// mergeFaults combines a user fault plan with a drift plan's compiled
// faults into one schedule.
func mergeFaults(fp *FaultPlan, dp *DriftPlan) *FaultPlan {
	if dp.Empty() || dp.Faults.Empty() {
		return fp
	}
	merged := &FaultPlan{}
	if fp != nil {
		merged.Devices = append(merged.Devices, fp.Devices...)
		merged.Links = append(merged.Links, fp.Links...)
	}
	merged.Devices = append(merged.Devices, dp.Faults.Devices...)
	merged.Links = append(merged.Links, dp.Faults.Links...)
	return merged
}
