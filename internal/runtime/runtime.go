// Package runtime executes a stream graph placement as a real concurrent
// program: every device is a goroutine, every edge a bounded channel, CPU
// and NIC capacities are token buckets replenished in scaled time, and
// backpressure arises naturally from full channels — exactly the mechanism
// the paper's reward models (throughput under backpressure).
//
// The paper validates CEPSim against a real streaming platform by checking
// that relative performance ranks are preserved (§III). This package plays
// the role of that real platform for the repository's simulators: the
// sim-validation experiment measures rank concordance between the fluid
// solver, the discrete-event solver, and this runtime.
//
// Tuples are not materialized individually; batches carry counts, so the
// runtime measures scheduling/contention behaviour, not payload copying.
//
// A FaultPlan (see fault.go) optionally injects device crashes/restarts
// and link-rate degradations or flaps into a run, so a placement can be
// scored under the failures a real cluster exhibits — the robustness
// metric reported by the eval harness and examples/faults.
package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Config controls one execution.
type Config struct {
	// WallTime is how long to run in real time.
	WallTime time.Duration
	// TimeScale is simulated seconds per wall second: capacities and
	// source rates are multiplied by it, letting a 200 ms run cover
	// multiple simulated seconds of traffic.
	TimeScale float64
	// BatchTuples is the tuple count carried per channel message.
	BatchTuples float64
	// ChannelDepth is the per-edge channel capacity in batches; together
	// with BatchTuples it bounds queued tuples and creates backpressure.
	ChannelDepth int
	// WarmupFrac of WallTime is excluded from throughput measurement.
	WarmupFrac float64
	// Faults optionally injects device crashes and link degradations into
	// the run (nil = fault-free execution). See FaultPlan.
	Faults *FaultPlan
	// Drift optionally injects source-rate surges, device pool
	// shrink/grow, and link class changes (nil = drift-free execution).
	// See DriftPlan and PlanFromEvents.
	Drift *DriftPlan
}

// DefaultConfig runs 300 ms of wall time at 10× time scale.
func DefaultConfig() Config {
	return Config{
		WallTime:     300 * time.Millisecond,
		TimeScale:    10,
		BatchTuples:  64,
		ChannelDepth: 32,
		WarmupFrac:   0.3,
	}
}

// Result reports the measured execution.
type Result struct {
	// Relative is measured throughput / source rate ∈ [0, 1] — the same
	// quantity the simulators report.
	Relative float64
	// SinkTuples is the total tuples absorbed by sinks after warmup.
	SinkTuples float64
	// Elapsed is the measured (post-warmup) window in simulated seconds.
	Elapsed float64
	// DeviceCrashes counts up→down transitions the device goroutines
	// actually observed during the run — the measured injection count, as
	// opposed to whatever the FaultPlan scheduled (a crash scheduled after
	// the wall clock expires never happens).
	DeviceCrashes int
	// DeviceRestarts counts state-wiping restarts devices executed.
	DeviceRestarts int
	// LinkRetunes counts NIC rate changes the link-fault controller
	// applied (degradations and recoveries).
	LinkRetunes int
	// SourceRetunes counts arrival-rate changes the surge controller
	// applied (surge onsets and decays).
	SourceRetunes int
}

// batch is one channel message.
type batch struct {
	tuples float64
}

// bucket is a time-replenished token bucket (tokens = instructions or bits).
type bucket struct {
	mu     sync.Mutex
	tokens float64
	rate   float64 // tokens per wall second
	last   time.Time
	burst  float64
}

func newBucket(rate float64, start time.Time) *bucket {
	// Burst is ~4 ms of capacity: long enough to ride scheduling jitter,
	// short enough not to inflate throughput over a sub-second window.
	return &bucket{rate: rate, last: start, burst: rate * 0.004, tokens: rate * 0.001}
}

// setRate accrues tokens at the old rate up to now, then switches the
// bucket to a new rate (fault injection: link degradation and recovery).
func (b *bucket) setRate(rate float64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	b.rate = rate
	b.burst = rate * 0.004
}

// take attempts to consume want tokens; it returns how many were granted
// (possibly 0). Tokens accrue with wall time.
func (b *bucket) take(want float64, now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens <= 0 {
		return 0
	}
	grant := want
	if grant > b.tokens {
		grant = b.tokens
	}
	b.tokens -= grant
	return grant
}

// Run executes the placement and measures throughput.
func Run(g *stream.Graph, p *stream.Placement, c sim.Cluster, cfg Config) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, fmt.Errorf("runtime: %w", err)
	}
	if cfg.WallTime <= 0 || cfg.TimeScale <= 0 || cfg.BatchTuples <= 0 || cfg.ChannelDepth <= 0 {
		return Result{}, fmt.Errorf("runtime: invalid config %+v", cfg)
	}
	if err := cfg.Faults.Validate(c.Devices); err != nil {
		return Result{}, err
	}
	if err := cfg.Drift.Validate(c.Devices); err != nil {
		return Result{}, err
	}
	effective := mergeFaults(cfg.Faults, cfg.Drift)
	if effective != cfg.Faults {
		if err := effective.Validate(c.Devices); err != nil {
			return Result{}, fmt.Errorf("runtime: fault and drift plans conflict: %w", err)
		}
	}
	faults := newFaultSchedule(effective, c.Devices)

	n := g.NumNodes()
	start := time.Now()

	// One bounded channel per edge.
	chans := make([]chan batch, g.NumEdges())
	for i := range chans {
		chans[i] = make(chan batch, cfg.ChannelDepth)
	}

	// Capacities in wall-time token rates (scaled).
	cpu := make([]*bucket, c.Devices)
	egress := make([]*bucket, c.Devices)
	ingress := make([]*bucket, c.Devices)
	for d := 0; d < c.Devices; d++ {
		cpu[d] = newBucket(c.CapacityOf(d)*cfg.TimeScale, start)
		egress[d] = newBucket(c.Bandwidth*cfg.TimeScale, start)
		ingress[d] = newBucket(c.Bandwidth*cfg.TimeScale, start)
	}

	// Per-operator pending input tuples (owned by the device goroutine,
	// fed from channels).
	pending := make([]float64, n)
	// Residual output per edge awaiting channel space / bandwidth.
	residual := make([]float64, g.NumEdges())
	// Granted-but-unspent egress bits per edge: bandwidth accrues here
	// until it covers a full batch, so bounded channels carry full batches
	// instead of filling up with fragments.
	bitCredit := make([]float64, g.NumEdges())
	// Receive-side credits enforcing the ingress NIC budget the same way.
	rcvCredit := make([]float64, g.NumEdges())
	// Last successful send per cross-device edge: sub-batch residuals are
	// held back until the edge has been quiet for a few milliseconds, so
	// low-rate flows still flush promptly but a busy link carries full
	// batches instead of a storm of fractional-tuple messages (each of
	// which would pay the whole credit handshake). Same-device edges are
	// exempt — their sends are free, and holding them back would starve a
	// device-mate of pending work between flushes.
	lastSend := make([]time.Time, g.NumEdges())
	for i := range lastSend {
		lastSend[i] = start
	}
	const partialFlushAfter = 4 * time.Millisecond

	// Per-sink tuple counts: each element is owned by exactly one device
	// goroutine, summed after Wait (no atomics needed on the hot path,
	// and no fixed-point truncation of tiny per-call emissions).
	sinkCount := make([]float64, n)
	warmupDone := start.Add(time.Duration(float64(cfg.WallTime) * cfg.WarmupFrac))

	isSource := make([]bool, n)
	for _, s := range g.Sources() {
		isSource[s] = true
	}
	devOps := make([][]int, c.Devices)
	for v := 0; v < n; v++ {
		devOps[p.Assign[v]] = append(devOps[p.Assign[v]], v)
	}
	// Source token buckets (arrival processes).
	srcBucket := make([]*bucket, n)
	for v := 0; v < n; v++ {
		if isSource[v] {
			srcBucket[v] = newBucket(g.SourceRate*cfg.TimeScale, start)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.WallTime)
	defer cancel()

	// Measured fault-injection counts. Each device goroutine owns its own
	// slice slot and the controller goroutine owns linkRetunes; wg.Wait
	// orders their final writes before the summation below.
	crashCount := make([]int, c.Devices)
	restartCount := make([]int, c.Devices)
	var linkRetunes, sourceRetunes int

	var wg sync.WaitGroup
	for d := 0; d < c.Devices; d++ {
		if len(devOps[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			ops := devOps[d]
			pendingCap := 4 * cfg.BatchTuples
			round := 0
			crashed := false
			for ctx.Err() == nil {
				now := time.Now()
				// Fault injection: a crashed device does nothing; its full
				// input channels backpressure the rest of the graph.
				if faults.deviceDown(d, now.Sub(start)) {
					if !crashed {
						crashCount[d]++
					}
					crashed = true
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if crashed {
					restartCount[d]++
					// Restart with empty state: queued tuples, residual
					// output, NIC credits, and in-flight channel contents
					// are lost, as they would be on a real machine.
					for _, v := range ops {
						pending[v] = 0
						for _, ei := range g.OutEdges(v) {
							residual[ei] = 0
							bitCredit[ei] = 0
						}
						for _, ei := range g.InEdges(v) {
							rcvCredit[ei] = 0
							for drained := false; !drained; {
								select {
								case <-chans[ei]:
								default:
									drained = true
								}
							}
						}
					}
					crashed = false
				}
				progress := false
				for oi := range ops {
					v := ops[(oi+round)%len(ops)]
					// Ingest: sources draw from their arrival bucket;
					// other operators drain their input channels
					// (consuming ingress bandwidth for cross-device edges).
					if isSource[v] && pending[v] < pendingCap {
						got := srcBucket[v].take(cfg.BatchTuples, now)
						pending[v] += got
						// Sub-tuple grants accrue but are not "progress":
						// counting them would busy-spin the device on an
						// asymptotically full queue and starve every other
						// goroutine when cores are scarce.
						if got >= 1 {
							progress = true
						}
					}
					for _, ei := range g.InEdges(v) {
						e := g.Edges[ei]
						cross := p.Assign[e.Src] != p.Assign[e.Dst]
						// Bounded operator queue: draining stops when the
						// queue is full, which fills the channel and, in
						// turn, stalls the upstream emitter — backpressure.
						for pending[v] < pendingCap {
							if cross && e.Payload > 0 {
								// Reserve ingress bandwidth for a full batch
								// before receiving; leftover credit persists,
								// so nothing is lost to over-reservation.
								maxBits := cfg.BatchTuples * e.Payload
								if rcvCredit[ei] < maxBits {
									got := ingress[d].take(maxBits-rcvCredit[ei], now)
									rcvCredit[ei] += got
								}
								if rcvCredit[ei] < maxBits {
									break // ingress NIC saturated; retry later
								}
							}
							received := false
							select {
							case bt := <-chans[ei]:
								if cross {
									rcvCredit[ei] -= bt.tuples * e.Payload
								}
								pending[v] += bt.tuples
								if bt.tuples >= 1 {
									progress = true
								}
								received = true
							default:
							}
							if !received {
								break
							}
						}
					}

					// Stall check: when any out-edge's undelivered residual
					// exceeds a few batches, the operator stops processing —
					// this is what chains backpressure from a saturated link
					// all the way to the sources.
					stalled := false
					for _, ei := range g.OutEdges(v) {
						if residual[ei] > 4*cfg.BatchTuples {
							stalled = true
							break
						}
					}

					// Process: spend CPU tokens on pending tuples.
					if pending[v] > 0 && !stalled {
						want := pending[v]
						if want > cfg.BatchTuples {
							want = cfg.BatchTuples
						}
						var did float64
						if g.Nodes[v].IPT <= 0 {
							did = want
						} else {
							grant := cpu[d].take(want*g.Nodes[v].IPT, now)
							did = grant / g.Nodes[v].IPT
						}
						if did > 0 {
							// Emission must have room on every out-edge
							// first (broadcast semantics): find the
							// bottleneck across residuals + channel space.
							out := did * g.Nodes[v].Selectivity
							pending[v] -= did
							// Like ingestion, sub-tuple trickles are real
							// work but not "progress": a source draining its
							// own fractional grants would otherwise spin the
							// device at full CPU forever.
							if did >= 1 {
								progress = true
							}
							if len(g.OutEdges(v)) == 0 {
								if now.After(warmupDone) {
									// Count *emitted* tuples (selectivity
									// applied) to match idealSinkRate below.
									sinkCount[v] += out
								}
							} else {
								for _, ei := range g.OutEdges(v) {
									residual[ei] += out
								}
							}
						}
					}

					// Flush residual output to channels, paying egress
					// bandwidth for cross-device edges.
					for _, ei := range g.OutEdges(v) {
						if residual[ei] < cfg.BatchTuples {
							e := g.Edges[ei]
							costly := p.Assign[e.Src] != p.Assign[e.Dst] && e.Payload > 0
							if pending[v] > 0 ||
								(costly && now.Sub(lastSend[ei]) < partialFlushAfter) {
								continue // accumulate full batches while busy
							}
						}
						for residual[ei] > 0 {
							send := residual[ei]
							if send > cfg.BatchTuples {
								send = cfg.BatchTuples
							}
							e := g.Edges[ei]
							cost := 0.0
							if p.Assign[e.Src] != p.Assign[e.Dst] && e.Payload > 0 {
								cost = send * e.Payload
								if need := cost - bitCredit[ei]; need > 0 {
									bitCredit[ei] += egress[d].take(need, now)
								}
								if bitCredit[ei] < cost {
									break // bandwidth not yet accrued; retry later
								}
							}
							sent := false
							select {
							case chans[ei] <- batch{tuples: send}:
								residual[ei] -= send
								bitCredit[ei] -= cost
								lastSend[ei] = now
								// Sub-tuple housekeeping sends are not
								// "progress" either (see the ingest note).
								if send >= 1 {
									progress = true
								}
								sent = true
							default:
								// Backpressure: downstream full; credit and
								// residual persist for the next round.
							}
							if !sent || residual[ei] <= 0 {
								break
							}
						}
					}
				}
				if progress {
					// Rotate the scan order across productive rounds so no
					// operator permanently drains the freshly-accrued CPU
					// tokens first.
					round++
				} else {
					// Idle: hand the processor to sibling goroutines instead
					// of monopolizing it until the scheduler preempts us.
					// Sleeping here would be wrong twice over: timer
					// granularity (~1 ms or worse under load) is larger than
					// the token-bucket burst horizon, so sleepers drop
					// capacity on the floor, and token-rich wakeup rounds
					// distort CPU sharing between device-mates. Gosched keeps
					// every device polling at fine granularity while letting
					// sleeping goroutines (and other devices) run on time.
					goruntime.Gosched()
				}
			}
		}(d)
	}
	// Link-fault controller: periodically recompute each device's
	// bandwidth factor and retune the NIC buckets when it changes. The
	// buckets' own mutexes make this safe against in-flight take calls.
	if faults != nil && len(faults.links) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			current := make([]float64, c.Devices)
			for d := range current {
				current[d] = 1
			}
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			for ctx.Err() == nil {
				select {
				case <-ctx.Done():
					return
				case now := <-ticker.C:
					elapsed := now.Sub(start)
					for d := 0; d < c.Devices; d++ {
						f := faults.linkFactor(d, elapsed)
						if f != current[d] {
							current[d] = f
							linkRetunes++
							egress[d].setRate(c.Bandwidth*cfg.TimeScale*f, now)
							ingress[d].setRate(c.Bandwidth*cfg.TimeScale*f, now)
						}
					}
				}
			}
		}()
	}
	// Surge controller: periodically recompute the compound surge factor
	// and retune every source arrival bucket when it changes — the drift
	// analogue of the link-fault controller above.
	if cfg.Drift != nil && len(cfg.Drift.Surges) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			current := 1.0
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			for ctx.Err() == nil {
				select {
				case <-ctx.Done():
					return
				case now := <-ticker.C:
					f := surgeFactor(cfg.Drift.Surges, now.Sub(start))
					if f != current {
						current = f
						sourceRetunes++
						for v := 0; v < n; v++ {
							if srcBucket[v] != nil {
								srcBucket[v].setRate(g.SourceRate*cfg.TimeScale*f, now)
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	window := float64(cfg.WallTime)*(1-cfg.WarmupFrac)/float64(time.Second) + 1e-12
	simWindow := window * cfg.TimeScale

	// Normalize: sum of ideal sink input rates.
	ideal := g.SteadyRates()
	var idealSinkRate float64
	for _, v := range g.Sinks() {
		if len(g.InEdges(v)) == 0 {
			idealSinkRate += g.SourceRate * g.Nodes[v].Selectivity
			continue
		}
		inRate := 0.0
		for _, ei := range g.InEdges(v) {
			inRate += ideal[g.Edges[ei].Src]
		}
		idealSinkRate += inRate * g.Nodes[v].Selectivity
	}
	var sinks float64
	for _, c := range sinkCount {
		sinks += c
	}
	rel := 0.0
	if idealSinkRate > 0 {
		rel = (sinks / simWindow) / idealSinkRate
	}
	if rel > 1 {
		rel = 1
	}
	res := Result{Relative: rel, SinkTuples: sinks, Elapsed: simWindow}
	for d := 0; d < c.Devices; d++ {
		res.DeviceCrashes += crashCount[d]
		res.DeviceRestarts += restartCount[d]
	}
	res.LinkRetunes = linkRetunes
	res.SourceRetunes = sourceRetunes
	obsRuns.Inc()
	obsCrashes.Add(uint64(res.DeviceCrashes))
	obsRestarts.Add(uint64(res.DeviceRestarts))
	obsRetunes.Add(uint64(res.LinkRetunes))
	obsSurges.Add(uint64(res.SourceRetunes))
	return res, nil
}

// Process-wide fault-injection metrics, fed from the measured per-run
// counts above (observation only — never read back by the runtime).
var (
	obsRuns     = obs.Default.Counter("runtime_runs_total")
	obsCrashes  = obs.Default.Counter("runtime_device_crashes_total")
	obsRestarts = obs.Default.Counter("runtime_device_restarts_total")
	obsRetunes  = obs.Default.Counter("runtime_link_retunes_total")
	obsSurges   = obs.Default.Counter("runtime_source_retunes_total")
)
