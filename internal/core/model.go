// Package core implements the paper's primary contribution: the
// edge-collapsing coarsening model (§IV) and the coarsening–partitioning
// pipeline built around it (§III).
//
// The model encodes a stream graph with the edge-aware GNN
// (internal/gnn), builds an edge representation from the head node's
// projected embedding, the tail node's projected embedding, and the edge
// features, and emits a per-edge merge probability through an MLP with a
// sigmoid output (§IV-B). Sampling these Bernoulli decisions yields a
// coarse map; the coarse graph is partitioned by a pluggable placer and
// the placement is expanded back to the original operators.
package core

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/autodiff"
	"repro/internal/gnn"
	"repro/internal/nn"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// Config sets the coarsening model's dimensions.
type Config struct {
	// Hidden is the GNN half-embedding width M (node representations are
	// 2M). The paper uses 256 halves (512 total); the default here is CPU
	// friendly and configurable up to paper scale.
	Hidden int
	// EdgeDim is the width of the projected edge-feature vector inside the
	// edge representation (paper: 128).
	EdgeDim int
	// MergeDim is the edge-representation width fed to the merge MLP.
	MergeDim int
	// Hops is the number of GNN iterations K (paper: 2).
	Hops int
	// Seed initializes the parameters.
	Seed int64
	// UseEdgeEncoding toggles edge features inside the GNN (Table II
	// "w/o edge-encoding" ablation sets this false).
	UseEdgeEncoding bool
	// UseEdgeCollapse toggles edge features inside the edge representation
	// (Table II "w/o edge-collapsing [features]" ablation sets this false).
	UseEdgeCollapse bool
}

// DefaultConfig returns a CPU-scale configuration.
func DefaultConfig() Config {
	return Config{
		Hidden:          24,
		EdgeDim:         8,
		MergeDim:        32,
		Hops:            2,
		Seed:            1,
		UseEdgeEncoding: true,
		UseEdgeCollapse: true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Hidden == 0 {
		c.Hidden = d.Hidden
	}
	if c.EdgeDim == 0 {
		c.EdgeDim = d.EdgeDim
	}
	if c.MergeDim == 0 {
		c.MergeDim = d.MergeDim
	}
	if c.Hops == 0 {
		c.Hops = d.Hops
	}
	return c
}

// Model is the edge-collapsing coarsening model.
type Model struct {
	Cfg Config
	PS  *nn.ParamSet
	Enc *gnn.Encoder

	wHead *nn.Param // M×2M head-node projection
	wTail *nn.Param // M×2M tail-node projection
	wEdge *nn.Param // EdgeDim×EdgeFeatureDim edge-feature projection
	w1m   *nn.Param // MergeDim×(2M+EdgeDim) merge projection
	head  *nn.MLP   // MergeDim → MergeDim → 1, sigmoid output
}

// New constructs a model with freshly initialized parameters.
func New(cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	m := cfg.Hidden
	enc := gnn.NewEncoder(ps, "enc", m, cfg.Hops, rng)
	enc.UseEdgeFeatures = cfg.UseEdgeEncoding
	head := nn.NewMLP(ps, "merge.head", []int{cfg.MergeDim, cfg.MergeDim, 1}, nn.ActTanh, nn.ActSigmoid, rng)
	// Bias the initial merge probability toward sparse collapsing (~0.2):
	// an untrained symmetric head collapses half of all edges per sample,
	// which is a uniformly catastrophic region of the search space and
	// stalls REINFORCE during the cold start (§IV-C).
	lastBias := ps.Get("merge.head.l1.b")
	lastBias.Value.Data[0] = -1.4
	return &Model{
		Cfg:   cfg,
		PS:    ps,
		Enc:   enc,
		wHead: ps.NewXavier("head.W", m, 2*m, rng),
		wTail: ps.NewXavier("tail.W", m, 2*m, rng),
		wEdge: ps.NewXavier("edge.W", cfg.EdgeDim, gnn.EdgeFeatureDim, rng),
		w1m:   ps.NewXavier("merge.W1", cfg.MergeDim, 2*m+cfg.EdgeDim, rng),
		head:  head,
	}
}

// EdgeProbs records the full forward pass on the binder's tape and returns
// the E×1 vector of merge probabilities.
func (mo *Model) EdgeProbs(b *nn.Binder, f *gnn.Features) *autodiff.Node {
	t := b.Tape
	h := mo.Enc.Encode(b, f) // N×2M

	hHead := t.MatMul(t.GatherRows(h, f.Src), t.Transpose(b.Node(mo.wHead))) // E×M
	hTail := t.MatMul(t.GatherRows(h, f.Dst), t.Transpose(b.Node(mo.wTail))) // E×M

	var eProj *autodiff.Node
	if mo.Cfg.UseEdgeCollapse {
		eProj = t.MatMul(t.Const(f.Edge), t.Transpose(b.Node(mo.wEdge))) // E×EdgeDim
	} else {
		eProj = t.Const(tensor.New(f.Edge.Rows, mo.Cfg.EdgeDim))
	}
	hEdge := t.MatMul(t.ConcatCols(hHead, hTail, eProj), t.Transpose(b.Node(mo.w1m)))
	return mo.head.Apply(b, hEdge) // E×1, sigmoid
}

// fwdPool recycles binder+tape pairs across inference forward passes, so
// repeated Probs calls (the allocation hot path of Pipeline.Allocate and
// batch evaluation) reuse the node slab and arena-backed matrices instead
// of rebuilding the tape from nothing. sync.Pool keeps this safe under
// the parallel evaluation fan-out: each goroutine drives its own binder.
var fwdPool = sync.Pool{
	New: func() any { return nn.NewBinder(autodiff.NewTape()) },
}

// Probs computes merge probabilities outside any training loop (the
// forward tape is pooled and recycled).
func (mo *Model) Probs(g *stream.Graph, c sim.Cluster) []float64 {
	f := gnn.BuildFeatures(g, c)
	b := fwdPool.Get().(*nn.Binder)
	b.Reset() // reclaim the previous forward pass's matrices
	p := mo.EdgeProbs(b, f)
	out := make([]float64, g.NumEdges())
	copy(out, p.Value.Data)
	fwdPool.Put(b)
	return out
}

// Decision is a per-edge collapse decision vector.
type Decision []bool

// Greedy thresholds merge probabilities at 0.5.
func (mo *Model) Greedy(g *stream.Graph, c sim.Cluster) Decision {
	probs := mo.Probs(g, c)
	d := make(Decision, len(probs))
	for i, p := range probs {
		d[i] = p >= 0.5
	}
	return d
}

// Sample draws Bernoulli decisions from the merge probabilities.
func (mo *Model) Sample(g *stream.Graph, c sim.Cluster, rng *rand.Rand) Decision {
	probs := mo.Probs(g, c)
	d := make(Decision, len(probs))
	for i, p := range probs {
		d[i] = rng.Float64() < p
	}
	return d
}

// SampleN draws n decision vectors from a single forward pass.
func (mo *Model) SampleN(g *stream.Graph, c sim.Cluster, rng *rand.Rand, n int) []Decision {
	probs := mo.Probs(g, c)
	out := make([]Decision, n)
	for s := 0; s < n; s++ {
		d := make(Decision, len(probs))
		for i, p := range probs {
			d[i] = rng.Float64() < p
		}
		out[s] = d
	}
	return out
}

// LogProb records Σ_e [d_e·log p_e + (1−d_e)·log(1−p_e)] weighted by a
// scalar advantage, as the REINFORCE objective for one sampled decision
// vector. The caller accumulates gradients of the returned scalar.
func LogProbLoss(b *nn.Binder, probs *autodiff.Node, d Decision, advantage float64) *autodiff.Node {
	t := b.Tape
	e := probs.Value.Rows
	// mask: 1 where collapsed; loss = Σ adv·[mask·log p + (1-mask)·log(1-p)].
	mask := tensor.New(e, 1)
	inv := tensor.New(e, 1)
	for i, di := range d {
		if di {
			mask.Data[i] = 1
		} else {
			inv.Data[i] = 1
		}
	}
	ones := tensor.New(e, 1)
	ones.Fill(1)
	logP := t.Log(probs)
	log1mP := t.Log(t.Sub(t.Const(ones), probs))
	term := t.Add(t.Mul(t.Const(mask), logP), t.Mul(t.Const(inv), log1mP))
	// Negative advantage-weighted log-likelihood: minimizing this ascends
	// the REINFORCE objective.
	return t.Scale(t.Sum(term), -advantage)
}

// Pipeline is the full coarsening–partitioning framework: coarsen with the
// model, partition the coarse graph with Placer, expand back.
type Pipeline struct {
	Model  *Model
	Placer placer.Placer
}

// Allocation bundles the outputs of one end-to-end allocation.
type Allocation struct {
	Placement *stream.Placement
	Coarse    *stream.CoarseMap
	// CoarseGraph is the graph the placer saw.
	CoarseGraph *stream.Graph
}

// AllocateDecision runs the pipeline with an explicit decision vector.
func (pl *Pipeline) AllocateDecision(g *stream.Graph, c sim.Cluster, d Decision) Allocation {
	cm := stream.CollapseEdges(g, d)
	cg := stream.CoarseGraph(g, cm)
	cp := pl.Placer.Place(cg, c)
	return Allocation{
		Placement:   stream.ExpandPlacement(cm, cp),
		Coarse:      cm,
		CoarseGraph: cg,
	}
}

// Allocate runs deployment-time inference: one forward pass produces the
// model's merge probabilities; edges are ranked by probability and a small
// grid of collapse counts along that ranking is evaluated through the
// pipeline with the fast fluid simulator, keeping the best.
//
// This ranking-sweep inference is a documented adaptation of the paper's
// direct thresholding (DESIGN.md §2): at CPU-scale training the Bernoulli
// policy converges to a discriminative but unsaturated equilibrium, so a
// fixed 0.5 threshold discards what the model learned; the ranking is
// still entirely the model's. The sweep costs |fractions| extra simulator
// calls (microseconds each), mirroring how Metis itself re-runs with
// different coarsening scales.
func (pl *Pipeline) Allocate(g *stream.Graph, c sim.Cluster) Allocation {
	probs := pl.Model.Probs(g, c)
	return pl.AllocateRanked(g, c, probs)
}

// AllocateRanked sweeps coarsening ratios along an edge ranking: edges are
// collapsed in descending score order (skipping cycle-closing edges), and
// each time the super-node count crosses the next target size the
// corresponding decision snapshot is evaluated end-to-end. The best
// allocation wins. Target sizes are multiples of the device count, the
// same knob Metis exposes as its coarsening scale.
func (pl *Pipeline) AllocateRanked(g *stream.Graph, c sim.Cluster, score []float64) Allocation {
	n := g.NumNodes()
	type pe struct {
		ei int
		p  float64
	}
	order := make([]pe, len(score))
	for i, p := range score {
		order[i] = pe{i, p}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].p != order[b].p {
			return order[a].p > order[b].p
		}
		return order[a].ei < order[b].ei
	})
	// Candidate super-node counts: light coarsenings as fractions of n
	// (where most of the benefit typically lies) plus heavy coarsenings as
	// multiples of the device count.
	k := c.Devices
	var raw []int
	for _, f := range []float64{1, 0.92, 0.84, 0.75, 0.65, 0.55, 0.45, 0.35, 0.25} {
		raw = append(raw, int(f*float64(n)))
	}
	// Sub-device-count targets let the pipeline use fewer devices than
	// available — essential in the excess-device setting, where the
	// optimal allocation leaves devices idle.
	for _, m := range []float64{8, 4, 2, 1, 0.75, 0.5, 0.25} {
		t := int(m * float64(k))
		if t >= 1 {
			raw = append(raw, t)
		}
	}
	targets := []int{n}
	for _, t := range raw {
		if t >= 1 && t < targets[len(targets)-1] {
			targets = append(targets, t)
		}
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	d := make(Decision, len(score))
	comps := n
	var best Allocation
	bestR := -1.0
	evalSnapshot := func() {
		snap := make(Decision, len(d))
		copy(snap, d)
		a := pl.AllocateDecision(g, c, snap)
		if r := sim.Reward(g, a.Placement, c); r > bestR {
			best, bestR = a, r
		}
	}
	ti := 0
	next := 0
	for ti < len(targets) && comps <= targets[ti] {
		evalSnapshot()
		ti++
	}
	for ti < len(targets) && next < len(order) {
		e := g.Edges[order[next].ei]
		ru, rv := find(e.Src), find(e.Dst)
		if ru != rv {
			parent[ru] = rv
			d[order[next].ei] = true
			comps--
			for ti < len(targets) && comps <= targets[ti] {
				evalSnapshot()
				ti++
			}
		}
		next++
	}
	return best
}

// AllocateGreedy runs pure threshold-0.5 inference (used by ablations).
func (pl *Pipeline) AllocateGreedy(g *stream.Graph, c sim.Cluster) Allocation {
	return pl.AllocateDecision(g, c, pl.Model.Greedy(g, c))
}

// Reward simulates an allocation and returns the relative throughput.
func Reward(g *stream.Graph, a Allocation, c sim.Cluster) float64 {
	return sim.Reward(g, a.Placement, c)
}

// CoarsenTo collapses edges by descending merge probability until at most
// target super-nodes remain (cycle-closing edges along the ranking are
// skipped) and returns the resulting decision vector.
func (mo *Model) CoarsenTo(g *stream.Graph, c sim.Cluster, target int) Decision {
	return CoarsenToRanked(g, target, mo.Probs(g, c))
}

// CoarsenToRanked collapses edges by descending score (index ascending on
// ties, so equal scores coarsen deterministically) until at most target
// super-nodes remain; edges whose endpoints already share a super-node are
// skipped. It is the ranking half of CoarsenTo with the model factored
// out, which lets the multilevel driver reuse one forward pass's scores.
func CoarsenToRanked(g *stream.Graph, target int, score []float64) Decision {
	type pe struct {
		ei int
		p  float64
	}
	order := make([]pe, len(score))
	for i, p := range score {
		order[i] = pe{i, p}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].p != order[b].p {
			return order[a].p > order[b].p
		}
		return order[a].ei < order[b].ei
	})
	d := make(Decision, len(score))
	// Collapse greedily while tracking component count via union-find.
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := g.NumNodes()
	for _, o := range order {
		if comps <= target {
			break
		}
		e := g.Edges[o.ei]
		ru, rv := find(e.Src), find(e.Dst)
		if ru != rv {
			parent[ru] = rv
			d[o.ei] = true
			comps--
		}
	}
	return d
}

// CoarsenOnly implements the "Coarsen-only" ablation (Table II): collapse
// edges by descending merge probability until the number of super-nodes
// equals the device count, then give each super-node its own device. No
// partitioning model is involved.
func (mo *Model) CoarsenOnly(g *stream.Graph, c sim.Cluster) Allocation {
	d := mo.CoarsenTo(g, c, c.Devices)
	cm := stream.CollapseEdges(g, d)
	cg := stream.CoarseGraph(g, cm)
	cp := stream.NewPlacement(cm.NumSuper, c.Devices)
	for s := 0; s < cm.NumSuper; s++ {
		cp.Assign[s] = s % c.Devices
	}
	return Allocation{
		Placement:   stream.ExpandPlacement(cm, cp),
		Coarse:      cm,
		CoarseGraph: cg,
	}
}
