// infer.go is the model's tape-free forward pass for serving: the same
// merge probabilities EdgeProbs records on the autodiff tape, computed
// directly over the fused tensor kernels with scratch from a pooled
// tensor.Scope. Every kernel call mirrors its tape twin — including the
// materialized transposed projection copies that the tape's MatMul∘
// Transpose pairs produce — so for identical parameter values the output
// is bit-identical to the training path. That is what makes "served
// placement == offline CoarsenAllocate placement" a testable claim.
package core

import (
	"sync"

	"repro/internal/gnn"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// scopePool recycles inference scopes (and their borrow lists) across
// requests; each goroutine drives its own scope.
var scopePool = sync.Pool{
	New: func() any { return tensor.NewScope() },
}

// InferProbsInto computes merge probabilities for pre-built features
// without recording an autodiff tape, reading parameters through r (a
// nn.Snapshot for serving, nn.LiveValues{} for the live model). The
// result is copied into out, which must have length f.Edge.Rows.
func (mo *Model) InferProbsInto(r nn.ValueReader, f *gnn.Features, out []float64) []float64 {
	sc := scopePool.Get().(*tensor.Scope)
	defer func() {
		sc.Release()
		scopePool.Put(sc)
	}()

	h := mo.Enc.EncodeInfer(sc, r, f) // N×2M

	transposed := func(p *nn.Param) *tensor.Matrix {
		v := r.Value(p)
		return tensor.TransposeInto(v, sc.Get(v.Cols, v.Rows))
	}
	e := f.Edge.Rows
	gHead := tensor.GatherRowsInto(h, f.Src, sc.Get(e, h.Cols))
	gTail := tensor.GatherRowsInto(h, f.Dst, sc.Get(e, h.Cols))
	wHeadT := transposed(mo.wHead)
	wTailT := transposed(mo.wTail)
	hHead := tensor.MatMulInto(gHead, wHeadT, sc.Get(e, wHeadT.Cols)) // E×M
	hTail := tensor.MatMulInto(gTail, wTailT, sc.Get(e, wTailT.Cols)) // E×M

	var eProj *tensor.Matrix
	if mo.Cfg.UseEdgeCollapse {
		wEdgeT := transposed(mo.wEdge)
		eProj = tensor.MatMulInto(f.Edge, wEdgeT, sc.Get(e, wEdgeT.Cols)) // E×EdgeDim
	} else {
		eProj = sc.GetZeroed(e, mo.Cfg.EdgeDim)
	}

	cat := tensor.ConcatColsInto(sc.Get(e, hHead.Cols+hTail.Cols+eProj.Cols), hHead, hTail, eProj)
	w1mT := transposed(mo.w1m)
	hEdge := tensor.MatMulInto(cat, w1mT, sc.Get(e, w1mT.Cols))
	p := mo.head.Infer(sc, r, hEdge) // E×1, sigmoid
	copy(out, p.Data)
	return out
}

// InferProbs is the feature-building convenience over InferProbsInto.
func (mo *Model) InferProbs(g *stream.Graph, c sim.Cluster, r nn.ValueReader) []float64 {
	f := gnn.BuildFeatures(g, c)
	return mo.InferProbsInto(r, f, make([]float64, g.NumEdges()))
}
