package core

import (
	"fmt"
	"testing"
)

func TestRewardCacheHitReturnsIdenticalValue(t *testing.T) {
	c := NewRewardCache(8)
	key := DecisionKey(3, Decision{true, false, true})
	if _, ok := c.Get(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(key, 0.123456789)
	got, ok := c.Get(key)
	if !ok || got != 0.123456789 {
		t.Fatalf("Get = %g, %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestRewardCacheBoundedEviction(t *testing.T) {
	c := NewRewardCache(4)
	for i := 0; i < 10; i++ {
		c.Put(DecisionKey(i, Decision{true}), float64(i))
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// The four most recent survive; earlier entries were evicted LRU.
	for i := 0; i < 6; i++ {
		if _, ok := c.Get(DecisionKey(i, Decision{true})); ok {
			t.Fatalf("entry %d should have been evicted", i)
		}
	}
	for i := 6; i < 10; i++ {
		if v, ok := c.Get(DecisionKey(i, Decision{true})); !ok || v != float64(i) {
			t.Fatalf("entry %d = %g, %v", i, v, ok)
		}
	}
}

func TestRewardCacheLRUOrder(t *testing.T) {
	c := NewRewardCache(2)
	ka := DecisionKey(0, Decision{true})
	kb := DecisionKey(1, Decision{true})
	kc := DecisionKey(2, Decision{true})
	c.Put(ka, 1)
	c.Put(kb, 2)
	c.Get(ka)    // a becomes MRU
	c.Put(kc, 3) // evicts b, the LRU
	if _, ok := c.Get(kb); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get(ka); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

// TestDecisionKeyExact verifies the key is collision-free: distinct
// (graph, decision) pairs — including decisions that differ only in
// length or only in one bit — map to distinct keys.
func TestDecisionKeyExact(t *testing.T) {
	seen := map[string]string{}
	add := func(desc, key string) {
		if prev, ok := seen[key]; ok {
			t.Fatalf("key collision: %s vs %s", prev, desc)
		}
		seen[key] = desc
	}
	for graph := 0; graph < 3; graph++ {
		for length := 0; length <= 9; length++ {
			for mask := 0; mask < 1<<length; mask++ {
				d := make(Decision, length)
				for i := range d {
					d[i] = mask&(1<<i) != 0
				}
				add(fmt.Sprintf("g%d len%d mask%d", graph, length, mask), DecisionKey(graph, d))
			}
		}
	}
}

func TestRewardCacheClearKeepsCounters(t *testing.T) {
	c := NewRewardCache(8)
	k := DecisionKey(0, Decision{true})
	c.Put(k, 1)
	c.Get(k)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry survived Clear")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters reset by Clear: %d hits, %d misses", hits, misses)
	}
	// The cache keeps working after Clear.
	c.Put(k, 2)
	if v, ok := c.Get(k); !ok || v != 2 {
		t.Fatalf("post-Clear Get = %g, %v", v, ok)
	}
}

func TestRewardCacheMinimumCapacity(t *testing.T) {
	c := NewRewardCache(0)
	c.Put(DecisionKey(0, Decision{true}), 1)
	c.Put(DecisionKey(1, Decision{true}), 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
