package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/autodiff"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/nn"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

func testSetup(t *testing.T) (*stream.Graph, sim.Cluster, *Model) {
	t.Helper()
	c := sim.DefaultCluster(5, 1000)
	cfg := gen.DefaultConfig(40, 60, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(3)))
	m := New(Config{Hidden: 8, EdgeDim: 4, MergeDim: 8, Hops: 2, Seed: 1,
		UseEdgeEncoding: true, UseEdgeCollapse: true})
	return g, c, m
}

func TestProbsInUnitInterval(t *testing.T) {
	g, c, m := testSetup(t)
	probs := m.Probs(g, c)
	if len(probs) != g.NumEdges() {
		t.Fatalf("probs length %d, edges %d", len(probs), g.NumEdges())
	}
	for i, p := range probs {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			t.Fatalf("prob[%d] = %g", i, p)
		}
	}
}

func TestInitialBiasTowardSparseCollapse(t *testing.T) {
	g, c, m := testSetup(t)
	probs := m.Probs(g, c)
	var mean float64
	for _, p := range probs {
		mean += p
	}
	mean /= float64(len(probs))
	if mean > 0.4 {
		t.Fatalf("untrained mean collapse prob %g; want sparse (<0.4)", mean)
	}
}

func TestGreedyMatchesProbsThreshold(t *testing.T) {
	g, c, m := testSetup(t)
	probs := m.Probs(g, c)
	d := m.Greedy(g, c)
	for i := range d {
		if d[i] != (probs[i] >= 0.5) {
			t.Fatal("greedy decision mismatch")
		}
	}
}

func TestSampleDeterministicGivenSeed(t *testing.T) {
	g, c, m := testSetup(t)
	d1 := m.Sample(g, c, rand.New(rand.NewSource(5)))
	d2 := m.Sample(g, c, rand.New(rand.NewSource(5)))
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("sampling not reproducible")
		}
	}
}

func TestSampleNCount(t *testing.T) {
	g, c, m := testSetup(t)
	ds := m.SampleN(g, c, rand.New(rand.NewSource(6)), 4)
	if len(ds) != 4 {
		t.Fatalf("got %d samples", len(ds))
	}
	for _, d := range ds {
		if len(d) != g.NumEdges() {
			t.Fatal("decision length mismatch")
		}
	}
}

func TestLogProbLossGradientDirection(t *testing.T) {
	// With positive advantage, a gradient step must increase the
	// probability of the sampled decisions.
	g, c, m := testSetup(t)
	d := m.Sample(g, c, rand.New(rand.NewSource(7)))
	before := m.Probs(g, c)

	f := gnn.BuildFeatures(g, c)
	opt := nn.NewAdam(0.01)
	for i := 0; i < 20; i++ {
		tape := autodiff.NewTape()
		b := nn.NewBinder(tape)
		probs := m.EdgeProbs(b, f)
		loss := LogProbLoss(b, probs, d, 1.0/float64(len(d)))
		m.PS.ZeroGrads()
		tape.Backward(loss, nil)
		b.Collect()
		opt.Step(m.PS)
	}
	after := m.Probs(g, c)
	var likBefore, likAfter float64
	for i := range d {
		if d[i] {
			likBefore += math.Log(before[i])
			likAfter += math.Log(after[i])
		} else {
			likBefore += math.Log(1 - before[i])
			likAfter += math.Log(1 - after[i])
		}
	}
	if likAfter <= likBefore {
		t.Fatalf("likelihood did not increase: %g -> %g", likBefore, likAfter)
	}
}

func TestAblationTogglesChangeOutput(t *testing.T) {
	g, c, _ := testSetup(t)
	base := New(Config{Hidden: 8, EdgeDim: 4, MergeDim: 8, Seed: 1, UseEdgeEncoding: true, UseEdgeCollapse: true})
	noEnc := New(Config{Hidden: 8, EdgeDim: 4, MergeDim: 8, Seed: 1, UseEdgeEncoding: false, UseEdgeCollapse: true})
	noCol := New(Config{Hidden: 8, EdgeDim: 4, MergeDim: 8, Seed: 1, UseEdgeEncoding: true, UseEdgeCollapse: false})
	pb, pe, pc := base.Probs(g, c), noEnc.Probs(g, c), noCol.Probs(g, c)
	if equalFloats(pb, pe) {
		t.Fatal("edge-encoding toggle had no effect")
	}
	if equalFloats(pb, pc) {
		t.Fatal("edge-collapse toggle had no effect")
	}
}

func equalFloats(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestAllocateDecisionRoundTrip(t *testing.T) {
	g, c, m := testSetup(t)
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	d := m.Sample(g, c, rand.New(rand.NewSource(8)))
	a := pipe.AllocateDecision(g, c, d)
	if err := a.Placement.Validate(g); err != nil {
		t.Fatal(err)
	}
	if a.CoarseGraph.NumNodes() != a.Coarse.NumSuper {
		t.Fatal("coarse graph size mismatch")
	}
	// All members of a super-node share a device.
	for v, s := range a.Coarse.Super {
		for w, s2 := range a.Coarse.Super {
			if s == s2 && a.Placement.Assign[v] != a.Placement.Assign[w] {
				t.Fatal("super-node split across devices")
			}
		}
	}
}

func TestAllocateNeverWorseThanNoCoarsen(t *testing.T) {
	// The ranked sweep includes the no-coarsening candidate, so its result
	// can never be worse than handing the raw graph to the placer.
	g, c, m := testSetup(t)
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	a := pipe.Allocate(g, c)
	raw := pipe.AllocateDecision(g, c, make(Decision, g.NumEdges()))
	if sim.Reward(g, a.Placement, c) < sim.Reward(g, raw.Placement, c)-1e-12 {
		t.Fatal("sweep returned worse than the no-coarsen candidate")
	}
}

func TestAllocateGreedyValid(t *testing.T) {
	g, c, m := testSetup(t)
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	a := pipe.AllocateGreedy(g, c)
	if err := a.Placement.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateRankedRespectsRanking(t *testing.T) {
	// Rank exactly one edge first with a huge score; any coarsening the
	// sweep evaluates beyond the no-op must include that edge.
	g, c, m := testSetup(t)
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	score := make([]float64, g.NumEdges())
	score[3] = 100
	a := pipe.AllocateRanked(g, c, score)
	if a.Coarse.NumSuper < g.NumNodes() { // some coarsening won
		e := g.Edges[3]
		if a.Coarse.Super[e.Src] != a.Coarse.Super[e.Dst] {
			t.Fatal("top-ranked edge not collapsed in a coarsened winner")
		}
	}
}

func TestCoarsenOnlyTargetsDeviceCount(t *testing.T) {
	g, c, m := testSetup(t)
	a := m.CoarsenOnly(g, c)
	if a.Coarse.NumSuper > c.Devices {
		// Only possible when the graph is disconnected beyond repair; our
		// generated graphs are weakly connected, so this must reach the
		// device count.
		t.Fatalf("coarsen-only left %d super-nodes for %d devices", a.Coarse.NumSuper, c.Devices)
	}
	if err := a.Placement.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Each super-node maps to a distinct device (round-robin over ≤ k).
	if a.Placement.UsedDevices() != a.Coarse.NumSuper {
		t.Fatalf("used %d devices for %d super-nodes", a.Placement.UsedDevices(), a.Coarse.NumSuper)
	}
}

// Property: EdgeProbs output is finite and in (0,1) for random graphs.
func TestQuickEdgeProbsWellFormed(t *testing.T) {
	c := sim.DefaultCluster(5, 1000)
	cfg := gen.DefaultConfig(10, 40, 10_000, c)
	m := New(Config{Hidden: 6, EdgeDim: 3, MergeDim: 6, Seed: 2, UseEdgeEncoding: true, UseEdgeCollapse: true})
	f := func(seed int64) bool {
		g := gen.Generate(cfg, rand.New(rand.NewSource(seed)))
		for _, p := range m.Probs(g, c) {
			if p <= 0 || p >= 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaultsFilledIn(t *testing.T) {
	m := New(Config{Seed: 1, UseEdgeEncoding: true, UseEdgeCollapse: true})
	if m.Cfg.Hidden == 0 || m.Cfg.MergeDim == 0 || m.Cfg.Hops == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestCoarsenToTargets(t *testing.T) {
	g, c, m := testSetup(t)
	for _, target := range []int{1, 3, 10, g.NumNodes()} {
		d := m.CoarsenTo(g, c, target)
		cm := stream.CollapseEdges(g, d)
		if cm.NumSuper > target && target >= 1 {
			// Only reachable if the graph is disconnected; generated
			// graphs are weakly connected.
			t.Fatalf("target %d: got %d super-nodes", target, cm.NumSuper)
		}
	}
	// Target = node count means no collapsing at all.
	d := m.CoarsenTo(g, c, g.NumNodes())
	for _, x := range d {
		if x {
			t.Fatal("collapsed edges despite identity target")
		}
	}
}
