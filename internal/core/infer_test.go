package core

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/placer"
	"repro/internal/sim"
)

// TestInferProbsBitIdentical pins the serving contract: the tape-free
// forward pass must produce bit-for-bit the same merge probabilities as
// the training-path tape, for the live values and for a snapshot, across
// a spread of graph sizes and both ablation configs.
func TestInferProbsBitIdentical(t *testing.T) {
	for _, s := range []gen.Setting{gen.Small(), gen.Medium5K()} {
		graphs := s.Generate().Test
		if len(graphs) > 4 {
			graphs = graphs[:4]
		}
		for _, cfg := range []Config{
			DefaultConfig(),
			{UseEdgeEncoding: false, UseEdgeCollapse: false, Seed: 7},
		} {
			mo := New(cfg)
			snap := nn.NewSnapshot(mo.PS)
			for gi, g := range graphs {
				want := mo.Probs(g, s.Cluster)
				gotLive := mo.InferProbs(g, s.Cluster, nn.LiveValues{})
				gotSnap := mo.InferProbs(g, s.Cluster, snap)
				if len(want) != len(gotLive) || len(want) != len(gotSnap) {
					t.Fatalf("%s graph %d: length mismatch %d/%d/%d",
						s.Name, gi, len(want), len(gotLive), len(gotSnap))
				}
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(gotLive[i]) {
						t.Fatalf("%s graph %d edge %d (live): tape %v infer %v",
							s.Name, gi, i, want[i], gotLive[i])
					}
					if math.Float64bits(want[i]) != math.Float64bits(gotSnap[i]) {
						t.Fatalf("%s graph %d edge %d (snapshot): tape %v infer %v",
							s.Name, gi, i, want[i], gotSnap[i])
					}
				}
			}
		}
	}
}

// TestInferProbsAcrossGOMAXPROCS pins that the tape-free path is
// bit-identical whether the blocked kernels run serial or parallel.
func TestInferProbsAcrossGOMAXPROCS(t *testing.T) {
	s := gen.Medium5K()
	g := s.Generate().Test[0]
	mo := New(DefaultConfig())

	prev := runtime.GOMAXPROCS(1)
	one := mo.InferProbs(g, s.Cluster, nn.LiveValues{})
	runtime.GOMAXPROCS(prev)
	many := mo.InferProbs(g, s.Cluster, nn.LiveValues{})
	for i := range one {
		if math.Float64bits(one[i]) != math.Float64bits(many[i]) {
			t.Fatalf("edge %d: GOMAXPROCS=1 %v, GOMAXPROCS=%d %v", i, one[i], prev, many[i])
		}
	}
}

// TestAllocateRankedOnInferProbs pins the end-to-end serving claim at the
// core layer: ranking the zero-tape probabilities yields exactly the
// placement the offline Pipeline.Allocate computes.
func TestAllocateRankedOnInferProbs(t *testing.T) {
	s := gen.Small()
	pl := &Pipeline{Model: New(DefaultConfig()), Placer: placer.Metis{Seed: 1}}
	snap := nn.NewSnapshot(pl.Model.PS)
	for gi, g := range s.Generate().Test[:4] {
		offline := pl.Allocate(g, s.Cluster)
		served := pl.AllocateRanked(g, s.Cluster, pl.Model.InferProbs(g, s.Cluster, snap))
		if len(offline.Placement.Assign) != len(served.Placement.Assign) {
			t.Fatalf("graph %d: assign length mismatch", gi)
		}
		for i := range offline.Placement.Assign {
			if offline.Placement.Assign[i] != served.Placement.Assign[i] {
				t.Fatalf("graph %d node %d: offline device %d, served device %d",
					gi, i, offline.Placement.Assign[i], served.Placement.Assign[i])
			}
		}
		ro := sim.Reward(g, offline.Placement, s.Cluster)
		rs := sim.Reward(g, served.Placement, s.Cluster)
		if math.Float64bits(ro) != math.Float64bits(rs) {
			t.Fatalf("graph %d: reward mismatch %v vs %v", gi, ro, rs)
		}
	}
}
