// rewardcache.go implements a bounded LRU memoization cache for simulated
// rewards. The REINFORCE loop repeatedly scores (graph, decision) pairs
// through the full coarsen → partition → simulate pipeline; because every
// stage is deterministic, identical pairs always produce the identical
// reward, so re-simulating a decision the policy has already visited
// (duplicate on-policy samples once probabilities saturate, Metis-guided
// seeds resampled by a confident policy) is pure waste. The cache key is
// exact — the graph id plus the packed decision bitset, not a hash — so a
// hit can never alias a different decision and the training trajectory
// stays bit-identical with memoization enabled.
package core

import (
	"container/list"
	"encoding/binary"
	"sync"

	"repro/internal/obs"
)

// RewardCache memoizes decision rewards with LRU eviction. It is safe for
// concurrent use (sample scoring fans out across workers).
type RewardCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    uint64
	misses  uint64
	// Optional continuous counters mirroring hits/misses (nil-safe).
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

type rewardEntry struct {
	key    string
	reward float64
}

// NewRewardCache returns a cache bounded to capacity entries (minimum 1).
func NewRewardCache(capacity int) *RewardCache {
	if capacity < 1 {
		capacity = 1
	}
	return &RewardCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// DecisionKey packs (graph id, decision bitset) into an exact cache key:
// the graph id and edge count as fixed-width prefixes, then one bit per
// edge. Two distinct decisions can never collide.
func DecisionKey(graph int, d Decision) string {
	buf := make([]byte, 16+(len(d)+7)/8)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(graph))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(d)))
	for i, bit := range d {
		if bit {
			buf[16+i/8] |= 1 << (i % 8)
		}
	}
	return string(buf)
}

// Instrument mirrors every hit and miss into the given obs counters so a
// live /metrics scrape sees cache effectiveness without polling Stats().
// Either counter may be nil (obs.Counter methods are nil-safe).
func (c *RewardCache) Instrument(hits, misses *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsHits, c.obsMisses = hits, misses
}

// Get returns the memoized reward for key and whether it was present,
// marking the entry most-recently-used on a hit.
func (c *RewardCache) Get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.obsMisses.Inc()
		return 0, false
	}
	c.hits++
	c.obsHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*rewardEntry).reward, true
}

// Put memoizes the reward for key, evicting the least-recently-used entry
// when the cache is full.
func (c *RewardCache) Put(key string, reward float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*rewardEntry).reward = reward
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*rewardEntry).key)
	}
	c.entries[key] = c.order.PushFront(&rewardEntry{key: key, reward: reward})
}

// Len returns the number of memoized entries.
func (c *RewardCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *RewardCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear drops every entry (hit/miss counters are retained). Use when the
// graph-id namespace changes meaning, e.g. between curriculum levels.
func (c *RewardCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	c.order.Init()
}
