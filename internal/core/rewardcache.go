// rewardcache.go memoizes simulated rewards behind the generic bounded LRU
// in internal/cache. The REINFORCE loop repeatedly scores (graph, decision)
// pairs through the full coarsen → partition → simulate pipeline; because
// every stage is deterministic, identical pairs always produce the identical
// reward, so re-simulating a decision the policy has already visited
// (duplicate on-policy samples once probabilities saturate, Metis-guided
// seeds resampled by a confident policy) is pure waste. The cache key is
// exact — the graph id plus the packed decision bitset, not a hash — so a
// hit can never alias a different decision and the training trajectory
// stays bit-identical with memoization enabled.
package core

import (
	"encoding/binary"

	"repro/internal/cache"
	"repro/internal/obs"
)

// RewardCache memoizes decision rewards with LRU eviction. It is safe for
// concurrent use (sample scoring fans out across workers).
type RewardCache struct {
	lru *cache.LRU[string, float64]
}

// NewRewardCache returns a cache bounded to capacity entries (minimum 1).
func NewRewardCache(capacity int) *RewardCache {
	return &RewardCache{lru: cache.New[string, float64](capacity)}
}

// DecisionKey packs (graph id, decision bitset) into an exact cache key:
// the graph id and edge count as fixed-width prefixes, then one bit per
// edge. Two distinct decisions can never collide.
func DecisionKey(graph int, d Decision) string {
	buf := make([]byte, 16+(len(d)+7)/8)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(graph))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(d)))
	for i, bit := range d {
		if bit {
			buf[16+i/8] |= 1 << (i % 8)
		}
	}
	return string(buf)
}

// Instrument mirrors every hit and miss into the given obs counters so a
// live /metrics scrape sees cache effectiveness without polling Stats().
// Either counter may be nil (obs.Counter methods are nil-safe).
func (c *RewardCache) Instrument(hits, misses *obs.Counter) {
	c.lru.Instrument(hits, misses)
}

// Get returns the memoized reward for key and whether it was present,
// marking the entry most-recently-used on a hit.
func (c *RewardCache) Get(key string) (float64, bool) { return c.lru.Get(key) }

// Put memoizes the reward for key, evicting the least-recently-used entry
// when the cache is full.
func (c *RewardCache) Put(key string, reward float64) { c.lru.Put(key, reward) }

// Len returns the number of memoized entries.
func (c *RewardCache) Len() int { return c.lru.Len() }

// Stats returns the cumulative hit and miss counts.
func (c *RewardCache) Stats() (hits, misses uint64) { return c.lru.Stats() }

// Clear drops every entry (hit/miss counters are retained). Use when the
// graph-id namespace changes meaning, e.g. between curriculum levels.
func (c *RewardCache) Clear() { c.lru.Clear() }
