package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

func TestCoarsenToRankedMatchesCoarsenTo(t *testing.T) {
	g, c, m := testSetup(t)
	want := m.CoarsenTo(g, c, 10)
	got := CoarsenToRanked(g, 10, m.Probs(g, c))
	if len(got) != len(want) {
		t.Fatal("decision length mismatch")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision[%d]: ranked %v vs model %v", i, got[i], want[i])
		}
	}
}

// refineChain builds a 6-node chain with a deliberately unbalanced
// placement: all the work on device 0, device 1 idle.
func refineChain() (*stream.Graph, sim.Cluster, *stream.Placement) {
	c := sim.DefaultCluster(2, 1e6)
	g := stream.NewGraph(1000)
	for i := 0; i < 6; i++ {
		g.AddNode(stream.Node{IPT: 1000, Payload: 100, Selectivity: 1})
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 100)
	}
	p := stream.NewPlacement(6, 2)
	p.Assign[5] = 1 // one node across: five cut-free, one cut edge
	return g, c, p
}

func TestRefineBoundaryNeverWorsens(t *testing.T) {
	g, c, p := refineChain()
	before, err := sim.Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	score := make([]float64, g.NumEdges())
	for i := range score {
		score[i] = float64(i) / 10
	}
	refineBoundary(g, c, p, score, 4)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	after, err := sim.Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	if after.Relative < before.Relative {
		t.Fatalf("refinement worsened throughput: %v -> %v", before.Relative, after.Relative)
	}
}

func TestRefineBoundaryDeterministic(t *testing.T) {
	run := func() []int {
		g, c, p := refineChain()
		score := []float64{0.9, 0.1, 0.5, 0.5, 0.7}
		refineBoundary(g, c, p, score, 3)
		return p.Assign
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("refinement nondeterministic at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAllocateMultilevelLeafMatchesAllocate(t *testing.T) {
	g, c, m := testSetup(t) // well under the default leaf size
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	flat := pipe.Allocate(g, c)
	ml := pipe.AllocateMultilevel(g, c, DefaultMultilevelConfig())
	for v := range flat.Placement.Assign {
		if ml.Placement.Assign[v] != flat.Placement.Assign[v] {
			t.Fatalf("leaf-size multilevel diverged from flat pipeline at node %d", v)
		}
	}
}

func TestAllocateMultilevelRecursesAndStaysValid(t *testing.T) {
	c := sim.DefaultCluster(8, 10_000)
	cfg := gen.DefaultConfig(300, 340, 10_000, c)
	g := gen.Generate(cfg, rand.New(rand.NewSource(11)))
	m := New(Config{Hidden: 8, EdgeDim: 4, MergeDim: 8, Hops: 2, Seed: 1,
		UseEdgeEncoding: true, UseEdgeCollapse: true})
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}

	mcfg := MultilevelConfig{LeafSize: 60, CoarsenFactor: 4, RefinePasses: 2}
	a := pipe.AllocateMultilevel(g, c, mcfg)
	if err := a.Placement.Validate(g); err != nil {
		t.Fatal(err)
	}
	if a.Coarse == nil || a.Coarse.NumSuper >= g.NumNodes() {
		t.Fatalf("multilevel did not coarsen: %+v", a.Coarse)
	}
	r := sim.Reward(g, a.Placement, c)
	if math.IsNaN(r) || r <= 0 {
		t.Fatalf("multilevel reward %v", r)
	}

	b := pipe.AllocateMultilevel(g, c, mcfg)
	for v := range a.Placement.Assign {
		if a.Placement.Assign[v] != b.Placement.Assign[v] {
			t.Fatalf("multilevel nondeterministic at node %d", v)
		}
	}
}

func TestAllocateMultilevelHandlesEdgelessGraph(t *testing.T) {
	c := sim.DefaultCluster(2, 1000)
	g := stream.NewGraph(1000)
	for i := 0; i < 5; i++ {
		g.AddNode(stream.Node{IPT: 10, Payload: 10, Selectivity: 1})
	}
	m := New(Config{Hidden: 4, EdgeDim: 4, MergeDim: 8, Hops: 1, Seed: 1,
		UseEdgeEncoding: true, UseEdgeCollapse: true})
	pipe := &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
	a := pipe.AllocateMultilevel(g, c, MultilevelConfig{LeafSize: 2, CoarsenFactor: 2, RefinePasses: 1})
	if err := a.Placement.Validate(g); err != nil {
		t.Fatal(err)
	}
}
