// multilevel.go is the recursive multilevel allocation driver: instead of
// coarsening a huge graph straight to device scale with one forward pass
// (one ranking over a million edges deciding everything), the graph is
// coarsened a bounded factor per level — each level scored by a fresh
// forward pass on that level's graph — until the coarsest graph is small
// enough for the ranking-sweep pipeline, and the placement is projected
// back up level by level with a model-score-guided boundary refinement at
// every level. This is the classic multilevel scheme Metis uses, with the
// learned merge probability as both the matching heuristic and the
// refinement ordering (ROADMAP: million-node graphs, sparse end-to-end).
package core

import (
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stream"
)

// MultilevelConfig bounds the recursion.
type MultilevelConfig struct {
	// LeafSize is the largest graph handed directly to the ranking-sweep
	// pipeline; bigger graphs recurse through a coarsening level first.
	LeafSize int
	// CoarsenFactor is the per-level node-count reduction (Metis uses a
	// small constant per level for the same reason: each level's scores
	// only ever commit a bounded fraction of the final coarsening).
	CoarsenFactor int
	// RefinePasses caps boundary-refinement sweeps per level (0 disables
	// refinement).
	RefinePasses int
}

// DefaultMultilevelConfig returns the tuning used by coarsenrl -multilevel.
func DefaultMultilevelConfig() MultilevelConfig {
	return MultilevelConfig{LeafSize: 600, CoarsenFactor: 8, RefinePasses: 2}
}

func (c MultilevelConfig) withDefaults() MultilevelConfig {
	d := DefaultMultilevelConfig()
	if c.LeafSize <= 0 {
		c.LeafSize = d.LeafSize
	}
	if c.CoarsenFactor < 2 {
		c.CoarsenFactor = d.CoarsenFactor
	}
	if c.RefinePasses < 0 {
		c.RefinePasses = 0
	}
	return c
}

// AllocateMultilevel allocates g through the recursive multilevel scheme.
// Deterministic for a fixed model and graph: scores break ties by edge id,
// refinement accepts strict lexicographic improvements only.
func (pl *Pipeline) AllocateMultilevel(g *stream.Graph, c sim.Cluster, cfg MultilevelConfig) Allocation {
	cfg = cfg.withDefaults()
	if g.NumNodes() <= cfg.LeafSize {
		return pl.Allocate(g, c)
	}

	probs := pl.Model.Probs(g, c)
	target := g.NumNodes() / cfg.CoarsenFactor
	if target < cfg.LeafSize {
		target = cfg.LeafSize
	}
	d := CoarsenToRanked(g, target, probs)
	cm := stream.CollapseEdges(g, d)
	if cm.NumSuper >= g.NumNodes() {
		// No edge could collapse (e.g. an edgeless graph): recursing would
		// not terminate, so fall through to the flat pipeline.
		return pl.Allocate(g, c)
	}
	cg := stream.CoarseGraph(g, cm)

	coarse := pl.AllocateMultilevel(cg, c, cfg)
	p := stream.ExpandPlacement(cm, coarse.Placement)
	refineBoundary(g, c, p, probs, cfg.RefinePasses)
	return Allocation{Placement: p, Coarse: cm, CoarseGraph: cg}
}

// refineBoundary sweeps the cut edges of p — highest merge score first,
// edge id breaking ties — and greedily moves one endpoint onto the other's
// device whenever that strictly improves (worst device utilization, total
// cross traffic) lexicographically. Device loads are maintained
// incrementally (O(deg) per attempted move), so a pass is O(cut·deg +
// cut·devices), never a full re-simulation. The score ordering makes the
// model's opinion the refinement priority: edges it most wanted merged are
// pulled onto one device first.
func refineBoundary(g *stream.Graph, c sim.Cluster, p *stream.Placement, score []float64, passes int) int {
	if passes <= 0 || g.NumEdges() == 0 {
		return 0
	}
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()
	adj := g.Adjacency()

	cpu := make([]float64, p.Devices)
	egress := make([]float64, p.Devices)
	ingress := make([]float64, p.Devices)
	for v, dev := range p.Assign {
		cpu[dev] += load[v]
	}
	cross := 0.0
	for ei, e := range g.Edges {
		ds, dd := p.Assign[e.Src], p.Assign[e.Dst]
		if ds != dd {
			egress[ds] += traffic[ei]
			ingress[dd] += traffic[ei]
			cross += traffic[ei]
		}
	}
	worst := func() float64 {
		w := 0.0
		for dev := 0; dev < p.Devices; dev++ {
			u := cpu[dev] / c.CapacityOf(dev)
			if n := math.Max(egress[dev], ingress[dev]) / c.Bandwidth; n > u {
				u = n
			}
			if u > w {
				w = u
			}
		}
		return w
	}
	// move relocates v to device `to`, updating the incremental tallies.
	move := func(v, to int) {
		from := p.Assign[v]
		cpu[from] -= load[v]
		cpu[to] += load[v]
		for _, ei := range adj.Out(v) {
			dw := p.Assign[g.Edges[ei].Dst]
			if dw != from {
				egress[from] -= traffic[ei]
				ingress[dw] -= traffic[ei]
				cross -= traffic[ei]
			}
			if dw != to {
				egress[to] += traffic[ei]
				ingress[dw] += traffic[ei]
				cross += traffic[ei]
			}
		}
		for _, ei := range adj.In(v) {
			du := p.Assign[g.Edges[ei].Src]
			if du != from {
				egress[du] -= traffic[ei]
				ingress[from] -= traffic[ei]
				cross -= traffic[ei]
			}
			if du != to {
				egress[du] += traffic[ei]
				ingress[to] += traffic[ei]
				cross += traffic[ei]
			}
		}
		p.Assign[v] = to
	}

	// Cut edges in model order, computed once: an edge that stops being cut
	// mid-pass is skipped by the dev check when its turn comes.
	order := make([]int, 0, len(score))
	for ei, e := range g.Edges {
		if p.Assign[e.Src] != p.Assign[e.Dst] {
			order = append(order, ei)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})

	moved := 0
	for pass := 0; pass < passes; pass++ {
		improved := false
		for _, ei := range order {
			e := g.Edges[ei]
			if p.Assign[e.Src] == p.Assign[e.Dst] {
				continue
			}
			curW, curX := worst(), cross
			// Try pulling either endpoint across; keep the first strict
			// lexicographic win, revert otherwise.
			for _, try := range [2][2]int{{e.Src, p.Assign[e.Dst]}, {e.Dst, p.Assign[e.Src]}} {
				v, to := try[0], try[1]
				from := p.Assign[v]
				move(v, to)
				w := worst()
				if w < curW || (w == curW && cross < curX) {
					moved++
					improved = true
					break
				}
				move(v, from)
			}
		}
		if !improved {
			break
		}
	}
	return moved
}
