package gen

import (
	"math/rand"
	"testing"

	"repro/internal/metis"
	"repro/internal/sim"
)

func TestTemplatesValidateAtAllWidths(t *testing.T) {
	for _, tpl := range AllTemplates() {
		for _, w := range []int{1, 3, 8, 20} {
			g, err := FromTemplate(tpl, w, 5_000, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatalf("%s width %d: %v", tpl, w, err)
			}
			if g.NumNodes() < 3 {
				t.Fatalf("%s width %d: only %d nodes", tpl, w, g.NumNodes())
			}
		}
	}
}

func TestTemplateWidthScalesSize(t *testing.T) {
	for _, tpl := range AllTemplates() {
		small, _ := FromTemplate(tpl, 2, 1_000, rand.New(rand.NewSource(2)))
		big, _ := FromTemplate(tpl, 10, 1_000, rand.New(rand.NewSource(2)))
		if big.NumNodes() <= small.NumNodes() {
			t.Fatalf("%s: width 10 (%d nodes) not larger than width 2 (%d)",
				tpl, big.NumNodes(), small.NumNodes())
		}
	}
}

func TestTemplateRejectsBadInput(t *testing.T) {
	if _, err := FromTemplate(WordCount, 0, 1000, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := FromTemplate(Template("nope"), 2, 1000, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestTemplateRatesStayBounded(t *testing.T) {
	// Selectivities must keep steady rates at the source-rate scale even
	// for wide instances (no exponential fan-in blowup).
	for _, tpl := range AllTemplates() {
		g, err := FromTemplate(tpl, 12, 10_000, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		for v, r := range g.SteadyRates() {
			if r > 20*g.SourceRate {
				t.Fatalf("%s: node %d rate %g explodes", tpl, v, r)
			}
		}
	}
}

func TestTemplatesPartitionAndSimulate(t *testing.T) {
	c := sim.DefaultCluster(4, 200)
	for _, tpl := range AllTemplates() {
		g, err := FromTemplate(tpl, 4, 5_000, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		p := metis.Partition(g, metis.Options{Parts: c.Devices, Seed: 1})
		p.Devices = c.Devices
		r := sim.Reward(g, p, c)
		if r <= 0 || r > 1 {
			t.Fatalf("%s: reward %g", tpl, r)
		}
	}
}
