// Package gen generates synthetic stream-processing graphs following the
// paper's recursive construction (Fig. 4): starting from a seed chain, a
// randomly chosen node is repeatedly replaced by one of three basic
// subgraph topologies — linear (p=0.45, max length 5), branch (p=0.45,
// max width 5), or fully connected (p=0.1, max 3 layers × 5 wide) — or a
// node is replicated in place, until the node count reaches the requested
// range. Features (per-node instructions-per-tuple, per-edge payloads) are
// then assigned randomly and normalized so each dataset's total computing
// load follows the same distribution relative to cluster capacity (§V).
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Config controls graph generation.
type Config struct {
	MinNodes, MaxNodes int
	SourceRate         float64

	// Topology substitution probabilities (normalized internally).
	PLinear, PBranch, PFull float64
	// PReplicate is the per-step probability of replicating a node
	// instead of substituting a subgraph.
	PReplicate   float64
	ReplicateMax int

	MaxLinearLen  int // paper: 5
	MaxBranchWide int // paper: 5
	MaxFullLen    int // paper: 3
	MaxFullWide   int // paper: 5

	// LoadFrac is the sampled range for total CPU demand as a fraction of
	// total cluster instruction capacity. Values above 1 produce graphs
	// that cannot sustain the full source rate even when perfectly
	// balanced — matching the paper's evaluation, where mean throughputs
	// sit well below the source rate.
	LoadFrac [2]float64
	// TrafficFrac is the sampled range for total edge traffic as a
	// fraction of aggregate cluster bandwidth (Devices × link bandwidth)
	// at the full source rate. It controls how much the choice of cut
	// edges matters.
	TrafficFrac [2]float64

	// Cluster calibrates the normalization above.
	Cluster sim.Cluster

	// Layered switches to the O(E) streaming construction (layered.go):
	// nodes emitted in topological order, in-edges drawn from a sliding
	// window of LayerWindow recent predecessors. The recursive substitution
	// construction rewires an edge map per step and does not scale past a
	// few thousand nodes; the huge/extreme presets set Layered.
	Layered     bool
	LayerWindow int
}

// DefaultConfig returns the paper's substitution parameters for the given
// node range and cluster.
func DefaultConfig(minNodes, maxNodes int, sourceRate float64, cluster sim.Cluster) Config {
	return Config{
		MinNodes: minNodes, MaxNodes: maxNodes,
		SourceRate: sourceRate,
		PLinear:    0.45, PBranch: 0.45, PFull: 0.1,
		PReplicate: 0.1, ReplicateMax: 3,
		MaxLinearLen: 5, MaxBranchWide: 5, MaxFullLen: 3, MaxFullWide: 5,
		LoadFrac:    [2]float64{0.9, 2.2},
		TrafficFrac: [2]float64{1.2, 3.2},
		Cluster:     cluster,
	}
}

// topoGraph is the intermediate feature-less topology under construction.
type topoGraph struct {
	n     int
	edges map[[2]int]bool
	out   [][]int
	in    [][]int
	// replicas records (replica, original) node-id pairs so that feature
	// assignment can copy properties, matching §V ("for operators generated
	// by replicating a sub-graph, their properties are replicated").
	replicas [][2]int
}

func newTopoGraph() *topoGraph {
	return &topoGraph{edges: make(map[[2]int]bool)}
}

func (t *topoGraph) addNode() int {
	t.n++
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	return t.n - 1
}

func (t *topoGraph) addEdge(u, v int) {
	if u == v || t.edges[[2]int{u, v}] {
		return
	}
	t.edges[[2]int{u, v}] = true
	t.out[u] = append(t.out[u], v)
	t.in[v] = append(t.in[v], u)
}

func (t *topoGraph) removeEdge(u, v int) {
	if !t.edges[[2]int{u, v}] {
		return
	}
	delete(t.edges, [2]int{u, v})
	t.out[u] = removeInt(t.out[u], v)
	t.in[v] = removeInt(t.in[v], u)
}

func removeInt(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Generate produces one graph. Deterministic given rng state.
func Generate(cfg Config, rng *rand.Rand) *stream.Graph {
	if cfg.Layered {
		return generateLayered(cfg, rng)
	}
	if cfg.MinNodes < 2 || cfg.MaxNodes < cfg.MinNodes {
		panic(fmt.Sprintf("gen: bad node range [%d,%d]", cfg.MinNodes, cfg.MaxNodes))
	}
	target := cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)

	t := newTopoGraph()
	// Seed: source → op → sink chain.
	a, b, c := t.addNode(), t.addNode(), t.addNode()
	t.addEdge(a, b)
	t.addEdge(b, c)

	for t.n < target {
		budget := target - t.n
		if cfg.PReplicate > 0 && rng.Float64() < cfg.PReplicate {
			replicateNode(t, rng, cfg, budget)
			continue
		}
		substituteNode(t, rng, cfg, budget)
	}
	return assignFeatures(t, cfg, rng)
}

// substituteNode replaces a random non-terminal node with a basic
// subgraph, adding at most budget new nodes.
func substituteNode(t *topoGraph, rng *rand.Rand, cfg Config, budget int) {
	// Pick a node that has both predecessors and successors when possible,
	// so the graph stays a single-source/sink-friendly DAG; fall back to
	// any node with at least one connection.
	v := pickNode(t, rng)
	pTotal := cfg.PLinear + cfg.PBranch + cfg.PFull
	r := rng.Float64() * pTotal
	var entry, exit, mid []int
	switch {
	case r < cfg.PLinear:
		entry, exit, mid = buildLinear(t, rng, cfg, budget)
	case r < cfg.PLinear+cfg.PBranch:
		entry, exit, mid = buildBranch(t, rng, cfg, budget)
	default:
		entry, exit, mid = buildFull(t, rng, cfg, budget)
	}
	if len(mid) == 0 { // budget too small to grow; extend v with a successor
		if budget >= 1 {
			w := t.addNode()
			for _, s := range append([]int(nil), t.out[v]...) {
				t.removeEdge(v, s)
				t.addEdge(w, s)
			}
			t.addEdge(v, w)
		}
		return
	}
	// Rewire v's connections to the subgraph and splice v into the entry
	// layer: v remains as the first entry node (so node count grows by
	// len(mid)); extra entry nodes inherit v's predecessors.
	preds := append([]int(nil), t.in[v]...)
	succs := append([]int(nil), t.out[v]...)
	for _, p := range preds {
		t.removeEdge(p, v)
	}
	for _, s := range succs {
		t.removeEdge(v, s)
	}
	// v takes the role of entry[0]: inherit entry[0]'s out-edges.
	e0 := entry[0]
	for _, w := range append([]int(nil), t.out[e0]...) {
		t.removeEdge(e0, w)
		t.addEdge(v, w)
	}
	for _, w := range append([]int(nil), t.in[e0]...) {
		t.removeEdge(w, e0)
		t.addEdge(w, v)
	}
	// Replace e0 in the entry/exit sets with v. e0 becomes an orphan; to
	// avoid renumbering we reuse it as an extra member of the entry layer
	// only if it still has edges (it does not), so we instead swap ids by
	// giving e0 the final node's edges. Simpler: e0 was freshly created
	// with edges only inside the subgraph, all now moved to v, so e0 is
	// isolated. We recycle it by merging: treat v as e0 everywhere below.
	replaceID := func(s []int) {
		for i := range s {
			if s[i] == e0 {
				s[i] = v
			}
		}
	}
	replaceID(entry)
	replaceID(exit)
	// Reconnect the original context.
	for _, p := range preds {
		for _, en := range entry {
			t.addEdge(p, en)
		}
	}
	for _, s := range succs {
		for _, ex := range exit {
			t.addEdge(ex, s)
		}
	}
	// Compact away the isolated e0 by swapping it with the last node id.
	compactIsolated(t, e0)
}

// compactIsolated removes a known-isolated node id by swapping with the
// last node and renumbering its edges.
func compactIsolated(t *topoGraph, id int) {
	last := t.n - 1
	if id != last {
		// Move node `last` into slot `id`.
		for _, v := range append([]int(nil), t.out[last]...) {
			t.removeEdge(last, v)
			t.addEdge(id, v)
		}
		for _, u := range append([]int(nil), t.in[last]...) {
			t.removeEdge(u, last)
			t.addEdge(u, id)
		}
	}
	for i := range t.replicas {
		for j := 0; j < 2; j++ {
			if t.replicas[i][j] == last {
				t.replicas[i][j] = id
			}
		}
	}
	t.n--
	t.out = t.out[:t.n]
	t.in = t.in[:t.n]
}

func pickNode(t *topoGraph, rng *rand.Rand) int {
	for tries := 0; tries < 8; tries++ {
		v := rng.Intn(t.n)
		if len(t.in[v]) > 0 && len(t.out[v]) > 0 {
			return v
		}
	}
	return rng.Intn(t.n)
}

// buildLinear creates a chain of 2..MaxLinearLen nodes.
func buildLinear(t *topoGraph, rng *rand.Rand, cfg Config, budget int) (entry, exit, mid []int) {
	ln := 2 + rng.Intn(cfg.MaxLinearLen-1)
	if ln-1 > budget {
		ln = budget + 1
	}
	if ln < 2 {
		return nil, nil, nil
	}
	ids := make([]int, ln)
	for i := range ids {
		ids[i] = t.addNode()
		if i > 0 {
			t.addEdge(ids[i-1], ids[i])
		}
	}
	return ids[:1], ids[ln-1:], ids
}

// buildBranch creates 2..MaxBranchWide parallel nodes (length 1).
func buildBranch(t *topoGraph, rng *rand.Rand, cfg Config, budget int) (entry, exit, mid []int) {
	w := 2 + rng.Intn(cfg.MaxBranchWide-1)
	if w-1 > budget {
		w = budget + 1
	}
	if w < 2 {
		return nil, nil, nil
	}
	ids := make([]int, w)
	for i := range ids {
		ids[i] = t.addNode()
	}
	return ids, ids, ids
}

// buildFull creates 2..MaxFullLen layers of up to MaxFullWide nodes with
// complete bipartite connections between consecutive layers.
func buildFull(t *topoGraph, rng *rand.Rand, cfg Config, budget int) (entry, exit, mid []int) {
	layers := 2 + rng.Intn(cfg.MaxFullLen-1)
	var all, prev []int
	total := 0
	for l := 0; l < layers; l++ {
		w := 1 + rng.Intn(cfg.MaxFullWide)
		if total+w-1 > budget { // -1: one node reuses the substituted slot
			w = budget - total + 1
		}
		if w <= 0 {
			break
		}
		cur := make([]int, w)
		for i := range cur {
			cur[i] = t.addNode()
			total++
		}
		for _, p := range prev {
			for _, c := range cur {
				t.addEdge(p, c)
			}
		}
		if l == 0 {
			entry = cur
		}
		all = append(all, cur...)
		prev = cur
	}
	if len(all) < 2 {
		return nil, nil, nil
	}
	return entry, prev, all
}

// replicateNode duplicates a random node (with its connections) up to
// ReplicateMax times, bounded by budget. Replicated operators keep the
// same feature group (handled by featureGroup in assignFeatures).
func replicateNode(t *topoGraph, rng *rand.Rand, cfg Config, budget int) {
	v := pickNode(t, rng)
	k := 1 + rng.Intn(cfg.ReplicateMax)
	if k > budget {
		k = budget
	}
	for i := 0; i < k; i++ {
		w := t.addNode()
		for _, p := range t.in[v] {
			t.addEdge(p, w)
		}
		for _, s := range t.out[v] {
			t.addEdge(w, s)
		}
		t.replicas = append(t.replicas, [2]int{w, v})
	}
}

// assignFeatures randomizes per-operator demand and per-edge traffic, then
// rescales so the graph's total CPU demand and total traffic land at the
// sampled targets.
func assignFeatures(t *topoGraph, cfg Config, rng *rand.Rand) *stream.Graph {
	g := stream.NewGraph(cfg.SourceRate)
	// Selectivities keep tuple rates at the source-rate scale: a fan-in
	// node emits roughly one output per joined input set instead of
	// summing its inputs (without this, rates — and therefore loads —
	// compound exponentially with depth, producing single operators that
	// dwarf a device).
	for i := 0; i < t.n; i++ {
		sel := 0.8 + 0.4*rng.Float64()
		if indeg := len(t.in[i]); indeg > 1 {
			sel /= float64(indeg)
		}
		g.AddNode(stream.Node{IPT: 1, Payload: 1, Selectivity: sel})
	}
	// Deterministic edge order: sort by (src, dst).
	eds := make([]edgePair, 0, len(t.edges))
	for k := range t.edges {
		eds = append(eds, edgePair{k[0], k[1]})
	}
	sortEdges(eds)
	for _, e := range eds {
		g.AddEdge(e.u, e.v, 1)
	}
	// Draw i.i.d. per-node demand and per-edge traffic weights, then invert
	// the steady-state rates to realize them through IPT and payload (the
	// paper characterizes operators by CPU utilization and edges by
	// payload directly; both are "randomly assigned").
	rates := g.SteadyRates()
	inRate := make([]float64, t.n)
	for v := 0; v < t.n; v++ {
		if len(t.in[v]) == 0 {
			inRate[v] = cfg.SourceRate
			continue
		}
		for _, u := range t.in[v] {
			inRate[v] += rates[u]
		}
	}
	for v := 0; v < t.n; v++ {
		g.Nodes[v].IPT = (0.5 + rng.Float64()) / inRate[v]
	}
	for ei := range g.Edges {
		g.Edges[ei].Payload = (0.5 + rng.Float64()) / rates[g.Edges[ei].Src]
	}
	for _, pair := range t.replicas {
		if pair[0] < t.n && pair[1] < t.n {
			// Replicas copy the original operator's per-tuple demand.
			g.Nodes[pair[0]].IPT = g.Nodes[pair[1]].IPT
		}
	}
	// Node payload feature: mean of outgoing edge payloads.
	outSum := make([]float64, t.n)
	outCnt := make([]int, t.n)
	for _, e := range g.Edges {
		outSum[e.Src] += e.Payload
		outCnt[e.Src]++
	}
	for v := 0; v < t.n; v++ {
		if outCnt[v] > 0 {
			g.Nodes[v].Payload = outSum[v] / float64(outCnt[v])
		} else {
			g.Nodes[v].Payload = 0
		}
	}

	// Rescale CPU: total load → frac × cluster instruction capacity.
	frac := cfg.LoadFrac[0] + rng.Float64()*(cfg.LoadFrac[1]-cfg.LoadFrac[0])
	targetLoad := frac * float64(cfg.Cluster.Devices) * cfg.Cluster.InstructionCapacity()
	cur := g.TotalLoad()
	if cur > 0 {
		s := targetLoad / cur
		for i := range g.Nodes {
			g.Nodes[i].IPT *= s
		}
	}
	// Rescale payloads: total traffic → sampled fraction of aggregate
	// cluster bandwidth.
	frac = cfg.TrafficFrac[0] + rng.Float64()*(cfg.TrafficFrac[1]-cfg.TrafficFrac[0])
	tr := g.EdgeTraffic()
	var total float64
	for _, x := range tr {
		total += x
	}
	if total > 0 {
		target := frac * float64(cfg.Cluster.Devices) * cfg.Cluster.Bandwidth
		s := target / total
		for i := range g.Edges {
			g.Edges[i].Payload *= s
		}
		for i := range g.Nodes {
			g.Nodes[i].Payload *= s
		}
	}
	// Operator state sizes, drawn last so the topology and demand features
	// above are bit-identical to graphs generated before state existed
	// (seeded datasets stay stable). Fan-in operators model joins/windows:
	// they always hold state proportional to what arrives during a one-
	// second window; other operators are stateful with probability ~0.25.
	// State only matters to migration cost, never to steady-state load.
	rates = g.SteadyRates()
	for v := 0; v < t.n; v++ {
		inBits := 0.0
		for _, ei := range g.InEdges(v) {
			e := g.Edges[ei]
			inBits += rates[e.Src] * e.Payload
		}
		stateful := len(t.in[v]) > 1
		draw := rng.Float64()
		if !stateful && len(t.in[v]) > 0 {
			stateful = draw < 0.25
		}
		if stateful {
			// Window length 0.2–2 s of arriving data.
			g.Nodes[v].State = inBits * (0.2 + 1.8*rng.Float64())
		}
	}
	return g
}

type edgePair struct{ u, v int }

func sortEdges(eds []edgePair) {
	sort.Slice(eds, func(i, j int) bool {
		if eds[i].u != eds[j].u {
			return eds[i].u < eds[j].u
		}
		return eds[i].v < eds[j].v
	})
}

// GenerateSet produces n graphs in parallel with per-graph derived seeds,
// so the output is independent of worker scheduling.
func GenerateSet(cfg Config, n int, seed int64) []*stream.Graph {
	out := make([]*stream.Graph, n)
	parallel.ForEach(n, 0, func(i int) {
		rng := rand.New(rand.NewSource(graphSeed(seed, i)))
		out[i] = Generate(cfg, rng)
	})
	return out
}

// GenerateEach produces the same n graphs as GenerateSet — identical
// per-graph derived seeds — but sequentially, handing each graph to fn as
// it is built and retaining none of them. This is the streaming export
// path: peak memory is one graph (O(E)), not the whole dataset, which is
// what makes the extreme (~1M node) setting exportable at all.
func GenerateEach(cfg Config, n int, seed int64, fn func(i int, g *stream.Graph) error) error {
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(graphSeed(seed, i)))
		if err := fn(i, Generate(cfg, rng)); err != nil {
			return err
		}
	}
	return nil
}

// graphSeed derives the i-th graph's RNG seed within a set.
func graphSeed(seed int64, i int) int64 { return seed + int64(i)*1_000_003 }
