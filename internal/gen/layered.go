// layered.go is the O(E) streaming construction used for the huge and
// extreme size levels. The recursive substitution generator (gen.go)
// mutates an edge map through thousands of splice operations — fine at
// paper scale (≤2k nodes), hopeless at a million. The layered construction
// instead emits nodes in topological order: every node i>0 draws 1–4
// in-edges from a sliding window of recent predecessors, which makes the
// graph connected and acyclic by construction with no edge set, no
// rewiring, and no intermediate topology — just the final node and edge
// arrays, O(N+E) memory total. Feature assignment reuses the same
// demand/traffic normalization scheme as the recursive path (§V), driven
// by the graph's own adjacency instead of the topoGraph.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// generateLayered emits a connected DAG of cfg.MinNodes..MaxNodes nodes in
// one topological sweep. Deterministic given rng state.
func generateLayered(cfg Config, rng *rand.Rand) *stream.Graph {
	if cfg.MinNodes < 2 || cfg.MaxNodes < cfg.MinNodes {
		panic(fmt.Sprintf("gen: bad node range [%d,%d]", cfg.MinNodes, cfg.MaxNodes))
	}
	target := cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)
	window := cfg.LayerWindow
	if window <= 0 {
		window = 64
	}

	g := stream.NewGraph(cfg.SourceRate)
	g.AddNode(stream.Node{IPT: 1, Payload: 1, Selectivity: 0.8 + 0.4*rng.Float64()})
	var preds [4]int
	for i := 1; i < target; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		span := i - lo
		// 1 guaranteed in-edge keeps the graph weakly connected (the
		// predecessor is itself wired back to node 0 inductively); a
		// geometric tail adds fan-in without blowing up average degree.
		indeg := 1
		for indeg < len(preds) && indeg < span && rng.Float64() < 0.35 {
			indeg++
		}
		// Draw distinct predecessors from the window (indeg ≤ 4, so the
		// dedup loop is constant work).
		got := 0
		for got < indeg {
			u := lo + rng.Intn(span)
			dup := false
			for j := 0; j < got; j++ {
				if preds[j] == u {
					dup = true
					break
				}
			}
			if !dup {
				preds[got] = u
				got++
			}
		}
		sel := 0.8 + 0.4*rng.Float64()
		if indeg > 1 {
			sel /= float64(indeg)
		}
		g.AddNode(stream.Node{IPT: 1, Payload: 1, Selectivity: sel})
		// Ascending predecessor order keeps edge emission deterministic.
		for a := 0; a < got; a++ {
			for b := a + 1; b < got; b++ {
				if preds[b] < preds[a] {
					preds[a], preds[b] = preds[b], preds[a]
				}
			}
		}
		for a := 0; a < got; a++ {
			g.AddEdge(preds[a], i, 1)
		}
	}
	assignFeaturesGraph(g, cfg, rng)
	return g
}

// assignFeaturesGraph is assignFeatures for an already-materialized graph:
// the same i.i.d. demand/traffic draws, rate inversion, load and traffic
// rescaling, and state assignment as the recursive path, reading structure
// from the graph's CSR adjacency instead of a topoGraph.
func assignFeaturesGraph(g *stream.Graph, cfg Config, rng *rand.Rand) {
	n := g.NumNodes()
	rates := g.SteadyRates()
	adj := g.Adjacency()
	inRate := make([]float64, n)
	for v := 0; v < n; v++ {
		if adj.InDegree(v) == 0 {
			inRate[v] = cfg.SourceRate
			continue
		}
		for _, ei := range adj.In(v) {
			inRate[v] += rates[g.Edges[ei].Src]
		}
	}
	for v := 0; v < n; v++ {
		g.Nodes[v].IPT = (0.5 + rng.Float64()) / inRate[v]
	}
	for ei := range g.Edges {
		g.Edges[ei].Payload = (0.5 + rng.Float64()) / rates[g.Edges[ei].Src]
	}
	// Node payload feature: mean of outgoing edge payloads.
	for v := 0; v < n; v++ {
		out := adj.Out(v)
		if len(out) == 0 {
			g.Nodes[v].Payload = 0
			continue
		}
		sum := 0.0
		for _, ei := range out {
			sum += g.Edges[ei].Payload
		}
		g.Nodes[v].Payload = sum / float64(len(out))
	}

	// Rescale CPU: total load → frac × cluster instruction capacity.
	frac := cfg.LoadFrac[0] + rng.Float64()*(cfg.LoadFrac[1]-cfg.LoadFrac[0])
	targetLoad := frac * float64(cfg.Cluster.Devices) * cfg.Cluster.InstructionCapacity()
	if cur := g.TotalLoad(); cur > 0 {
		s := targetLoad / cur
		for i := range g.Nodes {
			g.Nodes[i].IPT *= s
		}
	}
	// Rescale payloads: total traffic → fraction of aggregate bandwidth.
	frac = cfg.TrafficFrac[0] + rng.Float64()*(cfg.TrafficFrac[1]-cfg.TrafficFrac[0])
	var total float64
	for _, x := range g.EdgeTraffic() {
		total += x
	}
	if total > 0 {
		s := frac * float64(cfg.Cluster.Devices) * cfg.Cluster.Bandwidth / total
		for i := range g.Edges {
			g.Edges[i].Payload *= s
		}
		for i := range g.Nodes {
			g.Nodes[i].Payload *= s
		}
	}
	// Operator state (migration cost only): fan-in operators always hold a
	// window of arriving data, others are stateful with probability ~0.25.
	rates = g.SteadyRates()
	for v := 0; v < n; v++ {
		inBits := 0.0
		for _, ei := range adj.In(v) {
			e := g.Edges[ei]
			inBits += rates[e.Src] * e.Payload
		}
		stateful := adj.InDegree(v) > 1
		draw := rng.Float64()
		if !stateful && adj.InDegree(v) > 0 {
			stateful = draw < 0.25
		}
		if stateful {
			g.Nodes[v].State = inBits * (0.2 + 1.8*rng.Float64())
		}
	}
}
