package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig(minN, maxN int) Config {
	c := sim.DefaultCluster(5, 1000)
	return DefaultConfig(minN, maxN, 10_000, c)
}

func TestGenerateWithinRangeAndValid(t *testing.T) {
	cfg := testConfig(20, 40)
	for seed := int64(0); seed < 10; seed++ {
		g := Generate(cfg, rand.New(rand.NewSource(seed)))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := g.NumNodes(); n < cfg.MinNodes || n > cfg.MaxNodes {
			t.Fatalf("seed %d: %d nodes outside [%d,%d]", seed, n, cfg.MinNodes, cfg.MaxNodes)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig(30, 60)
	g1 := Generate(cfg, rand.New(rand.NewSource(42)))
	g2 := Generate(cfg, rand.New(rand.NewSource(42)))
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different topology")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].IPT != g2.Nodes[i].IPT {
			t.Fatal("same seed produced different features")
		}
	}
}

func TestGenerateLoadNormalization(t *testing.T) {
	cfg := testConfig(50, 80)
	capTotal := float64(cfg.Cluster.Devices) * cfg.Cluster.InstructionCapacity()
	for seed := int64(0); seed < 8; seed++ {
		g := Generate(cfg, rand.New(rand.NewSource(seed)))
		frac := g.TotalLoad() / capTotal
		if frac < cfg.LoadFrac[0]-1e-9 || frac > cfg.LoadFrac[1]+1e-9 {
			t.Fatalf("seed %d: load fraction %g outside [%g,%g]", seed, frac, cfg.LoadFrac[0], cfg.LoadFrac[1])
		}
	}
}

func TestGenerateTrafficNormalization(t *testing.T) {
	cfg := testConfig(50, 80)
	aggBW := float64(cfg.Cluster.Devices) * cfg.Cluster.Bandwidth
	for seed := int64(0); seed < 8; seed++ {
		g := Generate(cfg, rand.New(rand.NewSource(seed)))
		var total float64
		for _, x := range g.EdgeTraffic() {
			total += x
		}
		frac := total / aggBW
		if frac < cfg.TrafficFrac[0]-1e-9 || frac > cfg.TrafficFrac[1]+1e-9 {
			t.Fatalf("seed %d: traffic fraction %g outside [%g,%g]", seed, frac, cfg.TrafficFrac[0], cfg.TrafficFrac[1])
		}
	}
}

func TestGenerateSetParallelDeterministic(t *testing.T) {
	cfg := testConfig(20, 40)
	a := GenerateSet(cfg, 12, 7)
	b := GenerateSet(cfg, 12, 7)
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("graph %d differs between runs", i)
		}
	}
	// Different indices should (almost surely) differ.
	same := 0
	for i := 1; i < len(a); i++ {
		if a[i].NumNodes() == a[0].NumNodes() && a[i].NumEdges() == a[0].NumEdges() {
			same++
		}
	}
	if same == len(a)-1 {
		t.Fatal("all graphs identical; seeds not varied")
	}
}

// Property: every generated graph is a weakly connected DAG in range.
func TestQuickGeneratedGraphsValid(t *testing.T) {
	cfg := testConfig(10, 120)
	f := func(seed int64) bool {
		g := Generate(cfg, rand.New(rand.NewSource(seed)))
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		n := g.NumNodes()
		return n >= cfg.MinNodes && n <= cfg.MaxNodes && g.NumEdges() >= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSettingsPresets(t *testing.T) {
	for _, s := range AllSettings() {
		if s.TrainN < 1 || s.TestN < 1 || s.Cluster.Devices < 1 {
			t.Fatalf("%s: bad preset", s.Name)
		}
		if _, err := ByName(s.Name); err != nil {
			t.Fatalf("%s: not resolvable by name", s.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown setting resolved")
	}
}

func TestSettingScale(t *testing.T) {
	s := Small().Scale(0.01)
	if s.TrainN < 1 || s.TestN < 1 {
		t.Fatal("scale floored below 1")
	}
	s2 := Small().Scale(2)
	if s2.TrainN != Small().TrainN*2 {
		t.Fatalf("scale up: %d", s2.TrainN)
	}
}

func TestSmallSettingGeneratesSmallGraphs(t *testing.T) {
	s := Small()
	s.TrainN, s.TestN = 4, 4
	ds := s.Generate()
	for _, g := range append(ds.Train, ds.Test...) {
		if g.NumNodes() < 4 || g.NumNodes() > 26 {
			t.Fatalf("small graph has %d nodes", g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExcessSettingTraffic(t *testing.T) {
	// The excess setting must produce the same absolute traffic scale as
	// Large while its cluster bandwidth is 33% lower.
	l, e := Large(), Excess()
	if e.Cluster.Bandwidth >= l.Cluster.Bandwidth {
		t.Fatal("excess bandwidth not reduced")
	}
	ratio := e.Cluster.Bandwidth / l.Cluster.Bandwidth
	if math.Abs(ratio-0.67) > 1e-9 {
		t.Fatalf("bandwidth ratio %g", ratio)
	}
	if e.Config.LoadFrac[1] >= l.Config.LoadFrac[1] {
		t.Fatal("excess CPU utilization not reduced")
	}
}

func TestTrainTestDisjointSeeds(t *testing.T) {
	s := Small()
	s.TrainN, s.TestN = 6, 6
	ds := s.Generate()
	// Heuristic check: train[i] and test[i] should not be byte-identical.
	identical := 0
	for i := range ds.Test {
		if ds.Train[i].NumNodes() == ds.Test[i].NumNodes() && ds.Train[i].NumEdges() == ds.Test[i].NumEdges() {
			identical++
		}
	}
	if identical == len(ds.Test) {
		t.Fatal("train and test appear identical")
	}
}
