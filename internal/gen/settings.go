package gen

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stream"
)

// Setting names one experimental configuration from §V: a node-count
// range, tuple rate, and cluster.
type Setting struct {
	Name    string
	Cluster sim.Cluster
	Config  Config
	// TrainN/TestN are dataset sizes; the paper uses 1,200/300 splits, the
	// defaults here are CPU-scale and overridable (Scale method).
	TrainN, TestN int
	Seed          int64
}

// Dataset is a generated train/test split.
type Dataset struct {
	Name    string
	Cluster sim.Cluster
	Train   []*stream.Graph
	Test    []*stream.Graph
}

// testSeedOffset separates the test split's seed space from the train
// split's.
const testSeedOffset = 1_000_000_007

// Generate materializes the dataset (deterministic per Setting).
func (s Setting) Generate() *Dataset {
	return &Dataset{
		Name:    s.Name,
		Cluster: s.Cluster,
		Train:   GenerateSet(s.Config, s.TrainN, s.Seed),
		Test:    GenerateSet(s.Config, s.TestN, s.Seed+testSeedOffset),
	}
}

// Split returns the size and seed of one split ("train" or "test"), so
// streaming exporters reproduce exactly the graphs Generate would batch.
func (s Setting) Split(name string) (n int, seed int64, err error) {
	switch name {
	case "train":
		return s.TrainN, s.Seed, nil
	case "test":
		return s.TestN, s.Seed + testSeedOffset, nil
	}
	return 0, 0, fmt.Errorf("gen: unknown split %q (want train or test)", name)
}

// Scale multiplies the train/test sizes (minimum 1 each); used to run
// paper-scale datasets from the CLI.
func (s Setting) Scale(f float64) Setting {
	s.TrainN = maxInt(1, int(float64(s.TrainN)*f))
	s.TestN = maxInt(1, int(float64(s.TestN)*f))
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Small returns the sanity-check setting from [9]: 4–26 nodes, 10K/s
// tuple rate, 5 devices, 1000 Mbps links.
func Small() Setting {
	c := sim.DefaultCluster(5, 1000)
	cfg := DefaultConfig(4, 26, 10_000, c)
	// Small graphs stay within cluster capacity (§V) and carry lighter
	// aggregate traffic: with only a handful of edges, the default ranges
	// would make every single edge saturate a link on its own.
	cfg.LoadFrac = [2]float64{0.5, 1.1}
	cfg.TrafficFrac = [2]float64{0.4, 1.5}
	return Setting{Name: "small", Cluster: c, Config: cfg, TrainN: 60, TestN: 40, Seed: 11}
}

// Medium5K returns 100–200 nodes, 5K/s, 5 devices, 1000 Mbps.
func Medium5K() Setting {
	c := sim.DefaultCluster(5, 1000)
	cfg := DefaultConfig(100, 200, 5_000, c)
	return Setting{Name: "medium-5k-5dev", Cluster: c, Config: cfg, TrainN: 48, TestN: 32, Seed: 23}
}

// Medium returns 100–200 nodes, 10K/s, 10 devices, 1000 Mbps — the
// motivating setting of Fig. 1 and the first curriculum level.
func Medium() Setting {
	c := sim.DefaultCluster(10, 1000)
	cfg := DefaultConfig(100, 200, 10_000, c)
	return Setting{Name: "medium-10k-10dev", Cluster: c, Config: cfg, TrainN: 48, TestN: 32, Seed: 37}
}

// Large returns 400–500 nodes, 10K/s, 10 devices, 1500 Mbps — the paper's
// main setting.
func Large() Setting {
	c := sim.DefaultCluster(10, 1500)
	cfg := DefaultConfig(400, 500, 10_000, c)
	return Setting{Name: "large-10k-10dev", Cluster: c, Config: cfg, TrainN: 32, TestN: 24, Seed: 53}
}

// XLarge returns 1,000–2,000 nodes, 10K/s, 20 devices, 1500 Mbps.
func XLarge() Setting {
	c := sim.DefaultCluster(20, 1500)
	cfg := DefaultConfig(1000, 2000, 10_000, c)
	return Setting{Name: "xlarge-10k-20dev", Cluster: c, Config: cfg, TrainN: 16, TestN: 12, Seed: 71}
}

// Huge returns ~100k-node graphs on 32 devices — beyond the recursive
// generator's practical range, built with the layered O(E) construction.
// Dataset sizes are 1/1: graphs this large are consumed one at a time
// (benchmarks, streaming export), not as training corpora.
func Huge() Setting {
	c := sim.DefaultCluster(32, 2000)
	cfg := DefaultConfig(95_000, 105_000, 10_000, c)
	cfg.Layered = true
	cfg.LayerWindow = 64
	return Setting{Name: "huge-10k-32dev", Cluster: c, Config: cfg, TrainN: 1, TestN: 1, Seed: 101}
}

// Extreme returns ~1M-node graphs on 64 devices (layered construction).
func Extreme() Setting {
	c := sim.DefaultCluster(64, 4000)
	cfg := DefaultConfig(950_000, 1_050_000, 10_000, c)
	cfg.Layered = true
	cfg.LayerWindow = 128
	return Setting{Name: "extreme-10k-64dev", Cluster: c, Config: cfg, TrainN: 1, TestN: 1, Seed: 113}
}

// Excess returns the excess-device setting: large-graph topologies with
// node CPU utilization and network bandwidth both reduced by 33% (§V), so
// the optimal allocation uses only a subset of the 10 devices.
func Excess() Setting {
	s := Large()
	s.Name = "excess-devices"
	s.Seed = 89
	// Bandwidth ×0.67 on the cluster; CPU utilization ×0.67 via the load
	// fraction the generator normalizes to. The traffic targets are
	// divided by the same factor so absolute traffic matches the Large
	// setting: only the available bandwidth shrinks.
	s.Cluster.Bandwidth *= 0.67
	s.Config.Cluster = s.Cluster
	lf := Large().Config.LoadFrac
	tf := Large().Config.TrafficFrac
	s.Config.LoadFrac = [2]float64{lf[0] * 0.67, lf[1] * 0.67}
	s.Config.TrafficFrac = [2]float64{tf[0] / 0.67, tf[1] / 0.67}
	return s
}

// ByName resolves a setting by its Name field.
func ByName(name string) (Setting, error) {
	for _, s := range AllSettings() {
		if s.Name == name {
			return s, nil
		}
	}
	return Setting{}, fmt.Errorf("gen: unknown setting %q", name)
}

// AllSettings lists every preset in evaluation order.
func AllSettings() []Setting {
	return []Setting{Small(), Medium5K(), Medium(), Large(), XLarge(), Huge(), Extreme(), Excess()}
}
