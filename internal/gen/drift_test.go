package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestDriftEventsDeterministicAndValid(t *testing.T) {
	cfg := DefaultDriftConfig(16)
	a := DriftEvents(cfg, 5, rand.New(rand.NewSource(7)))
	b := DriftEvents(cfg, 5, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce the same scenario")
	}
	if err := sim.ValidateEvents(a, 5); err != nil {
		t.Fatalf("generated events invalid: %v", err)
	}
	if len(a) == 0 {
		t.Fatal("EnsureDrift must guarantee at least one event")
	}
	if _, err := sim.BuildTimeline(5, cfg.Ticks, a); err != nil {
		t.Fatalf("timeline: %v", err)
	}
}

func TestDriftEventsRespectMaxLost(t *testing.T) {
	cfg := DefaultDriftConfig(64)
	cfg.PLoss = 1 // try to lose a device every tick
	cfg.MaxLost = 1
	events := DriftEvents(cfg, 4, rand.New(rand.NewSource(3)))
	tl, err := sim.BuildTimeline(4, cfg.Ticks, events)
	if err != nil {
		t.Fatal(err)
	}
	for tick, st := range tl {
		lost := 0
		for d := 0; d < 4; d++ {
			if !st.Up(d) {
				lost++
			}
		}
		if lost > cfg.MaxLost {
			t.Fatalf("tick %d: %d devices lost, cap %d", tick, lost, cfg.MaxLost)
		}
	}
}

func TestDriftEventSetIndependentOfScheduling(t *testing.T) {
	cfg := DefaultDriftConfig(12)
	a := DriftEventSet(cfg, 5, 8, 99)
	b := DriftEventSet(cfg, 5, 8, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DriftEventSet must be deterministic")
	}
	c := DriftEventSet(cfg, 5, 8, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratedGraphsHaveOperatorState(t *testing.T) {
	s := Small()
	ds := s.Generate()
	stateful, total := 0, 0
	for _, g := range ds.Train {
		for _, n := range g.Nodes {
			total++
			if n.State < 0 {
				t.Fatal("negative operator state")
			}
			if n.State > 0 {
				stateful++
			}
		}
	}
	if stateful == 0 {
		t.Fatal("no stateful operators generated across the whole dataset")
	}
	if stateful == total {
		t.Fatal("every operator stateful; sources at least should be stateless")
	}
}
