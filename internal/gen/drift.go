// drift.go generates elastic drift scenarios: seeded random timelines of
// source-rate surges, device pool shrink/grow, and link class changes,
// matching the environments a long-lived stream deployment actually sees.
// Scenarios are expressed as sim.DriftEvent lists so the deterministic
// simulators, the re-allocation loop, and the wall-clock runtime all
// replay exactly the same drift.
package gen

import (
	"math/rand"
	"sort"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// DriftConfig controls scenario generation. Probabilities are per tick.
type DriftConfig struct {
	// Ticks is the timeline length.
	Ticks int
	// PSurge is the per-tick probability of a source-rate surge starting.
	PSurge float64
	// SurgeFactor is the sampled surge multiplier range.
	SurgeFactor [2]float64
	// SurgeTicks is the sampled surge duration range (ticks).
	SurgeTicks [2]int
	// PLoss is the per-tick probability of a device leaving the pool.
	PLoss float64
	// LossTicks is the sampled outage duration range; a draw at the upper
	// bound becomes permanent (the device never returns).
	LossTicks [2]int
	// PJoin is the per-tick probability of a device joining the pool
	// (autoscaling grow). Joining devices are absent before their tick.
	PJoin float64
	// PClass is the per-tick probability of a link class change.
	PClass float64
	// Classes are the link bandwidth factors a class change can switch to.
	Classes []float64
	// MaxLost caps concurrently lost devices so a scenario never removes
	// the whole pool.
	MaxLost int
	// EnsureDrift forces a mid-timeline device loss when the random draws
	// produced no event at all, so every scenario actually drifts.
	EnsureDrift bool
}

// DefaultDriftConfig returns a moderately hostile timeline: roughly one
// device loss, one surge, and one class change per 16 ticks.
func DefaultDriftConfig(ticks int) DriftConfig {
	return DriftConfig{
		Ticks:       ticks,
		PSurge:      0.08,
		SurgeFactor: [2]float64{1.3, 2.2},
		SurgeTicks:  [2]int{2, 6},
		PLoss:       0.08,
		LossTicks:   [2]int{3, 8},
		PJoin:       0.04,
		PClass:      0.06,
		Classes:     []float64{0.5, 0.67, 1, 1.5},
		MaxLost:     1,
		EnsureDrift: true,
	}
}

func (cfg DriftConfig) intIn(r [2]int, rng *rand.Rand) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

func (cfg DriftConfig) floatIn(r [2]float64, rng *rand.Rand) float64 {
	return r[0] + rng.Float64()*(r[1]-r[0])
}

// DriftEvents generates one seeded scenario for a cluster of the given
// size. Deterministic given rng state. At every tick at most MaxLost
// devices are unavailable, counting both loss windows and not-yet-joined
// pool-grow devices, so a scenario never starves the pool.
func DriftEvents(cfg DriftConfig, devices int, rng *rand.Rand) []sim.DriftEvent {
	var events []sim.DriftEvent
	// Phase 1 — pool grow: decide joins first, because a device joining at
	// tick t is absent for every tick before t and must count against the
	// unavailability budget from tick 0. Device 0 never joins late, so the
	// initial pool is never empty.
	joinTick := make([]int, devices) // 0 = present from the start
	joins := 0
	for t := 1; t < cfg.Ticks; t++ {
		if rng.Float64() < cfg.PJoin && devices > 1 {
			d := 1 + rng.Intn(devices-1)
			// Every late joiner is absent at tick 0, so the number of
			// joins is itself bounded by the unavailability budget.
			if joinTick[d] == 0 && joins < cfg.MaxLost {
				joinTick[d] = t
				joins++
				events = append(events, sim.DriftEvent{Kind: sim.DriftDeviceJoin, Tick: t, Device: d})
			}
		}
	}
	// Phase 2 — surges, losses, class changes.
	lostUntil := make([]int, devices) // > t means device is out at tick t
	unavail := func(t int) int {
		n := 0
		for d := 0; d < devices; d++ {
			if joinTick[d] > t || lostUntil[d] > t {
				n++
			}
		}
		return n
	}
	for t := 1; t < cfg.Ticks; t++ {
		if rng.Float64() < cfg.PSurge {
			events = append(events, sim.DriftEvent{
				Kind:     sim.DriftSourceSurge,
				Tick:     t,
				DurTicks: cfg.intIn(cfg.SurgeTicks, rng),
				Factor:   cfg.floatIn(cfg.SurgeFactor, rng),
			})
		}
		if rng.Float64() < cfg.PLoss && devices > 1 {
			d := rng.Intn(devices)
			if joinTick[d] <= t && lostUntil[d] <= t {
				dur := cfg.intIn(cfg.LossTicks, rng)
				end := t + dur
				if dur >= cfg.LossTicks[1] || end > cfg.Ticks {
					dur, end = 0, cfg.Ticks // permanent: the device never returns
				}
				within := true
				for x := t; x < end; x++ {
					if unavail(x) >= cfg.MaxLost {
						within = false
						break
					}
				}
				if within {
					events = append(events, sim.DriftEvent{
						Kind: sim.DriftDeviceLoss, Tick: t, DurTicks: dur, Device: d,
					})
					lostUntil[d] = end
				}
			}
		}
		if rng.Float64() < cfg.PClass && len(cfg.Classes) > 0 {
			events = append(events, sim.DriftEvent{
				Kind:   sim.DriftLinkClass,
				Tick:   t,
				Factor: cfg.Classes[rng.Intn(len(cfg.Classes))],
			})
		}
	}
	if cfg.EnsureDrift && len(events) == 0 && devices > 1 {
		events = append(events, sim.DriftEvent{
			Kind:     sim.DriftDeviceLoss,
			Tick:     cfg.Ticks / 3,
			DurTicks: 0,
			Device:   rng.Intn(devices),
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
	return events
}

// DriftEventSet generates n scenarios in parallel with per-scenario
// derived seeds, so the output is independent of worker scheduling —
// the same contract as GenerateSet.
func DriftEventSet(cfg DriftConfig, devices, n int, seed int64) [][]sim.DriftEvent {
	out := make([][]sim.DriftEvent, n)
	parallel.ForEach(n, 0, func(i int) {
		rng := rand.New(rand.NewSource(seed + int64(i)*7_368_787))
		out[i] = DriftEvents(cfg, devices, rng)
	})
	return out
}
