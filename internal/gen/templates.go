package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// Template names a hand-modelled real-world stream application shape. The
// paper motivates its synthetic generator with such applications
// ([19]–[24]); these templates provide concrete instances for examples,
// tests, and demos, parameterized by a width factor so they scale from a
// dozen to hundreds of operators.
type Template string

// Available templates.
const (
	// WordCount is the classic split→count→aggregate topology.
	WordCount Template = "wordcount"
	// LogAnalytics models parse→filter→enrich→window→alert pipelines.
	LogAnalytics Template = "log-analytics"
	// FraudDetection models a scoring DAG with feature fan-out and joins.
	FraudDetection Template = "fraud-detection"
	// IoTMonitoring models many sensor partitions feeding shared
	// aggregation and storage stages.
	IoTMonitoring Template = "iot-monitoring"
)

// AllTemplates lists every template.
func AllTemplates() []Template {
	return []Template{WordCount, LogAnalytics, FraudDetection, IoTMonitoring}
}

// FromTemplate instantiates a template. width scales the parallel stages
// (width ≥ 1); rng randomizes per-operator demands around the template's
// profile. The returned graph validates and has rates at the source-rate
// scale (selectivities shrink at fan-in joins).
func FromTemplate(t Template, width int, sourceRate float64, rng *rand.Rand) (*stream.Graph, error) {
	if width < 1 {
		return nil, fmt.Errorf("gen: template width %d < 1", width)
	}
	g := stream.NewGraph(sourceRate)
	jitter := func(x float64) float64 { return x * (0.7 + 0.6*rng.Float64()) }
	node := func(name string, ipt, payload, sel float64) int {
		return g.AddNode(stream.Node{Name: name, IPT: jitter(ipt), Payload: jitter(payload), Selectivity: sel})
	}
	switch t {
	case WordCount:
		src := node("lines", 2e4, 8e4, 1)
		var counters []int
		for i := 0; i < width; i++ {
			split := node(fmt.Sprintf("split-%d", i), 6e4, 3e4, 1)
			count := node(fmt.Sprintf("count-%d", i), 4e4, 6e3, 0.2)
			g.AddEdge(src, split, 0)
			g.AddEdge(split, count, 0)
			counters = append(counters, count)
		}
		agg := node("aggregate", 8e4, 2e3, 1.0/float64(width))
		sink := node("store", 1e4, 0, 1)
		for _, c := range counters {
			g.AddEdge(c, agg, 0)
		}
		g.AddEdge(agg, sink, 0)

	case LogAnalytics:
		src := node("ingest", 3e4, 1e5, 1)
		parse := node("parse", 1.2e5, 7e4, 1)
		g.AddEdge(src, parse, 0)
		var windows []int
		for i := 0; i < width; i++ {
			filter := node(fmt.Sprintf("filter-%d", i), 3e4, 5e4, 0.6)
			enrich := node(fmt.Sprintf("enrich-%d", i), 9e4, 6e4, 1)
			window := node(fmt.Sprintf("window-%d", i), 1.4e5, 1e4, 0.3)
			g.AddEdge(parse, filter, 0)
			g.AddEdge(filter, enrich, 0)
			g.AddEdge(enrich, window, 0)
			windows = append(windows, window)
		}
		alert := node("alert", 5e4, 2e3, 1.0/float64(width))
		dash := node("dashboard", 2e4, 0, 1)
		store := node("archive", 1e4, 0, 1)
		for _, w := range windows {
			g.AddEdge(w, alert, 0)
			g.AddEdge(w, store, 0)
		}
		g.AddEdge(alert, dash, 0)

	case FraudDetection:
		src := node("transactions", 2e4, 6e4, 1)
		var features []int
		for i := 0; i < width; i++ {
			f := node(fmt.Sprintf("feature-%d", i), 1.1e5, 2e4, 1)
			g.AddEdge(src, f, 0)
			features = append(features, f)
		}
		join := node("feature-join", 1.6e5, 9e4, 1.0/float64(width))
		model1 := node("rules-model", 9e4, 8e3, 1)
		model2 := node("ml-model", 2.2e5, 8e3, 1)
		ensemble := node("ensemble", 6e4, 4e3, 0.5)
		block := node("block-sink", 1e4, 0, 1)
		review := node("review-sink", 1e4, 0, 1)
		for _, f := range features {
			g.AddEdge(f, join, 0)
		}
		g.AddEdge(join, model1, 0)
		g.AddEdge(join, model2, 0)
		g.AddEdge(model1, ensemble, 0)
		g.AddEdge(model2, ensemble, 0)
		g.AddEdge(ensemble, block, 0)
		g.AddEdge(ensemble, review, 0)

	case IoTMonitoring:
		var aggs []int
		shared := node("fleet-agg", 1.3e5, 1e4, 0.2/float64(width))
		for i := 0; i < width; i++ {
			sensor := node(fmt.Sprintf("sensor-gw-%d", i), 2e4, 4e4, 1)
			clean := node(fmt.Sprintf("clean-%d", i), 5e4, 3e4, 0.8)
			local := node(fmt.Sprintf("local-agg-%d", i), 7e4, 8e3, 0.3)
			g.AddEdge(sensor, clean, 0)
			g.AddEdge(clean, local, 0)
			g.AddEdge(local, shared, 0)
			aggs = append(aggs, local)
		}
		tsdb := node("tsdb", 3e4, 0, 1)
		anomaly := node("anomaly", 1.5e5, 3e3, 1)
		pager := node("pager", 5e3, 0, 1)
		g.AddEdge(shared, tsdb, 0)
		g.AddEdge(shared, anomaly, 0)
		g.AddEdge(anomaly, pager, 0)
		_ = aggs

	default:
		return nil, fmt.Errorf("gen: unknown template %q", t)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gen: template %s: %w", t, err)
	}
	return g, nil
}
