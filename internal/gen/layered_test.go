package gen

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

func layeredConfig(minN, maxN int) Config {
	cfg := testConfig(minN, maxN)
	cfg.Layered = true
	cfg.LayerWindow = 16
	return cfg
}

func TestLayeredWithinRangeAndValid(t *testing.T) {
	cfg := layeredConfig(200, 300)
	for seed := int64(0); seed < 5; seed++ {
		g := Generate(cfg, rand.New(rand.NewSource(seed)))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := g.NumNodes(); n < cfg.MinNodes || n > cfg.MaxNodes {
			t.Fatalf("seed %d: %d nodes outside [%d,%d]", seed, n, cfg.MinNodes, cfg.MaxNodes)
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("seed %d: not a DAG: %v", seed, err)
		}
	}
}

func TestLayeredDeterministic(t *testing.T) {
	cfg := layeredConfig(150, 250)
	g1 := Generate(cfg, rand.New(rand.NewSource(9)))
	g2 := Generate(cfg, rand.New(rand.NewSource(9)))
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different topology")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i] != g2.Nodes[i] {
			t.Fatalf("same seed produced different node %d", i)
		}
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("same seed produced different edge %d", i)
		}
	}
}

func TestLayeredRespectsWindow(t *testing.T) {
	cfg := layeredConfig(500, 500)
	g := Generate(cfg, rand.New(rand.NewSource(3)))
	for _, e := range g.Edges {
		if e.Src >= e.Dst {
			t.Fatalf("edge %d->%d not forward", e.Src, e.Dst)
		}
		if e.Dst-e.Src > cfg.LayerWindow {
			t.Fatalf("edge %d->%d outside window %d", e.Src, e.Dst, cfg.LayerWindow)
		}
	}
}

func TestLayeredNormalization(t *testing.T) {
	// Load and traffic must land inside the configured target fractions,
	// like the recursive construction.
	cfg := layeredConfig(300, 400)
	g := Generate(cfg, rand.New(rand.NewSource(7)))
	capTotal := float64(cfg.Cluster.Devices) * cfg.Cluster.InstructionCapacity()
	lf := g.TotalLoad() / capTotal
	if lf < cfg.LoadFrac[0]-1e-9 || lf > cfg.LoadFrac[1]+1e-9 {
		t.Fatalf("load fraction %v outside %v", lf, cfg.LoadFrac)
	}
	var traffic float64
	for _, x := range g.EdgeTraffic() {
		traffic += x
	}
	tf := traffic / (float64(cfg.Cluster.Devices) * cfg.Cluster.Bandwidth)
	if tf < cfg.TrafficFrac[0]-1e-9 || tf > cfg.TrafficFrac[1]+1e-9 {
		t.Fatalf("traffic fraction %v outside %v", tf, cfg.TrafficFrac)
	}
}

func TestGenerateEachMatchesGenerateSet(t *testing.T) {
	for _, cfg := range []Config{testConfig(20, 40), layeredConfig(50, 80)} {
		want := GenerateSet(cfg, 4, 77)
		i := 0
		err := GenerateEach(cfg, 4, 77, func(idx int, g *stream.Graph) error {
			w := want[idx]
			if g.NumNodes() != w.NumNodes() || g.NumEdges() != w.NumEdges() {
				t.Fatalf("graph %d: topology mismatch", idx)
			}
			for v := range g.Nodes {
				if g.Nodes[v] != w.Nodes[v] {
					t.Fatalf("graph %d node %d mismatch", idx, v)
				}
			}
			for e := range g.Edges {
				if g.Edges[e] != w.Edges[e] {
					t.Fatalf("graph %d edge %d mismatch", idx, e)
				}
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != 4 {
			t.Fatalf("visited %d graphs", i)
		}
	}
}

func TestSplitSeeds(t *testing.T) {
	s := Small()
	n, seed, err := s.Split("train")
	if err != nil || n != s.TrainN || seed != s.Seed {
		t.Fatalf("train split: %d %d %v", n, seed, err)
	}
	n, seed, err = s.Split("test")
	if err != nil || n != s.TestN || seed == s.Seed {
		t.Fatalf("test split: %d %d %v", n, seed, err)
	}
	if _, _, err := s.Split("nope"); err == nil {
		t.Fatal("unknown split resolved")
	}
}

// TestHugePresetShape checks the huge/extreme presets are layered and at
// the advertised scale without generating them (too slow for unit tests).
func TestHugePresetShape(t *testing.T) {
	for _, s := range []Setting{Huge(), Extreme()} {
		if !s.Config.Layered {
			t.Fatalf("%s: not layered", s.Name)
		}
		if s.Config.MinNodes < 90_000 {
			t.Fatalf("%s: too small (%d)", s.Name, s.Config.MinNodes)
		}
		if s.Cluster.Devices < 32 {
			t.Fatalf("%s: %d devices", s.Name, s.Cluster.Devices)
		}
	}
	if Extreme().Config.MinNodes < 900_000 {
		t.Fatal("extreme preset below ~1M nodes")
	}
}
