// Package metis implements a multilevel graph partitioner with the same
// algorithmic skeleton as Metis [16]: heavy-edge-matching coarsening, a
// greedy initial partition of the coarsest graph, and
// Fiduccia–Mattheyses-style boundary refinement during uncoarsening, under
// a balance constraint. It is used both as the strongest non-learned
// baseline in the paper's evaluation and as the partitioning stage of the
// coarsening–partitioning framework.
//
// Node weights are operator CPU loads (instructions/second) and edge
// weights are steady-state traffic (bits/second), so minimizing the edge
// cut subject to balance directly targets the two simulator bottlenecks.
package metis

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/stream"
)

// Options tunes the partitioner.
type Options struct {
	// Parts is the number of partitions (devices) to produce.
	Parts int
	// Imbalance is the allowed fractional overload per part (Metis default
	// ~0.03; we default to 0.05).
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// nodes; 0 selects max(15×Parts, 30).
	CoarsenTo int
	// RefinePasses bounds FM passes per level; 0 selects 8.
	RefinePasses int
	// Seed drives the randomized matching and refinement orders.
	Seed int64
	// TargetFractions optionally sets each part's share of the total node
	// weight (heterogeneous devices); nil means uniform shares. Must sum
	// to ~1 and have length Parts.
	TargetFractions []float64
}

// targetFraction returns part p's share of the total weight.
func (o Options) targetFraction(p int) float64 {
	if o.TargetFractions != nil {
		return o.TargetFractions[p]
	}
	return 1 / float64(o.Parts)
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 15 * o.Parts
		if o.CoarsenTo < 30 {
			o.CoarsenTo = 30
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// wgraph is an undirected weighted graph in adjacency form. Parallel
// edges are merged; self-loops are dropped.
type wgraph struct {
	nw  []float64
	adj []map[int]float64 // neighbor → edge weight
}

func newWGraph(n int) *wgraph {
	g := &wgraph{nw: make([]float64, n), adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

func (g *wgraph) addEdge(u, v int, w float64) {
	if u == v {
		return
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

func (g *wgraph) n() int { return len(g.nw) }

func (g *wgraph) totalWeight() float64 {
	var s float64
	for _, w := range g.nw {
		s += w
	}
	return s
}

// fromStream converts a stream graph into the undirected weighted form.
func fromStream(g *stream.Graph) *wgraph {
	wg := newWGraph(g.NumNodes())
	copy(wg.nw, g.NodeLoad())
	traffic := g.EdgeTraffic()
	for ei, e := range g.Edges {
		wg.addEdge(e.Src, e.Dst, traffic[ei])
	}
	return wg
}

// Partition assigns each operator of g to one of opts.Parts devices.
func Partition(g *stream.Graph, opts Options) *stream.Placement {
	opts = opts.withDefaults()
	wg := fromStream(g)
	part := partitionWGraph(wg, opts)
	p := stream.NewPlacement(g.NumNodes(), opts.Parts)
	copy(p.Assign, part)
	return p
}

// partitionWGraph runs the full multilevel pipeline on a weighted graph.
func partitionWGraph(wg *wgraph, opts Options) []int {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Parts <= 1 {
		return make([]int, wg.n())
	}
	// Coarsening phase.
	type level struct {
		g    *wgraph
		map_ []int // fine node → coarse node (nil at the coarsest level)
	}
	levels := []level{{g: wg}}
	cur := wg
	for cur.n() > opts.CoarsenTo {
		coarse, m := heavyEdgeMatch(cur, rng)
		if coarse.n() >= cur.n() { // no progress; stop
			break
		}
		levels[len(levels)-1].map_ = m
		levels = append(levels, level{g: coarse})
		cur = coarse
	}
	// Initial partition of the coarsest graph.
	part := initialPartition(cur, opts, rng)
	refine(cur, part, opts, rng)
	// Uncoarsening with refinement.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		finePart := make([]int, fine.g.n())
		for v := range finePart {
			finePart[v] = part[fine.map_[v]]
		}
		part = finePart
		refine(fine.g, part, opts, rng)
	}
	return part
}

// heavyEdgeMatch performs one round of randomized heavy-edge matching and
// returns the coarse graph plus the fine→coarse map.
func heavyEdgeMatch(g *wgraph, rng *rand.Rand) (*wgraph, []int) {
	n := g.n()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, -1.0
		for u, w := range g.adj[v] {
			if match[u] == -1 && w > bestW {
				best, bestW = u, w
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	// Number the coarse nodes.
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = next
		if match[v] != v {
			cmap[match[v]] = next
		}
		next++
	}
	coarse := newWGraph(next)
	for v := 0; v < n; v++ {
		coarse.nw[cmap[v]] += g.nw[v]
	}
	for v := 0; v < n; v++ {
		for u, w := range g.adj[v] {
			if v < u { // each undirected edge once
				cu, cv := cmap[v], cmap[u]
				if cu != cv {
					coarse.addEdge(cu, cv, w)
				}
			}
		}
	}
	return coarse, cmap
}

// initialPartition greedily assigns the coarsest nodes: heaviest first,
// each to the part minimizing (load, then cut increase).
func initialPartition(g *wgraph, opts Options, rng *rand.Rand) []int {
	n := g.n()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.nw[order[a]] > g.nw[order[b]] })
	loads := make([]float64, opts.Parts)
	for _, v := range order {
		// Connectivity gain toward each part.
		gain := make([]float64, opts.Parts)
		for u, w := range g.adj[v] {
			if part[u] >= 0 {
				gain[part[u]] += w
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for p := 0; p < opts.Parts; p++ {
			// Prefer low *relative* load (normalized by the part's target
			// share, which handles heterogeneous devices), break ties by
			// connectivity.
			score := gain[p] - loads[p]/opts.targetFraction(p)/float64(opts.Parts)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		_ = rng
		part[v] = best
		loads[best] += g.nw[v]
	}
	return part
}

// refine runs FM-style boundary passes: move a node to the part with the
// highest positive cut gain that keeps balance.
func refine(g *wgraph, part []int, opts Options, rng *rand.Rand) {
	n := g.n()
	total := g.totalWeight()
	maxLoad := make([]float64, opts.Parts)
	for p := 0; p < opts.Parts; p++ {
		maxLoad[p] = (1 + opts.Imbalance) * total * opts.targetFraction(p)
	}
	loads := make([]float64, opts.Parts)
	for v := 0; v < n; v++ {
		loads[part[v]] += g.nw[v]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		improved := false
		for _, v := range order {
			from := part[v]
			// Connectivity of v toward each part.
			conn := make(map[int]float64, 4)
			for u, w := range g.adj[v] {
				conn[part[u]] += w
			}
			bestPart, bestGain := from, 0.0
			for p, c := range conn {
				if p == from {
					continue
				}
				gain := c - conn[from]
				if gain > bestGain && loads[p]+g.nw[v] <= maxLoad[p] {
					bestPart, bestGain = p, gain
				}
			}
			// Balance-driven move: if v's part is overloaded, allow a
			// zero-gain move to the relatively lightest feasible part.
			if bestPart == from && loads[from] > maxLoad[from] {
				light := from
				rel := func(p int) float64 { return loads[p] / opts.targetFraction(p) }
				for p := 0; p < opts.Parts; p++ {
					if rel(p) < rel(light) {
						light = p
					}
				}
				if light != from {
					bestPart = light
				}
			}
			if bestPart != from {
				loads[from] -= g.nw[v]
				loads[bestPart] += g.nw[v]
				part[v] = bestPart
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// Cut returns the total weight of edges crossing parts under the placement.
func Cut(g *stream.Graph, p *stream.Placement) float64 {
	traffic := g.EdgeTraffic()
	var cut float64
	for ei, e := range g.Edges {
		if p.Assign[e.Src] != p.Assign[e.Dst] {
			cut += traffic[ei]
		}
	}
	return cut
}

// Oracle sweeps the number of parts from 1 to cluster.Devices, partitions
// for each, simulates, and returns the best placement with its part count
// (the paper's Metis-Oracle baseline for the excess-device setting).
func Oracle(g *stream.Graph, cluster sim.Cluster, seed int64) (*stream.Placement, int) {
	var best *stream.Placement
	bestK := 1
	bestR := -1.0
	for k := 1; k <= cluster.Devices; k++ {
		p := Partition(g, Options{Parts: k, Seed: seed})
		p.Devices = cluster.Devices // placement lives in the full cluster
		r := sim.Reward(g, p, cluster)
		if r > bestR {
			best, bestK, bestR = p, k, r
		}
	}
	return best, bestK
}

// InferCollapsedEdges converts a partition into edge-collapse decisions via
// the paper's maximum-spanning-tree construction (§IV-C): within every
// part, the maximum spanning forest over intra-part edges (by traffic) is
// marked collapsed, so collapsing exactly reproduces the part's connected
// components as super-nodes.
func InferCollapsedEdges(g *stream.Graph, p *stream.Placement) []bool {
	traffic := g.EdgeTraffic()
	type cand struct {
		ei int
		w  float64
	}
	var cands []cand
	for ei, e := range g.Edges {
		if p.Assign[e.Src] == p.Assign[e.Dst] {
			cands = append(cands, cand{ei, traffic[ei]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].ei < cands[b].ei
	})
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	collapse := make([]bool, g.NumEdges())
	for _, c := range cands {
		e := g.Edges[c.ei]
		ru, rv := find(e.Src), find(e.Dst)
		if ru != rv {
			parent[ru] = rv
			collapse[c.ei] = true
		}
	}
	return collapse
}

// CoarsenHEM exposes Metis's own coarsening step on a stream graph: it
// repeatedly applies heavy-edge matching until the graph has at most
// target nodes, and returns the resulting coarse map. Used for the Fig. 9
// comparison of Metis coarsening vs the learned model.
func CoarsenHEM(g *stream.Graph, target int, seed int64) *stream.CoarseMap {
	rng := rand.New(rand.NewSource(seed))
	wg := fromStream(g)
	n := g.NumNodes()
	super := make([]int, n)
	for i := range super {
		super[i] = i
	}
	cur := wg
	for cur.n() > target {
		coarse, m := heavyEdgeMatch(cur, rng)
		if coarse.n() >= cur.n() {
			break
		}
		for v := 0; v < n; v++ {
			super[v] = m[super[v]]
		}
		cur = coarse
	}
	// Compact ids in first-seen order for determinism.
	remap := make(map[int]int)
	next := 0
	out := make([]int, n)
	for v, s := range super {
		id, ok := remap[s]
		if !ok {
			id = next
			next++
			remap[s] = id
		}
		out[v] = id
	}
	return &stream.CoarseMap{Super: out, NumSuper: next}
}
