// Package metis implements a multilevel graph partitioner with the same
// algorithmic skeleton as Metis [16]: heavy-edge-matching coarsening, a
// greedy initial partition of the coarsest graph, and
// Fiduccia–Mattheyses-style boundary refinement during uncoarsening, under
// a balance constraint. It is used both as the strongest non-learned
// baseline in the paper's evaluation and as the partitioning stage of the
// coarsening–partitioning framework.
//
// Node weights are operator CPU loads (instructions/second) and edge
// weights are steady-state traffic (bits/second), so minimizing the edge
// cut subject to balance directly targets the two simulator bottlenecks.
package metis

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Partitioner work counters (observation only; MetisPartition is in the
// bench gate, so the cost is one atomic add per call plus one per refine
// pass — noise next to the multilevel pipeline itself).
var (
	obsPartitions   = obs.Default.Counter("metis_partitions_total")
	obsRefinePasses = obs.Default.Counter("metis_refine_passes_total")
)

// Options tunes the partitioner.
type Options struct {
	// Parts is the number of partitions (devices) to produce.
	Parts int
	// Imbalance is the allowed fractional overload per part (Metis default
	// ~0.03; we default to 0.05).
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// nodes; 0 selects max(15×Parts, 30).
	CoarsenTo int
	// RefinePasses bounds FM passes per level; 0 selects 8.
	RefinePasses int
	// Seed drives the randomized matching and refinement orders.
	Seed int64
	// TargetFractions optionally sets each part's share of the total node
	// weight (heterogeneous devices); nil means uniform shares. Must sum
	// to ~1 and have length Parts.
	TargetFractions []float64
}

// targetFraction returns part p's share of the total weight.
func (o Options) targetFraction(p int) float64 {
	if o.TargetFractions != nil {
		return o.TargetFractions[p]
	}
	return 1 / float64(o.Parts)
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 15 * o.Parts
		if o.CoarsenTo < 30 {
			o.CoarsenTo = 30
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// wgraph is an undirected weighted graph in compressed sparse row form:
// node v's neighbors are nbr[off[v]:off[v+1]] (ascending ids) with edge
// weights in the parallel w slice. Parallel edges are merged and
// self-loops dropped at construction. CSR replaces the earlier
// map-per-node adjacency: it allocates four slices per graph instead of
// one map per node (the dominant allocation source of the whole
// coarsen→partition pipeline) and makes every neighbor iteration
// deterministic, so matching and refinement no longer depend on map
// iteration order.
type wgraph struct {
	nw  []float64
	off []int32 // len n+1; node v's adjacency is [off[v], off[v+1])
	nbr []int32
	w   []float64
}

func (g *wgraph) n() int { return len(g.nw) }

func (g *wgraph) totalWeight() float64 {
	var s float64
	for _, w := range g.nw {
		s += w
	}
	return s
}

// buildWGraph assembles a CSR wgraph from undirected edge triples
// (eu[i], ev[i], ew[i]). Self-loops are dropped and parallel edges
// merged; each node's neighbor list ends up sorted ascending. The input
// slices are not retained (nw is).
func buildWGraph(nw []float64, eu, ev []int32, ew []float64) *wgraph {
	n := len(nw)
	// Degree count (both directions), then prefix-sum into offsets.
	cnt := make([]int32, n+1)
	for i := range eu {
		if eu[i] != ev[i] {
			cnt[eu[i]+1]++
			cnt[ev[i]+1]++
		}
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	total := cnt[n]
	nbr := make([]int32, total)
	w := make([]float64, total)
	cur := make([]int32, n)
	copy(cur, cnt[:n])
	for i := range eu {
		u, v := eu[i], ev[i]
		if u == v {
			continue
		}
		nbr[cur[u]], w[cur[u]] = v, ew[i]
		cur[u]++
		nbr[cur[v]], w[cur[v]] = u, ew[i]
		cur[v]++
	}
	// Per-node: stable insertion sort by neighbor id (degrees are small;
	// stability keeps duplicate-merge summation order deterministic),
	// then compact parallel edges in place. The write cursor wp never
	// overtakes the read cursor, so compaction is safe in one pass.
	off := make([]int32, n+1)
	var wp int32
	var start int32
	for v := 0; v < n; v++ {
		end := cnt[v+1]
		for i := start + 1; i < end; i++ {
			nv, wv := nbr[i], w[i]
			j := i
			for j > start && nbr[j-1] > nv {
				nbr[j], w[j] = nbr[j-1], w[j-1]
				j--
			}
			nbr[j], w[j] = nv, wv
		}
		off[v] = wp
		for i := start; i < end; i++ {
			if wp > off[v] && nbr[wp-1] == nbr[i] {
				w[wp-1] += w[i]
			} else {
				nbr[wp], w[wp] = nbr[i], w[i]
				wp++
			}
		}
		start = end
	}
	off[n] = wp
	return &wgraph{nw: nw, off: off, nbr: nbr[:wp], w: w[:wp]}
}

// fromStream converts a stream graph into the undirected weighted form.
func fromStream(g *stream.Graph) *wgraph {
	n := g.NumNodes()
	nw := make([]float64, n)
	copy(nw, g.NodeLoad())
	traffic := g.EdgeTraffic()
	eu := make([]int32, len(g.Edges))
	ev := make([]int32, len(g.Edges))
	for ei, e := range g.Edges {
		eu[ei], ev[ei] = int32(e.Src), int32(e.Dst)
	}
	return buildWGraph(nw, eu, ev, traffic)
}

// Partition assigns each operator of g to one of opts.Parts devices.
func Partition(g *stream.Graph, opts Options) *stream.Placement {
	obsPartitions.Inc()
	opts = opts.withDefaults()
	wg := fromStream(g)
	part := partitionWGraph(wg, opts)
	p := stream.NewPlacement(g.NumNodes(), opts.Parts)
	copy(p.Assign, part)
	return p
}

// partitionWGraph runs the full multilevel pipeline on a weighted graph.
func partitionWGraph(wg *wgraph, opts Options) []int {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Parts <= 1 {
		return make([]int, wg.n())
	}
	// Coarsening phase.
	type level struct {
		g    *wgraph
		map_ []int // fine node → coarse node (nil at the coarsest level)
	}
	levels := []level{{g: wg}}
	cur := wg
	for cur.n() > opts.CoarsenTo {
		coarse, m := heavyEdgeMatch(cur, rng)
		if coarse.n() >= cur.n() { // no progress; stop
			break
		}
		levels[len(levels)-1].map_ = m
		levels = append(levels, level{g: coarse})
		cur = coarse
	}
	// Initial partition of the coarsest graph.
	part := initialPartition(cur, opts, rng)
	refine(cur, part, opts, rng)
	// Uncoarsening with refinement.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		finePart := make([]int, fine.g.n())
		for v := range finePart {
			finePart[v] = part[fine.map_[v]]
		}
		part = finePart
		refine(fine.g, part, opts, rng)
	}
	return part
}

// heavyEdgeMatch performs one round of randomized heavy-edge matching and
// returns the coarse graph plus the fine→coarse map.
func heavyEdgeMatch(g *wgraph, rng *rand.Rand) (*wgraph, []int) {
	n := g.n()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, -1.0
		for i := g.off[v]; i < g.off[v+1]; i++ {
			if u := int(g.nbr[i]); match[u] == -1 && g.w[i] > bestW {
				best, bestW = u, g.w[i]
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	// Number the coarse nodes.
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = next
		if match[v] != v {
			cmap[match[v]] = next
		}
		next++
	}
	cnw := make([]float64, next)
	for v := 0; v < n; v++ {
		cnw[cmap[v]] += g.nw[v]
	}
	eu := make([]int32, 0, len(g.nbr)/2)
	ev := make([]int32, 0, len(g.nbr)/2)
	ew := make([]float64, 0, len(g.nbr)/2)
	for v := 0; v < n; v++ {
		for i := g.off[v]; i < g.off[v+1]; i++ {
			if u := int(g.nbr[i]); v < u { // each undirected edge once
				cu, cv := cmap[v], cmap[u]
				if cu != cv {
					eu = append(eu, int32(cu))
					ev = append(ev, int32(cv))
					ew = append(ew, g.w[i])
				}
			}
		}
	}
	return buildWGraph(cnw, eu, ev, ew), cmap
}

// initialPartition greedily assigns the coarsest nodes: heaviest first,
// each to the part minimizing (load, then cut increase).
func initialPartition(g *wgraph, opts Options, rng *rand.Rand) []int {
	n := g.n()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.nw[order[a]] > g.nw[order[b]] })
	loads := make([]float64, opts.Parts)
	gain := make([]float64, opts.Parts) // reused across nodes
	for _, v := range order {
		// Connectivity gain toward each part.
		for p := range gain {
			gain[p] = 0
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			if pu := part[g.nbr[i]]; pu >= 0 {
				gain[pu] += g.w[i]
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for p := 0; p < opts.Parts; p++ {
			// Prefer low *relative* load (normalized by the part's target
			// share, which handles heterogeneous devices), break ties by
			// connectivity.
			score := gain[p] - loads[p]/opts.targetFraction(p)/float64(opts.Parts)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		_ = rng
		part[v] = best
		loads[best] += g.nw[v]
	}
	return part
}

// refine runs FM-style boundary passes: move a node to the part with the
// highest positive cut gain that keeps balance.
func refine(g *wgraph, part []int, opts Options, rng *rand.Rand) {
	n := g.n()
	total := g.totalWeight()
	maxLoad := make([]float64, opts.Parts)
	for p := 0; p < opts.Parts; p++ {
		maxLoad[p] = (1 + opts.Imbalance) * total * opts.targetFraction(p)
	}
	loads := make([]float64, opts.Parts)
	for v := 0; v < n; v++ {
		loads[part[v]] += g.nw[v]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	conn := make([]float64, opts.Parts) // reused across nodes
	for pass := 0; pass < opts.RefinePasses; pass++ {
		obsRefinePasses.Inc()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		improved := false
		for _, v := range order {
			from := part[v]
			// Connectivity of v toward each part (dense reusable buffer;
			// zero entries yield gain ≤ 0 and so never win the strict
			// comparison below, matching the old sparse behavior).
			for p := range conn {
				conn[p] = 0
			}
			for i := g.off[v]; i < g.off[v+1]; i++ {
				conn[part[g.nbr[i]]] += g.w[i]
			}
			bestPart, bestGain := from, 0.0
			for p := 0; p < opts.Parts; p++ {
				if p == from {
					continue
				}
				gain := conn[p] - conn[from]
				if gain > bestGain && loads[p]+g.nw[v] <= maxLoad[p] {
					bestPart, bestGain = p, gain
				}
			}
			// Balance-driven move: if v's part is overloaded, allow a
			// zero-gain move to the relatively lightest feasible part.
			if bestPart == from && loads[from] > maxLoad[from] {
				light := from
				rel := func(p int) float64 { return loads[p] / opts.targetFraction(p) }
				for p := 0; p < opts.Parts; p++ {
					if rel(p) < rel(light) {
						light = p
					}
				}
				if light != from {
					bestPart = light
				}
			}
			if bestPart != from {
				loads[from] -= g.nw[v]
				loads[bestPart] += g.nw[v]
				part[v] = bestPart
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// Cut returns the total weight of edges crossing parts under the placement.
func Cut(g *stream.Graph, p *stream.Placement) float64 {
	traffic := g.EdgeTraffic()
	var cut float64
	for ei, e := range g.Edges {
		if p.Assign[e.Src] != p.Assign[e.Dst] {
			cut += traffic[ei]
		}
	}
	return cut
}

// Oracle sweeps the number of parts from 1 to cluster.Devices, partitions
// for each, simulates, and returns the best placement with its part count
// (the paper's Metis-Oracle baseline for the excess-device setting).
func Oracle(g *stream.Graph, cluster sim.Cluster, seed int64) (*stream.Placement, int) {
	var best *stream.Placement
	bestK := 1
	bestR := -1.0
	for k := 1; k <= cluster.Devices; k++ {
		p := Partition(g, Options{Parts: k, Seed: seed})
		p.Devices = cluster.Devices // placement lives in the full cluster
		r := sim.Reward(g, p, cluster)
		if r > bestR {
			best, bestK, bestR = p, k, r
		}
	}
	return best, bestK
}

// InferCollapsedEdges converts a partition into edge-collapse decisions via
// the paper's maximum-spanning-tree construction (§IV-C): within every
// part, the maximum spanning forest over intra-part edges (by traffic) is
// marked collapsed, so collapsing exactly reproduces the part's connected
// components as super-nodes.
func InferCollapsedEdges(g *stream.Graph, p *stream.Placement) []bool {
	traffic := g.EdgeTraffic()
	type cand struct {
		ei int
		w  float64
	}
	var cands []cand
	for ei, e := range g.Edges {
		if p.Assign[e.Src] == p.Assign[e.Dst] {
			cands = append(cands, cand{ei, traffic[ei]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].ei < cands[b].ei
	})
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	collapse := make([]bool, g.NumEdges())
	for _, c := range cands {
		e := g.Edges[c.ei]
		ru, rv := find(e.Src), find(e.Dst)
		if ru != rv {
			parent[ru] = rv
			collapse[c.ei] = true
		}
	}
	return collapse
}

// CoarsenHEM exposes Metis's own coarsening step on a stream graph: it
// repeatedly applies heavy-edge matching until the graph has at most
// target nodes, and returns the resulting coarse map. Used for the Fig. 9
// comparison of Metis coarsening vs the learned model.
func CoarsenHEM(g *stream.Graph, target int, seed int64) *stream.CoarseMap {
	rng := rand.New(rand.NewSource(seed))
	wg := fromStream(g)
	n := g.NumNodes()
	super := make([]int, n)
	for i := range super {
		super[i] = i
	}
	cur := wg
	for cur.n() > target {
		coarse, m := heavyEdgeMatch(cur, rng)
		if coarse.n() >= cur.n() {
			break
		}
		for v := 0; v < n; v++ {
			super[v] = m[super[v]]
		}
		cur = coarse
	}
	// Compact ids in first-seen order for determinism.
	remap := make(map[int]int)
	next := 0
	out := make([]int, n)
	for v, s := range super {
		id, ok := remap[s]
		if !ok {
			id = next
			next++
			remap[s] = id
		}
		out[v] = id
	}
	return &stream.CoarseMap{Super: out, NumSuper: next}
}
