package metis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/stream"
)

func testGraph(seed int64, minN, maxN int) *stream.Graph {
	c := sim.DefaultCluster(5, 1000)
	cfg := gen.DefaultConfig(minN, maxN, 10_000, c)
	return gen.Generate(cfg, rand.New(rand.NewSource(seed)))
}

func TestPartitionValidAndBalanced(t *testing.T) {
	g := testGraph(1, 60, 100)
	opts := Options{Parts: 4, Seed: 1}
	p := Partition(g, opts)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	load := g.NodeLoad()
	parts := make([]float64, 4)
	var total float64
	for v, d := range p.Assign {
		parts[d] += load[v]
		total += load[v]
	}
	maxAllowed := (1 + 0.05) * total / 4
	for d, l := range parts {
		// Allow slack for indivisible heavy nodes: a part may exceed the
		// balance constraint by at most the heaviest single node.
		var heaviest float64
		for _, x := range load {
			if x > heaviest {
				heaviest = x
			}
		}
		if l > maxAllowed+heaviest {
			t.Fatalf("part %d load %.3g exceeds %.3g", d, l, maxAllowed+heaviest)
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := testGraph(2, 20, 30)
	p := Partition(g, Options{Parts: 1, Seed: 1})
	for _, d := range p.Assign {
		if d != 0 {
			t.Fatal("single part must assign everything to 0")
		}
	}
}

func TestPartitionBeatsRoundRobinCut(t *testing.T) {
	g := testGraph(3, 80, 120)
	k := 4
	mp := Partition(g, Options{Parts: k, Seed: 1})
	rr := stream.NewPlacement(g.NumNodes(), k)
	for v := range rr.Assign {
		rr.Assign[v] = v % k
	}
	if Cut(g, mp) >= Cut(g, rr) {
		t.Fatalf("metis cut %.3g not better than round-robin %.3g", Cut(g, mp), Cut(g, rr))
	}
}

func TestPartitionBeatsRandomReward(t *testing.T) {
	c := sim.DefaultCluster(5, 1000)
	g := testGraph(4, 80, 120)
	mp := Partition(g, Options{Parts: 5, Seed: 1})
	mp.Devices = 5
	rng := rand.New(rand.NewSource(9))
	var bestRandom float64
	for trial := 0; trial < 5; trial++ {
		rp := stream.NewPlacement(g.NumNodes(), 5)
		for v := range rp.Assign {
			rp.Assign[v] = rng.Intn(5)
		}
		if r := sim.Reward(g, rp, c); r > bestRandom {
			bestRandom = r
		}
	}
	if sim.Reward(g, mp, c) <= bestRandom {
		t.Fatalf("metis reward %.3g not better than best of 5 random %.3g",
			sim.Reward(g, mp, c), bestRandom)
	}
}

func TestOracleNeverWorseThanFullMetis(t *testing.T) {
	c := sim.DefaultCluster(5, 1000)
	g := testGraph(5, 40, 80)
	full := Partition(g, Options{Parts: c.Devices, Seed: 3})
	full.Devices = c.Devices
	op, k := Oracle(g, c, 3)
	if k < 1 || k > c.Devices {
		t.Fatalf("oracle picked k=%d", k)
	}
	if sim.Reward(g, op, c) < sim.Reward(g, full, c)-1e-12 {
		t.Fatal("oracle worse than fixed-k metis")
	}
}

func TestInferCollapsedEdgesReproducesGrouping(t *testing.T) {
	g := testGraph(6, 30, 60)
	p := Partition(g, Options{Parts: 3, Seed: 2})
	collapse := InferCollapsedEdges(g, p)
	cm := stream.CollapseEdges(g, collapse)
	// Every super-node's members must lie in one part, and the super-nodes
	// must exactly be the connected components of the intra-part subgraphs.
	for _, members := range cm.Members() {
		d := p.Assign[members[0]]
		for _, v := range members[1:] {
			if p.Assign[v] != d {
				t.Fatal("super-node spans two parts")
			}
		}
	}
	// No collapsed edge crosses parts.
	for ei, c := range collapse {
		if c && p.Assign[g.Edges[ei].Src] != p.Assign[g.Edges[ei].Dst] {
			t.Fatal("collapsed edge crosses parts")
		}
	}
}

func TestInferCollapsedPrefersHeavyEdges(t *testing.T) {
	// Construct a triangle-ish graph in one part where the MST must pick
	// the two heaviest of three intra-part edges.
	g := stream.NewGraph(100)
	for i := 0; i < 3; i++ {
		g.AddNode(stream.Node{IPT: 1, Payload: 1})
	}
	e1 := g.AddEdge(0, 1, 10)   // traffic 1000
	e2 := g.AddEdge(0, 2, 1000) // traffic 100000
	e3 := g.AddEdge(1, 2, 100)  // traffic 10000
	p := stream.NewPlacement(3, 1)
	collapse := InferCollapsedEdges(g, p)
	if !collapse[e2] || !collapse[e3] || collapse[e1] {
		t.Fatalf("collapse = %v, want heaviest two", collapse)
	}
}

func TestCoarsenHEMReducesToTarget(t *testing.T) {
	g := testGraph(7, 100, 150)
	target := 20
	cm := CoarsenHEM(g, target, 1)
	if cm.NumSuper > g.NumNodes() {
		t.Fatal("coarsening grew the graph")
	}
	// HEM halves per round; it should get within 2× of the target.
	if cm.NumSuper > 2*target {
		t.Fatalf("coarsened to %d, target %d", cm.NumSuper, target)
	}
	if cm.NumSuper < 1 {
		t.Fatal("empty coarse graph")
	}
}

func TestCutComputation(t *testing.T) {
	g := stream.NewGraph(10)
	g.AddNode(stream.Node{IPT: 1, Payload: 100})
	g.AddNode(stream.Node{IPT: 1, Payload: 100})
	g.AddEdge(0, 1, 100)
	p := stream.NewPlacement(2, 2)
	if Cut(g, p) != 0 {
		t.Fatal("intra-device edge counted as cut")
	}
	p.Assign[1] = 1
	if math.Abs(Cut(g, p)-1000) > 1e-9 { // 100 payload × 10 rate
		t.Fatalf("cut = %g", Cut(g, p))
	}
}

// Property: partitions are always complete and in range, for random
// graphs and part counts.
func TestQuickPartitionValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(seed, 10, 60)
		k := 2 + rng.Intn(6)
		p := Partition(g, Options{Parts: k, Seed: seed})
		if len(p.Assign) != g.NumNodes() {
			return false
		}
		for _, d := range p.Assign {
			if d < 0 || d >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: InferCollapsedEdges never collapses a cross-part edge and the
// induced collapse is acyclic per part (spanning forest ⇒ #collapsed <
// #nodes).
func TestQuickInferCollapsedForest(t *testing.T) {
	f := func(seed int64) bool {
		g := testGraph(seed+1000, 20, 80)
		p := Partition(g, Options{Parts: 4, Seed: seed})
		collapse := InferCollapsedEdges(g, p)
		count := 0
		for ei, c := range collapse {
			if !c {
				continue
			}
			count++
			if p.Assign[g.Edges[ei].Src] != p.Assign[g.Edges[ei].Dst] {
				return false
			}
		}
		return count < g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionHeterogeneousTargets(t *testing.T) {
	g := testGraph(11, 80, 120)
	// Device 0 should receive ~4x the load of each of the others.
	fr := []float64{0.5, 0.125, 0.125, 0.125, 0.125}
	p := Partition(g, Options{Parts: 5, Seed: 1, TargetFractions: fr})
	load := g.NodeLoad()
	parts := make([]float64, 5)
	var total float64
	for v, d := range p.Assign {
		parts[d] += load[v]
		total += load[v]
	}
	// Part 0's share must be clearly larger than a uniform share.
	if parts[0]/total < 0.3 {
		t.Fatalf("big device got %.2f of load, want ≥0.3 (target 0.5)", parts[0]/total)
	}
	for d := 1; d < 5; d++ {
		if parts[d]/total > 0.3 {
			t.Fatalf("small device %d got %.2f of load", d, parts[d]/total)
		}
	}
}

func TestPartitionRBValidAndBalanced(t *testing.T) {
	g := testGraph(21, 60, 100)
	for _, k := range []int{2, 3, 5, 7} {
		p := PartitionRB(g, Options{Parts: k, Seed: 1})
		if err := p.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		load := g.NodeLoad()
		parts := make([]float64, k)
		var total, heaviest float64
		for v, d := range p.Assign {
			parts[d] += load[v]
			total += load[v]
			if load[v] > heaviest {
				heaviest = load[v]
			}
		}
		// Recursive bisection compounds imbalance across levels; allow a
		// generous bound of 2x the uniform share plus one node.
		for d, l := range parts {
			if l > 2*total/float64(k)+heaviest {
				t.Fatalf("k=%d part %d load %.3g of total %.3g", k, d, l, total)
			}
		}
	}
}

func TestPartitionRBSinglePart(t *testing.T) {
	g := testGraph(22, 20, 40)
	p := PartitionRB(g, Options{Parts: 1, Seed: 1})
	for _, d := range p.Assign {
		if d != 0 {
			t.Fatal("single part")
		}
	}
}

func TestPartitionRBReasonableCut(t *testing.T) {
	// Recursive bisection should land in the same quality class as direct
	// k-way on these workloads (within 3x cut), and far better than a
	// round-robin shredding.
	g := testGraph(23, 80, 120)
	k := 4
	rb := PartitionRB(g, Options{Parts: k, Seed: 1})
	kw := Partition(g, Options{Parts: k, Seed: 1})
	rr := stream.NewPlacement(g.NumNodes(), k)
	for v := range rr.Assign {
		rr.Assign[v] = v % k
	}
	if Cut(g, rb) > 3*Cut(g, kw) {
		t.Fatalf("bisection cut %.3g vs k-way %.3g", Cut(g, rb), Cut(g, kw))
	}
	if Cut(g, rb) >= Cut(g, rr) {
		t.Fatalf("bisection cut %.3g no better than round robin %.3g", Cut(g, rb), Cut(g, rr))
	}
}
