// bisect.go implements recursive bisection — the strategy the original
// Metis paper describes for k-way partitioning before direct k-way
// refinement existed. The graph is split in two balanced halves
// (recursively), each bisection running the same multilevel pipeline with
// Parts=2. It serves as an algorithmic ablation of the partitioning stage:
// PartitionRB vs Partition quantifies how much the direct k-way refinement
// matters on stream workloads.
package metis

import (
	"sort"

	"repro/internal/stream"
)

// PartitionRB assigns operators to parts by recursive bisection.
func PartitionRB(g *stream.Graph, opts Options) *stream.Placement {
	opts = opts.withDefaults()
	wg := fromStream(g)
	n := wg.n()
	assign := make([]int, n)
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	bisect(wg, nodes, 0, opts.Parts, assign, opts)
	p := stream.NewPlacement(n, opts.Parts)
	copy(p.Assign, assign)
	return p
}

// bisect splits `nodes` of wg into parts [base, base+parts) recursively.
func bisect(g *wgraph, nodes []int, base, parts int, assign []int, opts Options) {
	if parts <= 1 || len(nodes) <= 1 {
		for _, v := range nodes {
			assign[v] = base
		}
		return
	}
	// Split the part count as evenly as possible; the left side's weight
	// target is proportional to its share of parts.
	leftParts := parts / 2
	rightParts := parts - leftParts
	leftFrac := float64(leftParts) / float64(parts)

	sub := induced(g, nodes)
	subOpts := opts
	subOpts.Parts = 2
	subOpts.TargetFractions = []float64{leftFrac, 1 - leftFrac}
	subOpts.CoarsenTo = 0 // re-derive for 2 parts
	subOpts = subOpts.withDefaults()
	part := partitionWGraph(sub, subOpts)

	var left, right []int
	for i, v := range nodes {
		if part[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Degenerate split (all nodes one side): fall back to a weighted
	// round-robin to guarantee progress.
	if len(left) == 0 || len(right) == 0 {
		left, right = left[:0], right[:0]
		order := append([]int(nil), nodes...)
		sort.Slice(order, func(a, b int) bool { return g.nw[order[a]] > g.nw[order[b]] })
		var wl, wr float64
		for _, v := range order {
			if wl/leftFrac <= wr/(1-leftFrac) {
				left = append(left, v)
				wl += g.nw[v]
			} else {
				right = append(right, v)
				wr += g.nw[v]
			}
		}
	}
	bisect(g, left, base, leftParts, assign, opts)
	bisect(g, right, base+leftParts, rightParts, assign, opts)
}

// induced builds the subgraph of g on the given nodes (renumbered 0..m-1),
// dropping edges that leave the node set.
func induced(g *wgraph, nodes []int) *wgraph {
	idx := make([]int32, g.n())
	for i := range idx {
		idx[i] = -1
	}
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	nw := make([]float64, len(nodes))
	var eu, ev []int32
	var ew []float64
	for i, v := range nodes {
		nw[i] = g.nw[v]
		for k := g.off[v]; k < g.off[v+1]; k++ {
			if u := int(g.nbr[k]); v < u {
				if j := idx[u]; j >= 0 {
					eu = append(eu, int32(i))
					ev = append(ev, j)
					ew = append(ew, g.w[k])
				}
			}
		}
	}
	return buildWGraph(nw, eu, ev, ew)
}
