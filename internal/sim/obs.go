// obs.go wires the simulators into the process-wide metrics registry.
// The fluid solver is the RL reward hot path, so its instrumentation is
// exactly one atomic increment per call; the DES accumulates its event
// count locally and flushes once per run. Counters observe, never steer:
// simulator results are unaffected.
package sim

import "repro/internal/obs"

var (
	obsFluidRuns     = obs.Default.Counter("sim_fluid_runs_total")
	obsIterativeRuns = obs.Default.Counter("sim_iterative_runs_total")
	obsDESRuns       = obs.Default.Counter("sim_des_runs_total")
	obsDESEvents     = obs.Default.Counter("sim_des_events_total")
	// Per-quantum total tuples queued on the scheduled device — the DES
	// backpressure signature. Bounds span one tuple to the default
	// per-operator queue limit (2048).
	obsDESQueueDepth = obs.Default.Histogram("sim_des_device_queue_tuples",
		[]float64{1, 8, 64, 256, 1024, 2048, 8192})
)
