// des.go implements the discrete-event solver — the closest of the three
// simulator modes to CEPSim's actual mechanics [38]: operators hold input
// queues, devices schedule resident operators round-robin in fixed time
// quanta, links transfer tuple batches at finite bandwidth, and bounded
// queues exert backpressure on upstream operators all the way to the
// sources. Throughput is measured, not solved for.
//
// The fluid solver remains the RL reward (it is ~100× faster and
// rank-consistent — see TestDESRankAgreesWithFluid), while the DES mode
// serves as a higher-fidelity cross-check, mirroring how the paper uses
// CEPSim versus a real platform.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/stream"
)

// DESConfig tunes the discrete-event solver.
type DESConfig struct {
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Quantum is the device scheduling time slice in seconds.
	Quantum float64
	// QueueTuples bounds each operator's input queue (tuples); full queues
	// push back on upstream emitters.
	QueueTuples float64
	// WarmupFrac is the fraction of the horizon excluded from measurement.
	WarmupFrac float64
}

// DefaultDESConfig returns a configuration that converges for the
// workloads in this repository within milliseconds of wall time.
func DefaultDESConfig() DESConfig {
	return DESConfig{Horizon: 4, Quantum: 0.01, QueueTuples: 2048, WarmupFrac: 0.25}
}

// desEvent is a scheduled quantum boundary for one device.
type desEvent struct {
	at     float64
	device int
	seq    int64
}

type desHeap []desEvent

func (h desHeap) Len() int      { return len(h) }
func (h desHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h desHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h *desHeap) Push(x any) { *h = append(*h, x.(desEvent)) }
func (h *desHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SimulateDES runs the discrete-event solver and returns the measured
// steady-state result. The graph must be acyclic (the DES is run on
// original graphs, not coarse ones).
func SimulateDES(g *stream.Graph, p *stream.Placement, c Cluster, cfg DESConfig) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	if p.Devices > c.Devices {
		return Result{}, fmt.Errorf("sim: placement uses %d devices, cluster has %d", p.Devices, c.Devices)
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, fmt.Errorf("sim: DES requires an acyclic graph: %w", err)
	}
	if cfg.Horizon <= 0 || cfg.Quantum <= 0 || cfg.QueueTuples <= 0 {
		return Result{}, fmt.Errorf("sim: invalid DES config %+v", cfg)
	}

	n := g.NumNodes()
	// Fluid-style per-tuple demands.
	queues := make([]float64, n) // tuples waiting at each operator
	blocked := make([]bool, n)   // operator stalled by a full downstream queue
	processed := make([]float64, n)
	sourceEmitted := 0.0
	sourceDropped := 0.0

	// Per-device operator lists in topological order (drain downstream
	// first within a quantum so tuples flow through colocated chains).
	order, _ := g.TopoOrder()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	devOps := make([][]int, c.Devices)
	for v := 0; v < n; v++ {
		devOps[p.Assign[v]] = append(devOps[p.Assign[v]], v)
	}
	for _, ops := range devOps {
		// reverse topological order: sinks first
		for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
			ops[i], ops[j] = ops[j], ops[i]
		}
		sortByPosDesc(ops, pos)
	}

	isSource := make([]bool, n)
	for _, s := range g.Sources() {
		isSource[s] = true
	}

	// Per-device NIC byte budgets per quantum (egress and ingress).
	egressBudget := make([]float64, c.Devices)
	ingressBudget := make([]float64, c.Devices)

	events := &desHeap{}
	var seq int64
	for d := 0; d < c.Devices; d++ {
		heap.Push(events, desEvent{at: 0, device: d, seq: seq})
		seq++
	}

	warmupEnd := cfg.Horizon * cfg.WarmupFrac
	measured := make([]float64, n) // tuples processed after warmup
	var measuredSourceIn float64

	emit := func(v int, tuples float64, now float64) float64 {
		// Try to push `tuples` output tuples down every out-edge; returns
		// the fraction actually emitted (limited by the tightest
		// downstream queue and by link budgets for cross-device edges).
		frac := 1.0
		for _, ei := range g.OutEdges(v) {
			e := g.Edges[ei]
			room := cfg.QueueTuples - queues[e.Dst]
			if room < tuples*frac {
				frac = math.Max(0, room/tuples)
			}
			if p.Assign[e.Src] != p.Assign[e.Dst] {
				// Link budget in bits for this quantum.
				bits := tuples * frac * e.Payload
				if bits > 0 {
					avail := math.Min(egressBudget[p.Assign[e.Src]], ingressBudget[p.Assign[e.Dst]])
					if avail < bits {
						frac *= avail / bits
					}
				}
			}
		}
		if frac <= 0 {
			return 0
		}
		out := tuples * frac
		for _, ei := range g.OutEdges(v) {
			e := g.Edges[ei]
			queues[e.Dst] += out
			if p.Assign[e.Src] != p.Assign[e.Dst] {
				bits := out * e.Payload
				egressBudget[p.Assign[e.Src]] -= bits
				ingressBudget[p.Assign[e.Dst]] -= bits
			}
		}
		_ = now
		return frac
	}

	var eventCount uint64
	for events.Len() > 0 {
		ev := heap.Pop(events).(desEvent)
		if ev.at >= cfg.Horizon {
			continue
		}
		eventCount++
		d := ev.device
		// Backpressure signature: total tuples queued on this device at
		// quantum start (observed, never fed back into the simulation).
		var depth float64
		for _, v := range devOps[d] {
			depth += queues[v]
		}
		obsDESQueueDepth.Observe(depth)
		// Refill this device's budgets for the quantum.
		instr := c.CapacityOf(d) * cfg.Quantum
		egressBudget[d] = c.Bandwidth * cfg.Quantum
		ingressBudget[d] = c.Bandwidth * cfg.Quantum

		// Sources ingest at the source rate, subject to queue room.
		for _, v := range devOps[d] {
			if !isSource[v] {
				continue
			}
			arrive := g.SourceRate * cfg.Quantum
			room := cfg.QueueTuples - queues[v]
			took := math.Min(arrive, math.Max(0, room))
			queues[v] += took
			sourceEmitted += took
			sourceDropped += arrive - took
			if ev.at >= warmupEnd {
				measuredSourceIn += arrive
			}
		}
		// Round-robin processing until the instruction budget is spent or
		// nothing can make progress.
		progress := true
		for instr > 1e-9 && progress {
			progress = false
			for _, v := range devOps[d] {
				if queues[v] <= 1e-12 {
					continue
				}
				ipt := g.Nodes[v].IPT
				var can float64
				if ipt <= 0 {
					can = queues[v]
				} else {
					can = math.Min(queues[v], instr/ipt)
				}
				if can <= 1e-12 {
					continue
				}
				outTuples := can * g.Nodes[v].Selectivity
				frac := 1.0
				if len(g.OutEdges(v)) > 0 {
					frac = emit(v, outTuples, ev.at)
				}
				if frac <= 0 {
					blocked[v] = true
					continue
				}
				did := can * frac
				queues[v] -= did
				instr -= did * ipt
				processed[v] += did
				if ev.at >= warmupEnd {
					measured[v] += did
				}
				blocked[v] = false
				if did > 1e-12 {
					progress = true
				}
			}
		}
		heap.Push(events, desEvent{at: ev.at + cfg.Quantum, device: d, seq: seq})
		seq++
	}

	obsDESRuns.Inc()
	obsDESEvents.Add(eventCount)

	// Throughput: measured sink completion rate normalized by the ideal
	// sink rate, scaled to the source rate (the same relative measure the
	// fluid solver reports).
	ideal := g.SteadyRates()
	window := cfg.Horizon - warmupEnd
	var relSum float64
	var sinks int
	for _, v := range g.Sinks() {
		inRate := 0.0
		for _, ei := range g.InEdges(v) {
			inRate += ideal[g.Edges[ei].Src]
		}
		if len(g.InEdges(v)) == 0 {
			inRate = g.SourceRate
		}
		if inRate <= 0 {
			continue
		}
		relSum += (measured[v] / window) / inRate
		sinks++
	}
	rel := 0.0
	if sinks > 0 {
		rel = relSum / float64(sinks)
	}
	if rel > 1 {
		rel = 1
	}
	return Result{
		Throughput: rel * g.SourceRate,
		Relative:   rel,
		DeviceUtil: nil,
		NetUtil:    nil,
		Bottleneck: BottleneckNone,
	}, nil
}

// sortByPosDesc orders ops so that later topological positions come first.
func sortByPosDesc(ops []int, pos []int) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && pos[ops[j]] > pos[ops[j-1]]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}
