package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stream"
)

func desChain(n int, rate, ipt, payload float64) *stream.Graph {
	g := stream.NewGraph(rate)
	for i := 0; i < n; i++ {
		g.AddNode(stream.Node{IPT: ipt, Payload: payload})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

func TestDESUnconstrainedReachesFullRate(t *testing.T) {
	g := desChain(3, 100, 10, 10)
	p := stream.NewPlacement(3, 2)
	res, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative < 0.95 {
		t.Fatalf("relative = %g, want ~1", res.Relative)
	}
}

func TestDESCPUBottleneck(t *testing.T) {
	// Demand 2× capacity on one device → relative ≈ 0.5.
	g := desChain(2, 1000, 1000, 1)
	p := stream.NewPlacement(2, 2)
	res, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.5) > 0.08 {
		t.Fatalf("relative = %g, want ≈0.5", res.Relative)
	}
}

func TestDESNetworkBottleneck(t *testing.T) {
	// Cross-device edge carrying 2× bandwidth → relative ≈ 0.5.
	g := desChain(2, 1000, 1, 2000)
	p := stream.NewPlacement(2, 2)
	p.Assign[1] = 1
	res, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.5) > 0.08 {
		t.Fatalf("relative = %g, want ≈0.5", res.Relative)
	}
}

func TestDESBackpressurePropagatesToSource(t *testing.T) {
	// Slow middle operator: queue fills, source ingestion throttles, and
	// the measured sink rate settles at the bottleneck rate.
	g := stream.NewGraph(1000)
	g.AddNode(stream.Node{IPT: 1, Payload: 1})
	g.AddNode(stream.Node{IPT: 4000, Payload: 1}) // can do 250 tuples/s on 1e6 instr/s
	g.AddNode(stream.Node{IPT: 1, Payload: 1})
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	p := stream.NewPlacement(3, 2)
	res, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.25) > 0.05 {
		t.Fatalf("relative = %g, want ≈0.25", res.Relative)
	}
}

func TestDESAgreesWithFluidOnSimpleCases(t *testing.T) {
	cases := []struct {
		name string
		g    *stream.Graph
		p    func() *stream.Placement
	}{
		{"light-chain", desChain(4, 100, 10, 10), func() *stream.Placement { return stream.NewPlacement(4, 2) }},
		{"cpu-bound", desChain(4, 1000, 600, 1), func() *stream.Placement {
			p := stream.NewPlacement(4, 2)
			p.Assign = []int{0, 0, 1, 1}
			return p
		}},
	}
	for _, tc := range cases {
		p := tc.p()
		fluid, err := Simulate(tc.g, p, smallCluster())
		if err != nil {
			t.Fatal(err)
		}
		des, err := SimulateDES(tc.g, p, smallCluster(), DefaultDESConfig())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fluid.Relative-des.Relative) > 0.1 {
			t.Fatalf("%s: fluid %.3f vs DES %.3f", tc.name, fluid.Relative, des.Relative)
		}
	}
}

// TestDESRankAgreesWithFluid checks the property the RL reward relies on:
// the fluid solver ranks random placements in (nearly) the same order as
// the discrete-event solver, just as CEPSim preserved the ranks of a real
// platform in [9].
func TestDESRankAgreesWithFluid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := stream.NewGraph(1000)
	for i := 0; i < 12; i++ {
		g.AddNode(stream.Node{IPT: 100 + rng.Float64()*400, Payload: 100 + rng.Float64()*800})
	}
	for i := 1; i < 12; i++ {
		g.AddEdge(rng.Intn(i), i, 0)
	}
	c := Cluster{Devices: 3, MIPS: 1, Bandwidth: 8e5, Links: NIC}

	type pair struct{ fluid, des float64 }
	var pairs []pair
	for trial := 0; trial < 8; trial++ {
		p := stream.NewPlacement(12, 3)
		for v := range p.Assign {
			p.Assign[v] = rng.Intn(3)
		}
		f, err := Simulate(g, p, c)
		if err != nil {
			t.Fatal(err)
		}
		d, err := SimulateDES(g, p, c, DefaultDESConfig())
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{f.Relative, d.Relative})
	}
	// Kendall-tau-style concordance: most pairs must agree in order.
	concordant, total := 0, 0
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			df := pairs[i].fluid - pairs[j].fluid
			dd := pairs[i].des - pairs[j].des
			if math.Abs(df) < 0.02 || math.Abs(dd) < 0.02 {
				continue // ties carry no rank information
			}
			total++
			if df*dd > 0 {
				concordant++
			}
		}
	}
	if total == 0 {
		t.Skip("no discriminating pairs")
	}
	if frac := float64(concordant) / float64(total); frac < 0.7 {
		t.Fatalf("rank concordance %.2f (%d/%d)", frac, concordant, total)
	}
}

func TestDESRejectsCyclicAndInvalid(t *testing.T) {
	g := desChain(3, 100, 1, 1)
	g.AddEdge(2, 0, 1)
	p := stream.NewPlacement(3, 2)
	if _, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig()); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	g2 := desChain(2, 100, 1, 1)
	if _, err := SimulateDES(g2, stream.NewPlacement(2, 5), smallCluster(), DefaultDESConfig()); err == nil {
		t.Fatal("oversized placement accepted")
	}
	if _, err := SimulateDES(g2, stream.NewPlacement(2, 2), smallCluster(), DESConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDESDeterministic(t *testing.T) {
	g := desChain(5, 500, 300, 200)
	p := stream.NewPlacement(5, 2)
	p.Assign = []int{0, 0, 1, 1, 0}
	r1, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if r1.Relative != r2.Relative {
		t.Fatal("DES nondeterministic")
	}
}

func TestDESFanOutBroadcast(t *testing.T) {
	// One source broadcasting to three sinks: each sink's ideal input is
	// the full source rate; unconstrained run must reach ~1.
	g := stream.NewGraph(200)
	g.AddNode(stream.Node{IPT: 1, Payload: 10})
	for i := 0; i < 3; i++ {
		s := g.AddNode(stream.Node{IPT: 1, Payload: 1})
		g.AddEdge(0, s, 0)
	}
	p := stream.NewPlacement(4, 2)
	res, err := SimulateDES(g, p, smallCluster(), DefaultDESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative < 0.95 {
		t.Fatalf("broadcast relative %g", res.Relative)
	}
}

var _ = sort.Ints // reserved for future ordering assertions
