package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// pipelineGraph builds a chain with the given IPT and payload per node.
func pipelineGraph(n int, rate, ipt, payload float64) *stream.Graph {
	g := stream.NewGraph(rate)
	for i := 0; i < n; i++ {
		g.AddNode(stream.Node{IPT: ipt, Payload: payload})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

func smallCluster() Cluster {
	return Cluster{Devices: 2, MIPS: 1, Bandwidth: 1e6, Links: NIC} // 1e6 instr/s
}

func TestUnconstrainedReachesFullRate(t *testing.T) {
	// 2 nodes × (IPT 10 × rate 100) = 2,000 instr/s ≪ capacity.
	g := pipelineGraph(2, 100, 10, 10)
	p := stream.NewPlacement(2, 2)
	res, err := Simulate(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative != 1 || res.Throughput != 100 {
		t.Fatalf("rel=%g thr=%g", res.Relative, res.Throughput)
	}
	if res.Bottleneck != BottleneckNone {
		t.Fatalf("bottleneck = %v", res.Bottleneck)
	}
}

func TestCPUBottleneckScaling(t *testing.T) {
	// One device, demand = 2× capacity → relative 0.5.
	g := pipelineGraph(2, 1000, 1000, 1) // load per node 1e6; total 2e6 vs 1e6 cap
	p := stream.NewPlacement(2, 2)       // both on device 0
	res, err := Simulate(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.5) > 1e-9 {
		t.Fatalf("relative = %g, want 0.5", res.Relative)
	}
	if res.Bottleneck != BottleneckCPU || res.BottleneckDevice != 0 {
		t.Fatalf("bottleneck %v at %d", res.Bottleneck, res.BottleneckDevice)
	}
}

func TestNetworkBottleneck(t *testing.T) {
	// Cross-device edge carrying 2× bandwidth → relative 0.5.
	g := pipelineGraph(2, 1000, 1, 2000) // traffic = 2000×1000 = 2e6 bits/s vs 1e6 BW
	p := stream.NewPlacement(2, 2)
	p.Assign[1] = 1
	res, err := Simulate(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.5) > 1e-9 {
		t.Fatalf("relative = %g", res.Relative)
	}
	if res.Bottleneck != BottleneckNetwork {
		t.Fatalf("bottleneck = %v", res.Bottleneck)
	}
}

func TestColocationAvoidsNetworkBottleneck(t *testing.T) {
	g := pipelineGraph(2, 1000, 1, 2000)
	together := stream.NewPlacement(2, 2)
	apart := stream.NewPlacement(2, 2)
	apart.Assign[1] = 1
	rTogether := Reward(g, together, smallCluster())
	rApart := Reward(g, apart, smallCluster())
	if rTogether <= rApart {
		t.Fatalf("colocation %g should beat split %g for heavy edges", rTogether, rApart)
	}
}

func TestBalancingBeatsOverloadWhenCPUBound(t *testing.T) {
	// Tiny payloads: CPU is the only constraint → balanced wins.
	g := pipelineGraph(4, 1000, 500, 0.001)
	all0 := stream.NewPlacement(4, 2)
	split := stream.NewPlacement(4, 2)
	split.Assign = []int{0, 0, 1, 1}
	if Reward(g, split, smallCluster()) <= Reward(g, all0, smallCluster()) {
		t.Fatal("balanced placement should beat single device when CPU bound")
	}
}

func TestPairLinkVsNIC(t *testing.T) {
	// Fan-out from node 0 to two downstream nodes on two other devices.
	g := stream.NewGraph(1000)
	g.AddNode(stream.Node{IPT: 1, Payload: 900})
	g.AddNode(stream.Node{IPT: 1, Payload: 1})
	g.AddNode(stream.Node{IPT: 1, Payload: 1})
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	c := Cluster{Devices: 3, MIPS: 1, Bandwidth: 1e6}
	p := stream.NewPlacement(3, 3)
	p.Assign = []int{0, 1, 2}
	// NIC: egress at device 0 = 1.8e6 > BW → bottleneck.
	c.Links = NIC
	resNIC, err := Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	// PairLink: each pair carries 0.9e6 < BW → no bottleneck.
	c.Links = PairLink
	resPair, err := Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	if resNIC.Relative >= 1 || resPair.Relative != 1 {
		t.Fatalf("NIC rel %g, pair rel %g", resNIC.Relative, resPair.Relative)
	}
}

func TestSimulateRejectsInvalidPlacement(t *testing.T) {
	g := pipelineGraph(2, 100, 1, 1)
	p := stream.NewPlacement(2, 5)
	if _, err := Simulate(g, p, smallCluster()); err == nil {
		t.Fatal("placement with more devices than cluster accepted")
	}
}

func TestIterativeMatchesFluidWithoutOverhead(t *testing.T) {
	g := pipelineGraph(4, 1000, 400, 200)
	p := stream.NewPlacement(4, 2)
	p.Assign = []int{0, 0, 1, 1}
	c := smallCluster()
	c.OverheadPerOp = 0
	fluid, err := Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := SimulateIterative(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fluid.Relative-iter.Relative) > 1e-6 {
		t.Fatalf("fluid %g vs iterative %g", fluid.Relative, iter.Relative)
	}
}

func TestIterativeOverheadPenalizesCrowding(t *testing.T) {
	g := pipelineGraph(8, 1000, 125, 0.001) // exactly saturates one device
	c := smallCluster()
	c.OverheadPerOp = 0.05
	crowded := stream.NewPlacement(8, 2)
	spread := stream.NewPlacement(8, 2)
	spread.Assign = []int{0, 0, 0, 0, 1, 1, 1, 1}
	rc, err := SimulateIterative(g, crowded, c)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateIterative(g, spread, c)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Relative <= rc.Relative {
		t.Fatalf("spread %g should beat crowded %g under overhead", rs.Relative, rc.Relative)
	}
}

func TestDefaultClusterConstants(t *testing.T) {
	c := DefaultCluster(10, 1000)
	if c.MIPS != 1.25e3 {
		t.Fatalf("MIPS = %g", c.MIPS)
	}
	if c.Bandwidth != 1e9 {
		t.Fatalf("bandwidth = %g", c.Bandwidth)
	}
	if c.InstructionCapacity() != 1.25e9 {
		t.Fatalf("capacity = %g", c.InstructionCapacity())
	}
}

func TestUtilizationStats(t *testing.T) {
	res := Result{
		DeviceUtil: []float64{0.5, 0, 0.3},
		NetUtil:    []float64{0.2, 0, 0.4},
	}
	st := Utilization(res)
	if st.UsedDevices != 2 {
		t.Fatalf("used = %d", st.UsedDevices)
	}
	if math.Abs(st.CPUMean-0.4) > 1e-12 || math.Abs(st.NetMean-0.3) > 1e-12 {
		t.Fatalf("means %g %g", st.CPUMean, st.NetMean)
	}
}

func TestEdgeSaturation(t *testing.T) {
	g := pipelineGraph(2, 1000, 1, 500)
	sat := EdgeSaturation(g, smallCluster())
	if math.Abs(sat[0]-0.5) > 1e-12 { // 500×1000 / 1e6
		t.Fatalf("sat = %g", sat[0])
	}
}

// randomGraphAndPlacement builds a random valid DAG + placement for
// property tests.
func randomGraphAndPlacement(rng *rand.Rand, devices int) (*stream.Graph, *stream.Placement) {
	n := 3 + rng.Intn(15)
	g := stream.NewGraph(100 + rng.Float64()*1000)
	for i := 0; i < n; i++ {
		g.AddNode(stream.Node{IPT: rng.Float64() * 1000, Payload: rng.Float64() * 1000})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i, 0)
	}
	p := stream.NewPlacement(n, devices)
	for i := range p.Assign {
		p.Assign[i] = rng.Intn(devices)
	}
	return g, p
}

// Property: relative throughput is always in (0, 1].
func TestQuickRelativeInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, p := randomGraphAndPlacement(rng, 3)
		c := Cluster{Devices: 3, MIPS: 0.5, Bandwidth: 5e5, Links: NIC}
		res, err := Simulate(g, p, c)
		if err != nil {
			return false
		}
		return res.Relative > 0 && res.Relative <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing bandwidth or MIPS never decreases throughput.
func TestQuickMonotoneInResources(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, p := randomGraphAndPlacement(rng, 3)
		c1 := Cluster{Devices: 3, MIPS: 0.3, Bandwidth: 2e5, Links: NIC}
		c2 := c1
		c2.MIPS *= 2
		c2.Bandwidth *= 2
		r1, err1 := Simulate(g, p, c1)
		r2, err2 := Simulate(g, p, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Relative >= r1.Relative-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-device placement never hits a network bottleneck.
func TestQuickSingleDeviceNoNetwork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomGraphAndPlacement(rng, 3)
		p := stream.NewPlacement(g.NumNodes(), 3)
		c := Cluster{Devices: 3, MIPS: 0.1, Bandwidth: 10, Links: NIC}
		res, err := Simulate(g, p, c)
		if err != nil {
			return false
		}
		return res.Bottleneck != BottleneckNetwork
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBottleneckKindString(t *testing.T) {
	if BottleneckCPU.String() != "cpu" || BottleneckNetwork.String() != "network" || BottleneckNone.String() != "none" {
		t.Fatal("bottleneck strings")
	}
}

func TestHeterogeneousCapacity(t *testing.T) {
	g := pipelineGraph(2, 1000, 1000, 0.001) // each node demands 1e6 instr/s
	p := stream.NewPlacement(2, 2)
	p.Assign = []int{0, 1}
	c := Cluster{Devices: 2, MIPS: 1, Bandwidth: 1e9, Links: NIC}
	// Homogeneous: each device exactly saturated → relative 1.
	res, err := Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative != 1 {
		t.Fatalf("homogeneous relative %g", res.Relative)
	}
	// Device 1 at half capacity → relative 0.5 with the same placement.
	het := c.Heterogeneous([]float64{1, 0.5})
	res, err = Simulate(g, p, het)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Relative-0.5) > 1e-9 || res.BottleneckDevice != 1 {
		t.Fatalf("heterogeneous relative %g bottleneck %d", res.Relative, res.BottleneckDevice)
	}
	// Swapping the placement onto the faster device restores throughput...
	// (loads are equal here, so it cannot; instead verify TotalCapacity).
	if het.TotalCapacity() != 1.5e6 {
		t.Fatalf("total capacity %g", het.TotalCapacity())
	}
}

func TestHeterogeneousPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultCluster(3, 100).Heterogeneous([]float64{1})
}
