// latency.go estimates end-to-end tuple latency for a placement — the
// secondary metric stream systems care about (the paper's related work
// cites latency-target schedulers [31], [32]). The estimate is the
// longest source→sink path cost, where each operator contributes its
// per-tuple service time inflated by its device's utilization (an M/M/1
// style 1/(1−ρ) queueing factor) and each cross-device edge contributes
// its per-tuple serialization time inflated by link utilization.
package sim

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// LatencyResult reports the estimated steady-state latency.
type LatencyResult struct {
	// CriticalPathSeconds is the longest source→sink latency estimate.
	CriticalPathSeconds float64
	// CriticalPath is the node sequence realizing it.
	CriticalPath []int
	// NetworkHops is the number of cross-device edges on that path.
	NetworkHops int
}

// EstimateLatency computes the critical-path latency of a placement at
// the placement's sustained rate (bottlenecks first scale the flow via the
// fluid solver, then per-stage queueing inflation is applied).
func EstimateLatency(g *stream.Graph, p *stream.Placement, c Cluster) (LatencyResult, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return LatencyResult{}, fmt.Errorf("sim: latency needs an acyclic graph: %w", err)
	}
	res, err := Simulate(g, p, c)
	if err != nil {
		return LatencyResult{}, err
	}

	// Queueing inflation per device / NIC at the sustained utilization.
	inflate := func(util float64) float64 {
		if util >= 0.99 {
			util = 0.99
		}
		return 1 / (1 - util)
	}

	// Per-node service time: IPT / device capacity, inflated.
	nodeCost := make([]float64, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		d := p.Assign[v]
		svc := g.Nodes[v].IPT / c.CapacityOf(d)
		nodeCost[v] = svc * inflate(res.DeviceUtil[d])
	}
	// Per-edge cost: serialization time for cross-device edges, inflated
	// by the busier endpoint NIC.
	edgeCost := make([]float64, g.NumEdges())
	for ei, e := range g.Edges {
		if p.Assign[e.Src] == p.Assign[e.Dst] {
			continue
		}
		ser := e.Payload / c.Bandwidth
		u := math.Max(res.NetUtil[p.Assign[e.Src]], res.NetUtil[p.Assign[e.Dst]])
		edgeCost[ei] = ser * inflate(u)
	}

	// Longest path by accumulated cost.
	best := make([]float64, g.NumNodes())
	prev := make([]int, g.NumNodes())
	hops := make([]int, g.NumNodes())
	for i := range prev {
		prev[i] = -1
		best[i] = math.Inf(-1)
	}
	for _, s := range g.Sources() {
		best[s] = nodeCost[s]
	}
	for _, v := range order {
		if math.IsInf(best[v], -1) {
			continue
		}
		for _, ei := range g.OutEdges(v) {
			e := g.Edges[ei]
			cand := best[v] + edgeCost[ei] + nodeCost[e.Dst]
			if cand > best[e.Dst] {
				best[e.Dst] = cand
				prev[e.Dst] = v
				h := hops[v]
				if edgeCost[ei] > 0 {
					h++
				}
				hops[e.Dst] = h
			}
		}
	}

	out := LatencyResult{}
	sink := -1
	for _, v := range g.Sinks() {
		if !math.IsInf(best[v], -1) && best[v] > out.CriticalPathSeconds {
			out.CriticalPathSeconds = best[v]
			sink = v
		}
	}
	if sink >= 0 {
		out.NetworkHops = hops[sink]
		for v := sink; v != -1; v = prev[v] {
			out.CriticalPath = append([]int{v}, out.CriticalPath...)
		}
	}
	return out, nil
}
