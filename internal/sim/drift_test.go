package sim

import (
	"math"
	"testing"

	"repro/internal/stream"
)

// driftChain builds src -> mid -> sink loaded so that one device at full
// capacity exactly sustains the source rate.
func driftChain(c Cluster) *stream.Graph {
	g := stream.NewGraph(1000)
	// Total demand = cluster capacity of one device at rate 1000.
	ipt := c.CapacityOf(0) / (3 * 1000)
	g.AddNode(stream.Node{IPT: ipt, Payload: 100})
	g.AddNode(stream.Node{IPT: ipt, Payload: 100})
	g.AddNode(stream.Node{IPT: ipt, Payload: 100})
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 100)
	return g
}

func TestSimulateDriftSurgeScalesUtilization(t *testing.T) {
	c := DefaultCluster(2, 1000)
	g := driftChain(c)
	p := stream.NewPlacement(3, 2) // everything on device 0: CPU-saturated

	base, err := SimulateDrift(g, p, c, NominalDrift(2))
	if err != nil {
		t.Fatal(err)
	}
	surged, err := SimulateDrift(g, p, c, DriftState{RateFactor: 2, BandwidthFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(surged.Relative-base.Relative/2) > 1e-9 {
		t.Errorf("2x surge on a saturated device must halve relative: base=%v surged=%v",
			base.Relative, surged.Relative)
	}
	if surged.Throughput < base.Throughput*0.99 {
		t.Errorf("absolute throughput should not fall under a pure surge: base=%v surged=%v",
			base.Throughput, surged.Throughput)
	}
}

func TestSimulateDriftDeviceLossStrandsLoad(t *testing.T) {
	c := DefaultCluster(2, 1000)
	g := driftChain(c)
	p := &stream.Placement{Assign: []int{0, 1, 0}, Devices: 2}

	st := NominalDrift(2)
	st.Available[1] = false
	res, err := SimulateDrift(g, p, c, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative > 1e-6 {
		t.Errorf("operators stranded on a lost device must collapse throughput, got %v", res.Relative)
	}
	// Moving everything off the lost device restores throughput.
	moved := &stream.Placement{Assign: []int{0, 0, 0}, Devices: 2}
	res2, err := SimulateDrift(g, moved, c, st)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Relative < 0.9 {
		t.Errorf("placement avoiding the lost device should sustain, got %v", res2.Relative)
	}
}

func TestSimulateDriftBandwidthClass(t *testing.T) {
	c := DefaultCluster(2, 1000)
	g := driftChain(c)
	// Split across devices so the cross edge carries traffic; make the link
	// the bottleneck by raising the payloads.
	for i := range g.Edges {
		g.Edges[i].Payload = 2e6 // 2 Mb per tuple at 1000 t/s = 2 Gbps ≫ 1 Gbps
	}
	p := &stream.Placement{Assign: []int{0, 0, 1}, Devices: 2}
	base, err := SimulateDrift(g, p, c, NominalDrift(2))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateDrift(g, p, c, DriftState{RateFactor: 1, BandwidthFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if base.Bottleneck != BottleneckNetwork {
		t.Fatalf("expected a network bottleneck, got %v", base.Bottleneck)
	}
	if math.Abs(slow.Relative-base.Relative/2) > 1e-9 {
		t.Errorf("halving the link class must halve a network-bound relative: base=%v slow=%v",
			base.Relative, slow.Relative)
	}
}

func TestBuildTimelineSemantics(t *testing.T) {
	events := []DriftEvent{
		{Kind: DriftSourceSurge, Tick: 2, DurTicks: 2, Factor: 1.5},
		{Kind: DriftSourceSurge, Tick: 3, DurTicks: 2, Factor: 2},
		{Kind: DriftDeviceLoss, Tick: 1, DurTicks: 3, Device: 0},
		{Kind: DriftDeviceJoin, Tick: 4, Device: 2},
		{Kind: DriftLinkClass, Tick: 2, Factor: 0.5},
		{Kind: DriftLinkClass, Tick: 5, Factor: 1.25},
	}
	tl, err := BuildTimeline(3, 7, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 7 {
		t.Fatalf("timeline length %d, want 7", len(tl))
	}
	// Tick 0: device 2 absent (pre-join), all else nominal.
	if tl[0].RateFactor != 1 || tl[0].BandwidthFactor != 1 || !tl[0].Up(0) || tl[0].Up(2) {
		t.Errorf("tick 0 wrong: %+v", tl[0])
	}
	// Tick 3: both surges active (compound), device 0 lost, class 0.5.
	if tl[3].RateFactor != 3 {
		t.Errorf("tick 3 rate factor %v, want 3 (1.5×2)", tl[3].RateFactor)
	}
	if tl[3].Up(0) || tl[3].Up(2) {
		t.Errorf("tick 3 availability wrong: %+v", tl[3].Available)
	}
	if tl[3].BandwidthFactor != 0.5 {
		t.Errorf("tick 3 bandwidth %v, want 0.5", tl[3].BandwidthFactor)
	}
	// Tick 4: device 0 back, device 2 joined, surge 2 still active.
	if !tl[4].Up(0) || !tl[4].Up(2) || tl[4].RateFactor != 2 {
		t.Errorf("tick 4 wrong: %+v", tl[4])
	}
	// Tick 5: latest class change wins; surges expired.
	if tl[5].BandwidthFactor != 1.25 || tl[5].RateFactor != 1 {
		t.Errorf("tick 5 wrong: %+v", tl[5])
	}
	if tl[2].NumUp(3) != 1 {
		t.Errorf("tick 2 should have exactly one device up, got %d", tl[2].NumUp(3))
	}
}

func TestBuildTimelineRejectsBadEvents(t *testing.T) {
	cases := [][]DriftEvent{
		{{Kind: DriftSourceSurge, Tick: -1, Factor: 2}},
		{{Kind: DriftSourceSurge, Tick: 0, Factor: 0}},
		{{Kind: DriftLinkClass, Tick: 0, Factor: -1}},
		{{Kind: DriftDeviceLoss, Tick: 0, Device: 9}},
		{{Kind: DriftDeviceJoin, Tick: 0, Device: -1}},
		{{Kind: DriftKind(99), Tick: 0}},
	}
	for i, evs := range cases {
		if _, err := BuildTimeline(3, 4, evs); err == nil {
			t.Errorf("case %d: expected an error for %+v", i, evs)
		}
	}
}

func TestDriftStateEqualAndWithDrift(t *testing.T) {
	a := NominalDrift(2)
	b := NominalDrift(2)
	if !a.Equal(b) {
		t.Error("identical states must compare equal")
	}
	b.Available[1] = false
	if a.Equal(b) {
		t.Error("availability change must break equality")
	}
	c := DefaultCluster(2, 1000)
	dc := c.WithDrift(b)
	if dc.CapacityOf(1) >= c.CapacityOf(1)*1e-6 {
		t.Errorf("lost device kept capacity %v", dc.CapacityOf(1))
	}
	if dc.CapacityOf(0) != c.CapacityOf(0) {
		t.Errorf("surviving device capacity changed: %v vs %v", dc.CapacityOf(0), c.CapacityOf(0))
	}
}

func TestScaleSourceRateSharesFeatures(t *testing.T) {
	c := DefaultCluster(2, 1000)
	g := driftChain(c)
	sg := g.ScaleSourceRate(2)
	if sg.SourceRate != 2*g.SourceRate {
		t.Fatalf("scaled rate %v, want %v", sg.SourceRate, 2*g.SourceRate)
	}
	if g.ScaleSourceRate(1) != g {
		t.Error("factor 1 must return the same graph")
	}
	// Loads scale linearly.
	l0 := g.NodeLoad()
	l1 := sg.NodeLoad()
	for i := range l0 {
		if math.Abs(l1[i]-2*l0[i]) > 1e-9*l0[i] {
			t.Errorf("node %d load %v, want %v", i, l1[i], 2*l0[i])
		}
	}
}
