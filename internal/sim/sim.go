// Package sim is the throughput simulator standing in for CEPSim [38]
// (see DESIGN.md §2). Given a stream graph, a placement, and a cluster
// description it computes the steady-state sustainable source tuple rate
// under two bottleneck families:
//
//   - CPU: the operators placed on a device may not demand more
//     instructions/second than the device provides (MIPS × 1e6);
//   - network: tuples crossing devices consume link bandwidth, modelled
//     either as a per-NIC budget shared by all of a device's cross-device
//     traffic (default, closer to a cloud VM) or as independent
//     per-device-pair links.
//
// Two solvers are provided. The linear-fluid solver observes that all
// steady-state rates scale linearly with the source rate, so the maximum
// sustainable fraction is 1/max(1, worst utilization); it is exact for
// proportional flows and is the default RL reward. The iterative solver
// adds a per-operator scheduling-overhead model and resolves the coupled
// constraints by fixed-point iteration; it is used for cross-validation
// and for the simulator-mode ablation bench.
package sim

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// LinkModel selects how network capacity is shared.
type LinkModel int

const (
	// NIC: each device has one full-duplex budget of Bandwidth bits/s for
	// egress and one for ingress; all cross-device edges at the device
	// share it.
	NIC LinkModel = iota
	// PairLink: every ordered device pair has an independent link of
	// Bandwidth bits/s.
	PairLink
)

// Cluster describes the homogeneous computing environment (§V: 1.25e3 MIPS
// devices; 1000 or 1500 Mbps links).
type Cluster struct {
	Devices   int
	MIPS      float64   // device capacity in millions of instructions per second
	Bandwidth float64   // link capacity in bits per second
	Links     LinkModel // capacity sharing model
	// OverheadPerOp is the fraction of a device's CPU consumed per resident
	// operator by scheduling overhead (iterative solver only).
	OverheadPerOp float64
	// DeviceMIPS optionally overrides MIPS per device (heterogeneous
	// clusters — the paper's stated future-work extension). When non-nil
	// its length must equal Devices.
	DeviceMIPS []float64
}

// CapacityOf returns device d's capacity in instructions/second.
func (c Cluster) CapacityOf(d int) float64 {
	if c.DeviceMIPS != nil {
		return c.DeviceMIPS[d] * 1e6
	}
	return c.MIPS * 1e6
}

// TotalCapacity returns the summed instruction capacity of all devices.
func (c Cluster) TotalCapacity() float64 {
	var s float64
	for d := 0; d < c.Devices; d++ {
		s += c.CapacityOf(d)
	}
	return s
}

// Heterogeneous returns a copy of c with explicit per-device MIPS.
func (c Cluster) Heterogeneous(mips []float64) Cluster {
	if len(mips) != c.Devices {
		panic(fmt.Sprintf("sim: %d MIPS values for %d devices", len(mips), c.Devices))
	}
	c.DeviceMIPS = append([]float64(nil), mips...)
	return c
}

// DefaultCluster returns the paper's experimental environment for the
// given device count and bandwidth in Mbps.
func DefaultCluster(devices int, mbps float64) Cluster {
	return Cluster{
		Devices:       devices,
		MIPS:          1.25e3,
		Bandwidth:     mbps * 1e6,
		Links:         NIC,
		OverheadPerOp: 0.002,
	}
}

// InstructionCapacity returns a device's capacity in instructions/second.
func (c Cluster) InstructionCapacity() float64 { return c.MIPS * 1e6 }

// BottleneckKind labels what limited throughput.
type BottleneckKind int

const (
	// BottleneckNone means the source rate is fully sustained.
	BottleneckNone BottleneckKind = iota
	// BottleneckCPU means a device's instruction budget saturated first.
	BottleneckCPU
	// BottleneckNetwork means a link/NIC saturated first.
	BottleneckNetwork
)

func (b BottleneckKind) String() string {
	switch b {
	case BottleneckCPU:
		return "cpu"
	case BottleneckNetwork:
		return "network"
	default:
		return "none"
	}
}

// Result reports the simulated steady state.
type Result struct {
	// Throughput is the sustained source tuple rate, tuples/second.
	Throughput float64
	// Relative is Throughput / SourceRate ∈ (0, 1]; the RL reward.
	Relative float64
	// DeviceUtil is per-device CPU utilization at the sustained rate.
	DeviceUtil []float64
	// NetUtil is per-device max(egress, ingress) utilization (NIC model)
	// or the per-device max over incident pair links (PairLink model).
	NetUtil []float64
	// Bottleneck labels the binding constraint.
	Bottleneck BottleneckKind
	// BottleneckDevice is the device (or link endpoint) that bound.
	BottleneckDevice int
}

// Simulate runs the linear-fluid solver.
func Simulate(g *stream.Graph, p *stream.Placement, c Cluster) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	if p.Devices > c.Devices {
		return Result{}, fmt.Errorf("sim: placement uses %d devices, cluster has %d", p.Devices, c.Devices)
	}
	obsFluidRuns.Inc()
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()

	cpu := make([]float64, c.Devices)
	for v, d := range p.Assign {
		cpu[d] += load[v]
	}
	egress := make([]float64, c.Devices)
	ingress := make([]float64, c.Devices)
	var pair map[[2]int]float64
	if c.Links == PairLink {
		pair = make(map[[2]int]float64)
	}
	for ei, e := range g.Edges {
		ds, dd := p.Assign[e.Src], p.Assign[e.Dst]
		if ds == dd {
			continue
		}
		egress[ds] += traffic[ei]
		ingress[dd] += traffic[ei]
		if pair != nil {
			pair[[2]int{ds, dd}] += traffic[ei]
		}
	}

	worst := 0.0
	kind := BottleneckNone
	where := -1
	devUtil := make([]float64, c.Devices)
	for d, l := range cpu {
		u := l / c.CapacityOf(d)
		devUtil[d] = u
		if u > worst {
			worst, kind, where = u, BottleneckCPU, d
		}
	}
	netUtil := make([]float64, c.Devices)
	if c.Links == NIC {
		for d := 0; d < c.Devices; d++ {
			ue := egress[d] / c.Bandwidth
			ui := ingress[d] / c.Bandwidth
			netUtil[d] = math.Max(ue, ui)
			if netUtil[d] > worst {
				worst, kind, where = netUtil[d], BottleneckNetwork, d
			}
		}
	} else {
		for k, tr := range pair {
			u := tr / c.Bandwidth
			if u > netUtil[k[0]] {
				netUtil[k[0]] = u
			}
			if u > netUtil[k[1]] {
				netUtil[k[1]] = u
			}
			if u > worst {
				worst, kind, where = u, BottleneckNetwork, k[0]
			}
		}
	}

	phi := 1.0
	if worst > 1 {
		phi = 1 / worst
	} else {
		kind, where = BottleneckNone, -1
	}
	// Report utilizations at the sustained rate (scaled by phi).
	for d := range devUtil {
		devUtil[d] *= phi
		netUtil[d] *= phi
	}
	return Result{
		Throughput:       phi * g.SourceRate,
		Relative:         phi,
		DeviceUtil:       devUtil,
		NetUtil:          netUtil,
		Bottleneck:       kind,
		BottleneckDevice: where,
	}, nil
}

// SimulateIterative runs the fixed-point solver with per-operator
// scheduling overhead: a device hosting k operators loses k×OverheadPerOp
// of its instruction budget, and the sustainable fraction is resolved by
// damped iteration (the overhead couples the constraint to the placement's
// operator counts, not just loads).
func SimulateIterative(g *stream.Graph, p *stream.Placement, c Cluster) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	obsIterativeRuns.Inc()
	load := g.NodeLoad()
	traffic := g.EdgeTraffic()

	cpu := make([]float64, c.Devices)
	ops := make([]int, c.Devices)
	for v, d := range p.Assign {
		cpu[d] += load[v]
		ops[d]++
	}
	egress := make([]float64, c.Devices)
	ingress := make([]float64, c.Devices)
	for ei, e := range g.Edges {
		ds, dd := p.Assign[e.Src], p.Assign[e.Dst]
		if ds == dd {
			continue
		}
		egress[ds] += traffic[ei]
		ingress[dd] += traffic[ei]
	}

	effCap := make([]float64, c.Devices)
	for d := 0; d < c.Devices; d++ {
		f := 1 - c.OverheadPerOp*float64(ops[d])
		if f < 0.05 {
			f = 0.05 // a device never drops below 5% useful capacity
		}
		effCap[d] = c.CapacityOf(d) * f
	}

	phi := 1.0
	for iter := 0; iter < 100; iter++ {
		worst := 0.0
		for d := 0; d < c.Devices; d++ {
			if u := phi * cpu[d] / effCap[d]; u > worst {
				worst = u
			}
			var un float64
			if c.Links == NIC {
				un = phi * math.Max(egress[d], ingress[d]) / c.Bandwidth
			} else {
				un = phi * math.Max(egress[d], ingress[d]) / c.Bandwidth
			}
			if un > worst {
				worst = un
			}
		}
		if worst <= 1+1e-12 {
			break
		}
		next := phi / worst
		// Damping keeps convergence monotone in the presence of the
		// capacity floor discontinuity.
		phi = 0.5*phi + 0.5*next
	}

	devUtil := make([]float64, c.Devices)
	netUtil := make([]float64, c.Devices)
	kind := BottleneckNone
	where := -1
	worstU := 0.0
	for d := 0; d < c.Devices; d++ {
		devUtil[d] = phi * cpu[d] / effCap[d]
		netUtil[d] = phi * math.Max(egress[d], ingress[d]) / c.Bandwidth
		if devUtil[d] > worstU {
			worstU, kind, where = devUtil[d], BottleneckCPU, d
		}
		if netUtil[d] > worstU {
			worstU, kind, where = netUtil[d], BottleneckNetwork, d
		}
	}
	if phi >= 1-1e-9 {
		kind, where = BottleneckNone, -1
	}
	return Result{
		Throughput:       phi * g.SourceRate,
		Relative:         phi,
		DeviceUtil:       devUtil,
		NetUtil:          netUtil,
		Bottleneck:       kind,
		BottleneckDevice: where,
	}, nil
}

// Reward returns the RL reward r(G_y) = T(G_y)/I(G_x) for a placement,
// using the linear-fluid solver. It panics on invalid placements, which
// indicate a programming error in the caller.
func Reward(g *stream.Graph, p *stream.Placement, c Cluster) float64 {
	res, err := Simulate(g, p, c)
	if err != nil {
		panic("sim: reward on invalid placement: " + err.Error())
	}
	return res.Relative
}

// UtilizationStats summarizes CPU and network utilization over the devices
// actually hosting load, as reported in §VI-B (excess-device analysis).
type UtilizationStats struct {
	CPUMean, CPUStd float64
	NetMean, NetStd float64
	UsedDevices     int
}

// Utilization computes UtilizationStats from a simulation result.
func Utilization(res Result) UtilizationStats {
	var cpus, nets []float64
	for d, u := range res.DeviceUtil {
		if u > 0 {
			cpus = append(cpus, u)
			nets = append(nets, res.NetUtil[d])
		}
	}
	st := UtilizationStats{UsedDevices: len(cpus)}
	st.CPUMean, st.CPUStd = meanStd(cpus)
	st.NetMean, st.NetStd = meanStd(nets)
	return st
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	return m, math.Sqrt(v)
}

// EdgeSaturation returns, for every edge, its data saturation rate
// (payload × rate / bandwidth) as defined in §V — the Fig. 9 quantity.
func EdgeSaturation(g *stream.Graph, c Cluster) []float64 {
	tr := g.EdgeTraffic()
	out := make([]float64, len(tr))
	for i, t := range tr {
		out[i] = t / c.Bandwidth
	}
	return out
}
