// drift.go models environment drift: the stream system's surroundings
// changing while a placement is live. Real clusters see source-rate
// surges, devices leaving (failures, decommissions) and joining
// (autoscaling), and link classes changing (a tenant moved to a slower
// network tier). A DriftState is the effective environment at one instant;
// a timeline of DriftStates, built from discrete DriftEvents, drives the
// deterministic re-allocation experiments, while internal/runtime replays
// the same events against the wall-clock executor.
package sim

import (
	"fmt"

	"repro/internal/stream"
)

// lostCapacityFrac is the fraction of its nominal capacity a lost device
// retains in the fluid model. A strictly zero capacity would turn a
// loaded-but-lost device into a 0/0 utilization; a vanishing-but-positive
// capacity instead drives the sustainable fraction toward zero, which is
// what a placement that strands operators on a dead machine deserves.
const lostCapacityFrac = 1e-9

// DriftState is the effective environment at one point of a drift
// timeline, relative to the nominal cluster and graph.
type DriftState struct {
	// RateFactor multiplies every source's tuple rate (1 = nominal;
	// 2 = a 2× surge). Must be > 0.
	RateFactor float64
	// Available[d] reports whether device d can host operators. A nil
	// slice means every device is available.
	Available []bool
	// BandwidthFactor multiplies link bandwidth (1 = nominal; 0.5 = the
	// pool was retuned to a slower link class). Must be > 0.
	BandwidthFactor float64
}

// NominalDrift is the no-drift state for a cluster of the given size.
func NominalDrift(devices int) DriftState {
	avail := make([]bool, devices)
	for i := range avail {
		avail[i] = true
	}
	return DriftState{RateFactor: 1, Available: avail, BandwidthFactor: 1}
}

// Validate checks the state against a cluster size.
func (st DriftState) Validate(devices int) error {
	if st.RateFactor <= 0 {
		return fmt.Errorf("sim: drift state has non-positive rate factor %g", st.RateFactor)
	}
	if st.BandwidthFactor <= 0 {
		return fmt.Errorf("sim: drift state has non-positive bandwidth factor %g", st.BandwidthFactor)
	}
	if st.Available != nil && len(st.Available) != devices {
		return fmt.Errorf("sim: drift state covers %d devices, cluster has %d", len(st.Available), devices)
	}
	return nil
}

// Up reports whether device d is available under the state.
func (st DriftState) Up(d int) bool {
	return st.Available == nil || st.Available[d]
}

// NumUp returns the number of available devices.
func (st DriftState) NumUp(devices int) int {
	if st.Available == nil {
		return devices
	}
	n := 0
	for _, a := range st.Available {
		if a {
			n++
		}
	}
	return n
}

// Equal reports whether two states describe the same environment.
func (st DriftState) Equal(o DriftState) bool {
	if st.RateFactor != o.RateFactor || st.BandwidthFactor != o.BandwidthFactor {
		return false
	}
	if len(st.Available) != len(o.Available) {
		return false
	}
	for i := range st.Available {
		if st.Available[i] != o.Available[i] {
			return false
		}
	}
	return true
}

// WithDrift returns a copy of the cluster under the drift state: lost
// devices keep a vanishing capacity fraction (see lostCapacityFrac) and
// link bandwidth is scaled by the state's factor.
func (c Cluster) WithDrift(st DriftState) Cluster {
	if err := st.Validate(c.Devices); err != nil {
		panic(err.Error())
	}
	out := c
	out.Bandwidth = c.Bandwidth * st.BandwidthFactor
	if st.Available != nil {
		mips := make([]float64, c.Devices)
		for d := 0; d < c.Devices; d++ {
			m := c.CapacityOf(d) / 1e6
			if !st.Available[d] {
				m *= lostCapacityFrac
			}
			mips[d] = m
		}
		out.DeviceMIPS = mips
	}
	return out
}

// SimulateDrift runs the linear-fluid solver on the drifted environment:
// the cluster under st and the graph at st.RateFactor× its source rate.
// Relative throughput is measured against the surged demand, so a
// placement that sustained the nominal rate but not the surge reports the
// drop.
func SimulateDrift(g *stream.Graph, p *stream.Placement, c Cluster, st DriftState) (Result, error) {
	if err := st.Validate(c.Devices); err != nil {
		return Result{}, err
	}
	return Simulate(g.ScaleSourceRate(st.RateFactor), p, c.WithDrift(st))
}

// DriftKind labels a drift event.
type DriftKind int

const (
	// DriftSourceSurge multiplies the source rate by Factor during the
	// event window.
	DriftSourceSurge DriftKind = iota
	// DriftDeviceLoss removes Device from the pool during the window.
	DriftDeviceLoss
	// DriftDeviceJoin grows the pool: Device is absent from tick 0 and
	// becomes available at Tick (autoscaling spin-up).
	DriftDeviceJoin
	// DriftLinkClass switches the pool's link class: the bandwidth factor
	// becomes Factor from Tick onward (until the next class change).
	DriftLinkClass
)

func (k DriftKind) String() string {
	switch k {
	case DriftSourceSurge:
		return "source-surge"
	case DriftDeviceLoss:
		return "device-loss"
	case DriftDeviceJoin:
		return "device-join"
	case DriftLinkClass:
		return "link-class"
	default:
		return "unknown"
	}
}

// DriftEvent is one discrete environment change on a tick timeline.
type DriftEvent struct {
	Kind DriftKind
	// Tick is when the event takes effect (0-based).
	Tick int
	// DurTicks is the window length for surges and losses; <= 0 lasts for
	// the rest of the timeline. Ignored for joins and class changes.
	DurTicks int
	// Device is the affected device for losses and joins.
	Device int
	// Factor is the surge multiplier or the new link class factor.
	Factor float64
}

// ValidateEvents checks a drift event list against a cluster size.
func ValidateEvents(events []DriftEvent, devices int) error {
	for i, ev := range events {
		if ev.Tick < 0 {
			return fmt.Errorf("sim: drift event %d starts at negative tick %d", i, ev.Tick)
		}
		switch ev.Kind {
		case DriftSourceSurge:
			if ev.Factor <= 0 {
				return fmt.Errorf("sim: drift event %d surge factor %g must be positive", i, ev.Factor)
			}
		case DriftLinkClass:
			if ev.Factor <= 0 {
				return fmt.Errorf("sim: drift event %d link class %g must be positive", i, ev.Factor)
			}
		case DriftDeviceLoss, DriftDeviceJoin:
			if ev.Device < 0 || ev.Device >= devices {
				return fmt.Errorf("sim: drift event %d targets device %d of %d", i, ev.Device, devices)
			}
		default:
			return fmt.Errorf("sim: drift event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// BuildTimeline expands drift events into one DriftState per tick.
// Overlapping surges compound multiplicatively; the last class change at
// or before a tick wins; a device with a join event is absent until its
// join tick; loss windows override availability regardless of joins.
func BuildTimeline(devices, ticks int, events []DriftEvent) ([]DriftState, error) {
	if err := ValidateEvents(events, devices); err != nil {
		return nil, err
	}
	// Devices with a join event start absent.
	joinAt := make([]int, devices)
	for d := range joinAt {
		joinAt[d] = 0
	}
	for _, ev := range events {
		if ev.Kind == DriftDeviceJoin && ev.Tick > joinAt[ev.Device] {
			joinAt[ev.Device] = ev.Tick
		}
	}
	inWindow := func(ev DriftEvent, t int) bool {
		if t < ev.Tick {
			return false
		}
		return ev.DurTicks <= 0 || t < ev.Tick+ev.DurTicks
	}
	out := make([]DriftState, ticks)
	for t := 0; t < ticks; t++ {
		st := NominalDrift(devices)
		for d := 0; d < devices; d++ {
			if t < joinAt[d] {
				st.Available[d] = false
			}
		}
		classTick := -1
		for _, ev := range events {
			switch ev.Kind {
			case DriftSourceSurge:
				if inWindow(ev, t) {
					st.RateFactor *= ev.Factor
				}
			case DriftDeviceLoss:
				if inWindow(ev, t) {
					st.Available[ev.Device] = false
				}
			case DriftLinkClass:
				if ev.Tick <= t && ev.Tick > classTick {
					classTick = ev.Tick
					st.BandwidthFactor = ev.Factor
				}
			}
		}
		out[t] = st
	}
	return out, nil
}
