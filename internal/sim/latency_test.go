package sim

import (
	"math"
	"testing"

	"repro/internal/stream"
)

func TestLatencyChainOnOneDevice(t *testing.T) {
	// Three ops, IPT 1000 each, device 1e6 instr/s, negligible load →
	// service time 1ms each, no inflation, no network hops.
	g := pipelineGraph(3, 1, 1000, 1)
	p := stream.NewPlacement(3, 2)
	res, err := EstimateLatency(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CriticalPathSeconds-0.003) > 0.0005 {
		t.Fatalf("latency %g, want ≈3ms", res.CriticalPathSeconds)
	}
	if res.NetworkHops != 0 {
		t.Fatalf("hops = %d", res.NetworkHops)
	}
	if len(res.CriticalPath) != 3 {
		t.Fatalf("path = %v", res.CriticalPath)
	}
}

func TestLatencyCountsNetworkHops(t *testing.T) {
	g := pipelineGraph(3, 1, 10, 1000)
	p := stream.NewPlacement(3, 2)
	p.Assign = []int{0, 1, 0}
	res, err := EstimateLatency(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkHops != 2 {
		t.Fatalf("hops = %d", res.NetworkHops)
	}
	// Serialization: 2 × (1000 bits / 1e6 bps) = 2 ms plus tiny service.
	if res.CriticalPathSeconds < 0.002 {
		t.Fatalf("latency %g too small for 2 hops", res.CriticalPathSeconds)
	}
}

func TestLatencyUtilizationInflation(t *testing.T) {
	// A nearly saturated device inflates latency well beyond raw service.
	g := pipelineGraph(2, 450, 1000, 1) // util = 0.9 on one device
	p := stream.NewPlacement(2, 2)
	res, err := EstimateLatency(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	raw := 0.002 // 2 × 1ms service
	if res.CriticalPathSeconds < 3*raw {
		t.Fatalf("latency %g not inflated at 90%% utilization", res.CriticalPathSeconds)
	}
}

func TestLatencyPicksLongestBranch(t *testing.T) {
	// Diamond with one slow branch: critical path must go through it.
	g := stream.NewGraph(1)
	g.AddNode(stream.Node{IPT: 10, Payload: 1})
	g.AddNode(stream.Node{IPT: 10, Payload: 1})     // fast branch
	g.AddNode(stream.Node{IPT: 100000, Payload: 1}) // slow branch
	g.AddNode(stream.Node{IPT: 10, Payload: 1})
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	p := stream.NewPlacement(4, 2)
	res, err := EstimateLatency(g, p, smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.CriticalPath {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("critical path %v skips the slow branch", res.CriticalPath)
	}
}

func TestLatencyRejectsCycle(t *testing.T) {
	g := pipelineGraph(2, 1, 1, 1)
	g.AddEdge(1, 0, 1)
	if _, err := EstimateLatency(g, stream.NewPlacement(2, 2), smallCluster()); err == nil {
		t.Fatal("cycle accepted")
	}
}
