package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/sim"
)

// TestInflightShed pins the hard backpressure valve: with MaxInflight=1
// and one request parked inside the batcher, concurrent arrivals are
// shed with ErrOverloaded and counted, and a request after the load
// drops is served normally.
func TestInflightShed(t *testing.T) {
	s := gen.Small()
	graphs := s.Generate().Test[:3]
	reg := obs.NewRegistry()
	svc := newTestService(t, Options{
		Model:       core.New(core.DefaultConfig()),
		Registry:    reg,
		CacheSize:   -1,
		MaxInflight: 1,
	})

	// Park the first request inside the forward pass.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.beforeForward = func(int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	done := make(chan error, 1)
	go func() {
		_, err := svc.Allocate(graphs[0], s.Cluster)
		done <- err
	}()
	<-entered

	// The parked request holds serve_inflight at 1, so new forwards are
	// denied at admission.
	if _, err := svc.Allocate(graphs[1], s.Cluster); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request: %v, want ErrOverloaded", err)
	}
	if got := reg.Counter("serve_shed_total").Value(); got != 1 {
		t.Fatalf("serve_shed_total = %d, want 1", got)
	}
	// Sheds are not errors: the error counter stays untouched.
	if got := reg.Counter("serve_errors_total").Value(); got != 0 {
		t.Fatalf("serve_errors_total = %d, want 0", got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
	if _, err := svc.Allocate(graphs[2], s.Cluster); err != nil {
		t.Fatalf("post-recovery request: %v", err)
	}
}

// TestSLOShedLatch steps the SLO controller deterministically: a p99
// breach latches shed mode on (breach counter, gauge), the latch holds
// through a single healthy check (hysteresis), and unlatches after the
// required streak once the window empties.
func TestSLOShedLatch(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	reg := obs.NewRegistry()
	svc := newTestService(t, Options{
		Model:     core.New(core.DefaultConfig()),
		Registry:  reg,
		CacheSize: -1,
		SLOP99MS:  50,
		SLOWindow: 200 * time.Millisecond,
		sloEvery:  time.Hour, // background checker stays out of the way
	})

	// Feed the window latencies far past the objective and step the
	// controller.
	for i := 0; i < 20; i++ {
		svc.latQ.Observe(500)
	}
	svc.evalSLO()
	if !svc.ShedMode() {
		t.Fatal("p99 breach did not latch shed mode")
	}
	if got := reg.Counter("serve_slo_breach_total").Value(); got != 1 {
		t.Fatalf("serve_slo_breach_total = %d, want 1", got)
	}
	if got := reg.Gauge("serve_shed_mode").Value(); got != 1 {
		t.Fatalf("serve_shed_mode = %v, want 1", got)
	}

	// Shed mode denies forwards even though inflight is 0.
	if _, err := svc.Allocate(g, s.Cluster); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Allocate under shed mode: %v, want ErrOverloaded", err)
	}

	// Let the slow samples rotate out of the window, then step the
	// controller: one healthy check must NOT unlatch (hysteresis), the
	// second must.
	time.Sleep(300 * time.Millisecond)
	svc.evalSLO()
	if !svc.ShedMode() {
		t.Fatal("latch released after a single healthy check")
	}
	svc.evalSLO()
	if svc.ShedMode() {
		t.Fatal("latch held past the recovery streak")
	}
	if got := reg.Gauge("serve_shed_mode").Value(); got != 0 {
		t.Fatalf("serve_shed_mode = %v after recovery, want 0", got)
	}
	if _, err := svc.Allocate(g, s.Cluster); err != nil {
		t.Fatalf("post-recovery Allocate: %v", err)
	}
}

// TestServeQuantilesObserved pins that the registry's windowed
// estimators see serving traffic: latency per request, queue wait per
// batched forward.
func TestServeQuantilesObserved(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	reg := obs.NewRegistry()
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig()), Registry: reg})
	if _, err := svc.Allocate(g, s.Cluster); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Allocate(g, s.Cluster); err != nil { // cache hit
		t.Fatal(err)
	}
	if got := svc.LatencyQuantiles().Count; got != 2 {
		t.Fatalf("latency quantile saw %d samples, want 2 (cold + cached)", got)
	}
	if got := svc.QueueWaitQuantiles().Count; got != 1 {
		t.Fatalf("queue-wait quantile saw %d samples, want 1 (cold only)", got)
	}
	if p := svc.LatencyQuantiles().Values; len(p) != len(obs.DefaultObjectives) || p[len(p)-1] <= 0 {
		t.Fatalf("latency p99 = %v, want > 0", p)
	}
	snap := reg.Snapshot()
	if len(snap.Quantiles) != 2 {
		t.Fatalf("registry snapshot carries %d quantile estimators, want 2", len(snap.Quantiles))
	}
}

// TestTracedRequestSpans pins request-scoped tracing end to end at the
// service layer: a traced context yields cache-probe, queue-wait, and
// forward spans tagged with the request's trace id.
func TestTracedRequestSpans(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	tr := obs.NewTracer()
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig()), Tracer: tr})

	const id = "deadbeefdeadbeefdeadbeef"
	if _, err := svc.AllocateCtx(WithTraceID(context.Background(), id), g, s.Cluster); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cache-probe": false, "queue-wait": false, "forward": false}
	for _, ev := range tr.Events() {
		if _, ok := want[ev.Name]; ok && ev.Args["trace_id"] == id {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q with trace_id %q missing from trace: %+v", name, id, tr.Events())
		}
	}
}

// TestInstrumentedServeBitIdentical pins the PR 5 invariant on the
// serving path: full instrumentation (tracer, quantiles, SLO checker,
// access-path trace ids) must not perturb the bit-identical inference —
// served placements and rewards equal the offline pipeline's.
func TestInstrumentedServeBitIdentical(t *testing.T) {
	s := gen.Small()
	model := core.New(core.DefaultConfig())
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: 1}}
	svc := newTestService(t, Options{
		Model:     model,
		Tracer:    obs.NewTracer(),
		Registry:  obs.NewRegistry(),
		SLOP99MS:  1e9, // checker runs but never sheds
		SLOWindow: time.Second,
	})
	for gi, g := range s.Generate().Test[:4] {
		offline := pipe.Allocate(g, s.Cluster)
		got, err := svc.AllocateCtx(WithTraceID(context.Background(), MintTraceID()), g, s.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		samePlacement(t, "instrumented", offline.Placement.Assign, got.Assign)
		if math.Float64bits(got.Relative) != math.Float64bits(sim.Reward(g, offline.Placement, s.Cluster)) {
			t.Fatalf("graph %d: instrumented reward drifted", gi)
		}
	}
}
