// trace.go carries the request-scoped trace identity. The HTTP layer
// mints (or adopts) an X-Trace-Id per request and threads it through
// context.Context into the batcher, so the child spans one request
// emits — cache-probe, queue-wait, batch-assembly, forward — can be
// grepped out of the Chrome trace by id even when the request rode a
// shared batch.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync/atomic"
	"time"
)

// traceIDKey carries the request trace id in a context.
type traceIDKey struct{}

// WithTraceID returns a context carrying the trace id.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the context's trace id ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// traceSeq and traceHi make minted ids unique: a per-process random
// prefix (so ids from restarted daemons don't collide in aggregated
// logs) plus a monotone counter.
var (
	traceSeq atomic.Uint64
	traceHi  = func() uint64 {
		// Seed from the wall clock; ids are identities, not secrets.
		return rand.New(rand.NewSource(time.Now().UnixNano())).Uint64()
	}()
)

// MintTraceID returns a fresh 24-hex-character trace id.
func MintTraceID() string {
	var b [12]byte
	binary.BigEndian.PutUint64(b[:8], traceHi)
	binary.BigEndian.PutUint32(b[8:], uint32(traceSeq.Add(1)))
	return hex.EncodeToString(b[:])
}

// validTraceID bounds what the server adopts from an inbound
// X-Trace-Id header: printable, no whitespace, at most 64 bytes.
func validTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}
