package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/stream"
)

func testSpecBody(t *testing.T, g *stream.Graph) []byte {
	t.Helper()
	gs := GraphSpec{SourceRate: g.SourceRate}
	for _, n := range g.Nodes {
		gs.Nodes = append(gs.Nodes, NodeSpec{IPT: n.IPT, Payload: n.Payload, Selectivity: n.Selectivity, State: n.State})
	}
	for _, e := range g.Edges {
		gs.Edges = append(gs.Edges, EdgeSpec{Src: e.Src, Dst: e.Dst, Payload: e.Payload})
	}
	body, err := json.Marshal(AllocateRequest{Graph: gs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestHTTPTraceAndAccessLog pins the wire-level observability contract:
// every response (every endpoint, every status) carries an X-Trace-Id,
// a plausible client id is adopted and echoed, and each /allocate
// request appends exactly one well-formed access-log record keyed by
// that id.
func TestHTTPTraceAndAccessLog(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	reg := obs.NewRegistry()
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig()), Registry: reg})

	var logBuf bytes.Buffer
	access := obs.NewJSONLWriter(json.NewEncoder(&logBuf))
	srv := httptest.NewServer(NewHandler(svc, s.Cluster, "", reg, HandlerOpts{AccessLog: access}))
	defer srv.Close()

	// Every endpoint stamps a trace id.
	for _, path := range []string{"/healthz", "/statusz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatalf("%s response has no X-Trace-Id", path)
		}
	}

	// A plausible inbound id is adopted verbatim; a garbage one is
	// replaced with a minted id.
	body := testSpecBody(t, g)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/allocate", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", "client-id-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "client-id-123" {
		t.Fatalf("adopted trace id = %q, want client-id-123", got)
	}
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/allocate", bytes.NewReader(body))
	garbage := "id with spaces" + strings.Repeat("x", 64)
	req.Header.Set("X-Trace-Id", garbage)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Trace-Id")
	if minted == "" || minted == garbage {
		t.Fatalf("garbage inbound id not replaced: %q", minted)
	}

	// A malformed spec still logs (status 400).
	resp, err = http.Post(srv.URL+"/allocate", "application/json", strings.NewReader(`{"nope":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d", resp.StatusCode)
	}

	// One record per request, JSONL, joined by trace id.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d records, want 3:\n%s", len(lines), logBuf.String())
	}
	var recs []AccessRecord
	for i, line := range lines {
		var r AccessRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("access log line %d is not JSON: %v\n%s", i, err, line)
		}
		recs = append(recs, r)
	}
	first := recs[0]
	if first.TraceID != "client-id-123" || first.Status != http.StatusOK ||
		first.Nodes != g.NumNodes() || first.Edges != len(g.Edges) || first.LatencyMS <= 0 ||
		first.ModelVersion != 1 || first.Fingerprint == "" {
		t.Fatalf("first access record malformed: %+v", first)
	}
	if !recs[1].Cached {
		t.Fatalf("second (identical) request not logged as cached: %+v", recs[1])
	}
	if recs[2].Status != http.StatusBadRequest || recs[2].Err == "" {
		t.Fatalf("bad-spec record malformed: %+v", recs[2])
	}

	// /statusz is human-readable and carries the live state.
	resp, err = http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	status := string(sb)
	for _, want := range []string{"uptime:", "model_version:  1", "latency_ms", "queue_wait_ms", "shed_mode:", "cache:"} {
		if !strings.Contains(status, want) {
			t.Fatalf("/statusz missing %q:\n%s", want, status)
		}
	}
}

// TestHTTPShedResponse pins the 429 contract at the wire: a shed
// request answers 429 with Retry-After, and the access log marks it.
func TestHTTPShedResponse(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	reg := obs.NewRegistry()
	svc := newTestService(t, Options{
		Model:     core.New(core.DefaultConfig()),
		Registry:  reg,
		CacheSize: -1,
		SLOP99MS:  1, // trivially breachable
		sloEvery:  time.Hour,
	})
	// Force the latch directly: the controller unit tests cover the
	// breach path; here only the wire mapping matters.
	svc.sloShed.Store(true)

	var logBuf bytes.Buffer
	access := obs.NewJSONLWriter(json.NewEncoder(&logBuf))
	srv := httptest.NewServer(NewHandler(svc, s.Cluster, "", reg, HandlerOpts{AccessLog: access}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/allocate", "application/json", bytes.NewReader(testSpecBody(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("429 without X-Trace-Id")
	}
	var rec AccessRecord
	if err := json.Unmarshal(bytes.TrimSpace(logBuf.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Shed || rec.Status != http.StatusTooManyRequests {
		t.Fatalf("shed access record malformed: %+v", rec)
	}
}
