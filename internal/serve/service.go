// Package serve is the allocation-as-a-service layer: a long-running
// inference service answering "stream graph spec → placement" at high QPS
// over the trained coarsening model.
//
// The hot path never builds an autodiff tape. Each request's features run
// through the tape-free forward pass (core.Model.InferProbsInto over the
// fused tensor kernels, scratch from the size-classed arena), which is
// bit-identical to the training-path forward — so a served placement
// equals the offline Pipeline.Allocate placement for the same model, and
// that equality is pinned by tests.
//
// Three mechanisms carry the throughput:
//
//   - Batching: concurrent requests arriving within a small window are
//     stacked into one block-diagonal forward pass. Every forward kernel
//     is row-local (matmul rows, gathers, per-segment means over each
//     node's own edges), so the batched rows are bit-identical to solo
//     runs — batching is invisible in the outputs.
//   - Caching: a bounded generic LRU (internal/cache) keyed by the
//     canonical request fingerprint returns repeat placements without
//     touching the model. The cache is cleared on model reload.
//   - Hot swap: the model is served through nn.Snapshot versions behind
//     an atomic pointer. Reload loads new parameters, captures a fresh
//     snapshot, and swaps the pointer; requests already in flight finish
//     on the snapshot they captured at arrival.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// ErrClosed is returned by Allocate after Close.
var ErrClosed = errors.New("serve: service closed")

// Options configures a Service.
type Options struct {
	// Model is the coarsening model to serve (required). The service
	// captures a snapshot at construction; later parameter mutations are
	// invisible until Reload.
	Model *core.Model
	// Placer partitions the coarse graph (default placer.Metis{Seed: 1},
	// the paper's best configuration).
	Placer placer.Placer
	// CacheSize bounds the placement LRU (default 4096 entries; <0
	// disables caching).
	CacheSize int
	// BatchWindow is how long the batcher waits for more requests after
	// the first one arrives (default 200µs; <0 disables coalescing).
	BatchWindow time.Duration
	// MaxBatch caps one batched forward pass (default 16).
	MaxBatch int
	// Registry receives serve metrics (default obs.Default).
	Registry *obs.Registry
	// Tracer, when set, receives request-scoped child spans
	// (cache-probe, queue-wait, batch-assembly, forward) tagged with
	// each request's trace id. Nil disables span emission entirely —
	// the hot path then takes no extra timestamps.
	Tracer *obs.Tracer
	// MaxInflight sheds cache-missing requests once more than this many
	// requests are in flight (0 = unbounded).
	MaxInflight int
	// SLOP99MS is the serve-latency p99 objective in milliseconds; when
	// the windowed p99 breaches it, shed mode latches on until the p99
	// recovers with hysteresis (0 = no SLO shedding).
	SLOP99MS float64
	// SLOWindow is the lookback of the latency/queue-wait quantile
	// estimators (default 30s).
	SLOWindow time.Duration

	// sloEvery overrides the SLO checker period (tests; default 250ms).
	sloEvery time.Duration
}

// Result is one served allocation.
type Result struct {
	// Assign maps each operator to a device.
	Assign []int
	// Devices is the cluster size the placement targets.
	Devices int
	// NumSuper is the coarse super-node count behind the placement.
	NumSuper int
	// Relative is the simulated relative throughput of the placement.
	Relative float64
	// Cached reports whether the placement came from the LRU.
	Cached bool
	// ModelVersion identifies the snapshot that computed the placement
	// (starts at 1, +1 per reload).
	ModelVersion uint64
	// BatchSize is the size of the forward batch this request rode in
	// (0 for cache hits).
	BatchSize int
	// Fingerprint is the canonical request identity (zero when caching
	// is disabled and no fingerprint was computed).
	Fingerprint Fingerprint
}

// modelVersion pins one immutable parameter snapshot.
type modelVersion struct {
	id   uint64
	snap *nn.Snapshot
}

// pending is one request waiting for its batched forward pass.
type pending struct {
	f         *gnn.Features
	ver       *modelVersion
	traceID   string    // request trace id ("" for programmatic callers)
	enq       time.Time // when the request entered the batcher queue
	probs     []float64
	batchSize int
	err       error
	delivered bool // set by the batcher goroutine just before close(done)
	done      chan struct{}
}

// deliver releases the waiting requester (batcher goroutine only).
func (p *pending) deliver() {
	p.delivered = true
	close(p.done)
}

// Service is a concurrent allocation server over one model.
type Service struct {
	model *core.Model
	pipe  *core.Pipeline

	version  atomic.Pointer[modelVersion]
	reloadMu sync.Mutex // serializes Reload; guards model.PS mutation

	cache *cache.LRU[Fingerprint, *Result]

	window   time.Duration
	maxBatch int
	reqCh    chan *pending
	closeMu  sync.RWMutex
	closed   bool
	wg       sync.WaitGroup
	stopBG   chan struct{} // closed on Close; stops the QPS sampler and SLO checker

	start  time.Time
	tracer *obs.Tracer

	// Admission control (admission.go). belowStreak is owned by the SLO
	// checker goroutine; sloShed is the latch the request path reads.
	maxInflight int
	sloP99      float64
	sloEvery    time.Duration
	sloShed     atomic.Bool
	belowStreak int

	// beforeForward, when set (tests), runs before each batched forward
	// pass with the batch size — the hook that lets the hot-swap test
	// hold an in-flight request across a Reload.
	beforeForward func(batch int)

	reqs      *obs.Counter
	errs      *obs.Counter
	reloads   *obs.Counter
	shedTotal *obs.Counter
	sloBreach *obs.Counter
	inflight  *obs.Gauge
	verG      *obs.Gauge
	qps       *obs.Gauge
	shedGauge *obs.Gauge
	latency   *obs.Histogram
	batchSz   *obs.Histogram
	latQ      *obs.Quantile
	queueQ    *obs.Quantile
}

// New starts a service over opts.Model: one batcher goroutine plus a QPS
// sampler. Callers must Close it.
func New(opts Options) (*Service, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("serve: Options.Model is required")
	}
	if opts.Placer == nil {
		opts.Placer = placer.Metis{Seed: 1}
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.BatchWindow == 0 {
		opts.BatchWindow = 200 * time.Microsecond
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 16
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	if opts.sloEvery <= 0 {
		opts.sloEvery = defaultSLOEvery
	}
	qOpts := obs.QuantileOpts{Window: opts.SLOWindow}
	s := &Service{
		model:       opts.Model,
		pipe:        &core.Pipeline{Model: opts.Model, Placer: opts.Placer},
		window:      opts.BatchWindow,
		maxBatch:    opts.MaxBatch,
		reqCh:       make(chan *pending, 256),
		stopBG:      make(chan struct{}),
		start:       time.Now(),
		tracer:      opts.Tracer,
		maxInflight: opts.MaxInflight,
		sloP99:      opts.SLOP99MS,
		sloEvery:    opts.sloEvery,
		reqs:        reg.Counter("serve_requests_total"),
		errs:        reg.Counter("serve_errors_total"),
		reloads:     reg.Counter("serve_reloads_total"),
		shedTotal:   reg.Counter("serve_shed_total"),
		sloBreach:   reg.Counter("serve_slo_breach_total"),
		inflight:    reg.Gauge("serve_inflight"),
		verG:        reg.Gauge("serve_model_version"),
		qps:         reg.Gauge("serve_qps"),
		shedGauge:   reg.Gauge("serve_shed_mode"),
		latency: reg.Histogram("serve_latency_ms",
			[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}),
		batchSz: reg.Histogram("serve_batch_size", []float64{1, 2, 4, 8, 16, 32, 64}),
		latQ:    reg.Quantile("serve_latency_quantiles_ms", qOpts),
		queueQ:  reg.Quantile("serve_queue_wait_ms", qOpts),
	}
	if opts.CacheSize > 0 {
		s.cache = cache.New[Fingerprint, *Result](opts.CacheSize)
		s.cache.Instrument(reg.Counter("serve_cache_hits_total"), reg.Counter("serve_cache_misses_total"))
	}
	s.version.Store(&modelVersion{id: 1, snap: nn.NewSnapshot(opts.Model.PS)})
	s.verG.Set(1)

	s.wg.Add(2)
	go s.batcher()
	go s.sampleQPS()
	if s.sloP99 > 0 {
		s.wg.Add(1)
		go s.sloLoop()
	}
	return s, nil
}

// Close stops accepting requests, drains queued ones, and stops the
// background goroutines. Idempotent.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.reqCh)
	s.closeMu.Unlock()
	close(s.stopBG)
	s.wg.Wait()
}

// Uptime is how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// LatencyQuantiles snapshots the windowed serve-latency estimator.
func (s *Service) LatencyQuantiles() obs.QuantileSnapshot { return s.latQ.SnapshotQuantile() }

// QueueWaitQuantiles snapshots the windowed queue-wait estimator.
func (s *Service) QueueWaitQuantiles() obs.QuantileSnapshot { return s.queueQ.SnapshotQuantile() }

// Version returns the current model snapshot id.
func (s *Service) Version() uint64 { return s.version.Load().id }

// CacheLen returns the number of cached placements.
func (s *Service) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// Reload swaps in a new model version: when path is non-empty the live
// parameters are replaced from the checkpoint first (nn.LoadParams
// validates fully before mutating), then a fresh snapshot is captured and
// becomes the serving version, and the placement cache is cleared
// (placements depend on the parameters). In-flight requests finish on the
// snapshot they captured at arrival; only requests arriving after Reload
// returns see the new version.
func (s *Service) Reload(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if path != "" {
		if err := nn.LoadParams(s.model.PS, path); err != nil {
			return err
		}
	}
	next := &modelVersion{id: s.version.Load().id + 1, snap: nn.NewSnapshot(s.model.PS)}
	s.version.Store(next)
	if s.cache != nil {
		s.cache.Clear()
	}
	s.reloads.Inc()
	s.verG.Set(float64(next.id))
	return nil
}

// Allocate serves one placement. The graph must be valid (the HTTP layer
// validates specs; programmatic callers are trusted) and have at least
// one edge. Safe for concurrent use.
func (s *Service) Allocate(g *stream.Graph, c sim.Cluster) (Result, error) {
	return s.AllocateCtx(context.Background(), g, c)
}

// AllocateCtx is Allocate with a request context. The context is a
// carrier, not a cancellation signal — a request that reached the
// batcher always completes — but a trace id placed in it via
// WithTraceID tags every child span this request emits into the
// service's tracer.
func (s *Service) AllocateCtx(ctx context.Context, g *stream.Graph, c sim.Cluster) (Result, error) {
	start := time.Now()
	s.reqs.Inc()
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		s.latency.Observe(ms)
		s.latQ.Observe(ms)
	}()
	traceID := TraceIDFrom(ctx)

	var fp Fingerprint
	if s.cache != nil {
		probeT0 := start
		if s.tracer != nil {
			probeT0 = time.Now()
		}
		fp = FingerprintRequest(g, c)
		r, ok := s.cache.Get(fp)
		s.emitSpan("cache-probe", laneRequest, probeT0, traceID)
		if ok {
			out := *r
			out.Assign = append([]int(nil), r.Assign...)
			out.Cached = true
			out.BatchSize = 0
			return out, nil
		}
	}

	// Cache hits above bypass admission — they cost ~1µs and relieve
	// load; only work that needs the model can be shed.
	if err := s.admit(); err != nil {
		return Result{}, err
	}

	p := &pending{
		f:       gnn.BuildFeatures(g, c),
		ver:     s.version.Load(),
		traceID: traceID,
		enq:     time.Now(),
		done:    make(chan struct{}),
	}
	if err := s.enqueue(p); err != nil {
		s.errs.Inc()
		return Result{}, err
	}
	<-p.done
	if p.err != nil {
		s.errs.Inc()
		return Result{}, p.err
	}

	a := s.pipe.AllocateRanked(g, c, p.probs)
	res := Result{
		Assign:       a.Placement.Assign,
		Devices:      a.Placement.Devices,
		NumSuper:     a.Coarse.NumSuper,
		Relative:     sim.Reward(g, a.Placement, c),
		ModelVersion: p.ver.id,
		BatchSize:    p.batchSize,
		Fingerprint:  fp,
	}
	if s.cache != nil {
		stored := res
		stored.Assign = append([]int(nil), res.Assign...)
		s.cache.Put(fp, &stored)
	}
	return res, nil
}

// Trace lanes: request-side spans on 0, batcher-side spans on 1.
const (
	laneRequest = 0
	laneBatcher = 1
)

// emitSpan records one completed span tagged with the request's trace
// id. No-op when the service has no tracer.
func (s *Service) emitSpan(name string, lane int, t0 time.Time, traceID string) {
	if s.tracer == nil {
		return
	}
	var args map[string]string
	if traceID != "" {
		args = map[string]string{"trace_id": traceID}
	}
	s.tracer.EmitArgs(name, lane, t0, time.Since(t0), args)
}

// enqueue hands p to the batcher, failing after Close. The read lock
// pairs with Close's write lock so a send can never race the close of
// reqCh.
func (s *Service) enqueue(p *pending) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.reqCh <- p
	return nil
}

// batcher coalesces requests: the first arrival opens a window of at most
// BatchWindow (capped at MaxBatch requests), then everything collected
// runs as one forward pass per model version.
func (s *Service) batcher() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*pending, 0, s.maxBatch)
	for {
		p, ok := <-s.reqCh
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		if s.window > 0 && s.maxBatch > 1 {
			timer.Reset(s.window)
		collect:
			for len(batch) < s.maxBatch {
				select {
				case q, ok := <-s.reqCh:
					if !ok {
						break collect
					}
					batch = append(batch, q)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		s.runBatch(batch)
	}
}

// runBatch groups the collected requests by pinned model version and runs
// one stacked forward pass per group. A panic in a forward pass fails the
// batch's requests instead of killing the batcher.
func (s *Service) runBatch(batch []*pending) {
	s.batchSz.Observe(float64(len(batch)))
	// The batcher has picked the batch up: each request's queue wait —
	// enqueue to here, covering the coalescing window — is over.
	now := time.Now()
	for _, p := range batch {
		wait := now.Sub(p.enq)
		s.queueQ.Observe(float64(wait) / float64(time.Millisecond))
		if s.tracer != nil {
			var args map[string]string
			if p.traceID != "" {
				args = map[string]string{"trace_id": p.traceID}
			}
			s.tracer.EmitArgs("queue-wait", laneBatcher, p.enq, wait, args)
		}
	}
	if s.beforeForward != nil {
		s.beforeForward(len(batch))
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: forward pass panicked: %v", r)
			for _, p := range batch {
				if !p.delivered {
					p.err = err
					p.deliver()
				}
			}
		}
	}()
	// Group by version in arrival order (versions change rarely; a batch
	// straddling a reload splits into one pass per snapshot). Grouping
	// works on a scratch copy so the recover path above still sees every
	// request.
	work := make([]*pending, len(batch))
	copy(work, batch)
	for i, p := range work {
		if p == nil {
			continue
		}
		group := []*pending{p}
		for j := i + 1; j < len(work); j++ {
			if work[j] != nil && work[j].ver == p.ver {
				group = append(group, work[j])
				work[j] = nil
			}
		}
		s.forwardGroup(group)
	}
}

// forwardGroup computes merge probabilities for every request in one
// stacked tape-free forward pass and releases the waiters.
func (s *Service) forwardGroup(group []*pending) {
	snap := group[0].ver.snap
	if len(group) == 1 {
		p := group[0]
		p.probs = make([]float64, p.f.Edge.Rows)
		p.batchSize = 1
		fwdT0 := time.Time{}
		if s.tracer != nil {
			fwdT0 = time.Now()
		}
		s.model.InferProbsInto(snap, p.f, p.probs)
		s.emitSpan("forward", laneBatcher, fwdT0, p.traceID)
		p.deliver()
		return
	}

	// Stack the per-graph features block-diagonally: node and edge rows
	// concatenate, edge endpoints shift by each graph's node offset. All
	// forward kernels are row-local, so each graph's output rows are
	// bit-identical to a solo pass.
	asmT0 := time.Time{}
	if s.tracer != nil {
		asmT0 = time.Now()
	}
	totalN, totalE := 0, 0
	for _, p := range group {
		totalN += p.f.Node.Rows
		totalE += p.f.Edge.Rows
	}
	node := tensor.Get(totalN, gnn.NodeFeatureDim)
	edge := tensor.Get(totalE, gnn.EdgeFeatureDim)
	src := make([]int, 0, totalE)
	dst := make([]int, 0, totalE)
	nodeOff, edgeOff := 0, 0
	for _, p := range group {
		copy(node.Data[nodeOff*gnn.NodeFeatureDim:], p.f.Node.Data)
		copy(edge.Data[edgeOff*gnn.EdgeFeatureDim:], p.f.Edge.Data)
		for _, v := range p.f.Src {
			src = append(src, v+nodeOff)
		}
		for _, v := range p.f.Dst {
			dst = append(dst, v+nodeOff)
		}
		nodeOff += p.f.Node.Rows
		edgeOff += p.f.Edge.Rows
	}
	stacked := &gnn.Features{Node: node, Edge: edge, Src: src, Dst: dst}
	all := make([]float64, totalE)
	var fwdT0 time.Time
	if s.tracer != nil {
		fwdT0 = time.Now()
		s.tracer.EmitArgs("batch-assembly", laneBatcher, asmT0, fwdT0.Sub(asmT0),
			map[string]string{"batch": fmt.Sprint(len(group))})
	}
	s.model.InferProbsInto(snap, stacked, all)
	if s.tracer != nil {
		// One measured forward pass, attributed to every rider so a
		// single trace id finds its request's span.
		dur := time.Since(fwdT0)
		for _, p := range group {
			var args map[string]string
			if p.traceID != "" {
				args = map[string]string{"trace_id": p.traceID}
			}
			s.tracer.EmitArgs("forward", laneBatcher, fwdT0, dur, args)
		}
	}
	tensor.Put(node)
	tensor.Put(edge)

	off := 0
	for _, p := range group {
		e := p.f.Edge.Rows
		p.probs = all[off : off+e : off+e]
		p.batchSize = len(group)
		off += e
		p.deliver()
	}
}

// sampleQPS refreshes the serve_qps gauge once per second from the
// request counter.
func (s *Service) sampleQPS() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	last := s.reqs.Value()
	for {
		select {
		case <-s.stopBG:
			return
		case <-tick.C:
			cur := s.reqs.Value()
			s.qps.Set(float64(cur - last))
			last = cur
		}
	}
}
