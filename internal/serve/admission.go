// admission.go is the SLO-driven load shedder. Two independent signals
// deny a request before it can queue for a forward pass:
//
//   - Inflight bound: when more than MaxInflight requests are inside
//     Allocate, new arrivals are shed immediately. This is the hard
//     backpressure valve — queue depth is bounded no matter how slow
//     the model is.
//   - SLO latch: a background checker compares the windowed p99 of
//     serve latency (the same estimator /statusz and /metrics export)
//     against the configured objective. One breach latches shed mode
//     on; it latches off only after the p99 has stayed below
//     sloRecoverFrac of the objective for sloRecoverStreak consecutive
//     checks, so the server does not flap at the boundary.
//
// Cache hits are never shed: they cost ~1µs and touch neither the
// batcher nor the model, so serving them during overload strictly
// reduces pressure. Shed requests surface as ErrOverloaded, which the
// HTTP layer maps to 429 + Retry-After.
package serve

import (
	"errors"
	"time"
)

// ErrOverloaded is returned by Allocate when admission control sheds
// the request (inflight bound exceeded or SLO shed mode latched).
var ErrOverloaded = errors.New("serve: overloaded, request shed")

const (
	// sloRecoverFrac is the hysteresis band: shed mode unlatches only
	// once p99 < sloRecoverFrac × SLO.
	sloRecoverFrac = 0.8
	// sloRecoverStreak is how many consecutive healthy checks unlatch
	// shed mode.
	sloRecoverStreak = 2
	// defaultSLOEvery is the SLO checker period.
	defaultSLOEvery = 250 * time.Millisecond
	// RetryAfterSeconds is the hint sent with 429 responses.
	RetryAfterSeconds = 1
)

// admit decides whether a cache-missing request may enter the batcher
// queue. Called with the request already counted in serve_inflight, so
// the bound uses ">" — a lone request never sheds itself.
func (s *Service) admit() error {
	if s.maxInflight > 0 && int(s.inflight.Value()) > s.maxInflight {
		s.shedTotal.Inc()
		return ErrOverloaded
	}
	if s.sloP99 > 0 && s.sloShed.Load() {
		s.shedTotal.Inc()
		return ErrOverloaded
	}
	return nil
}

// evalSLO runs one checker step: compare the windowed p99 against the
// objective and move the latch. Exposed as a method so tests can step
// the controller deterministically; the background loop just calls it
// on a ticker.
func (s *Service) evalSLO() {
	if s.sloP99 <= 0 {
		return
	}
	p99 := s.latQ.Query(0.99)
	switch {
	case p99 > s.sloP99:
		s.belowStreak = 0
		if !s.sloShed.Load() {
			s.sloShed.Store(true)
			s.shedGauge.Set(1)
		}
		s.sloBreach.Inc()
	case s.sloShed.Load():
		if p99 < sloRecoverFrac*s.sloP99 {
			s.belowStreak++
			if s.belowStreak >= sloRecoverStreak {
				s.sloShed.Store(false)
				s.shedGauge.Set(0)
				s.belowStreak = 0
			}
		} else {
			s.belowStreak = 0
		}
	}
}

// sloLoop drives evalSLO until Close.
func (s *Service) sloLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.sloEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopBG:
			return
		case <-tick.C:
			s.evalSLO()
		}
	}
}

// ShedMode reports whether the SLO latch currently sheds new work.
func (s *Service) ShedMode() bool { return s.sloShed.Load() }
