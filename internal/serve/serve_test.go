package serve

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/sim"
	"repro/internal/stream"
)

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Model == nil {
		opts.Model = core.New(core.DefaultConfig())
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func samePlacement(t *testing.T, label string, a, b []int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: assign lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: node %d on device %d vs %d", label, i, a[i], b[i])
		}
	}
}

// TestServedMatchesOffline pins the headline claim: a served placement is
// bit-identical to the offline Pipeline.Allocate placement for the same
// model, on both the cold and the cached path.
func TestServedMatchesOffline(t *testing.T) {
	s := gen.Small()
	model := core.New(core.DefaultConfig())
	pipe := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: 1}}
	svc := newTestService(t, Options{Model: model})

	for gi, g := range s.Generate().Test[:6] {
		offline := pipe.Allocate(g, s.Cluster)
		cold, err := svc.Allocate(g, s.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Cached {
			t.Fatalf("graph %d: first request reported cached", gi)
		}
		samePlacement(t, "cold", offline.Placement.Assign, cold.Assign)
		if r := sim.Reward(g, offline.Placement, s.Cluster); math.Float64bits(r) != math.Float64bits(cold.Relative) {
			t.Fatalf("graph %d: reward %v vs served %v", gi, r, cold.Relative)
		}
		if cold.NumSuper != offline.Coarse.NumSuper {
			t.Fatalf("graph %d: num_super %d vs %d", gi, cold.NumSuper, offline.Coarse.NumSuper)
		}

		warm, err := svc.Allocate(g, s.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Cached {
			t.Fatalf("graph %d: repeat request missed the cache", gi)
		}
		samePlacement(t, "cached", offline.Placement.Assign, warm.Assign)
		if math.Float64bits(warm.Relative) != math.Float64bits(cold.Relative) {
			t.Fatalf("graph %d: cached reward drifted", gi)
		}
	}
}

// TestBatchedMatchesSolo pins that coalesced requests produce bit-identical
// placements to one-at-a-time serving: every forward kernel is row-local,
// so the stacked batch must be invisible in the outputs.
func TestBatchedMatchesSolo(t *testing.T) {
	s := gen.Small()
	graphs := s.Generate().Test[:8]
	model := core.New(core.DefaultConfig())

	// Solo reference: no batching window, no cache.
	solo := newTestService(t, Options{Model: model, CacheSize: -1, BatchWindow: -1, MaxBatch: 1})
	want := make([]Result, len(graphs))
	for i, g := range graphs {
		r, err := solo.Allocate(g, s.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// Batched: wide window so concurrent requests coalesce, no cache.
	batched := newTestService(t, Options{Model: model, CacheSize: -1, BatchWindow: 20 * time.Millisecond, MaxBatch: len(graphs)})
	var wg sync.WaitGroup
	got := make([]Result, len(graphs))
	errs := make([]error, len(graphs))
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *stream.Graph) {
			defer wg.Done()
			got[i], errs[i] = batched.Allocate(g, s.Cluster)
		}(i, g)
	}
	wg.Wait()

	sawBatch := false
	for i := range graphs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i].BatchSize > 1 {
			sawBatch = true
		}
		samePlacement(t, "batched", want[i].Assign, got[i].Assign)
		if math.Float64bits(want[i].Relative) != math.Float64bits(got[i].Relative) {
			t.Fatalf("graph %d: batched reward %v vs solo %v", i, got[i].Relative, want[i].Relative)
		}
	}
	if !sawBatch {
		t.Log("no request coalesced into a batch >1 (timing); outputs still verified")
	}
}

// TestHotSwapInFlightOnOldSnapshot pins the reload protocol: a request
// already past the version pin when Reload lands must complete on the old
// snapshot, and the next request must see the new version.
func TestHotSwapInFlightOnOldSnapshot(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]

	model := core.New(core.DefaultConfig())
	pipeOld := &core.Pipeline{Model: model, Placer: placer.Metis{Seed: 1}}
	wantOld := pipeOld.Allocate(g, s.Cluster)

	reg := obs.NewRegistry()
	svc := newTestService(t, Options{Model: model, Registry: reg, CacheSize: -1})

	// Hold the batcher right before the forward pass.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.beforeForward = func(int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	type res struct {
		r   Result
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := svc.Allocate(g, s.Cluster)
		done <- res{r, err}
	}()
	<-entered

	// Reload with perturbed parameters while the request is in flight.
	for _, p := range model.PS.All() {
		for i := range p.Value.Data {
			p.Value.Data[i] *= 1.5
		}
	}
	if err := svc.Reload(""); err != nil {
		t.Fatal(err)
	}
	close(release)

	first := <-done
	if first.err != nil {
		t.Fatal(first.err)
	}
	if first.r.ModelVersion != 1 {
		t.Fatalf("in-flight request served by version %d, want 1", first.r.ModelVersion)
	}
	samePlacement(t, "in-flight on old snapshot", wantOld.Placement.Assign, first.r.Assign)

	// A fresh request runs on the new parameters.
	wantNew := pipeOld.Allocate(g, s.Cluster) // live params are the reloaded ones
	second, err := svc.Allocate(g, s.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if second.ModelVersion != 2 {
		t.Fatalf("post-reload request served by version %d, want 2", second.ModelVersion)
	}
	samePlacement(t, "post-reload", wantNew.Placement.Assign, second.Assign)
	if reg.Counter("serve_reloads_total").Value() != 1 {
		t.Fatalf("serve_reloads_total = %d", reg.Counter("serve_reloads_total").Value())
	}
}

// TestReloadClearsCache pins that cached placements die with the model
// version that computed them.
func TestReloadClearsCache(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig())})
	if _, err := svc.Allocate(g, s.Cluster); err != nil {
		t.Fatal(err)
	}
	if svc.CacheLen() != 1 {
		t.Fatalf("cache len %d after first request", svc.CacheLen())
	}
	if err := svc.Reload(""); err != nil {
		t.Fatal(err)
	}
	if svc.CacheLen() != 0 {
		t.Fatalf("cache len %d after reload, want 0", svc.CacheLen())
	}
	r, err := svc.Allocate(g, s.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached || r.ModelVersion != 2 {
		t.Fatalf("post-reload request cached=%v version=%d", r.Cached, r.ModelVersion)
	}
}

// TestReloadFromCheckpoint round-trips a checkpoint through /reload's
// load path: saved parameters must serve the placement the saved model
// computes offline.
func TestReloadFromCheckpoint(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]

	savedCfg := core.DefaultConfig()
	savedCfg.Seed = 99
	saved := core.New(savedCfg)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := nn.SaveParams(saved.PS, path); err != nil {
		t.Fatal(err)
	}
	wantPipe := &core.Pipeline{Model: saved, Placer: placer.Metis{Seed: 1}}
	want := wantPipe.Allocate(g, s.Cluster)

	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig())})
	if err := svc.Reload(path); err != nil {
		t.Fatal(err)
	}
	r, err := svc.Allocate(g, s.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	samePlacement(t, "checkpoint reload", want.Placement.Assign, r.Assign)

	// A corrupt checkpoint must be rejected without changing the version.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	ver := svc.Version()
	if err := svc.Reload(bad); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if svc.Version() != ver {
		t.Fatalf("failed reload bumped version %d→%d", ver, svc.Version())
	}
}

// TestFingerprintSensitivity pins that the canonical fingerprint separates
// every field an allocation depends on — and ignores labels.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() *stream.Graph {
		g := stream.NewGraph(100)
		a := g.AddNode(stream.Node{IPT: 10, Payload: 64})
		b := g.AddNode(stream.Node{IPT: 20, Payload: 32, State: 5})
		g.AddEdge(a, b, 0)
		return g
	}
	c := sim.DefaultCluster(4, 1000)
	fp := FingerprintRequest(base(), c)

	if got := FingerprintRequest(base(), c); got != fp {
		t.Fatal("fingerprint not deterministic")
	}
	named := base()
	named.Nodes[0].Name = "src"
	if got := FingerprintRequest(named, c); got != fp {
		t.Fatal("node names must not change the fingerprint")
	}

	mutations := map[string]func() (*stream.Graph, sim.Cluster){
		"source rate": func() (*stream.Graph, sim.Cluster) { return base().ScaleSourceRate(2), c },
		"node ipt": func() (*stream.Graph, sim.Cluster) {
			g := base()
			g.Nodes[0].IPT = 11
			return g, c
		},
		"node state": func() (*stream.Graph, sim.Cluster) {
			g := base()
			g.Nodes[1].State = 6
			return g, c
		},
		"edge payload": func() (*stream.Graph, sim.Cluster) {
			g := base()
			g.Edges[0].Payload = 65
			return g, c
		},
		"extra node": func() (*stream.Graph, sim.Cluster) {
			g := base()
			n := g.AddNode(stream.Node{IPT: 1, Payload: 1})
			g.AddEdge(1, n, 0)
			return g, c
		},
		"devices": func() (*stream.Graph, sim.Cluster) {
			c2 := c
			c2.Devices = 5
			return base(), c2
		},
		"bandwidth": func() (*stream.Graph, sim.Cluster) {
			c2 := c
			c2.Bandwidth *= 2
			return base(), c2
		},
		"link model": func() (*stream.Graph, sim.Cluster) {
			c2 := c
			c2.Links = sim.PairLink
			return base(), c2
		},
		"heterogeneous mips": func() (*stream.Graph, sim.Cluster) {
			c2 := c
			c2.DeviceMIPS = []float64{1000, 1250, 1250, 1500}
			return base(), c2
		},
	}
	for name, mut := range mutations {
		g, cc := mut()
		if got := FingerprintRequest(g, cc); got == fp {
			t.Fatalf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestAllocateAfterClose pins the shutdown contract.
func TestAllocateAfterClose(t *testing.T) {
	s := gen.Small()
	g := s.Generate().Test[0]
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig())})
	svc.Close()
	if _, err := svc.Allocate(g, s.Cluster); err != ErrClosed {
		t.Fatalf("Allocate after Close: %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestConcurrentAllocateRace hammers the service from many goroutines
// (mixed cache hits and misses) — meaningful under -race.
func TestConcurrentAllocateRace(t *testing.T) {
	s := gen.Small()
	graphs := s.Generate().Test[:4]
	svc := newTestService(t, Options{Model: core.New(core.DefaultConfig())})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				g := graphs[(w+i)%len(graphs)]
				if _, err := svc.Allocate(g, s.Cluster); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
}
