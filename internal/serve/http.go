// http.go is the JSON wire layer of the allocation service: POST
// /allocate takes a stream-graph spec (plus an optional cluster spec) and
// returns the placement, POST /reload hot-swaps the model, GET /healthz
// reports liveness, GET /statusz renders the human-readable operator
// page, and /metrics + /debug/vars (+ opt-in /debug/pprof) expose the
// obs registry — all on one mux served by obs.ServeHandler.
//
// Every response carries an X-Trace-Id header: adopted from the request
// when the client sent a plausible one, minted otherwise. The id rides
// the request context into the service, tagging the child spans the
// batcher emits, and keys the JSONL access log — so one curl's journey
// through validate → queue → batch → forward → respond is a single grep.
package serve

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
)

// NodeSpec is one operator in the wire format.
type NodeSpec struct {
	IPT         float64 `json:"ipt"`
	Payload     float64 `json:"payload"`
	Selectivity float64 `json:"selectivity,omitempty"` // default 1
	State       float64 `json:"state,omitempty"`
	Name        string  `json:"name,omitempty"`
}

// EdgeSpec is one directed connection in the wire format.
type EdgeSpec struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Payload float64 `json:"payload,omitempty"` // default: source node payload
}

// GraphSpec is the wire form of a stream graph.
type GraphSpec struct {
	SourceRate float64    `json:"source_rate"`
	Nodes      []NodeSpec `json:"nodes"`
	Edges      []EdgeSpec `json:"edges"`
}

// ClusterSpec is the wire form of a cluster description. Omitted fields
// fall back to the service's default cluster.
type ClusterSpec struct {
	Devices       int       `json:"devices"`
	MIPS          float64   `json:"mips,omitempty"`           // default 1.25e3 (paper)
	BandwidthMbps float64   `json:"bandwidth_mbps,omitempty"` // default from service
	Links         string    `json:"links,omitempty"`          // "nic" (default) or "pair"
	OverheadPerOp float64   `json:"overhead_per_op,omitempty"`
	DeviceMIPS    []float64 `json:"device_mips,omitempty"`
}

// AllocateRequest is the POST /allocate body.
type AllocateRequest struct {
	Graph   GraphSpec    `json:"graph"`
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// AllocateResponse is the POST /allocate reply.
type AllocateResponse struct {
	Assign             []int   `json:"assign"`
	Devices            int     `json:"devices"`
	NumSuper           int     `json:"num_super"`
	RelativeThroughput float64 `json:"relative_throughput"`
	Cached             bool    `json:"cached"`
	ModelVersion       uint64  `json:"model_version"`
	BatchSize          int     `json:"batch_size"`
}

// BuildGraph converts the spec into a validated stream graph with at
// least one edge (a single-operator "graph" has nothing to coarsen).
func (gs *GraphSpec) BuildGraph() (*stream.Graph, error) {
	if len(gs.Nodes) == 0 {
		return nil, fmt.Errorf("graph has no nodes")
	}
	if len(gs.Edges) == 0 {
		return nil, fmt.Errorf("graph has no edges")
	}
	g := stream.NewGraph(gs.SourceRate)
	for _, n := range gs.Nodes {
		g.AddNode(stream.Node{IPT: n.IPT, Payload: n.Payload, Selectivity: n.Selectivity, State: n.State, Name: n.Name})
	}
	for i, e := range gs.Edges {
		if e.Src < 0 || e.Src >= len(gs.Nodes) || e.Dst < 0 || e.Dst >= len(gs.Nodes) {
			return nil, fmt.Errorf("edge %d endpoints (%d,%d) out of range", i, e.Src, e.Dst)
		}
		g.AddEdge(e.Src, e.Dst, e.Payload)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildCluster resolves the spec against a default cluster.
func (cs *ClusterSpec) BuildCluster(def sim.Cluster) (sim.Cluster, error) {
	if cs == nil {
		return def, nil
	}
	c := def
	if cs.Devices != 0 {
		c.Devices = cs.Devices
		c.DeviceMIPS = nil
	}
	if cs.MIPS != 0 {
		c.MIPS = cs.MIPS
	}
	if cs.BandwidthMbps != 0 {
		c.Bandwidth = cs.BandwidthMbps * 1e6
	}
	switch cs.Links {
	case "":
	case "nic":
		c.Links = sim.NIC
	case "pair":
		c.Links = sim.PairLink
	default:
		return c, fmt.Errorf("unknown links model %q (want \"nic\" or \"pair\")", cs.Links)
	}
	if cs.OverheadPerOp != 0 {
		c.OverheadPerOp = cs.OverheadPerOp
	}
	if cs.DeviceMIPS != nil {
		if len(cs.DeviceMIPS) != c.Devices {
			return c, fmt.Errorf("%d device_mips values for %d devices", len(cs.DeviceMIPS), c.Devices)
		}
		c.DeviceMIPS = cs.DeviceMIPS
	}
	if c.Devices <= 0 {
		return c, fmt.Errorf("cluster has %d devices", c.Devices)
	}
	if c.Bandwidth <= 0 {
		return c, fmt.Errorf("cluster has non-positive bandwidth")
	}
	return c, nil
}

// AccessRecord is one JSONL access-log line: enough to join a response
// (by trace id) with its metrics, cache behaviour, and model version.
type AccessRecord struct {
	TS           string  `json:"ts"`
	TraceID      string  `json:"trace_id"`
	Status       int     `json:"status"`
	Fingerprint  string  `json:"fingerprint,omitempty"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Devices      int     `json:"devices"`
	BatchSize    int     `json:"batch_size"`
	Cached       bool    `json:"cached"`
	Shed         bool    `json:"shed,omitempty"`
	ModelVersion uint64  `json:"model_version,omitempty"`
	LatencyMS    float64 `json:"latency_ms"`
	Err          string  `json:"err,omitempty"`
}

// HandlerOpts tunes the HTTP layer beyond the required wiring.
type HandlerOpts struct {
	// AccessLog, when set, receives one AccessRecord per /allocate
	// request (every status, including sheds and bad specs).
	AccessLog *obs.JSONLWriter
	// Pprof mounts /debug/pprof/ on the observability mux (opt-in).
	Pprof bool
}

// Handler mounts the allocation API plus the observability endpoints:
// POST /allocate, POST /reload, GET /healthz, GET /statusz, GET
// /metrics, GET /debug/vars. reloadPath is the checkpoint /reload
// re-reads ("" means re-snapshot the live parameters). reg should be
// the registry the service reports into.
func Handler(s *Service, defCluster sim.Cluster, reloadPath string, reg *obs.Registry) http.Handler {
	return NewHandler(s, defCluster, reloadPath, reg, HandlerOpts{})
}

// NewHandler is Handler with options (access log, pprof).
func NewHandler(s *Service, defCluster sim.Cluster, reloadPath string, reg *obs.Registry, opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	obsH := obs.NewHandler(reg, obs.HandlerOpts{Pprof: opts.Pprof})
	mux.Handle("/metrics", obsH)
	mux.Handle("/debug/vars", obsH)
	if opts.Pprof {
		mux.Handle("/debug/pprof/", obsH)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok model_version=%d\n", s.Version())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		writeStatusz(w, s, reg)
	})
	mux.HandleFunc("/allocate", func(w http.ResponseWriter, r *http.Request) {
		handleAllocate(w, r, s, defCluster, opts.AccessLog)
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Reload(reloadPath); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "reloaded model_version=%d\n", s.Version())
	})
	return withTraceID(mux)
}

// withTraceID stamps every response with an X-Trace-Id — adopted from
// the request header when plausible, minted otherwise — and threads the
// id through the request context for span tagging and access logging.
func withTraceID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Trace-Id")
		if !validTraceID(id) {
			id = MintTraceID()
		}
		w.Header().Set("X-Trace-Id", id)
		next.ServeHTTP(w, r.WithContext(WithTraceID(r.Context(), id)))
	})
}

// handleAllocate is POST /allocate: decode, validate, serve, respond —
// writing one access-log record whatever the outcome. Shed requests get
// 429 + Retry-After so well-behaved clients back off.
func handleAllocate(w http.ResponseWriter, r *http.Request, s *Service, defCluster sim.Cluster, accessLog *obs.JSONLWriter) {
	start := time.Now()
	rec := AccessRecord{TraceID: TraceIDFrom(r.Context())}
	defer func() {
		if accessLog == nil {
			return
		}
		rec.TS = start.UTC().Format(time.RFC3339Nano)
		rec.LatencyMS = float64(time.Since(start)) / float64(time.Millisecond)
		accessLog.Write(rec)
	}()
	fail := func(status int, msg string) {
		rec.Status = status
		rec.Err = msg
		http.Error(w, msg, status)
	}

	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AllocateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	g, err := req.Graph.BuildGraph()
	if err != nil {
		fail(http.StatusBadRequest, "bad graph: "+err.Error())
		return
	}
	c, err := req.Cluster.BuildCluster(defCluster)
	if err != nil {
		fail(http.StatusBadRequest, "bad cluster: "+err.Error())
		return
	}
	rec.Nodes = g.NumNodes()
	rec.Edges = len(g.Edges)
	rec.Devices = c.Devices

	res, err := s.AllocateCtx(r.Context(), g, c)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			rec.Shed = true
			w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
			fail(http.StatusTooManyRequests, err.Error())
			return
		}
		fail(http.StatusServiceUnavailable, err.Error())
		return
	}
	rec.Status = http.StatusOK
	rec.BatchSize = res.BatchSize
	rec.Cached = res.Cached
	rec.ModelVersion = res.ModelVersion
	if res.Fingerprint != (Fingerprint{}) {
		rec.Fingerprint = hex.EncodeToString(res.Fingerprint[:])
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(AllocateResponse{
		Assign:             res.Assign,
		Devices:            res.Devices,
		NumSuper:           res.NumSuper,
		RelativeThroughput: res.Relative,
		Cached:             res.Cached,
		ModelVersion:       res.ModelVersion,
		BatchSize:          res.BatchSize,
	})
}

// writeStatusz renders the human-readable operator page: uptime, model
// version, live quantiles, shed state, cache and traffic counters.
func writeStatusz(w http.ResponseWriter, s *Service, reg *obs.Registry) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	lat := s.LatencyQuantiles()
	qw := s.QueueWaitQuantiles()
	shed := "off"
	if s.ShedMode() {
		shed = "ON"
	}
	fmt.Fprintf(w, "allocserve status\n\n")
	fmt.Fprintf(w, "uptime:         %s\n", s.Uptime().Round(time.Second))
	fmt.Fprintf(w, "model_version:  %d\n", s.Version())
	fmt.Fprintf(w, "qps:            %v\n", reg.Gauge("serve_qps").Value())
	fmt.Fprintf(w, "inflight:       %v\n", reg.Gauge("serve_inflight").Value())
	fmt.Fprintf(w, "requests:       %d (errors %d)\n",
		reg.Counter("serve_requests_total").Value(), reg.Counter("serve_errors_total").Value())
	fmt.Fprintf(w, "\nlatency_ms (windowed):    ")
	writeQuantiles(w, lat)
	fmt.Fprintf(w, "queue_wait_ms (windowed): ")
	writeQuantiles(w, qw)
	fmt.Fprintf(w, "\nshed_mode:            %s\n", shed)
	fmt.Fprintf(w, "shed_total:           %d\n", reg.Counter("serve_shed_total").Value())
	fmt.Fprintf(w, "slo_breach_total:     %d\n", reg.Counter("serve_slo_breach_total").Value())
	fmt.Fprintf(w, "\ncache: %d entries (hits %d, misses %d)\n", s.CacheLen(),
		reg.Counter("serve_cache_hits_total").Value(), reg.Counter("serve_cache_misses_total").Value())
}

func writeQuantiles(w http.ResponseWriter, q obs.QuantileSnapshot) {
	for i, obj := range q.Objectives {
		fmt.Fprintf(w, "p%g=%.3f ", obj*100, q.Values[i])
	}
	fmt.Fprintf(w, "(n=%d)\n", q.Count)
}
