// http.go is the JSON wire layer of the allocation service: POST
// /allocate takes a stream-graph spec (plus an optional cluster spec) and
// returns the placement, POST /reload hot-swaps the model, GET /healthz
// reports liveness, and /metrics + /debug/vars expose the obs registry —
// all on one mux served by obs.ServeHandler.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
)

// NodeSpec is one operator in the wire format.
type NodeSpec struct {
	IPT         float64 `json:"ipt"`
	Payload     float64 `json:"payload"`
	Selectivity float64 `json:"selectivity,omitempty"` // default 1
	State       float64 `json:"state,omitempty"`
	Name        string  `json:"name,omitempty"`
}

// EdgeSpec is one directed connection in the wire format.
type EdgeSpec struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Payload float64 `json:"payload,omitempty"` // default: source node payload
}

// GraphSpec is the wire form of a stream graph.
type GraphSpec struct {
	SourceRate float64    `json:"source_rate"`
	Nodes      []NodeSpec `json:"nodes"`
	Edges      []EdgeSpec `json:"edges"`
}

// ClusterSpec is the wire form of a cluster description. Omitted fields
// fall back to the service's default cluster.
type ClusterSpec struct {
	Devices       int       `json:"devices"`
	MIPS          float64   `json:"mips,omitempty"`           // default 1.25e3 (paper)
	BandwidthMbps float64   `json:"bandwidth_mbps,omitempty"` // default from service
	Links         string    `json:"links,omitempty"`          // "nic" (default) or "pair"
	OverheadPerOp float64   `json:"overhead_per_op,omitempty"`
	DeviceMIPS    []float64 `json:"device_mips,omitempty"`
}

// AllocateRequest is the POST /allocate body.
type AllocateRequest struct {
	Graph   GraphSpec    `json:"graph"`
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// AllocateResponse is the POST /allocate reply.
type AllocateResponse struct {
	Assign             []int   `json:"assign"`
	Devices            int     `json:"devices"`
	NumSuper           int     `json:"num_super"`
	RelativeThroughput float64 `json:"relative_throughput"`
	Cached             bool    `json:"cached"`
	ModelVersion       uint64  `json:"model_version"`
	BatchSize          int     `json:"batch_size"`
}

// BuildGraph converts the spec into a validated stream graph with at
// least one edge (a single-operator "graph" has nothing to coarsen).
func (gs *GraphSpec) BuildGraph() (*stream.Graph, error) {
	if len(gs.Nodes) == 0 {
		return nil, fmt.Errorf("graph has no nodes")
	}
	if len(gs.Edges) == 0 {
		return nil, fmt.Errorf("graph has no edges")
	}
	g := stream.NewGraph(gs.SourceRate)
	for _, n := range gs.Nodes {
		g.AddNode(stream.Node{IPT: n.IPT, Payload: n.Payload, Selectivity: n.Selectivity, State: n.State, Name: n.Name})
	}
	for i, e := range gs.Edges {
		if e.Src < 0 || e.Src >= len(gs.Nodes) || e.Dst < 0 || e.Dst >= len(gs.Nodes) {
			return nil, fmt.Errorf("edge %d endpoints (%d,%d) out of range", i, e.Src, e.Dst)
		}
		g.AddEdge(e.Src, e.Dst, e.Payload)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildCluster resolves the spec against a default cluster.
func (cs *ClusterSpec) BuildCluster(def sim.Cluster) (sim.Cluster, error) {
	if cs == nil {
		return def, nil
	}
	c := def
	if cs.Devices != 0 {
		c.Devices = cs.Devices
		c.DeviceMIPS = nil
	}
	if cs.MIPS != 0 {
		c.MIPS = cs.MIPS
	}
	if cs.BandwidthMbps != 0 {
		c.Bandwidth = cs.BandwidthMbps * 1e6
	}
	switch cs.Links {
	case "":
	case "nic":
		c.Links = sim.NIC
	case "pair":
		c.Links = sim.PairLink
	default:
		return c, fmt.Errorf("unknown links model %q (want \"nic\" or \"pair\")", cs.Links)
	}
	if cs.OverheadPerOp != 0 {
		c.OverheadPerOp = cs.OverheadPerOp
	}
	if cs.DeviceMIPS != nil {
		if len(cs.DeviceMIPS) != c.Devices {
			return c, fmt.Errorf("%d device_mips values for %d devices", len(cs.DeviceMIPS), c.Devices)
		}
		c.DeviceMIPS = cs.DeviceMIPS
	}
	if c.Devices <= 0 {
		return c, fmt.Errorf("cluster has %d devices", c.Devices)
	}
	if c.Bandwidth <= 0 {
		return c, fmt.Errorf("cluster has non-positive bandwidth")
	}
	return c, nil
}

// Handler mounts the allocation API plus the observability endpoints:
// POST /allocate, POST /reload, GET /healthz, GET /metrics, GET
// /debug/vars. reloadPath is the checkpoint /reload re-reads ("" means
// re-snapshot the live parameters). reg should be the registry the
// service reports into.
func Handler(s *Service, defCluster sim.Cluster, reloadPath string, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	obsH := obs.Handler(reg)
	mux.Handle("/metrics", obsH)
	mux.Handle("/debug/vars", obsH)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok model_version=%d\n", s.Version())
	})
	mux.HandleFunc("/allocate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req AllocateRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		g, err := req.Graph.BuildGraph()
		if err != nil {
			http.Error(w, "bad graph: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, err := req.Cluster.BuildCluster(defCluster)
		if err != nil {
			http.Error(w, "bad cluster: "+err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Allocate(g, c)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(AllocateResponse{
			Assign:             res.Assign,
			Devices:            res.Devices,
			NumSuper:           res.NumSuper,
			RelativeThroughput: res.Relative,
			Cached:             res.Cached,
			ModelVersion:       res.ModelVersion,
			BatchSize:          res.BatchSize,
		})
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Reload(reloadPath); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "reloaded model_version=%d\n", s.Version())
	})
	return mux
}
