// fingerprint.go canonicalizes a (graph, cluster) allocation request into
// a fixed-size cache key. The placement cache must never serve a placement
// computed for a different request, so the fingerprint covers every field
// the forward pass and the simulator read: the source rate, each node's
// IPT/payload/selectivity/state, each edge's endpoints and payload, and
// the full cluster description. Node names are deliberately excluded —
// they are labels, not features, and two graphs differing only in names
// must share an entry. The encoding is unambiguous (fixed-width fields,
// length prefixes), so equal fingerprint *inputs* — not merely colliding
// hashes — are the only way to share a SHA-256 key; at 256 bits an
// accidental collision is out of scope by construction.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/stream"
)

// Fingerprint is the canonical identity of one allocation request.
type Fingerprint [sha256.Size]byte

// fpBufPool recycles encode buffers so a steady-state fingerprint costs
// no allocation.
var fpBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// FingerprintRequest hashes the canonical encoding of (g, c).
func FingerprintRequest(g *stream.Graph, c sim.Cluster) Fingerprint {
	bp := fpBufPool.Get().(*[]byte)
	b := (*bp)[:0]

	b = appendF64(b, g.SourceRate)
	b = appendU64(b, uint64(len(g.Nodes)))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		b = appendF64(b, n.IPT)
		b = appendF64(b, n.Payload)
		b = appendF64(b, n.Selectivity)
		b = appendF64(b, n.State)
	}
	b = appendU64(b, uint64(len(g.Edges)))
	for i := range g.Edges {
		e := &g.Edges[i]
		b = appendU64(b, uint64(e.Src))
		b = appendU64(b, uint64(e.Dst))
		b = appendF64(b, e.Payload)
	}

	b = appendU64(b, uint64(c.Devices))
	b = appendF64(b, c.MIPS)
	b = appendF64(b, c.Bandwidth)
	b = appendU64(b, uint64(c.Links))
	b = appendF64(b, c.OverheadPerOp)
	b = appendU64(b, uint64(len(c.DeviceMIPS)))
	for _, m := range c.DeviceMIPS {
		b = appendF64(b, m)
	}

	fp := sha256.Sum256(b)
	*bp = b
	fpBufPool.Put(bp)
	return fp
}
