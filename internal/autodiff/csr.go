// csr.go records the CSR-native tape ops the sparse GNN encode path uses:
// segment means and gather-project transforms that take the graph's
// prebuilt CSR incidence buckets instead of re-bucketing an index vector
// (and allocating the bucket arrays) on every forward pass, plus a fused
// slice-concat-matmul-tanh op that updates one half of the node state
// without materializing the sliced or concatenated intermediates on the
// tape. Forward values are bit-identical to the unfused/seg-vector ops
// they replace; gradients decompose into the same blocked kernels.
package autodiff

import (
	"fmt"

	"repro/internal/tensor"
)

// SegmentMeanCSR records per-bucket row averaging: out.Row(s) is the mean
// of a's rows listed in members[offs[s]:offs[s+1]]. members must partition
// a's rows (every row in exactly one bucket, ascending within a bucket),
// which is what a graph incidence view provides. Unlike SegmentMean, no
// per-call count scratch is needed — counts are implied by the offsets.
func (t *Tape) SegmentMeanCSR(a *Node, offs []int32, members []int) *Node {
	if len(members) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: segment-mean-csr %d members for %d rows", len(members), a.Value.Rows))
	}
	segments := len(offs) - 1
	v := tensor.SegmentMeanCSRInto(a.Value, offs, members, t.newVal(segments, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(a.Value.Rows, a.Value.Cols)
		for s := 0; s < segments; s++ {
			lo, hi := offs[s], offs[s+1]
			if lo == hi {
				continue
			}
			inv := 1 / float64(hi-lo)
			grow := g.Row(s)
			for _, i := range members[lo:hi] {
				drow := d.Row(i)
				for j, gv := range grow {
					drow[j] = gv * inv
				}
			}
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// GatherMatMulAddTanhCSR is GatherMatMulAddTanh with the backward scatter
// driven by a prebuilt bucket structure over a's rows (offs has
// a.Rows+1 entries; bucket r lists the positions e with idx[e] == r):
// the forward pass is the identical fused kernel, and the gradient scatter
// reuses the graph's incidence view instead of counting-sorting idx inside
// every backward call.
func (t *Tape) GatherMatMulAddTanhCSR(a *Node, idx []int, b, add *Node, offs []int32, members []int) *Node {
	var addM *tensor.Matrix
	req := anyGrad(a, b)
	if add != nil {
		addM = add.Value
		req = req || add.reqG
	}
	if len(idx) == 0 {
		return t.pushOwned(t.newVal(0, b.Value.Cols), req, func(*tensor.Matrix) {})
	}
	if len(offs) != a.Value.Rows+1 || len(members) != len(idx) {
		panic(fmt.Sprintf("autodiff: gather-csr buckets %d/%d for %d rows, %d edges",
			len(offs), len(members), a.Value.Rows, len(idx)))
	}
	v := tensor.GatherMatMulAddTanhInto(a.Value, idx, b.Value, addM, t.newVal(len(idx), b.Value.Cols))
	return t.pushOwned(v, req, func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		if add != nil {
			add.accum(d)
		}
		if b.reqG {
			db := tensor.GatherMatMulT1Into(a.Value, idx, d, tensor.Get(a.Value.Cols, d.Cols))
			b.accum(db)
			tensor.Put(db)
		}
		if a.reqG {
			dg := tensor.MatMulT2Into(d, b.Value, tensor.Get(d.Rows, b.Value.Rows)) // per-edge dH rows
			ds := tensor.GetZeroed(a.Value.Rows, a.Value.Cols)
			tensor.ScatterAddRowsCSR(ds, dg, offs, members)
			a.accum(ds)
			tensor.Put(ds)
			tensor.Put(dg)
		}
		tensor.Put(d)
	})
}

// ConcatMatMulTanh records tanh(concat(x[:, lo:hi], y)·w) as one tape
// entry — the next-state update of one GNN hop half. The column slice and
// the concatenation are never materialized: the forward kernel assembles
// each row in a worker-local scratch and feeds it to the same product
// kernel MatMulTanh uses, so the value is bit-identical to the unfused
// SliceCols → ConcatCols → MatMulTanh chain while three N-row tape
// intermediates disappear. The backward pass rebuilds the concatenated
// operand once into transient arena scratch for the weight gradient.
func (t *Tape) ConcatMatMulTanh(x *Node, lo, hi int, y, w *Node) *Node {
	xv, yv, wv := x.Value, y.Value, w.Value
	if lo < 0 || hi > xv.Cols || lo > hi {
		panic(fmt.Sprintf("autodiff: concat-matmul-tanh slice [%d,%d) of %d", lo, hi, xv.Cols))
	}
	if xv.Rows != yv.Rows {
		panic("autodiff: concat-matmul-tanh row mismatch")
	}
	k1, k2 := hi-lo, yv.Cols
	if wv.Rows != k1+k2 {
		panic(fmt.Sprintf("autodiff: concat-matmul-tanh %d+%d cols · %dx%d", k1, k2, wv.Rows, wv.Cols))
	}
	v := tensor.ConcatMatMulTanhInto(xv, lo, hi, yv, wv, t.newVal(xv.Rows, wv.Cols))
	return t.pushOwned(v, anyGrad(x, y, w), func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		if w.reqG {
			cat := tensor.Get(xv.Rows, k1+k2)
			for i := 0; i < xv.Rows; i++ {
				crow := cat.Row(i)
				copy(crow[:k1], xv.Row(i)[lo:hi])
				copy(crow[k1:], yv.Row(i))
			}
			dw := tensor.MatMulT1Into(cat, d, tensor.Get(k1+k2, d.Cols))
			w.accum(dw)
			tensor.Put(dw)
			tensor.Put(cat)
		}
		if x.reqG || y.reqG {
			dcat := tensor.MatMulT2Into(d, wv, tensor.Get(d.Rows, k1+k2))
			if x.reqG {
				dx := tensor.GetZeroed(xv.Rows, xv.Cols)
				for i := 0; i < xv.Rows; i++ {
					copy(dx.Row(i)[lo:hi], dcat.Row(i)[:k1])
				}
				x.accum(dx)
				tensor.Put(dx)
			}
			if y.reqG {
				dy := tensor.Get(yv.Rows, k2)
				for i := 0; i < yv.Rows; i++ {
					copy(dy.Row(i), dcat.Row(i)[k1:])
				}
				y.accum(dy)
				tensor.Put(dy)
			}
			tensor.Put(dcat)
		}
		tensor.Put(d)
	})
}
