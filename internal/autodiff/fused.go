// fused.go records fused tape ops: single tape entries for op chains that
// the GNN encoder and the linear layers run on every step. Fusing cuts
// both tape entries (fewer node structs, fewer backward closures) and
// memory traffic (intermediates like the E×2M gathered neighbor matrix or
// the transposed weight copy are never materialized). Each fused backward
// decomposes into the same blocked tensor kernels the unfused ops use, so
// gradients match the unfused composition to rounding.
package autodiff

import (
	"fmt"

	"repro/internal/tensor"
)

// MatMulT2 records a·bᵀ without materializing the transpose — the
// building block for y = x·Wᵀ layers and qᵀk attention scores.
func (t *Tape) MatMulT2(a, b *Node) *Node {
	v := tensor.MatMulT2Into(a.Value, b.Value, t.newVal(a.Value.Rows, b.Value.Rows))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		if a.reqG {
			d := tensor.MatMulInto(g, b.Value, tensor.Get(g.Rows, b.Value.Cols)) // dA = G·B
			a.accum(d)
			tensor.Put(d)
		}
		if b.reqG {
			d := tensor.MatMulT1Into(g, a.Value, tensor.Get(g.Cols, a.Value.Cols)) // dB = Gᵀ·A
			b.accum(d)
			tensor.Put(d)
		}
	})
}

// MatMulTanh records tanh(a·b) as one tape entry: the activation runs in
// the kernel's store loop and the linear pre-activation is never stored.
func (t *Tape) MatMulTanh(a, b *Node) *Node {
	v := tensor.MatMulTanhInto(a.Value, b.Value, t.newVal(a.Value.Rows, b.Value.Cols))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols)) // dZ = G ⊙ (1-y²)
		if a.reqG {
			da := tensor.MatMulT2Into(d, b.Value, tensor.Get(d.Rows, b.Value.Rows))
			a.accum(da)
			tensor.Put(da)
		}
		if b.reqG {
			db := tensor.MatMulT1Into(a.Value, d, tensor.Get(a.Value.Cols, d.Cols))
			b.accum(db)
			tensor.Put(db)
		}
		tensor.Put(d)
	})
}

// GatherMatMulAddTanh records tanh(gather(a, idx)·b + add) — one GNN
// message transform — as a single tape entry. add may be nil to skip the
// additive term (the edge-feature ablation). The gathered matrix is never
// materialized in the forward pass: rows of a are read in place through
// idx, and the weight gradient reads them the same way in the backward
// pass.
func (t *Tape) GatherMatMulAddTanh(a *Node, idx []int, b, add *Node) *Node {
	var addM *tensor.Matrix
	req := anyGrad(a, b)
	if add != nil {
		addM = add.Value
		req = req || add.reqG
	}
	if len(idx) == 0 {
		// Edgeless graph: a 0×cols result with no gradient flow, matching
		// the unfused gather→matmul composition.
		return t.pushOwned(t.newVal(0, b.Value.Cols), req, func(*tensor.Matrix) {})
	}
	v := tensor.GatherMatMulAddTanhInto(a.Value, idx, b.Value, addM, t.newVal(len(idx), b.Value.Cols))
	return t.pushOwned(v, req, func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		if add != nil {
			add.accum(d)
		}
		if b.reqG {
			db := tensor.GatherMatMulT1Into(a.Value, idx, d, tensor.Get(a.Value.Cols, d.Cols))
			b.accum(db)
			tensor.Put(db)
		}
		if a.reqG {
			dg := tensor.MatMulT2Into(d, b.Value, tensor.Get(d.Rows, b.Value.Rows)) // per-edge dH rows
			ds := tensor.GetZeroed(a.Value.Rows, a.Value.Cols)
			tensor.ScatterAddRowsPar(ds, dg, idx)
			a.accum(ds)
			tensor.Put(ds)
			tensor.Put(dg)
		}
		tensor.Put(d)
	})
}

// Affine records y = x·wᵀ + bias (w is out×in, bias 1×out) as one tape
// entry — the fused forward pass of nn.Linear, with no transposed weight
// copy on the tape.
func (t *Tape) Affine(x, w, bias *Node) *Node {
	checkAffine(x, w, bias)
	v := tensor.MatMulT2BiasInto(x.Value, w.Value, bias.Value, t.newVal(x.Value.Rows, w.Value.Rows))
	return t.pushOwned(v, anyGrad(x, w, bias), func(g *tensor.Matrix) {
		affineBackward(x, w, bias, g)
	})
}

// AffineTanh records y = tanh(x·wᵀ + bias) as one tape entry: affine plus
// activation fused into a single kernel pass.
func (t *Tape) AffineTanh(x, w, bias *Node) *Node {
	checkAffine(x, w, bias)
	v := tensor.MatMulT2BiasTanhInto(x.Value, w.Value, bias.Value, t.newVal(x.Value.Rows, w.Value.Rows))
	return t.pushOwned(v, anyGrad(x, w, bias), func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		affineBackward(x, w, bias, d)
		tensor.Put(d)
	})
}

// affineBackward scatters the (pre-activation) gradient d of an affine op
// into its three operands: dX = D·W, dW = Dᵀ·X, dBias = column sums of D.
func affineBackward(x, w, bias *Node, d *tensor.Matrix) {
	if x.reqG {
		dx := tensor.MatMulInto(d, w.Value, tensor.Get(d.Rows, w.Value.Cols))
		x.accum(dx)
		tensor.Put(dx)
	}
	if w.reqG {
		dw := tensor.MatMulT1Into(d, x.Value, tensor.Get(d.Cols, x.Value.Cols))
		w.accum(dw)
		tensor.Put(dw)
	}
	if bias.reqG {
		db := tensor.ColSumsInto(d, tensor.Get(1, d.Cols))
		bias.accum(db)
		tensor.Put(db)
	}
}

func checkAffine(x, w, bias *Node) {
	if x.Value.Cols != w.Value.Cols {
		panic(fmt.Sprintf("autodiff: affine shape mismatch %dx%d · %dx%dᵀ",
			x.Value.Rows, x.Value.Cols, w.Value.Rows, w.Value.Cols))
	}
	if bias.Value.Rows != 1 || bias.Value.Cols != w.Value.Rows {
		panic(fmt.Sprintf("autodiff: affine bias shape %dx%d, want 1x%d",
			bias.Value.Rows, bias.Value.Cols, w.Value.Rows))
	}
}
