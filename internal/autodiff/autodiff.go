// Package autodiff implements a small reverse-mode automatic
// differentiation tape over dense matrices.
//
// The design is matrix-level rather than scalar-level: each tape node holds
// an entire tensor.Matrix, so a full GNN forward pass over a 2,000-node
// graph records only a few dozen tape entries. Backpropagation walks the
// tape in reverse creation order (creation order is a valid topological
// order because operands must exist before an op uses them).
//
// The tape is allocation-lean: op outputs, gradients, and backward
// scratch all come from the tensor arena (tensor.Get/Put), and Reset
// recycles the node slab, so a tape reused across training steps reaches
// a steady state where a forward+backward pass performs no matrix
// allocations at all. Values and gradients obtained from a tape are valid
// only until the next Reset (or, for gradients, the next Backward) —
// copy anything that must outlive the step.
//
// Gradients are validated against central finite differences in the
// package tests.
package autodiff

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Node is one value on the tape: its forward result plus a closure that
// scatters the node's accumulated gradient into its parents.
type Node struct {
	Value   *tensor.Matrix
	grad    *tensor.Matrix
	back    func(grad *tensor.Matrix)
	reqG    bool
	ownsVal bool // Value came from the arena and is recycled on Reset
	tape    *Tape
}

// Grad returns the gradient accumulated for this node by the most recent
// Backward call, or nil if the node does not require gradients. The
// matrix is owned by the tape: it is recycled by the next Backward or
// Reset, so copy it if it must live longer.
func (n *Node) Grad() *tensor.Matrix { return n.grad }

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.reqG }

// AddGradInto accumulates this node's gradient into dst (which must match
// the node's shape) and reports whether a gradient was present. dst is
// caller-owned: unlike Grad's return value it survives the next Reset or
// Backward, which is what lets per-replica tapes export their gradient
// vectors for a deterministic cross-replica reduction.
func (n *Node) AddGradInto(dst *tensor.Matrix) bool {
	if n.grad == nil {
		return false
	}
	tensor.AddInPlace(dst, n.grad)
	return true
}

// Tape records the forward computation. Tapes are not safe for concurrent
// use, but a single tape can be reused across training steps via Reset,
// which retains the node slab and returns every tape-owned matrix to the
// arena.
type Tape struct {
	nodes   []*Node
	spare   []*Node          // recycled node structs (high-water slab)
	scratch []*tensor.Matrix // non-node forward caches (Log clamp, softmax)
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewTapeWithCapacity returns an empty tape pre-sized for n nodes, so the
// node slice is never reallocated while recording up to n ops.
func NewTapeWithCapacity(n int) *Tape {
	return &Tape{nodes: make([]*Node, 0, n)}
}

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Cap returns the node-slice capacity (useful to verify slab retention).
func (t *Tape) Cap() int { return cap(t.nodes) }

// Reserve grows the node slice capacity to at least n so subsequent
// recording does not reallocate it mid-step.
func (t *Tape) Reserve(n int) {
	if cap(t.nodes) < n {
		grown := make([]*Node, len(t.nodes), n)
		copy(grown, t.nodes)
		t.nodes = grown
	}
}

// Reset clears the tape for reuse: every tape-owned matrix (op outputs,
// gradients, forward caches) returns to the arena and node structs move
// to the spare slab for the next recording. Leaf and Const values are
// caller-owned and untouched. After Reset, matrices previously obtained
// from this tape's nodes must not be used.
func (t *Tape) Reset() {
	for _, n := range t.nodes {
		if n.grad != nil {
			tensor.Put(n.grad)
			n.grad = nil
		}
		if n.ownsVal {
			tensor.Put(n.Value)
			n.ownsVal = false
		}
		n.Value = nil
		n.back = nil
		n.reqG = false
		n.tape = nil
	}
	t.spare = append(t.spare, t.nodes...)
	t.nodes = t.nodes[:0]
	for _, m := range t.scratch {
		tensor.Put(m)
	}
	t.scratch = t.scratch[:0]
}

func (t *Tape) push(v *tensor.Matrix, reqG bool, back func(grad *tensor.Matrix)) *Node {
	var n *Node
	if k := len(t.spare); k > 0 {
		n = t.spare[k-1]
		t.spare[k-1] = nil
		t.spare = t.spare[:k-1]
	} else {
		n = &Node{}
	}
	n.Value, n.back, n.reqG, n.tape = v, back, reqG, t
	t.nodes = append(t.nodes, n)
	return n
}

// pushOwned records an op output whose value came from the arena.
func (t *Tape) pushOwned(v *tensor.Matrix, reqG bool, back func(grad *tensor.Matrix)) *Node {
	n := t.push(v, reqG, back)
	n.ownsVal = true
	return n
}

// newVal allocates an op-output matrix from the arena. Contents are
// unspecified; the op must fully define it.
func (t *Tape) newVal(rows, cols int) *tensor.Matrix { return tensor.Get(rows, cols) }

// newScratch allocates a tape-lifetime forward cache from the arena
// (released on Reset, not tied to a node).
func (t *Tape) newScratch(rows, cols int) *tensor.Matrix {
	m := tensor.Get(rows, cols)
	t.scratch = append(t.scratch, m)
	return m
}

// accum adds g into n's gradient (copying on first touch; g remains
// caller-owned and may be recycled immediately after the call).
func (n *Node) accum(g *tensor.Matrix) {
	if !n.reqG {
		return
	}
	if n.grad == nil {
		n.grad = tensor.Get(g.Rows, g.Cols)
		copy(n.grad.Data, g.Data)
		return
	}
	tensor.AddInPlace(n.grad, g)
}

// Const records a value that gradients do not flow into.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.push(v, false, nil)
}

// Leaf records a differentiable leaf (a parameter or a learnable input).
func (t *Tape) Leaf(v *tensor.Matrix) *Node {
	return t.push(v, true, nil)
}

// Backward seeds root with dL/droot = seed (or ones if nil; root must be
// 1×1 in that case) and propagates gradients to every leaf.
func (t *Tape) Backward(root *Node, seed *tensor.Matrix) {
	if root.tape != t {
		panic("autodiff: root belongs to a different tape")
	}
	// Recycle gradients from any previous backward pass.
	for _, n := range t.nodes {
		if n.grad != nil {
			tensor.Put(n.grad)
			n.grad = nil
		}
	}
	if seed == nil {
		if root.Value.Rows != 1 || root.Value.Cols != 1 {
			panic("autodiff: nil seed requires a scalar root")
		}
		root.grad = tensor.Get(1, 1)
		root.grad.Data[0] = 1
	} else {
		root.grad = tensor.Get(seed.Rows, seed.Cols)
		copy(root.grad.Data, seed.Data)
	}
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.grad == nil || n.back == nil {
			continue
		}
		n.back(n.grad)
	}
}

func anyGrad(ns ...*Node) bool {
	for _, n := range ns {
		if n.reqG {
			return true
		}
	}
	return false
}

// MatMul records a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := tensor.MatMulInto(a.Value, b.Value, t.newVal(a.Value.Rows, b.Value.Cols))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		if a.reqG {
			d := tensor.MatMulT2Into(g, b.Value, tensor.Get(g.Rows, b.Value.Rows)) // dA = G·Bᵀ
			a.accum(d)
			tensor.Put(d)
		}
		if b.reqG {
			d := tensor.MatMulT1Into(a.Value, g, tensor.Get(a.Value.Cols, g.Cols)) // dB = Aᵀ·G
			b.accum(d)
			tensor.Put(d)
		}
	})
}

// Add records a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := tensor.AddInto(a.Value, b.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		a.accum(g)
		b.accum(g)
	})
}

// Sub records a-b.
func (t *Tape) Sub(a, b *Node) *Node {
	v := tensor.SubInto(a.Value, b.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		a.accum(g)
		if b.reqG {
			d := tensor.ScaleInto(g, -1, tensor.Get(g.Rows, g.Cols))
			b.accum(d)
			tensor.Put(d)
		}
	})
}

// Mul records the Hadamard product a⊙b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := tensor.MulInto(a.Value, b.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, anyGrad(a, b), func(g *tensor.Matrix) {
		if a.reqG {
			d := tensor.MulInto(g, b.Value, tensor.Get(g.Rows, g.Cols))
			a.accum(d)
			tensor.Put(d)
		}
		if b.reqG {
			d := tensor.MulInto(g, a.Value, tensor.Get(g.Rows, g.Cols))
			b.accum(d)
			tensor.Put(d)
		}
	})
}

// Scale records a·s for scalar constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := tensor.ScaleInto(a.Value, s, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.ScaleInto(g, s, tensor.Get(g.Rows, g.Cols))
		a.accum(d)
		tensor.Put(d)
	})
}

// AddRowVector records a + broadcast(bias) where bias is 1×cols.
func (t *Tape) AddRowVector(a, bias *Node) *Node {
	v := tensor.AddRowVectorInto(a.Value, bias.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, anyGrad(a, bias), func(g *tensor.Matrix) {
		a.accum(g)
		if bias.reqG {
			bg := tensor.ColSumsInto(g, tensor.Get(1, g.Cols))
			bias.accum(bg)
			tensor.Put(bg)
		}
	})
}

// Tanh records element-wise tanh via the specialized TanhInto kernel
// (no per-element function-pointer dispatch).
func (t *Tape) Tanh(a *Node) *Node {
	v := tensor.TanhInto(a.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.TanhGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		a.accum(d)
		tensor.Put(d)
	})
}

// Sigmoid records element-wise logistic sigmoid via SigmoidInto.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := tensor.SigmoidInto(a.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.SigmoidGradInto(g, v, tensor.Get(g.Rows, g.Cols))
		a.accum(d)
		tensor.Put(d)
	})
}

// ReLU records element-wise max(0, x) via ReLUInto.
func (t *Tape) ReLU(a *Node) *Node {
	v := tensor.ReLUInto(a.Value, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.ReLUGradInto(g, a.Value, tensor.Get(g.Rows, g.Cols))
		a.accum(d)
		tensor.Put(d)
	})
}

// Log records element-wise natural log, clamping inputs below eps for
// numerical safety (the clamp region contributes zero gradient flow
// adjustments; gradient uses the clamped value).
func (t *Tape) Log(a *Node) *Node {
	const eps = 1e-12
	clamped := tensor.ApplyInto(a.Value, func(x float64) float64 {
		if x < eps {
			return eps
		}
		return x
	}, t.newScratch(a.Value.Rows, a.Value.Cols))
	v := tensor.ApplyInto(clamped, math.Log, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(g.Rows, g.Cols)
		for i, x := range clamped.Data {
			d.Data[i] = g.Data[i] / x
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// Exp records element-wise e^x.
func (t *Tape) Exp(a *Node) *Node {
	v := tensor.ApplyInto(a.Value, math.Exp, t.newVal(a.Value.Rows, a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.MulInto(g, v, tensor.Get(g.Rows, g.Cols))
		a.accum(d)
		tensor.Put(d)
	})
}

// ConcatCols records horizontal concatenation.
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	rows := ns[0].Value.Rows
	cols := 0
	req := false
	for _, n := range ns {
		if n.Value.Rows != rows {
			panic("tensor: concat-cols row mismatch")
		}
		cols += n.Value.Cols
		req = req || n.reqG
	}
	v := t.newVal(rows, cols)
	for i := 0; i < rows; i++ {
		orow := v.Row(i)
		off := 0
		for _, n := range ns {
			copy(orow[off:off+n.Value.Cols], n.Value.Row(i))
			off += n.Value.Cols
		}
	}
	return t.pushOwned(v, req, func(g *tensor.Matrix) {
		off := 0
		for _, n := range ns {
			w := n.Value.Cols
			if n.reqG {
				d := tensor.Get(g.Rows, w)
				for i := 0; i < g.Rows; i++ {
					copy(d.Row(i), g.Row(i)[off:off+w])
				}
				n.accum(d)
				tensor.Put(d)
			}
			off += w
		}
	})
}

// SliceCols records column slice [lo, hi).
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Value.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: slice-cols [%d,%d) of %d", lo, hi, a.Value.Cols))
	}
	v := t.newVal(a.Value.Rows, hi-lo)
	for i := 0; i < a.Value.Rows; i++ {
		copy(v.Row(i), a.Value.Row(i)[lo:hi])
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.GetZeroed(a.Value.Rows, a.Value.Cols)
		for i := 0; i < g.Rows; i++ {
			copy(d.Row(i)[lo:hi], g.Row(i))
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// GatherRows records row gathering: out.Row(i) = a.Row(idx[i]).
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	v := tensor.GatherRowsInto(a.Value, idx, t.newVal(len(idx), a.Value.Cols))
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.GetZeroed(a.Value.Rows, a.Value.Cols)
		tensor.ScatterAddRowsPar(d, g, idx)
		a.accum(d)
		tensor.Put(d)
	})
}

// SegmentMean records per-segment row averaging into `segments` rows.
func (t *Tape) SegmentMean(a *Node, seg []int, segments int) *Node {
	v := tensor.SegmentMeanInto(a.Value, seg, segments, t.newVal(segments, a.Value.Cols))
	counts := t.newScratch(1, segments)
	counts.Zero()
	for _, s := range seg {
		counts.Data[s]++
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(a.Value.Rows, a.Value.Cols)
		for i, s := range seg {
			inv := 1 / counts.Data[s]
			drow := d.Row(i)
			grow := g.Row(s)
			for j, gv := range grow {
				drow[j] = gv * inv
			}
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// Transpose records aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	src := a.Value
	v := t.newVal(src.Cols, src.Rows)
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			v.Data[j*src.Rows+i] = src.Data[i*src.Cols+j]
		}
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(g.Cols, g.Rows)
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				d.Data[j*g.Rows+i] = g.Data[i*g.Cols+j]
			}
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// Sum records the scalar (1×1) sum of all elements.
func (t *Tape) Sum(a *Node) *Node {
	v := t.newVal(1, 1)
	v.Data[0] = a.Value.Sum()
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(a.Value.Rows, a.Value.Cols)
		d.Fill(g.Data[0])
		a.accum(d)
		tensor.Put(d)
	})
}

// Mean records the scalar mean of all elements.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(a.Value.Rows * a.Value.Cols)
	return t.Scale(t.Sum(a), 1/n)
}

// MeanRows records column-wise mean over rows, producing a 1×cols vector.
func (t *Tape) MeanRows(a *Node) *Node {
	rows := a.Value.Rows
	v := tensor.GetZeroed(1, a.Value.Cols)
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	inv := 1 / float64(rows)
	for j := range v.Data {
		v.Data[j] *= inv
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(rows, a.Value.Cols)
		for i := 0; i < rows; i++ {
			drow := d.Row(i)
			for j, gv := range g.Data {
				drow[j] = gv * inv
			}
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// LogSoftmaxRows records a numerically stable row-wise log-softmax.
func (t *Tape) LogSoftmaxRows(a *Node) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	v := t.newVal(rows, cols)
	soft := t.newScratch(rows, cols) // softmax cached for backward
	for i := 0; i < rows; i++ {
		arow := a.Value.Row(i)
		mx := math.Inf(-1)
		for _, x := range arow {
			if x > mx {
				mx = x
			}
		}
		var z float64
		for _, x := range arow {
			z += math.Exp(x - mx)
		}
		lz := math.Log(z) + mx
		vrow, srow := v.Row(i), soft.Row(i)
		for j, x := range arow {
			vrow[j] = x - lz
			srow[j] = math.Exp(vrow[j])
		}
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.Get(rows, cols)
		for i := 0; i < rows; i++ {
			grow, srow, drow := g.Row(i), soft.Row(i), d.Row(i)
			var gs float64
			for _, gv := range grow {
				gs += gv
			}
			for j := range drow {
				drow[j] = grow[j] - srow[j]*gs
			}
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// PickCols records out[i,0] = a[i, idx[i]] — used to pick the chosen
// action's log-probability from a row of logits.
func (t *Tape) PickCols(a *Node, idx []int) *Node {
	if len(idx) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: pick-cols index length %d != rows %d", len(idx), a.Value.Rows))
	}
	v := t.newVal(len(idx), 1)
	for i, j := range idx {
		v.Data[i] = a.Value.At(i, j)
	}
	return t.pushOwned(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.GetZeroed(a.Value.Rows, a.Value.Cols)
		for i, j := range idx {
			d.Set(i, j, g.Data[i])
		}
		a.accum(d)
		tensor.Put(d)
	})
}

// ConcatRows records vertical concatenation of equal-width matrices.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	cols := ns[0].Value.Cols
	rows := 0
	req := false
	for _, n := range ns {
		if n.Value.Cols != cols {
			panic("autodiff: concat-rows column mismatch")
		}
		rows += n.Value.Rows
		req = req || n.reqG
	}
	v := t.newVal(rows, cols)
	off := 0
	for _, n := range ns {
		copy(v.Data[off:off+len(n.Value.Data)], n.Value.Data)
		off += len(n.Value.Data)
	}
	return t.pushOwned(v, req, func(g *tensor.Matrix) {
		off := 0
		for _, n := range ns {
			sz := len(n.Value.Data)
			if n.reqG {
				// accum copies, so a borrowed view of g is safe here.
				n.accum(tensor.FromSlice(n.Value.Rows, cols, g.Data[off:off+sz]))
			}
			off += sz
		}
	})
}
