// Package autodiff implements a small reverse-mode automatic
// differentiation tape over dense matrices.
//
// The design is matrix-level rather than scalar-level: each tape node holds
// an entire tensor.Matrix, so a full GNN forward pass over a 2,000-node
// graph records only a few dozen tape entries. Backpropagation walks the
// tape in reverse creation order (creation order is a valid topological
// order because operands must exist before an op uses them).
//
// Gradients are validated against central finite differences in the
// package tests.
package autodiff

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Node is one value on the tape: its forward result plus a closure that
// scatters the node's accumulated gradient into its parents.
type Node struct {
	Value *tensor.Matrix
	grad  *tensor.Matrix
	back  func(grad *tensor.Matrix)
	reqG  bool
	tape  *Tape
}

// Grad returns the gradient accumulated for this node by the most recent
// Backward call, or nil if the node does not require gradients.
func (n *Node) Grad() *tensor.Matrix { return n.grad }

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.reqG }

// Tape records the forward computation. A fresh tape is used per training
// sample; tapes are not safe for concurrent use.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) push(v *tensor.Matrix, reqG bool, back func(grad *tensor.Matrix)) *Node {
	n := &Node{Value: v, back: back, reqG: reqG, tape: t}
	t.nodes = append(t.nodes, n)
	return n
}

func (n *Node) accum(g *tensor.Matrix) {
	if !n.reqG {
		return
	}
	if n.grad == nil {
		n.grad = g.Clone()
		return
	}
	tensor.AddInPlace(n.grad, g)
}

// Const records a value that gradients do not flow into.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.push(v, false, nil)
}

// Leaf records a differentiable leaf (a parameter or a learnable input).
func (t *Tape) Leaf(v *tensor.Matrix) *Node {
	return t.push(v, true, nil)
}

// Backward seeds root with dL/droot = seed (or ones if nil; root must be
// 1×1 in that case) and propagates gradients to every leaf.
func (t *Tape) Backward(root *Node, seed *tensor.Matrix) {
	if root.tape != t {
		panic("autodiff: root belongs to a different tape")
	}
	// Reset gradients from any previous backward pass.
	for _, n := range t.nodes {
		n.grad = nil
	}
	if seed == nil {
		if root.Value.Rows != 1 || root.Value.Cols != 1 {
			panic("autodiff: nil seed requires a scalar root")
		}
		seed = tensor.New(1, 1)
		seed.Data[0] = 1
	}
	root.grad = seed.Clone()
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.grad == nil || n.back == nil {
			continue
		}
		n.back(n.grad)
	}
}

func anyGrad(ns ...*Node) bool {
	for _, n := range ns {
		if n.reqG {
			return true
		}
	}
	return false
}

// MatMul records a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := tensor.MatMul(a.Value, b.Value)
	return t.push(v, anyGrad(a, b), func(g *tensor.Matrix) {
		if a.reqG {
			a.accum(tensor.MatMulT2(g, b.Value)) // dA = G·Bᵀ
		}
		if b.reqG {
			b.accum(tensor.MatMulT1(a.Value, g)) // dB = Aᵀ·G
		}
	})
}

// Add records a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := tensor.Add(a.Value, b.Value)
	return t.push(v, anyGrad(a, b), func(g *tensor.Matrix) {
		a.accum(g)
		b.accum(g)
	})
}

// Sub records a-b.
func (t *Tape) Sub(a, b *Node) *Node {
	v := tensor.Sub(a.Value, b.Value)
	return t.push(v, anyGrad(a, b), func(g *tensor.Matrix) {
		a.accum(g)
		b.accum(tensor.Scale(g, -1))
	})
}

// Mul records the Hadamard product a⊙b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := tensor.Mul(a.Value, b.Value)
	return t.push(v, anyGrad(a, b), func(g *tensor.Matrix) {
		if a.reqG {
			a.accum(tensor.Mul(g, b.Value))
		}
		if b.reqG {
			b.accum(tensor.Mul(g, a.Value))
		}
	})
}

// Scale records a·s for scalar constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := tensor.Scale(a.Value, s)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		a.accum(tensor.Scale(g, s))
	})
}

// AddRowVector records a + broadcast(bias) where bias is 1×cols.
func (t *Tape) AddRowVector(a, bias *Node) *Node {
	v := tensor.AddRowVector(a.Value, bias.Value)
	return t.push(v, anyGrad(a, bias), func(g *tensor.Matrix) {
		a.accum(g)
		if bias.reqG {
			bg := tensor.New(1, g.Cols)
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, gv := range row {
					bg.Data[j] += gv
				}
			}
			bias.accum(bg)
		}
	})
}

// Tanh records element-wise tanh.
func (t *Tape) Tanh(a *Node) *Node {
	v := tensor.Tanh(a.Value)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(g.Rows, g.Cols)
		for i, y := range v.Data {
			d.Data[i] = g.Data[i] * (1 - y*y)
		}
		a.accum(d)
	})
}

// Sigmoid records element-wise logistic sigmoid.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := tensor.Sigmoid(a.Value)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(g.Rows, g.Cols)
		for i, y := range v.Data {
			d.Data[i] = g.Data[i] * y * (1 - y)
		}
		a.accum(d)
	})
}

// ReLU records element-wise max(0, x).
func (t *Tape) ReLU(a *Node) *Node {
	v := tensor.ReLU(a.Value)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(g.Rows, g.Cols)
		for i, x := range a.Value.Data {
			if x > 0 {
				d.Data[i] = g.Data[i]
			}
		}
		a.accum(d)
	})
}

// Log records element-wise natural log, clamping inputs below eps for
// numerical safety (the clamp region contributes zero gradient flow
// adjustments; gradient uses the clamped value).
func (t *Tape) Log(a *Node) *Node {
	const eps = 1e-12
	clamped := tensor.Apply(a.Value, func(x float64) float64 {
		if x < eps {
			return eps
		}
		return x
	})
	v := tensor.Apply(clamped, math.Log)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(g.Rows, g.Cols)
		for i, x := range clamped.Data {
			d.Data[i] = g.Data[i] / x
		}
		a.accum(d)
	})
}

// Exp records element-wise e^x.
func (t *Tape) Exp(a *Node) *Node {
	v := tensor.Apply(a.Value, math.Exp)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		a.accum(tensor.Mul(g, v))
	})
}

// ConcatCols records horizontal concatenation.
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	vals := make([]*tensor.Matrix, len(ns))
	req := false
	for i, n := range ns {
		vals[i] = n.Value
		req = req || n.reqG
	}
	v := tensor.ConcatCols(vals...)
	return t.push(v, req, func(g *tensor.Matrix) {
		off := 0
		for _, n := range ns {
			w := n.Value.Cols
			if n.reqG {
				n.accum(tensor.SliceCols(g, off, off+w))
			}
			off += w
		}
	})
}

// SliceCols records column slice [lo, hi).
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	v := tensor.SliceCols(a.Value, lo, hi)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(a.Value.Rows, a.Value.Cols)
		for i := 0; i < g.Rows; i++ {
			copy(d.Row(i)[lo:hi], g.Row(i))
		}
		a.accum(d)
	})
}

// GatherRows records row gathering: out.Row(i) = a.Row(idx[i]).
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	v := tensor.GatherRows(a.Value, idx)
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(a.Value.Rows, a.Value.Cols)
		tensor.ScatterAddRows(d, g, idx)
		a.accum(d)
	})
}

// SegmentMean records per-segment row averaging into `segments` rows.
func (t *Tape) SegmentMean(a *Node, seg []int, segments int) *Node {
	v := tensor.SegmentMean(a.Value, seg, segments)
	counts := make([]float64, segments)
	for _, s := range seg {
		counts[s]++
	}
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(a.Value.Rows, a.Value.Cols)
		for i, s := range seg {
			inv := 1 / counts[s]
			drow := d.Row(i)
			grow := g.Row(s)
			for j, gv := range grow {
				drow[j] += gv * inv
			}
		}
		a.accum(d)
	})
}

// Transpose records aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	v := a.Value.Transpose()
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		a.accum(g.Transpose())
	})
}

// Sum records the scalar (1×1) sum of all elements.
func (t *Tape) Sum(a *Node) *Node {
	v := tensor.New(1, 1)
	v.Data[0] = a.Value.Sum()
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(a.Value.Rows, a.Value.Cols)
		d.Fill(g.Data[0])
		a.accum(d)
	})
}

// Mean records the scalar mean of all elements.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(a.Value.Rows * a.Value.Cols)
	return t.Scale(t.Sum(a), 1/n)
}

// MeanRows records column-wise mean over rows, producing a 1×cols vector.
func (t *Tape) MeanRows(a *Node) *Node {
	rows := a.Value.Rows
	v := tensor.New(1, a.Value.Cols)
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	inv := 1 / float64(rows)
	for j := range v.Data {
		v.Data[j] *= inv
	}
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(rows, a.Value.Cols)
		for i := 0; i < rows; i++ {
			drow := d.Row(i)
			for j, gv := range g.Data {
				drow[j] = gv * inv
			}
		}
		a.accum(d)
	})
}

// LogSoftmaxRows records a numerically stable row-wise log-softmax.
func (t *Tape) LogSoftmaxRows(a *Node) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	v := tensor.New(rows, cols)
	soft := tensor.New(rows, cols) // softmax cached for backward
	for i := 0; i < rows; i++ {
		arow := a.Value.Row(i)
		mx := math.Inf(-1)
		for _, x := range arow {
			if x > mx {
				mx = x
			}
		}
		var z float64
		for _, x := range arow {
			z += math.Exp(x - mx)
		}
		lz := math.Log(z) + mx
		vrow, srow := v.Row(i), soft.Row(i)
		for j, x := range arow {
			vrow[j] = x - lz
			srow[j] = math.Exp(vrow[j])
		}
	}
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			grow, srow, drow := g.Row(i), soft.Row(i), d.Row(i)
			var gs float64
			for _, gv := range grow {
				gs += gv
			}
			for j := range drow {
				drow[j] = grow[j] - srow[j]*gs
			}
		}
		a.accum(d)
	})
}

// PickCols records out[i,0] = a[i, idx[i]] — used to pick the chosen
// action's log-probability from a row of logits.
func (t *Tape) PickCols(a *Node, idx []int) *Node {
	if len(idx) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: pick-cols index length %d != rows %d", len(idx), a.Value.Rows))
	}
	v := tensor.New(len(idx), 1)
	for i, j := range idx {
		v.Data[i] = a.Value.At(i, j)
	}
	return t.push(v, a.reqG, func(g *tensor.Matrix) {
		d := tensor.New(a.Value.Rows, a.Value.Cols)
		for i, j := range idx {
			d.Set(i, j, g.Data[i])
		}
		a.accum(d)
	})
}

// ConcatRows records vertical concatenation of equal-width matrices.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	cols := ns[0].Value.Cols
	rows := 0
	req := false
	for _, n := range ns {
		if n.Value.Cols != cols {
			panic("autodiff: concat-rows column mismatch")
		}
		rows += n.Value.Rows
		req = req || n.reqG
	}
	v := tensor.New(rows, cols)
	off := 0
	for _, n := range ns {
		copy(v.Data[off:off+len(n.Value.Data)], n.Value.Data)
		off += len(n.Value.Data)
	}
	return t.push(v, req, func(g *tensor.Matrix) {
		off := 0
		for _, n := range ns {
			sz := len(n.Value.Data)
			if n.reqG {
				part := tensor.FromSlice(n.Value.Rows, cols, g.Data[off:off+sz])
				n.accum(part.Clone())
			}
			off += sz
		}
	})
}
