package autodiff

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildLoss assembles a small MLP-style scalar graph over the leaves,
// touching the pooled-backward paths (matmul, bias broadcast, nonlinear,
// reduction).
func buildLoss(tp *Tape, x, w1, b1, w2 *Node) *Node {
	h := tp.ReLU(tp.AddRowVector(tp.MatMul(x, w1), b1))
	return tp.Mean(tp.Mul(tp.MatMul(h, w2), tp.MatMul(h, w2)))
}

func TestTapeResetReproducesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xv := randMat(rng, 9, 6)
	w1v := randMat(rng, 6, 8)
	b1v := randMat(rng, 1, 8)
	w2v := randMat(rng, 8, 1)

	tp := NewTape()
	run := func() (gw1, gb1, gw2 *tensor.Matrix) {
		tp.Reset()
		x := tp.Const(xv)
		w1, b1, w2 := tp.Leaf(w1v), tp.Leaf(b1v), tp.Leaf(w2v)
		tp.Backward(buildLoss(tp, x, w1, b1, w2), nil)
		// Gradients are tape-owned and recycled by the next Reset: clone
		// before reusing the tape.
		return w1.Grad().Clone(), b1.Grad().Clone(), w2.Grad().Clone()
	}

	aw1, ab1, aw2 := run()
	bw1, bb1, bw2 := run()
	for _, pair := range []struct {
		name string
		a, b *tensor.Matrix
	}{{"w1", aw1, bw1}, {"b1", ab1, bb1}, {"w2", aw2, bw2}} {
		for i := range pair.a.Data {
			if pair.a.Data[i] != pair.b.Data[i] {
				t.Fatalf("grad %s element %d differs across Reset: %g vs %g",
					pair.name, i, pair.a.Data[i], pair.b.Data[i])
			}
		}
	}
}

func TestTapeResetRetainsNodeSlab(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xv := randMat(rng, 9, 6)
	w1v := randMat(rng, 6, 8)
	b1v := randMat(rng, 1, 8)
	w2v := randMat(rng, 8, 1)

	tp := NewTape()
	build := func() {
		x := tp.Const(xv)
		w1, b1, w2 := tp.Leaf(w1v), tp.Leaf(b1v), tp.Leaf(w2v)
		tp.Backward(buildLoss(tp, x, w1, b1, w2), nil)
	}
	build()
	n := tp.Len()
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tp.Len())
	}
	capAfterWarm := tp.Cap()
	if capAfterWarm < n {
		t.Fatalf("Cap %d < warm node count %d", capAfterWarm, n)
	}
	// A reused tape rebuilding the same graph must not regrow its slab.
	for i := 0; i < 5; i++ {
		build()
		if tp.Cap() != capAfterWarm {
			t.Fatalf("tape slab regrew on reuse: cap %d → %d", capAfterWarm, tp.Cap())
		}
		tp.Reset()
	}
}

func TestTapeReserve(t *testing.T) {
	tp := NewTapeWithCapacity(32)
	if tp.Cap() < 32 {
		t.Fatalf("NewTapeWithCapacity(32) cap %d", tp.Cap())
	}
	tp.Reserve(100)
	if tp.Cap() < 100 {
		t.Fatalf("Reserve(100) cap %d", tp.Cap())
	}
}

func TestResetLeavesLeafValuesUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	leaf := randMat(rng, 3, 3)
	want := leaf.Clone()
	tp := NewTape()
	x := tp.Leaf(leaf)
	tp.Backward(tp.Sum(tp.Mul(x, x)), nil)
	tp.Reset()
	for i := range want.Data {
		if leaf.Data[i] != want.Data[i] {
			t.Fatalf("leaf value %d mutated by Reset: %g vs %g", i, leaf.Data[i], want.Data[i])
		}
	}
}
