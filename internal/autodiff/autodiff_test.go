package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGrad computes ∂f/∂x by central differences for every element of x.
func numericGrad(f func() float64, x *tensor.Matrix) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := f()
		x.Data[i] = orig - h
		fm := f()
		x.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad builds a scalar graph with build (which must re-read leaf
// values), runs Backward, and compares against finite differences.
func checkGrad(t *testing.T, name string, leaf *tensor.Matrix, build func(tp *Tape, x *Node) *Node) {
	t.Helper()
	eval := func() float64 {
		tp := NewTape()
		x := tp.Leaf(leaf)
		return build(tp, x).Value.Data[0]
	}
	tp := NewTape()
	x := tp.Leaf(leaf)
	root := build(tp, x)
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		t.Fatalf("%s: root is %dx%d, want scalar", name, root.Value.Rows, root.Value.Cols)
	}
	tp.Backward(root, nil)
	got := x.Grad()
	if got == nil {
		t.Fatalf("%s: no gradient", name)
	}
	want := numericGrad(eval, leaf)
	for i := range want.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		scale := math.Max(1, math.Abs(want.Data[i]))
		if diff/scale > 1e-5 {
			t.Fatalf("%s: grad[%d] = %.8g, want %.8g", name, i, got.Data[i], want.Data[i])
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	m.RandUniform(rng, 1)
	return m
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 4, 2)
	checkGrad(t, "matmul-left", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMul(x, tp.Const(b)))
	})
	checkGrad(t, "matmul-right", b, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMul(tp.Const(a), x))
	})
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 3, 3)
	checkGrad(t, "tanh", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Tanh(x)) })
	checkGrad(t, "sigmoid", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Sigmoid(x)) })
	checkGrad(t, "exp", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Exp(x)) })
	checkGrad(t, "scale", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Scale(x, -2.5)) })
	b := randMat(rng, 3, 3)
	checkGrad(t, "mul", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Mul(x, tp.Const(b))) })
	checkGrad(t, "sub", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Sub(tp.Const(b), x)) })
}

func TestGradLogPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.New(3, 2)
	for i := range a.Data {
		a.Data[i] = 0.1 + rng.Float64() // keep away from the clamp
	}
	checkGrad(t, "log", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Log(x)) })
}

func TestGradReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 4, 4)
	// Avoid elements near zero where ReLU is non-differentiable.
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.05 {
			a.Data[i] = 0.1
		}
	}
	checkGrad(t, "relu", a, func(tp *Tape, x *Node) *Node { return tp.Sum(tp.ReLU(x)) })
}

func TestGradStructural(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 4, 3)
	idx := []int{2, 0, 0, 3, 1}
	checkGrad(t, "gather", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.GatherRows(x, idx)))
	})
	seg := []int{1, 0, 1, 0}
	checkGrad(t, "segment-mean", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.SegmentMean(x, seg, 2)))
	})
	b := randMat(rng, 4, 2)
	checkGrad(t, "concat-cols", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.ConcatCols(x, tp.Const(b))))
	})
	checkGrad(t, "slice-cols", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.SliceCols(x, 1, 3)))
	})
	checkGrad(t, "transpose", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.Transpose(x)))
	})
	c := randMat(rng, 2, 3)
	checkGrad(t, "concat-rows", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.ConcatRows(x, tp.Const(c))))
	})
}

func TestGradRowOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 4, 3)
	bias := randMat(rng, 1, 3)
	checkGrad(t, "add-row-vector-x", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.AddRowVector(x, tp.Const(bias))))
	})
	checkGrad(t, "add-row-vector-bias", bias, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.AddRowVector(tp.Const(a), x)))
	})
	checkGrad(t, "mean-rows", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.MeanRows(x)))
	})
	checkGrad(t, "mean", a, func(tp *Tape, x *Node) *Node { return tp.Mean(tp.Tanh(x)) })
}

func TestGradLogSoftmaxAndPick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 5, 4)
	checkGrad(t, "log-softmax", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.Tanh(tp.LogSoftmaxRows(x)))
	})
	idx := []int{3, 0, 2, 2, 1}
	checkGrad(t, "pick-cols", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.PickCols(tp.LogSoftmaxRows(x), idx))
	})
}

func TestGradDeepComposition(t *testing.T) {
	// A miniature GNN-shaped computation: gather → matmul → tanh →
	// segment-mean → concat → matmul → sigmoid → log → sum.
	rng := rand.New(rand.NewSource(8))
	w := randMat(rng, 3, 3)
	h := randMat(rng, 4, 3)
	src := []int{0, 1, 2, 3, 0}
	dst := []int{1, 2, 3, 0, 2}
	build := func(tp *Tape, x *Node) *Node {
		msg := tp.Tanh(tp.MatMul(tp.GatherRows(tp.Const(h), src), x))
		agg := tp.SegmentMean(msg, dst, 4)
		cat := tp.ConcatCols(tp.Const(h), agg)
		w2 := tp.Const(randFixed(6, 1))
		p := tp.Sigmoid(tp.MatMul(cat, w2))
		return tp.Sum(tp.Log(p))
	}
	checkGrad(t, "deep", w, build)
}

// randFixed returns a deterministic matrix independent of call site state.
func randFixed(r, c int) *tensor.Matrix {
	rng := rand.New(rand.NewSource(99))
	m := tensor.New(r, c)
	m.RandUniform(rng, 0.7)
	return m
}

func TestBackwardAccumulatesFanOut(t *testing.T) {
	// y = sum(x) + sum(x) must give gradient 2 everywhere.
	tp := NewTape()
	xv := tensor.New(2, 2)
	xv.Fill(0.5)
	x := tp.Leaf(xv)
	y := tp.Add(tp.Sum(x), tp.Sum(x))
	tp.Backward(y, nil)
	for i, g := range x.Grad().Data {
		if g != 2 {
			t.Fatalf("grad[%d] = %g, want 2", i, g)
		}
	}
}

func TestBackwardResetsBetweenCalls(t *testing.T) {
	tp := NewTape()
	xv := tensor.New(1, 1)
	xv.Data[0] = 3
	x := tp.Leaf(xv)
	y := tp.Scale(x, 2)
	tp.Backward(y, nil)
	tp.Backward(y, nil)
	if g := x.Grad().Data[0]; g != 2 {
		t.Fatalf("grad = %g after repeated backward, want 2", g)
	}
}

func TestConstReceivesNoGrad(t *testing.T) {
	tp := NewTape()
	cv := tensor.New(2, 2)
	cv.Fill(1)
	c := tp.Const(cv)
	y := tp.Sum(tp.Tanh(c))
	tp.Backward(y, nil)
	if c.Grad() != nil {
		t.Fatal("const node accumulated a gradient")
	}
	if c.RequiresGrad() {
		t.Fatal("const node requires grad")
	}
}

func TestBackwardPanicsOnNonScalarNilSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar root with nil seed")
		}
	}()
	tp := NewTape()
	x := tp.Leaf(tensor.New(2, 2))
	tp.Backward(tp.Tanh(x), nil)
}
