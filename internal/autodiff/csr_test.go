package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buckets counting-sorts positions by key (ascending within a bucket),
// mirroring the CSR incidence structure stream.Graph.Adjacency provides.
func buckets(key []int, n int) ([]int32, []int) {
	offs := make([]int32, n+1)
	for _, k := range key {
		offs[k+1]++
	}
	for b := 0; b < n; b++ {
		offs[b+1] += offs[b]
	}
	members := make([]int, len(key))
	cursor := append([]int32(nil), offs[:n]...)
	for i, k := range key {
		members[cursor[k]] = i
		cursor[k]++
	}
	return offs, members
}

func TestGradSegmentMeanCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randMat(rng, 7, 3)
	seg := []int{0, 2, 1, 2, 0, 4, 1} // segment 3 stays empty
	offs, members := buckets(seg, 5)
	checkGrad(t, "segment-mean-csr", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.SegmentMeanCSR(x, offs, members))
	})
}

func TestGradGatherMatMulAddTanhCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := randMat(rng, 5, 6)
	w := randMat(rng, 6, 3)
	add := randMat(rng, 7, 3)
	idx := []int{0, 2, 2, 4, 1, 0, 3}
	offs, members := buckets(idx, 5)
	checkGrad(t, "gather-matmul-add-tanh-csr-h", h, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanhCSR(x, idx, tp.Const(w), tp.Const(add), offs, members))
	})
	checkGrad(t, "gather-matmul-add-tanh-csr-w", w, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanhCSR(tp.Const(h), idx, x, tp.Const(add), offs, members))
	})
	checkGrad(t, "gather-matmul-add-tanh-csr-add", add, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanhCSR(tp.Const(h), idx, tp.Const(w), x, offs, members))
	})
}

func TestGradConcatMatMulTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randMat(rng, 4, 6)
	y := randMat(rng, 4, 3)
	w := randMat(rng, 5, 4) // (hi-lo)+y.Cols = 2+3 rows
	checkGrad(t, "concat-matmul-tanh-x", x, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.ConcatMatMulTanh(n, 1, 3, tp.Const(y), tp.Const(w)))
	})
	checkGrad(t, "concat-matmul-tanh-y", y, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.ConcatMatMulTanh(tp.Const(x), 1, 3, n, tp.Const(w)))
	})
	checkGrad(t, "concat-matmul-tanh-w", w, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.ConcatMatMulTanh(tp.Const(x), 1, 3, tp.Const(y), n))
	})
}

// TestCSROpsBitMatchSegVectorOps pins the CSR tape ops against the
// seg-vector ops they replace: identical forward bits and identical
// gradient bits (the backward decomposition is the same arithmetic, fed by
// prebuilt buckets instead of per-call bucketing).
func TestCSROpsBitMatchSegVectorOps(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const nodes, edges, k, m = 30, 90, 16, 8
	h := randMat(rng, nodes, k)
	w := randMat(rng, k, m)
	add := randMat(rng, edges, m)
	src := make([]int, edges)
	dst := make([]int, edges)
	for e := range src {
		src[e] = rng.Intn(nodes)
		dst[e] = rng.Intn(nodes)
	}
	srcOffs, srcMembers := buckets(src, nodes)
	dstOffs, dstMembers := buckets(dst, nodes)

	run := func(csr bool) (*tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
		tp := NewTape()
		hn, wn := tp.Leaf(h), tp.Leaf(w)
		var msg, agg *Node
		if csr {
			msg = tp.GatherMatMulAddTanhCSR(hn, src, wn, tp.Const(add), srcOffs, srcMembers)
			agg = tp.SegmentMeanCSR(msg, dstOffs, dstMembers)
		} else {
			msg = tp.GatherMatMulAddTanh(hn, src, wn, tp.Const(add))
			agg = tp.SegmentMean(msg, dst, nodes)
		}
		tp.Backward(tp.Sum(agg), nil)
		return agg.Value.Clone(), hn.Grad().Clone(), wn.Grad().Clone()
	}
	cv, ch, cw := run(true)
	uv, uh, uw := run(false)
	bitEq := func(name string, got, want *tensor.Matrix) {
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%s[%d]: csr %v vs seg-vector %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}
	bitEq("value", cv, uv)
	bitEq("dH", ch, uh)
	bitEq("dW", cw, uw)
}

// TestConcatMatMulTanhMatchesChain pins the fused op against the
// SliceCols → ConcatCols → MatMulTanh chain it replaces: bit-identical
// forward, rounding-identical gradients (the chain accumulates leaf
// gradients in a different tape order).
func TestConcatMatMulTanhMatchesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const rows, width, aggW, outW = 12, 10, 7, 5
	x := randMat(rng, rows, width)
	y := randMat(rng, rows, aggW)
	w := randMat(rng, 3+aggW, outW) // slice [2,5) of x
	run := func(fused bool) (*tensor.Matrix, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
		tp := NewTape()
		xn, yn, wn := tp.Leaf(x), tp.Leaf(y), tp.Leaf(w)
		var out *Node
		if fused {
			out = tp.ConcatMatMulTanh(xn, 2, 5, yn, wn)
		} else {
			out = tp.MatMulTanh(tp.ConcatCols(tp.SliceCols(xn, 2, 5), yn), wn)
		}
		tp.Backward(tp.Sum(out), nil)
		return out.Value.Clone(), xn.Grad().Clone(), yn.Grad().Clone(), wn.Grad().Clone()
	}
	fv, fx, fy, fw := run(true)
	uv, ux, uy, uw := run(false)
	for i := range uv.Data {
		if math.Float64bits(fv.Data[i]) != math.Float64bits(uv.Data[i]) {
			t.Fatalf("value[%d]: fused %v vs chain %v", i, fv.Data[i], uv.Data[i])
		}
	}
	const tol = 1e-12
	cmp := func(name string, got, want *tensor.Matrix) {
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > tol*(1+math.Abs(want.Data[i])) {
				t.Fatalf("%s[%d]: fused %g vs chain %g", name, i, got.Data[i], want.Data[i])
			}
		}
	}
	cmp("dX", fx, ux)
	cmp("dY", fy, uy)
	cmp("dW", fw, uw)
}
