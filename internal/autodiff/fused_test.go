package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Gradient checks for every fused op, against central finite differences
// through each differentiable operand.

func TestGradMatMulT2(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMat(rng, 3, 5)
	b := randMat(rng, 4, 5)
	checkGrad(t, "matmulT2-left", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMulT2(x, tp.Const(b)))
	})
	checkGrad(t, "matmulT2-right", b, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMulT2(tp.Const(a), x))
	})
}

func TestGradMatMulTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 3, 6)
	b := randMat(rng, 6, 4)
	checkGrad(t, "matmul-tanh-left", a, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMulTanh(x, tp.Const(b)))
	})
	checkGrad(t, "matmul-tanh-right", b, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.MatMulTanh(tp.Const(a), x))
	})
}

func TestGradGatherMatMulAddTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randMat(rng, 5, 6) // node embeddings
	w := randMat(rng, 6, 3) // message transform
	add := randMat(rng, 7, 3)
	idx := []int{0, 2, 2, 4, 1, 0, 3} // repeated rows exercise scatter-add

	checkGrad(t, "gather-matmul-add-tanh-h", h, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanh(x, idx, tp.Const(w), tp.Const(add)))
	})
	checkGrad(t, "gather-matmul-add-tanh-w", w, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanh(tp.Const(h), idx, x, tp.Const(add)))
	})
	checkGrad(t, "gather-matmul-add-tanh-add", add, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanh(tp.Const(h), idx, tp.Const(w), x))
	})
	checkGrad(t, "gather-matmul-tanh-nil-add-h", h, func(tp *Tape, x *Node) *Node {
		return tp.Sum(tp.GatherMatMulAddTanh(x, idx, tp.Const(w), nil))
	})
}

func TestGradAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMat(rng, 4, 5)
	w := randMat(rng, 3, 5) // out×in
	bias := randMat(rng, 1, 3)

	checkGrad(t, "affine-x", x, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.Affine(n, tp.Const(w), tp.Const(bias)))
	})
	checkGrad(t, "affine-w", w, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.Affine(tp.Const(x), n, tp.Const(bias)))
	})
	checkGrad(t, "affine-bias", bias, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.Affine(tp.Const(x), tp.Const(w), n))
	})
	checkGrad(t, "affine-tanh-x", x, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.AffineTanh(n, tp.Const(w), tp.Const(bias)))
	})
	checkGrad(t, "affine-tanh-w", w, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.AffineTanh(tp.Const(x), n, tp.Const(bias)))
	})
	checkGrad(t, "affine-tanh-bias", bias, func(tp *Tape, n *Node) *Node {
		return tp.Sum(tp.AffineTanh(tp.Const(x), tp.Const(w), n))
	})
}

// TestFusedMatchesUnfusedComposition builds the same function twice — once
// with fused ops, once composed from the primitive ops — and compares both
// values and leaf gradients within rounding tolerance.
func TestFusedMatchesUnfusedComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := randMat(rng, 6, 8)
	w := randMat(rng, 8, 4)
	add := randMat(rng, 9, 4)
	idx := []int{0, 5, 3, 3, 1, 2, 4, 0, 5}

	run := func(fused bool) (*tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
		tp := NewTape()
		hn, wn := tp.Leaf(h), tp.Leaf(w)
		var y *Node
		if fused {
			y = tp.GatherMatMulAddTanh(hn, idx, wn, tp.Const(add))
		} else {
			y = tp.Tanh(tp.Add(tp.MatMul(tp.GatherRows(hn, idx), wn), tp.Const(add)))
		}
		root := tp.Sum(y)
		tp.Backward(root, nil)
		return y.Value.Clone(), hn.Grad().Clone(), wn.Grad().Clone()
	}
	fv, fh, fw := run(true)
	uv, uh, uw := run(false)
	const tol = 1e-12
	cmp := func(name string, got, want *tensor.Matrix) {
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > tol*(1+math.Abs(want.Data[i])) {
				t.Fatalf("%s[%d]: fused %g vs unfused %g", name, i, got.Data[i], want.Data[i])
			}
		}
	}
	cmp("value", fv, uv)
	cmp("dH", fh, uh)
	cmp("dW", fw, uw)
}

// TestFusedOpsDeterministic reruns a fused forward+backward pass and
// requires byte-identical values and gradients (fixed accumulation order).
func TestFusedOpsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	h := randMat(rng, 40, 16)
	w := randMat(rng, 16, 8)
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = rng.Intn(40)
	}
	run := func() (*tensor.Matrix, *tensor.Matrix) {
		tp := NewTape()
		hn, wn := tp.Leaf(h), tp.Leaf(w)
		root := tp.Sum(tp.MatMulTanh(tp.GatherMatMulAddTanh(hn, idx, wn, nil), tp.Transpose(wn)))
		tp.Backward(root, nil)
		return root.Value.Clone(), hn.Grad().Clone()
	}
	v1, g1 := run()
	for rep := 0; rep < 3; rep++ {
		v2, g2 := run()
		if math.Float64bits(v1.Data[0]) != math.Float64bits(v2.Data[0]) {
			t.Fatalf("rerun %d: value differs", rep)
		}
		for i := range g1.Data {
			if math.Float64bits(g1.Data[i]) != math.Float64bits(g2.Data[i]) {
				t.Fatalf("rerun %d: grad differs at %d", rep, i)
			}
		}
	}
}
