package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachIsolatesPanicKeepsSiblingResults(t *testing.T) {
	const n = 16
	results := make([]int, n)
	err := ForEach(n, 4, func(i int) error {
		if i == 5 {
			panic("worker exploded")
		}
		results[i] = i * i
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking worker")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T: %v", err, err)
	}
	if pe.Index != 5 || pe.Value != "worker exploded" {
		t.Errorf("wrong panic metadata: %+v", pe)
	}
	if !strings.Contains(err.Error(), "resilience") && len(pe.Stack) == 0 {
		t.Error("expected a captured stack trace")
	}
	for i := 0; i < n; i++ {
		if i == 5 {
			continue
		}
		if results[i] != i*i {
			t.Errorf("sibling result %d lost: got %d", i, results[i])
		}
	}
}

func TestForEachWorkerIsolatesPanicsAndKeepsIDsStable(t *testing.T) {
	const n, workers = 64, 4
	var covered int32
	err := ForEachWorker(n, workers, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		if i == 9 {
			panic("replica exploded")
		}
		atomic.AddInt32(&covered, 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking entry")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 9 {
		t.Fatalf("expected PanicError for index 9, got %v", err)
	}
	if covered != n-1 {
		t.Fatalf("covered %d sibling entries, want %d", covered, n-1)
	}
}

func TestForEachJoinsMultipleFailures(t *testing.T) {
	err := ForEach(8, 0, func(i int) error {
		switch i {
		case 2:
			return fmt.Errorf("plain failure %d", i)
		case 6:
			panic(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "plain failure 2") || !strings.Contains(msg, "task 6 panicked") {
		t.Errorf("joined error missing a failure: %v", msg)
	}
}

func TestMapCollectsAndReportsZeroSlots(t *testing.T) {
	out, err := Map(6, 2, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i, v := range out {
		want := i + 1
		if i == 3 {
			want = 0
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestMapNoError(t *testing.T) {
	out, err := Map(4, 0, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[2] != "2" {
		t.Errorf("bad output %v", out)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	var calls int32
	var slept []time.Duration
	cfg := RetryConfig{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		sleep: func(d time.Duration) { slept = append(slept, d) }}
	err := Retry(context.Background(), cfg, func() error {
		if atomic.AddInt32(&calls, 1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	if slept[1] < slept[0] {
		t.Errorf("backoff should grow: %v", slept)
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("always fails")
	cfg := RetryConfig{Attempts: 3, sleep: func(time.Duration) {}}
	err := Retry(context.Background(), cfg, func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
}

func TestRetryRecoversPanics(t *testing.T) {
	cfg := RetryConfig{Attempts: 2, sleep: func(time.Duration) {}}
	err := Retry(context.Background(), cfg, func() error { panic("retryable panic") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

func TestRetryStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int
	err := Retry(ctx, RetryConfig{Attempts: 5}, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 0 {
		t.Errorf("op ran %d times under a dead context", calls)
	}
}

func TestRetryJitterStaysInBounds(t *testing.T) {
	// Jitter only lengthens delays: the factor lives in [1, 1+J], so the
	// configured base delay stays a hard lower bound on backoff.
	for i := 0; i < 1000; i++ {
		f := jitterFactor(0.2)
		if f < 1 || f > 1.2 {
			t.Fatalf("jitter factor %f out of [1, 1.2]", f)
		}
	}
	if jitterFactor(0) != 1 {
		t.Error("zero jitter must be identity")
	}
}

// TestRetryDelaysWithinBounds pins the documented backoff contract:
// attempt n sleeps within [BaseDelay·2ⁿ, BaseDelay·(1+Jitter)·2ⁿ] and
// never past MaxDelay, jitter included.
func TestRetryDelaysWithinBounds(t *testing.T) {
	const (
		base   = 10 * time.Millisecond
		maxDel = 35 * time.Millisecond
		jitter = 0.5
	)
	var slept []time.Duration
	cfg := RetryConfig{Attempts: 5, BaseDelay: base, MaxDelay: maxDel, Jitter: jitter,
		sleep: func(d time.Duration) { slept = append(slept, d) }}
	err := Retry(context.Background(), cfg, func() error { return errors.New("always") })
	if err == nil {
		t.Fatal("op never succeeds; Retry must report failure")
	}
	if len(slept) != 4 {
		t.Fatalf("slept %d times, want 4", len(slept))
	}
	lo := base
	for n, d := range slept {
		hi := time.Duration(float64(lo) * (1 + jitter))
		wantLo, wantHi := lo, hi
		if wantLo > maxDel {
			wantLo = maxDel
		}
		if wantHi > maxDel {
			wantHi = maxDel
		}
		if d < wantLo || d > wantHi {
			t.Errorf("attempt %d slept %v, want within [%v, %v]", n, d, wantLo, wantHi)
		}
		lo *= 2
	}
	// Once the un-jittered delay hits the cap, the sleep is exactly
	// MaxDelay: jitter cannot push past it.
	if slept[3] != maxDel {
		t.Errorf("capped attempt slept %v, want exactly %v", slept[3], maxDel)
	}
}

// TestRetryCancelAbortsBackoffSleep cancels the context while Retry is
// inside a long backoff sleep: the call must return promptly with the
// context error instead of serving out the full delay.
func TestRetryCancelAbortsBackoffSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int32
	done := make(chan error, 1)
	go func() {
		// No sleep hook: exercises the real context-aware backoff.
		cfg := RetryConfig{Attempts: 3, BaseDelay: time.Minute}
		done <- Retry(ctx, cfg, func() error {
			atomic.AddInt32(&calls, 1)
			return errors.New("transient")
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and the sleep start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry kept sleeping through cancellation")
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("op ran %d times; cancellation mid-sleep should stop after the first", calls)
	}
}

func TestWatchdogPassesThroughResult(t *testing.T) {
	if err := Watchdog(context.Background(), time.Second, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("op failed")
	err := Watchdog(context.Background(), time.Second, func(context.Context) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestWatchdogTimesOut(t *testing.T) {
	start := time.Now()
	err := Watchdog(context.Background(), 20*time.Millisecond, func(ctx context.Context) error {
		<-ctx.Done() // well-behaved op: exits on cancellation
		return ctx.Err()
	})
	if !errors.Is(err, ErrWatchdogTimeout) {
		t.Fatalf("want ErrWatchdogTimeout, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("watchdog did not return promptly")
	}
}

func TestWatchdogRecoversPanic(t *testing.T) {
	err := Watchdog(context.Background(), time.Second, func(context.Context) error { panic("guarded") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}
